package nids

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/engine"
	"semnids/internal/fed/compress"
	"semnids/internal/fed/transport"
	"semnids/internal/fed/transport/faultnet"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

// treeSensor builds a correlated engine pushing compressed evidence
// at a mid-tier aggregator, tuned for test cadence.
func treeSensor(t *testing.T, shards int, sensor, dir, url string, client *http.Client) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:            shards,
		Correlate:         true,
		SensorID:          sensor,
		IncidentExportDir: dir,
		PushURLs:          []string{url},
		PushCompression:   "on",
		PushClient:        client,
		PushInterval:      10 * time.Millisecond,
		PushTimeout:       2 * time.Second,
		PushBackoffMin:    5 * time.Millisecond,
		PushBackoffMax:    40 * time.Millisecond,
		PushSeed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// midServer is one swappable mid-tier slot: sensors keep one URL while
// the aggregator behind it is crash-killed and restarted. While empty,
// pushes bounce off a retryable 503.
type midServer struct {
	cur atomic.Pointer[transport.Aggregator]
	srv *httptest.Server
}

func newMidServer(t *testing.T) *midServer {
	t.Helper()
	m := &midServer{}
	m.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if agg := m.cur.Load(); agg != nil {
			agg.ServeHTTP(w, r)
			return
		}
		http.Error(w, "mid tier down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(m.srv.Close)
	return m
}

// install brings up a mid-tier aggregator in this slot: its own sink
// directory is the upstream spool, folded segments relay compressed to
// the upstreams in failover order through the (fault-injecting) client.
func (m *midServer) install(t *testing.T, dir, nodeID string, upstreams []string, client *http.Client, seed int64) *transport.Aggregator {
	t.Helper()
	agg, err := transport.NewAggregator(transport.AggregatorConfig{
		Dir:               dir,
		NodeID:            nodeID,
		Upstreams:         upstreams,
		UpstreamClient:    client,
		PushInterval:      10 * time.Millisecond,
		PushTimeout:       2 * time.Second,
		PushBackoffMin:    5 * time.Millisecond,
		PushBackoffMax:    40 * time.Millisecond,
		PushProbeInterval: 25 * time.Millisecond,
		PushSeed:          seed,
		Compression:       transport.CompressionOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.cur.Store(agg)
	return agg
}

// TestFederationTreeConvergesUnderFaults is the hierarchical-federation
// acceptance test: a worm trace split across four sensors pushing to
// two mid-tier aggregators that relay into one root must converge at
// the root to the byte-identical incident report of a solo all-seeing
// sensor — at shard counts 1, 2 and 4, with compressed segments on
// both tiers, under a seeded fault plan on every link (drops, mid-body
// truncations of compressed uploads, 5xx bursts, duplicates, latency),
// plus a crash-kill restart of one mid tier mid-stream, a partition
// window cutting the other mid tier off the root, and a dead primary
// upstream exercising mid-tier failover.
func TestFederationTreeConvergesUnderFaults(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
	cut := splitAtFlowBoundary(t, pkts, len(pkts)/2)

	for _, shards := range []int{1, 2, 4} {
		solo := federatedEngine(t, shards, "solo", "")
		feed(solo, pkts)
		solo.Stop()
		want := renderIncidents(t, solo)
		if want == "no correlated incidents\n" {
			t.Fatal("baseline run produced no incidents")
		}

		// Root tier: a plain aggregator, stable for the whole run.
		root, err := transport.NewAggregator(transport.AggregatorConfig{Dir: t.TempDir(), NodeID: "root"})
		if err != nil {
			t.Fatal(err)
		}
		rootSrv := httptest.NewServer(root)

		// A permanently dead primary upstream for mid-0: every push and
		// probe gets a 503, so mid-0 must fail over to the root and stay
		// there.
		dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "decommissioned", http.StatusServiceUnavailable)
		}))

		// Mid tier: both upstream links run the full fault plan; mid-1's
		// additionally takes a partition window (an outage swallowing a
		// span of its requests outright), so one whole subtree goes dark
		// mid-run and must spool-and-forward through it.
		midFT := [2]*faultnet.Transport{
			faultnet.New(nil, faultnet.Plan{
				Seed: 19, Drop: 0.15, Truncate: 0.1, Err: 0.1, Duplicate: 0.15, MaxLatency: 2 * time.Millisecond,
			}),
			faultnet.New(nil, faultnet.Plan{
				Seed: 23, Drop: 0.15, Truncate: 0.1, Err: 0.1, Duplicate: 0.15, MaxLatency: 2 * time.Millisecond,
				Outages: []faultnet.Outage{{After: 2, Requests: 8}},
			}),
		}
		midDirs := [2]string{t.TempDir(), t.TempDir()}
		midUpstreams := [2][]string{
			{dead.URL, rootSrv.URL}, // failover: dead primary, healthy root
			{rootSrv.URL},
		}
		mids := [2]*midServer{newMidServer(t), newMidServer(t)}
		midAggs := [2]*transport.Aggregator{}
		for i := range mids {
			midAggs[i] = mids[i].install(t, midDirs[i], []string{"mid-0", "mid-1"}[i],
				midUpstreams[i], &http.Client{Transport: midFT[i]}, int64(i+1))
		}

		// Sensor tier: four sensors, two per mid, each behind its own
		// seeded fault plan, all pushing compressed.
		sensors := [4]*Engine{}
		for s := range sensors {
			ft := faultnet.New(nil, faultnet.Plan{
				Seed: int64(31 + s), Drop: 0.2, Truncate: 0.15, Err: 0.15, Duplicate: 0.15,
				MaxLatency: 2 * time.Millisecond,
			})
			sensors[s] = treeSensor(t, shards, []string{"sensor-a", "sensor-b", "sensor-c", "sensor-d"}[s],
				t.TempDir(), mids[s/2].srv.URL, &http.Client{Transport: ft})
		}
		route := func(ps []*netpkt.Packet) {
			for _, p := range ps {
				sensors[engine.FlowHash(netpkt.FlowKey{SrcIP: p.SrcIP}, 4)].Process(clonePacket(p))
			}
		}
		drainAll := func() {
			for _, e := range sensors {
				e.Drain()
			}
		}

		// First half, then crash-kill mid-0 while its subtree is mid-fold
		// — no farewell checkpoint, no final upstream sweep. Its sensors
		// bounce off 503s until the restart, then re-push everything
		// unacked; the restarted node re-relays from its recovered spool.
		route(pkts[:cut])
		drainAll()
		midAggs[0].Kill()
		mids[0].cur.Store(nil)
		midAggs[0] = mids[0].install(t, midDirs[0], "mid-0", midUpstreams[0], &http.Client{Transport: midFT[0]}, 1)

		route(pkts[cut:])
		drainAll()

		waitUntil(t, "root convergence on the solo report", func() bool {
			drainAll() // checkpoints are notification-driven
			st := root.Export()
			return st != nil && renderDerived(t, st) == want
		})

		// Every tier really exercised its faults and its compression.
		for s, e := range sensors {
			p := e.SinkStats().Push
			if p.Acked == 0 || p.Compressed == 0 {
				t.Errorf("shards=%d sensor %d: push stats %+v, want compressed acks", shards, s, p)
			}
			e.Stop()
		}
		for i, agg := range midAggs {
			pm, ok := agg.PushStats()
			if !ok || pm.Acked == 0 || pm.Compressed == 0 {
				t.Errorf("shards=%d mid %d: push stats %+v ok=%v, want compressed upstream acks", shards, i, pm, ok)
			}
			if i == 0 && (pm.Failovers == 0 || pm.ActiveUpstream != rootSrv.URL) {
				t.Errorf("shards=%d mid 0: failovers=%d active=%q, want failover off the dead primary onto %q",
					shards, pm.Failovers, pm.ActiveUpstream, rootSrv.URL)
			}
		}
		if c := midFT[1].Counts(); c.Outaged == 0 {
			t.Errorf("shards=%d: the partition window never fired: %+v", shards, c)
		}
		if m := root.Metrics(); m.Cycles != 0 || m.Merged == 0 {
			t.Errorf("shards=%d: root metrics %+v, want folds and no topology refusals", shards, m)
		}

		for _, agg := range midAggs {
			agg.Close()
		}
		root.Close()
		rootSrv.Close()
		dead.Close()
	}
}

// BenchmarkFederationCompressEvidence measures the LZSS bytes-on-wire
// reduction on the worm-outbreak evidence workload — the segment body
// every tree tier pushes upstream when compression is negotiated. The
// published "ratio" metric (raw bytes / wire bytes) is the compressed
// federation's bandwidth claim; the acceptance floor is 3x.
func BenchmarkFederationCompressEvidence(b *testing.B) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 3, FanoutPerHost: 3})
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:    2,
		Correlate: true,
		SensorID:  "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	feed(e, pkts)
	e.Stop()
	var raw bytes.Buffer
	if err := e.ExportIncidents(&raw); err != nil {
		b.Fatal(err)
	}

	wire := 0
	b.SetBytes(int64(raw.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		w := compress.NewWriter(&out)
		if _, err := w.Write(raw.Bytes()); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		wire = out.Len()
	}
	b.StopTimer()
	if ratio := float64(raw.Len()) / float64(wire); ratio < 3 {
		b.Fatalf("compression ratio %.2fx on worm evidence, want >= 3x (raw=%d wire=%d)",
			ratio, raw.Len(), wire)
	} else {
		b.ReportMetric(ratio, "ratio")
	}
}
