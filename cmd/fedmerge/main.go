// Command fedmerge folds N sensors' incident-evidence exports into
// one deterministic incident report — the paper's "further action"
// taken at network scale, where semantic detections from many tap
// points converge on the offending sources.
//
// Usage:
//
//	fedmerge [-json] [-o merged.evidence] a.evidence b.evidence ...
//
// Each input is an evidence export written by `semnids -export` (or a
// durable-sink segment, or a previous fedmerge -o output — merges
// compose). The merge is commutative and idempotent, so feeding the
// same export twice, or merging in any order, yields byte-identical
// output; every evidence record keeps the sensor IDs that observed
// it, so a federated incident stays traceable to its witnesses. All
// inputs must share the correlation parameters (fan-out window,
// threshold, evidence caps) they were gathered under.
//
// The incident report prints as the kill-chain table (or JSONL with
// -json); -o additionally writes the merged evidence export for
// further federation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semnids/internal/fed"
	"semnids/internal/incident"
	"semnids/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit merged incidents as JSONL instead of the table")
		outPath = flag.String("o", "", "write the merged evidence export to this file")
		quiet   = flag.Bool("q", false, "suppress the incident report (with -o: merge only)")
	)
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "fedmerge: no evidence exports given")
		flag.Usage()
		return 2
	}

	merged, err := readExport(paths[0])
	if err != nil {
		return fail(err)
	}
	for _, path := range paths[1:] {
		next, err := readExport(path)
		if err != nil {
			return fail(err)
		}
		if merged, err = fed.Merge(merged, next); err != nil {
			return fail(fmt.Errorf("%s: %w", path, err))
		}
	}

	if !*quiet {
		incidents, err := incident.DeriveIncidents(merged)
		if err != nil {
			return fail(err)
		}
		if *jsonOut {
			if err := report.WriteIncidentsJSON(os.Stdout, incidents); err != nil {
				return fail(err)
			}
		} else {
			fmt.Printf("sensors: %s  sources: %d\n\n",
				strings.Join(merged.Sensors, ","), len(merged.Sources))
			if err := report.WriteIncidents(os.Stdout, incidents); err != nil {
				return fail(err)
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fail(err)
		}
		err = fed.WriteExport(f, merged)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(err)
		}
	}
	return 0
}

func readExport(path string) (*incident.EvidenceExport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ex, err := fed.ReadExport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ex, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fedmerge:", err)
	return 1
}
