// Command fedmerge folds N sensors' incident-evidence exports into
// one deterministic incident report — the paper's "further action"
// taken at network scale, where semantic detections from many tap
// points converge on the offending sources.
//
// Usage:
//
//	fedmerge [-json] [-skip-corrupt] [-o merged.evidence] a.evidence b.evidence ...
//
// Each input is an evidence export written by `semnids -export` (or a
// durable-sink segment, or a previous fedmerge -o output — merges
// compose). The merge is commutative and idempotent, so feeding the
// same export twice, or merging in any order, yields byte-identical
// output; every evidence record keeps the sensor IDs that observed
// it, so a federated incident stays traceable to its witnesses. All
// inputs must share the correlation parameters (fan-out window,
// threshold, evidence caps) they were gathered under.
//
// The incident report prints as the kill-chain table (or JSONL with
// -json); -o additionally writes the merged evidence export for
// further federation.
//
// With -skip-corrupt, inputs that fail to read or to merge (corrupt,
// truncated before their first committed checkpoint, or gathered under
// skewed correlation parameters) are warned about on stderr and
// skipped instead of aborting the merge — the degraded-operations mode
// for folding a directory of sink segments where a crashed sensor may
// have left a partial tail. The run then exits 3 (not 0) with a
// summary of what was skipped, so automation notices the report is
// missing witnesses even though it was produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semnids/internal/fed"
	"semnids/internal/incident"
	"semnids/internal/lineage"
	"semnids/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut     = flag.Bool("json", false, "emit merged incidents as JSONL instead of the table")
		outPath     = flag.String("o", "", "write the merged evidence export to this file")
		quiet       = flag.Bool("q", false, "suppress the incident report (with -o: merge only)")
		skipCorrupt = flag.Bool("skip-corrupt", false, "warn and skip unreadable or unmergeable inputs instead of aborting (exit 3 if any were skipped)")
	)
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "fedmerge: no evidence exports given")
		flag.Usage()
		return 2
	}

	var merged *incident.EvidenceExport
	var skipped []string
	for _, path := range paths {
		next, err := readExport(path)
		if err == nil && merged != nil {
			if m, merr := fed.Merge(merged, next); merr != nil {
				err = fmt.Errorf("%s: %w", path, merr)
			} else {
				merged = m
				continue
			}
		} else if err == nil {
			merged = next
			continue
		}
		if !*skipCorrupt {
			return fail(err)
		}
		fmt.Fprintln(os.Stderr, "fedmerge: warning: skipping", err)
		skipped = append(skipped, path)
	}
	if merged == nil {
		return fail(fmt.Errorf("all %d inputs skipped, nothing to merge", len(skipped)))
	}

	if !*quiet {
		incidents, err := incident.DeriveIncidents(merged)
		if err != nil {
			return fail(err)
		}
		if *jsonOut {
			if err := report.WriteIncidentsJSON(os.Stdout, incidents); err != nil {
				return fail(err)
			}
		} else {
			fmt.Printf("sensors: %s  sources: %d\n\n",
				strings.Join(merged.Sensors, ","), len(merged.Sources))
			if err := report.WriteIncidents(os.Stdout, incidents); err != nil {
				return fail(err)
			}
		}
		// Lineage records (sensors run with -lineage) merge like all other
		// evidence; when present, render the federated ancestry forest —
		// commutativity means it is the forest a solo sensor would print.
		if len(merged.Lineage) > 0 {
			trees := lineage.Trace(merged.Lineage)
			if *jsonOut {
				if err := report.WriteAncestryJSON(os.Stdout, trees); err != nil {
					return fail(err)
				}
			} else {
				fmt.Println()
				if err := report.WriteAncestry(os.Stdout, trees); err != nil {
					return fail(err)
				}
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fail(err)
		}
		err = fed.WriteExport(f, merged)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(err)
		}
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "fedmerge: skipped %d of %d inputs: %s\n",
			len(skipped), len(paths), strings.Join(skipped, ", "))
		return 3
	}
	return 0
}

func readExport(path string) (*incident.EvidenceExport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ex, err := fed.ReadExport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ex, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "fedmerge:", err)
	return 1
}
