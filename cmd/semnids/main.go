// Command semnids runs the semantics-aware NIDS over a pcap trace and
// prints alerts and pipeline statistics.
//
// Usage:
//
//	semnids -pcap trace.pcap [-honeypot 192.168.1.250] [-dark 192.168.2.0/24]
//	        [-all] [-fullscan] [-workers N]
//	semnids -pcap trace.pcap -stream [-shards N] [-shed] [-replay] [-speed X]
//	        [-udp-flows] [-udp-idle 10s]
//	        [-correlate] [-incident-window 30s] [-stats]
//	        [-sensor ID] [-export FILE] [-import-incidents FILE] [-export-dir DIR]
//	        [-export-keep N] [-push URL] [-push-wait 5s]
//	        [-listen :9443] [-stats-interval 10s]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -all the classifier is disabled and every payload is analyzed
// (the paper's Section 5.4 configuration). With -stream the trace is
// fed through the sharded streaming engine instead of the batch
// pipeline; -replay paces packets by their capture timestamps (-speed
// scales the pace, 1 = real time), exercising flow eviction and the
// verdict cache as live traffic would. -correlate (implies -stream)
// attaches the incident correlator: per-source kill-chain tracking
// (RECON → EXPLOIT → PROPAGATION) with the fan-out window set by
// -incident-window; incidents print as a table, or as JSONL after the
// alerts with -json. -stats prints per-shard load gauges (EWMA
// packets/sec, queue depth) and correlator counters.
//
// -lineage (implies -correlate) computes structural fingerprints —
// the semantic sketch of what a polymorphic engine cannot cheaply
// randomize — for every hostile payload and traces payload ancestry:
// reconstructed infection trees print after the incident table (or as
// JSONL trees with -json). Lineage observations ride evidence exports,
// so federated sensors reconstruct the same forest an all-seeing solo
// sensor would.
//
// Federation (each of these implies -correlate): -export writes the
// correlator's evidence state — per-source min-K timestamp sets,
// fingerprints, derived stage, stamped with -sensor for provenance —
// at exit; -import-incidents seeds the correlator from such an export
// before the run; -export-dir attaches the durable sink (size/age-
// rotated evidence segments, crash recovery on restart). Fold several
// sensors' exports into one report with cmd/fedmerge.
//
// -push streams committed evidence segments to federation
// aggregators (cmd/fedagg) with retry/backoff; the sink directory
// (-export-dir, required) is the spool, so an unreachable aggregator
// costs lag, never ingest. Several comma-separated URLs form a
// failover list: pushes go to the first, demote to the next on
// sustained failure, and promote back when a probe finds an earlier
// one healthy. -push-compress selects the body encoding (auto/on/off;
// auto compresses once the aggregator advertises support, so old
// aggregators keep working). -export-keep bounds the spool (segments
// pruned past it before ack are counted as dropped — lag, not loss,
// since checkpoints are full snapshots). -push-wait bounds a
// best-effort wait at exit for the aggregator to ack the spool;
// -stats adds the push transport's health line
// (pushed/acked/retried/spooled, backoff).
//
// -listen serves the live telemetry surface while the run lasts
// (implies -stream): /metrics (Prometheus text exposition), /statusz
// (JSON snapshot of every registered series), /healthz (readiness:
// spool recovered, engine running) and /debug/pprof. -stats-interval
// (also implies -stream) emits the /statusz document to stderr as one
// JSON line per interval — the same encoder, usable with or without
// -listen, so headless runs still leave a machine-readable telemetry
// trail.
//
// -cpuprofile and -memprofile write pprof profiles of the run (CPU
// for its duration, heap at exit), so operators can profile a live
// sensor configuration with `go tool pprof` without rebuilding.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	nids "semnids"
	"semnids/internal/report"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code, so deferred profile writers fire
// before the process exits whatever path the run takes.
func run() int {
	var (
		pcapPath     = flag.String("pcap", "", "pcap trace to analyze")
		scanPath     = flag.String("scan", "", "binary file to host-scan instead of a trace")
		honeypots    = flag.String("honeypot", "192.168.1.250", "comma-separated decoy addresses")
		dark         = flag.String("dark", "192.168.2.0/24", "comma-separated un-used CIDR prefixes")
		threshold    = flag.Int("t", 3, "dark-space scan threshold")
		all          = flag.Bool("all", false, "disable classification: analyze every payload")
		fullscan     = flag.Bool("fullscan", false, "disable extraction pruning too (exhaustive baseline)")
		workers      = flag.Int("workers", 0, "analysis workers (0 = NumCPU)")
		quiet        = flag.Bool("q", false, "suppress per-alert output")
		jsonOut      = flag.Bool("json", false, "emit alerts as JSONL instead of text")
		summary      = flag.Bool("summary", false, "print a per-source incident summary at exit")
		tplFile      = flag.String("templates", "", "replace built-in templates with a template file (DSL)")
		stream       = flag.Bool("stream", false, "run the sharded streaming engine instead of the batch pipeline")
		shards       = flag.Int("shards", 0, "ingest shards for -stream (0 = NumCPU)")
		udpFlows     = flag.Bool("udp-flows", false, "buffer UDP conversations per 5-tuple and analyze them as flows, reassembling CoAP block transfers (implies -stream)")
		udpIdle      = flag.Duration("udp-idle", 0, "idle window closing a UDP conversation (0 = flow idle timeout; with -udp-flows)")
		shed         = flag.Bool("shed", false, "shed packets under overload instead of blocking (with -stream)")
		replay       = flag.Bool("replay", false, "pace packets by capture timestamp (with -stream)")
		speed        = flag.Float64("speed", 1, "replay speed multiplier: 1 = real time (with -replay)")
		correlate    = flag.Bool("correlate", false, "attach the incident correlator (implies -stream)")
		lineageOn    = flag.Bool("lineage", false, "compute structural fingerprints and trace payload ancestry (implies -correlate)")
		incWindow    = flag.Duration("incident-window", 30*time.Second, "fan-out sliding window in trace time (with -correlate)")
		sensor       = flag.String("sensor", "", "sensor ID stamped on exported incident evidence (default \"sensor\")")
		exportPath   = flag.String("export", "", "write the correlator's evidence export here at exit (implies -correlate)")
		importPath   = flag.String("import-incidents", "", "seed the correlator from an evidence export before the run (implies -correlate)")
		exportDir    = flag.String("export-dir", "", "durable incident sink: rotated evidence segments + crash recovery (implies -correlate)")
		exportKeep   = flag.Int("export-keep", 0, "retained evidence segments in -export-dir — the push spool bound (0 = default 4, floor 2)")
		pushURL      = flag.String("push", "", "stream evidence segments to federation aggregators at these comma-separated URLs in failover order, e.g. http://agg:9444/push,http://agg2:9444/push (requires -export-dir)")
		pushWait     = flag.Duration("push-wait", 0, "after the trace, wait up to this long for the aggregator to ack the spool (with -push)")
		pushCompress = flag.String("push-compress", "auto", "push body compression: auto (once the aggregator advertises support), on, or off (with -push)")
		stats        = flag.Bool("stats", false, "print per-shard load gauges and correlator counters (with -stream)")
		listen       = flag.String("listen", "", "serve /metrics, /statusz, /healthz and /debug/pprof on this address while the run lasts (implies -stream)")
		statsEvery   = flag.Duration("stats-interval", 0, "emit a JSON-lines /statusz snapshot to stderr at this interval (implies -stream)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "semnids:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "semnids:", err)
			}
		}()
	}
	if *scanPath != "" {
		return hostScan(*scanPath)
	}
	if *pcapPath == "" {
		flag.Usage()
		return 2
	}

	cfg := nids.Config{
		ScanThreshold:         *threshold,
		DisableClassification: *all,
		FullScan:              *fullscan,
		Workers:               *workers,
	}
	if *honeypots != "" {
		cfg.Honeypots = strings.Split(*honeypots, ",")
	}
	if *dark != "" {
		cfg.DarkSpace = strings.Split(*dark, ",")
	}
	if !*quiet && !*jsonOut {
		cfg.OnAlert = func(a nids.Alert) { fmt.Println(a) }
	}
	if *tplFile != "" {
		text, err := os.ReadFile(*tplFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		cfg.TemplatesDSL = string(text)
	}

	if *exportPath != "" || *importPath != "" || *exportDir != "" || *pushURL != "" || *lineageOn {
		*correlate = true
	}
	if *listen != "" || *statsEvery > 0 || *udpFlows {
		*stream = true
	}
	if *stream || *correlate {
		return runEngine(cfg, *pcapPath, engineOpts{
			shards: *shards, shed: *shed, replay: *replay, speed: *speed,
			udpFlows: *udpFlows, udpIdle: *udpIdle,
			jsonOut: *jsonOut, summary: *summary, stats: *stats,
			correlate: *correlate, incidentWindow: *incWindow,
			lineage: *lineageOn,
			sensor:  *sensor, exportPath: *exportPath,
			importPath: *importPath, exportDir: *exportDir,
			exportKeep: *exportKeep,
			pushURLs:   splitList(*pushURL),
			pushWait:   *pushWait, pushCompress: *pushCompress,
			listen: *listen, statsEvery: *statsEvery,
		})
	}

	n, err := nids.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	f, err := os.Open(*pcapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	defer f.Close()
	if err := n.ProcessPcap(f); err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, n.Alerts()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	if *summary {
		fmt.Println()
		if err := report.WriteSummary(os.Stdout, n.Alerts()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	m := n.Stats()
	fmt.Printf("\npackets=%d selected=%d streams=%d frames=%d frame-bytes=%d alerts=%d\n",
		m.Packets, m.Selected, m.StreamsAnalyzed, m.Frames, m.FrameBytes, m.Alerts)
	return 0
}

// engineOpts bundles the streaming-engine command-line switches.
type engineOpts struct {
	shards         int
	shed           bool
	udpFlows       bool
	udpIdle        time.Duration
	replay         bool
	speed          float64
	jsonOut        bool
	summary        bool
	stats          bool
	correlate      bool
	lineage        bool
	incidentWindow time.Duration
	sensor         string
	exportPath     string
	importPath     string
	exportDir      string
	exportKeep     int
	pushURLs       []string
	pushWait       time.Duration
	pushCompress   string
	listen         string
	statsEvery     time.Duration
}

// splitList splits a comma-separated flag value, dropping empty
// elements so "a,,b" and "" behave as expected.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runEngine feeds the trace through the streaming engine, optionally
// paced by capture timestamps, and prints engine-level statistics
// (verdict cache, evictions, shed packets) alongside the pipeline
// counters — plus live incidents when the correlator is attached.
func runEngine(cfg nids.Config, pcapPath string, opts engineOpts) int {
	e, err := nids.NewEngine(nids.EngineConfig{
		Config:               cfg,
		Shards:               opts.shards,
		ShedOnOverload:       opts.shed,
		DatagramFlows:        opts.udpFlows,
		DatagramIdle:         opts.udpIdle,
		Correlate:            opts.correlate,
		Lineage:              opts.lineage,
		IncidentWindow:       opts.incidentWindow,
		SensorID:             opts.sensor,
		IncidentExportDir:    opts.exportDir,
		IncidentKeepSegments: opts.exportKeep,
		PushURLs:             opts.pushURLs,
		PushCompression:      opts.pushCompress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	defer e.Stop()
	if opts.listen != "" {
		ln, err := net.Listen("tcp", opts.listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		srv := &http.Server{Handler: e.TelemetryHandler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "semnids: telemetry on http://%s/\n", ln.Addr())
	}
	if opts.statsEvery > 0 {
		// Reuses the /statusz encoder: each tick is one JSON object on
		// one stderr line, so `semnids ... 2>stats.jsonl` captures a
		// machine-readable telemetry trail even without -listen.
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(opts.statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := e.WriteStatus(os.Stderr); err != nil {
						return
					}
				case <-stop:
					return
				}
			}
		}()
		defer func() { close(stop); <-done }()
	}
	if opts.importPath != "" {
		in, err := os.Open(opts.importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		err = e.ImportIncidents(in)
		in.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	f, err := os.Open(pcapPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	defer f.Close()
	if opts.replay {
		err = e.Replay(f, opts.speed)
	} else {
		err = e.Run(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	if opts.jsonOut {
		if err := report.WriteJSON(os.Stdout, e.Alerts()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		if opts.correlate {
			if err := report.WriteIncidentsJSON(os.Stdout, e.Incidents()); err != nil {
				fmt.Fprintln(os.Stderr, "semnids:", err)
				return 1
			}
		}
		if opts.lineage {
			if err := report.WriteAncestryJSON(os.Stdout, e.Ancestry()); err != nil {
				fmt.Fprintln(os.Stderr, "semnids:", err)
				return 1
			}
		}
	}
	if opts.summary {
		fmt.Println()
		if err := report.WriteSummary(os.Stdout, e.Alerts()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	if opts.correlate && !opts.jsonOut {
		fmt.Println()
		if err := report.WriteIncidents(os.Stdout, e.Incidents()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	if opts.lineage && !opts.jsonOut {
		fmt.Println()
		if err := report.WriteAncestry(os.Stdout, e.Ancestry()); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	if opts.exportPath != "" {
		out, err := os.Create(opts.exportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
		err = e.ExportIncidents(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
			return 1
		}
	}
	if len(opts.pushURLs) > 0 && opts.pushWait > 0 {
		// Commit the trace's full evidence durably first — Drain only
		// *requests* a checkpoint, so without this the wait could see an
		// empty spool and return before there is anything to push. Then
		// best effort: an unreachable aggregator only costs this wait —
		// the spool survives on disk for the next run to push.
		if err := e.CheckpointIncidents(); err != nil {
			fmt.Fprintln(os.Stderr, "semnids:", err)
		}
		deadline := time.Now().Add(opts.pushWait)
		for !e.PushSynced() && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
	}
	m := e.Stats()
	fmt.Printf("\npackets=%d selected=%d dropped=%d streams=%d frames=%d frame-bytes=%d alerts=%d\n",
		m.Packets, m.Selected, m.Dropped, m.StreamsAnalyzed, m.Frames, m.FrameBytes, m.Alerts)
	fmt.Printf("cache-hits=%d cache-misses=%d cache-rejected=%d evicted-idle=%d evicted-lru=%d\n",
		m.CacheHits, m.CacheMisses, m.CacheRejected, m.FlowsEvictedIdle, m.FlowsEvictedLRU)
	if opts.stats {
		for i, sh := range m.Shards {
			fmt.Printf("shard[%d]: queue=%d/%d ewma-pps=%.1f\n", i, sh.QueueLen, sh.QueueCap, sh.PacketsPerSec)
		}
		if opts.correlate {
			im := e.IncidentStats()
			fmt.Printf("correlator: events=%d flow-opens=%d alerts=%d fingerprints=%d sources=%d incidents=%d evicted-lru=%d evicted-idle=%d\n",
				im.Events, im.FlowOpens, im.Alerts, im.Fingerprints,
				im.SourcesTracked, im.Incidents, im.SourcesEvictedLRU, im.SourcesEvictedIdle)
		}
		if opts.exportDir != "" {
			sm := e.SinkStats()
			fmt.Printf("sink: checkpoints=%d rotations=%d dropped=%d errors=%d\n",
				sm.Checkpoints, sm.Rotations, sm.Dropped, sm.Errors)
			if len(opts.pushURLs) > 0 {
				p := sm.Push
				fmt.Printf("push: pushed=%d acked=%d retried=%d rejected=%d dropped=%d spooled=%d backoff=%s\n",
					p.Pushed, p.Acked, p.Retried, p.Rejected, p.Dropped, p.Spooled, p.Backoff)
				if len(opts.pushURLs) > 1 || p.Compressed > 0 {
					fmt.Printf("push: upstream=%s failovers=%d compressed=%d raw-bytes=%d wire-bytes=%d\n",
						p.ActiveUpstream, p.Failovers, p.Compressed, p.RawBytes, p.WireBytes)
				}
				if p.LastError != "" {
					fmt.Printf("push: last-error: %s\n", p.LastError)
				}
			}
		}
	}
	return 0
}

// hostScan analyzes an on-disk binary with the semantic stages only —
// the configuration used for the paper's Netsky comparison.
func hostScan(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semnids:", err)
		return 1
	}
	ds := nids.AnalyzeBytes(data)
	fmt.Printf("%s: %d bytes, %d detections\n", path, len(data), len(ds))
	for _, d := range ds {
		fmt.Printf("  %-28s %-8s at %v  %v\n", d.Template, d.Severity, d.Addrs, d.Bindings)
	}
	if len(ds) > 0 {
		return 3
	}
	return 0
}
