// Command templatecheck validates a template file in the DSL format,
// normalizes it (parse + reformat), and optionally tests it against a
// binary sample.
//
// Usage:
//
//	templatecheck -f templates.txt            # validate and normalize
//	templatecheck -f templates.txt -test x.bin # also match against a file
package main

import (
	"flag"
	"fmt"
	"os"

	"semnids/internal/sem"
)

func main() {
	var (
		file   = flag.String("f", "", "template file to validate (required)")
		sample = flag.String("test", "", "binary file to match the templates against")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tpls, err := sem.ParseTemplates(f)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d templates ok\n", len(tpls))
	if err := sem.FormatTemplates(os.Stdout, tpls); err != nil {
		fatal(err)
	}
	if *sample != "" {
		data, err := os.ReadFile(*sample)
		if err != nil {
			fatal(err)
		}
		a := sem.NewAnalyzer(tpls)
		ds := a.AnalyzeFrame(data)
		fmt.Fprintf(os.Stderr, "\n%s: %d detections\n", *sample, len(ds))
		for _, d := range ds {
			fmt.Fprintf(os.Stderr, "  %s at %v %v\n", d.Template, d.Addrs, d.Bindings)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "templatecheck:", err)
	os.Exit(1)
}
