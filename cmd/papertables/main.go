// Command papertables regenerates every table of the paper's
// evaluation (Section 5) against the reproduction:
//
//	Table 1  — Linux shell-spawning buffer overflow exploits
//	Table 2  — Polymorphic shellcode detection (iis-asp-overflow,
//	           ADMmutate ×100, Clet ×100, with and without the
//	           alternate-decoder template)
//	Table 3  — Code Red II worm detection in 12 traces
//	§5.1     — Efficiency comparison against the whole-input baseline
//	§5.4     — False-positive evaluation with classification disabled
//
// Absolute times differ from the paper's 2.8 GHz Pentium 4; the shapes
// (who is detected, who wins, by what factor) are the reproduction
// target. Use -scale to shrink the Table 3 / §5.4 workloads for quick
// runs (e.g. -scale 0.05).
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/polymorph"
	"semnids/internal/sem"
	"semnids/internal/shellcode"
	"semnids/internal/traffic"
)

var (
	scale = flag.Float64("scale", 1.0, "workload scale for Table 3 and the false-positive run")
	only  = flag.String("only", "", "run only one section: table1|table2|table3|efficiency|fp")
)

func main() {
	flag.Parse()
	run := func(name string, f func()) {
		if *only == "" || *only == name {
			f()
		}
	}
	run("table1", table1)
	run("table2", table2)
	run("table3", table3)
	run("efficiency", efficiency)
	run("fp", falsePositives)
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func defaultCfg() core.Config {
	return core.Config{
		Classify: classify.Config{
			Honeypots:     []netip.Addr{traffic.HoneypotAddr},
			DarkSpace:     []netip.Prefix{traffic.DarkNet},
			ScanThreshold: 3,
		},
	}
}

// analyzePayloadTimed runs extraction + semantic analysis over one
// application payload, timing the analysis.
func analyzePayloadTimed(payload []byte) (map[string]bool, time.Duration) {
	start := time.Now()
	out := make(map[string]bool)
	for _, d := range core.AnalyzePayload(payload) {
		out[d.Template] = true
	}
	return out, time.Since(start)
}

// table1 reproduces "Table 1. Linux shell spawning buffer overflow
// exploits": eight exploits delivered at a honeypot, per-exploit
// detection and analysis time, plus the Netsky-sized binaries.
func table1() {
	header("Table 1 — Linux shell-spawning buffer overflow exploits")
	fmt.Printf("%-18s %-6s %-9s %-10s %-12s %s\n",
		"exploit", "proto", "detected", "binds-port", "analysis", "paper-time")
	paperTimes := []string{"2.36s", "2.49s", "2.61s", "2.74s", "2.88s", "3.01s", "3.14s", "3.27s"}
	for i, e := range exploits.Table1Exploits() {
		ds, dur := analyzePayloadTimed(e.Payload)
		detected := ds["linux-shell-spawn"]
		bind := ds["port-bind-shell"]
		fmt.Printf("%-18s %-6s %-9v %-10v %-12s %s\n",
			e.Name, e.Kind, detected, bind, dur.Round(time.Microsecond), paperTimes[i])
	}
	for _, seed := range []int64{1, 2} {
		bin := exploits.NetskyBinary(seed, 22*1024)
		start := time.Now()
		ds := core.AnalyzeBytes(bin, nil, nil)
		dur := time.Since(start)
		found := false
		for _, d := range ds {
			if d.Template == "xor-decrypt-loop" {
				found = true
			}
		}
		fmt.Printf("%-18s %-6s %-9v %-10s %-12s %s\n",
			fmt.Sprintf("netsky-variant-%d", seed), "host", found, "-",
			dur.Round(time.Microsecond), "~6.5s (vs ~40s in [5])")
	}
}

// table2 reproduces "Table 2. Polymorphic shellcode detection".
func table2() {
	header("Table 2 — Polymorphic shellcode detection")
	payload := shellcode.ClassicPush().Bytes
	xorOnly := sem.NewAnalyzer(sem.XorOnlyTemplates())
	full := sem.NewAnalyzer(sem.BuiltinTemplates())

	detected := func(a *sem.Analyzer, frame []byte) bool {
		for _, d := range a.AnalyzeFrame(frame) {
			if d.Template == "xor-decrypt-loop" || d.Template == "admmutate-alt-decode-loop" {
				return true
			}
		}
		return false
	}

	// iis-asp-overflow: one instance through the full network path.
	e := exploits.IISASPOverflow()
	ds, dur := analyzePayloadTimed(e.Payload)
	fmt.Printf("%-22s %3d/%3d with xor template          (paper: 1/1, 2.14s; ours: %s)\n",
		"iis-asp-overflow", b2i(ds["xor-decrypt-loop"]), 1, dur.Round(time.Microsecond))

	// ADMmutate ×100: first with the xor template only, then with the
	// alternate-decoder template added (the paper's 68% -> 100% step).
	eng := polymorph.NewADMmutate(20060612)
	samples := make([][]byte, 100)
	for i := range samples {
		s, _, err := eng.Encode(payload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		samples[i] = s
	}
	xorHits, fullHits := 0, 0
	for _, s := range samples {
		if detected(xorOnly, s) {
			xorHits++
		}
		if detected(full, s) {
			fullHits++
		}
	}
	fmt.Printf("%-22s %3d/100 with xor template          (paper:  68/100)\n", "ADMmutate", xorHits)
	fmt.Printf("%-22s %3d/100 with both decoder templates (paper: 100/100)\n", "ADMmutate", fullHits)

	// Clet ×100 with the xor template alone.
	clet := polymorph.NewClet(1999)
	cletHits := 0
	for i := 0; i < 100; i++ {
		s, _, err := clet.Encode(payload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if detected(xorOnly, s) {
			cletHits++
		}
	}
	fmt.Printf("%-22s %3d/100 with xor template          (paper: 100/100)\n", "Clet", cletHits)
}

// table3 reproduces "Table 3. Detection of the Code Red II Worm":
// twelve 5-minute traces of >200k packets with known instance counts.
func table3() {
	header("Table 3 — Detection of the Code Red II worm (12 traces)")
	// Paper instance counts per trace.
	instances := []int{3, 1, 4, 2, 5, 2, 1, 3, 6, 2, 4, 3}
	// >200k packets per trace at scale 1.0. One benign session
	// averages ~5.6 packets (DNS exchanges pull the mean down), so
	// 37000 sessions ≈ 207k packets.
	sessions := int(37000 * *scale)
	if sessions < 200 {
		sessions = 200
	}
	fmt.Printf("%-7s %-10s %-9s %-9s %-8s %s\n",
		"trace", "packets", "actual", "detected", "correct", "time")
	okAll := true
	for i, actual := range instances {
		spec := traffic.TraceSpec{
			Seed:             int64(100 + i),
			BenignSessions:   sessions,
			CodeRedInstances: actual,
		}
		n := core.New(defaultCfg())
		start := time.Now()
		err := traffic.Stream(spec, func(p *netpkt.Packet) error {
			n.ProcessPacket(p)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n.Flush()
		dur := time.Since(start)
		srcs := make(map[netip.Addr]bool)
		for _, a := range n.Alerts() {
			if a.Detection.Template == "code-red-ii" {
				srcs[a.Src] = true
			}
		}
		got := len(srcs)
		ok := got == actual
		okAll = okAll && ok
		m := n.Snapshot()
		fmt.Printf("%-7d %-10d %-9d %-9d %-8v %s\n",
			i+1, m.Packets, actual, got, ok, dur.Round(time.Millisecond))
	}
	fmt.Printf("all traces correct: %v (paper: every instance classified and matched correctly)\n", okAll)
}

// efficiency reproduces the Section 5.1 comparison: the pruned
// pipeline versus the exhaustive whole-input baseline of [5] on the
// same 22 KB virus-sized binary.
func efficiency() {
	header("§5.1 — Efficiency: extraction-pruned pipeline vs whole-input baseline")
	bin := exploits.NetskyBinary(1, 22*1024)

	start := time.Now()
	core.AnalyzeBytes(bin, nil, []int{0, 1, 2, 3})
	ours := time.Since(start)

	start = time.Now()
	core.AnalyzeBytes(bin, nil, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	baseline := time.Since(start)

	fmt.Printf("semantic scan, pruned offsets:      %12s   (paper: ~6.5s on a P4 2.8GHz)\n", ours.Round(time.Microsecond))
	fmt.Printf("exhaustive offsets ([5]-style):     %12s   (paper: ~40s reported in [5])\n", baseline.Round(time.Microsecond))
	fmt.Printf("speedup: %.1fx (paper: ~6.2x)\n", float64(baseline)/float64(ours))
}

// falsePositives reproduces Section 5.4: classification disabled,
// every payload analyzed over a large benign corpus; expect zero
// alerts.
func falsePositives() {
	header("§5.4 — False-positive evaluation (classification disabled)")
	target := int(566 * 1024 * 1024 * *scale) // paper: 566MB of traffic
	cfg := defaultCfg()
	cfg.Classify.Disabled = true
	n := core.New(cfg)
	g := traffic.NewGen(424242)
	bytesFed := 0
	sessions := 0
	start := time.Now()
	for bytesFed < target {
		for _, p := range g.BenignSession() {
			bytesFed += len(p.Payload)
			n.ProcessPacket(p)
		}
		sessions++
	}
	n.Flush()
	dur := time.Since(start)
	m := n.Snapshot()
	fmt.Printf("benign traffic analyzed: %.1f MB in %d sessions (%d packets) in %s\n",
		float64(bytesFed)/(1<<20), sessions, m.Packets, dur.Round(time.Millisecond))
	fmt.Printf("frames disassembled: %d (%.2f MB)\n", m.Frames, float64(m.FrameBytes)/(1<<20))
	fmt.Printf("false positives: %d (paper: 0 over 566MB)\n", m.Alerts)
	if m.Alerts > 0 {
		for _, a := range n.Alerts() {
			fmt.Println("  FP:", a)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
