// Command fedagg is the federation aggregation daemon: it accepts
// evidence segments pushed by sensors (semnids -push, or any
// transport.Pusher), folds them into one deterministic federated
// state with fed.Merge, and checkpoints that state to its own
// crash-recoverable sink directory. Acks are durable: a sensor sees
// 2xx only after the fold is committed, so an aggregator crash never
// loses acknowledged evidence — on restart the newest committed
// checkpoint is recovered and resumed sensors simply re-push anything
// unacked (the idempotent merge makes the overlap harmless).
//
// Usage:
//
//	fedagg -listen :9444 -dir /var/lib/fedagg
//
// Endpoints:
//
//	POST /push    one evidence segment in the versioned wire format
//	GET  /report  current federated incident report (text; ?json=1 for JSONL)
//	GET  /export  current merged evidence export (wire format)
//	GET  /stats   aggregator + sink counters (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semnids/internal/fed"
	"semnids/internal/fed/transport"
	"semnids/internal/incident"
	"semnids/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", ":9444", "HTTP listen address")
		dir          = flag.String("dir", "", "durable state directory (required)")
		maxBody      = flag.Int64("max-body", 32<<20, "maximum pushed segment size in bytes")
		rotateBytes  = flag.Int64("rotate-bytes", 0, "sink segment rotation size (0 = default)")
		rotateEvery  = flag.Duration("rotate-every", 0, "sink segment rotation age (0 = default)")
		keepSegments = flag.Int("keep-segments", 0, "sink segments to retain (0 = default)")
		asyncAck     = flag.Bool("async-ack", false, "acknowledge pushes before the fold is durably committed (lower latency, crash may lose acked evidence)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "fedagg: -dir is required")
		flag.Usage()
		return 2
	}

	agg, err := transport.NewAggregator(transport.AggregatorConfig{
		Dir:          *dir,
		MaxBodyBytes: *maxBody,
		RotateBytes:  *rotateBytes,
		RotateEvery:  *rotateEvery,
		KeepSegments: *keepSegments,
		AsyncAck:     *asyncAck,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedagg:", err)
		return 1
	}
	if st := agg.Export(); st != nil {
		fmt.Fprintf(os.Stderr, "fedagg: recovered state from %s: sensors=%s sources=%d\n",
			*dir, strings.Join(st.Sensors, ","), len(st.Sources))
	}

	mux := http.NewServeMux()
	mux.Handle("/push", agg)
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		st := agg.Export()
		if st == nil {
			fmt.Fprintln(w, "no evidence yet")
			return
		}
		incidents, err := incident.DeriveIncidents(st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("json") != "" {
			report.WriteIncidentsJSON(w, incidents)
			return
		}
		fmt.Fprintf(w, "sensors: %s  sources: %d\n\n", strings.Join(st.Sensors, ","), len(st.Sources))
		report.WriteIncidents(w, incidents)
	})
	mux.HandleFunc("/export", func(w http.ResponseWriter, r *http.Request) {
		st := agg.Export()
		if st == nil {
			http.Error(w, "fedagg: no evidence yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		fed.WriteExport(w, st)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Aggregator transport.AggregatorMetrics
			Sink       fed.SinkMetrics
		}{agg.Metrics(), agg.SinkStats()})
	})

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fedagg: listening on %s, state in %s\n", *listen, *dir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fedagg:", err)
		agg.Close()
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fedagg: %v, checkpointing and shutting down\n", sig)
	}
	srv.Close()
	agg.Close()
	return 0
}
