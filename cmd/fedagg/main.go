// Command fedagg is the federation aggregation daemon: it accepts
// evidence segments pushed by sensors (semnids -push, or any
// transport.Pusher), folds them into one deterministic federated
// state with fed.Merge, and checkpoints that state to its own
// crash-recoverable sink directory. Acks are durable: a sensor sees
// 2xx only after the fold is committed, so an aggregator crash never
// loses acknowledged evidence — on restart the newest committed
// checkpoint is recovered and resumed sensors simply re-push anything
// unacked (the idempotent merge makes the overlap harmless).
//
// With -upstream, the daemon is a mid-tier node in a fan-in tree: its
// own sink directory doubles as the push spool and folded segments are
// streamed to the listed upstream aggregators in failover order (the
// fold is associative, so any tree shape converges to the same root
// state). -node names this aggregator for the X-Fed-Via loop guard;
// -max-hops bounds tree depth. Pushes announcing a cycle or an
// over-budget hop count are refused with 409.
//
// Usage:
//
//	fedagg -listen :9444 -dir /var/lib/fedagg
//	fedagg -listen :9445 -dir /var/lib/mid1 -node mid1 \
//	       -upstream http://root:9444/push,http://root-b:9444/push
//
// Endpoints:
//
//	POST /push         one evidence segment in the versioned wire format
//	GET  /report       current federated incident report (text; ?json=1 for
//	                   JSONL with per-incident timelines, ack times annotated)
//	GET  /export       current merged evidence export (wire format)
//	GET  /metrics      Prometheus text exposition (aggregator + sink series)
//	GET  /statusz      JSON snapshot of every registered series
//	GET  /stats        alias for /statusz (kept for older scrapers)
//	GET  /healthz      200 ready / 503 while recovering or draining
//	GET  /debug/pprof  runtime profiles
//
// On SIGINT/SIGTERM the daemon flips /healthz to draining (503) so
// load balancers stop routing to it, waits out -drain-grace for
// in-flight pushes, then closes the listener and checkpoints.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semnids/internal/fed"
	"semnids/internal/fed/transport"
	"semnids/internal/incident"
	"semnids/internal/lineage"
	"semnids/internal/report"
	"semnids/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// splitList splits a comma-separated flag value, dropping empty
// elements so "a,,b" and "" behave as expected.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run() int {
	var (
		listen       = flag.String("listen", ":9444", "HTTP listen address")
		dir          = flag.String("dir", "", "durable state directory (required)")
		maxBody      = flag.Int64("max-body", 32<<20, "maximum pushed segment size in bytes")
		rotateBytes  = flag.Int64("rotate-bytes", 0, "sink segment rotation size (0 = default)")
		rotateEvery  = flag.Duration("rotate-every", 0, "sink segment rotation age (0 = default)")
		keepSegments = flag.Int("keep-segments", 0, "sink segments to retain (0 = default)")
		asyncAck     = flag.Bool("async-ack", false, "acknowledge pushes before the fold is durably committed (lower latency, crash may lose acked evidence)")
		drainGrace   = flag.Duration("drain-grace", 2*time.Second, "on shutdown signal, serve 503 on /healthz this long before closing the listener")
		node         = flag.String("node", "", "aggregator node ID stamped on responses and push Via headers (default \"agg\"; must be unique per tree node)")
		maxHops      = flag.Int("max-hops", 0, "reject pushes whose hop count exceeds this tree-depth budget (0 = default 16)")
		upstream     = flag.String("upstream", "", "push folded segments up the tree to these comma-separated aggregator URLs in failover order (makes this node a mid-tier fan-in)")
		pushCompress = flag.String("push-compress", "auto", "upstream push body compression: auto, on, or off (with -upstream)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "fedagg: -dir is required")
		flag.Usage()
		return 2
	}
	comp, err := transport.ParseCompression(*pushCompress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedagg:", err)
		return 2
	}

	agg, err := transport.NewAggregator(transport.AggregatorConfig{
		Dir:          *dir,
		MaxBodyBytes: *maxBody,
		RotateBytes:  *rotateBytes,
		RotateEvery:  *rotateEvery,
		KeepSegments: *keepSegments,
		AsyncAck:     *asyncAck,
		NodeID:       *node,
		MaxHops:      *maxHops,
		Upstreams:    splitList(*upstream),
		Compression:  comp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedagg:", err)
		return 1
	}
	if st := agg.Export(); st != nil {
		fmt.Fprintf(os.Stderr, "fedagg: recovered state from %s: sensors=%s sources=%d\n",
			*dir, strings.Join(st.Sensors, ","), len(st.Sources))
	}

	// The observability surface is the shared telemetry mux (the same
	// one `semnids -listen` serves), with the aggregator's own routes
	// layered on top. NewAggregator returns only after recovery, so the
	// "state" check is set once, here.
	health := telemetry.NewHealth()
	health.Set("state", true, "recovered")
	telemetry.RegisterProcessMetrics(agg.Telemetry())
	statusInfo := func() map[string]any {
		st := agg.Export()
		info := map[string]any{"dir": *dir}
		if st != nil {
			info["sensors"] = st.Sensors
			info["sources"] = len(st.Sources)
		}
		// Tree nodes expose their upstream health: which URL the pusher
		// is on, how deep the unacked spool is, and whether everything
		// durable has been acked up the tree.
		if pm, ok := agg.PushStats(); ok {
			info["upstream"] = pm.ActiveUpstream
			info["upstream_failovers"] = pm.Failovers
			info["spool_segments"] = pm.Spooled
		}
		return info
	}
	mux := telemetry.NewMux(agg.Telemetry(), health, statusInfo)
	mux.Handle("/push", agg)
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		st := agg.Export()
		if st == nil {
			fmt.Fprintln(w, "no evidence yet")
			return
		}
		incidents, err := incident.DeriveIncidents(st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("json") != "" {
			// The JSONL view carries per-incident timelines; annotate
			// them with this aggregator's wall-clock ack times so the
			// report shows packet → stage → acked end to end.
			agg.AnnotateTimelines(incidents)
			report.WriteIncidentsJSON(w, incidents)
			if len(st.Lineage) > 0 {
				report.WriteAncestryJSON(w, lineage.Trace(st.Lineage))
			}
			return
		}
		fmt.Fprintf(w, "sensors: %s  sources: %d\n\n", strings.Join(st.Sensors, ","), len(st.Sources))
		report.WriteIncidents(w, incidents)
		// Sensors pushing with -lineage federate their observations here;
		// the ancestry forest below the incident table is byte-identical
		// to what a solo all-seeing sensor would reconstruct.
		if len(st.Lineage) > 0 {
			fmt.Fprintln(w)
			report.WriteAncestry(w, lineage.Trace(st.Lineage))
		}
	})
	mux.HandleFunc("/export", func(w http.ResponseWriter, r *http.Request) {
		st := agg.Export()
		if st == nil {
			http.Error(w, "fedagg: no evidence yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		fed.WriteExport(w, st)
	})
	// /stats predates /statusz; keep it as an alias on the same encoder
	// so existing scrapers see the superset document.
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteStatusJSON(w, agg.Telemetry(), statusInfo())
	})

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fedagg: listening on %s, state in %s\n", *listen, *dir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fedagg:", err)
		agg.Close()
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fedagg: %v, draining then shutting down\n", sig)
	}
	// Graceful drain: advertise not-ready first so health-checking load
	// balancers stop routing here, give in-flight (and just-routed)
	// pushes the grace period to land, then close the listener and
	// checkpoint. Sensors retry anything unacked, so cutting the grace
	// short costs re-pushes, never evidence.
	health.SetDraining(true)
	time.Sleep(*drainGrace)
	srv.Close()
	agg.Close()
	return 0
}
