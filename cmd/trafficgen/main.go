// Command trafficgen synthesizes network traces with known ground
// truth and writes them in classic pcap format: benign background
// sessions (HTTP, DNS, SMTP) optionally mixed with Code Red II
// exploitation vectors delivered by scanning sources — or, with
// -worm, a propagating outbreak whose victims re-deliver the payload
// (the kill-chain workload for `semnids -correlate`).
//
// With -polymorph, the outbreak re-encodes its worm body through a
// polymorphic engine (alternating CLET- and ADMmutate-style) at every
// hop, so no two deliveries share wire bytes — the adversarial
// workload for `semnids -lineage`, where only structural fingerprints
// can still tie the hops into one infection tree.
//
// With -iot, the outbreak propagates over UDP instead: infected
// devices probe dark space with CoAP discovery requests and deliver
// the exploit body as RFC 7959 Block1 firmware transfers, 16 bytes
// per datagram, amid benign CoAP sensor chatter — the workload for
// `semnids -udp-flows`, where only datagram-flow reassembly exposes
// the split payload.
//
// Usage:
//
//	trafficgen -o trace.pcap -sessions 5000 -codered 4 -seed 7
//	trafficgen -o worm.pcap -worm 3 -fanout 2 -seed 7
//	trafficgen -o mutated.pcap -polymorph 3 -fanout 2 -seed 7
//	trafficgen -o iot.pcap -iot 2 -fanout 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

func main() {
	var (
		out      = flag.String("o", "trace.pcap", "output pcap path")
		sessions = flag.Int("sessions", 1000, "benign background sessions (with -worm: per infection, default 2)")
		codered  = flag.Int("codered", 0, "Code Red II instances to mix in")
		worm     = flag.Int("worm", 0, "generate a propagating outbreak with this many generations instead")
		poly     = flag.Int("polymorph", 0, "generate a polymorphic outbreak (per-hop re-encoded payloads) with this many generations instead")
		iot      = flag.Int("iot", 0, "generate a CoAP-over-UDP IoT botnet (block-split payload deliveries) with this many generations instead")
		fanout   = flag.Int("fanout", 2, "victims infected per host (with -worm/-polymorph)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	// -sessions means "background per infection" in worm mode, whose
	// default differs from the trace default; only forward it when the
	// user actually set it.
	sessionsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sessions" {
			sessionsSet = true
		}
	})

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	defer f.Close()

	if *iot > 0 {
		spec := traffic.IoTSpec{
			Seed:          *seed,
			Generations:   *iot,
			FanoutPerHost: *fanout,
		}
		if sessionsSet {
			if *sessions == 0 {
				spec.BenignSessions = -1
			} else {
				spec.BenignSessions = *sessions
			}
		}
		pkts := traffic.IoTBotnet(spec)
		w, err := netpkt.NewPcapWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trafficgen:", err)
			os.Exit(1)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				fmt.Fprintln(os.Stderr, "trafficgen:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d packets (IoT botnet: %d generations, fanout %d) to %s\n",
			w.Count(), *iot, *fanout, *out)
		return
	}

	if *poly > 0 {
		spec := traffic.PolymorphSpec{
			Seed:          *seed,
			Generations:   *poly,
			FanoutPerHost: *fanout,
		}
		if sessionsSet {
			if *sessions == 0 {
				spec.BenignSessions = -1
			} else {
				spec.BenignSessions = *sessions
			}
		}
		pkts := traffic.PolymorphOutbreak(spec)
		w, err := netpkt.NewPcapWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trafficgen:", err)
			os.Exit(1)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				fmt.Fprintln(os.Stderr, "trafficgen:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d packets (polymorphic outbreak: %d generations, fanout %d) to %s\n",
			w.Count(), *poly, *fanout, *out)
		return
	}

	if *worm > 0 {
		spec := traffic.WormSpec{
			Seed:          *seed,
			Generations:   *worm,
			FanoutPerHost: *fanout,
		}
		if sessionsSet {
			// WormSpec treats 0 as "use the default" and negative as
			// "none"; an explicit -sessions 0 means none.
			if *sessions == 0 {
				spec.BenignSessions = -1
			} else {
				spec.BenignSessions = *sessions
			}
		}
		pkts := traffic.WormOutbreak(spec)
		w, err := netpkt.NewPcapWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trafficgen:", err)
			os.Exit(1)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				fmt.Fprintln(os.Stderr, "trafficgen:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d packets (worm outbreak: %d generations, fanout %d) to %s\n",
			w.Count(), *worm, *fanout, *out)
		return
	}

	count, err := traffic.WritePcap(f, traffic.TraceSpec{
		Seed:             *seed,
		BenignSessions:   *sessions,
		CodeRedInstances: *codered,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d packets (%d benign sessions, %d Code Red II instances) to %s\n",
		count, *sessions, *codered, *out)
}
