// Command trafficgen synthesizes network traces with known ground
// truth and writes them in classic pcap format: benign background
// sessions (HTTP, DNS, SMTP) optionally mixed with Code Red II
// exploitation vectors delivered by scanning sources.
//
// Usage:
//
//	trafficgen -o trace.pcap -sessions 5000 -codered 4 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"semnids/internal/traffic"
)

func main() {
	var (
		out      = flag.String("o", "trace.pcap", "output pcap path")
		sessions = flag.Int("sessions", 1000, "benign background sessions")
		codered  = flag.Int("codered", 0, "Code Red II instances to mix in")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	defer f.Close()
	count, err := traffic.WritePcap(f, traffic.TraceSpec{
		Seed:             *seed,
		BenignSessions:   *sessions,
		CodeRedInstances: *codered,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d packets (%d benign sessions, %d Code Red II instances) to %s\n",
		count, *sessions, *codered, *out)
}
