package nids

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"net/http/httptest"

	"semnids/internal/fed/transport"
	"semnids/internal/report"
	"semnids/internal/telemetry"
	"semnids/internal/traffic"
)

// scrapeBody fetches one observability endpoint and returns status
// plus body.
func scrapeBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestTelemetryEndToEndFederatedWorm is the observability acceptance
// test: a worm trace through a push-federated sensor must expose
// engine, correlator and transport series on the sensor's /metrics
// and fold/ack series on the aggregator's — scraped mid-run, while
// packets flow — and the merged report's incident timelines must
// close the loop with a finite first-packet → PROPAGATION → acked
// latency for every propagated incident.
func TestTelemetryEndToEndFederatedWorm(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
	cut := splitAtFlowBoundary(t, pkts, len(pkts)/2)

	agg, err := transport.NewAggregator(transport.AggregatorConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	// The aggregator serves the same telemetry mux fedagg mounts, with
	// /push layered on top — so this also covers the daemon's wiring.
	aggMux := telemetry.NewMux(agg.Telemetry(), nil, nil)
	aggMux.Handle("/push", agg)
	aggSrv := httptest.NewServer(aggMux)
	defer aggSrv.Close()

	sensor := pushEngine(t, 2, "sensor-a", t.TempDir(), aggSrv.URL+"/push", nil)
	defer sensor.Stop()
	sensorSrv := httptest.NewServer(sensor.TelemetryHandler())
	defer sensorSrv.Close()

	// First half of the outbreak, checkpointed and pushed: the scrape
	// below happens mid-run, with the engine live and more trace to come.
	feed(sensor, pkts[:cut])
	sensor.Drain()
	if err := sensor.CheckpointIncidents(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first acked push", func() bool { return sensor.SinkStats().Push.Acked > 0 })

	code, expo := scrapeBody(t, sensorSrv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("sensor /metrics status %d", code)
	}
	for _, series := range []string{
		"semnids_engine_packets_total",      // engine shards
		"semnids_engine_ingest_latency_ns",  // ingest→verdict histogram
		"semnids_analyzer_frame_ns",         // analyzer
		"semnids_incident_events_total",     // correlator
		"semnids_incident_stage_latency_us", // kill-chain stage transitions
		"semnids_sink_checkpoint_fsync_ns",  // durable sink
		"semnids_push_acked_total",          // push transport
		"semnids_push_rtt_ns",               // push RTT histogram
		"semnids_process_goroutines",        // process metrics
	} {
		if !strings.Contains(expo, series) {
			t.Errorf("sensor /metrics missing %s series", series)
		}
	}

	code, aggExpo := scrapeBody(t, aggSrv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("aggregator /metrics status %d", code)
	}
	for _, series := range []string{
		"semnids_agg_received_total",
		"semnids_agg_merged_total",
		"semnids_agg_push_fold_ns",
		"semnids_sink_checkpoints_total", // the aggregator's own sink shares the registry
	} {
		if !strings.Contains(aggExpo, series) {
			t.Errorf("aggregator /metrics missing %s series", series)
		}
	}

	// /statusz decodes to the shared snapshot document and carries the
	// sensor identity; /healthz is ready (spool recovered, engine live).
	code, statusz := scrapeBody(t, sensorSrv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("sensor /statusz status %d", code)
	}
	var snap telemetry.StatusSnapshot
	if err := json.Unmarshal([]byte(statusz), &snap); err != nil {
		t.Fatalf("statusz not valid JSON: %v", err)
	}
	if snap.Info["sensor"] != "sensor-a" {
		t.Errorf("statusz sensor = %v, want sensor-a", snap.Info["sensor"])
	}
	if snap.Counters["semnids_engine_packets_total"] == 0 {
		t.Error("statusz shows zero packets mid-run")
	}
	if code, _ := scrapeBody(t, sensorSrv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("sensor /healthz = %d mid-run, want 200", code)
	}

	// The rest of the outbreak, synced to the aggregator.
	feed(sensor, pkts[cut:])
	sensor.Drain()
	if err := sensor.CheckpointIncidents(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "full spool sync", sensor.PushSynced)

	st := agg.Export()
	if st == nil {
		t.Fatal("aggregator holds no evidence")
	}
	incidents, err := DeriveIncidents(st)
	if err != nil {
		t.Fatal(err)
	}
	agg.AnnotateTimelines(incidents)

	propagated := 0
	for _, inc := range incidents {
		if inc.Stage != StagePropagation {
			continue
		}
		propagated++
		var firstUS, propUS uint64
		ackedWall := false
		var ackedAtUS uint64
		for _, ev := range inc.Timeline {
			switch ev.Kind {
			case "first-packet":
				firstUS = ev.AtUS
			case "propagation":
				propUS = ev.AtUS
			case "acked":
				ackedWall = ev.Wall
				ackedAtUS = ev.AtUS
			}
		}
		// Finite packet → PROPAGATION → acked chain: the stage
		// transition is trace time ordered after the first packet, and
		// the ack is a real wall-clock stamp from the aggregator.
		if firstUS == 0 || propUS < firstUS {
			t.Errorf("%s: timeline lacks ordered first-packet(%d) → propagation(%d)", inc.Src, firstUS, propUS)
		}
		if !ackedWall || ackedAtUS == 0 {
			t.Errorf("%s: timeline lacks a wall-clock acked event (wall=%v at=%d)", inc.Src, ackedWall, ackedAtUS)
		}
	}
	if propagated == 0 {
		t.Fatal("outbreak produced no PROPAGATION incident")
	}

	// The rendered merged report carries the annotated timelines.
	var buf bytes.Buffer
	if err := report.WriteIncidentsJSON(&buf, incidents); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"first-packet"`, `"kind":"propagation"`, `"kind":"acked"`, `"wall":true`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("merged JSONL report missing %s", want)
		}
	}
}
