package nids

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/engine"
	"semnids/internal/fed/transport"
	"semnids/internal/fed/transport/faultnet"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

// pushEngine builds a correlated engine with a durable sink and the
// push transport, tuned for test cadence.
func pushEngine(t *testing.T, shards int, sensor, dir, url string, client *http.Client) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:            shards,
		Correlate:         true,
		SensorID:          sensor,
		IncidentExportDir: dir,
		PushURL:           url,
		PushClient:        client,
		PushInterval:      10 * time.Millisecond,
		PushTimeout:       2 * time.Second,
		PushBackoffMin:    5 * time.Millisecond,
		PushBackoffMax:    40 * time.Millisecond,
		PushSeed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// aggServer wraps an aggregator behind a swappable pointer so tests
// can crash-kill and restart the aggregator without changing the URL
// the sensors push to. While no aggregator is installed, pushes get a
// retryable 503 — the outage window.
type aggServer struct {
	cur atomic.Pointer[transport.Aggregator]
	srv *httptest.Server
}

func newAggServer(t *testing.T, dir string) *aggServer {
	t.Helper()
	a := &aggServer{}
	a.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agg := a.cur.Load()
		if agg == nil {
			http.Error(w, "aggregator down", http.StatusServiceUnavailable)
			return
		}
		agg.ServeHTTP(w, r)
	}))
	t.Cleanup(a.srv.Close)
	a.install(t, dir)
	return a
}

func (a *aggServer) install(t *testing.T, dir string) *transport.Aggregator {
	t.Helper()
	agg, err := transport.NewAggregator(transport.AggregatorConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a.cur.Store(agg)
	return agg
}

// waitUntil polls cond with a generous deadline (fault schedules and
// backoff make individual attempts slow on a loaded machine).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFederationPushConvergesUnderFaults is the transport acceptance
// test: a worm trace split across two push-federated sensors must
// converge at the aggregator to the byte-identical incident report of
// a solo sensor — at shard counts 1, 2 and 4, through a fault plan
// injecting drops, mid-body truncations, 5xx bursts, duplicates and
// latency on a fixed seed, and across a kill-style aggregator restart
// in the middle of the stream.
func TestFederationPushConvergesUnderFaults(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
	cut := splitAtFlowBoundary(t, pkts, len(pkts)/2)

	for _, shards := range []int{1, 2, 4} {
		solo := federatedEngine(t, shards, "solo", "")
		feed(solo, pkts)
		solo.Stop()
		want := renderIncidents(t, solo)
		if want == "no correlated incidents\n" {
			t.Fatal("baseline run produced no incidents")
		}

		aggDir := t.TempDir()
		as := newAggServer(t, aggDir)
		ft := faultnet.New(nil, faultnet.Plan{
			Seed:       11,
			Drop:       0.2,
			Truncate:   0.15,
			Err:        0.15,
			Duplicate:  0.15,
			MaxLatency: 2 * time.Millisecond,
		})
		client := &http.Client{Transport: ft}

		sensors := [2]*Engine{
			pushEngine(t, shards, "sensor-a", t.TempDir(), as.srv.URL, client),
			pushEngine(t, shards, "sensor-b", t.TempDir(), as.srv.URL, client),
		}
		route := func(ps []*netpkt.Packet) {
			for _, p := range ps {
				sensors[engine.FlowHash(netpkt.FlowKey{SrcIP: p.SrcIP}, 2)].Process(clonePacket(p))
			}
		}

		// First half, then a kill-style aggregator restart mid-stream:
		// no final checkpoint, no flush — recovery must come from the
		// durably acked folds alone.
		route(pkts[:cut])
		sensors[0].Drain()
		sensors[1].Drain()
		as.cur.Load().Kill()
		as.cur.Store(nil) // outage: pushes bounce off a 503 until restart
		restarted := as.install(t, aggDir)

		route(pkts[cut:])
		sensors[0].Drain()
		sensors[1].Drain()

		waitUntil(t, "aggregator convergence on the solo report", func() bool {
			st := restarted.Export()
			return st != nil && renderDerived(t, st) == want
		})
		for _, e := range sensors {
			m := e.SinkStats()
			if m.Push.Acked == 0 {
				t.Errorf("shards=%d: sensor pushed nothing (%+v)", shards, m.Push)
			}
			e.Stop()
		}
		if c := ft.Counts(); c.Drops == 0 && c.Truncations == 0 && c.Errs == 0 && c.Duplicates == 0 {
			t.Errorf("shards=%d: fault plan injected nothing: %+v", shards, c)
		}
		restarted.Close()
	}
}

// TestFederationPushDegradation pins the unreachable-aggregator
// contract: ingest continues at full rate, the sink's segment
// directory spools, retries back off with the state visible in
// SinkStats, and — with a small retention budget — prune eventually
// outruns push and the Dropped counter says so. When the aggregator
// comes back, the newest full-snapshot checkpoint still delivers the
// complete evidence: degradation cost lag, not the report.
func TestFederationPushDegradation(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 13, Generations: 2, FanoutPerHost: 2})
	aggDir := t.TempDir()
	as := newAggServer(t, aggDir)
	as.cur.Load().Close()
	as.cur.Store(nil) // aggregator down from the start

	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:            2,
		Correlate:         true,
		SensorID:          "sensor-a",
		IncidentExportDir: t.TempDir(),
		// A one-byte rotation budget forces a fresh segment per
		// checkpoint, and the two-segment retention floor prunes
		// aggressively — the smallest spool the sink allows.
		IncidentExportRotateBytes: 1,
		IncidentKeepSegments:      2,
		PushURL:                   as.srv.URL,
		PushInterval:              5 * time.Millisecond,
		PushTimeout:               time.Second,
		PushBackoffMin:            5 * time.Millisecond,
		PushBackoffMax:            20 * time.Millisecond,
		PushSeed:                  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(e, pkts)

	// Ingest never stalled: the engine processed the full trace while
	// every push failed.
	if m := e.Stats(); m.Packets != uint64(len(pkts)) {
		t.Fatalf("ingest degraded with the aggregator down: %d of %d packets", m.Packets, len(pkts))
	}
	// Drain inside the poll: checkpoints are notification-driven, and
	// feed() only processes packets — without a nudge the first
	// checkpoint (and thus the first spooled segment) would wait for
	// the sink's 10s periodic tick.
	waitUntil(t, "spool and backoff visible in stats", func() bool {
		e.Drain()
		p := e.SinkStats().Push
		return p.Retried > 0 && p.Backoff > 0 && p.Spooled > 0 && p.LastError != ""
	})
	// Keep checkpointing until rotation prunes an unacked segment.
	waitUntil(t, "prune to outrun push (Dropped counter)", func() bool {
		e.Drain()
		return e.SinkStats().Push.Dropped > 0
	})

	// Aggregator comes back: catch-up drains the spool, resets the
	// backoff, and the newest full snapshot carries everything the
	// pruned segments held.
	restarted := as.install(t, aggDir)
	waitUntil(t, "catch-up after recovery", func() bool {
		st := restarted.Export()
		return st != nil && renderDerived(t, st) == renderIncidents(t, e) && e.PushSynced()
	})
	if p := e.SinkStats().Push; p.Backoff != 0 || p.LastError != "" {
		t.Errorf("post-recovery push state not reset: %+v", p)
	}
	e.Stop()
	restarted.Close()
}

// TestClassifierStatePersistsAcrossRestart is the classifier-counter
// satellite: sub-threshold dark-space scan counts and honeypot
// suspicion marks ride the exported segments, so a slow scanner does
// not get a fresh start at zero by waiting for a sensor restart.
func TestClassifierStatePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	scanner := netip.MustParseAddr("10.9.9.9")
	lurker := netip.MustParseAddr("10.8.8.8")
	dark := func(last byte) netip.Addr {
		base := traffic.DarkNet.Addr().As4()
		return netip.AddrFrom4([4]byte{base[0], base[1], base[2], last})
	}
	probe := func(src, dst netip.Addr, port uint16, ts uint64) *netpkt.Packet {
		return &netpkt.Packet{
			SrcIP: src, DstIP: dst, Proto: netpkt.ProtoTCP, HasTCP: true,
			SrcPort: port, DstPort: 80, Flags: netpkt.FlagSYN, TimestampUS: ts,
		}
	}

	// First life: two dark touches (threshold is 3) and one honeypot
	// contact — all below any alert, pure classifier state.
	first := federatedEngine(t, 2, "sensor-a", dir)
	first.Process(probe(scanner, dark(10), 40001, 1000))
	first.Process(probe(scanner, dark(11), 40002, 2000))
	first.Process(probe(lurker, traffic.HoneypotAddr, 40003, 3000))
	first.Drain()
	if sel := first.Stats().Selected; sel != 1 {
		t.Fatalf("first life selected = %d, want only the honeypot contact", sel)
	}
	first.Stop()

	// Second life, same directory: the third distinct dark touch must
	// complete the scanner verdict, and the honeypot lurker must still
	// be suspicious — both verdicts depend entirely on recovered state.
	second := federatedEngine(t, 2, "sensor-a", dir)
	second.Process(probe(scanner, dark(12), 40004, 4000))
	second.Process(probe(lurker, traffic.WebServer, 40005, 5000))
	second.Drain()
	if sel := second.Stats().Selected; sel != 2 {
		t.Errorf("restarted sensor selected = %d, want the scanner and the suspicious lurker", sel)
	}
	second.Stop()

	// Control: a fresh sensor with no recovered state selects neither.
	control := federatedEngine(t, 2, "sensor-b", "")
	control.Process(probe(scanner, dark(12), 40004, 4000))
	control.Process(probe(lurker, traffic.WebServer, 40005, 5000))
	control.Drain()
	if sel := control.Stats().Selected; sel != 0 {
		t.Errorf("control sensor selected = %d, want 0", sel)
	}
	control.Stop()
}

// TestClassifierEvidenceFederates: classifier state from two sensors
// folds through the wire format and seeds a third engine — the same
// union a restart performs, one level up.
func TestClassifierEvidenceFederates(t *testing.T) {
	scanner := netip.MustParseAddr("10.9.9.9")
	dark := func(last byte) netip.Addr {
		base := traffic.DarkNet.Addr().As4()
		return netip.AddrFrom4([4]byte{base[0], base[1], base[2], last})
	}
	probe := func(dst netip.Addr, port uint16, ts uint64) *netpkt.Packet {
		return &netpkt.Packet{
			SrcIP: scanner, DstIP: dst, Proto: netpkt.ProtoTCP, HasTCP: true,
			SrcPort: port, DstPort: 80, Flags: netpkt.FlagSYN, TimestampUS: ts,
		}
	}

	// Two vantage points each see one distinct dark touch.
	a := federatedEngine(t, 2, "sensor-a", "")
	a.Process(probe(dark(10), 40001, 1000))
	a.Drain()
	b := federatedEngine(t, 2, "sensor-b", "")
	b.Process(probe(dark(11), 40002, 2000))
	b.Drain()
	exA, exB := exportOf(t, a), exportOf(t, b)
	a.Stop()
	b.Stop()
	if len(exA.Classifier) != 1 || len(exB.Classifier) != 1 {
		t.Fatalf("classifier evidence not exported: a=%d b=%d records", len(exA.Classifier), len(exB.Classifier))
	}

	merged, err := MergeEvidence(exA, exB)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEvidence(&buf, merged); err != nil {
		t.Fatal(err)
	}

	// A third sensor seeded with the merged evidence holds both dark
	// touches: its next distinct touch completes the verdict.
	c := federatedEngine(t, 2, "sensor-c", "")
	if err := c.ImportIncidents(&buf); err != nil {
		t.Fatal(err)
	}
	c.Process(probe(dark(12), 40003, 3000))
	c.Drain()
	if sel := c.Stats().Selected; sel != 1 {
		t.Errorf("seeded sensor selected = %d, want the union-completed scanner", sel)
	}
	c.Stop()
}
