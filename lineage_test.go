package nids

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"semnids/internal/engine"
	"semnids/internal/fed/transport/faultnet"
	"semnids/internal/netpkt"
	"semnids/internal/report"
	"semnids/internal/traffic"
)

// lineageEngine builds a correlated engine with structural-fingerprint
// lineage tracing attached.
func lineageEngine(t *testing.T, shards int, sensor string) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:    shards,
		Correlate: true,
		Lineage:   true,
		SensorID:  sensor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// renderAncestry renders a forest both ways — text and JSONL — for
// byte comparison.
func renderAncestry(t *testing.T, trees []AncestryTree) string {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteAncestry(&buf, trees); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteAncestryJSON(&buf, trees); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// polymorphTrace is the adversarial workload: every hop re-encodes the
// worm body, so no two deliveries share an exact fingerprint.
func polymorphTrace() []*netpkt.Packet {
	return traffic.PolymorphOutbreak(traffic.PolymorphSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
}

// patientZero is the outbreak's root host for a given spec seed (the
// generator draws it first, before any session traffic).
func patientZero(seed int64) string {
	return traffic.NewGen(seed).RandClient().String()
}

// TestLineageRequiresCorrelate pins the config contract: lineage rides
// the correlator's event feed, so enabling it alone is a setup error.
func TestLineageRequiresCorrelate(t *testing.T) {
	_, err := NewEngine(EngineConfig{Lineage: true})
	if err == nil || !strings.Contains(err.Error(), "Correlate") {
		t.Fatalf("NewEngine(Lineage without Correlate) = %v, want a Correlate complaint", err)
	}
}

// TestLineagePolymorphRegression is the regression pin for the
// satellite generator: a polymorphic outbreak defeats exact-fingerprint
// propagation evidence — patient zero stalls below PROPAGATION with
// lineage off — and flips to PROPAGATION when structural fingerprints
// are on, because every hop's re-encoding decodes to the same tail.
func TestLineagePolymorphRegression(t *testing.T) {
	pkts := polymorphTrace()
	p0 := patientZero(7)

	stageOf := func(e *Engine) string {
		t.Helper()
		st := stageBySource(e.Incidents())
		if len(st) == 0 {
			t.Fatal("outbreak produced no incidents")
		}
		stage, ok := st[p0]
		if !ok {
			t.Fatalf("patient zero %s has no incident (stages: %v)", p0, st)
		}
		return stage
	}

	off := federatedEngine(t, 2, "sensor-a", "")
	feed(off, pkts)
	off.Stop()
	if got := stageOf(off); got == "PROPAGATION" {
		t.Fatalf("lineage off: patient zero reached %s — exact fingerprints unexpectedly repeated, the workload is not polymorphic", got)
	}

	on := lineageEngine(t, 2, "sensor-a")
	feed(on, pkts)
	on.Stop()
	if got := stageOf(on); got != "PROPAGATION" {
		t.Fatalf("lineage on: patient zero stage = %s, want PROPAGATION via structural fingerprints", got)
	}
	if m := on.Stats(); m.Sketches == 0 {
		t.Error("lineage engine computed no sketches")
	}
}

// TestLineageAncestryDeterministic is the adversarial acceptance test:
// the mutated outbreak's reconstructed infection tree is byte-identical
// across shard counts, and a federated split across two sensors —
// every propagation hop straddling the cut — merges to the same forest
// a solo all-seeing sensor reconstructs. The tree itself is checked
// against the generator's ground truth: one family, patient zero at
// the root, all six victims, no benign host.
func TestLineageAncestryDeterministic(t *testing.T) {
	pkts := polymorphTrace()
	p0 := patientZero(7)

	var want string
	for _, shards := range []int{1, 2, 4} {
		solo := lineageEngine(t, shards, "solo")
		feed(solo, pkts)
		solo.Stop()
		trees := solo.Ancestry()
		got := renderAncestry(t, trees)
		if shards == 1 {
			want = got
			// Ground truth: generations=2 × fanout=2 gives patient zero,
			// two children, four grandchildren — one family, one tree.
			if len(trees) != 1 {
				t.Fatalf("%d trees, want 1 family", len(trees))
			}
			tr := trees[0]
			if tr.Nodes != 7 || tr.MaxDepth != 2 || tr.Edges() != 6 {
				t.Fatalf("tree = %d nodes depth %d, want 7 nodes depth 2", tr.Nodes, tr.MaxDepth)
			}
			if tr.Root.Host.String() != p0 {
				t.Fatalf("root = %s, want patient zero %s", tr.Root.Host, p0)
			}
			if len(tr.Root.Children) != 2 {
				t.Fatalf("patient zero has %d children, want 2", len(tr.Root.Children))
			}
			for _, c := range tr.Root.Children {
				if !strings.HasPrefix(c.Host.String(), "172.16.") {
					t.Fatalf("child %s outside the victim subnet", c.Host)
				}
				if len(c.Children) != 2 {
					t.Fatalf("generation-1 host %s has %d children, want 2", c.Host, len(c.Children))
				}
			}
			continue
		}
		if got != want {
			t.Errorf("shards=%d: ancestry diverged from shards=1:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}

	// Federated split: partition by source so every infection edge has
	// its delivery witnessed at one sensor and its re-emission at the
	// other — only the merged lineage can rebuild the tree.
	for _, shards := range []int{1, 2, 4} {
		sensors := [2]*Engine{
			lineageEngine(t, shards, "sensor-a"),
			lineageEngine(t, shards, "sensor-b"),
		}
		for _, p := range pkts {
			sensors[engine.FlowHash(netpkt.FlowKey{SrcIP: p.SrcIP}, 2)].Process(clonePacket(p))
		}
		var exports [2]*EvidenceExport
		for i, e := range sensors {
			e.Stop()
			exports[i] = exportOf(t, e)
		}
		merged, err := MergeEvidence(exports[0], exports[1])
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAncestry(t, TraceAncestry(merged)); got != want {
			t.Errorf("shards=%d: federated ancestry diverged from the solo sensor:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
		// Merge symmetry on the ancestry render.
		flipped, err := MergeEvidence(exports[1], exports[0])
		if err != nil {
			t.Fatal(err)
		}
		if renderAncestry(t, TraceAncestry(flipped)) != want {
			t.Errorf("shards=%d: Merge(B,A) ancestry differs from Merge(A,B)", shards)
		}
	}
}

// lineagePushEngine is pushEngine with lineage tracing attached.
func lineagePushEngine(t *testing.T, shards int, sensor, dir, url string, client *http.Client) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:            shards,
		Correlate:         true,
		Lineage:           true,
		SensorID:          sensor,
		IncidentExportDir: dir,
		PushURL:           url,
		PushClient:        client,
		PushInterval:      10 * time.Millisecond,
		PushTimeout:       2 * time.Second,
		PushBackoffMin:    5 * time.Millisecond,
		PushBackoffMax:    40 * time.Millisecond,
		PushSeed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLineagePushFederatedAncestry runs the mutated outbreak through
// the full push transport under fault injection: two lineage-tracing
// sensors split the trace by source, push evidence through a flaky
// network to an aggregator, and the aggregator's merged state must
// reconstruct the byte-identical infection tree of a solo sensor —
// lineage records ride the same retry/spool/ack machinery as all other
// evidence.
func TestLineagePushFederatedAncestry(t *testing.T) {
	pkts := polymorphTrace()

	solo := lineageEngine(t, 2, "solo")
	feed(solo, pkts)
	solo.Stop()
	want := renderAncestry(t, solo.Ancestry())
	if want == "no ancestry\n" {
		t.Fatal("solo sensor reconstructed no ancestry")
	}

	as := newAggServer(t, t.TempDir())
	ft := faultnet.New(nil, faultnet.Plan{
		Seed:       11,
		Drop:       0.2,
		Truncate:   0.15,
		Err:        0.15,
		Duplicate:  0.15,
		MaxLatency: 2 * time.Millisecond,
	})
	client := &http.Client{Transport: ft}
	sensors := [2]*Engine{
		lineagePushEngine(t, 2, "sensor-a", t.TempDir(), as.srv.URL, client),
		lineagePushEngine(t, 2, "sensor-b", t.TempDir(), as.srv.URL, client),
	}
	for _, p := range pkts {
		sensors[engine.FlowHash(netpkt.FlowKey{SrcIP: p.SrcIP}, 2)].Process(clonePacket(p))
	}
	sensors[0].Drain()
	sensors[1].Drain()

	waitUntil(t, "aggregator ancestry convergence on the solo forest", func() bool {
		st := as.cur.Load().Export()
		return st != nil && renderAncestry(t, TraceAncestry(st)) == want
	})
	for _, e := range sensors {
		e.Stop()
	}
	if c := ft.Counts(); c.Drops == 0 && c.Truncations == 0 && c.Errs == 0 && c.Duplicates == 0 {
		t.Errorf("fault plan injected nothing: %+v", c)
	}
	as.cur.Load().Close()
}

// TestLineageZeroFalseEdges pins the no-false-parents floor: benign
// traffic builds no trees at all, and a plain (non-self-decrypting)
// worm — whose payload never rewrites itself under emulation — yields
// observations-free lineage even with tracing on. An edge can only
// come from a witnessed self-decrypted delivery.
func TestLineageZeroFalseEdges(t *testing.T) {
	benign := traffic.Synthesize(traffic.TraceSpec{Seed: 3, BenignSessions: 120})
	e := lineageEngine(t, 2, "sensor-a")
	feed(e, benign)
	e.Stop()
	if trees := e.Ancestry(); len(trees) != 0 {
		t.Fatalf("benign trace produced %d ancestry trees", len(trees))
	}

	plain := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
	e = lineageEngine(t, 2, "sensor-a")
	feed(e, plain)
	e.Stop()
	if trees := e.Ancestry(); len(trees) != 0 {
		t.Fatalf("plain Code Red outbreak produced %d structural ancestry trees — its payload does not self-decrypt, so every edge is false", len(trees))
	}
	if ex := exportOf(t, e); len(ex.Lineage) != 0 {
		t.Fatalf("plain outbreak exported %d lineage observations", len(ex.Lineage))
	}
}

// TestLineageOffLeavesReportsUntouched pins the compatibility
// contract from both sides. With lineage off, the evidence export
// carries no lineage records (and hence no wire extension — see
// TestWireLineageOffByteIdentical for the byte-level check). With
// lineage on, a trace that produces no structural observations — the
// plain exact-fingerprint worm — renders byte-identical incident
// reports to a lineage-off engine: the structural path adds evidence,
// it never alters what exact fingerprints already proved.
func TestLineageOffLeavesReportsUntouched(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})

	off := federatedEngine(t, 2, "sensor-a", "")
	feed(off, pkts)
	off.Stop()
	if ex := exportOf(t, off); len(ex.Lineage) != 0 {
		t.Fatalf("lineage-off engine exported %d lineage observations", len(ex.Lineage))
	}
	wantReport := renderIncidents(t, off)

	on := lineageEngine(t, 2, "sensor-a")
	feed(on, pkts)
	on.Stop()
	if got := renderIncidents(t, on); got != wantReport {
		t.Errorf("enabling lineage changed the plain worm's incident report:\n got:\n%s\nwant:\n%s", got, wantReport)
	}
}
