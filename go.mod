module semnids

go 1.24
