// Package telemetry is the process-wide live-metrics subsystem: a
// registry of allocation-free atomic counters and gauges plus
// log-bucketed fixed-size latency histograms, cheap enough to live on
// the packet hot path, with hand-rolled exposition (Prometheus text
// format, JSON status snapshots, health checks) and no external
// dependencies.
//
// Design constraints, in order:
//
//   - Zero allocation on the record path. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on memory
//     obtained once at registration; TestRecordAllocs pins this.
//   - Reads never stop writers. Exposition walks atomics with plain
//     Loads; a scrape under full ingest load observes a slightly
//     torn-across-series snapshot, never a stalled shard.
//   - Derived values are pulled, not pushed. Subsystems that already
//     maintain atomic counters (engine, correlator, sink) register
//     CounterFunc/GaugeFunc closures evaluated only at scrape time,
//     so instrumenting an existing counter costs the hot path
//     nothing at all.
//
// Metric names follow Prometheus conventions (snake_case families,
// unit suffixes, `_total` on counters) and may carry a label suffix
// in the name itself — `engine_shard_queue_depth{shard="3"}` — which
// exposition groups into one family with per-label series.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates registered metric types for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// metricEntry is one registered metric: a name (family plus optional
// label suffix), help text, and exactly one live value source.
type metricEntry struct {
	name string // full series name, e.g. `engine_queue{shard="0"}`
	help string
	kind kind

	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() int64
	hist        *Histogram
}

// counterValue resolves the entry's current counter reading.
func (m *metricEntry) counterValue() uint64 {
	if m.counterFunc != nil {
		return m.counterFunc()
	}
	return m.counter.Value()
}

// gaugeValue resolves the entry's current gauge reading.
func (m *metricEntry) gaugeValue() int64 {
	if m.gaugeFunc != nil {
		return m.gaugeFunc()
	}
	return m.gauge.Value()
}

// family splits a series name into its family and label suffix
// (`engine_queue{shard="0"}` -> `engine_queue`, `shard="0"`).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// Registry holds named metrics. Registration is idempotent: asking
// for an existing name of the same kind returns the existing handle,
// so two subsystems (or one restarted in tests) can share a registry
// without double-registration panics; a kind mismatch panics, since
// it is always a programming error.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*metricEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// register installs an entry, returning the existing one on an
// idempotent re-registration.
func (r *Registry) register(e *metricEntry) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[e.name]; ok {
		if old.kind != e.kind {
			panic(fmt.Sprintf("telemetry: %q re-registered as a different kind", e.name))
		}
		return old
	}
	r.entries[e.name] = e
	return e
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(&metricEntry{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return e.counter
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the zero-hot-path-cost bridge to counters a subsystem
// already maintains. The function must be safe to call from any
// goroutine. On an idempotent re-registration the first function
// wins.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metricEntry{name: name, help: help, kind: kindCounter, counterFunc: fn})
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(&metricEntry{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return e.gauge
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metricEntry{name: name, help: help, kind: kindGauge, gaugeFunc: fn})
}

// Histogram registers (or returns) the named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	e := r.register(&metricEntry{name: name, help: help, kind: kindHistogram, hist: NewHistogram()})
	return e.hist
}

// sorted returns the entries ordered by (family, labels) — the
// stable exposition order, grouping a family's labeled series.
func (r *Registry) sorted() []*metricEntry {
	r.mu.RLock()
	out := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		fi, li := family(out[i].name)
		fj, lj := family(out[j].name)
		if fi != fj {
			return fi < fj
		}
		return li < lj
	})
	return out
}
