package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// NewMux bundles the standard observability surface onto one
// http.ServeMux:
//
//	/metrics      Prometheus text exposition of reg
//	/statusz      JSON snapshot of reg (info() merged in, may be nil)
//	/healthz      200 when ready, 503 when a check fails or draining
//	/debug/pprof  the net/http/pprof handlers, bound explicitly so
//	              nothing leaks onto http.DefaultServeMux
//
// Both daemons (semnids -listen, fedagg) and tests mount exactly this
// mux, optionally adding their own routes on the returned value.
// health may be nil (always ready); info may be nil.
func NewMux(reg *Registry, health *Health, info func() map[string]any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var m map[string]any
		if info != nil {
			m = info()
		}
		_ = WriteStatusJSON(w, reg, m)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ready, draining := true, false
		var checks []CheckStatus
		if health != nil {
			ready, draining, checks = health.Ready()
		}
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			Ready    bool          `json:"ready"`
			Draining bool          `json:"draining,omitempty"`
			Checks   []CheckStatus `json:"checks,omitempty"`
		}{Ready: ready, Draining: draining, Checks: checks})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterProcessMetrics adds process-level series (uptime,
// goroutines, heap) to reg, evaluated at scrape time.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("semnids_process_uptime_seconds", "Seconds since telemetry registration.", func() int64 {
		return int64(time.Since(start).Seconds())
	})
	reg.GaugeFunc("semnids_process_goroutines", "Live goroutine count.", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("semnids_process_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
}
