package telemetry

import (
	"sort"
	"sync"
)

// Health tracks named readiness checks plus a drain flag. A process
// is ready when every registered check passes and it is not
// draining; /healthz reports 200/503 accordingly. Draining is
// deliberately separate from check failure: flipping it tells load
// balancers to stop sending work while the process finishes in-flight
// requests, without implying anything is broken.
type Health struct {
	mu       sync.Mutex
	checks   map[string]checkState
	draining bool
}

type checkState struct {
	ok     bool
	detail string
}

// NewHealth builds an empty health tracker (vacuously ready).
func NewHealth() *Health {
	return &Health{checks: make(map[string]checkState)}
}

// Set records the state of one named check. detail is surfaced in the
// /healthz body ("recovered 3 segments", "engine stopped", ...).
func (h *Health) Set(name string, ok bool, detail string) {
	h.mu.Lock()
	h.checks[name] = checkState{ok: ok, detail: detail}
	h.mu.Unlock()
}

// SetDraining flips the drain flag. While draining, Ready reports
// false regardless of check states.
func (h *Health) SetDraining(d bool) {
	h.mu.Lock()
	h.draining = d
	h.mu.Unlock()
}

// CheckStatus is one named check's reported state.
type CheckStatus struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Ready reports overall readiness plus per-check detail, checks
// sorted by name for stable rendering.
func (h *Health) Ready() (ready, draining bool, checks []CheckStatus) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ready = !h.draining
	for name, st := range h.checks {
		if !st.ok {
			ready = false
		}
		checks = append(checks, CheckStatus{Name: name, OK: st.ok, Detail: st.detail})
	}
	sort.Slice(checks, func(i, j int) bool { return checks[i].Name < checks[j].Name })
	return ready, h.draining, checks
}
