package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestBucketRoundTrip: every value lands in a bucket whose bounds
// contain it, and bucket upper bounds are strictly increasing — the
// invariants quantile math rests on.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 17, 1023, 1024, math.MaxInt64, math.MaxInt64 - 1, -5}
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63n(1<<uint(4+rng.Intn(59))))
	}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx > histMaxIdx {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		want := v
		if want < 0 {
			want = 0
		}
		if want > up {
			t.Fatalf("value %d: bucket %d upper %d below value", v, idx, up)
		}
		if idx > 0 {
			lo := bucketUpper(idx-1) + 1
			if want < lo {
				t.Fatalf("value %d: bucket %d lower %d above value", v, idx, lo)
			}
		}
		// Relative error bound: upper exceeds the value by < 12.5%.
		if want > histExactMax && float64(up-want) > 0.125*float64(want)+1 {
			t.Fatalf("value %d: bucket upper %d exceeds 12.5%% error", v, up)
		}
	}
	for i := 1; i <= histMaxIdx; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

// TestHistogramNoOverflow: extreme and negative values stay inside
// the fixed array and are counted exactly once.
func TestHistogramNoOverflow(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64, math.MaxInt64 - 1} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket total = %d, want 6", total)
	}
	if s.Max != math.MaxInt64 {
		t.Fatalf("max = %d", s.Max)
	}
}

// TestMergeCommutative: property test — for random observation sets
// A and B, Merge(A,B) == Merge(B,A) == histogram of A∪B.
func TestMergeCommutative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ha, hb, hu := NewHistogram(), NewHistogram(), NewHistogram()
		for i := 0; i < 500; i++ {
			v := rng.Int63n(1 << uint(1+rng.Intn(40)))
			if rng.Intn(2) == 0 {
				ha.Observe(v)
			} else {
				hb.Observe(v)
			}
			hu.Observe(v)
		}
		sa, sb, su := ha.Snapshot(), hb.Snapshot(), hu.Snapshot()
		ab, ba := Merge(sa, sb), Merge(sb, sa)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("seed %d: merge not commutative:\n%+v\n%+v", seed, ab, ba)
		}
		if !reflect.DeepEqual(ab, su) {
			t.Fatalf("seed %d: merge != union histogram:\n%+v\n%+v", seed, ab, su)
		}
	}
}

// TestQuantilesMonotone: property test — quantiles are non-decreasing
// in q, bounded by max's bucket, and exact for exact-bucket values.
func TestQuantilesMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		h := NewHistogram()
		for i := 0; i < 1+rng.Intn(2000); i++ {
			h.Observe(rng.Int63n(1 << uint(1+rng.Intn(50))))
		}
		s := h.Snapshot()
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: quantile not monotone at q=%.2f: %d < %d", seed, q, v, prev)
			}
			prev = v
		}
		if p100 := s.Quantile(1); p100 < s.Max {
			t.Fatalf("seed %d: p100 %d below max %d", seed, p100, s.Max)
		}
	}
	// Exact small values quantile exactly.
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(int64(i % 8))
	}
	if got := h.Snapshot().Quantile(0.5); got != 3 {
		t.Fatalf("p50 of uniform 0..7 = %d, want 3", got)
	}
}

// TestRecordAllocs pins the zero-allocation contract of the record
// path: Counter.Add, Gauge ops and Histogram.Observe.
func TestRecordAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "t")
	g := reg.Gauge("t_gauge", "t")
	h := reg.Histogram("t_hist", "t")
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(i)
		g.Add(-1)
		h.Observe(i * 1000)
		i++
	})
	if allocs != 0 {
		t.Fatalf("record path allocates: %.2f allocs/op, want 0", allocs)
	}
}

// TestPrometheusExposition checks the hand-rolled text format: family
// headers emitted once, labeled series grouped, histogram expansion
// cumulative with +Inf.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_things_total", "Things.").Add(3)
	reg.Gauge("app_depth", "Depth.").Set(-2)
	reg.CounterFunc("app_derived_total", "Derived.", func() uint64 { return 42 })
	reg.Counter(`app_labeled_total{shard="1"}`, "Labeled.").Add(1)
	reg.Counter(`app_labeled_total{shard="0"}`, "Labeled.").Add(2)
	h := reg.Histogram("app_lat_ns", "Latency.")
	h.Observe(5)
	h.Observe(5)
	h.Observe(100)

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE app_things_total counter\napp_things_total 3\n",
		"# TYPE app_depth gauge\napp_depth -2\n",
		"app_derived_total 42\n",
		"# TYPE app_labeled_total counter\napp_labeled_total{shard=\"0\"} 2\napp_labeled_total{shard=\"1\"} 1\n",
		"# TYPE app_lat_ns histogram\n",
		"app_lat_ns_bucket{le=\"5\"} 2\n",
		"app_lat_ns_bucket{le=\"+Inf\"} 3\n",
		"app_lat_ns_sum 110\napp_lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE app_labeled_total") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
}

// TestStatusSnapshotAndHealthz drives the bundled mux end to end:
// /statusz JSON decodes with all series, /healthz flips with checks
// and drain, /metrics serves, /debug/pprof/ serves.
func TestStatusSnapshotAndHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x").Add(9)
	reg.Gauge("x_depth", "x").Set(4)
	reg.Histogram("x_lat", "x").Observe(77)
	health := NewHealth()
	health.Set("spool", true, "recovered")
	srv := httptest.NewServer(NewMux(reg, health, func() map[string]any {
		return map[string]any{"sensor": "s1"}
	}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("statusz decode: %v\n%s", err, body)
	}
	if snap.Counters["x_total"] != 9 || snap.Gauges["x_depth"] != 4 || snap.Histograms["x_lat"].Count != 1 {
		t.Fatalf("statusz content: %+v", snap)
	}
	if snap.Info["sensor"] != "s1" || snap.TakenUnixUS == 0 {
		t.Fatalf("statusz identity: %+v", snap)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz ready = %d, want 200", code)
	}
	health.Set("spool", false, "corrupt")
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "corrupt") {
		t.Fatalf("/healthz failed-check = %d %q, want 503 with detail", code, body)
	}
	health.Set("spool", true, "recovered")
	health.SetDraining(true)
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz draining = %d %q, want 503 draining", code, body)
	}
	health.SetDraining(false)
	if code, _ := get("/healthz"); code != 200 {
		t.Fatal("/healthz did not recover after drain cleared")
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "x_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestRegistryIdempotent: same-name same-kind returns the shared
// handle; kind mismatch panics.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "d")
	b := reg.Counter("dup_total", "d")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("handles not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("dup_total", "d")
}
