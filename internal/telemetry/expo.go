package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), hand-rolled so the sensor
// carries no client-library dependency. Families are emitted in
// sorted order with one # HELP / # TYPE header each; labeled series
// of the same family group under that single header. Histograms
// expand to cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count`, with only populated buckets (plus +Inf) emitted to keep
// scrape payloads proportional to observed spread, not to the fixed
// 488-slot backing array.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	lastFam := ""
	for _, e := range r.sorted() {
		fam, labels := family(e.name)
		if fam != lastFam {
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typeString(e.kind))
			lastFam = fam
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.counterValue())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.gaugeValue())
		case kindHistogram:
			writePromHistogram(bw, fam, labels, e.hist.Snapshot())
		}
	}
	return bw.Flush()
}

func typeString(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writePromHistogram emits the cumulative bucket expansion of one
// histogram series, splicing `le` into any existing label set.
func writePromHistogram(w io.Writer, fam, labels string, s HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", fam, labels, sep, b.Upper, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", fam, labels, sep, cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", fam, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, s.Count)
}

// HistStats is the digest form of a histogram in a status snapshot:
// quantiles precomputed so consumers (humans, JSON-lines scrapers)
// need no bucket math.
type HistStats struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// StatusSnapshot is the JSON shape served at /statusz and emitted by
// `semnids -stats-interval`: every registered series at one point in
// time, plus caller-supplied identity fields.
type StatusSnapshot struct {
	TakenUnixUS int64                `json:"taken_unix_us"`
	Info        map[string]any       `json:"info,omitempty"`
	Counters    map[string]uint64    `json:"counters,omitempty"`
	Gauges      map[string]int64     `json:"gauges,omitempty"`
	Histograms  map[string]HistStats `json:"histograms,omitempty"`
}

// Snapshot collects every registered series. info is merged verbatim
// into the snapshot's identity block (sensor id, uptime, ...).
func (r *Registry) StatusSnapshot(info map[string]any) StatusSnapshot {
	s := StatusSnapshot{
		TakenUnixUS: time.Now().UnixMicro(),
		Info:        info,
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		Histograms:  map[string]HistStats{},
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counterValue()
		case kindGauge:
			s.Gauges[e.name] = e.gaugeValue()
		case kindHistogram:
			hs := e.hist.Snapshot()
			s.Histograms[e.name] = HistStats{
				Count: hs.Count, Sum: hs.Sum, Max: hs.Max,
				P50: hs.Quantile(0.50), P90: hs.Quantile(0.90), P99: hs.Quantile(0.99),
			}
		}
	}
	return s
}

// WriteStatusJSON renders one status snapshot as a single JSON
// document (no trailing newline beyond the encoder's): the shared
// encoder behind /statusz, fedagg's /stats alias, and the
// -stats-interval JSON-lines emitter.
func WriteStatusJSON(w io.Writer, r *Registry, info map[string]any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.StatusSnapshot(info))
}
