package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: HDR-style log-linear over non-negative int64
// values. The first 8 buckets hold the exact values 0..7; above that,
// each power-of-two octave is split into 8 sub-buckets keyed by the
// three bits below the leading bit, giving a worst-case relative
// error of 12.5% per bucket across the full int64 range. The bucket
// array is fixed at registration (no resizing, no allocation on
// Observe) and every slot is an independent atomic, so concurrent
// observers never contend on a lock.
const (
	histSubBits = 3                // sub-buckets per octave = 2^3
	histSub     = 1 << histSubBits // 8
	// Octaves cover leading-bit lengths 4..63 (positive int64), so
	// the final bucket's upper bound is exactly MaxInt64.
	histBuckets  = histSub + (63-histSubBits)*histSub
	histMaxIdx   = histBuckets - 1
	histExactMax = histSub - 1 // values 0..7 bucket exactly
)

// bucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0; values near MaxInt64 clamp to the last bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u <= histExactMax {
		return int(u)
	}
	l := bits.Len64(u) // >= 4 here
	sub := int((u >> (uint(l) - histSubBits - 1)) & (histSub - 1))
	idx := histSub + (l-histSubBits-1)*histSub + sub
	if idx > histMaxIdx {
		idx = histMaxIdx
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket idx — the
// largest value that maps to it.
func bucketUpper(idx int) int64 {
	if idx <= histExactMax {
		return int64(idx)
	}
	oct := (idx - histSub) / histSub // == bits.Len64 - 4 of members
	sub := (idx - histSub) % histSub
	// Members have leading-bit length oct+4 and top-4-bits sub+8:
	// [ (sub+8)<<oct , (sub+9)<<oct - 1 ].
	u := (uint64(sub)+histSub+1)<<uint(oct) - 1
	if u > uint64(1<<63-1) {
		return 1<<63 - 1
	}
	return int64(u)
}

// Histogram is a fixed-size log-bucketed latency histogram. All
// methods are safe for concurrent use; Observe performs three atomic
// adds and (rarely) a CAS loop for the max, and never allocates.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram builds an unregistered histogram (registered ones come
// from Registry.Histogram).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values count as 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bucket is one populated histogram bucket in a snapshot: Upper is
// the inclusive upper bound of the value range it covers.
type Bucket struct {
	Upper int64  `json:"upper"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, the unit of
// merging and quantile queries. Buckets holds only populated buckets
// in ascending Upper order.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent Observes may land between
// field reads, so Count is authoritative and bucket totals may lag it
// by in-flight observations; quantile math tolerates this.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return s
}

// Merge combines two snapshots bucket-wise. It is commutative and
// associative: counts and sums add, maxes take the larger, and
// buckets with equal bounds coalesce — merging per-shard or
// per-sensor histograms is therefore order-independent.
func Merge(a, b HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Max: a.Max}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Upper < b.Buckets[j].Upper):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Upper < a.Buckets[i].Upper:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Upper: a.Buckets[i].Upper, Count: a.Buckets[i].Count + b.Buckets[j].Count})
			i++
			j++
		}
	}
	return out
}

// Quantile returns an upper bound on the q-th quantile (0 <= q <= 1)
// of the recorded values: the upper bound of the bucket containing
// the ceil(q*n)-th smallest observation. Returns 0 on an empty
// snapshot. Monotone non-decreasing in q by construction (cumulative
// bucket walk).
func (s HistSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}
