//go:build race

package incident

// raceEnabled mirrors the engine package's build-tag probe: allocation
// pins are skipped under the race runtime, which allocates on its own.
const raceEnabled = true
