package incident

import (
	"container/list"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"semnids/internal/core"
	"semnids/internal/telemetry"
)

// Config parameterizes the correlator.
type Config struct {
	// WindowUS is the sliding trace-time window for destination
	// fan-out (default 30s).
	WindowUS uint64

	// FanoutThreshold is the distinct-destination count inside the
	// window that establishes RECON (default 3).
	FanoutThreshold int

	// QueueDepth bounds the event channel between the shards and the
	// correlator goroutine; a full queue applies backpressure, never
	// silent loss (default 4096).
	QueueDepth int

	// MaxSources caps tracked sources; least-recently-active sources
	// beyond it are finalized and evicted (default 65536).
	MaxSources int

	// SourceIdleUS finalizes sources with no activity for this much
	// trace time (default 10 minutes). A source that reappears after
	// finalization starts a fresh incident, and whether a straggling
	// event lands before or after the sweep depends on cross-shard
	// arrival order — so, as with the evidence caps, the byte-identical
	// determinism guarantee holds for sources that stay within the
	// idle window (and the LRU budget) for the life of the trace.
	SourceIdleUS uint64

	// MaxDestinations caps per-source fan-out evidence (default 256).
	MaxDestinations int

	// MaxFingerprints caps per-source payload-identity evidence —
	// fingerprints the source was attacked with and fingerprints it
	// emitted (default 64 each). Emitted fingerprints and the
	// per-fingerprint attacker lists retain the minimum-timestamp K
	// (order-independent); the attacked-with map itself admits in
	// arrival order once full, so determinism across shard counts is
	// guaranteed only while a victim's distinct attack-payload count
	// stays within this cap — the bounded-memory compromise.
	MaxFingerprints int

	// MaxVictims caps per-source propagation victims (default 16).
	MaxVictims int

	// MaxAlerts caps per-source alert evidence — distinct (timestamp,
	// destination, template) observations under a min-timestamp-K cap
	// (default 128). The rendered alert count saturates here.
	MaxAlerts int

	// MaxCompleted caps retained finalized incidents (default 1024;
	// oldest are dropped first).
	MaxCompleted int

	// OnIncident, when non-nil, is invoked from the correlator
	// goroutine whenever a source's derived stage rises, with the
	// incident as derived at that moment. The callback must not call
	// back into the correlator.
	OnIncident func(Incident)

	// Telemetry receives the correlator's metric series: event
	// counters bridged at scrape time plus kill-chain stage-transition
	// latency histograms (trace-time first-packet→stage, observed as
	// each source's derived stage rises). Nil creates a private
	// registry so the hot path never nil-checks.
	Telemetry *telemetry.Registry
}

// maxAttackersPerFingerprint bounds how many distinct attackers one
// victim links to a single payload identity.
const maxAttackersPerFingerprint = 4

func (cfg Config) withDefaults() Config {
	if cfg.WindowUS == 0 {
		cfg.WindowUS = 30e6
	}
	if cfg.FanoutThreshold <= 0 {
		cfg.FanoutThreshold = 3
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = 65536
	}
	if cfg.SourceIdleUS == 0 {
		cfg.SourceIdleUS = 10 * 60 * 1e6
	}
	if cfg.MaxDestinations <= 0 {
		cfg.MaxDestinations = 256
	}
	if cfg.MaxFingerprints <= 0 {
		cfg.MaxFingerprints = 64
	}
	if cfg.MaxVictims <= 0 {
		cfg.MaxVictims = 16
	}
	if cfg.MaxAlerts <= 0 {
		cfg.MaxAlerts = 128
	}
	if cfg.MaxCompleted <= 0 {
		cfg.MaxCompleted = 1024
	}
	return cfg
}

// Metrics is a snapshot of correlator counters and gauges.
type Metrics struct {
	// Events counts everything received; the per-kind counters break
	// it down.
	Events, FlowOpens, Alerts, Fingerprints, FlowEvicts uint64

	// SourcesTracked is the live state-machine count;
	// SourcesEvictedLRU / SourcesEvictedIdle count finalizations that
	// bounded it.
	SourcesTracked                        int
	SourcesEvictedLRU, SourcesEvictedIdle uint64

	// Incidents counts sources whose derived stage ever rose above
	// NONE; SubDropped counts subscriber deliveries shed on full
	// subscriber buffers.
	Incidents  uint64
	SubDropped uint64
}

// msg is one correlator input: an event or a flush barrier.
type msg struct {
	ev  core.Event
	ctl *sync.WaitGroup
}

// Correlator consumes engine events and maintains per-source
// kill-chain state machines. Publish may be called from any number of
// goroutines; all state is owned by the single run goroutine, with a
// mutex taken only around state mutation and snapshot reads.
type Correlator struct {
	cfg Config

	in       chan msg
	done     chan struct{}
	stopOnce sync.Once
	stopped  atomic.Bool
	// sendMu serializes channel sends against Stop's close: Publish
	// and Flush hold it shared, Stop exclusively, so a send can never
	// race the close into a panic. The consumer keeps draining until
	// the close, so shared holders always make progress.
	sendMu sync.RWMutex

	// mu guards sources/lru/completed: held by the run goroutine while
	// applying one event and by Incidents/Metrics readers.
	mu        sync.Mutex
	sources   map[netip.Addr]*sourceState
	lru       *list.List // front = most recently active
	completed []Incident
	maxTS     uint64
	lastSweep uint64

	m struct {
		events, flowOpens, alerts, fingerprints, flowEvicts atomic.Uint64
		evictedLRU, evictedIdle                             atomic.Uint64
		incidents                                           atomic.Uint64
		subDropped                                          atomic.Uint64
	}

	// stageLatUS, indexed by Stage, records trace-time µs from a
	// source's first packet to each derived stage crossing — the
	// kill-chain response-latency series ROADMAP asks for as a
	// measured quantity.
	stageLatUS [StagePropagation + 1]*telemetry.Histogram

	subMu   sync.Mutex
	subs    map[int]chan Incident
	nextSub int
}

// New builds and starts a correlator; its goroutine runs until Stop.
func New(cfg Config) *Correlator {
	c := &Correlator{
		cfg:     cfg.withDefaults(),
		done:    make(chan struct{}),
		sources: make(map[netip.Addr]*sourceState),
		lru:     list.New(),
		subs:    make(map[int]chan Incident),
	}
	c.in = make(chan msg, c.cfg.QueueDepth)
	c.registerTelemetry()
	go c.run()
	return c
}

// registerTelemetry installs the correlator's metric series: existing
// counters bridged with scrape-time funcs, stage-latency histograms
// recorded as stages rise.
func (c *Correlator) registerTelemetry() {
	if c.cfg.Telemetry == nil {
		c.cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := c.cfg.Telemetry
	reg.CounterFunc("semnids_incident_events_total", "Events received by the correlator.", c.m.events.Load)
	reg.CounterFunc(`semnids_incident_events_by_kind_total{kind="flow_open"}`, "Events by kind.", c.m.flowOpens.Load)
	reg.CounterFunc(`semnids_incident_events_by_kind_total{kind="alert"}`, "Events by kind.", c.m.alerts.Load)
	reg.CounterFunc(`semnids_incident_events_by_kind_total{kind="fingerprint"}`, "Events by kind.", c.m.fingerprints.Load)
	reg.CounterFunc(`semnids_incident_events_by_kind_total{kind="flow_evict"}`, "Events by kind.", c.m.flowEvicts.Load)
	reg.CounterFunc(`semnids_incident_sources_evicted_total{reason="lru"}`, "Sources finalized to bound state.", c.m.evictedLRU.Load)
	reg.CounterFunc(`semnids_incident_sources_evicted_total{reason="idle"}`, "Sources finalized to bound state.", c.m.evictedIdle.Load)
	reg.CounterFunc("semnids_incident_incidents_total", "Sources whose derived stage rose above NONE.", c.m.incidents.Load)
	reg.CounterFunc("semnids_incident_sub_dropped_total", "Subscriber deliveries shed on full buffers.", c.m.subDropped.Load)
	reg.GaugeFunc("semnids_incident_sources_tracked", "Live per-source state machines.", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.sources))
	})
	reg.GaugeFunc("semnids_incident_queue_depth", "Events buffered toward the correlator goroutine.", func() int64 {
		return int64(len(c.in))
	})
	for st := StageRecon; st <= StagePropagation; st++ {
		c.stageLatUS[st] = reg.Histogram(
			`semnids_incident_stage_latency_us{stage="`+strings.ToLower(st.String())+`"}`,
			"Trace-time µs from a source's first packet to each derived kill-chain stage.")
	}
}

// Publish offers one event. It blocks when the bounded queue is full
// (backpressure, mirroring the engine's PolicyBlock default) and is a
// no-op after — or concurrent with — Stop.
func (c *Correlator) Publish(ev core.Event) {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.stopped.Load() {
		return
	}
	c.in <- msg{ev: ev}
}

// Flush blocks until every event published before it has been applied.
// No-op after Stop.
func (c *Correlator) Flush() {
	var wg sync.WaitGroup
	c.sendMu.RLock()
	if c.stopped.Load() {
		c.sendMu.RUnlock()
		return
	}
	wg.Add(1)
	c.in <- msg{ctl: &wg}
	c.sendMu.RUnlock()
	wg.Wait()
}

// Stop terminates the correlator goroutine after draining queued
// events. Idempotent; Incidents and Metrics stay readable.
func (c *Correlator) Stop() {
	c.stopOnce.Do(func() {
		c.sendMu.Lock()
		c.stopped.Store(true)
		c.sendMu.Unlock()
		close(c.in)
		<-c.done
	})
}

// Subscribe registers a live incident feed: every stage transition is
// delivered as a derived incident snapshot. A subscriber that falls
// behind its buffer sheds deliveries (counted in Metrics.SubDropped)
// rather than stalling correlation. cancel unregisters and closes the
// channel.
func (c *Correlator) Subscribe(buf int) (<-chan Incident, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Incident, buf)
	c.subMu.Lock()
	id := c.nextSub
	c.nextSub++
	c.subs[id] = ch
	c.subMu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			c.subMu.Lock()
			delete(c.subs, id)
			c.subMu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

func (c *Correlator) run() {
	defer close(c.done)
	for m := range c.in {
		if m.ctl != nil {
			m.ctl.Done()
			continue
		}
		c.mu.Lock()
		c.apply(m.ev)
		c.mu.Unlock()
	}
}

// apply folds one event into the evidence model. Called with mu held.
func (c *Correlator) apply(ev core.Event) {
	c.m.events.Add(1)
	if ev.TimestampUS > c.maxTS {
		c.maxTS = ev.TimestampUS
	}

	switch ev.Kind {
	case core.EventFlowOpen:
		c.m.flowOpens.Add(1)
		s := c.source(ev.Src, ev.TimestampUS)
		s.touchContent(ev.TimestampUS)
		s.dests.put(ev.Dst, ev.TimestampUS, c.cfg.MaxDestinations)
		// Fan-out is the only stage a flow-open can raise; skip the
		// derivation (it sorts the evidence) until it can trigger.
		if s.notified < StageRecon && s.dests.len() >= c.cfg.FanoutThreshold {
			c.notify(s)
		}

	case core.EventAlert:
		c.m.alerts.Add(1)
		s := c.source(ev.Src, ev.TimestampUS)
		s.touchContent(ev.TimestampUS)
		s.dests.put(ev.Dst, ev.TimestampUS, c.cfg.MaxDestinations)
		s.alertTimes.put(alertKey{tsUS: ev.TimestampUS, dst: ev.Dst, template: ev.Template},
			ev.TimestampUS, c.cfg.MaxAlerts)
		if s.exploitAt == 0 || ev.TimestampUS < s.exploitAt {
			s.exploitAt = ev.TimestampUS
		}
		if severityRank[ev.Severity] > severityRank[s.severity] {
			s.severity = ev.Severity
		}
		if len(s.templates) < maxTemplates || s.templates[ev.Template] {
			s.templates[ev.Template] = true
		}
		if !ev.Fingerprint.IsZero() {
			// Record the victim side: Dst was hit with this payload by
			// Src. If the victim has already been seen emitting the
			// same fingerprint later in trace time (events can arrive
			// out of order across shards), the link closes now.
			v := c.source(ev.Dst, ev.TimestampUS)
			refs, present := v.targetedBy[ev.Fingerprint]
			refs = addAttackerRef(refs, ev.Src, ev.TimestampUS, maxAttackersPerFingerprint)
			if present || len(v.targetedBy) < c.cfg.MaxFingerprints {
				v.targetedBy[ev.Fingerprint] = refs
			}
			if sp, ok := v.emitted.get(ev.Fingerprint); ok && sp.last > ev.TimestampUS {
				c.escalate(ev.Src, ev.Dst, echoTime(sp, ev.TimestampUS))
			}
			// No notify for the victim: being targeted does not change
			// its own derived stage.
		}
		// Structural identity rides the same machinery: when lineage is
		// on, the sketch's decoded-tail fingerprint shares the 128-bit
		// keyspace with exact fingerprints, so folding it into the same
		// victim-side sets makes a victim that re-emits a *re-encoded*
		// descendant of the attack payload close the propagation link —
		// the polymorphism-proof PROPAGATION the exact match cannot see.
		// With lineage off the sketch is zero and nothing here runs.
		if tfp := tailFP(ev); !tfp.IsZero() && tfp != ev.Fingerprint {
			v := c.source(ev.Dst, ev.TimestampUS)
			refs, present := v.targetedBy[tfp]
			refs = addAttackerRef(refs, ev.Src, ev.TimestampUS, maxAttackersPerFingerprint)
			if present || len(v.targetedBy) < c.cfg.MaxFingerprints {
				v.targetedBy[tfp] = refs
			}
			if sp, ok := v.emitted.get(tfp); ok && sp.last > ev.TimestampUS {
				c.escalate(ev.Src, ev.Dst, echoTime(sp, ev.TimestampUS))
			}
		}
		c.notify(s)

	case core.EventFingerprint:
		c.m.fingerprints.Add(1)
		s := c.source(ev.Src, ev.TimestampUS)
		s.touchContent(ev.TimestampUS)
		s.emitted.put(ev.Fingerprint, ev.TimestampUS, c.cfg.MaxFingerprints)
		// This source may be a victim re-emitting a payload it was
		// attacked with: close the propagation link on each attacker
		// whose delivery the folded emission span postdates. Checking
		// the span — not this event's timestamp — reaches the same
		// verdict as the alert-side check whatever the arrival order.
		// An emission changes the *attacker's* stage (via escalate),
		// never the emitter's own, so no self-notify here.
		if sp, ok := s.emitted.get(ev.Fingerprint); ok {
			for _, ref := range s.targetedBy[ev.Fingerprint] {
				if sp.last > ref.tsUS {
					c.escalate(ref.attacker, ev.Src, echoTime(sp, ref.tsUS))
				}
			}
		}
		// And the structural identity (see the alert-side fold): an
		// emission of any variant decoding to the same tail counts as
		// an emission of the family, closing links the exact
		// fingerprint misses after re-encoding.
		if tfp := tailFP(ev); !tfp.IsZero() && tfp != ev.Fingerprint {
			s.emitted.put(tfp, ev.TimestampUS, c.cfg.MaxFingerprints)
			if sp, ok := s.emitted.get(tfp); ok {
				for _, ref := range s.targetedBy[tfp] {
					if sp.last > ref.tsUS {
						c.escalate(ref.attacker, ev.Src, echoTime(sp, ref.tsUS))
					}
				}
			}
		}

	case core.EventFlowEvict:
		// Bookkeeping only: eviction timing depends on shard count and
		// byte budgets, so it must not shape incident content.
		c.m.flowEvicts.Add(1)
		if s := c.sources[ev.Src]; s != nil {
			c.touchLRU(s, ev.TimestampUS)
		}
	}

	c.maybeSweep()
}

// tailFP lifts an event's structural sketch into the fingerprint
// keyspace: the decoded-tail identity shared by every re-encoding of
// one payload (zero when lineage is off or the frame decoded nothing).
func tailFP(ev core.Event) core.Fingerprint {
	if !ev.Sketch.HasTail() {
		return core.Fingerprint{}
	}
	return core.Fingerprint{A: ev.Sketch.TailA, B: ev.Sketch.TailB, N: ev.Sketch.TailN}
}

// echoTime is the canonical propagation instant for a victim whose
// recorded emissions of the attack payload span sp, attacked at t1
// (callers guarantee sp.last > t1): the victim's first emission if it
// followed the attack, else the moment just after the attack — the
// victim was demonstrably already emitting the payload when it was
// hit. Both escalation paths derive it from the same folded span, so
// every arrival order converges on the same value.
func echoTime(sp span, t1 uint64) uint64 {
	if sp.first > t1 {
		return sp.first
	}
	return t1 + 1
}

// escalate marks attacker as having reached PROPAGATION: victim
// re-emitted the attack payload at echoTS. Which emissions reach this
// point depends on cross-shard arrival order, but echoTS is derived
// from order-independent evidence (echoTime over the folded span),
// and the min-folds below converge to the same values in every
// interleaving. The attacker's own activity span and last-seen clock
// are left alone — echo maxima are derived instants, not observations
// of the attacker, and folding them would make the exported evidence
// depend on which intermediate echoes an interleaving happened to
// produce (the zero timestamp refreshes recency without touching the
// clock).
func (c *Correlator) escalate(attacker, victim netip.Addr, echoTS uint64) {
	a := c.source(attacker, 0)
	// Sweep bookkeeping: the attacker is demonstrably still relevant
	// at the current trace time, so the idle sweep must not finalize
	// it mid-outbreak (which would resurrect it as a fresh skeleton on
	// the next echo and double-announce the incident).
	if c.maxTS > a.echoUS {
		a.echoUS = c.maxTS
	}
	if a.propagationAt == 0 || echoTS < a.propagationAt {
		a.propagationAt = echoTS
	}
	a.victims.put(victim, echoTS, c.cfg.MaxVictims)
	c.notify(a)
}

// source returns (creating if needed) the state machine for src and
// refreshes its recency. Creation beyond MaxSources finalizes the
// least-recently-active source first.
func (c *Correlator) source(src netip.Addr, ts uint64) *sourceState {
	s := c.sources[src]
	if s == nil {
		if len(c.sources) >= c.cfg.MaxSources {
			oldest := c.lru.Back()
			c.finalize(oldest.Value.(*sourceState))
			c.m.evictedLRU.Add(1)
		}
		s = &sourceState{
			src:        src,
			dests:      newMinKSet[netip.Addr](lessAddr),
			alertTimes: newMinKSet[alertKey](lessAlertKey),
			templates:  make(map[string]bool),
			targetedBy: make(map[core.Fingerprint][]attackRef),
			emitted:    newMinKSet[core.Fingerprint](lessFingerprint),
			victims:    newMinKSet[netip.Addr](lessAddr),
		}
		s.elem = c.lru.PushFront(s)
		c.sources[src] = s
	}
	c.touchLRU(s, ts)
	return s
}

func (c *Correlator) touchLRU(s *sourceState, ts uint64) {
	if ts > s.lastSeenUS {
		s.lastSeenUS = ts
	}
	c.lru.MoveToFront(s.elem)
}

// finalize removes a source, retaining its incident if it ever
// advanced past NONE.
func (c *Correlator) finalize(s *sourceState) {
	delete(c.sources, s.src)
	c.lru.Remove(s.elem)
	if s.stage(c.cfg.WindowUS, c.cfg.FanoutThreshold) == StageNone {
		return
	}
	c.completed = append(c.completed, s.derive(c.cfg.WindowUS, c.cfg.FanoutThreshold))
	// Trim lazily at 2x the cap so a finalization storm costs an
	// amortized O(1) copy per incident, not O(cap).
	if len(c.completed) > 2*c.cfg.MaxCompleted {
		c.completed = append(c.completed[:0], c.completed[len(c.completed)-c.cfg.MaxCompleted:]...)
	}
}

// maybeSweep finalizes idle sources once per idle-interval of trace
// time. Walking the LRU from the back visits oldest first and stops at
// the first live source.
func (c *Correlator) maybeSweep() {
	if c.maxTS-c.lastSweep < c.cfg.SourceIdleUS/4+1 {
		return
	}
	c.lastSweep = c.maxTS
	if c.maxTS <= c.cfg.SourceIdleUS {
		return
	}
	cutoff := c.maxTS - c.cfg.SourceIdleUS
	for {
		back := c.lru.Back()
		if back == nil {
			return
		}
		s := back.Value.(*sourceState)
		if s.lastSeenUS >= cutoff || s.echoUS >= cutoff {
			return
		}
		c.finalize(s)
		c.m.evictedIdle.Add(1)
	}
}

// notify delivers a derived incident to OnIncident and subscribers
// when the source's stage rises. Called with mu held; the derived
// snapshot is a value, so callbacks cannot race correlator state.
func (c *Correlator) notify(s *sourceState) {
	st := s.stage(c.cfg.WindowUS, c.cfg.FanoutThreshold)
	if st <= s.notified {
		return
	}
	if s.notified == StageNone {
		c.m.incidents.Add(1)
	}
	prev := s.notified
	s.notified = st
	inc := s.derive(c.cfg.WindowUS, c.cfg.FanoutThreshold)
	// Observe first-packet→stage latency once per stage, as it rises.
	// Trace time, from the same derived transitions the incident
	// renders, so the measured quantity is exactly what the report
	// shows.
	for _, t := range inc.Transitions {
		if t.Stage > prev && t.Stage <= st {
			c.stageLatUS[t.Stage].Observe(int64(t.AtUS) - int64(inc.FirstUS))
		}
	}
	if c.cfg.OnIncident != nil {
		c.cfg.OnIncident(inc)
	}
	c.subMu.Lock()
	for _, ch := range c.subs {
		select {
		case ch <- inc:
		default:
			c.m.subDropped.Add(1)
		}
	}
	c.subMu.Unlock()
}

// Incidents derives the current incident set: every live source whose
// stage rose above NONE, plus finalized incidents, ordered by stage
// (descending), severity (descending), then source address — a
// deterministic rendering of deterministic evidence, so the output is
// byte-identical whatever the shard count that produced the events.
func (c *Correlator) Incidents() []Incident {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Incident, 0, len(c.completed)+len(c.sources))
	out = append(out, c.completed...)
	for _, s := range c.sources {
		if inc := s.derive(c.cfg.WindowUS, c.cfg.FanoutThreshold); inc.Stage != StageNone {
			out = append(out, inc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage > out[j].Stage
		}
		if severityRank[out[i].Severity] != severityRank[out[j].Severity] {
			return severityRank[out[i].Severity] > severityRank[out[j].Severity]
		}
		return out[i].Src.Less(out[j].Src)
	})
	return out
}

// Metrics returns current counters and gauges.
func (c *Correlator) Metrics() Metrics {
	c.mu.Lock()
	tracked := len(c.sources)
	c.mu.Unlock()
	return Metrics{
		Events:             c.m.events.Load(),
		FlowOpens:          c.m.flowOpens.Load(),
		Alerts:             c.m.alerts.Load(),
		Fingerprints:       c.m.fingerprints.Load(),
		FlowEvicts:         c.m.flowEvicts.Load(),
		SourcesTracked:     tracked,
		SourcesEvictedLRU:  c.m.evictedLRU.Load(),
		SourcesEvictedIdle: c.m.evictedIdle.Load(),
		Incidents:          c.m.incidents.Load(),
		SubDropped:         c.m.subDropped.Load(),
	}
}
