package incident

import (
	"container/list"
	"fmt"
	"maps"
	"net/netip"
	"sort"

	"semnids/internal/core"
	"semnids/internal/lineage"
	"semnids/internal/telemetry"
)

// This file is the federation half of the correlator: a source's
// evidence state as a plain serializable value (SourceEvidence), a
// sensor-level snapshot of all of them (EvidenceExport), and the
// operations federation needs — export, import (crash recovery and
// sensor seeding), and a commutative, idempotent merge.
//
// The design constraint comes from the correlator's determinism
// invariant: evidence is a *set* (min-timestamp-K caps, min/max scalar
// folds), never a function of arrival order, so two sensors that each
// saw part of a trace can union their evidence and re-derive the same
// incidents a single sensor would have produced — byte-identical,
// within the configured caps. Every record carries per-sensor
// provenance (Sensors), so merged evidence stays traceable to the
// sensors that observed it — the identifiable-parent property for
// evidence sets: collusion-style merging never launders the origin.

// EvidenceLimits are the per-source evidence caps an export was
// produced under. Merging requires identical limits on both sides:
// the caps are part of the determinism contract (a min-K set capped
// at 256 and one capped at 64 can disagree even on shared evidence).
type EvidenceLimits struct {
	MaxDestinations int `json:"max_destinations"`
	MaxAlerts       int `json:"max_alerts"`
	MaxFingerprints int `json:"max_fingerprints"`
	MaxVictims      int `json:"max_victims"`
}

// DestEvidence is one destination's observation span (also used for
// propagation victims: the span of qualifying payload echoes).
type DestEvidence struct {
	Addr    netip.Addr `json:"addr"`
	FirstUS uint64     `json:"first_us"`
	LastUS  uint64     `json:"last_us"`
}

// AlertEvidence is one retained alert observation.
type AlertEvidence struct {
	TsUS     uint64     `json:"ts_us"`
	Dst      netip.Addr `json:"dst"`
	Template string     `json:"template,omitempty"`
}

// AttackerRef names an attacker that delivered a payload to this
// source, with the earliest delivery time.
type AttackerRef struct {
	Attacker netip.Addr `json:"attacker"`
	TsUS     uint64     `json:"ts_us"`
}

// FingerprintAttackers is the victim-side propagation evidence for
// one payload identity.
type FingerprintAttackers struct {
	Fingerprint core.Fingerprint `json:"fp"`
	Refs        []AttackerRef    `json:"refs"`
}

// FingerprintSpan is the emission span of one payload identity.
type FingerprintSpan struct {
	Fingerprint core.Fingerprint `json:"fp"`
	FirstUS     uint64           `json:"first_us"`
	LastUS      uint64           `json:"last_us"`
}

// VictimEvidence is one propagation victim with its canonical
// (earliest qualifying) echo time. Deliberately not a span: the
// in-memory victim set's upper bound folds whichever intermediate
// echo values the event interleaving produced — arrival-order noise
// the determinism contract excludes (rendering uses membership and
// the minimum only), so the wire format carries just the canonical
// instant.
type VictimEvidence struct {
	Addr   netip.Addr `json:"addr"`
	EchoUS uint64     `json:"echo_us"`
}

// SourceEvidence is one source's full evidence state, rendered as a
// deterministic value: every slice is sorted under the same total
// orders the in-memory caps use, so the same evidence always
// serializes to the same bytes.
type SourceEvidence struct {
	Src netip.Addr `json:"src"`

	// Sensors is the provenance set: every sensor whose observation
	// (or exported evidence) contributed to this record. Sorted.
	Sensors []string `json:"sensors,omitempty"`

	// Stage is the stage derived from this evidence at export time —
	// informational (re-derived after any merge), never folded.
	Stage string `json:"stage"`

	FirstUS    uint64 `json:"first_us,omitempty"`
	LastUS     uint64 `json:"last_us,omitempty"`
	LastSeenUS uint64 `json:"last_seen_us,omitempty"`

	Dests  []DestEvidence  `json:"dests,omitempty"`
	Alerts []AlertEvidence `json:"alerts,omitempty"`

	ExploitAtUS uint64   `json:"exploit_at_us,omitempty"`
	Severity    string   `json:"severity,omitempty"`
	Templates   []string `json:"templates,omitempty"`

	TargetedBy []FingerprintAttackers `json:"targeted_by,omitempty"`
	Emitted    []FingerprintSpan      `json:"emitted,omitempty"`

	PropagationAtUS uint64           `json:"propagation_at_us,omitempty"`
	Victims         []VictimEvidence `json:"victims,omitempty"`
}

// ClassifierEvidence is one source's classification-stage state: the
// distinct dark-space addresses it has touched (a sub-threshold scan
// count, as a set so it merges idempotently) and its suspicious-list
// expiry. Persisting it alongside the correlator's evidence means a
// restarted or failed-over sensor does not grant a slow scanner a
// fresh start: two touches before the restart plus one after still
// cross a threshold of three.
type ClassifierEvidence struct {
	Src netip.Addr `json:"src"`

	// SuspiciousUntilUS is the trace-time expiry of the source's
	// suspicious mark (honeypot contact, completed scan, or alert);
	// zero when the source is only part-way to a verdict.
	SuspiciousUntilUS uint64 `json:"suspicious_until_us,omitempty"`

	// Dark is the sorted set of distinct dark-space addresses the
	// source has touched. Membership is the evidence; the scan count
	// is its length.
	Dark []netip.Addr `json:"dark,omitempty"`
}

// EvidenceExport is one sensor's evidence snapshot (or the merge of
// several sensors'): the correlation parameters the evidence was
// gathered under, plus every tracked source's evidence, sorted by
// source address — and, when the sensor runs a classifier, its
// per-source classification state (sub-threshold scan sets and
// suspicious marks), so selection behavior survives restart and
// failover too.
type EvidenceExport struct {
	Sensors         []string
	WindowUS        uint64
	FanoutThreshold int
	Limits          EvidenceLimits
	Sources         []SourceEvidence
	Classifier      []ClassifierEvidence

	// Lineage is the sensor's structural-payload observation set (the
	// lineage store's canonical export): one record per distinct
	// hostile payload with its decoded-tail family identity and first
	// witnessed delivery — the input to ancestry tracing. Empty unless
	// the sensor runs with lineage enabled. Merged with the same
	// commutative/idempotent discipline as every other evidence set.
	Lineage []lineage.Observation
}

// MergeClassifierEvidence unions two classifier evidence sets:
// per-source dark sets union, suspicious expiries fold to the
// maximum. Commutative and idempotent like every other evidence fold,
// and sorted (sources by address, dark sets by address) so the same
// state always serializes to the same bytes.
func MergeClassifierEvidence(a, b []ClassifierEvidence) []ClassifierEvidence {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	bySrc := make(map[netip.Addr]*ClassifierEvidence, len(a)+len(b))
	fold := func(recs []ClassifierEvidence) {
		for i := range recs {
			rec := &recs[i]
			m := bySrc[rec.Src]
			if m == nil {
				m = &ClassifierEvidence{Src: rec.Src}
				bySrc[rec.Src] = m
			}
			if rec.SuspiciousUntilUS > m.SuspiciousUntilUS {
				m.SuspiciousUntilUS = rec.SuspiciousUntilUS
			}
			m.Dark = append(m.Dark, rec.Dark...)
		}
	}
	fold(a)
	fold(b)
	out := make([]ClassifierEvidence, 0, len(bySrc))
	for _, m := range bySrc {
		sort.Slice(m.Dark, func(i, j int) bool { return m.Dark[i].Less(m.Dark[j]) })
		dedup := m.Dark[:0]
		for _, d := range m.Dark {
			if len(dedup) == 0 || d != dedup[len(dedup)-1] {
				dedup = append(dedup, d)
			}
		}
		m.Dark = dedup
		if len(m.Dark) == 0 {
			m.Dark = nil
		}
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src.Less(out[j].Src) })
	return out
}

// limits snapshots the correlator's evidence caps.
func (c *Correlator) limits() EvidenceLimits {
	return EvidenceLimits{
		MaxDestinations: c.cfg.MaxDestinations,
		MaxAlerts:       c.cfg.MaxAlerts,
		MaxFingerprints: c.cfg.MaxFingerprints,
		MaxVictims:      c.cfg.MaxVictims,
	}
}

// cloneLocked deep-copies the evidence for rendering outside the
// correlator lock: map copies only — the expensive part of an export
// (sorting, slice building) must not run under c.mu, which the event
// apply path contends for. Called with mu held.
func (s *sourceState) cloneLocked() *sourceState {
	cp := &sourceState{
		src:           s.src,
		firstUS:       s.firstUS,
		lastUS:        s.lastUS,
		lastSeenUS:    s.lastSeenUS,
		dests:         minKSet[netip.Addr]{m: maps.Clone(s.dests.m), less: s.dests.less},
		alertTimes:    minKSet[alertKey]{m: maps.Clone(s.alertTimes.m), less: s.alertTimes.less},
		exploitAt:     s.exploitAt,
		severity:      s.severity,
		templates:     maps.Clone(s.templates),
		targetedBy:    make(map[core.Fingerprint][]attackRef, len(s.targetedBy)),
		emitted:       minKSet[core.Fingerprint]{m: maps.Clone(s.emitted.m), less: s.emitted.less},
		propagationAt: s.propagationAt,
		victims:       minKSet[netip.Addr]{m: maps.Clone(s.victims.m), less: s.victims.less},
		sensors:       maps.Clone(s.sensors),
	}
	for fp, refs := range s.targetedBy {
		cp.targetedBy[fp] = append([]attackRef(nil), refs...)
	}
	return cp
}

// Export snapshots every live source's evidence under the given
// sensor ID. Safe concurrently with correlation, and cheap to run
// concurrently: the lock is held only for map copies, while rendering
// and sorting — the bulk of the work on a full source table — happen
// outside it (the durable sink calls this periodically from its own
// goroutine). Finalized (completed) incidents are rendered verdicts,
// not evidence, and are not exported — export before finalization
// (or size SourceIdleUS/MaxSources for the deployment) if every
// source must survive a restart.
func (c *Correlator) Export(sensor string) *EvidenceExport {
	c.mu.Lock()
	clones := make([]*sourceState, 0, len(c.sources))
	for _, s := range c.sources {
		clones = append(clones, s.cloneLocked())
	}
	c.mu.Unlock()

	ex := &EvidenceExport{
		Sensors:         []string{sensor},
		WindowUS:        c.cfg.WindowUS,
		FanoutThreshold: c.cfg.FanoutThreshold,
		Limits:          c.limits(),
		Sources:         make([]SourceEvidence, 0, len(clones)),
	}
	for _, s := range clones {
		ex.Sources = append(ex.Sources, s.export(sensor, c.cfg.WindowUS, c.cfg.FanoutThreshold))
	}
	sort.Slice(ex.Sources, func(i, j int) bool { return ex.Sources[i].Src.Less(ex.Sources[j].Src) })
	return ex
}

// export renders one source's evidence as a SourceEvidence value.
func (s *sourceState) export(sensor string, windowUS uint64, threshold int) SourceEvidence {
	ev := SourceEvidence{
		Src:             s.src,
		Stage:           s.stage(windowUS, threshold).String(),
		FirstUS:         s.firstUS,
		LastUS:          s.lastUS,
		LastSeenUS:      s.lastSeenUS,
		ExploitAtUS:     s.exploitAt,
		Severity:        s.severity,
		PropagationAtUS: s.propagationAt,
	}
	seen := map[string]bool{sensor: true}
	ev.Sensors = append(ev.Sensors, sensor)
	for sn := range s.sensors {
		if !seen[sn] {
			seen[sn] = true
			ev.Sensors = append(ev.Sensors, sn)
		}
	}
	sort.Strings(ev.Sensors)

	for k, sp := range s.dests.m {
		ev.Dests = append(ev.Dests, DestEvidence{Addr: k, FirstUS: sp.first, LastUS: sp.last})
	}
	sort.Slice(ev.Dests, func(i, j int) bool { return ev.Dests[i].Addr.Less(ev.Dests[j].Addr) })

	for k := range s.alertTimes.m {
		ev.Alerts = append(ev.Alerts, AlertEvidence{TsUS: k.tsUS, Dst: k.dst, Template: k.template})
	}
	sort.Slice(ev.Alerts, func(i, j int) bool {
		a, b := ev.Alerts[i], ev.Alerts[j]
		return lessAlertKey(alertKey{a.TsUS, a.Dst, a.Template}, alertKey{b.TsUS, b.Dst, b.Template})
	})

	for t := range s.templates {
		ev.Templates = append(ev.Templates, t)
	}
	sort.Strings(ev.Templates)

	for fp, refs := range s.targetedBy {
		fa := FingerprintAttackers{Fingerprint: fp, Refs: make([]AttackerRef, 0, len(refs))}
		for _, r := range refs {
			fa.Refs = append(fa.Refs, AttackerRef{Attacker: r.attacker, TsUS: r.tsUS})
		}
		sort.Slice(fa.Refs, func(i, j int) bool { return fa.Refs[i].Attacker.Less(fa.Refs[j].Attacker) })
		ev.TargetedBy = append(ev.TargetedBy, fa)
	}
	sort.Slice(ev.TargetedBy, func(i, j int) bool {
		return lessFingerprint(ev.TargetedBy[i].Fingerprint, ev.TargetedBy[j].Fingerprint)
	})

	for fp, sp := range s.emitted.m {
		ev.Emitted = append(ev.Emitted, FingerprintSpan{Fingerprint: fp, FirstUS: sp.first, LastUS: sp.last})
	}
	sort.Slice(ev.Emitted, func(i, j int) bool {
		return lessFingerprint(ev.Emitted[i].Fingerprint, ev.Emitted[j].Fingerprint)
	})

	for v, sp := range s.victims.m {
		ev.Victims = append(ev.Victims, VictimEvidence{Addr: v, EchoUS: sp.first})
	}
	sort.Slice(ev.Victims, func(i, j int) bool { return ev.Victims[i].Addr.Less(ev.Victims[j].Addr) })
	return ev
}

// compatible checks an export was produced under this correlator's
// correlation parameters; folding evidence gathered under different
// windows or caps would silently break the determinism contract.
func (c *Correlator) compatible(ex *EvidenceExport) error {
	if ex.WindowUS != c.cfg.WindowUS || ex.FanoutThreshold != c.cfg.FanoutThreshold {
		return fmt.Errorf("incident: export window/fanout %d/%d incompatible with correlator %d/%d",
			ex.WindowUS, ex.FanoutThreshold, c.cfg.WindowUS, c.cfg.FanoutThreshold)
	}
	if ex.Limits != c.limits() {
		return fmt.Errorf("incident: export limits %+v incompatible with correlator %+v", ex.Limits, c.limits())
	}
	return nil
}

// parseStage maps a serialized stage name back to its value; unknown
// names are StageNone (conservative: an unknown stage is treated as
// not yet announced).
func parseStage(name string) Stage {
	switch name {
	case "RECON":
		return StageRecon
	case "EXPLOIT":
		return StageExploit
	case "PROPAGATION":
		return StagePropagation
	}
	return StageNone
}

// Import folds an evidence export into the live correlator: each
// record unions into the matching source's evidence under the same
// caps live events use, then propagation is re-derived across the
// imported sources — the step that closes attacker↔victim links whose
// two halves were observed by different sensors. The notification
// gate is quieted only up to the stage each record itself had already
// derived (recovery does not re-announce); a stage that only the
// merged evidence proves — a fan-out completed by union, a
// cross-sensor propagation link — fires OnIncident/subscribers as a
// live transition would. Idempotent: importing the same export twice
// changes nothing.
func (c *Correlator) Import(ex *EvidenceExport) error {
	if err := c.compatible(ex); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	touched := make([]*sourceState, 0, len(ex.Sources))
	for i := range ex.Sources {
		rec := &ex.Sources[i]
		s := c.importSource(rec)
		touched = append(touched, s)
		// Quiet only what the record had already announced on its own
		// sensor…
		if st := parseStage(rec.Stage); st > s.notified {
			if s.notified == StageNone {
				c.m.incidents.Add(1)
			}
			s.notified = st
		}
	}
	// …then announce anything the evidence union proves beyond the
	// records, and re-derive propagation, which may raise stages
	// further (cross-sensor links).
	for _, s := range touched {
		c.notify(s)
	}
	for _, s := range touched {
		c.rederivePropagation(s)
	}
	return nil
}

// importSource folds one record into its source state under the
// configured caps. Every fold is commutative and idempotent — min-K
// puts, min/max scalars, set unions — mirroring apply()'s handling of
// the corresponding live events.
func (c *Correlator) importSource(rec *SourceEvidence) *sourceState {
	s := c.source(rec.Src, rec.LastSeenUS)
	if rec.FirstUS > 0 {
		s.touchContent(rec.FirstUS)
	}
	if rec.LastUS > 0 {
		s.touchContent(rec.LastUS)
	}
	for _, sn := range rec.Sensors {
		if s.sensors == nil {
			s.sensors = make(map[string]bool, len(rec.Sensors))
		}
		s.sensors[sn] = true
	}
	for _, d := range rec.Dests {
		s.dests.put(d.Addr, d.FirstUS, c.cfg.MaxDestinations)
		s.dests.put(d.Addr, d.LastUS, c.cfg.MaxDestinations)
	}
	for _, a := range rec.Alerts {
		s.alertTimes.put(alertKey{tsUS: a.TsUS, dst: a.Dst, template: a.Template}, a.TsUS, c.cfg.MaxAlerts)
	}
	if rec.ExploitAtUS > 0 && (s.exploitAt == 0 || rec.ExploitAtUS < s.exploitAt) {
		s.exploitAt = rec.ExploitAtUS
	}
	if severityRank[rec.Severity] > severityRank[s.severity] {
		s.severity = rec.Severity
	}
	for _, t := range rec.Templates {
		if len(s.templates) < maxTemplates || s.templates[t] {
			s.templates[t] = true
		}
	}
	for _, fa := range rec.TargetedBy {
		refs, present := s.targetedBy[fa.Fingerprint]
		for _, r := range fa.Refs {
			refs = addAttackerRef(refs, r.Attacker, r.TsUS, maxAttackersPerFingerprint)
		}
		if present || len(s.targetedBy) < c.cfg.MaxFingerprints {
			s.targetedBy[fa.Fingerprint] = refs
		}
	}
	for _, e := range rec.Emitted {
		s.emitted.put(e.Fingerprint, e.FirstUS, c.cfg.MaxFingerprints)
		s.emitted.put(e.Fingerprint, e.LastUS, c.cfg.MaxFingerprints)
	}
	if rec.PropagationAtUS > 0 && (s.propagationAt == 0 || rec.PropagationAtUS < s.propagationAt) {
		s.propagationAt = rec.PropagationAtUS
	}
	for _, v := range rec.Victims {
		s.victims.put(v.Addr, v.EchoUS, c.cfg.MaxVictims)
	}
	return s
}

// rederivePropagation re-runs the propagation check over one source's
// victim-side evidence, escalating every attacker whose delivered
// payload this source's folded emission span postdates — the same
// verdict apply() reaches event by event, recomputed from merged
// evidence. The victim record's provenance travels with the verdict:
// the sensors that witnessed the victim's evidence are the witnesses
// of the attacker's escalation, so even an attacker synthesized
// purely from victim-side evidence can name them. Called with mu
// held.
func (c *Correlator) rederivePropagation(v *sourceState) {
	for fp, refs := range v.targetedBy {
		sp, ok := v.emitted.get(fp)
		if !ok {
			continue
		}
		for _, ref := range refs {
			if sp.last > ref.tsUS {
				c.escalate(ref.attacker, v.src, echoTime(sp, ref.tsUS))
				if len(v.sensors) > 0 {
					a := c.sources[ref.attacker]
					if a.sensors == nil {
						a.sensors = make(map[string]bool, len(v.sensors))
					}
					for sn := range v.sensors {
						a.sensors[sn] = true
					}
				}
			}
		}
	}
}

// mergeLimit is the MaxSources setting for merge scratch correlators:
// effectively unbounded, so a merge never LRU-finalizes evidence
// mid-fold.
const mergeLimit = 1 << 30

// newMergeState builds a correlator shell for offline evidence math:
// same state, same fold code, no goroutine (nothing is published to
// it and Stop must not be called).
func newMergeState(ex *EvidenceExport) *Correlator {
	c := &Correlator{
		cfg: Config{
			WindowUS:        ex.WindowUS,
			FanoutThreshold: ex.FanoutThreshold,
			MaxSources:      mergeLimit,
			MaxDestinations: ex.Limits.MaxDestinations,
			MaxAlerts:       ex.Limits.MaxAlerts,
			MaxFingerprints: ex.Limits.MaxFingerprints,
			MaxVictims:      ex.Limits.MaxVictims,
		}.withDefaults(),
		sources: make(map[netip.Addr]*sourceState),
		lru:     list.New(),
		subs:    make(map[int]chan Incident),
	}
	// Unregistered histograms keep the fold path free of nil checks;
	// a scratch merge's latency observations are discarded with it.
	for st := StageRecon; st <= StagePropagation; st++ {
		c.stageLatUS[st] = telemetry.NewHistogram()
	}
	return c
}

// MergeExports federates two sensors' evidence: the union of their
// per-source evidence sets under the shared caps, with propagation
// re-derived across the merged evidence (closing links whose halves
// were observed by different sensors) and per-record provenance
// preserved. Commutative and idempotent — Merge(A,B)==Merge(B,A) and
// Merge(A,A)==A — because every constituent fold is; both exports
// must carry identical correlation parameters. The determinism
// guarantee is the correlator's own: byte-identical to a single
// sensor that saw the whole trace, for evidence within the caps.
func MergeExports(a, b *EvidenceExport) (*EvidenceExport, error) {
	if a.WindowUS != b.WindowUS || a.FanoutThreshold != b.FanoutThreshold || a.Limits != b.Limits {
		return nil, fmt.Errorf("incident: cannot merge exports with different correlation parameters: %d/%d/%+v vs %d/%d/%+v",
			a.WindowUS, a.FanoutThreshold, a.Limits, b.WindowUS, b.FanoutThreshold, b.Limits)
	}
	c := newMergeState(a)
	if err := c.Import(a); err != nil {
		return nil, err
	}
	if err := c.Import(b); err != nil {
		return nil, err
	}
	merged := c.exportMerged()
	merged.Sensors = unionSensors(a.Sensors, b.Sensors)
	merged.Classifier = MergeClassifierEvidence(a.Classifier, b.Classifier)
	merged.Lineage = lineage.Merge(a.Lineage, b.Lineage)
	return merged, nil
}

// exportMerged renders a merge correlator's state without stamping a
// local sensor: provenance comes entirely from the merged records.
func (c *Correlator) exportMerged() *EvidenceExport {
	c.mu.Lock()
	defer c.mu.Unlock()
	ex := &EvidenceExport{
		WindowUS:        c.cfg.WindowUS,
		FanoutThreshold: c.cfg.FanoutThreshold,
		Limits:          c.limits(),
		Sources:         make([]SourceEvidence, 0, len(c.sources)),
	}
	for _, s := range c.sources {
		rec := s.export("", c.cfg.WindowUS, c.cfg.FanoutThreshold)
		// Drop the placeholder empty sensor; keep only real provenance.
		rec.Sensors = rec.Sensors[:0]
		for sn := range s.sensors {
			rec.Sensors = append(rec.Sensors, sn)
		}
		sort.Strings(rec.Sensors)
		ex.Sources = append(ex.Sources, rec)
	}
	sort.Slice(ex.Sources, func(i, j int) bool { return ex.Sources[i].Src.Less(ex.Sources[j].Src) })
	return ex
}

func unionSensors(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// DeriveIncidents renders an export's incident set exactly as a live
// correlator holding the same evidence would: re-derive propagation,
// derive each source's stage, drop NONE, and sort under the same
// order Correlator.Incidents uses — so a federated report is
// byte-comparable with a single sensor's live output. Errors on an
// export whose correlation parameters no correlator could run
// (zeroed window, threshold or caps — possible only for hand-built
// exports; the wire decoder rejects such headers).
func DeriveIncidents(ex *EvidenceExport) ([]Incident, error) {
	c := newMergeState(ex)
	if err := c.Import(ex); err != nil {
		return nil, err
	}
	return c.Incidents(), nil
}
