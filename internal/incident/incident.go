// Package incident is the streaming cross-shard incident correlation
// subsystem: the fourth pipeline stage, after classification,
// extraction and semantic analysis. The engine's shards publish typed
// events (core.Event) over a bounded channel to a single correlator
// goroutine that maintains one state machine per source address,
// advancing through the kill-chain stages of the paper's operational
// story ("further action may be taken against the offending IP
// address"):
//
//	RECON        destination fan-out above a threshold inside a
//	             sliding trace-time window (the scan that precedes
//	             infection);
//	EXPLOIT      a semantic-analysis alert attributed to the source;
//	PROPAGATION  a destination this source attacked begins emitting a
//	             payload with the same 128-bit fingerprint — the worm
//	             has jumped hosts.
//
// Shard events interleave nondeterministically, so incident content is
// never derived from arrival order: each source accumulates bounded,
// order-independent evidence sets (minimum-timestamp-K caps, which are
// commutative), and stages plus their transition times are *derived*
// from the evidence. The same trace therefore yields byte-identical
// incidents whatever the shard count. Per-source state is strictly
// bounded: evidence sets are capped, the source table is capped with
// LRU eviction, and idle sources are swept on a trace-time clock.
package incident

import (
	"container/list"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"semnids/internal/core"
)

// maxTemplates caps per-source matched-behavior evidence.
const maxTemplates = 64

// Stage is a kill-chain position. Stages are cumulative evidence
// levels, not strict prerequisites: an exploit with no preceding scan
// is at EXPLOIT having skipped RECON.
type Stage uint8

const (
	StageNone Stage = iota
	StageRecon
	StageExploit
	StagePropagation
)

// String names the stage for rendering and serialization.
func (s Stage) String() string {
	switch s {
	case StageRecon:
		return "RECON"
	case StageExploit:
		return "EXPLOIT"
	case StagePropagation:
		return "PROPAGATION"
	}
	return "NONE"
}

// Transition records when a stage's evidence threshold was crossed,
// in trace time derived from the evidence itself (not event arrival).
type Transition struct {
	Stage Stage
	AtUS  uint64
}

// maxTimelineEvents bounds an incident's timeline ring: first-packet,
// three kill-chain stages and federation annotations fit with slack,
// and a misbehaving annotator can only rotate the ring, not grow it.
const maxTimelineEvents = 8

// TimelineEvent is one entry in an incident's bounded timeline ring.
// Pipeline events ("first-packet" and the derived stage crossings)
// carry trace time and are computed from the evidence, so they are as
// deterministic as the incident itself. Wall-clock entries (Wall
// true; the aggregator's "acked" durability annotation) are stamped
// where they happen and never enter the evidence wire format — they
// are observations about *this process run*, not about the trace.
type TimelineEvent struct {
	// Kind names the event: "first-packet", "recon", "exploit",
	// "propagation", or an annotation such as "acked".
	Kind string

	// AtUS is the event instant: trace-time µs when Wall is false,
	// Unix µs when Wall is true.
	AtUS uint64

	// Wall marks wall-clock annotations.
	Wall bool
}

// AppendTimeline appends ev, keeping the newest maxTimelineEvents
// entries (the ring's bound).
func (inc *Incident) AppendTimeline(ev TimelineEvent) {
	inc.Timeline = append(inc.Timeline, ev)
	if len(inc.Timeline) > maxTimelineEvents {
		inc.Timeline = inc.Timeline[len(inc.Timeline)-maxTimelineEvents:]
	}
}

// Incident is one source's correlated activity, rendered from its
// evidence at snapshot time.
type Incident struct {
	Src      netip.Addr
	Stage    Stage
	Severity string

	// FirstUS/LastUS span the source's evidence in trace time.
	FirstUS, LastUS uint64

	// Destinations is the distinct destination count retained in the
	// fan-out evidence; Alerts counts the distinct alert observations
	// retained in the evidence (saturating at the alert cap).
	Destinations int
	Alerts       int

	// Templates lists matched behaviors (sorted, deduplicated).
	Templates []string

	// Victims lists destinations that re-emitted an attack payload of
	// this source (sorted; non-empty exactly when Stage is
	// PROPAGATION).
	Victims []string

	// Transitions holds the derived stage history in stage order.
	Transitions []Transition

	// Timeline is the incident's bounded event ring: first-packet and
	// the stage crossings (derived, trace time), plus any wall-clock
	// annotations appended downstream (e.g. the aggregator's durable
	// "acked"). Derived entries are deterministic; see TimelineEvent.
	Timeline []TimelineEvent
}

// String renders a one-line operator view.
func (inc Incident) String() string {
	return fmt.Sprintf("[%d.%06d] %s %s %s alerts=%d dests=%d %s",
		inc.LastUS/1e6, inc.LastUS%1e6, inc.Src, inc.Stage, inc.Severity,
		inc.Alerts, inc.Destinations, strings.Join(inc.Templates, ","))
}

// severityRank aliases the pipeline-wide ranking (core.SeverityRank).
var severityRank = core.SeverityRank

// attackRef links a victim's received payload back to the attacker.
type attackRef struct {
	attacker netip.Addr
	tsUS     uint64
}

// addAttackerRef folds one delivery into a victim's per-fingerprint
// attacker list under a min-(timestamp, attacker) cap: an existing
// attacker keeps its earliest delivery, and a full list admits a new
// attacker only by displacing the entry that sorts last — the same
// commutative displacement rule the minKSets use, so the retained
// list depends on the (attacker, ts) multiset, not arrival order.
func addAttackerRef(refs []attackRef, attacker netip.Addr, ts uint64, cap int) []attackRef {
	for i := range refs {
		if refs[i].attacker == attacker {
			if ts < refs[i].tsUS {
				refs[i].tsUS = ts
			}
			return refs
		}
	}
	if len(refs) < cap {
		return append(refs, attackRef{attacker: attacker, tsUS: ts})
	}
	max := 0
	for i := 1; i < len(refs); i++ {
		if lessRef(refs[max], refs[i]) {
			max = i
		}
	}
	if lessRef(attackRef{attacker: attacker, tsUS: ts}, refs[max]) {
		refs[max] = attackRef{attacker: attacker, tsUS: ts}
	}
	return refs
}

// lessRef orders attacker refs by (timestamp, attacker).
func lessRef(a, b attackRef) bool {
	if a.tsUS != b.tsUS {
		return a.tsUS < b.tsUS
	}
	return a.attacker.Less(b.attacker)
}

// alertKey identifies one alert observation. Alert evidence is a
// *set* of these (min-timestamp-K capped), not a counter, so merging
// two sensors' evidence is idempotent: the same alert observed (or
// exported) twice folds into one entry, while distinct alerts from a
// trace split across sensors union back to the single-sensor set.
type alertKey struct {
	tsUS     uint64
	dst      netip.Addr
	template string
}

// sourceState is the per-source evidence accumulator. Every set is
// capped and every cap keeps the minimum-timestamp entries, so the
// retained evidence is a deterministic function of the event *set*,
// independent of arrival order.
type sourceState struct {
	src netip.Addr

	// firstUS/lastUS span content-bearing evidence (flow-open, alert,
	// fingerprint); lastSeenUS additionally counts bookkeeping events
	// and drives idle eviction. echoUS is sweep bookkeeping only — the
	// trace time of the latest escalation proved against this source —
	// so an attacker whose victims are still echoing its payload is
	// not idle-finalized mid-outbreak. It is never exported: which
	// escalations fire, and when, varies with arrival order and
	// partitioning, exactly the noise the serialized evidence excludes
	// (lastSeenUS, by contrast, is a pure max over direct
	// observations).
	firstUS, lastUS uint64
	lastSeenUS      uint64
	echoUS          uint64

	// dests: destination -> earliest contact, for fan-out (RECON).
	dests minKSet[netip.Addr]

	// Alert evidence (EXPLOIT): distinct (timestamp, destination,
	// template) observations under a min-timestamp-K cap; the rendered
	// alert count is the set size, saturating at the cap.
	alertTimes minKSet[alertKey]
	exploitAt  uint64 // earliest alert, 0 = none
	severity   string
	templates  map[string]bool

	// Propagation evidence, this source as victim: which fingerprints
	// it was attacked with, and which it has itself emitted.
	targetedBy map[core.Fingerprint][]attackRef
	emitted    minKSet[core.Fingerprint] // fingerprint -> earliest emission

	// Propagation result, this source as attacker.
	propagationAt uint64
	victims       minKSet[netip.Addr] // victim -> earliest echo

	// sensors records foreign provenance folded in by Import: the
	// sensor IDs whose exported evidence contributed to this source.
	// Nil for purely local sources (the exporting sensor's own ID is
	// stamped at export time).
	sensors map[string]bool

	// notified is the highest stage already delivered to OnIncident
	// and subscribers.
	notified Stage

	// elem positions the source in the correlator's recency list.
	elem *list.Element
}

// touchContent folds a content-bearing event timestamp into the span.
func (s *sourceState) touchContent(ts uint64) {
	if s.firstUS == 0 || ts < s.firstUS {
		s.firstUS = ts
	}
	if ts > s.lastUS {
		s.lastUS = ts
	}
}

// span is one evidence key's observation window in trace time.
type span struct {
	first, last uint64
}

// minKSet is a bounded key -> observation-span set retaining the K
// entries with the smallest first-seen timestamps under the
// (timestamp, key-rendering) total order. Existing keys fold new
// observations into their span (earliest first, latest last); a new
// key is admitted only by displacing the entry that sorts last.
// Because the order is total — timestamp ties are broken by key — the
// retained set and, below the cap, every span depend only on the
// (key, ts) multiset, never on insertion order. A cached maximum
// makes the common saturated case O(1): a scanner producing ever-newer
// evidence against a full set is turned away without scanning the map.
type minKSet[K comparable] struct {
	m map[K]span

	// less is the deterministic key order used to break equal-timestamp
	// ties. A typed comparison, not a rendering: the old fmt.Sprint
	// tiebreak allocated two strings per comparison on the cap
	// displacement path (TestMinKSetTiebreakAllocs pins the fix).
	less func(a, b K) bool

	maxKey   K
	maxTS    uint64
	maxValid bool
}

func newMinKSet[K comparable](less func(a, b K) bool) minKSet[K] {
	return minKSet[K]{m: make(map[K]span), less: less}
}

// Key comparators: each evidence key type gets a total order so cap
// displacement breaks equal-timestamp ties identically across runs,
// shard counts and sensors (the key that sorts last is displaced
// first).
func lessAddr(a, b netip.Addr) bool { return a.Less(b) }

func lessFingerprint(a, b core.Fingerprint) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.N < b.N
}

func lessAlertKey(a, b alertKey) bool {
	if a.tsUS != b.tsUS {
		return a.tsUS < b.tsUS
	}
	if a.dst != b.dst {
		return a.dst.Less(b.dst)
	}
	return a.template < b.template
}

func (s *minKSet[K]) len() int { return len(s.m) }

func (s *minKSet[K]) get(key K) (span, bool) {
	sp, ok := s.m[key]
	return sp, ok
}

func (s *minKSet[K]) put(key K, ts uint64, cap int) {
	if sp, ok := s.m[key]; ok {
		if ts < sp.first {
			sp.first = ts
			if s.maxValid && key == s.maxKey {
				s.maxValid = false
			}
		}
		if ts > sp.last {
			sp.last = ts
		}
		s.m[key] = sp
		return
	}
	if len(s.m) < cap {
		s.m[key] = span{first: ts, last: ts}
		s.maxValid = false
		return
	}
	if !s.maxValid {
		s.recomputeMax()
	}
	if ts > s.maxTS || (ts == s.maxTS && !s.less(key, s.maxKey)) {
		return // sorts after the current maximum: rejected without a scan
	}
	delete(s.m, s.maxKey)
	s.m[key] = span{first: ts, last: ts}
	s.maxValid = false
}

func (s *minKSet[K]) recomputeMax() {
	first := true
	for k, sp := range s.m {
		if first || sp.first > s.maxTS || (sp.first == s.maxTS && s.less(s.maxKey, k)) {
			s.maxKey, s.maxTS, first = k, sp.first, false
		}
	}
	s.maxValid = !first
}

// reconAt derives the earliest trace time at which the source's
// distinct-destination fan-out reached threshold inside a sliding
// window, or 0 if it never did.
func (s *sourceState) reconAt(windowUS uint64, threshold int) uint64 {
	if threshold <= 0 || s.dests.len() < threshold {
		return 0
	}
	ts := make([]uint64, 0, s.dests.len())
	for _, sp := range s.dests.m {
		ts = append(ts, sp.first)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	// Each destination contributes its first contact; the window
	// [ts[i]-window, ts[i]] holds the fan-out count ending at ts[i].
	lo := 0
	for i := range ts {
		for ts[i]-ts[lo] > windowUS {
			lo++
		}
		if i-lo+1 >= threshold {
			return ts[i]
		}
	}
	return 0
}

// derive renders the source's evidence as an Incident.
func (s *sourceState) derive(windowUS uint64, threshold int) Incident {
	inc := Incident{
		Src:          s.src,
		FirstUS:      s.firstUS,
		LastUS:       s.lastUS,
		Destinations: s.dests.len(),
		Alerts:       s.alertTimes.len(),
		Severity:     s.severity,
	}
	for t := range s.templates {
		inc.Templates = append(inc.Templates, t)
	}
	sort.Strings(inc.Templates)

	if at := s.reconAt(windowUS, threshold); at > 0 {
		inc.Stage = StageRecon
		inc.Transitions = append(inc.Transitions, Transition{StageRecon, at})
		if severityRank[inc.Severity] < severityRank["low"] {
			inc.Severity = "low"
		}
	}
	if s.exploitAt > 0 {
		inc.Stage = StageExploit
		inc.Transitions = append(inc.Transitions, Transition{StageExploit, s.exploitAt})
	}
	if s.propagationAt > 0 {
		inc.Stage = StagePropagation
		inc.Transitions = append(inc.Transitions, Transition{StagePropagation, s.propagationAt})
		// The propagation instant is proved by the victim's traffic,
		// which may postdate the attacker's own last activity.
		if s.propagationAt > inc.LastUS {
			inc.LastUS = s.propagationAt
		}
		// A payload observed jumping hosts is the worst outcome the
		// correlator can prove; escalate past any per-alert severity.
		inc.Severity = "critical"
		for v := range s.victims.m {
			inc.Victims = append(inc.Victims, v.String())
		}
		sort.Strings(inc.Victims)
	}

	// The timeline ring opens with the first observed packet and adds
	// one entry per derived stage crossing — all trace time, all a
	// function of the evidence, so timelines federate as
	// deterministically as the incidents themselves.
	if inc.FirstUS > 0 {
		inc.AppendTimeline(TimelineEvent{Kind: "first-packet", AtUS: inc.FirstUS})
	}
	for _, t := range inc.Transitions {
		inc.AppendTimeline(TimelineEvent{Kind: strings.ToLower(t.Stage.String()), AtUS: t.AtUS})
	}
	return inc
}

// stage is the derived stage without rendering the full incident.
func (s *sourceState) stage(windowUS uint64, threshold int) Stage {
	switch {
	case s.propagationAt > 0:
		return StagePropagation
	case s.exploitAt > 0:
		return StageExploit
	case s.reconAt(windowUS, threshold) > 0:
		return StageRecon
	}
	return StageNone
}
