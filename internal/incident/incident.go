// Package incident is the streaming cross-shard incident correlation
// subsystem: the fourth pipeline stage, after classification,
// extraction and semantic analysis. The engine's shards publish typed
// events (core.Event) over a bounded channel to a single correlator
// goroutine that maintains one state machine per source address,
// advancing through the kill-chain stages of the paper's operational
// story ("further action may be taken against the offending IP
// address"):
//
//	RECON        destination fan-out above a threshold inside a
//	             sliding trace-time window (the scan that precedes
//	             infection);
//	EXPLOIT      a semantic-analysis alert attributed to the source;
//	PROPAGATION  a destination this source attacked begins emitting a
//	             payload with the same 128-bit fingerprint — the worm
//	             has jumped hosts.
//
// Shard events interleave nondeterministically, so incident content is
// never derived from arrival order: each source accumulates bounded,
// order-independent evidence sets (minimum-timestamp-K caps, which are
// commutative), and stages plus their transition times are *derived*
// from the evidence. The same trace therefore yields byte-identical
// incidents whatever the shard count. Per-source state is strictly
// bounded: evidence sets are capped, the source table is capped with
// LRU eviction, and idle sources are swept on a trace-time clock.
package incident

import (
	"container/list"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"semnids/internal/core"
)

// Stage is a kill-chain position. Stages are cumulative evidence
// levels, not strict prerequisites: an exploit with no preceding scan
// is at EXPLOIT having skipped RECON.
type Stage uint8

const (
	StageNone Stage = iota
	StageRecon
	StageExploit
	StagePropagation
)

// String names the stage for rendering and serialization.
func (s Stage) String() string {
	switch s {
	case StageRecon:
		return "RECON"
	case StageExploit:
		return "EXPLOIT"
	case StagePropagation:
		return "PROPAGATION"
	}
	return "NONE"
}

// Transition records when a stage's evidence threshold was crossed,
// in trace time derived from the evidence itself (not event arrival).
type Transition struct {
	Stage Stage
	AtUS  uint64
}

// Incident is one source's correlated activity, rendered from its
// evidence at snapshot time.
type Incident struct {
	Src      netip.Addr
	Stage    Stage
	Severity string

	// FirstUS/LastUS span the source's evidence in trace time.
	FirstUS, LastUS uint64

	// Destinations is the distinct destination count retained in the
	// fan-out evidence; Alerts counts alert events attributed to the
	// source.
	Destinations int
	Alerts       int

	// Templates lists matched behaviors (sorted, deduplicated).
	Templates []string

	// Victims lists destinations that re-emitted an attack payload of
	// this source (sorted; non-empty exactly when Stage is
	// PROPAGATION).
	Victims []string

	// Transitions holds the derived stage history in stage order.
	Transitions []Transition
}

// String renders a one-line operator view.
func (inc Incident) String() string {
	return fmt.Sprintf("[%d.%06d] %s %s %s alerts=%d dests=%d %s",
		inc.LastUS/1e6, inc.LastUS%1e6, inc.Src, inc.Stage, inc.Severity,
		inc.Alerts, inc.Destinations, strings.Join(inc.Templates, ","))
}

// severityRank aliases the pipeline-wide ranking (core.SeverityRank).
var severityRank = core.SeverityRank

// attackRef links a victim's received payload back to the attacker.
type attackRef struct {
	attacker netip.Addr
	tsUS     uint64
}

// sourceState is the per-source evidence accumulator. Every set is
// capped and every cap keeps the minimum-timestamp entries, so the
// retained evidence is a deterministic function of the event *set*,
// independent of arrival order.
type sourceState struct {
	src netip.Addr

	// firstUS/lastUS span content-bearing evidence (flow-open, alert,
	// fingerprint); lastSeenUS additionally counts bookkeeping events
	// and drives idle eviction.
	firstUS, lastUS uint64
	lastSeenUS      uint64

	// dests: destination -> earliest contact, for fan-out (RECON).
	dests minKSet[netip.Addr]

	// Alert evidence (EXPLOIT).
	alerts    int
	exploitAt uint64 // earliest alert, 0 = none
	severity  string
	templates map[string]bool

	// Propagation evidence, this source as victim: which fingerprints
	// it was attacked with, and which it has itself emitted.
	targetedBy map[core.Fingerprint][]attackRef
	emitted    minKSet[core.Fingerprint] // fingerprint -> earliest emission

	// Propagation result, this source as attacker.
	propagationAt uint64
	victims       minKSet[netip.Addr] // victim -> earliest echo

	// notified is the highest stage already delivered to OnIncident
	// and subscribers.
	notified Stage

	// elem positions the source in the correlator's recency list.
	elem *list.Element
}

// touchContent folds a content-bearing event timestamp into the span.
func (s *sourceState) touchContent(ts uint64) {
	if s.firstUS == 0 || ts < s.firstUS {
		s.firstUS = ts
	}
	if ts > s.lastUS {
		s.lastUS = ts
	}
}

// span is one evidence key's observation window in trace time.
type span struct {
	first, last uint64
}

// minKSet is a bounded key -> observation-span set retaining the K
// entries with the smallest first-seen timestamps under the
// (timestamp, key-rendering) total order. Existing keys fold new
// observations into their span (earliest first, latest last); a new
// key is admitted only by displacing the entry that sorts last.
// Because the order is total — timestamp ties are broken by key — the
// retained set and, below the cap, every span depend only on the
// (key, ts) multiset, never on insertion order. A cached maximum
// makes the common saturated case O(1): a scanner producing ever-newer
// evidence against a full set is turned away without scanning the map.
type minKSet[K comparable] struct {
	m        map[K]span
	maxKey   K
	maxTS    uint64
	maxValid bool
}

func newMinKSet[K comparable]() minKSet[K] { return minKSet[K]{m: make(map[K]span)} }

func (s *minKSet[K]) len() int { return len(s.m) }

func (s *minKSet[K]) get(key K) (span, bool) {
	sp, ok := s.m[key]
	return sp, ok
}

func (s *minKSet[K]) put(key K, ts uint64, cap int) {
	if sp, ok := s.m[key]; ok {
		if ts < sp.first {
			sp.first = ts
			if s.maxValid && key == s.maxKey {
				s.maxValid = false
			}
		}
		if ts > sp.last {
			sp.last = ts
		}
		s.m[key] = sp
		return
	}
	if len(s.m) < cap {
		s.m[key] = span{first: ts, last: ts}
		s.maxValid = false
		return
	}
	if !s.maxValid {
		s.recomputeMax()
	}
	if ts > s.maxTS || (ts == s.maxTS && !evictBefore(s.maxKey, key)) {
		return // sorts after the current maximum: rejected without a scan
	}
	delete(s.m, s.maxKey)
	s.m[key] = span{first: ts, last: ts}
	s.maxValid = false
}

func (s *minKSet[K]) recomputeMax() {
	first := true
	for k, sp := range s.m {
		if first || sp.first > s.maxTS || (sp.first == s.maxTS && evictBefore(k, s.maxKey)) {
			s.maxKey, s.maxTS, first = k, sp.first, false
		}
	}
	s.maxValid = !first
}

// evictBefore orders equal-timestamp evidence keys deterministically
// so cap displacement breaks ties identically across runs and shard
// counts (the key with the larger rendering is displaced first).
func evictBefore[K comparable](a, b K) bool { return fmt.Sprint(a) > fmt.Sprint(b) }

// reconAt derives the earliest trace time at which the source's
// distinct-destination fan-out reached threshold inside a sliding
// window, or 0 if it never did.
func (s *sourceState) reconAt(windowUS uint64, threshold int) uint64 {
	if threshold <= 0 || s.dests.len() < threshold {
		return 0
	}
	ts := make([]uint64, 0, s.dests.len())
	for _, sp := range s.dests.m {
		ts = append(ts, sp.first)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	// Each destination contributes its first contact; the window
	// [ts[i]-window, ts[i]] holds the fan-out count ending at ts[i].
	lo := 0
	for i := range ts {
		for ts[i]-ts[lo] > windowUS {
			lo++
		}
		if i-lo+1 >= threshold {
			return ts[i]
		}
	}
	return 0
}

// derive renders the source's evidence as an Incident.
func (s *sourceState) derive(windowUS uint64, threshold int) Incident {
	inc := Incident{
		Src:          s.src,
		FirstUS:      s.firstUS,
		LastUS:       s.lastUS,
		Destinations: s.dests.len(),
		Alerts:       s.alerts,
		Severity:     s.severity,
	}
	for t := range s.templates {
		inc.Templates = append(inc.Templates, t)
	}
	sort.Strings(inc.Templates)

	if at := s.reconAt(windowUS, threshold); at > 0 {
		inc.Stage = StageRecon
		inc.Transitions = append(inc.Transitions, Transition{StageRecon, at})
		if severityRank[inc.Severity] < severityRank["low"] {
			inc.Severity = "low"
		}
	}
	if s.exploitAt > 0 {
		inc.Stage = StageExploit
		inc.Transitions = append(inc.Transitions, Transition{StageExploit, s.exploitAt})
	}
	if s.propagationAt > 0 {
		inc.Stage = StagePropagation
		inc.Transitions = append(inc.Transitions, Transition{StagePropagation, s.propagationAt})
		// The propagation instant is proved by the victim's traffic,
		// which may postdate the attacker's own last activity.
		if s.propagationAt > inc.LastUS {
			inc.LastUS = s.propagationAt
		}
		// A payload observed jumping hosts is the worst outcome the
		// correlator can prove; escalate past any per-alert severity.
		inc.Severity = "critical"
		for v := range s.victims.m {
			inc.Victims = append(inc.Victims, v.String())
		}
		sort.Strings(inc.Victims)
	}
	return inc
}

// stage is the derived stage without rendering the full incident.
func (s *sourceState) stage(windowUS uint64, threshold int) Stage {
	switch {
	case s.propagationAt > 0:
		return StagePropagation
	case s.exploitAt > 0:
		return StageExploit
	case s.reconAt(windowUS, threshold) > 0:
		return StageRecon
	}
	return StageNone
}
