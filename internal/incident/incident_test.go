package incident

import (
	"fmt"
	"net/netip"
	"testing"

	"semnids/internal/core"
)

var (
	attacker = netip.MustParseAddr("10.0.0.1")
	victim   = netip.MustParseAddr("172.16.0.1")
	next     = netip.MustParseAddr("172.16.0.2")
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{192, 168, byte(i >> 8), byte(i)})
}

func flowOpen(src, dst netip.Addr, ts uint64) core.Event {
	return core.Event{Kind: core.EventFlowOpen, TimestampUS: ts, Src: src, Dst: dst, SrcPort: 1234, DstPort: 80}
}

func alert(src, dst netip.Addr, ts uint64, fp core.Fingerprint) core.Event {
	return core.Event{
		Kind: core.EventAlert, TimestampUS: ts, Src: src, Dst: dst,
		SrcPort: 1234, DstPort: 80, Fingerprint: fp,
		Template: "code-red-ii", Severity: "high",
	}
}

func emission(src, dst netip.Addr, ts uint64, fp core.Fingerprint) core.Event {
	return core.Event{
		Kind: core.EventFingerprint, TimestampUS: ts, Src: src, Dst: dst,
		SrcPort: 4321, DstPort: 80, Fingerprint: fp,
	}
}

// find returns the incident for src, failing the test if absent.
func find(t *testing.T, incs []Incident, src netip.Addr) Incident {
	t.Helper()
	for _, inc := range incs {
		if inc.Src == src {
			return inc
		}
	}
	t.Fatalf("no incident for %s in %v", src, incs)
	return Incident{}
}

// TestKillChain drives one source through all three stages and checks
// the derived incident: stage, transition times, severity escalation
// and the propagation victim.
func TestKillChain(t *testing.T) {
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	defer c.Stop()

	fp := core.FingerprintOf([]byte("worm payload"))
	// Fan-out: three destinations inside the window -> RECON at the
	// third contact.
	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2000))
	c.Publish(flowOpen(attacker, addr(3), 3000))
	// Exploit delivery.
	c.Publish(alert(attacker, victim, 5000, fp))
	// The victim re-emits the payload later: propagation.
	c.Publish(emission(victim, next, 9000, fp))
	c.Flush()

	inc := find(t, c.Incidents(), attacker)
	if inc.Stage != StagePropagation {
		t.Fatalf("stage = %v, want PROPAGATION", inc.Stage)
	}
	want := []Transition{{StageRecon, 3000}, {StageExploit, 5000}, {StagePropagation, 9000}}
	if len(inc.Transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", inc.Transitions, want)
	}
	for i := range want {
		if inc.Transitions[i] != want[i] {
			t.Errorf("transition[%d] = %v, want %v", i, inc.Transitions[i], want[i])
		}
	}
	if inc.Severity != "critical" {
		t.Errorf("severity = %q, want critical (propagation escalates)", inc.Severity)
	}
	if len(inc.Victims) != 1 || inc.Victims[0] != victim.String() {
		t.Errorf("victims = %v, want [%s]", inc.Victims, victim)
	}
	if inc.Alerts != 1 || inc.Templates[0] != "code-red-ii" {
		t.Errorf("alerts/templates = %d/%v", inc.Alerts, inc.Templates)
	}
}

// TestOrderIndependence applies the same event set in opposite orders
// — including the propagation echo arriving before the alert that
// explains it, as cross-shard interleaving can deliver — and demands
// identical derived incidents.
func TestOrderIndependence(t *testing.T) {
	fp := core.FingerprintOf([]byte("payload"))
	events := []core.Event{
		flowOpen(attacker, addr(1), 1000),
		flowOpen(attacker, addr(2), 2000),
		flowOpen(attacker, addr(3), 3000),
		alert(attacker, victim, 5000, fp),
		emission(victim, next, 9000, fp),
	}

	render := func(order []core.Event) string {
		c := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
		defer c.Stop()
		for _, ev := range order {
			c.Publish(ev)
		}
		c.Flush()
		return fmt.Sprint(c.Incidents())
	}

	forward := render(events)
	reversed := make([]core.Event, len(events))
	for i, ev := range events {
		reversed[len(events)-1-i] = ev
	}
	backward := render(reversed)
	if forward != backward {
		t.Fatalf("incident set depends on event order:\n forward: %s\nbackward: %s", forward, backward)
	}
	if forward == "[]" {
		t.Fatal("no incidents derived")
	}
}

// TestPropagationStraddlingEmissions covers the cross-infection edge:
// the victim was already emitting the payload when a second attacker
// hit it (emissions at t=5 and t=15 straddle the t=10 alert). Every
// arrival order must converge on the same verdict — the attacker
// propagates, with the canonical echo just after its own delivery.
func TestPropagationStraddlingEmissions(t *testing.T) {
	fp := core.FingerprintOf([]byte("worm"))
	events := []core.Event{
		emission(victim, next, 5, fp),
		alert(attacker, victim, 10, fp),
		emission(victim, next, 15, fp),
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {0, 2, 1}, {1, 0, 2}, {2, 0, 1}, {1, 2, 0}}
	var want string
	for i, order := range orders {
		c := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
		for _, idx := range order {
			c.Publish(events[idx])
		}
		c.Flush()
		inc := find(t, c.Incidents(), attacker)
		c.Stop()
		if inc.Stage != StagePropagation {
			t.Fatalf("order %v: stage = %v, want PROPAGATION", order, inc.Stage)
		}
		got := fmt.Sprint(inc)
		if i == 0 {
			want = got
			// The victim emitted before and after the attack: the
			// canonical echo is just after the delivery.
			if at := inc.Transitions[len(inc.Transitions)-1].AtUS; at != 11 {
				t.Fatalf("echo time = %d, want 11", at)
			}
			continue
		}
		if got != want {
			t.Fatalf("order %v diverged:\n got: %s\nwant: %s", order, got, want)
		}
	}
}

// TestFanoutWindow checks RECON requires the fan-out inside one
// sliding window: the same three destinations spread wider stay NONE.
func TestFanoutWindow(t *testing.T) {
	c := New(Config{WindowUS: 1e6, FanoutThreshold: 3})
	defer c.Stop()
	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2e6))
	c.Publish(flowOpen(attacker, addr(3), 4e6))
	c.Flush()
	if incs := c.Incidents(); len(incs) != 0 {
		t.Fatalf("slow scan inside a 1s window produced incidents: %v", incs)
	}
}

// TestSeverityFloor checks a recon-only incident carries the floor
// severity and an exploit adopts its alert's.
func TestSeverityFloor(t *testing.T) {
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 2})
	defer c.Stop()
	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2000))
	c.Flush()
	if inc := find(t, c.Incidents(), attacker); inc.Severity != "low" || inc.Stage != StageRecon {
		t.Fatalf("recon incident = %v, want low/RECON", inc)
	}
}

// TestSourceLRUBound feeds more sources than MaxSources and checks
// the tracked-state gauge stays at the cap with evictions counted.
func TestSourceLRUBound(t *testing.T) {
	const cap = 64
	c := New(Config{MaxSources: cap})
	defer c.Stop()
	for i := 0; i < 10*cap; i++ {
		c.Publish(flowOpen(addr(i), addr(20000+i), uint64(1000+i)))
	}
	c.Flush()
	m := c.Metrics()
	if m.SourcesTracked > cap {
		t.Fatalf("tracked sources = %d, cap %d", m.SourcesTracked, cap)
	}
	if m.SourcesEvictedLRU == 0 {
		t.Fatal("no LRU evictions despite 10x the source cap")
	}
}

// TestIdleSweep advances trace time far past the idle timeout and
// checks staged sources are finalized into the completed set while
// their live state is released.
func TestIdleSweep(t *testing.T) {
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 2, SourceIdleUS: 1e6})
	defer c.Stop()
	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2000))
	// Unrelated activity far in the future triggers the sweep.
	c.Publish(flowOpen(victim, addr(3), 10e6))
	c.Flush()
	m := c.Metrics()
	if m.SourcesEvictedIdle == 0 {
		t.Fatal("idle sweep did not run")
	}
	// The staged incident survives finalization.
	inc := find(t, c.Incidents(), attacker)
	if inc.Stage != StageRecon {
		t.Fatalf("finalized incident stage = %v, want RECON", inc.Stage)
	}
}

// TestSubscribe checks stage transitions are delivered live, and that
// a full subscriber buffer sheds instead of blocking correlation.
func TestSubscribe(t *testing.T) {
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 2})
	defer c.Stop()
	ch, cancel := c.Subscribe(4)
	defer cancel()

	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2000))
	c.Publish(alert(attacker, victim, 5000, core.Fingerprint{}))
	c.Flush()

	first := <-ch
	if first.Stage != StageRecon {
		t.Fatalf("first delivery stage = %v, want RECON", first.Stage)
	}
	second := <-ch
	if second.Stage != StageExploit {
		t.Fatalf("second delivery stage = %v, want EXPLOIT", second.Stage)
	}
}

// TestEscalationKeepsAttackerAlive pins the sweep bookkeeping: an
// attacker that goes quiet while its victims keep echoing its payload
// must not be idle-finalized mid-outbreak — finalization would
// resurrect it as a fresh skeleton on the next echo and announce the
// same PROPAGATION incident twice.
func TestEscalationKeepsAttackerAlive(t *testing.T) {
	var propagations int
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 3, SourceIdleUS: 1e6,
		OnIncident: func(inc Incident) {
			if inc.Src == attacker && inc.Stage == StagePropagation {
				propagations++
			}
		}})
	defer c.Stop()

	fp := core.FingerprintOf([]byte("worm"))
	c.Publish(alert(attacker, victim, 1000, fp))
	// The attacker never speaks again; its victim keeps echoing far
	// past the idle window, with sweeps triggering in between. The
	// victim's own follow-up activity re-positions it in front of the
	// attacker in the recency list, so the sweep examines the attacker
	// — whose direct-observation clock is ancient — first.
	for ts := uint64(2000); ts < 6e6; ts += 400_000 {
		c.Publish(emission(victim, next, ts, fp))
		// Enough trace-time advance that this event runs a sweep of its
		// own, finding the attacker at the back of the recency list.
		c.Publish(flowOpen(victim, addr(1), ts+300_000))
	}
	c.Flush()

	var found int
	for _, inc := range c.Incidents() {
		if inc.Src == attacker {
			found++
			if inc.Stage != StagePropagation || inc.FirstUS == 0 {
				t.Fatalf("attacker incident degraded to a skeleton: %+v", inc)
			}
		}
	}
	if found != 1 {
		t.Fatalf("attacker rendered %d incidents, want exactly 1 (no finalize/resurrect split)", found)
	}
	if propagations != 1 {
		t.Fatalf("PROPAGATION announced %d times, want once", propagations)
	}
}

// TestMinKSetDeterministic checks the evidence cap keeps the
// minimum-timestamp entries whatever the insertion order, including
// equal-timestamp ties (broken by key) and the cached-max rejection
// path (repeated too-new inserts against a full set).
func TestMinKSetDeterministic(t *testing.T) {
	ins := [][2]int{{5, 50}, {1, 10}, {3, 30}, {2, 20}, {4, 40}}
	for trial := 0; trial < len(ins); trial++ {
		s := newMinKSet[netip.Addr](lessAddr)
		for i := range ins {
			e := ins[(i+trial)%len(ins)]
			s.put(addr(e[0]), uint64(e[1]), 3)
		}
		// Saturate the rejection fast path.
		for i := 0; i < 10; i++ {
			s.put(addr(100+i), 99, 3)
		}
		for _, want := range []int{1, 2, 3} {
			if _, ok := s.get(addr(want)); !ok {
				t.Fatalf("trial %d: min-3 set %v missing %v", trial, s.m, addr(want))
			}
		}
	}

	// Equal timestamps: retention must depend on the keys, not on
	// which insert came first.
	for _, order := range [][]int{{1, 2, 3, 4}, {4, 3, 2, 1}} {
		s := newMinKSet[netip.Addr](lessAddr)
		for _, k := range order {
			s.put(addr(k), 7, 3)
		}
		for _, want := range []int{1, 2, 3} {
			if _, ok := s.get(addr(want)); !ok {
				t.Fatalf("order %v: tie retention %v missing %v", order, s.m, addr(want))
			}
		}
	}
}
