package incident

import (
	"fmt"
	"reflect"
	"testing"

	"semnids/internal/core"
)

// killChainCorrelator drives one correlator through the standard
// three-stage scenario plus an unrelated scanner, and returns it
// (stopped, state readable).
func killChainCorrelator(t *testing.T) *Correlator {
	t.Helper()
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	fp := core.FingerprintOf([]byte("worm payload"))
	c.Publish(flowOpen(attacker, addr(1), 1000))
	c.Publish(flowOpen(attacker, addr(2), 2000))
	c.Publish(flowOpen(attacker, addr(3), 3000))
	c.Publish(alert(attacker, victim, 5000, fp))
	c.Publish(emission(victim, next, 9000, fp))
	c.Publish(flowOpen(addr(50), addr(60), 4000)) // unstaged background source
	c.Flush()
	c.Stop()
	return c
}

// TestEvidenceExportRoundTrip checks export → import into a fresh
// correlator is lossless: the re-export matches (modulo the importing
// sensor joining the provenance set) and the derived incidents are
// identical, including the cross-source propagation link.
func TestEvidenceExportRoundTrip(t *testing.T) {
	c := killChainCorrelator(t)
	ex := c.Export("sensor-a")

	if len(ex.Sources) == 0 {
		t.Fatal("export is empty")
	}
	for _, rec := range ex.Sources {
		if len(rec.Sensors) != 1 || rec.Sensors[0] != "sensor-a" {
			t.Fatalf("record %s provenance = %v, want [sensor-a]", rec.Src, rec.Sensors)
		}
	}

	r := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	defer r.Stop()
	if err := r.Import(ex); err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(r.Incidents()), fmt.Sprint(c.Incidents()); got != want {
		t.Fatalf("incidents diverged after round trip:\n got: %s\nwant: %s", got, want)
	}
	re := r.Export("sensor-a")
	if !reflect.DeepEqual(re, ex) {
		t.Fatalf("re-export diverged:\n got: %+v\nwant: %+v", re, ex)
	}

	// Importing the same export again must change nothing.
	if err := r.Import(ex); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Export("sensor-a"), ex) {
		t.Fatal("second import of the same export changed the evidence")
	}
}

// TestEvidenceImportIncompatible checks correlation-parameter skew is
// rejected instead of silently folded.
func TestEvidenceImportIncompatible(t *testing.T) {
	c := killChainCorrelator(t)
	ex := c.Export("sensor-a")

	r := New(Config{WindowUS: 5e6, FanoutThreshold: 3})
	defer r.Stop()
	if err := r.Import(ex); err == nil {
		t.Fatal("import with a different fan-out window succeeded")
	}

	r2 := New(Config{WindowUS: 10e6, FanoutThreshold: 3, MaxDestinations: 7})
	defer r2.Stop()
	if err := r2.Import(ex); err == nil {
		t.Fatal("import with different evidence caps succeeded")
	}
}

// TestMergeClosesCrossSensorPropagation is the federation payoff: the
// alert (attacker→victim) and the victim's re-emission are observed
// by *different* sensors, so neither derives PROPAGATION alone — the
// merged evidence must.
func TestMergeClosesCrossSensorPropagation(t *testing.T) {
	fp := core.FingerprintOf([]byte("worm payload"))

	a := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	a.Publish(flowOpen(attacker, addr(1), 1000))
	a.Publish(flowOpen(attacker, addr(2), 2000))
	a.Publish(flowOpen(attacker, addr(3), 3000))
	a.Publish(alert(attacker, victim, 5000, fp))
	a.Flush()
	a.Stop()

	b := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	b.Publish(emission(victim, next, 9000, fp))
	b.Flush()
	b.Stop()

	for _, inc := range append(a.Incidents(), b.Incidents()...) {
		if inc.Stage == StagePropagation {
			t.Fatalf("a single sensor derived PROPAGATION alone: %v", inc)
		}
	}

	merged, err := MergeExports(a.Export("sensor-a"), b.Export("sensor-b"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(merged.Sensors), "[sensor-a sensor-b]"; got != want {
		t.Fatalf("merged sensor set = %s, want %s", got, want)
	}
	incs, err := DeriveIncidents(merged)
	if err != nil {
		t.Fatal(err)
	}
	var atk *Incident
	for i := range incs {
		if incs[i].Src == attacker {
			atk = &incs[i]
		}
	}
	if atk == nil || atk.Stage != StagePropagation {
		t.Fatalf("merged evidence did not derive PROPAGATION for the attacker: %v", incs)
	}
	if len(atk.Victims) != 1 || atk.Victims[0] != victim.String() {
		t.Fatalf("merged victims = %v, want [%s]", atk.Victims, victim)
	}

	// Provenance: the victim's merged record must trace back to both
	// sensors (attacked-with evidence from a, emission evidence from
	// b), and the attacker's must include the victim record's
	// witnesses — the sensors whose evidence proved its escalation.
	for _, rec := range merged.Sources {
		if rec.Src == victim && fmt.Sprint(rec.Sensors) != "[sensor-a sensor-b]" {
			t.Fatalf("victim record provenance = %v, want both sensors", rec.Sensors)
		}
		if rec.Src == attacker && fmt.Sprint(rec.Sensors) != "[sensor-a sensor-b]" {
			t.Fatalf("attacker record provenance = %v, want both sensors", rec.Sensors)
		}
	}
}

// TestMergeSynthesizedAttackerProvenance covers the attacker that has
// no record of its own in any export (finalized before export, say):
// the merge synthesizes it from victim-side evidence, and the
// synthesized record must name the victim record's witnessing sensors
// — a federated verdict can always say who saw it.
func TestMergeSynthesizedAttackerProvenance(t *testing.T) {
	fp := core.FingerprintOf([]byte("worm payload"))
	c := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	c.Publish(alert(attacker, victim, 5000, fp))
	c.Publish(emission(victim, next, 9000, fp))
	c.Flush()
	c.Stop()
	ex := c.Export("sensor-a")

	// Strip the attacker's own record: only the victim-side evidence
	// (targeted-by + emission) remains.
	kept := ex.Sources[:0]
	for _, rec := range ex.Sources {
		if rec.Src != attacker {
			kept = append(kept, rec)
		}
	}
	ex.Sources = kept

	merged, err := MergeExports(ex, ex)
	if err != nil {
		t.Fatal(err)
	}
	var atk *SourceEvidence
	for i := range merged.Sources {
		if merged.Sources[i].Src == attacker {
			atk = &merged.Sources[i]
		}
	}
	if atk == nil {
		t.Fatalf("merge did not synthesize the attacker from victim evidence: %+v", merged.Sources)
	}
	if atk.Stage != StagePropagation.String() {
		t.Fatalf("synthesized attacker stage = %s, want PROPAGATION", atk.Stage)
	}
	if fmt.Sprint(atk.Sensors) != "[sensor-a]" {
		t.Fatalf("synthesized attacker provenance = %v, want the victim record's witnesses", atk.Sensors)
	}
}

// TestImportNotifiesUnionProvenStage locks Import's notification
// contract: a stage neither record proved alone, but their union
// does, fires OnIncident like a live transition — while the stages
// the records had already announced stay quiet.
func TestImportNotifiesUnionProvenStage(t *testing.T) {
	// Sensor a: two fan-out destinations (below threshold 3).
	a := New(Config{WindowUS: 10e6, FanoutThreshold: 3})
	a.Publish(flowOpen(attacker, addr(1), 1000))
	a.Publish(flowOpen(attacker, addr(2), 2000))
	a.Flush()
	a.Stop()

	// Live correlator: two different destinations, also below.
	var fired []Stage
	r := New(Config{WindowUS: 10e6, FanoutThreshold: 3, OnIncident: func(inc Incident) {
		fired = append(fired, inc.Stage)
	}})
	defer r.Stop()
	r.Publish(flowOpen(attacker, addr(3), 3000))
	r.Publish(flowOpen(attacker, addr(4), 4000))
	r.Flush()
	if len(fired) != 0 {
		t.Fatalf("stage fired before import: %v", fired)
	}

	// The union (4 destinations) proves RECON: import must announce it.
	if err := r.Import(a.Export("sensor-a")); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != StageRecon {
		t.Fatalf("union-proven RECON notified %v, want exactly [RECON]", fired)
	}

	// Idempotence extends to notification: importing again is silent.
	if err := r.Import(a.Export("sensor-a")); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("second import re-notified: %v", fired)
	}
}
