package incident

import (
	"net/netip"
	"testing"
)

// TestMinKSetTiebreakAllocs pins the min-K eviction tiebreak at zero
// allocations, mirroring the engine's ingest pin. The old evictBefore
// rendered both keys with fmt.Sprint — two string allocations per
// comparison — on exactly the paths a saturated evidence set hits
// constantly: the cached-max rejection of too-new inserts and the
// full-scan max recomputation after a displacement.
func TestMinKSetTiebreakAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	s := newMinKSet[netip.Addr](lessAddr)
	// Saturate: cap 3, equal timestamps, so every further put goes
	// through the tiebreak comparison.
	for i := 1; i <= 3; i++ {
		s.put(addr(i), 7, 3)
	}
	probe := make([]netip.Addr, 64)
	for i := range probe {
		probe[i] = addr(200 + i) // sorts after every retained key
	}
	allocs := testing.AllocsPerRun(100, func() {
		// Rejection path: ts ties the cached max, key sorts after it.
		for _, a := range probe {
			s.put(a, 7, 3)
		}
		// Recompute path: full scan with a tie comparison per key.
		s.maxValid = false
		s.recomputeMax()
	})
	if allocs != 0 {
		t.Fatalf("min-K tiebreak allocates %.1f objects/run, want 0 (typed comparison regressed?)", allocs)
	}
	for i := 1; i <= 3; i++ {
		if _, ok := s.get(addr(i)); !ok {
			t.Fatalf("retained set lost %v", addr(i))
		}
	}
}
