package traffic

import (
	"bytes"
	"testing"

	"semnids/internal/netpkt"
	"semnids/internal/reasm"
)

func TestTCPSessionWellFormed(t *testing.T) {
	g := NewGen(1)
	client := g.RandClient()
	req := []byte("GET / HTTP/1.0\r\n\r\n")
	resp := []byte("HTTP/1.0 200 OK\r\n\r\nhello")
	pkts := g.TCPSession(client, WebServer, 80, req, resp)

	// SYN, SYN-ACK first; FINs at the end.
	if pkts[0].Flags&netpkt.FlagSYN == 0 || pkts[1].Flags&(netpkt.FlagSYN|netpkt.FlagACK) != netpkt.FlagSYN|netpkt.FlagACK {
		t.Error("handshake malformed")
	}
	if pkts[len(pkts)-1].Flags&netpkt.FlagFIN == 0 {
		t.Error("no FIN at end")
	}
	// Timestamps non-decreasing.
	for i := 1; i < len(pkts); i++ {
		if pkts[i].TimestampUS < pkts[i-1].TimestampUS {
			t.Fatal("timestamps not monotonic")
		}
	}
	// The client side reassembles to the request.
	a := reasm.New()
	var last *reasm.Stream
	for _, p := range pkts {
		if p.SrcIP == client {
			if s := a.Feed(p); s != nil {
				last = s
			}
		}
	}
	if last == nil || !bytes.Equal(last.Data, req) {
		t.Fatalf("client stream = %q", last.Data)
	}
}

func TestSessionSegmentsLargePayloads(t *testing.T) {
	g := NewGen(2)
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i)
	}
	pkts := g.TCPSession(g.RandClient(), WebServer, 80, big, nil)
	dataPkts := 0
	for _, p := range pkts {
		if len(p.Payload) > 0 {
			dataPkts++
			if len(p.Payload) > 1400 {
				t.Errorf("segment exceeds MSS: %d", len(p.Payload))
			}
		}
	}
	if dataPkts < 4 {
		t.Errorf("large payload in %d segments", dataPkts)
	}
}

func TestBenignSessionsParse(t *testing.T) {
	g := NewGen(3)
	for i := 0; i < 100; i++ {
		for _, p := range g.BenignSession() {
			frame := p.Serialize()
			if err := netpkt.VerifyChecksums(frame); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if _, err := netpkt.Parse(frame); err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
	}
}

func TestScanThenExploitTouchesDarkSpace(t *testing.T) {
	g := NewGen(4)
	attacker := g.RandClient()
	pkts := g.ScanThenExploit(attacker, WebServer, 80, []byte("EXPLOIT"), 5)
	dark := 0
	for _, p := range pkts {
		if DarkNet.Contains(p.DstIP) {
			dark++
		}
	}
	if dark != 5 {
		t.Errorf("%d dark-space probes, want 5", dark)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := TraceSpec{Seed: 5, BenignSessions: 30, CodeRedInstances: 2}
	a := Synthesize(spec)
	b := Synthesize(spec)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Payload, b[i].Payload) || a[i].SrcIP != b[i].SrcIP {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestSynthesizeGroundTruth(t *testing.T) {
	spec := TraceSpec{Seed: 6, BenignSessions: 50, CodeRedInstances: 3,
		ExploitPayloads: [][]byte{[]byte("FAKE-EXPLOIT-1")}}
	pkts := Synthesize(spec)
	criiSources := make(map[string]bool)
	extraSources := make(map[string]bool)
	for _, p := range pkts {
		if bytes.Contains(p.Payload, []byte("/default.ida?")) {
			criiSources[p.SrcIP.String()] = true
		}
		if bytes.Contains(p.Payload, []byte("FAKE-EXPLOIT-1")) {
			extraSources[p.SrcIP.String()] = true
		}
	}
	if len(criiSources) != 3 {
		t.Errorf("%d Code Red sources, want 3", len(criiSources))
	}
	if len(extraSources) != 1 {
		t.Errorf("%d extra exploit sources, want 1", len(extraSources))
	}
}

func TestStreamMatchesSynthesize(t *testing.T) {
	spec := TraceSpec{Seed: 7, BenignSessions: 20, CodeRedInstances: 1}
	want := Synthesize(spec)
	i := 0
	err := Stream(spec, func(p *netpkt.Packet) error {
		if i >= len(want) || p.TimestampUS != want[i].TimestampUS {
			t.Fatalf("packet %d diverges", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(want) {
		t.Fatalf("streamed %d packets, want %d (err %v)", i, len(want), err)
	}
}

func TestWritePcapCount(t *testing.T) {
	var buf bytes.Buffer
	spec := TraceSpec{Seed: 8, BenignSessions: 10}
	count, err := WritePcap(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := netpkt.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != count {
		t.Errorf("pcap has %d packets, writer reported %d", len(pkts), count)
	}
}
