package traffic

import (
	"fmt"
	"net/netip"

	"semnids/internal/exploits"
	"semnids/internal/netpkt"
)

// IoT workload: constrained devices speaking CoAP (RFC 7252) over UDP
// to a gateway, and a botnet propagating through them. The benign side
// is sensor chatter — small readings POSTed to the gateway, resource
// discovery GETs — and the malicious side is the worm kill chain
// translated to datagrams: infected devices probe dark space with CoAP
// discovery requests, then deliver a packed exploit body to fresh
// victims as an RFC 7959 Block1 firmware-update transfer, 16 bytes per
// datagram, so no single packet carries an analyzable slice.

// IoTGateway is the CoAP gateway collecting sensor readings (inside
// the protected server network).
var IoTGateway = netip.MustParseAddr("192.168.1.150")

// CoAPPort is the default CoAP UDP port.
const CoAPPort = 5683

// CoAP protocol constants used by the generator (kept independent of
// the extractor's parser so that generator and parser validate each
// other in tests).
const (
	coapCON = 0 // confirmable
	coapACK = 2 // acknowledgement

	coapGET  = 0x01
	coapPOST = 0x02
	coapPUT  = 0x03

	coapChanged  = 0x44 // 2.04
	coapContent  = 0x45 // 2.05
	coapContinue = 0x5f // 2.31

	coapOptUriPath       = 11
	coapOptContentFormat = 12
	coapOptBlock2        = 23
	coapOptBlock1        = 27
)

// coapOpt is one option for the encoder; options must be appended in
// ascending number order.
type coapOpt struct {
	num int
	val []byte
}

// coapNib splits an option delta or length into its header nibble and
// extension bytes (RFC 7252 §3.1).
func coapNib(v int) (nib byte, ext []byte) {
	switch {
	case v < 13:
		return byte(v), nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		return 14, []byte{byte((v - 269) >> 8), byte(v - 269)}
	}
}

// coapEncode renders one CoAP message.
func coapEncode(typ, code byte, msgID uint16, token []byte, opts []coapOpt, payload []byte) []byte {
	msg := []byte{0x40 | typ<<4 | byte(len(token)), code, byte(msgID >> 8), byte(msgID)}
	msg = append(msg, token...)
	prev := 0
	for _, o := range opts {
		dn, de := coapNib(o.num - prev)
		ln, le := coapNib(len(o.val))
		msg = append(msg, dn<<4|ln)
		msg = append(msg, de...)
		msg = append(msg, le...)
		msg = append(msg, o.val...)
		prev = o.num
	}
	if len(payload) > 0 {
		msg = append(msg, 0xff)
		msg = append(msg, payload...)
	}
	return msg
}

// coapUintBytes renders a block option value in its minimal big-endian
// form (zero-length for 0, per RFC 7252 uint options).
func coapUintBytes(v uint32) []byte {
	var out []byte
	for v > 0 {
		out = append([]byte{byte(v)}, out...)
		v >>= 8
	}
	return out
}

// coapToken draws a fresh 4-byte token.
func (g *Gen) coapToken() []byte {
	t := make([]byte, 4)
	for i := range t {
		t[i] = byte(g.rng.Intn(256))
	}
	return t
}

// CoAPSensorReading is one benign exchange: a device POSTs a small
// text reading to the gateway, which acknowledges with 2.04 Changed.
func (g *Gen) CoAPSensorReading(device netip.Addr) []*netpkt.Packet {
	sport := uint16(g.rng.Intn(28000) + 1025)
	mid := uint16(g.rng.Intn(1 << 16))
	tok := g.coapToken()
	reading := fmt.Sprintf("t=%d.%d;h=%d", 15+g.rng.Intn(15), g.rng.Intn(10), 30+g.rng.Intn(40))
	req := coapEncode(coapCON, coapPOST, mid, tok, []coapOpt{
		{coapOptUriPath, []byte("sensors")},
		{coapOptUriPath, []byte("temp")},
		{coapOptContentFormat, nil}, // text/plain (0)
	}, []byte(reading))
	out := []*netpkt.Packet{g.udp(device, IoTGateway, sport, CoAPPort, req)}
	g.Advance(400)
	ack := coapEncode(coapACK, coapChanged, mid, tok, nil, nil)
	out = append(out, g.udp(IoTGateway, device, CoAPPort, sport, ack))
	g.Advance(300)
	return out
}

// CoAPDiscovery is one benign resource-discovery exchange: GET
// /.well-known/core answered with a link-format listing.
func (g *Gen) CoAPDiscovery(device netip.Addr) []*netpkt.Packet {
	sport := uint16(g.rng.Intn(28000) + 1025)
	mid := uint16(g.rng.Intn(1 << 16))
	tok := g.coapToken()
	req := coapEncode(coapCON, coapGET, mid, tok, []coapOpt{
		{coapOptUriPath, []byte(".well-known")},
		{coapOptUriPath, []byte("core")},
	}, nil)
	out := []*netpkt.Packet{g.udp(device, IoTGateway, sport, CoAPPort, req)}
	g.Advance(500)
	links := `</sensors/temp>;rt="temperature";ct=0,</sensors/hum>;rt="humidity";ct=0,</firmware>;rt="fw"`
	resp := coapEncode(coapACK, coapContent, mid, tok, []coapOpt{
		{coapOptContentFormat, []byte{40}}, // application/link-format
	}, []byte(links))
	out = append(out, g.udp(IoTGateway, device, CoAPPort, sport, resp))
	g.Advance(300)
	return out
}

// CoAPScan probes `scans` distinct dark-space addresses with CoAP
// discovery requests — the datagram version of the worm's SYN sweep,
// tripping the dark-address-space classifier the same way.
func (g *Gen) CoAPScan(attacker netip.Addr, scans int) []*netpkt.Packet {
	var out []*netpkt.Packet
	base := DarkNet.Addr().As4()
	for i := 0; i < scans; i++ {
		dst := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(10 + i)})
		req := coapEncode(coapCON, coapGET, uint16(g.rng.Intn(1<<16)), g.coapToken(), []coapOpt{
			{coapOptUriPath, []byte(".well-known")},
			{coapOptUriPath, []byte("core")},
		}, nil)
		out = append(out, g.udp(attacker, dst, uint16(41000+i), CoAPPort, req))
		g.Advance(2000)
	}
	return out
}

// CoAPBlockPut delivers body to the target as a Block1 PUT transfer in
// 16-byte blocks (SZX=0), the target acknowledging each block with
// 2.31 Continue and the last with 2.04 Changed. One exchange uses one
// token and one source port, so the whole transfer is one conversation.
func (g *Gen) CoAPBlockPut(src, dst netip.Addr, path string, body []byte) []*netpkt.Packet {
	const bs = 16
	sport := uint16(g.rng.Intn(28000) + 1025)
	mid := uint16(g.rng.Intn(1 << 16))
	tok := g.coapToken()
	var out []*netpkt.Packet
	n := (len(body) + bs - 1) / bs
	for i := 0; i < n; i++ {
		end := (i + 1) * bs
		if end > len(body) {
			end = len(body)
		}
		more := uint32(0)
		if i < n-1 {
			more = 1
		}
		blk := uint32(i)<<4 | more<<3 // SZX=0: 16-byte blocks
		req := coapEncode(coapCON, coapPUT, mid, tok, []coapOpt{
			{coapOptUriPath, []byte(path)},
			{coapOptBlock1, coapUintBytes(blk)},
		}, body[i*bs:end])
		out = append(out, g.udp(src, dst, sport, CoAPPort, req))
		g.Advance(500)
		code := byte(coapContinue)
		if more == 0 {
			code = coapChanged
		}
		ack := coapEncode(coapACK, code, mid, tok, []coapOpt{
			{coapOptBlock1, coapUintBytes(blk)},
		}, nil)
		out = append(out, g.udp(dst, src, CoAPPort, sport, ack))
		g.Advance(400)
		mid++
	}
	return out
}

// IoTSpec describes a propagating IoT botnet with known ground truth,
// the datagram mirror of WormSpec: patient zero probes dark space with
// CoAP discovery and sprays the exploit body at its victims as Block1
// firmware transfers; each infected device then scans and re-delivers
// the same bytes. Benign sensor chatter (readings and discovery from
// uninvolved devices) interleaves throughout.
type IoTSpec struct {
	Seed int64

	// Payload is the packed body every infection delivers (default:
	// exploits.CoAPFirmware, the block-split decryption-loop body).
	Payload []byte

	// Generations is the propagation depth (default 2).
	Generations int

	// FanoutPerHost is how many victims each infected device attacks
	// (default 2).
	FanoutPerHost int

	// ScansPerHost is the dark-space probe count preceding each
	// device's first delivery (default 4).
	ScansPerHost int

	// BenignSessions interleaves sensor-chatter exchanges before each
	// infection (default 2; negative for none).
	BenignSessions int
}

// IoTBotnet renders the outbreak as an ordered packet slice.
func IoTBotnet(spec IoTSpec) []*netpkt.Packet {
	if spec.Payload == nil {
		spec.Payload = exploits.CoAPFirmware()
	}
	if spec.Generations <= 0 {
		spec.Generations = 2
	}
	if spec.FanoutPerHost <= 0 {
		spec.FanoutPerHost = 2
	}
	if spec.ScansPerHost <= 0 {
		spec.ScansPerHost = 4
	}
	if spec.BenignSessions < 0 {
		spec.BenignSessions = 0
	} else if spec.BenignSessions == 0 {
		spec.BenignSessions = 2
	}

	g := NewGen(spec.Seed)
	var out []*netpkt.Packet

	// Victim devices live in a subnet disjoint from benign sensors,
	// clients and servers, for unambiguous attribution in tests.
	nextVictim := 0
	victim := func() netip.Addr {
		nextVictim++
		return netip.AddrFrom4([4]byte{172, 17, byte(nextVictim >> 8), byte(nextVictim)})
	}
	// Benign sensors report from their own pool.
	sensor := func() netip.Addr {
		return netip.AddrFrom4([4]byte{172, 18, byte(g.rng.Intn(4)), byte(g.rng.Intn(250) + 1)})
	}

	infected := []netip.Addr{g.RandClient()} // patient zero
	for gen := 0; gen < spec.Generations; gen++ {
		var nextGen []netip.Addr
		for _, host := range infected {
			for v := 0; v < spec.FanoutPerHost; v++ {
				for b := 0; b < spec.BenignSessions; b++ {
					if g.rng.Intn(3) == 0 {
						out = append(out, g.CoAPDiscovery(sensor())...)
					} else {
						out = append(out, g.CoAPSensorReading(sensor())...)
					}
					g.Advance(2000)
				}
				target := victim()
				out = append(out, g.CoAPScan(host, spec.ScansPerHost)...)
				g.Advance(3000)
				out = append(out, g.CoAPBlockPut(host, target, "firmware", spec.Payload)...)
				g.Advance(3000)
				nextGen = append(nextGen, target)
			}
		}
		infected = nextGen
	}
	return out
}
