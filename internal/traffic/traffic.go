// Package traffic synthesizes network traffic with known ground truth:
// benign HTTP/DNS/SMTP sessions standing in for the paper's production
// traces, worm traffic mixing Code Red II exploitation vectors into
// background noise (Table 3), scanning attackers that trip the
// dark-address-space classifier, and exploit deliveries at honeypots
// (Table 1 / Table 2 workloads).
package traffic

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	"semnids/internal/netpkt"
)

// Network layout shared by generators and the NIDS configuration in
// tests and benchmarks.
var (
	// ServerNet hosts the protected web/mail servers.
	ServerNet = netip.MustParsePrefix("192.168.1.0/24")
	// DarkNet is the un-used address space registered with the NIDS.
	DarkNet = netip.MustParsePrefix("192.168.2.0/24")
	// HoneypotAddr is the decoy host registered with the NIDS.
	HoneypotAddr = netip.MustParseAddr("192.168.1.250")
	// WebServer is the main production web server.
	WebServer = netip.MustParseAddr("192.168.1.10")
	// MailServer handles SMTP.
	MailServer = netip.MustParseAddr("192.168.1.25")
	// DNSServer answers queries.
	DNSServer = netip.MustParseAddr("192.168.1.53")
)

// Gen is a deterministic traffic generator.
type Gen struct {
	rng  *rand.Rand
	now  uint64 // trace clock, microseconds
	ipid uint16
}

// NewGen returns a generator seeded for reproducibility.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the generator's current trace clock.
func (g *Gen) Now() uint64 { return g.now }

// Advance moves the trace clock forward by up to maxUS microseconds.
func (g *Gen) Advance(maxUS uint64) {
	if maxUS == 0 {
		return
	}
	g.now += uint64(g.rng.Int63n(int64(maxUS))) + 1
}

// RandClient picks a random external client address.
func (g *Gen) RandClient() netip.Addr {
	return netip.AddrFrom4([4]byte{
		10, byte(g.rng.Intn(250) + 1), byte(g.rng.Intn(250) + 1), byte(g.rng.Intn(250) + 1)})
}

// tcp builds one TCP packet, stamping clock and IP id.
func (g *Gen) tcp(src, dst netip.Addr, sport, dport uint16, seq uint32, flags uint8, payload []byte) *netpkt.Packet {
	g.ipid++
	return &netpkt.Packet{
		SrcIP: src, DstIP: dst, Proto: netpkt.ProtoTCP, HasTCP: true,
		SrcPort: sport, DstPort: dport, Seq: seq, Flags: flags,
		Payload: payload, TimestampUS: g.now, IPID: g.ipid, TTL: 64,
	}
}

// udp builds one UDP packet.
func (g *Gen) udp(src, dst netip.Addr, sport, dport uint16, payload []byte) *netpkt.Packet {
	g.ipid++
	return &netpkt.Packet{
		SrcIP: src, DstIP: dst, Proto: netpkt.ProtoUDP, HasUDP: true,
		SrcPort: sport, DstPort: dport,
		Payload: payload, TimestampUS: g.now, IPID: g.ipid, TTL: 64,
	}
}

// TCPSession renders a complete client->server TCP exchange: SYN,
// client data segments (split at MSS boundaries), server response
// segments, FIN. Both directions are returned in order.
func (g *Gen) TCPSession(client, server netip.Addr, dport uint16, request, response []byte) []*netpkt.Packet {
	const mss = 1400
	sport := uint16(g.rng.Intn(28000) + 1025)
	var out []*netpkt.Packet
	cseq := g.rng.Uint32()
	sseq := g.rng.Uint32()

	out = append(out, g.tcp(client, server, sport, dport, cseq, netpkt.FlagSYN, nil))
	g.Advance(200)
	out = append(out, g.tcp(server, client, dport, sport, sseq, netpkt.FlagSYN|netpkt.FlagACK, nil))
	g.Advance(200)

	seq := cseq + 1
	for off := 0; off < len(request); off += mss {
		end := off + mss
		if end > len(request) {
			end = len(request)
		}
		out = append(out, g.tcp(client, server, sport, dport, seq, netpkt.FlagACK|netpkt.FlagPSH, request[off:end]))
		seq += uint32(end - off)
		g.Advance(300)
	}

	sq := sseq + 1
	for off := 0; off < len(response); off += mss {
		end := off + mss
		if end > len(response) {
			end = len(response)
		}
		out = append(out, g.tcp(server, client, dport, sport, sq, netpkt.FlagACK|netpkt.FlagPSH, response[off:end]))
		sq += uint32(end - off)
		g.Advance(300)
	}

	out = append(out, g.tcp(client, server, sport, dport, seq, netpkt.FlagFIN|netpkt.FlagACK, nil))
	g.Advance(100)
	out = append(out, g.tcp(server, client, dport, sport, sq, netpkt.FlagFIN|netpkt.FlagACK, nil))
	g.Advance(500)
	return out
}

var benignPaths = []string{
	"/", "/index.html", "/news/today.html", "/images/logo.png",
	"/styles/site.css", "/scripts/app.js", "/about/", "/contact.html",
	"/search?q=weather+forecast", "/blog/2006/06/entry.html",
	"/downloads/readme.txt", "/cgi-bin/counter.cgi?page=main",
}

var benignAgents = []string{
	"Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.8)",
	"Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
	"Opera/8.54 (Windows NT 5.1; U; en)",
	"Wget/1.10.2",
}

var loremWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"network", "intrusion", "detection", "report", "weather", "today",
	"service", "message", "system", "update", "release", "notes",
	"conference", "schedule", "student", "library", "research", "paper",
}

// text produces n words of filler prose.
func (g *Gen) text(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, loremWords[g.rng.Intn(len(loremWords))]...)
		if g.rng.Intn(9) == 0 {
			out = append(out, '.')
		}
	}
	return out
}

// htmlBody renders a small HTML page of filler prose.
func (g *Gen) htmlBody() []byte {
	body := []byte("<html><head><title>")
	body = append(body, g.text(4)...)
	body = append(body, []byte("</title></head><body><p>")...)
	body = append(body, g.text(60+g.rng.Intn(300))...)
	body = append(body, []byte("</p></body></html>")...)
	return body
}

// imageBody renders structured binary resembling a JPEG: markers and
// entropy-coded data. It exercises the binary-extraction path with
// benign content.
func (g *Gen) imageBody() []byte {
	out := []byte{0xff, 0xd8, 0xff, 0xe0, 0x00, 0x10, 'J', 'F', 'I', 'F', 0}
	n := 512 + g.rng.Intn(2048)
	for i := 0; i < n; i++ {
		out = append(out, byte(g.rng.Intn(256)))
	}
	return append(out, 0xff, 0xd9)
}

// HTTPSession produces one benign web fetch.
func (g *Gen) HTTPSession(client netip.Addr) []*netpkt.Packet {
	path := benignPaths[g.rng.Intn(len(benignPaths))]
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: www.example.com\r\nUser-Agent: %s\r\nAccept: */*\r\n\r\n",
		path, benignAgents[g.rng.Intn(len(benignAgents))])
	var body []byte
	ctype := "text/html"
	if g.rng.Intn(5) == 0 {
		body = g.imageBody()
		ctype = "image/jpeg"
	} else {
		body = g.htmlBody()
	}
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nServer: Apache/1.3.33\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		ctype, len(body))
	return g.TCPSession(client, WebServer, 80, []byte(req), append([]byte(resp), body...))
}

// DNSQuery produces a benign UDP DNS lookup and reply.
func (g *Gen) DNSQuery(client netip.Addr) []*netpkt.Packet {
	name := fmt.Sprintf("host%d.example.com", g.rng.Intn(1000))
	q := make([]byte, 12)
	q[0], q[1] = byte(g.rng.Intn(256)), byte(g.rng.Intn(256))
	q[2] = 0x01 // recursion desired
	q[5] = 1    // one question
	for _, label := range splitLabels(name) {
		q = append(q, byte(len(label)))
		q = append(q, label...)
	}
	q = append(q, 0, 0, 1, 0, 1) // A IN
	sport := uint16(g.rng.Intn(28000) + 1025)
	query := g.udp(client, DNSServer, sport, 53, q)
	g.Advance(300)
	resp := append(append([]byte{}, q...), 0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 1, 0x2c, 0, 4,
		93, 184, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)))
	resp[2] |= 0x80 // response bit
	reply := g.udp(DNSServer, client, 53, sport, resp)
	g.Advance(200)
	return []*netpkt.Packet{query, reply}
}

func splitLabels(name string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			if i > start {
				out = append(out, name[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// SMTPSession produces a benign mail delivery.
func (g *Gen) SMTPSession(client netip.Addr) []*netpkt.Packet {
	msg := fmt.Sprintf("EHLO client.example.org\r\nMAIL FROM:<user%d@example.org>\r\n"+
		"RCPT TO:<staff@example.com>\r\nDATA\r\nSubject: %s\r\n\r\n%s\r\n.\r\nQUIT\r\n",
		g.rng.Intn(100), g.text(4), g.text(80))
	resp := "220 mail.example.com ESMTP\r\n250 OK\r\n250 OK\r\n250 OK\r\n354 go\r\n250 queued\r\n221 bye\r\n"
	return g.TCPSession(client, MailServer, 25, []byte(msg), []byte(resp))
}

// InfectedMailSession delivers a mass-mailer-style message: a MIME
// multipart mail whose base64 attachment is the given executable
// content (e.g. a Netsky-like binary carrying a decryption loop).
func (g *Gen) InfectedMailSession(client netip.Addr, attachment []byte) []*netpkt.Packet {
	enc := base64.StdEncoding.EncodeToString(attachment)
	var body strings.Builder
	body.WriteString("EHLO victim-host\r\nMAIL FROM:<user@infected.example>\r\n" +
		"RCPT TO:<target@example.com>\r\nDATA\r\n" +
		"Subject: " + string(g.text(3)) + "\r\n" +
		"MIME-Version: 1.0\r\n" +
		"Content-Type: multipart/mixed; boundary=\"----=_part\"\r\n\r\n" +
		"------=_part\r\nContent-Type: text/plain\r\n\r\n" +
		string(g.text(15)) + "\r\n" +
		"------=_part\r\n" +
		"Content-Type: application/octet-stream; name=\"document.exe\"\r\n" +
		"Content-Transfer-Encoding: base64\r\n" +
		"Content-Disposition: attachment; filename=\"document.exe\"\r\n\r\n")
	for off := 0; off < len(enc); off += 76 {
		end := off + 76
		if end > len(enc) {
			end = len(enc)
		}
		body.WriteString(enc[off:end])
		body.WriteString("\r\n")
	}
	body.WriteString("------=_part--\r\n.\r\nQUIT\r\n")
	resp := "220 mail.example.com ESMTP\r\n250 OK\r\n250 OK\r\n250 OK\r\n354 go\r\n250 queued\r\n221 bye\r\n"
	return g.TCPSession(client, MailServer, 25, []byte(body.String()), []byte(resp))
}

// FTPSession produces a benign FTP control dialogue.
func (g *Gen) FTPSession(client netip.Addr) []*netpkt.Packet {
	cmds := fmt.Sprintf("USER anonymous\r\nPASS guest%d@example.org\r\n"+
		"CWD /pub/mirrors\r\nLIST\r\nRETR file%d.tar.gz\r\nQUIT\r\n",
		g.rng.Intn(1000), g.rng.Intn(100))
	resp := "220 ftp.example.com ready\r\n331 password please\r\n230 logged in\r\n" +
		"250 CWD ok\r\n150 opening\r\n226 done\r\n221 bye\r\n"
	return g.TCPSession(client, WebServer, 21, []byte(cmds), []byte(resp))
}

// POP3Session produces a benign mailbox check.
func (g *Gen) POP3Session(client netip.Addr) []*netpkt.Packet {
	cmds := fmt.Sprintf("APOP user%d %032x\r\nUIDL\r\nRETR 1\r\nQUIT\r\n",
		g.rng.Intn(100), g.rng.Uint64())
	resp := "+OK POP3 ready\r\n+OK\r\n+OK 1 messages\r\n+OK message follows\r\n" +
		string(g.text(60)) + "\r\n.\r\n+OK bye\r\n"
	return g.TCPSession(client, MailServer, 110, []byte(cmds), []byte(resp))
}

// BenignSession emits one random benign session of any protocol.
func (g *Gen) BenignSession() []*netpkt.Packet {
	client := g.RandClient()
	switch g.rng.Intn(12) {
	case 0, 1:
		return g.DNSQuery(client)
	case 2:
		return g.SMTPSession(client)
	case 3:
		return g.FTPSession(client)
	case 4:
		return g.POP3Session(client)
	default:
		return g.HTTPSession(client)
	}
}

// ScanThenExploit models an attacking host: it probes `scans` distinct
// dark-space addresses (tripping the classifier), then delivers the
// exploit payload to the target.
func (g *Gen) ScanThenExploit(attacker, target netip.Addr, dport uint16, payload []byte, scans int) []*netpkt.Packet {
	var out []*netpkt.Packet
	base := DarkNet.Addr().As4()
	for i := 0; i < scans; i++ {
		dst := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(10 + i)})
		out = append(out, g.tcp(attacker, dst, uint16(40000+i), dport, g.rng.Uint32(), netpkt.FlagSYN, nil))
		g.Advance(2000)
	}
	out = append(out, g.TCPSession(attacker, target, dport, payload, []byte("HTTP/1.0 200 OK\r\n\r\n"))...)
	return out
}

// ExploitAtHoneypot delivers an exploit to the registered decoy (the
// paper's Table 1 experiment setup).
func (g *Gen) ExploitAtHoneypot(attacker netip.Addr, dport uint16, payload []byte) []*netpkt.Packet {
	return g.TCPSession(attacker, HoneypotAddr, dport, payload, nil)
}
