package traffic

import (
	"net/netip"

	"semnids/internal/exploits"
	"semnids/internal/netpkt"
)

// WormSpec describes a propagating outbreak with known ground truth:
// patient zero scans dark space and exploits its victims; each
// infected victim then scans and re-delivers the *same* payload to
// fresh victims — the scan → exploit → propagation kill chain the
// incident correlator exists to surface. Ground truth: every host in
// a generation before the last reaches PROPAGATION (its victims
// re-emit the payload), the last generation of attackers stops at
// EXPLOIT, and benign background sessions correlate to nothing.
type WormSpec struct {
	Seed int64

	// Payload is the exploit request every infection delivers
	// (default: the Code Red II exploitation vector).
	Payload []byte

	// Generations is the propagation depth: 1 = patient zero only
	// (no host re-emits), 2 = patient zero's victims attack in turn
	// (default 2).
	Generations int

	// FanoutPerHost is how many victims each infected host attacks
	// (default 2).
	FanoutPerHost int

	// ScansPerHost is the dark-space probe count preceding each
	// host's first delivery (default 4; the classifier's default
	// threshold is 3).
	ScansPerHost int

	// BenignSessions interleaves background sessions before each
	// infection (default 2).
	BenignSessions int
}

// WormOutbreak renders the outbreak as an ordered packet slice.
func WormOutbreak(spec WormSpec) []*netpkt.Packet {
	if spec.Payload == nil {
		spec.Payload = exploits.CodeRedIIRequest()
	}
	if spec.Generations <= 0 {
		spec.Generations = 2
	}
	if spec.FanoutPerHost <= 0 {
		spec.FanoutPerHost = 2
	}
	if spec.ScansPerHost <= 0 {
		spec.ScansPerHost = 4
	}
	if spec.BenignSessions < 0 {
		spec.BenignSessions = 0
	} else if spec.BenignSessions == 0 {
		spec.BenignSessions = 2
	}

	g := NewGen(spec.Seed)
	var out []*netpkt.Packet

	// Victims are allocated from a subnet disjoint from the benign
	// clients and protected servers, so infection attribution in
	// tests is unambiguous.
	nextVictim := 0
	victim := func() netip.Addr {
		nextVictim++
		return netip.AddrFrom4([4]byte{172, 16, byte(nextVictim >> 8), byte(nextVictim)})
	}

	infected := []netip.Addr{g.RandClient()} // patient zero
	for gen := 0; gen < spec.Generations; gen++ {
		var nextGen []netip.Addr
		for _, host := range infected {
			for v := 0; v < spec.FanoutPerHost; v++ {
				for b := 0; b < spec.BenignSessions; b++ {
					out = append(out, g.BenignSession()...)
					g.Advance(2000)
				}
				target := victim()
				out = append(out, g.ScanThenExploit(host, target, 80, spec.Payload, spec.ScansPerHost)...)
				g.Advance(3000)
				nextGen = append(nextGen, target)
			}
		}
		infected = nextGen
	}
	return out
}
