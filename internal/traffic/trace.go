package traffic

import (
	"io"

	"semnids/internal/exploits"
	"semnids/internal/netpkt"
)

// TraceSpec describes a synthetic trace with known ground truth.
type TraceSpec struct {
	Seed int64

	// BenignSessions is the number of background sessions.
	BenignSessions int

	// CodeRedInstances is the number of Code Red II exploitation
	// vectors mixed in, each from a distinct scanning source
	// (Table 3 ground truth).
	CodeRedInstances int

	// ExploitPayloads are additional attack payloads, each delivered
	// by a distinct scanning source to the web server.
	ExploitPayloads [][]byte

	// InterSessionGapUS spaces sessions on the trace clock.
	InterSessionGapUS uint64
}

// Synthesize renders the trace as an ordered packet slice. Ground
// truth: the number of malicious sources equals CodeRedInstances +
// len(ExploitPayloads).
func Synthesize(spec TraceSpec) []*netpkt.Packet {
	var out []*netpkt.Packet
	err := Stream(spec, func(p *netpkt.Packet) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		// The only error source is the callback, which never fails here.
		panic(err)
	}
	return out
}

// Stream generates the trace packet-by-packet without materializing it
// (Table 3 traces exceed 200k packets). Sessions are interleaved: the
// malicious sessions are spread evenly through the benign background.
func Stream(spec TraceSpec, emit func(*netpkt.Packet) error) error {
	g := NewGen(spec.Seed)
	if spec.InterSessionGapUS == 0 {
		spec.InterSessionGapUS = 3000
	}

	// Build the schedule: which benign session indices are followed by
	// a malicious session.
	nMal := spec.CodeRedInstances + len(spec.ExploitPayloads)
	malAt := make(map[int]int) // benign index -> malicious index
	if nMal > 0 {
		stride := spec.BenignSessions / (nMal + 1)
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < nMal; i++ {
			malAt[(i+1)*stride] = i
		}
	}

	crii := exploits.CodeRedIIRequest()
	emitAll := func(pkts []*netpkt.Packet) error {
		for _, p := range pkts {
			if err := emit(p); err != nil {
				return err
			}
		}
		return nil
	}

	for i := 0; i <= spec.BenignSessions; i++ {
		if i < spec.BenignSessions {
			if err := emitAll(g.BenignSession()); err != nil {
				return err
			}
			g.Advance(spec.InterSessionGapUS)
		}
		if mi, ok := malAt[i]; ok {
			attacker := g.RandClient()
			var payload []byte
			if mi < spec.CodeRedInstances {
				payload = crii
			} else {
				payload = spec.ExploitPayloads[mi-spec.CodeRedInstances]
			}
			// Code Red II propagates by scanning; model the scan that
			// precedes infection so the classifier engages.
			if err := emitAll(g.ScanThenExploit(attacker, WebServer, 80, payload, 4)); err != nil {
				return err
			}
			g.Advance(spec.InterSessionGapUS)
		}
	}
	return nil
}

// WritePcap streams a synthetic trace into pcap format.
func WritePcap(w io.Writer, spec TraceSpec) (int, error) {
	pw, err := netpkt.NewPcapWriter(w)
	if err != nil {
		return 0, err
	}
	err = Stream(spec, pw.WritePacket)
	return pw.Count(), err
}
