package traffic

import (
	"fmt"
	"net/netip"

	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/polymorph"
	"semnids/internal/shellcode"
)

// PolymorphSpec describes a polymorphic outbreak: the same infection
// tree shape as WormSpec, but every delivery re-encodes the worm's
// cleartext through a polymorphic engine with a fresh per-hop seed, so
// no two wire payloads share bytes. Exact fingerprints therefore never
// repeat across hops — the adversarial workload that defeats exact-FP
// propagation evidence and that structural lineage fingerprints exist
// to survive (the decoded tail is invariant: every variant must
// reproduce the same cleartext to run).
type PolymorphSpec struct {
	Seed int64

	// Cleartext is the worm body every hop delivers (default: the
	// classic push /bin/sh shellcode). Each hop packs a freshly
	// encoded variant into the traditional overflow layout.
	Cleartext []byte

	// Generations, FanoutPerHost, ScansPerHost and BenignSessions
	// mirror WormSpec (same defaults).
	Generations    int
	FanoutPerHost  int
	ScansPerHost   int
	BenignSessions int
}

// PolymorphOutbreak renders the outbreak as an ordered packet slice.
// Hops alternate between the CLET- and ADMmutate-style engines so the
// trace mixes decoder families the way a real mutated outbreak would;
// each hop's engine is seeded from spec.Seed and the hop index, so the
// trace is reproducible. Encoding failures panic: they indicate a
// cleartext the engines cannot carry, a generator bug, not a runtime
// condition.
func PolymorphOutbreak(spec PolymorphSpec) []*netpkt.Packet {
	if spec.Cleartext == nil {
		spec.Cleartext = shellcode.ClassicPush().Bytes
	}
	if spec.Generations <= 0 {
		spec.Generations = 2
	}
	if spec.FanoutPerHost <= 0 {
		spec.FanoutPerHost = 2
	}
	if spec.ScansPerHost <= 0 {
		spec.ScansPerHost = 4
	}
	if spec.BenignSessions < 0 {
		spec.BenignSessions = 0
	} else if spec.BenignSessions == 0 {
		spec.BenignSessions = 2
	}

	g := NewGen(spec.Seed)
	var out []*netpkt.Packet

	nextVictim := 0
	victim := func() netip.Addr {
		nextVictim++
		return netip.AddrFrom4([4]byte{172, 16, byte(nextVictim >> 8), byte(nextVictim)})
	}

	hop := 0
	mutate := func() []byte {
		hop++
		seed := spec.Seed*1000003 + int64(hop)
		var (
			enc []byte
			err error
		)
		if hop%2 == 0 {
			enc, _, err = polymorph.NewADMmutate(seed).Encode(spec.Cleartext)
		} else {
			enc, _, err = polymorph.NewClet(seed).Encode(spec.Cleartext)
		}
		if err != nil {
			panic(fmt.Sprintf("traffic: polymorph encode hop %d: %v", hop, err))
		}
		return exploits.PackOverflow(enc, exploits.OverflowOpts{})
	}

	infected := []netip.Addr{g.RandClient()} // patient zero
	for gen := 0; gen < spec.Generations; gen++ {
		var nextGen []netip.Addr
		for _, host := range infected {
			for v := 0; v < spec.FanoutPerHost; v++ {
				for b := 0; b < spec.BenignSessions; b++ {
					out = append(out, g.BenignSession()...)
					g.Advance(2000)
				}
				target := victim()
				out = append(out, g.ScanThenExploit(host, target, 80, mutate(), spec.ScansPerHost)...)
				g.Advance(3000)
				nextGen = append(nextGen, target)
			}
		}
		infected = nextGen
	}
	return out
}
