package engine

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/telemetry"
)

// TestEngineTelemetryAllocFree is the instrumentation half of the
// ingest allocation pin: with a registry attached the hot path must
// still allocate (essentially) nothing per packet — the histograms
// are fixed atomic arrays and the wall-clock reads are amortized one
// per batch — and the series the instrumentation feeds must actually
// be populated by the traffic.
func TestEngineTelemetryAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	pkts := ingestTrafficPackets(40)
	reg := telemetry.NewRegistry()
	e := New(Config{
		Classify:         classify.Config{Disabled: true},
		Shards:           1,
		VerdictCacheSize: -1,
		Telemetry:        reg,
	})
	defer e.Stop()

	run := func() {
		for _, p := range pkts {
			e.Process(p)
		}
		e.Drain()
	}
	for i := 0; i < 3; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	perPacket := allocs / float64(len(pkts))
	// Same budget as TestEngineIngestAllocs: telemetry must not move
	// the needle — a per-packet time.Now, label format or box on the
	// record path shows up as 1.0+/packet.
	if perPacket > 0.5 {
		t.Errorf("instrumented ingest allocates %.2f objects/packet (%.0f/run), budget 0.5",
			perPacket, allocs)
	}

	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, series := range []string{
		"semnids_engine_packets_total",
		"semnids_engine_shard_queue_depth{shard=\"0\"}",
		"semnids_engine_ingest_latency_ns_count",
		"semnids_analyzer_frame_ns_count",
	} {
		if !strings.Contains(expo, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	// The latency histograms must have observed real work, not just
	// registered empty.
	snap := e.Snapshot()
	if snap.Packets == 0 {
		t.Fatal("no packets processed")
	}
	if !strings.Contains(expo, "semnids_engine_packets_total "+strconv.FormatUint(snap.Packets, 10)) {
		t.Errorf("packets_total not reflecting engine counter %d:\n%s", snap.Packets, expo)
	}
}

// TestShardQueueGaugeExact pins the exact enqueue/dequeue accounting
// that replaced the old negative-clamp: the per-shard queue gauge is
// incremented for a whole batch before the channel send and
// decremented per packet as each completes, so a concurrent reader
// never observes a negative depth, and a drained engine always reads
// exactly zero.
func TestShardQueueGaugeExact(t *testing.T) {
	pkts := ingestTrafficPackets(60)
	e := New(Config{
		Classify:         classify.Config{Disabled: true},
		Shards:           2,
		VerdictCacheSize: -1,
	})
	defer e.Stop()

	var negative atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sh := range e.Snapshot().Shards {
				if sh.QueueLen < 0 {
					negative.Add(1)
				}
			}
		}
	}()

	for round := 0; round < 5; round++ {
		for _, p := range pkts {
			e.Process(p)
		}
		e.Drain()
		for i, sh := range e.Snapshot().Shards {
			if sh.QueueLen != 0 {
				t.Fatalf("round %d: shard %d queue gauge = %d after Drain, want 0", round, i, sh.QueueLen)
			}
		}
	}
	close(stop)
	wg.Wait()
	if n := negative.Load(); n != 0 {
		t.Errorf("observed %d negative queue-depth samples during ingest", n)
	}
}

// TestMetricsScrapeDuringIngest hammers the exposition endpoints from
// a scraper goroutine while the engine ingests — the -race
// configuration proves the atomic counters, GaugeFunc closures and
// histogram snapshots are safe against concurrent shard writes, and
// that a scrape never blocks or corrupts ingest.
func TestMetricsScrapeDuringIngest(t *testing.T) {
	pkts := ingestTrafficPackets(40)
	reg := telemetry.NewRegistry()
	e := New(Config{
		Classify:  classify.Config{Disabled: true},
		Shards:    2,
		Telemetry: reg,
	})
	defer e.Stop()

	srv := httptest.NewServer(telemetry.NewMux(reg, telemetry.NewHealth(), nil))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/statusz", "/healthz"} {
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes++
			}
		}
	}()

	for round := 0; round < 10; round++ {
		for _, p := range pkts {
			e.Process(p)
		}
		e.Drain()
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("scraper never completed a request")
	}
	if m := e.Snapshot(); m.Packets != uint64(10*len(pkts)) {
		t.Errorf("ingest lost packets under scrape load: %d of %d", m.Packets, 10*len(pkts))
	}
}
