package engine

import (
	"time"

	"semnids/internal/classify"
	"semnids/internal/netpkt"
)

// batchEntry is one selected packet riding a dispatch batch.
type batchEntry struct {
	pkt    *netpkt.Packet
	reason classify.Reason
}

// pktBatch is one unit of shard dispatch: up to batchCap selected
// packets handed over in a single channel send. Batch buffers live in
// a fixed ring per shard (the free channel) and shuttle between feeder
// and shard, so steady-state dispatch performs no allocation — and,
// far more importantly, one channel handoff (with its potential
// futex wake) covers a whole batch instead of every packet.
type pktBatch struct {
	entries []batchEntry

	// created is stamped when the batch receives its first packet and
	// read by the shard after the last packet is analyzed — the
	// ingest→verdict latency series at one clock read per batch,
	// amortizing the wall-clock cost the hot path would otherwise pay
	// per packet.
	created time.Time
}

// Feeder is a per-goroutine ingestion handle. The engine's Process is
// a convenience wrapper over a default feeder; parallel capture loops
// create one Feeder each (NewFeeder) and feed packets through it from
// that goroutine only. Packets of one flow must go through one feeder
// (or the per-flow arrival order the shards rely on is lost).
//
// A feeder accumulates selected packets into per-shard batches and
// dispatches a batch when it fills, or when trace time advances a tick
// past the last flush (so a trickle of traffic cannot strand packets
// in a partial batch forever). Flush dispatches everything buffered;
// call it before Engine.Drain, and on every feeder before relying on
// cross-feeder completion.
type Feeder struct {
	e           *Engine
	pending     []*pktBatch // per shard; nil when empty
	maxTS       uint64
	lastFlushTS uint64
}

// NewFeeder returns an ingestion handle bound to the engine. Each
// feeder is single-goroutine; any number of feeders may run
// concurrently (the classification stage and all engine counters are
// concurrency-safe, and shard queues are multiple-producer).
func (e *Engine) NewFeeder() *Feeder {
	return &Feeder{e: e, pending: make([]*pktBatch, len(e.shards))}
}

// Process offers one parsed packet to the engine, which takes
// ownership of it (pooled packets are released once fully handled,
// whatever path they take). Packets offered after Stop are ignored.
func (f *Feeder) Process(p *netpkt.Packet) {
	e := f.e
	if e.stopped.Load() {
		p.Release()
		return
	}
	e.m.packets.Add(1)
	ok, reason := e.classifier.Classify(p)
	if !ok {
		p.Release()
		return
	}
	e.m.selected.Add(1)
	if p.TimestampUS > f.maxTS {
		f.maxTS = p.TimestampUS
	}

	// UDP dispatches on the conversation-canonical key so both
	// directions of one exchange land on the same shard — a datagram
	// flow's request and reply must share the shard's flow view. TCP
	// keeps directional dispatch (each direction is reassembled
	// independently). Shard assignment never affects report content,
	// so this holds with datagram flows off too.
	k := p.Flow()
	if p.HasUDP {
		k = k.Canonical()
	}
	si := shardIndex(k, len(e.shards))
	s := e.shards[si]
	b := f.pending[si]
	if b == nil {
		if b = s.getBatch(e.cfg.Overload); b == nil {
			// Shed policy with every batch buffer in flight: the shard
			// is saturated and its queue full.
			e.m.dropped.Add(1)
			p.Release()
			return
		}
		b.created = time.Now()
		f.pending[si] = b
	}
	b.entries = append(b.entries, batchEntry{pkt: p, reason: reason})
	if len(b.entries) >= s.batchCap {
		f.dispatch(si)
	}

	// Trace time advanced a tick since the last flush: hand over every
	// partial batch so analysis (and shard lifecycle ticks) keep up
	// with trace time even under a trickle of selected traffic.
	if f.maxTS-f.lastFlushTS >= e.cfg.TickIntervalUS {
		f.Flush()
	}
}

// dispatch sends shard si's pending batch. Under the shed policy a
// full queue drops the whole batch (counted per packet) rather than
// blocking the feeder. After Stop the batch is released instead of
// sent (the shard queues are closed), so a straggling feeder's Flush
// is safe rather than a panic.
func (f *Feeder) dispatch(si int) {
	b := f.pending[si]
	if b == nil {
		return
	}
	f.pending[si] = nil
	s := f.e.shards[si]
	if len(b.entries) == 0 {
		s.putBatch(b)
		return
	}
	if f.e.stopped.Load() {
		releaseBatch(b)
		s.putBatch(b)
		return
	}
	// Count the packets as queued before the send so the gauge never
	// misses in-queue work (the shard decrements after processing).
	s.queued.Add(int64(len(b.entries)))
	if f.e.cfg.Overload == PolicyShed {
		select {
		case s.in <- shardMsg{batch: b}:
		default:
			s.queued.Add(-int64(len(b.entries)))
			f.e.m.dropped.Add(uint64(len(b.entries)))
			releaseBatch(b)
			s.putBatch(b)
		}
		return
	}
	select {
	case s.in <- shardMsg{batch: b}:
		// Fast path: queue had room, no backpressure to record.
	default:
		t0 := time.Now()
		s.in <- shardMsg{batch: b}
		f.e.tel.dispatchWaitNS.Observe(time.Since(t0).Nanoseconds())
	}
}

// Flush dispatches every pending partial batch.
func (f *Feeder) Flush() {
	for si := range f.pending {
		f.dispatch(si)
	}
	f.lastFlushTS = f.maxTS
}

// releaseBatch releases every packet in a dropped batch and resets it.
func releaseBatch(b *pktBatch) {
	for i := range b.entries {
		b.entries[i].pkt.Release()
		b.entries[i] = batchEntry{}
	}
	b.entries = b.entries[:0]
}

// getBatch draws a batch buffer from the shard's ring. An exhausted
// ring means every buffer is queued, in processing, or pending on
// some feeder: under the block policy an overflow buffer is allocated
// (backpressure comes from the bounded queue send, and the ring
// simply declines to grow at putBatch). Under shed an empty ring
// alone is not overload — other feeders may simply be holding partial
// batches — so a buffer is still allocated while the queue has room,
// and only an empty ring WITH a full queue (genuine saturation) makes
// the caller drop. Memory stays bounded either way: allocation stops
// the moment the queue fills, and overload itself never allocates.
func (s *shard) getBatch(policy OverloadPolicy) *pktBatch {
	select {
	case b := <-s.free:
		return b
	default:
	}
	if policy == PolicyShed && len(s.in) >= cap(s.in) {
		return nil
	}
	return &pktBatch{entries: make([]batchEntry, 0, s.batchCap)}
}

// putBatch returns a processed (or dropped) batch buffer to the ring.
func (s *shard) putBatch(b *pktBatch) {
	select {
	case s.free <- b:
	default:
		// The ring is full (an overflow buffer): let it go.
	}
}
