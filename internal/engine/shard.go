package engine

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/extract"
	"semnids/internal/netpkt"
	"semnids/internal/reasm"
	"semnids/internal/sem"
)

// shardMsg is one unit of shard input: a batch of selected packets,
// or a control barrier.
type shardMsg struct {
	batch *pktBatch
	ctl   *ctl
}

// ctl is a drain barrier: each shard flushes its flow state and
// acknowledges. Because a shard consumes its queue in order, the
// acknowledgment also proves every packet queued before the barrier
// has been fully processed.
type ctl struct {
	wg *sync.WaitGroup
}

type flowInfo struct {
	reason classify.Reason
	ts     uint64
}

type alertKey struct {
	flow     netpkt.FlowKey
	template string
}

// shard owns one slice of the flow space. All fields below the queue
// are touched only from the shard goroutine, so no locking is needed
// on the per-flow hot path.
type shard struct {
	eng  *Engine
	id   int
	in   chan shardMsg
	done chan struct{}

	// batchCap is the dispatch granularity; free is the ring of batch
	// buffers shuttling between feeders and this shard. queued counts
	// the packets currently enqueued or being processed exactly:
	// incremented per batch before the send, decremented per packet as
	// each is analyzed, so readers see true occupancy (never negative,
	// never overstated by a whole in-progress batch).
	batchCap int
	free     chan *pktBatch
	queued   atomic.Int64

	asm          *reasm.Assembler
	lastAnalyzed map[netpkt.FlowKey]int
	meta         map[netpkt.FlowKey]flowInfo
	seen         map[alertKey]bool

	// dgramSeen deduplicates flow-open events for untracked datagram
	// traffic (DatagramFlows off): one event per conversation
	// direction per idle window, instead of one per datagram — a UDP
	// scan flood used to emit a flow-open for every probe into the
	// correlator's bounded channel. Maintained only when an event tap
	// is attached; swept by the lifecycle tick.
	dgramSeen map[netpkt.FlowKey]uint64

	maxTS    uint64 // highest trace timestamp seen by this shard
	lastTick uint64

	// tickPackets counts packets handled since the last tick, feeding
	// the EWMA throughput gauge.
	tickPackets uint64

	// Gauges published for Snapshot (read from other goroutines).
	flows      atomic.Int64
	bytes      atomic.Int64
	dgramFlows atomic.Int64
	dgramBytes atomic.Int64
	ewmaPPS    atomic.Uint64 // math.Float64bits of trace-time packets/sec
}

// maxDgramSeen caps the flow-open dedup map; past it the map resets
// (re-emission is harmless: the correlator deduplicates fan-out
// evidence by destination) rather than growing without bound.
const maxDgramSeen = 1 << 16

func newShard(e *Engine, id int) *shard {
	batchCap := e.cfg.BatchSize
	queueBatches := e.cfg.QueueDepth / batchCap
	if queueBatches < 1 {
		queueBatches = 1
	}
	s := &shard{
		eng:          e,
		id:           id,
		in:           make(chan shardMsg, queueBatches),
		done:         make(chan struct{}),
		batchCap:     batchCap,
		free:         make(chan *pktBatch, queueBatches+2),
		asm:          reasm.New(),
		lastAnalyzed: make(map[netpkt.FlowKey]int),
		meta:         make(map[netpkt.FlowKey]flowInfo),
		seen:         make(map[alertKey]bool),
		dgramSeen:    make(map[netpkt.FlowKey]uint64),
	}
	for i := 0; i < cap(s.free); i++ {
		s.free <- &pktBatch{entries: make([]batchEntry, 0, batchCap)}
	}
	// Evicted flows (idle, over-budget, or reassembler capacity) get
	// their unanalyzed tail analyzed and their side state released —
	// eviction bounds memory, it never silently discards evidence.
	// Analysis here is synchronous, so the stream buffer goes straight
	// back to the assembler's pool.
	s.asm.SetEvictHandler(func(st *reasm.Stream) {
		if len(st.Data) > s.lastAnalyzed[st.Key] {
			info := s.meta[st.Key]
			if st.Dgram {
				s.analyzeDgram(st, info.reason, info.ts)
			} else {
				s.analyze(st.Data, st.Key, info.reason, info.ts)
			}
		}
		delete(s.lastAnalyzed, st.Key)
		delete(s.meta, st.Key)
		if tap := e.cfg.OnEvent; tap != nil {
			tap(core.Event{
				Kind: core.EventFlowEvict, TimestampUS: s.maxTS,
				Src: st.Key.SrcIP, Dst: st.Key.DstIP,
				SrcPort: st.Key.SrcPort, DstPort: st.Key.DstPort,
			})
		}
		s.asm.Recycle(st.Data)
	})
	return s
}

func (s *shard) run() {
	defer close(s.done)
	for msg := range s.in {
		if msg.ctl != nil {
			s.flushFlows()
			msg.ctl.wg.Done()
		} else {
			for i := range msg.batch.entries {
				en := &msg.batch.entries[i]
				s.handle(en.pkt, en.reason)
				en.pkt.Release()
				*en = batchEntry{}
				// Decrement per packet, not per batch: the queue gauge
				// then counts exactly the packets not yet analyzed, even
				// mid-batch, and can never undershoot past zero.
				s.queued.Add(-1)
			}
			s.eng.tel.ingestNS.Observe(time.Since(msg.batch.created).Nanoseconds())
			msg.batch.entries = msg.batch.entries[:0]
			s.putBatch(msg.batch)
		}
		s.flows.Store(int64(s.asm.FlowCount()))
		s.bytes.Store(int64(s.asm.TotalBytes()))
		s.dgramFlows.Store(int64(s.asm.DgramFlowCount()))
		s.dgramBytes.Store(int64(s.asm.DgramBytes()))
	}
	// Queue closed (Stop): analyze what remains before exiting.
	s.flushFlows()
	s.flows.Store(0)
	s.bytes.Store(0)
	s.dgramFlows.Store(0)
	s.dgramBytes.Store(0)
}

// handle pushes one selected packet through reassembly and analysis —
// the same progression as core.ProcessPacket after classification.
func (s *shard) handle(p *netpkt.Packet, reason classify.Reason) {
	if p.TimestampUS > s.maxTS {
		s.maxTS = p.TimestampUS
	}
	s.tickPackets++
	defer s.maybeTick()

	if !p.HasTCP {
		s.handleDatagram(p, reason)
		return
	}

	flow := p.Flow()
	if s.eng.cfg.OnEvent != nil {
		if _, tracked := s.meta[flow]; !tracked {
			s.tapFlowOpen(flow, p.TimestampUS)
		}
	}
	s.meta[flow] = flowInfo{reason: reason, ts: p.TimestampUS}
	stream := s.asm.Feed(p)
	if stream == nil {
		return
	}
	if stream.Rewritten {
		// A LastWins retransmission changed already-analyzed bytes:
		// the analyzed-prefix watermark no longer describes the
		// stream's content, so analysis must start over.
		delete(s.lastAnalyzed, flow)
	}
	if core.ShouldAnalyze(stream.Finished, len(stream.Data), s.lastAnalyzed[flow], s.eng.cfg.MinAnalyzeBytes) {
		s.lastAnalyzed[flow] = len(stream.Data)
		s.analyze(stream.Data, flow, reason, p.TimestampUS)
	}
	if stream.Finished {
		// Analysis of the final view (above) is synchronous, so the
		// closed flow's buffer is immediately reusable.
		if closed := s.asm.Close(flow); closed != nil {
			s.asm.Recycle(closed.Data)
		}
		delete(s.lastAnalyzed, flow)
		delete(s.meta, flow)
	}
}

// handleDatagram is the non-TCP arm of handle. Without datagram flows
// each payload-bearing datagram is analyzed on its own, exactly as
// before — but the flow-open event is published once per conversation
// direction per idle window (dgramSeen), not once per datagram. With
// datagram flows on, the payload joins its flow's idle-windowed buffer
// (boundaries preserved) and is swept like a TCP stream; flow-open
// then follows the TCP discipline — once per tracked flow, re-emitted
// after eviction, because eviction deletes the meta entry.
func (s *shard) handleDatagram(p *netpkt.Packet, reason classify.Reason) {
	if len(p.Payload) == 0 {
		return
	}
	flow := p.Flow()
	if !s.eng.cfg.DatagramFlows {
		if s.eng.cfg.OnEvent != nil {
			if _, seen := s.dgramSeen[flow]; !seen {
				s.tapFlowOpen(flow, p.TimestampUS)
			}
			if len(s.dgramSeen) >= maxDgramSeen {
				clear(s.dgramSeen)
			}
			s.dgramSeen[flow] = p.TimestampUS
		}
		s.analyze(p.Payload, flow, reason, p.TimestampUS)
		return
	}
	if s.eng.cfg.OnEvent != nil {
		if _, tracked := s.meta[flow]; !tracked {
			s.tapFlowOpen(flow, p.TimestampUS)
		}
	}
	s.meta[flow] = flowInfo{reason: reason, ts: p.TimestampUS}
	stream := s.asm.FeedDatagram(flow, p.Payload, p.TimestampUS)
	if stream == nil {
		return
	}
	if core.ShouldAnalyze(false, len(stream.Data), s.lastAnalyzed[flow], s.eng.cfg.MinAnalyzeBytes) {
		s.lastAnalyzed[flow] = len(stream.Data)
		s.analyzeDgram(stream, reason, p.TimestampUS)
	}
}

// maybeTick runs the flow-lifecycle maintenance pass once per
// configured interval of trace time: idle flows first (tail-analyzed
// via the evict handler), then LRU eviction down to the byte budget.
// This replaces the batch pipeline's analyze-only-at-Flush: stale
// streams are inspected while the engine keeps running.
func (s *shard) maybeTick() {
	cfg := &s.eng.cfg
	if s.maxTS-s.lastTick < cfg.TickIntervalUS {
		return
	}
	s.updateEWMA(s.maxTS - s.lastTick)
	s.lastTick = s.maxTS
	if s.maxTS > cfg.FlowIdleTimeoutUS {
		n := s.asm.EvictIdle(s.maxTS - cfg.FlowIdleTimeoutUS)
		s.eng.m.evictedIdle.Add(uint64(n))
	}
	if cfg.DatagramFlows && cfg.DatagramIdleUS < cfg.FlowIdleTimeoutUS && s.maxTS > cfg.DatagramIdleUS {
		// The tighter datagram window expires quiet conversations ahead
		// of the flow-wide timeout (tails analyzed via the evict
		// handler, like any eviction).
		n := s.asm.EvictDgramIdle(s.maxTS - cfg.DatagramIdleUS)
		s.eng.m.evictedDgram.Add(uint64(n))
	}
	if len(s.dgramSeen) > 0 && s.maxTS > cfg.DatagramIdleUS {
		cutoff := s.maxTS - cfg.DatagramIdleUS
		for k, last := range s.dgramSeen {
			if last < cutoff {
				delete(s.dgramSeen, k)
			}
		}
	}
	n := s.asm.EvictLRUUntil(cfg.ShardByteBudget)
	s.eng.m.evictedLRU.Add(uint64(n))
}

// updateEWMA folds the packets handled over the elapsed trace time
// into the shard's smoothed packets/sec gauge.
func (s *shard) updateEWMA(elapsedUS uint64) {
	if elapsedUS == 0 {
		return
	}
	rate := float64(s.tickPackets) * 1e6 / float64(elapsedUS)
	s.tickPackets = 0
	const alpha = 0.3
	prev := math.Float64frombits(s.ewmaPPS.Load())
	if prev == 0 {
		prev = rate
	}
	s.ewmaPPS.Store(math.Float64bits(alpha*rate + (1-alpha)*prev))
}

// tapFlowOpen publishes a flow-open event when a tap is attached.
func (s *shard) tapFlowOpen(flow netpkt.FlowKey, ts uint64) {
	if tap := s.eng.cfg.OnEvent; tap != nil {
		tap(core.Event{
			Kind: core.EventFlowOpen, TimestampUS: ts,
			Src: flow.SrcIP, Dst: flow.DstIP,
			SrcPort: flow.SrcPort, DstPort: flow.DstPort,
		})
	}
}

// flushFlows analyzes the unanalyzed tail of every tracked flow and
// resets per-flow state — including alert dedup, so a flow key reused
// in a later trace alerts again — leaving the shard ready for more
// traffic.
func (s *shard) flushFlows() {
	for _, st := range s.asm.Drain() {
		if len(st.Data) > s.lastAnalyzed[st.Key] {
			info := s.meta[st.Key]
			if st.Dgram {
				s.analyzeDgram(st, info.reason, info.ts)
			} else {
				s.analyze(st.Data, st.Key, info.reason, info.ts)
			}
		}
		s.asm.Recycle(st.Data)
	}
	clear(s.lastAnalyzed)
	clear(s.meta)
	clear(s.seen)
	clear(s.dgramSeen)
}

// analyze runs extraction (or, in FullScan mode, forwards the whole
// payload) and the semantic stages over one stream view.
func (s *shard) analyze(data []byte, flow netpkt.FlowKey, reason classify.Reason, ts uint64) {
	if len(data) == 0 {
		return
	}
	s.eng.m.streams.Add(1)
	if s.eng.cfg.FullScan {
		s.analyzeFrame(extract.Frame{Data: data, Source: "fullscan"}, flow, reason, ts)
		return
	}
	for _, f := range extract.Extract(data) {
		s.analyzeFrame(f, flow, reason, ts)
	}
}

// analyzeDgram is analyze for a datagram-flow view: extraction walks
// the concatenation with its datagram boundaries, so
// boundary-sensitive carriers (CoAP) are parsed message by message and
// block transfers reassembled. A single-datagram flow takes exactly
// the Extract path analyze would.
func (s *shard) analyzeDgram(st *reasm.Stream, reason classify.Reason, ts uint64) {
	if len(st.Data) == 0 {
		return
	}
	s.eng.m.streams.Add(1)
	if s.eng.cfg.FullScan {
		s.analyzeFrame(extract.Frame{Data: st.Data, Source: "fullscan"}, st.Key, reason, ts)
		return
	}
	for _, f := range extract.ExtractDatagrams(st.Data, st.Bounds) {
		s.analyzeFrame(f, st.Key, reason, ts)
	}
}

// analyzeFrame resolves one extracted frame's verdict — through the
// fingerprint cache when enabled — and emits any detections. The
// frame's fingerprint is computed whenever the cache or an event tap
// needs it, and published as a fingerprint event on every resolution
// (hit and miss alike, so the correlator's view does not depend on
// cache state).
func (s *shard) analyzeFrame(f extract.Frame, flow netpkt.FlowKey, reason classify.Reason, ts uint64) {
	e := s.eng
	e.m.frames.Add(1)
	e.m.frameBytes.Add(uint64(len(f.Data)))
	tap := e.cfg.OnEvent
	var fp core.Fingerprint
	if e.cache != nil || tap != nil {
		fp = fingerprintOf(f.Data)
	}
	// f.Code is only non-nil when the extraction stage already decoded
	// the frame (code-ratio estimate); otherwise pass nil so the
	// analyzer uses its pooled scratch cache instead of allocating a
	// fresh decode cache per frame.
	var ds []sem.Detection
	var sk sem.Sketch
	if e.cache != nil {
		if cached, csk, ok := e.cache.get(fp); ok {
			e.m.cacheHits.Add(1)
			ds, sk = cached, csk
		} else {
			e.m.cacheMisses.Add(1)
			t0 := time.Now()
			ds = e.analyzer.AnalyzeFrameCached(f.Data, f.Code)
			e.tel.frameNS.Observe(time.Since(t0).Nanoseconds())
			sk = s.sketch(f.Data, ds)
			e.cache.put(fp, ds, sk)
		}
	} else {
		t0 := time.Now()
		ds = e.analyzer.AnalyzeFrameCached(f.Data, f.Code)
		e.tel.frameNS.Observe(time.Since(t0).Nanoseconds())
		sk = s.sketch(f.Data, ds)
	}
	if tap != nil {
		tap(core.Event{
			Kind: core.EventFingerprint, TimestampUS: ts,
			Src: flow.SrcIP, Dst: flow.DstIP,
			SrcPort: flow.SrcPort, DstPort: flow.DstPort,
			Fingerprint: fp,
			Sketch:      sk,
		})
	}
	for _, d := range ds {
		s.emit(f, flow, reason, ts, fp, sk, d)
	}
}

// sketch computes the frame's structural fingerprint when lineage is
// enabled and the frame produced detections; otherwise it returns the
// zero sketch at the cost of one branch. Benign frames are never
// emulated, and callers memoize the result in the verdict cache.
func (s *shard) sketch(frame []byte, ds []sem.Detection) sem.Sketch {
	e := s.eng
	if !e.cfg.Lineage || len(ds) == 0 {
		return sem.Sketch{}
	}
	e.m.sketches.Add(1)
	return e.analyzer.Sketch(frame, ds)
}

// emit records one detection, deduplicated per (flow, template). The
// dedup map is shard-local: a flow is always handled by one shard.
func (s *shard) emit(f extract.Frame, flow netpkt.FlowKey, reason classify.Reason, ts uint64, fp core.Fingerprint, sk sem.Sketch, d sem.Detection) {
	key := alertKey{flow: flow, template: d.Template}
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	a := core.Alert{
		TimestampUS: ts,
		Src:         flow.SrcIP, Dst: flow.DstIP,
		SrcPort: flow.SrcPort, DstPort: flow.DstPort,
		Reason:      reason,
		FrameSource: f.Source,
		Detection:   d,
	}
	e := s.eng
	e.mu.Lock()
	e.alerts = append(e.alerts, a)
	e.mu.Unlock()
	e.m.alerts.Add(1)
	// Follow-on traffic from a confirmed attacker is always analyzed.
	e.classifier.MarkSuspicious(flow.SrcIP, ts)
	if tap := e.cfg.OnEvent; tap != nil {
		tap(core.Event{
			Kind: core.EventAlert, TimestampUS: ts,
			Src: flow.SrcIP, Dst: flow.DstIP,
			SrcPort: flow.SrcPort, DstPort: flow.DstPort,
			Fingerprint: fp,
			Sketch:      sk,
			Template:    d.Template,
			Severity:    d.Severity,
		})
	}
	if e.cfg.OnAlert != nil {
		e.cfg.OnAlert(a)
	}
}
