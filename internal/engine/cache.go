package engine

import (
	"container/list"
	"sync"

	"semnids/internal/sem"
)

// fingerprint is a 128-bit payload identity: two independent FNV-1a
// style hashes plus the length folded in. Worm outbreaks deliver the
// same frame bytes millions of times; 128 bits makes an accidental
// collision (a wrong cached verdict) vanishingly unlikely without
// storing the frame itself.
type fingerprint struct {
	a, b uint64
	n    int
}

func fingerprintOf(data []byte) fingerprint {
	const prime = 1099511628211
	h1 := uint64(14695981039346656037) // FNV-1a offset basis
	h2 := uint64(14695981039346656037 ^ 0x9e3779b97f4a7c15)
	for _, c := range data {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c)) * (prime + 2)
	}
	return fingerprint{a: h1, b: h2, n: len(data)}
}

// verdictCache memoizes semantic-analysis verdicts by payload
// fingerprint, bounded by an LRU policy. A cached verdict may be an
// empty detection list — knowing a frame is benign is as valuable as
// knowing it is hostile, since benign frames dominate live traffic.
type verdictCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[fingerprint]*list.Element
}

type cacheEntry struct {
	key fingerprint
	ds  []sem.Detection
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[fingerprint]*list.Element, capacity),
	}
}

// get returns the cached detections for a fingerprint. The second
// result distinguishes "cached as benign" (nil, true) from "unknown".
func (c *verdictCache) get(key fingerprint) ([]sem.Detection, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).ds, true
}

// put records the verdict for a fingerprint, evicting the least
// recently used entry when full.
func (c *verdictCache) put(key fingerprint, ds []sem.Detection) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).ds = ds
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ds: ds})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
