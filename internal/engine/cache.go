package engine

import (
	"container/list"
	"sync"

	"semnids/internal/core"
	"semnids/internal/sem"
)

// fingerprintOf is the engine's payload identity — the shared 128-bit
// fingerprint (core.Fingerprint) also used by the incident correlator
// to recognize a victim re-emitting the payload it was attacked with.
func fingerprintOf(data []byte) core.Fingerprint { return core.FingerprintOf(data) }

// verdictCache memoizes semantic-analysis verdicts by payload
// fingerprint, bounded by an LRU policy with TinyLFU-style admission.
// A cached verdict may be an empty detection list — knowing a frame is
// benign is as valuable as knowing it is hostile, since benign frames
// dominate live traffic.
//
// Admission: every lookup feeds a 4-bit count-min sketch. When the
// cache is full, a new fingerprint is admitted only if its estimated
// frequency exceeds the LRU victim's — so a scan spraying millions of
// one-shot payloads (each seen exactly once) cannot churn out the hot
// worm fingerprints the cache exists to serve. Rejections are counted;
// correctness is unaffected either way, since an unadmitted frame is
// simply analyzed again next time.
type verdictCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	entries  map[core.Fingerprint]*list.Element
	admit    *cmSketch
	rejected uint64
}

type cacheEntry struct {
	key core.Fingerprint
	ds  []sem.Detection
	// sk is the frame's structural fingerprint, memoized with the
	// verdict so lineage-enabled engines pay the sketch emulation once
	// per distinct payload (zero when lineage is off or ds is empty).
	sk sem.Sketch
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[core.Fingerprint]*list.Element, capacity),
		admit:   newCMSketch(capacity),
	}
}

// get returns the cached detections and sketch for a fingerprint. The
// last result distinguishes "cached as benign" (nil, zero, true) from
// "unknown".
func (c *verdictCache) get(key core.Fingerprint) ([]sem.Detection, sem.Sketch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admit.inc(key.A)
	el, ok := c.entries[key]
	if !ok {
		return nil, sem.Sketch{}, false
	}
	c.ll.MoveToFront(el)
	en := el.Value.(*cacheEntry)
	return en.ds, en.sk, true
}

// put records the verdict for a fingerprint. A full cache evicts the
// least recently used entry only when the doorkeeper estimates the
// newcomer is hotter; otherwise the newcomer is rejected.
func (c *verdictCache) put(key core.Fingerprint, ds []sem.Detection, sk sem.Sketch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*cacheEntry)
		en.ds = ds
		en.sk = sk
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		victim := c.ll.Back()
		if c.admit.estimate(key.A) <= c.admit.estimate(victim.Value.(*cacheEntry).key.A) {
			c.rejected++
			return
		}
		c.ll.Remove(victim)
		delete(c.entries, victim.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ds: ds, sk: sk})
}

// len reports the current entry count.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// rejects reports how many inserts the admission policy refused.
func (c *verdictCache) rejects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejected
}
