package engine

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

func testClassify() classify.Config {
	return classify.Config{
		Honeypots:     []netip.Addr{traffic.HoneypotAddr},
		DarkSpace:     []netip.Prefix{traffic.DarkNet},
		ScanThreshold: 3,
	}
}

// alertSet normalizes alerts to a sorted set of flow+template keys so
// runs with different shard counts (hence different arrival orders)
// can be compared.
func alertSet(alerts []core.Alert) []string {
	keys := make([]string, 0, len(alerts))
	for _, a := range alerts {
		keys = append(keys, fmt.Sprintf("%s:%d->%s:%d %s", a.Src, a.SrcPort, a.Dst, a.DstPort, a.Detection.Template))
	}
	sort.Strings(keys)
	return keys
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardDeterminism checks the tentpole invariant: the engine
// produces the same alert set regardless of shard count, and that set
// matches the batch pipeline's.
func TestShardDeterminism(t *testing.T) {
	pkts := traffic.Synthesize(traffic.TraceSpec{Seed: 11, BenignSessions: 60, CodeRedInstances: 3})

	n := core.New(core.Config{Classify: testClassify()})
	for _, p := range pkts {
		n.ProcessPacket(p)
	}
	n.Flush()
	want := alertSet(n.Alerts())
	if len(want) == 0 {
		t.Fatal("batch pipeline produced no alerts; trace spec is wrong")
	}

	for _, shards := range []int{1, 2, 3, 4, 8} {
		e := New(Config{Classify: testClassify(), Shards: shards})
		for _, p := range pkts {
			e.Process(p)
		}
		e.Stop()
		got := alertSet(e.Alerts())
		if !equalSets(got, want) {
			t.Errorf("shards=%d: alert set diverged\n got: %v\nwant: %v", shards, got, want)
		}
	}
}

// udpTo builds a UDP packet carrying payload to the honeypot.
func udpTo(src netip.Addr, sport uint16, payload []byte, tsUS uint64) *netpkt.Packet {
	return &netpkt.Packet{
		SrcIP: src, DstIP: traffic.HoneypotAddr,
		SrcPort: sport, DstPort: 4444,
		Proto: netpkt.ProtoUDP, HasUDP: true,
		Payload: payload, TimestampUS: tsUS,
	}
}

// TestVerdictCacheAccounting feeds the same exploit payload from many
// sources: the first delivery misses the cache, every identical
// delivery after it hits, and per-flow alerting is unaffected.
func TestVerdictCacheAccounting(t *testing.T) {
	payload := exploits.Table1Exploits()[0].Payload
	const deliveries = 25

	e := New(Config{Classify: testClassify(), Shards: 1})
	for i := 0; i < deliveries; i++ {
		src := netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
		e.Process(udpTo(src, uint16(2000+i), payload, uint64(i)*1000))
	}
	e.Stop()

	m := e.Snapshot()
	if m.Frames == 0 || m.Frames%deliveries != 0 {
		t.Fatalf("frames=%d, want a nonzero multiple of %d", m.Frames, deliveries)
	}
	perPayload := m.Frames / deliveries
	if m.CacheMisses != perPayload {
		t.Errorf("cache misses = %d, want %d (one per distinct frame)", m.CacheMisses, perPayload)
	}
	if m.CacheHits != m.Frames-perPayload {
		t.Errorf("cache hits = %d, want %d", m.CacheHits, m.Frames-perPayload)
	}
	if m.CacheEntries == 0 {
		t.Error("cache is empty after deliveries")
	}

	// Every source must still alert: caching verdicts must not
	// collapse per-flow attribution.
	srcs := map[netip.Addr]bool{}
	for _, a := range e.Alerts() {
		srcs[a.Src] = true
	}
	if len(srcs) != deliveries {
		t.Errorf("alerting sources = %d, want %d", len(srcs), deliveries)
	}
}

// TestVerdictCacheDisabled checks the cache can be turned off.
func TestVerdictCacheDisabled(t *testing.T) {
	payload := exploits.Table1Exploits()[0].Payload
	e := New(Config{Classify: testClassify(), Shards: 1, VerdictCacheSize: -1})
	for i := 0; i < 3; i++ {
		src := netip.AddrFrom4([4]byte{10, 8, 0, byte(i)})
		e.Process(udpTo(src, uint16(3000+i), payload, uint64(i)*1000))
	}
	e.Stop()
	m := e.Snapshot()
	if m.CacheHits != 0 || m.CacheMisses != 0 || m.CacheEntries != 0 {
		t.Errorf("disabled cache recorded activity: %+v", m)
	}
	if m.Alerts == 0 {
		t.Error("no alerts with cache disabled")
	}
}

// TestIdleEvictionAnalyzesTail starves a never-finished exploit flow
// of its FIN: the idle-eviction tick must analyze the tail and still
// raise the alert — the batch pipeline would only have caught this at
// Flush.
func TestIdleEvictionAnalyzesTail(t *testing.T) {
	exp := exploits.Table1Exploits()[0]
	attacker := netip.MustParseAddr("10.7.0.1")

	e := New(Config{
		Classify:          testClassify(),
		Shards:            1,
		MinAnalyzeBytes:   1 << 30, // never analyze on size thresholds
		FlowIdleTimeoutUS: 1e6,
		TickIntervalUS:    1e5,
	})
	defer e.Stop()

	// Exploit bytes to the honeypot over TCP, no FIN ever.
	e.Process(&netpkt.Packet{
		SrcIP: attacker, DstIP: traffic.HoneypotAddr,
		SrcPort: 4321, DstPort: exp.DstPort,
		Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagACK,
		Seq: 1000, Payload: exp.Payload, TimestampUS: 1000,
	})

	// Unrelated selected traffic far past the idle timeout advances
	// the shard's trace clock, triggering the eviction tick.
	other := netip.MustParseAddr("10.7.0.2")
	e.Process(udpTo(other, 9999, []byte("ping"), 5e6))
	e.Drain() // barrier only: the flow must already be gone by now

	m := e.Snapshot()
	if m.FlowsEvictedIdle != 1 {
		t.Fatalf("idle evictions = %d, want 1", m.FlowsEvictedIdle)
	}
	found := false
	for _, a := range e.Alerts() {
		if a.Src == attacker {
			found = true
		}
	}
	if !found {
		t.Fatalf("evicted flow's tail was not analyzed: alerts=%v", e.Alerts())
	}
}

// TestLRUByteBudgetEviction feeds more stream data than the shard
// byte budget allows and checks the budget is enforced by eviction.
func TestLRUByteBudgetEviction(t *testing.T) {
	const budget = 64 << 10
	e := New(Config{
		Classify:        classify.Config{Disabled: true},
		Shards:          1,
		ShardByteBudget: budget,
		TickIntervalUS:  1e4,
	})
	defer e.Stop()

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte('a' + i%23)
	}
	seqs := map[int]uint32{}
	for n := 0; n < 2000; n++ {
		flow := n % 50 // 50 long-lived flows, never finished
		e.Process(&netpkt.Packet{
			SrcIP:   netip.AddrFrom4([4]byte{10, 6, 0, byte(flow)}),
			DstIP:   traffic.WebServer,
			SrcPort: uint16(5000 + flow), DstPort: 80,
			Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagACK,
			Seq: seqs[flow], Payload: payload, TimestampUS: uint64(n) * 1000,
		})
		seqs[flow] += uint32(len(payload))
	}
	e.Drain()
	m := e.Snapshot()
	if m.FlowsEvictedLRU == 0 {
		t.Fatalf("no LRU evictions despite %d bytes over a %d budget: %+v",
			2000*len(payload), budget, m)
	}
	if m.BufferedBytes != 0 {
		t.Errorf("buffered bytes after drain = %d, want 0", m.BufferedBytes)
	}
}

// TestOverloadShed blocks the single shard inside an OnAlert callback
// and checks the shed policy drops exactly the overflow, counted in
// Dropped, without ever blocking the ingest goroutine.
func TestOverloadShed(t *testing.T) {
	payload := exploits.Table1Exploits()[0].Payload
	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	e := New(Config{
		Classify:   classify.Config{Disabled: true},
		Shards:     1,
		QueueDepth: 1,
		Overload:   PolicyShed,
		OnAlert: func(core.Alert) {
			enterOnce.Do(func() { close(entered) })
			<-release
		},
	})

	// The first exploit packet reaches the shard and blocks it in
	// OnAlert; the queue is empty at that point.
	e.Process(udpTo(netip.MustParseAddr("10.5.0.1"), 1111, payload, 1000))
	<-entered

	// One more packet fits the depth-1 queue; the rest must be shed.
	const extra = 10
	for i := 0; i < extra; i++ {
		e.Process(udpTo(netip.AddrFrom4([4]byte{10, 5, 1, byte(i)}), uint16(2222+i), []byte("benign"), uint64(2000+i)))
	}
	if got := e.Snapshot().Dropped; got != extra-1 {
		t.Errorf("dropped = %d, want %d", got, extra-1)
	}
	close(release)
	e.Stop()
	if got := e.Snapshot().Dropped; got != extra-1 {
		t.Errorf("dropped after stop = %d, want %d", got, extra-1)
	}
}

// TestDrainSurvivesAcrossTraces checks the live-lifecycle semantics:
// Drain completes a trace's analysis but the engine keeps accepting
// traffic, unlike the batch pipeline whose Flush is terminal. Stop is
// idempotent and alerts stay readable after it.
func TestDrainSurvivesAcrossTraces(t *testing.T) {
	exp := exploits.Table1Exploits()[0]
	e := New(Config{Classify: testClassify(), Shards: 2})

	feed := func(src netip.Addr) {
		// Exploit over TCP without FIN: only Drain (tail analysis)
		// or a size threshold can catch it.
		e.Process(&netpkt.Packet{
			SrcIP: src, DstIP: traffic.HoneypotAddr,
			SrcPort: 7777, DstPort: exp.DstPort,
			Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagACK,
			Seq: 1, Payload: exp.Payload, TimestampUS: 1000,
		})
	}

	feed(netip.MustParseAddr("10.4.0.1"))
	e.Drain()
	first := len(e.Alerts())
	if first == 0 {
		t.Fatal("no alerts after first trace + drain")
	}

	feed(netip.MustParseAddr("10.4.0.2"))
	e.Drain()
	second := len(e.Alerts())
	if second <= first {
		t.Fatalf("engine did not survive drain: %d alerts, then %d", first, second)
	}

	e.Stop()
	e.Stop() // idempotent
	e.Drain()
	if got := len(e.Alerts()); got != second {
		t.Errorf("alerts after stop = %d, want %d", got, second)
	}
	// Feeding after stop is ignored, not a crash.
	feed(netip.MustParseAddr("10.4.0.3"))
	if got := len(e.Alerts()); got != second {
		t.Errorf("packet accepted after stop: %d alerts", got)
	}
}

// TestFeederFlushAfterStop pins the straggler contract: a parallel
// feeder holding a partial batch may Flush after Stop — the batch is
// released, not sent to the closed shard queues.
func TestFeederFlushAfterStop(t *testing.T) {
	e := New(Config{Classify: classify.Config{Disabled: true}, Shards: 2})
	f := e.NewFeeder()
	f.Process(udpTo(netip.MustParseAddr("10.6.0.1"), 4444, []byte("partial batch content"), 100))
	e.Stop()
	f.Flush() // must not panic
	f.Process(udpTo(netip.MustParseAddr("10.6.0.2"), 4445, []byte("late"), 200))
}

// TestShedRingExhaustionAllocates pins the shed-policy fix: an empty
// batch ring with queue room is not overload — packets must still get
// through (feeders merely pinning partial batches is not saturation).
func TestShedRingExhaustionAllocates(t *testing.T) {
	e := New(Config{
		Classify:   classify.Config{Disabled: true},
		Shards:     1,
		QueueDepth: 64,
		BatchSize:  8,
		Overload:   PolicyShed,
	})
	defer e.Stop()
	s := e.shards[0]
	// Pin every ring buffer, simulating feeders holding partials.
	var pinned []*pktBatch
	for {
		b := func() *pktBatch {
			select {
			case b := <-s.free:
				return b
			default:
				return nil
			}
		}()
		if b == nil {
			break
		}
		pinned = append(pinned, b)
	}
	for i := 0; i < 10; i++ {
		e.Process(udpTo(netip.AddrFrom4([4]byte{10, 7, 0, byte(i)}), uint16(5000+i), []byte("must not be shed"), uint64(1000+i)))
	}
	e.Drain()
	m := e.Snapshot()
	if m.Dropped != 0 {
		t.Errorf("dropped %d packets with an empty ring but queue room", m.Dropped)
	}
	if m.Selected != 10 {
		t.Errorf("selected = %d, want 10", m.Selected)
	}
	for _, b := range pinned {
		s.putBatch(b)
	}
}
