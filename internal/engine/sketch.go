package engine

// cmSketch is a 4-bit count-min sketch: the frequency estimator behind
// the verdict cache's TinyLFU-style admission policy. Four rows of
// nibble counters are addressed by independent mixes of a 64-bit key
// hash; an item's estimate is the minimum over its four counters
// (over-counting from collisions is bounded, under-counting is
// impossible). Counters saturate at 15, and once the total number of
// increments reaches the sample size every counter is halved — the
// "reset" that ages out stale popularity so yesterday's hot payload
// cannot squat in the cache forever.
type cmSketch struct {
	counters []byte // two 4-bit counters per byte, rows concatenated
	mask     uint64 // row slot count - 1 (power of two)
	rowLen   int    // bytes per row
	adds     int    // increments since the last reset
	sample   int    // increments that trigger a halving reset
}

// sketchRows is the number of independent hash rows.
const sketchRows = 4

// seeds mix the key hash differently per row (odd constants, as in
// multiply-shift hashing).
var sketchSeeds = [sketchRows]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0xd6e8feb86659fd93,
}

// newCMSketch sizes the sketch for a cache of the given capacity:
// eight counters per cached entry (rounded up to a power of two per
// row) and a sample of ten observations per entry.
func newCMSketch(capacity int) *cmSketch {
	slots := 1
	for slots < capacity*8 {
		slots <<= 1
	}
	return &cmSketch{
		counters: make([]byte, slots/2*sketchRows),
		mask:     uint64(slots - 1),
		rowLen:   slots / 2,
		sample:   capacity * 10,
	}
}

// slot returns the byte index and nibble shift for key in row.
func (s *cmSketch) slot(row int, h uint64) (int, uint) {
	mixed := (h ^ sketchSeeds[row]) * sketchSeeds[row]
	idx := (mixed >> 16) & s.mask
	return row*s.rowLen + int(idx>>1), uint(idx&1) * 4
}

// inc bumps the key's counter in every row, halving all counters when
// the sample window is exhausted.
func (s *cmSketch) inc(h uint64) {
	for row := 0; row < sketchRows; row++ {
		i, shift := s.slot(row, h)
		if v := (s.counters[i] >> shift) & 0xf; v < 15 {
			s.counters[i] += 1 << shift
		}
	}
	s.adds++
	if s.adds >= s.sample {
		s.reset()
	}
}

// estimate returns the key's frequency estimate: the minimum counter
// across rows.
func (s *cmSketch) estimate(h uint64) uint8 {
	min := uint8(15)
	for row := 0; row < sketchRows; row++ {
		i, shift := s.slot(row, h)
		if v := (s.counters[i] >> shift) & 0xf; v < min {
			min = v
		}
	}
	return min
}

// reset halves every counter, aging the frequency sample.
func (s *cmSketch) reset() {
	s.adds /= 2
	for i := range s.counters {
		// Halve both nibbles in place: clear the bit that would shift
		// between them, then shift the whole byte.
		s.counters[i] = (s.counters[i] >> 1) & 0x77
	}
}
