package engine

import (
	"net/netip"
	"sync"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

// flowOpenTap counts EventFlowOpen per flow, safely across shard
// goroutines.
type flowOpenTap struct {
	mu     sync.Mutex
	counts map[netpkt.FlowKey]int
}

func newFlowOpenTap() *flowOpenTap {
	return &flowOpenTap{counts: make(map[netpkt.FlowKey]int)}
}

func (ft *flowOpenTap) tap(ev core.Event) {
	if ev.Kind != core.EventFlowOpen {
		return
	}
	ft.mu.Lock()
	ft.counts[netpkt.FlowKey{
		SrcIP: ev.Src, DstIP: ev.Dst,
		SrcPort: ev.SrcPort, DstPort: ev.DstPort,
	}]++
	ft.mu.Unlock()
}

func (ft *flowOpenTap) count(k netpkt.FlowKey) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	k.Proto = 0
	return ft.counts[k]
}

// TestDatagramFlowOpenOncePerFlow pins the flow-open event count: a
// burst of datagrams on one 5-tuple publishes exactly one flow-open —
// not one per datagram, which used to flood the correlator's bounded
// event channel — and the idle window re-arms the event. Holds with
// datagram flows off (the dedup map) and on (the tracked flow).
func TestDatagramFlowOpenOncePerFlow(t *testing.T) {
	for _, dgramFlows := range []bool{false, true} {
		tap := newFlowOpenTap()
		e := New(Config{
			Classify:          classify.Config{Disabled: true},
			Shards:            1,
			DatagramFlows:     dgramFlows,
			FlowIdleTimeoutUS: 1e6,
			TickIntervalUS:    1e5,
			OnEvent:           tap.tap,
		})

		src := netip.MustParseAddr("10.5.0.1")
		flow := netpkt.FlowKey{
			SrcIP: src, DstIP: traffic.HoneypotAddr,
			SrcPort: 7777, DstPort: 4444,
		}
		const burst = 200
		for i := 0; i < burst; i++ {
			e.Process(udpTo(src, 7777, []byte("probe datagram"), uint64(1000+i*100)))
		}
		e.Drain()
		if got := tap.count(flow); got != 1 {
			t.Fatalf("dgramFlows=%v: %d datagrams produced %d flow-open events, want 1",
				dgramFlows, burst, got)
		}

		// Push trace time far past the idle window on another flow, then
		// revisit: the idle sweep must have re-armed the event.
		other := netip.MustParseAddr("10.5.0.2")
		e.Process(udpTo(other, 8888, []byte("clock mover"), 60e6))
		e.Process(udpTo(other, 8888, []byte("clock mover"), 61e6))
		e.Drain()
		e.Process(udpTo(src, 7777, []byte("back again"), 62e6))
		e.Stop()
		if got := tap.count(flow); got != 2 {
			t.Fatalf("dgramFlows=%v: flow-open not re-emitted after idle window: %d events, want 2",
				dgramFlows, got)
		}
	}
}

// iotTrace renders the standard IoT botnet outbreak.
func iotTrace(t *testing.T) []*netpkt.Packet {
	t.Helper()
	pkts := traffic.IoTBotnet(traffic.IoTSpec{Seed: 5})
	if len(pkts) == 0 {
		t.Fatal("empty IoT trace")
	}
	return pkts
}

// TestDatagramFlowDeterminism checks the datagram tentpole invariant:
// with datagram flows on, the IoT outbreak produces the same alert set
// at every shard count — canonical 5-tuple dispatch keeps both
// directions of each conversation on one shard, so shard count can
// never change what reassembles.
func TestDatagramFlowDeterminism(t *testing.T) {
	pkts := iotTrace(t)
	var want []string
	for _, shards := range []int{1, 2, 4} {
		e := New(Config{
			Classify:      testClassify(),
			Shards:        shards,
			DatagramFlows: true,
		})
		for _, p := range pkts {
			e.Process(p)
		}
		e.Stop()
		got := alertSet(e.Alerts())
		if shards == 1 {
			want = got
			if len(want) == 0 {
				t.Fatal("IoT trace produced no alerts with datagram flows on")
			}
			continue
		}
		if !equalSets(got, want) {
			t.Errorf("shards=%d: alert set diverged\n got: %v\nwant: %v", shards, got, want)
		}
	}
}

// TestDatagramIdleEvictionAnalyzesTail starves a block transfer of any
// later traffic on its flow: the datagram idle window must evict the
// conversation and analyze its buffered tail, raising the alert.
func TestDatagramIdleEvictionAnalyzesTail(t *testing.T) {
	g := traffic.NewGen(13)
	attacker := netip.MustParseAddr("10.2.0.9")
	victim := netip.MustParseAddr("172.17.0.1")

	e := New(Config{
		Classify:          testClassify(),
		Shards:            1,
		DatagramFlows:     true,
		MinAnalyzeBytes:   1 << 30, // only eviction may trigger analysis
		FlowIdleTimeoutUS: 60e6,
		DatagramIdleUS:    1e6,
		TickIntervalUS:    1e5,
	})
	defer e.Stop()

	// Dark-space probes make the attacker suspicious, then the split
	// exploit delivery rides the suspicion.
	for _, p := range g.CoAPScan(attacker, 4) {
		e.Process(p)
	}
	for _, p := range g.CoAPBlockPut(attacker, victim, "firmware", exploits.CoAPFirmware()) {
		e.Process(p)
	}

	// Unrelated selected traffic far past the datagram idle window
	// advances the shard clock; the flow-wide timeout is still far off.
	other := netip.MustParseAddr("10.2.0.2")
	e.Process(udpTo(other, 9999, []byte("ping"), 30e6))
	e.Drain()

	m := e.Snapshot()
	if m.FlowsEvictedUDPIdle == 0 {
		t.Fatalf("no datagram idle evictions: %+v", m)
	}
	found := false
	for _, a := range e.Alerts() {
		if a.Src == attacker && a.Detection.Template == "xor-decrypt-loop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("evicted datagram flow's tail was not analyzed: alerts=%v", e.Alerts())
	}
}

// TestDatagramSoakBoundedMemory sweeps 200k short UDP conversations
// through the engine with datagram flows on: the idle window must keep
// flow-table occupancy and buffered bytes bounded far below the
// conversation count, and the gauges must return to zero at Stop.
func TestDatagramSoakBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const conversations = 200_000
	e := New(Config{
		Classify:          classify.Config{Disabled: true},
		Shards:            4,
		QueueDepth:        4096,
		DatagramFlows:     true,
		FlowIdleTimeoutUS: 60e6,
		DatagramIdleUS:    1e6,
		TickIntervalUS:    1e5,
	})

	payload := []byte("t=21.4;h=55 short sensor reading")
	maxFlows, maxBytes := 0, 0
	for n := 0; n < conversations; n++ {
		src := netip.AddrFrom4([4]byte{10, 4, byte(n >> 8), byte(n)})
		ts := uint64(n) * 200
		e.Process(udpTo(src, uint16(1025+n%50000), payload, ts))
		e.Process(udpTo(src, uint16(1025+n%50000), payload, ts+50))
		if n%4096 == 0 {
			m := e.Snapshot()
			if m.UDPFlowsActive > maxFlows {
				maxFlows = m.UDPFlowsActive
			}
			if m.UDPBufferedBytes > maxBytes {
				maxBytes = m.UDPBufferedBytes
			}
		}
	}
	e.Drain()
	m := e.Snapshot()
	if m.FlowsEvictedUDPIdle == 0 {
		t.Fatal("no datagram idle evictions over 200k conversations")
	}
	// The idle window spans 1e6us / 200us-per-conversation = 5000
	// conversations; occupancy must stay in that order, never the
	// full 200k.
	const occupancyCap = 20_000
	if maxFlows == 0 || maxFlows > occupancyCap {
		t.Errorf("peak UDP flow occupancy %d, want (0, %d]", maxFlows, occupancyCap)
	}
	if maxBytes > occupancyCap*2*len(payload) {
		t.Errorf("peak UDP buffered bytes %d", maxBytes)
	}
	e.Stop()
	m = e.Snapshot()
	if m.UDPFlowsActive != 0 || m.UDPBufferedBytes != 0 {
		t.Errorf("gauges after Stop: flows=%d bytes=%d, want 0/0", m.UDPFlowsActive, m.UDPBufferedBytes)
	}
}

// TestDatagramFlowsOffByteIdentical pins the feature flag's off state:
// with DatagramFlows false the engine's alert set over the IoT trace
// matches the batch pipeline's per-packet treatment — buffering is
// strictly opt-in.
func TestDatagramFlowsOffByteIdentical(t *testing.T) {
	pkts := iotTrace(t)

	n := core.New(core.Config{Classify: testClassify()})
	for _, p := range pkts {
		n.ProcessPacket(p)
	}
	n.Flush()
	want := alertSet(n.Alerts())

	for _, shards := range []int{1, 3} {
		e := New(Config{Classify: testClassify(), Shards: shards})
		for _, p := range pkts {
			e.Process(p)
		}
		e.Stop()
		if got := alertSet(e.Alerts()); !equalSets(got, want) {
			t.Errorf("shards=%d: datagram-flows-off alert set diverged from batch\n got: %v\nwant: %v",
				shards, got, want)
		}
	}
}
