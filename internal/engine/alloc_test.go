package engine

import (
	"net/netip"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/netpkt"
)

// ingestTrafficPackets builds a benign mixed workload: nFlows TCP
// sessions (several text segments, then FIN) plus a UDP datagram per
// flow — the shapes the ingest path sees constantly and must handle
// without per-packet allocation.
func ingestTrafficPackets(nFlows int) []*netpkt.Packet {
	payload := []byte("GET /index.html HTTP/1.1\r\nHost: bench.example.com\r\nAccept: */*\r\n\r\n")
	var pkts []*netpkt.Packet
	ts := uint64(1000)
	for f := 0; f < nFlows; f++ {
		src := netip.AddrFrom4([4]byte{10, 9, byte(f >> 8), byte(f)})
		seq := uint32(100)
		for s := 0; s < 3; s++ {
			pkts = append(pkts, &netpkt.Packet{
				SrcIP: src, DstIP: netip.AddrFrom4([4]byte{10, 9, 255, 1}),
				SrcPort: uint16(2000 + f), DstPort: 80,
				Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagACK,
				Seq: seq, Payload: payload, TimestampUS: ts,
			})
			seq += uint32(len(payload))
			ts += 50
		}
		pkts = append(pkts, &netpkt.Packet{
			SrcIP: src, DstIP: netip.AddrFrom4([4]byte{10, 9, 255, 1}),
			SrcPort: uint16(2000 + f), DstPort: 80,
			Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagFIN | netpkt.FlagACK,
			Seq: seq, TimestampUS: ts,
		})
		pkts = append(pkts, &netpkt.Packet{
			SrcIP: src, DstIP: netip.AddrFrom4([4]byte{10, 9, 255, 2}),
			SrcPort: uint16(3000 + f), DstPort: 53,
			Proto: netpkt.ProtoUDP, HasUDP: true,
			Payload: []byte("benign datagram content............."), TimestampUS: ts,
		})
		ts += 50
	}
	return pkts
}

// TestEngineIngestAllocs is the ingest-path allocation-regression
// guard, mirroring sem's analyzer pin: a warm engine fed a benign
// mixed trace (batch dispatch, reassembly, extraction, analysis,
// drain) must stay far below one allocation per packet. A regression
// to per-packet channel messages, per-packet Stream views or
// per-frame decode caches trips this immediately.
func TestEngineIngestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	pkts := ingestTrafficPackets(40)
	e := New(Config{
		Classify:         classify.Config{Disabled: true},
		Shards:           1,
		VerdictCacheSize: -1,
	})
	defer e.Stop()

	run := func() {
		for _, p := range pkts {
			e.Process(p)
		}
		e.Drain()
	}
	// Warm: grows shard maps, reassembly pools, analyzer scratch.
	for i := 0; i < 3; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	perPacket := allocs / float64(len(pkts))
	// Steady state measures ~0.1 allocs/packet (drain barriers, map
	// growth churn, pool refills after GC). The budget is 0.5: loose
	// enough for runtime noise, tight enough that any per-packet
	// allocation on the ingest path (1.0+/packet) fails.
	if perPacket > 0.5 {
		t.Errorf("ingest path allocates %.2f objects/packet over %d packets (%.0f/run), budget 0.5",
			perPacket, len(pkts), allocs)
	}
}
