// Package engine is the continuously-running streaming layer over the
// paper's five-stage pipeline. Where internal/core is a one-shot batch
// detector (single feeder, analyze-at-Flush, dies after Flush), the
// engine is built to run forever under load:
//
//   - Ingestion is sharded: packets are dispatched by FlowKey hash to
//     N shards, each owning its flow table, reassembler slice and
//     analysis bookkeeping, so shards run lock-free and scale across
//     cores. The cheap classification stage runs on the ingest
//     goroutine; only selected packets cross a shard queue.
//   - Flow lifecycles are managed: a periodic tick (driven by trace
//     time) analyzes-then-evicts idle streams and enforces a byte
//     budget per shard with LRU eviction, so abandoned and long-lived
//     flows cannot grow state without bound.
//   - Verdicts are cached by payload fingerprint: a worm outbreak
//     delivering millions of identical payloads hits the semantic
//     analyzer once.
//   - Shard queues are bounded with an explicit overload policy:
//     block (backpressure) or shed (drop + count), never silent
//     unbounded buffering.
//   - Drain flushes all in-progress flows and leaves the engine live
//     for the next trace; Stop terminates it. Both are idempotent and
//     safe alongside concurrent Alerts/Snapshot reads.
package engine

import (
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/netpkt"
	"semnids/internal/sem"
	"semnids/internal/telemetry"
)

// OverloadPolicy selects what Process does when a shard queue is full.
type OverloadPolicy uint8

const (
	// PolicyBlock applies backpressure: Process blocks until the
	// owning shard has queue room. No packet is lost; ingestion slows
	// to the analysis rate.
	PolicyBlock OverloadPolicy = iota
	// PolicyShed drops the packet and counts it in Metrics.Dropped.
	// Ingestion never blocks; a saturated sensor degrades by sampling
	// instead of stalling the capture loop.
	PolicyShed
)

// Config parameterizes the streaming engine.
type Config struct {
	// Classify configures the traffic classification stage (shared by
	// all shards; it runs on the ingest goroutine).
	Classify classify.Config

	// Templates is the semantic template set (default: the built-in
	// set).
	Templates []*sem.Template

	// SensorID names this engine instance in exported incident
	// evidence: every evidence record a tap-fed correlator exports
	// carries it as provenance, so federated merges stay traceable to
	// the sensor that observed each piece (default "sensor").
	SensorID string

	// Shards is the number of ingest shards (default: GOMAXPROCS).
	Shards int

	// QueueDepth bounds each shard's packet queue (default 1024).
	QueueDepth int

	// BatchSize is the shard dispatch granularity: selected packets
	// accumulate into per-shard batches of this many packets and cross
	// the shard queue in one send, amortizing the handoff (and its
	// consumer wakeup) that used to be paid per packet. Batches also
	// flush when trace time advances a tick, so latency is bounded by
	// TickIntervalUS. Default 64, capped at QueueDepth so tiny queues
	// keep per-packet overload semantics.
	BatchSize int

	// Overload selects the full-queue policy (default PolicyBlock).
	Overload OverloadPolicy

	// FlowIdleTimeoutUS evicts flows idle for this many trace
	// microseconds; their unanalyzed tail is still analyzed (default
	// 60s).
	FlowIdleTimeoutUS uint64

	// TickIntervalUS is how often, in trace time, each shard runs its
	// eviction tick (default 1s). Ticks advance with selected
	// traffic; Drain covers quiet periods.
	TickIntervalUS uint64

	// ShardByteBudget caps reassembly buffering per shard;
	// least-recently-active flows are evicted (and tail-analyzed)
	// beyond it (default 64 MiB).
	ShardByteBudget int

	// DatagramFlows enables conversation tracking for non-TCP traffic:
	// each direction of a datagram exchange accumulates into an
	// idle-windowed buffer (with per-datagram boundaries preserved)
	// that is concatenated-and-swept like a TCP stream, so payload
	// spread across many datagrams — CoAP block transfers, chunked DNS
	// abuse — is analyzed whole. Off by default: single-datagram
	// analysis behavior is then byte-identical to prior releases.
	DatagramFlows bool

	// DatagramIdleUS is the idle window for datagram conversations in
	// trace microseconds: a datagram flow quiet this long is evicted
	// (its buffered tail analyzed first). Defaults to
	// FlowIdleTimeoutUS; set lower to expire chatty short exchanges
	// ahead of TCP flows. Also bounds the flow-open dedup window when
	// DatagramFlows is off.
	DatagramIdleUS uint64

	// VerdictCacheSize is the payload-fingerprint cache capacity in
	// entries: 0 selects the default (8192), negative disables the
	// cache.
	VerdictCacheSize int

	// MinAnalyzeBytes is the stream size that triggers a first
	// analysis before the connection closes (default 256).
	MinAnalyzeBytes int

	// FullScan disables classification pruning and binary extraction
	// (the exhaustive baseline).
	FullScan bool

	// SweepOffsets overrides the analyzer's disassembly offsets.
	SweepOffsets []int

	// Lineage enables structural-fingerprint computation: frames whose
	// analysis produced detections are additionally sketched
	// (template/statement symbols plus the emulator-decoded tail, see
	// sem.Sketch) and the sketch rides the alert/fingerprint events —
	// the input to payload lineage tracing. Sketches are memoized in
	// the verdict cache alongside detections, so the emulation cost is
	// paid once per distinct hostile payload, never for benign frames.
	Lineage bool

	// OnAlert, when non-nil, is invoked synchronously for each alert
	// (from shard goroutines).
	OnAlert func(core.Alert)

	// Telemetry receives the engine's live metric series (counters and
	// gauges bridged at scrape time, latency histograms fed from the
	// hot path). Nil creates a private registry, so instrumentation
	// handles are always valid and the hot path carries no nil checks;
	// pass a shared registry to expose the series over HTTP. Each
	// engine needs its own registry (per-shard series are named by
	// shard id).
	Telemetry *telemetry.Registry

	// OnEvent, when non-nil, taps the shard hot path: flow opens,
	// alerts (with payload fingerprints), per-frame fingerprint
	// observations and flow evictions are published as typed events —
	// the feed the incident correlator consumes. Events are plain
	// values; a nil tap costs a single branch and no allocation.
	// Invoked from shard goroutines; alert/fingerprint events carry
	// fingerprints even when the verdict cache is disabled.
	OnEvent func(core.Event)
}

// Metrics is a snapshot of engine counters and gauges.
type Metrics struct {
	// Packets offered to the engine; Selected passed classification;
	// Dropped were shed under overload (PolicyShed only).
	Packets, Selected, Dropped uint64

	// StreamsAnalyzed, Frames, FrameBytes and Alerts mirror the batch
	// pipeline's counters.
	StreamsAnalyzed, Frames, FrameBytes, Alerts uint64

	// CacheHits and CacheMisses count verdict-cache lookups; a hit
	// skips disassembly, lifting and matching entirely.
	CacheHits, CacheMisses uint64

	// FlowsEvictedIdle and FlowsEvictedLRU count tick evictions (the
	// evicted flows' unanalyzed tails were analyzed first).
	// FlowsEvictedUDPIdle counts datagram flows expired by the
	// dedicated datagram idle window (DatagramIdleUS tighter than
	// FlowIdleTimeoutUS).
	FlowsEvictedIdle, FlowsEvictedLRU, FlowsEvictedUDPIdle uint64

	// CacheRejected counts inserts the verdict cache's TinyLFU
	// admission policy refused (one-shot payloads kept from churning
	// hot entries).
	CacheRejected uint64

	// Sketches counts structural-fingerprint computations (lineage
	// mode: detected frames emulated and sketched; cache hits reuse
	// the memoized sketch and are not counted).
	Sketches uint64

	// FlowsActive and BufferedBytes are gauges summed over shards;
	// CacheEntries is the verdict cache's current size.
	// UDPFlowsActive and UDPBufferedBytes are the datagram-flow subset
	// of those gauges (zero with DatagramFlows off).
	FlowsActive      int
	BufferedBytes    int
	UDPFlowsActive   int
	UDPBufferedBytes int
	CacheEntries     int

	// Shards holds per-shard load gauges, indexed by shard id — the
	// overload early-warning: queue depth climbing toward capacity
	// (or EWMA throughput flattening) is visible before Dropped
	// increments.
	Shards []ShardMetrics
}

// ShardMetrics is one shard's load view.
type ShardMetrics struct {
	// QueueLen counts the packets currently dispatched to the shard
	// and not yet processed (including the batch in progress);
	// QueueCap is the configured QueueDepth.
	QueueLen, QueueCap int

	// PacketsPerSec is an exponentially-weighted moving average of the
	// shard's processing rate in trace time, updated at each lifecycle
	// tick.
	PacketsPerSec float64
}

// Engine is a running streaming detector. Feed packets with Process
// (or the public wrappers) from one goroutine; analysis runs on the
// shard goroutines.
type Engine struct {
	cfg        Config
	classifier *classify.Classifier
	analyzer   *sem.Analyzer
	cache      *verdictCache
	shards     []*shard

	// feeder is the default ingestion handle behind Engine.Process;
	// parallel capture loops create their own with NewFeeder. feedMu
	// serializes its batching state so Drain/Stop (which flush it) can
	// run concurrently with a Process loop, as they always could — an
	// uncontended lock costs nanoseconds against the per-packet
	// classification work.
	feedMu sync.Mutex
	feeder *Feeder

	mu     sync.Mutex
	alerts []core.Alert

	stopOnce sync.Once
	stopped  atomic.Bool

	m struct {
		packets, selected, dropped          atomic.Uint64
		streams, frames, frameBytes, alerts atomic.Uint64
		cacheHits, cacheMisses              atomic.Uint64
		evictedIdle, evictedLRU             atomic.Uint64
		evictedDgram                        atomic.Uint64
		sketches                            atomic.Uint64
	}

	// tel holds the hot-path telemetry handles. The registry itself
	// mostly bridges the m counters via scrape-time funcs; only the
	// latency histograms are written from the packet path, and each
	// write is a handful of atomic adds (0 allocs, pinned by
	// TestEngineTelemetryAllocs).
	tel struct {
		reg *telemetry.Registry

		// ingestNS: batch first-append to batch fully analyzed (the
		// ingest→verdict pipeline latency, batch-amortized so the hot
		// path pays one clock read per batch, not per packet).
		// dispatchWaitNS: time a feeder spent blocked handing a batch
		// to a full shard queue (backpressure wait; ~0 when healthy).
		// frameNS: one semantic analysis of one frame (cache misses
		// and uncached runs; hits bypass analysis and the clock).
		ingestNS       *telemetry.Histogram
		dispatchWaitNS *telemetry.Histogram
		frameNS        *telemetry.Histogram
	}
}

// New builds and starts an engine: its shard goroutines run until
// Stop.
func New(cfg Config) *Engine {
	if cfg.SensorID == "" {
		cfg.SensorID = "sensor"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.BatchSize > cfg.QueueDepth {
		cfg.BatchSize = cfg.QueueDepth
	}
	if cfg.FlowIdleTimeoutUS == 0 {
		cfg.FlowIdleTimeoutUS = 60e6
	}
	if cfg.DatagramIdleUS == 0 {
		cfg.DatagramIdleUS = cfg.FlowIdleTimeoutUS
	}
	if cfg.TickIntervalUS == 0 {
		cfg.TickIntervalUS = 1e6
	}
	if cfg.ShardByteBudget <= 0 {
		cfg.ShardByteBudget = 64 << 20
	}
	if cfg.MinAnalyzeBytes <= 0 {
		cfg.MinAnalyzeBytes = 256
	}
	if cfg.FullScan {
		cfg.Classify.Disabled = true
	}
	if cfg.Templates == nil {
		cfg.Templates = sem.BuiltinTemplates()
	}
	e := &Engine{
		cfg:        cfg,
		classifier: classify.New(cfg.Classify),
		analyzer:   sem.NewAnalyzer(cfg.Templates),
	}
	if cfg.SweepOffsets != nil {
		e.analyzer.SweepOffsets = cfg.SweepOffsets
	} else if cfg.FullScan {
		e.analyzer.SweepOffsets = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	if cfg.VerdictCacheSize >= 0 {
		size := cfg.VerdictCacheSize
		if size == 0 {
			size = 8192
		}
		e.cache = newVerdictCache(size)
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	e.registerTelemetry()
	for _, s := range e.shards {
		go s.run()
	}
	e.feeder = e.NewFeeder()
	return e
}

// registerTelemetry installs the engine's metric series. Counters the
// engine already maintains are bridged with scrape-time funcs (zero
// hot-path cost); only the latency histograms are recorded inline.
func (e *Engine) registerTelemetry() {
	if e.cfg.Telemetry == nil {
		e.cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := e.cfg.Telemetry
	e.tel.reg = reg

	cf := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, v.Load)
	}
	cf("semnids_engine_packets_total", "Packets offered to the engine.", &e.m.packets)
	cf("semnids_engine_selected_total", "Packets passing classification into shard analysis.", &e.m.selected)
	cf("semnids_engine_dropped_total", "Packets shed under overload (PolicyShed).", &e.m.dropped)
	cf("semnids_engine_streams_analyzed_total", "Stream views handed to extraction+analysis.", &e.m.streams)
	cf("semnids_engine_frames_total", "Frames extracted and resolved.", &e.m.frames)
	cf("semnids_engine_frame_bytes_total", "Bytes across resolved frames.", &e.m.frameBytes)
	cf("semnids_engine_alerts_total", "Deduplicated detections emitted.", &e.m.alerts)
	cf("semnids_engine_cache_hits_total", "Verdict-cache hits (analysis skipped).", &e.m.cacheHits)
	cf("semnids_engine_cache_misses_total", "Verdict-cache misses (analysis ran).", &e.m.cacheMisses)
	cf(`semnids_engine_flows_evicted_total{reason="idle"}`, "Flows evicted by lifecycle ticks.", &e.m.evictedIdle)
	cf(`semnids_engine_flows_evicted_total{reason="lru"}`, "Flows evicted by lifecycle ticks.", &e.m.evictedLRU)
	if e.cfg.DatagramFlows {
		cf(`semnids_engine_flows_evicted_total{reason="udp-idle"}`, "Datagram flows expired by the datagram idle window.", &e.m.evictedDgram)
	}
	if e.cfg.Lineage {
		cf("semnids_lineage_sketches_total", "Structural-fingerprint computations (detected frames sketched).", &e.m.sketches)
	}
	if e.cache != nil {
		reg.CounterFunc("semnids_engine_cache_rejected_total", "Verdict-cache inserts refused by TinyLFU admission.", e.cache.rejects)
		reg.GaugeFunc("semnids_engine_cache_entries", "Verdict-cache occupancy.", func() int64 { return int64(e.cache.len()) })
	}
	reg.GaugeFunc("semnids_engine_flows_active", "Tracked flows summed over shards.", func() int64 {
		var n int64
		for _, s := range e.shards {
			n += s.flows.Load()
		}
		return n
	})
	reg.GaugeFunc("semnids_engine_buffered_bytes", "Reassembly bytes buffered, summed over shards.", func() int64 {
		var n int64
		for _, s := range e.shards {
			n += s.bytes.Load()
		}
		return n
	})
	if e.cfg.DatagramFlows {
		reg.GaugeFunc("semnids_engine_udp_flows_active", "Tracked datagram flows summed over shards.", func() int64 {
			var n int64
			for _, s := range e.shards {
				n += s.dgramFlows.Load()
			}
			return n
		})
		reg.GaugeFunc("semnids_engine_udp_buffered_bytes", "Datagram-flow bytes buffered, summed over shards.", func() int64 {
			var n int64
			for _, s := range e.shards {
				n += s.dgramBytes.Load()
			}
			return n
		})
	}
	for _, s := range e.shards {
		s := s
		id := strconv.Itoa(s.id)
		reg.GaugeFunc(`semnids_engine_shard_queue_depth{shard="`+id+`"}`,
			"Packets dispatched to the shard and not yet analyzed.", s.queued.Load)
		reg.GaugeFunc(`semnids_engine_shard_pps{shard="`+id+`"}`,
			"EWMA shard processing rate, packets per trace-second.", func() int64 {
				return int64(math.Float64frombits(s.ewmaPPS.Load()))
			})
	}
	e.tel.ingestNS = reg.Histogram("semnids_engine_ingest_latency_ns",
		"Batch first-packet to batch fully analyzed (ingest-to-verdict).")
	e.tel.dispatchWaitNS = reg.Histogram("semnids_engine_dispatch_wait_ns",
		"Feeder blocked handing a batch to a full shard queue (backpressure).")
	e.tel.frameNS = reg.Histogram("semnids_analyzer_frame_ns",
		"One semantic analysis of one extracted frame (cache misses only).")
}

// Telemetry returns the engine's metric registry (the configured one,
// or the private default).
func (e *Engine) Telemetry() *telemetry.Registry { return e.cfg.Telemetry }

// Classifier exposes the shared classification stage (e.g. to
// pre-register suspicious sources).
func (e *Engine) Classifier() *classify.Classifier { return e.classifier }

// SensorID returns the engine's federation identity (Config.SensorID
// after defaulting).
func (e *Engine) SensorID() string { return e.cfg.SensorID }

// FlowHash maps a directional flow key to a bucket in [0, n) with an
// FNV-1a hash — the engine's shard-ownership function, exported so
// parallel capture loops can partition packets across Feeders with
// the same flow affinity the shards use.
func FlowHash(k netpkt.FlowKey, n int) int {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h = (h ^ uint64(b)) * prime
	}
	src, dst := k.SrcIP.As16(), k.DstIP.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return int(h % uint64(n))
}

// shardIndex maps a flow to its owning shard, so every packet of a
// flow is handled by one goroutine in arrival order.
func shardIndex(k netpkt.FlowKey, n int) int {
	if n == 1 {
		return 0
	}
	return FlowHash(k, n)
}

// Process offers one parsed packet to the engine, which takes
// ownership of it (pooled packets are released once fully handled).
// Call from a single goroutine (the capture or replay loop) — or use
// per-goroutine Feeders from NewFeeder for parallel ingestion.
// Packets offered after Stop are ignored.
func (e *Engine) Process(p *netpkt.Packet) {
	e.feedMu.Lock()
	e.feeder.Process(p)
	e.feedMu.Unlock()
}

// Drain dispatches the default feeder's buffered batches, waits for
// every queued packet to be analyzed, then analyzes the unfinished
// tail of every in-progress flow and resets per-flow state. Unlike
// the batch pipeline's Flush, the engine stays live: the next trace
// (or the next packet of live capture) can follow immediately.
// Callers feeding through their own Feeders must Flush each of them
// first. No-op after Stop.
func (e *Engine) Drain() {
	if e.stopped.Load() {
		return
	}
	e.feedMu.Lock()
	e.feeder.Flush()
	e.feedMu.Unlock()
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	c := &ctl{wg: &wg}
	for _, s := range e.shards {
		s.in <- shardMsg{ctl: c}
	}
	wg.Wait()
}

// Stop dispatches buffered batches, drains in-flight work, analyzes
// remaining flow tails, and terminates the shard goroutines.
// Idempotent and safe to call concurrently with alert and metric
// reads. Feeders created with NewFeeder must not be fed during Stop
// (their Flush afterwards is safe: batches are released, not sent).
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		e.feedMu.Lock()
		e.feeder.Flush()
		e.stopped.Store(true)
		e.feedMu.Unlock()
		for _, s := range e.shards {
			close(s.in)
		}
		for _, s := range e.shards {
			<-s.done
		}
	})
}

// Alerts returns all alerts recorded so far (arrival order; complete
// for a trace after Drain or Stop).
func (e *Engine) Alerts() []core.Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]core.Alert, len(e.alerts))
	copy(out, e.alerts)
	return out
}

// Snapshot returns current counters and gauges.
func (e *Engine) Snapshot() Metrics {
	m := Metrics{
		Packets:             e.m.packets.Load(),
		Selected:            e.m.selected.Load(),
		Dropped:             e.m.dropped.Load(),
		StreamsAnalyzed:     e.m.streams.Load(),
		Frames:              e.m.frames.Load(),
		FrameBytes:          e.m.frameBytes.Load(),
		Alerts:              e.m.alerts.Load(),
		CacheHits:           e.m.cacheHits.Load(),
		CacheMisses:         e.m.cacheMisses.Load(),
		FlowsEvictedIdle:    e.m.evictedIdle.Load(),
		FlowsEvictedLRU:     e.m.evictedLRU.Load(),
		FlowsEvictedUDPIdle: e.m.evictedDgram.Load(),
		Sketches:            e.m.sketches.Load(),
	}
	m.Shards = make([]ShardMetrics, len(e.shards))
	for i, s := range e.shards {
		m.FlowsActive += int(s.flows.Load())
		m.BufferedBytes += int(s.bytes.Load())
		m.UDPFlowsActive += int(s.dgramFlows.Load())
		m.UDPBufferedBytes += int(s.dgramBytes.Load())
		// queued accounting is exact: incremented before a batch is
		// sent, decremented per packet as each completes, so the load
		// is never negative and needs no clamp.
		m.Shards[i] = ShardMetrics{
			QueueLen:      int(s.queued.Load()),
			QueueCap:      e.cfg.QueueDepth,
			PacketsPerSec: math.Float64frombits(s.ewmaPPS.Load()),
		}
	}
	if e.cache != nil {
		m.CacheEntries = e.cache.len()
		m.CacheRejected = e.cache.rejects()
	}
	return m
}
