package engine

import (
	"net/netip"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

// TestSoakBoundedMemory runs the engine over a million packets of
// long-lived flows that never finish — the workload that made the
// batch pipeline's flow tables grow without bound. The engine must
// complete with buffered bytes held near the configured budget and
// flow-table memory bounded, with evictions visible in the metrics.
func TestSoakBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		totalPackets = 1_000_000
		flowCount    = 4096
		payloadLen   = 120
		shards       = 4
		budget       = 2 << 20 // per shard
	)
	e := New(Config{
		Classify:          classify.Config{Disabled: true},
		Shards:            shards,
		QueueDepth:        4096,
		FlowIdleTimeoutUS: 2e6,
		TickIntervalUS:    1e5,
		ShardByteBudget:   budget,
	})
	defer e.Stop()

	// Deterministic letter soup: incompressible enough to not trigger
	// the repetition extractor, plain text so extraction stays cheap.
	text := make([]byte, payloadLen)
	rng := uint32(0x2545f491)
	for i := range text {
		rng = rng*1664525 + 1013904223
		text[i] = byte('a' + (rng>>24)%26)
	}

	srcs := make([]netip.Addr, flowCount)
	for i := range srcs {
		srcs[i] = netip.AddrFrom4([4]byte{10, 3, byte(i >> 8), byte(i)})
	}
	seqs := make([]uint32, flowCount)

	maxBuffered, maxFlows := 0, 0
	for n := 0; n < totalPackets; n++ {
		i := n % flowCount
		e.Process(&netpkt.Packet{
			SrcIP: srcs[i], DstIP: traffic.WebServer,
			SrcPort: uint16(10000 + i%50000), DstPort: 80,
			Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagACK,
			Seq: seqs[i], Payload: text, TimestampUS: uint64(n) * 20,
		})
		seqs[i] += payloadLen
		if n%50_000 == 0 {
			m := e.Snapshot()
			if m.BufferedBytes > maxBuffered {
				maxBuffered = m.BufferedBytes
			}
			if m.FlowsActive > maxFlows {
				maxFlows = m.FlowsActive
			}
		}
	}
	e.Drain()
	m := e.Snapshot()

	if m.Packets != totalPackets {
		t.Fatalf("processed %d packets, want %d", m.Packets, totalPackets)
	}
	if m.FlowsEvictedLRU == 0 && m.FlowsEvictedIdle == 0 {
		t.Fatalf("no evictions over %d MB of stream data: %+v",
			totalPackets*payloadLen>>20, m)
	}
	// The budget is enforced at tick granularity, so allow transient
	// overshoot of one tick's ingest; 2x total budget is generous.
	if limit := 2 * shards * budget; maxBuffered > limit {
		t.Errorf("buffered bytes peaked at %d, budget limit %d", maxBuffered, limit)
	}
	if maxFlows > flowCount {
		t.Errorf("flow gauge peaked at %d with only %d distinct flows", maxFlows, flowCount)
	}
	if m.FlowsActive != 0 || m.BufferedBytes != 0 {
		t.Errorf("state after drain: flows=%d bytes=%d, want 0/0", m.FlowsActive, m.BufferedBytes)
	}
	if m.Alerts != 0 {
		t.Errorf("benign soak raised %d alerts", m.Alerts)
	}
	t.Logf("soak: %d pkts, peak buffered=%dB (budget %dB/shard x %d), peak flows=%d, evicted idle=%d lru=%d, streams analyzed=%d",
		totalPackets, maxBuffered, budget, shards, maxFlows,
		m.FlowsEvictedIdle, m.FlowsEvictedLRU, m.StreamsAnalyzed)
}
