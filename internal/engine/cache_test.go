package engine

import (
	"fmt"
	"net/netip"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/exploits"
	"semnids/internal/sem"
	"semnids/internal/traffic"
)

// TestCacheAdmissionScanChurn is the TinyLFU doorkeeper's reason to
// exist: a hot fingerprint (a worm payload seen constantly) must
// survive a scan spraying one-shot payloads through a full cache.
// Without admission, capacity+1 distinct one-shots would evict it.
func TestCacheAdmissionScanChurn(t *testing.T) {
	const capacity = 32
	c := newVerdictCache(capacity)

	hot := core.FingerprintOf([]byte("worm payload"))
	verdict := []sem.Detection{{Template: "code-red-ii", Severity: "high"}}

	// Establish the hot entry and its popularity.
	c.get(hot)
	c.put(hot, verdict, sem.Sketch{})
	for i := 0; i < 64; i++ {
		if _, _, ok := c.get(hot); !ok {
			t.Fatal("hot entry lost while cache not yet full")
		}
	}

	// The scan: 100x capacity distinct payloads, each seen exactly
	// once — miss, analyze, insert attempt — while the worm keeps
	// delivering its (hot) payload in between.
	for i := 0; i < 100*capacity; i++ {
		oneShot := core.FingerprintOf([]byte(fmt.Sprintf("scan-%d", i)))
		if _, _, ok := c.get(oneShot); ok {
			t.Fatalf("one-shot %d reported cached", i)
		}
		c.put(oneShot, nil, sem.Sketch{})
		if i%8 == 0 {
			if _, _, ok := c.get(hot); !ok {
				t.Fatalf("scan churned the hot fingerprint out after %d one-shots", i)
			}
		}
	}

	if _, _, ok := c.get(hot); !ok {
		t.Fatal("scan churned the hot fingerprint out of the cache")
	}
	if c.rejects() == 0 {
		t.Fatal("admission policy never rejected a one-shot insert")
	}
	if n := c.len(); n > capacity {
		t.Fatalf("cache size %d exceeds capacity %d", n, capacity)
	}
}

// TestCacheAdmissionLearnsNewHot checks admission is a filter, not a
// wall: a payload that keeps coming back accumulates sketch frequency
// and is eventually admitted over a cold victim.
func TestCacheAdmissionLearnsNewHot(t *testing.T) {
	const capacity = 16
	c := newVerdictCache(capacity)
	for i := 0; i < capacity; i++ {
		cold := core.FingerprintOf([]byte(fmt.Sprintf("cold-%d", i)))
		c.get(cold)
		c.put(cold, nil, sem.Sketch{})
	}
	newcomer := core.FingerprintOf([]byte("rising worm"))
	admitted := false
	for i := 0; i < 32 && !admitted; i++ {
		if _, _, ok := c.get(newcomer); ok {
			admitted = true
			break
		}
		c.put(newcomer, nil, sem.Sketch{})
	}
	if !admitted {
		t.Fatal("repeatedly seen payload was never admitted")
	}
}

// TestEventTap checks the shard hot path publishes the typed event
// feed the correlator consumes: flow opens for scans, fingerprint
// observations for analyzed frames, and alerts carrying the matched
// frame's fingerprint.
func TestEventTap(t *testing.T) {
	var events []core.Event
	done := make(chan struct{})
	evCh := make(chan core.Event, 1024)
	go func() {
		defer close(done)
		for ev := range evCh {
			events = append(events, ev)
		}
	}()

	e := New(Config{
		Classify: testClassify(),
		Shards:   2,
		OnEvent:  func(ev core.Event) { evCh <- ev },
	})
	g := traffic.NewGen(3)
	attacker := netip.MustParseAddr("10.1.2.3")
	for _, p := range g.ScanThenExploit(attacker, traffic.WebServer, 80, exploits.CodeRedIIRequest(), 4) {
		e.Process(p)
	}
	e.Stop()
	close(evCh)
	<-done

	var opens, fps, alerts int
	var alertFP core.Fingerprint
	fpSeen := map[core.Fingerprint]bool{}
	for _, ev := range events {
		if ev.Src != attacker {
			continue
		}
		switch ev.Kind {
		case core.EventFlowOpen:
			opens++
		case core.EventFingerprint:
			fps++
			fpSeen[ev.Fingerprint] = true
		case core.EventAlert:
			alerts++
			alertFP = ev.Fingerprint
		}
	}
	// Probes 3 and 4 of the scan are selected (threshold 3), plus the
	// delivery flow: at least 3 distinct flow opens.
	if opens < 3 {
		t.Errorf("flow-open events = %d, want >= 3", opens)
	}
	if alerts == 0 {
		t.Fatal("no alert events")
	}
	if alertFP.IsZero() {
		t.Error("alert event carries no fingerprint")
	}
	if fps == 0 {
		t.Fatal("no fingerprint events")
	}
	if !fpSeen[alertFP] {
		t.Error("alert fingerprint never appeared as a fingerprint event")
	}
}

// TestEWMAAndQueueGauges checks the per-shard load gauges surface.
func TestEWMAAndQueueGauges(t *testing.T) {
	e := New(Config{
		Classify:       classify.Config{Disabled: true},
		Shards:         2,
		TickIntervalUS: 1e4,
	})
	defer e.Stop()
	g := traffic.NewGen(5)
	for i := 0; i < 400; i++ {
		for _, p := range g.BenignSession() {
			e.Process(p)
		}
	}
	e.Drain()
	m := e.Snapshot()
	if len(m.Shards) != 2 {
		t.Fatalf("shard gauges = %d, want 2", len(m.Shards))
	}
	sawRate := false
	for i, sh := range m.Shards {
		if sh.QueueCap == 0 {
			t.Errorf("shard %d queue capacity gauge is zero", i)
		}
		if sh.PacketsPerSec > 0 {
			sawRate = true
		}
	}
	if !sawRate {
		t.Error("no shard reported a nonzero EWMA packets/sec")
	}
}
