package sem

import "semnids/internal/x86"

// Constants used by the shell-spawning template: the dwords pushed to
// build "/bin//sh" on the stack, and the execve / socketcall syscall
// numbers.
const (
	constBin  = 0x6e69622f // "/bin" little-endian
	constSh   = 0x68732f2f // "//sh"
	constShNl = 0x68732f6e // "n/sh" (used by "/bin/sh\0"-style builders)

	sysExecve     = 0x0b
	sysSocketcall = 0x66

	socketcallBind   = 2
	socketcallListen = 4
)

// Code Red II transfers control through an address inside msvcrt.dll
// (0x7801cbd3 in the original worm); this range covers the module.
const (
	codeRedLo = 0x78000000
	codeRedHi = 0x78200000
)

// XorDecryptLoop is the paper's Figure 2 template: a loop that applies
// a reversible ALU transform to successive memory bytes — the
// polymorphic decryption-loop behavior. It matches Figure 1(a), (b)
// and (c) alike thanks to constant folding, jump threading and junk
// tolerance in the matcher.
func XorDecryptLoop() *Template {
	return &Template{
		Name:        "xor-decrypt-loop",
		Description: "polymorphic decryption loop (xor/add/sub over memory with pointer advance and back edge)",
		Severity:    "high",
		Stmts: []Stmt{
			{
				// The transform vocabulary follows the paper's Figure
				// 2 template: reversible ALU operations with a
				// resolvable key. Wider vocabularies (rol/ror/not)
				// measurably raise the phantom-match rate on benign
				// binary content without being exercised by any
				// engine the paper evaluates; the mov/or/and/not
				// family is covered by the alternate-decoder template.
				Kind:    SMemXform,
				Ptr:     "A",
				Key:     "B",
				Ops:     []x86.Opcode{x86.XOR, x86.ADD, x86.SUB},
				MemSize: 1,
			},
			{Kind: SAdvance, Ptr: "A", MinDelta: 1, MaxDelta: 4},
			{Kind: SBackEdge},
		},
	}
}

// AltDecodeLoop is the paper's Figure 7 template, devised after manual
// inspection of ADMmutate output: a decoding scheme built from a
// sequence of mov, or, and and not instructions operating on a single
// memory location and register pair, with the usual pointer advance
// and loop structure.
func AltDecodeLoop() *Template {
	return &Template{
		Name:        "admmutate-alt-decode-loop",
		Description: "alternate ADMmutate decoder: mov/or/and/not sequence over a memory location and register pair",
		Severity:    "high",
		Stmts: []Stmt{
			{Kind: SMemLoad, Ptr: "A", Reg: "R", MemSize: 1},
			{
				Kind:   SRegXform,
				Ops:    []x86.Opcode{x86.MOV, x86.OR, x86.AND, x86.NOT},
				MinRep: 2,
				MaxRep: 12,
			},
			{Kind: SMemStore, Ptr: "A", MemSize: 1},
			{Kind: SAdvance, Ptr: "A", MinDelta: 1, MaxDelta: 4},
			{Kind: SBackEdge},
		},
	}
}

// ShellSpawn is the paper's Figure 6 template: code that spawns a
// shell on Linux — evidence of "/bin/sh" (pushed as immediates or
// present as a literal string) reaching an execve system call. Two
// variants share one name; the analyzer reports at most one detection
// per name.
func ShellSpawn() []*Template {
	return []*Template{
		{
			Name:        "linux-shell-spawn",
			Description: "Linux shell spawning: /bin/sh pushed as immediates, then execve (int 0x80, eax=0xb)",
			Severity:    "critical",
			Stmts: []Stmt{
				{Kind: SConst, Values: []uint32{constBin, constSh, constShNl}},
				{Kind: SSyscall, Num: sysExecve},
			},
		},
		{
			Name:        "linux-shell-spawn",
			Description: "Linux shell spawning: literal /bin/sh string in frame, then execve (int 0x80, eax=0xb)",
			Severity:    "critical",
			Stmts: []Stmt{
				{Kind: SFrameData, FrameBytes: []byte("/bin/sh")},
				{Kind: SSyscall, Num: sysExecve},
			},
		},
	}
}

// PortBindShell extends ShellSpawn for shells bound to a separate
// network port: a socketcall bind (or listen) precedes the spawn.
func PortBindShell() *Template {
	ebxBind := uint32(socketcallBind)
	return &Template{
		Name:        "port-bind-shell",
		Description: "shell bound to a separate port: socketcall bind before execve",
		Severity:    "critical",
		Stmts: []Stmt{
			{Kind: SSyscall, Num: sysSocketcall, EBX: &ebxBind},
			{Kind: SSyscall, Num: sysExecve},
		},
	}
}

// CodeRedII matches the initial exploitation vector of the Code Red II
// worm: control transferred through a loaded-module address in the
// msvcrt.dll range (the invariant return-address region the paper
// identifies: only the least significant byte may vary).
func CodeRedII() *Template {
	return &Template{
		Name:        "code-red-ii",
		Description: "Code Red II exploitation vector: indirect transfer through an msvcrt.dll address",
		Severity:    "critical",
		Stmts: []Stmt{
			{Kind: SConstInRange, Reg: "R", Lo: codeRedLo, Hi: codeRedHi},
			{Kind: SIndirect, Reg: "R"},
		},
	}
}

// BuiltinTemplates returns the template set evaluated in the paper:
// decryption loops (both schemes), Linux shell spawning with the
// port-binding extension, and the Code Red II vector.
func BuiltinTemplates() []*Template {
	out := []*Template{XorDecryptLoop(), AltDecodeLoop()}
	out = append(out, ShellSpawn()...)
	return append(out, PortBindShell(), CodeRedII())
}

// XorOnlyTemplates is the template set the paper used for the *first*
// ADMmutate experiment (Table 2, 68% detection): the xor decryption
// template without the alternate mov/or/and/not decoder.
func XorOnlyTemplates() []*Template {
	out := []*Template{XorDecryptLoop()}
	out = append(out, ShellSpawn()...)
	return append(out, PortBindShell(), CodeRedII())
}
