package sem

import (
	"math/rand"
	"testing"

	"semnids/internal/x86"
)

// junkFrame returns a deterministic junk-heavy frame (the common case
// for an analyzer fed by a sensor: binary data that is not an
// exploit).
func junkFrame(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestAnalyzeFrameAllocs pins the steady-state allocation behavior of
// the hot path: analyzing a benign frame with a warmed scratch pool
// must not allocate per frame beyond a tiny fixed slack (the scratch
// pool itself may be repopulated after a GC).
func TestAnalyzeFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	a := NewAnalyzer(BuiltinTemplates())
	frame := junkFrame(42, 2048)
	// Warm up: grows the pooled scratch to frame size and compiles the
	// templates.
	for i := 0; i < 3; i++ {
		if ds := a.AnalyzeFrame(frame); len(ds) != 0 {
			t.Fatalf("junk frame unexpectedly detected: %v", ds)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		a.AnalyzeFrame(frame)
	})
	// The old matcher allocated two maps per candidate node — hundreds
	// of thousands of objects for a frame this size. Steady state is
	// now zero; 2 leaves slack for pool refills after a GC cycle.
	if allocs > 2 {
		t.Errorf("AnalyzeFrame allocates %.1f objects per benign frame, want <= 2", allocs)
	}
}

// TestAnalyzeFrameCachedEquivalence asserts that analysis through a
// pre-built (extraction-shared) decode cache produces exactly the same
// detections as the self-contained path, over junk, text and
// detection-triggering frames.
func TestAnalyzeFrameCachedEquivalence(t *testing.T) {
	a := NewAnalyzer(BuiltinTemplates())
	frames := [][]byte{
		junkFrame(1, 64),
		junkFrame(2, 1024),
		junkFrame(3, 4096),
	}
	// A frame that actually triggers the xor template: xor byte
	// [esi], 0x55; inc esi; jnz back.
	frames = append(frames, []byte{
		0x80, 0x36, 0x55, // xor byte [esi], 0x55
		0x46,       // inc esi
		0x75, 0xfa, // jnz -6
	})
	for i, frame := range frames {
		plain := a.AnalyzeFrame(frame)
		cache := x86.NewDecodeCache(frame)
		// Pre-sweep offset 0 as the extraction stage's code-ratio
		// estimate does, then analyze through the same cache.
		cache.CodeRatio()
		cached := a.AnalyzeFrameCached(frame, cache)
		if len(plain) != len(cached) {
			t.Fatalf("frame %d: %d detections plain, %d cached", i, len(plain), len(cached))
		}
		for j := range plain {
			if plain[j].String() != cached[j].String() {
				t.Errorf("frame %d detection %d: plain %v, cached %v", i, j, plain[j], cached[j])
			}
			for k, v := range plain[j].Bindings {
				if cached[j].Bindings[k] != v {
					t.Errorf("frame %d detection %d binding %s: plain %s, cached %s",
						i, j, k, v, cached[j].Bindings[k])
				}
			}
		}
	}
}

// TestTemplateCompileIdempotent asserts Compile is a safe no-op when
// repeated and that compiled state survives concurrent first use.
func TestTemplateCompileIdempotent(t *testing.T) {
	tpl := XorDecryptLoop()
	c1 := tpl.Compile().compiled()
	c2 := tpl.Compile().compiled()
	if c1 != c2 {
		t.Fatal("Compile rebuilt the compiled form")
	}
	done := make(chan *compiledTemplate, 8)
	fresh := AltDecodeLoop()
	for i := 0; i < 8; i++ {
		go func() { done <- fresh.compiled() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent compilation produced distinct compiled forms")
		}
	}
}

// TestCompiledPrefilterSuperset asserts the opcode prefilter never
// rejects an order the full search would match: every statement kind's
// mask must accept every opcode matchStmt can accept. It drives the
// matcher over single-instruction sequences for each opcode and
// cross-checks against the mask.
func TestCompiledPrefilterSuperset(t *testing.T) {
	kinds := []Stmt{
		{Kind: SMemLoad},
		{Kind: SMemStore},
		{Kind: SAdvance},
		{Kind: SBackEdge},
		{Kind: SSyscall, Num: 1},
		{Kind: SConstInRange, Lo: 1, Hi: 2},
		{Kind: SIndirect},
	}
	for _, st := range kinds {
		mask, restricted := stmtOpMask(&st)
		if !restricted {
			continue
		}
		// Masks must cover at least the opcodes the matcher's
		// acceptance logic names for the kind; spot-check a few known
		// required members.
		var need []x86.Opcode
		switch st.Kind {
		case SMemLoad:
			need = []x86.Opcode{x86.MOV, x86.LODSB, x86.LODSD}
		case SMemStore:
			need = []x86.Opcode{x86.MOV, x86.STOSB, x86.STOSD}
		case SAdvance:
			need = []x86.Opcode{x86.INC, x86.DEC, x86.ADD, x86.SUB, x86.LEA}
		case SBackEdge:
			need = []x86.Opcode{x86.JCC, x86.LOOP, x86.LOOPE, x86.LOOPNE, x86.JECXZ}
		case SSyscall:
			need = []x86.Opcode{x86.INT}
		case SConstInRange:
			need = []x86.Opcode{x86.MOV, x86.PUSH}
		case SIndirect:
			need = []x86.Opcode{x86.CALL, x86.JMP}
		}
		for _, op := range need {
			if !mask.Has(op) {
				t.Errorf("kind %d: prefilter mask missing opcode %v", st.Kind, op)
			}
		}
	}
}
