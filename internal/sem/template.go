// Package sem implements the paper's semantic analyzer: behavioral
// templates over the IR and a unification-based matcher that is robust
// to NOP insertion, junk instructions, out-of-order code (via
// jump-threaded execution order) and register reassignment (via
// template variables).
//
// A template is a sequence of abstract statements over named variables.
// Following the formalization the paper borrows from Christodorescu et
// al. [5]: a program P satisfies a template T iff P contains an
// instruction sequence exhibiting the behavior specified by T. The
// matcher searches for an in-order (not necessarily contiguous)
// assignment of template statements to program instructions under a
// consistent variable binding, with bound registers not clobbered by
// intervening instructions while live.
package sem

import (
	"fmt"

	"semnids/internal/x86"
)

// StmtKind enumerates the abstract statement vocabulary used by the
// built-in templates.
type StmtKind uint8

const (
	// SMemXform matches an ALU transform of a byte/word in memory:
	// op [Ptr], key — the heart of a decryption loop. Ops restricts
	// the opcode set; Key (optional) binds the key constant when it
	// can be resolved.
	SMemXform StmtKind = iota

	// SMemLoad matches mov RegVar, [Ptr].
	SMemLoad

	// SMemStore matches mov [Ptr], reg.
	SMemStore

	// SRegXform matches a register-destination transform whose opcode
	// is in Ops. It does not bind registers; combined with
	// surrounding load/store statements it captures "a sequence of
	// mov/or/and/not operations on a memory location and register
	// pair" (the alternate ADMmutate scheme). MinRep/MaxRep control
	// repetition.
	SRegXform

	// SAdvance matches an instruction that adds a constant delta with
	// |delta| in [MinDelta, MaxDelta] to the register bound to Ptr.
	SAdvance

	// SBackEdge matches a conditional control transfer whose target
	// is an already-matched or earlier instruction — the loop
	// back-edge.
	SBackEdge

	// SSyscall matches int 0x80 with EAX holding Num; EBX, when
	// non-nil, must also hold *EBX.
	SSyscall

	// SConst matches any instruction materializing or using one of
	// Values as an immediate or a known register constant.
	SConst

	// SConstInRange matches an instruction loading a constant in
	// [Lo, Hi] into a register, binding Reg.
	SConstInRange

	// SIndirect matches call/jmp through the register bound to Reg
	// (directly or as a memory base).
	SIndirect

	// SFrameData is a zero-width predicate on the raw frame bytes:
	// the byte string Data must occur somewhere in the frame. Used
	// for evidence like the literal "/bin/sh" string referenced via
	// jmp/call/pop addressing.
	SFrameData
)

// Stmt is one template statement.
type Stmt struct {
	Kind StmtKind

	Ptr string // pointer variable name (SMemXform, SMemLoad, SMemStore, SAdvance)
	Reg string // register variable name (SMemLoad, SConstInRange, SIndirect)
	Key string // key variable name; binds the resolved key constant (SMemXform)

	Ops []x86.Opcode // allowed opcodes (SMemXform, SRegXform)

	// MemSize restricts the memory access width in bytes for
	// SMemXform/SMemLoad/SMemStore (0 = any width).
	MemSize uint8

	MinDelta, MaxDelta int64 // |delta| bounds for SAdvance

	Num uint32  // syscall number for SSyscall
	EBX *uint32 // required EBX for SSyscall, nil for don't-care

	Values []uint32 // accepted constants for SConst
	Lo, Hi uint32   // constant range for SConstInRange

	MinRep, MaxRep int // repetition for SRegXform (0,0 = exactly one)

	// FrameBytes is the byte string an SFrameData statement requires
	// somewhere in the raw frame.
	FrameBytes []byte

	// Optional marks a statement that may be skipped entirely.
	Optional bool
}

// Template is a named behavior specification.
type Template struct {
	Name        string
	Description string
	Stmts       []Stmt
	// Severity is a coarse label carried into alerts.
	Severity string
}

func (t *Template) String() string {
	return fmt.Sprintf("template %s (%d statements)", t.Name, len(t.Stmts))
}

// Binding is the variable assignment produced by a successful match.
type Binding struct {
	Regs map[string]x86.Reg // variable -> bound register family
	Keys map[string]uint32  // key variable -> resolved constant
}

func newBinding() *Binding {
	return &Binding{Regs: make(map[string]x86.Reg), Keys: make(map[string]uint32)}
}

func (b *Binding) clone() *Binding {
	nb := newBinding()
	for k, v := range b.Regs {
		nb.Regs[k] = v
	}
	for k, v := range b.Keys {
		nb.Keys[k] = v
	}
	return nb
}

// bindReg unifies var name with register family r.
func (b *Binding) bindReg(name string, r x86.Reg) bool {
	if name == "" {
		return true
	}
	fam := r.Family()
	if cur, ok := b.Regs[name]; ok {
		return cur == fam
	}
	b.Regs[name] = fam
	return true
}

// Detection reports one matched template within a frame.
type Detection struct {
	Template    string
	Description string
	Severity    string
	// Addrs are the frame offsets of the matched instructions.
	Addrs []int
	// Bindings renders the variable assignment for the alert.
	Bindings map[string]string
	// Order records which instruction order matched ("threaded" or "raw").
	Order string
}

func (d Detection) String() string {
	return fmt.Sprintf("%s at %v (%s)", d.Template, d.Addrs, d.Order)
}
