// Package sem implements the paper's semantic analyzer: behavioral
// templates over the IR and a unification-based matcher that is robust
// to NOP insertion, junk instructions, out-of-order code (via
// jump-threaded execution order) and register reassignment (via
// template variables).
//
// A template is a sequence of abstract statements over named variables.
// Following the formalization the paper borrows from Christodorescu et
// al. [5]: a program P satisfies a template T iff P contains an
// instruction sequence exhibiting the behavior specified by T. The
// matcher searches for an in-order (not necessarily contiguous)
// assignment of template statements to program instructions under a
// consistent variable binding, with bound registers not clobbered by
// intervening instructions while live.
package sem

import (
	"fmt"
	"sync"

	"semnids/internal/x86"
)

// StmtKind enumerates the abstract statement vocabulary used by the
// built-in templates.
type StmtKind uint8

const (
	// SMemXform matches an ALU transform of a byte/word in memory:
	// op [Ptr], key — the heart of a decryption loop. Ops restricts
	// the opcode set; Key (optional) binds the key constant when it
	// can be resolved.
	SMemXform StmtKind = iota

	// SMemLoad matches mov RegVar, [Ptr].
	SMemLoad

	// SMemStore matches mov [Ptr], reg.
	SMemStore

	// SRegXform matches a register-destination transform whose opcode
	// is in Ops. It does not bind registers; combined with
	// surrounding load/store statements it captures "a sequence of
	// mov/or/and/not operations on a memory location and register
	// pair" (the alternate ADMmutate scheme). MinRep/MaxRep control
	// repetition.
	SRegXform

	// SAdvance matches an instruction that adds a constant delta with
	// |delta| in [MinDelta, MaxDelta] to the register bound to Ptr.
	SAdvance

	// SBackEdge matches a conditional control transfer whose target
	// is an already-matched or earlier instruction — the loop
	// back-edge.
	SBackEdge

	// SSyscall matches int 0x80 with EAX holding Num; EBX, when
	// non-nil, must also hold *EBX.
	SSyscall

	// SConst matches any instruction materializing or using one of
	// Values as an immediate or a known register constant.
	SConst

	// SConstInRange matches an instruction loading a constant in
	// [Lo, Hi] into a register, binding Reg.
	SConstInRange

	// SIndirect matches call/jmp through the register bound to Reg
	// (directly or as a memory base).
	SIndirect

	// SFrameData is a zero-width predicate on the raw frame bytes:
	// the byte string Data must occur somewhere in the frame. Used
	// for evidence like the literal "/bin/sh" string referenced via
	// jmp/call/pop addressing.
	SFrameData
)

// Stmt is one template statement.
type Stmt struct {
	Kind StmtKind

	Ptr string // pointer variable name (SMemXform, SMemLoad, SMemStore, SAdvance)
	Reg string // register variable name (SMemLoad, SConstInRange, SIndirect)
	Key string // key variable name; binds the resolved key constant (SMemXform)

	Ops []x86.Opcode // allowed opcodes (SMemXform, SRegXform)

	// MemSize restricts the memory access width in bytes for
	// SMemXform/SMemLoad/SMemStore (0 = any width).
	MemSize uint8

	MinDelta, MaxDelta int64 // |delta| bounds for SAdvance

	Num uint32  // syscall number for SSyscall
	EBX *uint32 // required EBX for SSyscall, nil for don't-care

	Values []uint32 // accepted constants for SConst
	Lo, Hi uint32   // constant range for SConstInRange

	MinRep, MaxRep int // repetition for SRegXform (0,0 = exactly one)

	// FrameBytes is the byte string an SFrameData statement requires
	// somewhere in the raw frame.
	FrameBytes []byte

	// Optional marks a statement that may be skipped entirely.
	Optional bool
}

// Template is a named behavior specification.
//
// A template is compiled (repetitions expanded, variables interned,
// liveness and prefilters precomputed) once, on first match or via
// Compile; Stmts must not be mutated after the template has been used.
type Template struct {
	Name        string
	Description string
	Stmts       []Stmt
	// Severity is a coarse label carried into alerts.
	Severity string

	compileOnce sync.Once
	ct          *compiledTemplate
}

func (t *Template) String() string {
	return fmt.Sprintf("template %s (%d statements)", t.Name, len(t.Stmts))
}

// binding is the variable assignment built up during a search. It is
// a fixed-size value type indexed by compiled variable id: extending a
// candidate binding is a struct copy on the stack, where the previous
// map-backed representation allocated two maps per candidate node —
// the single largest cost in the old matcher profile.
type binding struct {
	regs  [maxTemplateVars]x86.Reg // variable id -> bound register family
	keys  [maxTemplateVars]uint32  // variable id -> resolved key constant
	bound uint16                   // bit i set: regs[i] is bound
	keyed uint16                   // bit i set: keys[i] is resolved
}

// bindReg unifies variable id v with register family r.
func (b *binding) bindReg(v int8, r x86.Reg) bool {
	if v < 0 {
		return true
	}
	fam := r.Family()
	if b.bound&(1<<v) != 0 {
		return b.regs[v] == fam
	}
	b.regs[v] = fam
	b.bound |= 1 << v
	return true
}

// setKey records the resolved constant for key variable id v.
func (b *binding) setKey(v int8, key uint32) {
	if v >= 0 {
		b.keys[v] = key
		b.keyed |= 1 << v
	}
}

// reg returns the register bound to variable id v, if any.
func (b *binding) reg(v int8) (x86.Reg, bool) {
	if v < 0 || b.bound&(1<<v) == 0 {
		return x86.RegNone, false
	}
	return b.regs[v], true
}

// Detection reports one matched template within a frame.
type Detection struct {
	Template    string
	Description string
	Severity    string
	// Addrs are the frame offsets of the matched instructions.
	Addrs []int
	// Bindings renders the variable assignment for the alert.
	Bindings map[string]string
	// Order records which instruction order matched ("threaded" or "raw").
	Order string
}

func (d Detection) String() string {
	return fmt.Sprintf("%s at %v (%s)", d.Template, d.Addrs, d.Order)
}
