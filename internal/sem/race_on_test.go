//go:build race

package sem

// raceEnabled reports whether the race detector is active; the
// allocation-regression pins are skipped under -race because the race
// runtime itself allocates.
const raceEnabled = true
