// Sketch tests live in an external test package: they pin the sketch's
// tail hashing against core.FingerprintOf, and core imports sem, so an
// in-package test could not import core.
package sem_test

import (
	"testing"

	"semnids/internal/core"
	"semnids/internal/emu"
	"semnids/internal/exploits"
	"semnids/internal/polymorph"
	"semnids/internal/sem"
	"semnids/internal/shellcode"
)

// mustEncode re-encodes cleartext through a polymorphic engine and
// fails the test on engine errors.
func mustEncode(t *testing.T, eng interface {
	Encode([]byte) ([]byte, polymorph.Meta, error)
}, cleartext []byte) []byte {
	t.Helper()
	enc, _, err := eng.Encode(cleartext)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// sketchOf analyzes a frame and sketches it, requiring detections and
// a recovered tail — the preconditions every lineage test depends on.
func sketchOf(t *testing.T, a *sem.Analyzer, frame []byte) sem.Sketch {
	t.Helper()
	ds := a.AnalyzeFrame(frame)
	if len(ds) == 0 {
		t.Fatal("analyzer produced no detections for an encoded payload")
	}
	sk := a.Sketch(frame, ds)
	if !sk.HasTail() {
		t.Fatal("sketch recovered no decoded tail")
	}
	return sk
}

// TestSketchTailMatchesCoreFingerprint pins the promise sketch.go makes
// about its duplicated FNV constants: the tail fingerprint must equal
// core.FingerprintOf over the same tail bytes, so tail identities live
// in the same 128-bit keyspace as exact payload fingerprints. The tail
// bytes are recomputed here independently (fresh emulator per entry,
// longest self-rewrite wins, ties to the lowest entry) so a drift in
// either construction fails the test.
func TestSketchTailMatchesCoreFingerprint(t *testing.T) {
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	frame := mustEncode(t, polymorph.NewClet(7), shellcode.ClassicPush().Bytes)
	sk := sketchOf(t, a, frame)

	var best []byte
	for i, entry := range a.SweepOffsets {
		if i >= 4 || entry < 0 || entry >= len(frame) {
			continue
		}
		m := emu.New(frame)
		m.MaxSteps = 1 << 16
		m.Run(entry)
		var tail []byte
		for j := range frame {
			if m.Mem[j] != frame[j] {
				tail = append(tail, m.Mem[j])
			}
		}
		if len(tail) > len(best) {
			best = tail
		}
	}
	if len(best) == 0 {
		t.Fatal("independent emulation recovered no tail")
	}
	want := core.FingerprintOf(best)
	got := core.Fingerprint{A: sk.TailA, B: sk.TailB, N: sk.TailN}
	if got != want {
		t.Fatalf("tail fingerprint %+v, core.FingerprintOf(tail) %+v — sketch.go's FNV constants drifted from core", got, want)
	}
}

// TestSketchTailInvariantAcrossReencodings is the property the lineage
// subsystem stands on: re-encoding the same cleartext — different
// seeds, different engine families — changes every exact fingerprint
// but converges on one decoded tail.
func TestSketchTailInvariantAcrossReencodings(t *testing.T) {
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	cleartext := shellcode.ClassicPush().Bytes
	frames := [][]byte{
		mustEncode(t, polymorph.NewClet(11), cleartext),
		mustEncode(t, polymorph.NewClet(12), cleartext),
		mustEncode(t, polymorph.NewADMmutate(13), cleartext),
		mustEncode(t, polymorph.NewADMmutate(14), cleartext),
	}

	exact := map[core.Fingerprint]bool{}
	var tails []core.Fingerprint
	for i, frame := range frames {
		exact[core.FingerprintOf(frame)] = true
		sk := sketchOf(t, a, frame)
		tails = append(tails, core.Fingerprint{A: sk.TailA, B: sk.TailB, N: sk.TailN})
		if i > 0 && tails[i] != tails[0] {
			t.Errorf("variant %d tail %+v, variant 0 tail %+v — re-encoding changed the structural identity", i, tails[i], tails[0])
		}
	}
	if len(exact) != len(frames) {
		t.Fatalf("%d distinct exact fingerprints from %d variants — polymorph engines repeated wire bytes", len(exact), len(frames))
	}
}

// TestSketchTailDistinguishesPayloads checks the converse: different
// cleartexts never collide on a tail, even under the same engine and
// seed — a shared tail means shared cleartext, which is what makes a
// tail edge evidence of propagation.
func TestSketchTailDistinguishesPayloads(t *testing.T) {
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	skA := sketchOf(t, a, mustEncode(t, polymorph.NewClet(21), shellcode.ClassicPush().Bytes))
	skB := sketchOf(t, a, mustEncode(t, polymorph.NewClet(21), shellcode.Dup2Shell().Bytes))
	if skA.TailA == skB.TailA && skA.TailB == skB.TailB && skA.TailN == skB.TailN {
		t.Fatal("different cleartexts produced the same decoded tail")
	}
}

// TestSketchZeroOnBenign checks the lineage plane stays silent off the
// hostile path: no detections — whether an empty slice or a benign
// frame the analyzer rejects — means a zero sketch.
func TestSketchZeroOnBenign(t *testing.T) {
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	if sk := a.Sketch([]byte("GET / HTTP/1.0\r\n\r\n"), nil); !sk.IsZero() {
		t.Fatalf("sketch of zero detections = %+v, want zero", sk)
	}
	benign := []byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html>hello</html>")
	if ds := a.AnalyzeFrame(benign); len(ds) != 0 {
		t.Fatalf("benign frame produced %d detections", len(ds))
	}
	sk := a.Sketch(benign, a.AnalyzeFrame(benign))
	if !sk.IsZero() {
		t.Fatalf("benign sketch = %+v, want zero", sk)
	}
}

// TestSketchPackedOverflowStillConverges runs the wire shape the
// engine actually sees — encoded variant packed into the overflow
// layout (sled, code, return addresses) — and checks two packings of
// different variants still share a tail.
func TestSketchPackedOverflowStillConverges(t *testing.T) {
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	cleartext := shellcode.ClassicPush().Bytes
	f1 := exploits.PackOverflow(mustEncode(t, polymorph.NewClet(31), cleartext), exploits.OverflowOpts{})
	f2 := exploits.PackOverflow(mustEncode(t, polymorph.NewADMmutate(32), cleartext), exploits.OverflowOpts{})
	sk1 := sketchOf(t, a, f1)
	sk2 := sketchOf(t, a, f2)
	if sk1.TailA != sk2.TailA || sk1.TailB != sk2.TailB || sk1.TailN != sk2.TailN {
		t.Fatalf("packed variants diverged: tail1=%x/%x/%d tail2=%x/%x/%d",
			sk1.TailA, sk1.TailB, sk1.TailN, sk2.TailA, sk2.TailB, sk2.TailN)
	}
}
