package sem

import (
	"math/rand"
	"testing"
)

// TestPhantomRateOnRandomFrames statistically bounds the matcher's
// phantom-match rate on adversarially random binary frames (content
// that the extractor would only ever forward from a genuinely
// suspicious source). The benign §5.4 corpus never reaches this path;
// this test guards the matcher's precision margin itself.
func TestPhantomRateOnRandomFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	rng := rand.New(rand.NewSource(20060612))
	a := NewAnalyzer(BuiltinTemplates())
	const frames = 1500
	hits := 0
	for i := 0; i < frames; i++ {
		n := 512 + rng.Intn(2048)
		frame := make([]byte, n)
		rng.Read(frame)
		for _, d := range a.AnalyzeFrame(frame) {
			// return-address-region is a data-level heuristic with a
			// different precision budget; count code templates only.
			if d.Template != "return-address-region" {
				hits++
				t.Logf("frame %d: %v", i, d)
				break
			}
		}
	}
	// Measured steady-state is ~0.05%; fail if it regresses past 0.5%.
	if hits > frames/200 {
		t.Errorf("phantom rate %d/%d exceeds budget", hits, frames)
	}
}

// TestPhantomRateOnStructuredData: structured benign binary (sawtooth,
// repeating records) must produce no code-template matches at all.
func TestPhantomRateOnStructuredData(t *testing.T) {
	a := NewAnalyzer(BuiltinTemplates())
	gen := []func(i int) byte{
		func(i int) byte { return byte(i) },              // sawtooth
		func(i int) byte { return byte(i % 16) },         // short period
		func(i int) byte { return byte(i * 37) },         // stride
		func(i int) byte { return "HEADER01"[i%8] },      // record marker
		func(i int) byte { return byte(i>>4) ^ byte(i) }, // mixed
	}
	for gi, g := range gen {
		frame := make([]byte, 4096)
		for i := range frame {
			frame[i] = g(i)
		}
		for _, d := range a.AnalyzeFrame(frame) {
			if d.Template != "return-address-region" {
				t.Errorf("generator %d: phantom %v", gi, d)
			}
		}
	}
}
