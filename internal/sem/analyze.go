package sem

import (
	"bytes"
	"fmt"
	"sync"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// Analyzer runs a template set over extracted binary frames. It is the
// final stage of the NIDS pipeline (component (e) in the paper's
// architecture).
//
// An Analyzer holds only configuration; AnalyzeFrame draws its working
// state (decode cache, lifted program, matcher tables) from a pool, so
// one long-lived Analyzer may be shared by any number of concurrent
// workers.
type Analyzer struct {
	Templates []*Template

	// SweepOffsets are the starting offsets tried when disassembling a
	// frame; x86 decoding self-synchronizes quickly, so a handful of
	// offsets covers misaligned extraction.
	SweepOffsets []int

	// ReturnAddrDetect enables the data-level detector for
	// return-address regions (repeated dwords equal modulo their
	// least significant byte pointing into plausible address ranges).
	ReturnAddrDetect bool

	// MinReturnAddrRun is the number of repeated return-address
	// dwords required (default 4).
	MinReturnAddrRun int

	// DisableSweepPrune turns off the sweep-start viability pass (the
	// per-offset pruning described below) — the ablation baseline, and
	// the reference the differential tests compare against.
	DisableSweepPrune bool

	// Sweep-start viability state, built once per template set by
	// NewAnalyzer: pruneTable encodes each mandatory restricted-
	// vocabulary statement as a statement bit and each template as the
	// conjunction of its statement bits; tplBit[i] is the viability
	// bit of Templates[i] (0 = the template could not be encoded and
	// is treated as viable everywhere). A sweep offset from which no
	// flow-unbroken run can satisfy any candidate's conjunction
	// (x86.DecodeCache.ViableStarts) is skipped without lifting or
	// matching.
	pruneTable *x86.ViabilityTable
	tplBit     []uint64
}

// NewAnalyzer returns an analyzer over the given templates with
// default settings. The templates are compiled eagerly, so an invalid
// template (more than maxTemplateVars distinct variables) panics here,
// in the constructing goroutine, rather than on the first analyzed
// frame inside a worker.
func NewAnalyzer(tpls []*Template) *Analyzer {
	for _, t := range tpls {
		t.Compile()
	}
	a := &Analyzer{
		Templates:        tpls,
		SweepOffsets:     []int{0, 1, 2, 3},
		ReturnAddrDetect: true,
		MinReturnAddrRun: 4,
	}
	a.buildPrune()
	return a
}

// buildPrune assigns one statement bit to each mandatory restricted-
// vocabulary statement across the template set (up to 64 statements
// and 64 templates) and builds the viability table driving the
// sweep-start pass. A template that got no statement bits
// (unrestricted vocabulary, or bit budget exhausted) ends with
// tplBit == 0, which makes every offset viable whenever it is a
// candidate — pruning can only ever skip offsets that provably cannot
// match.
func (a *Analyzer) buildPrune() {
	var masks []x86.OpSet
	var reqs []uint64
	a.tplBit = make([]uint64, len(a.Templates))
	for i, tpl := range a.Templates {
		if len(reqs) >= 64 {
			break
		}
		ct := tpl.compiled()
		var req uint64
		for j := range ct.opNeeds {
			if len(masks) >= 64 {
				break
			}
			// A statement whose vocabulary includes a run-breaking
			// opcode could be satisfied by the breaker itself at a run
			// boundary, which the viability pass cannot see (breakers
			// reset the run without contributing bits). Skip such
			// statements — the template keeps its other bits and the
			// prune stays conservative.
			if ct.opNeeds[j].Has(x86.BAD) || ct.opNeeds[j].Has(x86.RET) || ct.opNeeds[j].Has(x86.HLT) {
				continue
			}
			req |= 1 << uint(len(masks))
			masks = append(masks, ct.opNeeds[j])
		}
		if req == 0 {
			continue
		}
		a.tplBit[i] = 1 << uint(len(reqs))
		reqs = append(reqs, req)
	}
	if len(masks) > 0 {
		a.pruneTable = x86.NewViabilityTable(masks, reqs)
	}
}

// frameScratch is the reusable per-AnalyzeFrame working state: the
// memoized decode cache, the lifted program, the matcher's index
// tables and the small bookkeeping slices. Pooling it makes the whole
// hot path allocation-free in steady state.
type frameScratch struct {
	cache x86.DecodeCache
	prog  ir.Program
	m     matcher
	seen  []string
	cands []candidate
}

// candidate pairs a template with its compiled form for the offset
// loop, after the frame-level prefilter. bit carries the template's
// viability bit for the sweep-start prune (0 = always viable).
type candidate struct {
	tpl *Template
	ct  *compiledTemplate
	bit uint64
}

var scratchPool = sync.Pool{New: func() any { return new(frameScratch) }}

// AnalyzeFrame disassembles and lifts the frame at several offsets and
// matches every template against both the threaded (execution) order
// and the raw sweep order, plus the data-level detectors. At most one
// detection per template name is reported.
func (a *Analyzer) AnalyzeFrame(frame []byte) []Detection {
	return a.AnalyzeFrameCached(frame, nil)
}

// AnalyzeFrameCached is AnalyzeFrame reusing a decode cache that has
// already (partially) swept the same frame — typically built by the
// extraction stage's code-ratio estimate — so that extraction and
// analysis share one decode. cache may be nil, or must have been
// created over the same frame bytes.
func (a *Analyzer) AnalyzeFrameCached(frame []byte, cache *x86.DecodeCache) []Detection {
	sc := scratchPool.Get().(*frameScratch)
	defer scratchPool.Put(sc)
	if cache == nil {
		sc.cache.Reset(frame)
		cache = &sc.cache
	}

	var out []Detection
	seen := sc.seen[:0]
	defer func() { sc.seen = seen[:0] }()
	seenName := func(name string) bool {
		for _, s := range seen {
			if s == name {
				return true
			}
		}
		return false
	}
	record := func(d Detection) {
		if !seenName(d.Template) {
			seen = append(seen, d.Template)
			out = append(out, d)
		}
	}

	// Frame-level prefilter: a template whose mandatory SFrameData
	// bytes are absent from the frame cannot match at any offset or
	// order, so it is rejected with one bytes.Contains per byte string
	// instead of once per offset × order search. Distinct template
	// names are counted so the offset loop can stop as soon as every
	// name has a detection.
	cands := sc.cands[:0]
	defer func() { sc.cands = cands[:0] }()
	names := 0
candidates:
	for ti, tpl := range a.Templates {
		ct := tpl.compiled()
		for _, need := range ct.frameNeeds {
			if !bytes.Contains(frame, need) {
				continue candidates
			}
		}
		dup := false
		for _, c := range cands {
			if c.tpl.Name == tpl.Name {
				dup = true
				break
			}
		}
		if !dup {
			names++
		}
		var bit uint64
		if ti < len(a.tplBit) {
			bit = a.tplBit[ti]
		}
		cands = append(cands, candidate{tpl, ct, bit})
	}

	// Sweep-start viability: before paying for a sweep's lift and
	// match work, the memoized chain check (x86.DecodeCache.Viable)
	// decides whether any flow-unbroken run reachable from the offset
	// could still satisfy some candidate's mandatory-statement
	// conjunction; non-viable offsets skip the expensive stages
	// entirely, and the check shares every decoded byte with the
	// sweeps themselves. Disabled when any candidate could not be
	// encoded (tplBit 0 would make every offset viable anyway).
	pruneWant := uint64(0)
	if !a.DisableSweepPrune && a.pruneTable != nil && len(a.tplBit) == len(a.Templates) {
		for i := range cands {
			if cands[i].bit == 0 {
				pruneWant = 0
				break
			}
			pruneWant |= cands[i].bit
		}
	}

	for _, off := range a.SweepOffsets {
		if off >= len(frame) {
			break
		}
		if len(cands) == 0 || len(seen) == names {
			break
		}
		if pruneWant != 0 && !cache.Viable(off, a.pruneTable, pruneWant) {
			continue
		}
		sc.prog.Reuse(cache.Sweep(off))
		orders := [2]struct {
			name  string
			nodes []ir.Node
		}{
			{"threaded", sc.prog.Nodes},
			{"raw", sc.prog.Raw},
		}
		for _, ord := range orders {
			if len(ord.nodes) == 0 {
				continue
			}
			sc.m.reset(ord.nodes, frame)
			for _, c := range cands {
				if seenName(c.tpl.Name) {
					continue
				}
				if b, idxs, ok := sc.m.match(c.ct); ok {
					record(makeDetection(c.tpl, c.ct, ord.name, ord.nodes, b, idxs))
				}
			}
		}
	}

	if a.ReturnAddrDetect {
		if d, ok := a.detectReturnAddrRegion(frame); ok {
			record(d)
		}
	}
	return out
}

func makeDetection(tpl *Template, ct *compiledTemplate, order string, nodes []ir.Node, b *binding, idxs []int) Detection {
	d := Detection{
		Template:    tpl.Name,
		Description: tpl.Description,
		Severity:    tpl.Severity,
		Order:       order,
		Bindings:    make(map[string]string),
	}
	for _, i := range idxs {
		d.Addrs = append(d.Addrs, nodes[i].Inst.Addr)
	}
	for id, name := range ct.varNames {
		if b.bound&(1<<id) != 0 {
			d.Bindings[name] = b.regs[id].String()
		}
		if b.keyed&(1<<id) != 0 {
			d.Bindings[name] = fmt.Sprintf("%#x", b.keys[id])
		}
	}
	return d
}

// addressRanges that a return-address region plausibly points into:
// the process stack and low loaded-module ranges on the platforms the
// paper's exploits target.
var returnAddrRanges = [][2]uint32{
	{0xbf000000, 0xc0000000}, // Linux stack
	{0x08040000, 0x08100000}, // Linux exec image vicinity
	{0x77000000, 0x78200000}, // Windows system DLLs (incl. msvcrt)
	{0x7ffd0000, 0x80000000}, // Windows PEB/TEB region
}

func plausibleReturnAddr(v uint32) bool {
	for _, r := range returnAddrRanges {
		if v >= r[0] && v < r[1] {
			return true
		}
	}
	return false
}

// detectReturnAddrRegion finds runs of dwords that are equal modulo
// their least significant byte and point into a plausible address
// range — the invariant the paper identifies in the return-address
// region of buffer-overflow exploits (only the LSB can vary, since the
// return address must land inside the injected buffer).
func (a *Analyzer) detectReturnAddrRegion(frame []byte) (Detection, bool) {
	minRun := a.MinReturnAddrRun
	if minRun <= 0 {
		minRun = 4
	}
	// Try all four alignments; exploits rarely align their RA region
	// with the start of the extracted frame.
	for align := 0; align < 4; align++ {
		run := 0
		var runBase uint32
		var runStart int
		for i := align; i+4 <= len(frame); i += 4 {
			v := uint32(frame[i]) | uint32(frame[i+1])<<8 |
				uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
			base := v &^ 0xff
			if plausibleReturnAddr(v) && (run == 0 || base == runBase) {
				if run == 0 {
					runBase = base
					runStart = i
				}
				run++
				if run >= minRun {
					return Detection{
						Template:    "return-address-region",
						Description: "repeated return-address dwords equal modulo LSB pointing into a plausible address range",
						Severity:    "medium",
						Addrs:       []int{runStart},
						Order:       "data",
						Bindings: map[string]string{
							"base": fmt.Sprintf("%#x", runBase),
							"run":  fmt.Sprintf("%d", run),
						},
					}, true
				}
				continue
			}
			run = 0
			if plausibleReturnAddr(v) {
				runBase = base
				runStart = i
				run = 1
			}
		}
	}
	return Detection{}, false
}
