package sem

import (
	"fmt"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// Analyzer runs a template set over extracted binary frames. It is the
// final stage of the NIDS pipeline (component (e) in the paper's
// architecture).
type Analyzer struct {
	Templates []*Template

	// SweepOffsets are the starting offsets tried when disassembling a
	// frame; x86 decoding self-synchronizes quickly, so a handful of
	// offsets covers misaligned extraction.
	SweepOffsets []int

	// ReturnAddrDetect enables the data-level detector for
	// return-address regions (repeated dwords equal modulo their
	// least significant byte pointing into plausible address ranges).
	ReturnAddrDetect bool

	// MinReturnAddrRun is the number of repeated return-address
	// dwords required (default 4).
	MinReturnAddrRun int
}

// NewAnalyzer returns an analyzer over the given templates with
// default settings.
func NewAnalyzer(tpls []*Template) *Analyzer {
	return &Analyzer{
		Templates:        tpls,
		SweepOffsets:     []int{0, 1, 2, 3},
		ReturnAddrDetect: true,
		MinReturnAddrRun: 4,
	}
}

// AnalyzeFrame disassembles and lifts the frame at several offsets and
// matches every template against both the threaded (execution) order
// and the raw sweep order, plus the data-level detectors. At most one
// detection per template name is reported.
func (a *Analyzer) AnalyzeFrame(frame []byte) []Detection {
	var out []Detection
	seen := make(map[string]bool)

	record := func(d Detection) {
		if !seen[d.Template] {
			seen[d.Template] = true
			out = append(out, d)
		}
	}

	for _, off := range a.SweepOffsets {
		if off >= len(frame) {
			break
		}
		prog := ir.Lift(x86.Sweep(frame, off))
		orders := []struct {
			name  string
			nodes []ir.Node
		}{
			{"threaded", prog.Nodes},
			{"raw", prog.Raw},
		}
		for _, ord := range orders {
			if len(ord.nodes) == 0 {
				continue
			}
			m := newMatcher(ord.nodes, frame)
			for _, tpl := range a.Templates {
				if seen[tpl.Name] {
					continue
				}
				if b, idxs, ok := m.match(tpl); ok {
					record(makeDetection(tpl, ord.name, ord.nodes, b, idxs))
				}
			}
		}
	}

	if a.ReturnAddrDetect {
		if d, ok := a.detectReturnAddrRegion(frame); ok {
			record(d)
		}
	}
	return out
}

func makeDetection(tpl *Template, order string, nodes []ir.Node, b *Binding, idxs []int) Detection {
	d := Detection{
		Template:    tpl.Name,
		Description: tpl.Description,
		Severity:    tpl.Severity,
		Order:       order,
		Bindings:    make(map[string]string),
	}
	for _, i := range idxs {
		d.Addrs = append(d.Addrs, nodes[i].Inst.Addr)
	}
	for v, r := range b.Regs {
		d.Bindings[v] = r.String()
	}
	for v, k := range b.Keys {
		d.Bindings[v] = fmt.Sprintf("%#x", k)
	}
	return d
}

// addressRanges that a return-address region plausibly points into:
// the process stack and low loaded-module ranges on the platforms the
// paper's exploits target.
var returnAddrRanges = [][2]uint32{
	{0xbf000000, 0xc0000000}, // Linux stack
	{0x08040000, 0x08100000}, // Linux exec image vicinity
	{0x77000000, 0x78200000}, // Windows system DLLs (incl. msvcrt)
	{0x7ffd0000, 0x80000000}, // Windows PEB/TEB region
}

func plausibleReturnAddr(v uint32) bool {
	for _, r := range returnAddrRanges {
		if v >= r[0] && v < r[1] {
			return true
		}
	}
	return false
}

// detectReturnAddrRegion finds runs of dwords that are equal modulo
// their least significant byte and point into a plausible address
// range — the invariant the paper identifies in the return-address
// region of buffer-overflow exploits (only the LSB can vary, since the
// return address must land inside the injected buffer).
func (a *Analyzer) detectReturnAddrRegion(frame []byte) (Detection, bool) {
	minRun := a.MinReturnAddrRun
	if minRun <= 0 {
		minRun = 4
	}
	// Try all four alignments; exploits rarely align their RA region
	// with the start of the extracted frame.
	for align := 0; align < 4; align++ {
		run := 0
		var runBase uint32
		var runStart int
		for i := align; i+4 <= len(frame); i += 4 {
			v := uint32(frame[i]) | uint32(frame[i+1])<<8 |
				uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
			base := v &^ 0xff
			if plausibleReturnAddr(v) && (run == 0 || base == runBase) {
				if run == 0 {
					runBase = base
					runStart = i
				}
				run++
				if run >= minRun {
					return Detection{
						Template:    "return-address-region",
						Description: "repeated return-address dwords equal modulo LSB pointing into a plausible address range",
						Severity:    "medium",
						Addrs:       []int{runStart},
						Order:       "data",
						Bindings: map[string]string{
							"base": fmt.Sprintf("%#x", runBase),
							"run":  fmt.Sprintf("%d", run),
						},
					}, true
				}
				continue
			}
			run = 0
			if plausibleReturnAddr(v) {
				runBase = base
				runStart = i
				run = 1
			}
		}
	}
	return Detection{}, false
}
