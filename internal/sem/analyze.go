package sem

import (
	"bytes"
	"fmt"
	"sync"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// Analyzer runs a template set over extracted binary frames. It is the
// final stage of the NIDS pipeline (component (e) in the paper's
// architecture).
//
// An Analyzer holds only configuration; AnalyzeFrame draws its working
// state (decode cache, lifted program, matcher tables) from a pool, so
// one long-lived Analyzer may be shared by any number of concurrent
// workers.
type Analyzer struct {
	Templates []*Template

	// SweepOffsets are the starting offsets tried when disassembling a
	// frame; x86 decoding self-synchronizes quickly, so a handful of
	// offsets covers misaligned extraction.
	SweepOffsets []int

	// ReturnAddrDetect enables the data-level detector for
	// return-address regions (repeated dwords equal modulo their
	// least significant byte pointing into plausible address ranges).
	ReturnAddrDetect bool

	// MinReturnAddrRun is the number of repeated return-address
	// dwords required (default 4).
	MinReturnAddrRun int
}

// NewAnalyzer returns an analyzer over the given templates with
// default settings. The templates are compiled eagerly, so an invalid
// template (more than maxTemplateVars distinct variables) panics here,
// in the constructing goroutine, rather than on the first analyzed
// frame inside a worker.
func NewAnalyzer(tpls []*Template) *Analyzer {
	for _, t := range tpls {
		t.Compile()
	}
	return &Analyzer{
		Templates:        tpls,
		SweepOffsets:     []int{0, 1, 2, 3},
		ReturnAddrDetect: true,
		MinReturnAddrRun: 4,
	}
}

// frameScratch is the reusable per-AnalyzeFrame working state: the
// memoized decode cache, the lifted program, the matcher's index
// tables and the small bookkeeping slices. Pooling it makes the whole
// hot path allocation-free in steady state.
type frameScratch struct {
	cache x86.DecodeCache
	prog  ir.Program
	m     matcher
	seen  []string
	cands []candidate
}

// candidate pairs a template with its compiled form for the offset
// loop, after the frame-level prefilter.
type candidate struct {
	tpl *Template
	ct  *compiledTemplate
}

var scratchPool = sync.Pool{New: func() any { return new(frameScratch) }}

// AnalyzeFrame disassembles and lifts the frame at several offsets and
// matches every template against both the threaded (execution) order
// and the raw sweep order, plus the data-level detectors. At most one
// detection per template name is reported.
func (a *Analyzer) AnalyzeFrame(frame []byte) []Detection {
	return a.AnalyzeFrameCached(frame, nil)
}

// AnalyzeFrameCached is AnalyzeFrame reusing a decode cache that has
// already (partially) swept the same frame — typically built by the
// extraction stage's code-ratio estimate — so that extraction and
// analysis share one decode. cache may be nil, or must have been
// created over the same frame bytes.
func (a *Analyzer) AnalyzeFrameCached(frame []byte, cache *x86.DecodeCache) []Detection {
	sc := scratchPool.Get().(*frameScratch)
	defer scratchPool.Put(sc)
	if cache == nil {
		sc.cache.Reset(frame)
		cache = &sc.cache
	}

	var out []Detection
	seen := sc.seen[:0]
	defer func() { sc.seen = seen[:0] }()
	seenName := func(name string) bool {
		for _, s := range seen {
			if s == name {
				return true
			}
		}
		return false
	}
	record := func(d Detection) {
		if !seenName(d.Template) {
			seen = append(seen, d.Template)
			out = append(out, d)
		}
	}

	// Frame-level prefilter: a template whose mandatory SFrameData
	// bytes are absent from the frame cannot match at any offset or
	// order, so it is rejected with one bytes.Contains per byte string
	// instead of once per offset × order search. Distinct template
	// names are counted so the offset loop can stop as soon as every
	// name has a detection.
	cands := sc.cands[:0]
	defer func() { sc.cands = cands[:0] }()
	names := 0
candidates:
	for _, tpl := range a.Templates {
		ct := tpl.compiled()
		for _, need := range ct.frameNeeds {
			if !bytes.Contains(frame, need) {
				continue candidates
			}
		}
		dup := false
		for _, c := range cands {
			if c.tpl.Name == tpl.Name {
				dup = true
				break
			}
		}
		if !dup {
			names++
		}
		cands = append(cands, candidate{tpl, ct})
	}

	for _, off := range a.SweepOffsets {
		if off >= len(frame) {
			break
		}
		if len(cands) == 0 || len(seen) == names {
			break
		}
		sc.prog.Reuse(cache.Sweep(off))
		orders := [2]struct {
			name  string
			nodes []ir.Node
		}{
			{"threaded", sc.prog.Nodes},
			{"raw", sc.prog.Raw},
		}
		for _, ord := range orders {
			if len(ord.nodes) == 0 {
				continue
			}
			sc.m.reset(ord.nodes, frame)
			for _, c := range cands {
				if seenName(c.tpl.Name) {
					continue
				}
				if b, idxs, ok := sc.m.match(c.ct); ok {
					record(makeDetection(c.tpl, c.ct, ord.name, ord.nodes, b, idxs))
				}
			}
		}
	}

	if a.ReturnAddrDetect {
		if d, ok := a.detectReturnAddrRegion(frame); ok {
			record(d)
		}
	}
	return out
}

func makeDetection(tpl *Template, ct *compiledTemplate, order string, nodes []ir.Node, b *binding, idxs []int) Detection {
	d := Detection{
		Template:    tpl.Name,
		Description: tpl.Description,
		Severity:    tpl.Severity,
		Order:       order,
		Bindings:    make(map[string]string),
	}
	for _, i := range idxs {
		d.Addrs = append(d.Addrs, nodes[i].Inst.Addr)
	}
	for id, name := range ct.varNames {
		if b.bound&(1<<id) != 0 {
			d.Bindings[name] = b.regs[id].String()
		}
		if b.keyed&(1<<id) != 0 {
			d.Bindings[name] = fmt.Sprintf("%#x", b.keys[id])
		}
	}
	return d
}

// addressRanges that a return-address region plausibly points into:
// the process stack and low loaded-module ranges on the platforms the
// paper's exploits target.
var returnAddrRanges = [][2]uint32{
	{0xbf000000, 0xc0000000}, // Linux stack
	{0x08040000, 0x08100000}, // Linux exec image vicinity
	{0x77000000, 0x78200000}, // Windows system DLLs (incl. msvcrt)
	{0x7ffd0000, 0x80000000}, // Windows PEB/TEB region
}

func plausibleReturnAddr(v uint32) bool {
	for _, r := range returnAddrRanges {
		if v >= r[0] && v < r[1] {
			return true
		}
	}
	return false
}

// detectReturnAddrRegion finds runs of dwords that are equal modulo
// their least significant byte and point into a plausible address
// range — the invariant the paper identifies in the return-address
// region of buffer-overflow exploits (only the LSB can vary, since the
// return address must land inside the injected buffer).
func (a *Analyzer) detectReturnAddrRegion(frame []byte) (Detection, bool) {
	minRun := a.MinReturnAddrRun
	if minRun <= 0 {
		minRun = 4
	}
	// Try all four alignments; exploits rarely align their RA region
	// with the start of the extracted frame.
	for align := 0; align < 4; align++ {
		run := 0
		var runBase uint32
		var runStart int
		for i := align; i+4 <= len(frame); i += 4 {
			v := uint32(frame[i]) | uint32(frame[i+1])<<8 |
				uint32(frame[i+2])<<16 | uint32(frame[i+3])<<24
			base := v &^ 0xff
			if plausibleReturnAddr(v) && (run == 0 || base == runBase) {
				if run == 0 {
					runBase = base
					runStart = i
				}
				run++
				if run >= minRun {
					return Detection{
						Template:    "return-address-region",
						Description: "repeated return-address dwords equal modulo LSB pointing into a plausible address range",
						Severity:    "medium",
						Addrs:       []int{runStart},
						Order:       "data",
						Bindings: map[string]string{
							"base": fmt.Sprintf("%#x", runBase),
							"run":  fmt.Sprintf("%d", run),
						},
					}, true
				}
				continue
			}
			run = 0
			if plausibleReturnAddr(v) {
				runBase = base
				runStart = i
				run = 1
			}
		}
	}
	return Detection{}, false
}
