package sem

import (
	"testing"

	"semnids/internal/x86"
)

func analyzeAll(t *testing.T, frame []byte) map[string]Detection {
	t.Helper()
	a := NewAnalyzer(BuiltinTemplates())
	out := make(map[string]Detection)
	for _, d := range a.AnalyzeFrame(frame) {
		out[d.Template] = d
	}
	return out
}

func mem8(base x86.Reg) x86.Operand {
	return x86.MemOp(x86.MemRef{Base: base, Size: 1, Scale: 1})
}

// Figure 1(a): xor byte ptr [eax], 95h ; inc eax ; loop decode
func fig1a() []byte {
	return x86.NewAsm().
		Label("decode").
		I(x86.XOR, mem8(x86.EAX), x86.ImmOp(-0x6b)). // 0x95 sign-extended
		IncR(x86.EAX).
		Loop("decode").
		MustBytes()
}

// Figure 1(b): key obscured through a register, inc replaced by add.
func fig1b() []byte {
	return x86.NewAsm().
		Label("decode").
		MovRI(x86.EBX, 0x31).
		AddRI(x86.EBX, 0x64).
		I(x86.XOR, mem8(x86.EAX), x86.RegOp(x86.BL)).
		AddRI(x86.EAX, 1).
		Loop("decode").
		MustBytes()
}

// Figure 1(c): garbage instructions and out-of-order code with jmps.
func fig1c() []byte {
	return x86.NewAsm().
		Label("decode").
		MovRI(x86.ECX, 0).
		IncR(x86.ECX).
		IncR(x86.ECX).
		JmpShort("one").
		Label("two").
		AddRI(x86.EAX, 1).
		JmpShort("three").
		Label("one").
		MovRI(x86.EBX, 0x31).
		AddRI(x86.EBX, 0x64).
		I(x86.XOR, mem8(x86.EAX), x86.RegOp(x86.BL)).
		JmpShort("two").
		Label("three").
		Loop("one").
		MustBytes()
}

func TestXorLoopFigure1Variants(t *testing.T) {
	for name, code := range map[string][]byte{"1a": fig1a(), "1b": fig1b(), "1c": fig1c()} {
		ds := analyzeAll(t, code)
		d, ok := ds["xor-decrypt-loop"]
		if !ok {
			t.Errorf("figure %s: xor-decrypt-loop not detected (got %v)", name, ds)
			continue
		}
		if key := d.Bindings["B"]; key != "0x95" {
			t.Errorf("figure %s: key = %q, want 0x95", name, key)
		}
	}
}

func TestXorLoopWithJunk(t *testing.T) {
	// NOP-like and garbage instructions interleaved; the matcher must
	// skip them because they do not clobber the bound registers.
	code := x86.NewAsm().
		Label("decode").
		Nop().
		I(x86.CLD).
		MovRI(x86.EDX, 0xdead). // junk def of an unbound register
		I(x86.XOR, mem8(x86.ESI), x86.ImmOp(0x42)).
		I(x86.STC).
		IncR(x86.EDX). // junk
		IncR(x86.ESI).
		MovRI(x86.EBX, 7). // junk
		JccShort(x86.CondNE, "decode").
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["xor-decrypt-loop"]; !ok {
		t.Fatalf("junk-laden xor loop not detected: %v", ds)
	}
}

func TestXorLoopRegisterReassignment(t *testing.T) {
	// Any register pair must work (template variables, not fixed regs).
	for _, ptr := range []x86.Reg{x86.EAX, x86.EBX, x86.ESI, x86.EDI} {
		code := x86.NewAsm().
			Label("decode").
			I(x86.SUB, mem8(ptr), x86.ImmOp(0x13)).
			AddRI(ptr, 1).
			Loop("decode").
			MustBytes()
		ds := analyzeAll(t, code)
		d, ok := ds["xor-decrypt-loop"]
		if !ok {
			t.Errorf("ptr=%v: not detected", ptr)
			continue
		}
		if d.Bindings["A"] != ptr.String() {
			t.Errorf("ptr=%v: bound A=%v", ptr, d.Bindings["A"])
		}
	}
}

func TestClobberedPointerRejected(t *testing.T) {
	// The pointer register is overwritten between the transform and
	// the advance: this is NOT a decryption loop over a buffer.
	code := x86.NewAsm().
		Label("decode").
		I(x86.XOR, mem8(x86.EAX), x86.ImmOp(0x42)).
		MovRI(x86.EAX, 0x1000). // clobbers the pointer
		AddRI(x86.EAX, 1).
		Loop("decode").
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["xor-decrypt-loop"]; ok {
		t.Error("clobbered pointer should not match the decrypt-loop template")
	}
}

func TestNoBackEdgeRejected(t *testing.T) {
	// Straight-line xor+inc without a loop is not a decryption loop.
	code := x86.NewAsm().
		I(x86.XOR, mem8(x86.EAX), x86.ImmOp(0x42)).
		IncR(x86.EAX).
		I(x86.RET).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["xor-decrypt-loop"]; ok {
		t.Error("loop-less code should not match")
	}
}

func TestShellSpawnPushVariant(t *testing.T) {
	// Classic: xor eax,eax; push eax; push "//sh"; push "/bin";
	// mov ebx,esp; ... mov al, 0xb; int 0x80
	code := x86.NewAsm().
		XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushI(0x68732f2f).
		PushI(0x6e69622f).
		MovRR(x86.EBX, x86.ESP).
		XorRR(x86.ECX, x86.ECX).
		XorRR(x86.EDX, x86.EDX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		IntN(0x80).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["linux-shell-spawn"]; !ok {
		t.Fatalf("push-variant shell spawn not detected: %v", ds)
	}
}

func TestShellSpawnPushPopEax(t *testing.T) {
	// execve number loaded via push 0xb / pop eax.
	code := x86.NewAsm().
		PushI(0x68732f2f).
		PushI(0x6e69622f).
		MovRR(x86.EBX, x86.ESP).
		PushI(0xb).
		PopR(x86.EAX).
		IntN(0x80).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["linux-shell-spawn"]; !ok {
		t.Fatalf("push/pop shell spawn not detected: %v", ds)
	}
}

func TestShellSpawnStringVariant(t *testing.T) {
	// jmp-call-pop style: the string is literal data in the frame.
	code := x86.NewAsm().
		JmpShort("data").
		Label("code").
		PopR(x86.EBX).
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		XorRR(x86.ECX, x86.ECX).
		I(x86.CDQ).
		IntN(0x80).
		Label("data").
		Call("code").
		Raw([]byte("/bin/sh\x00")...).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["linux-shell-spawn"]; !ok {
		t.Fatalf("jmp-call-pop shell spawn not detected: %v", ds)
	}
}

func TestPortBindShell(t *testing.T) {
	// socketcall(bind) then execve.
	code := x86.NewAsm().
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x66)).
		XorRR(x86.EBX, x86.EBX).
		I(x86.MOV, x86.RegOp(x86.BL), x86.ImmOp(2)). // bind
		IntN(0x80).
		PushI(0x68732f2f).
		PushI(0x6e69622f).
		MovRR(x86.EBX, x86.ESP).
		PushI(0xb).
		PopR(x86.EAX).
		IntN(0x80).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["port-bind-shell"]; !ok {
		t.Fatalf("port-bind shell not detected: %v", ds)
	}
	if _, ok := ds["linux-shell-spawn"]; !ok {
		t.Fatalf("shell spawn not also detected: %v", ds)
	}
}

func TestCodeRedIITemplate(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EBX, 0x7801cbd3).
		Nop().
		I(x86.CALL, x86.RegOp(x86.EBX)).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["code-red-ii"]; !ok {
		t.Fatalf("code-red-ii not detected: %v", ds)
	}
}

func TestCodeRedIIClobberedRejected(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EBX, 0x7801cbd3).
		MovRI(x86.EBX, 0x1000). // register overwritten before use
		I(x86.CALL, x86.RegOp(x86.EBX)).
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["code-red-ii"]; ok {
		t.Error("clobbered CRII register should not match")
	}
}

func TestReturnAddressRegionDetector(t *testing.T) {
	var frame []byte
	for i := 0; i < 8; i++ {
		// 0xbffff5xx with varying LSB — equal modulo LSB.
		frame = append(frame, byte(0x10+i), 0xf5, 0xff, 0xbf)
	}
	ds := analyzeAll(t, frame)
	if _, ok := ds["return-address-region"]; !ok {
		t.Fatalf("return-address region not detected: %v", ds)
	}

	// Varying upper bytes must not match.
	frame = nil
	for i := 0; i < 8; i++ {
		frame = append(frame, 0x10, byte(0xf5+i), 0xff, 0xbf)
	}
	ds = analyzeAll(t, frame)
	if _, ok := ds["return-address-region"]; ok {
		t.Error("non-repeating dwords should not match")
	}
}

func TestBenignCodeNoDetections(t *testing.T) {
	// A plausible benign function: prologue, some arithmetic, a
	// forward-only loop over a counter (no memory transform), epilogue.
	code := x86.NewAsm().
		PushR(x86.EBP).
		MovRR(x86.EBP, x86.ESP).
		SubRI(x86.ESP, 0x20).
		XorRR(x86.EAX, x86.EAX).
		Label("loop").
		AddRI(x86.EAX, 2).
		I(x86.CMP, x86.RegOp(x86.EAX), x86.ImmOp(100)).
		JccShort(x86.CondL, "loop").
		MovRR(x86.ESP, x86.EBP).
		PopR(x86.EBP).
		I(x86.RET).
		MustBytes()
	ds := analyzeAll(t, code)
	if len(ds) != 0 {
		t.Errorf("benign code produced detections: %v", ds)
	}
}

func TestASCIITextNoDetections(t *testing.T) {
	text := []byte("GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n" +
		"User-Agent: Mozilla/5.0 (X11; Linux) Gecko/20060101\r\n" +
		"Accept: text/html,application/xhtml+xml\r\n\r\n")
	ds := analyzeAll(t, text)
	if len(ds) != 0 {
		t.Errorf("ASCII text produced detections: %v", ds)
	}
}

func TestAltDecodeLoop(t *testing.T) {
	// The XNOR decoder: mov/not/and/or over a memory location and a
	// register pair (the scheme the paper discovered in ADMmutate).
	k := int64(0x5a)
	code := x86.NewAsm().
		Label("decode").
		I(x86.MOV, x86.RegOp(x86.AL), mem8(x86.ESI)).
		I(x86.MOV, x86.RegOp(x86.BL), x86.RegOp(x86.AL)).
		I(x86.NOT, x86.RegOp(x86.BL)).
		I(x86.AND, x86.RegOp(x86.AL), x86.ImmOp(k)).
		I(x86.AND, x86.RegOp(x86.BL), x86.ImmOp(^k&0xff)).
		I(x86.OR, x86.RegOp(x86.AL), x86.RegOp(x86.BL)).
		I(x86.MOV, mem8(x86.ESI), x86.RegOp(x86.AL)).
		IncR(x86.ESI).
		Loop("decode").
		MustBytes()
	ds := analyzeAll(t, code)
	if _, ok := ds["admmutate-alt-decode-loop"]; !ok {
		t.Fatalf("alternate decode loop not detected: %v", ds)
	}
}

func TestXorOnlyTemplateSetMissesAltDecoder(t *testing.T) {
	// The Table 2 narrative: before the alternate template was
	// written, the mov/or/and/not scheme evaded the xor template.
	k := int64(0x5a)
	code := x86.NewAsm().
		Label("decode").
		I(x86.MOV, x86.RegOp(x86.AL), mem8(x86.ESI)).
		I(x86.MOV, x86.RegOp(x86.BL), x86.RegOp(x86.AL)).
		I(x86.NOT, x86.RegOp(x86.BL)).
		I(x86.AND, x86.RegOp(x86.AL), x86.ImmOp(k)).
		I(x86.AND, x86.RegOp(x86.BL), x86.ImmOp(^k&0xff)).
		I(x86.OR, x86.RegOp(x86.AL), x86.RegOp(x86.BL)).
		I(x86.MOV, mem8(x86.ESI), x86.RegOp(x86.AL)).
		IncR(x86.ESI).
		Loop("decode").
		MustBytes()
	a := NewAnalyzer(XorOnlyTemplates())
	for _, d := range a.AnalyzeFrame(code) {
		if d.Template == "admmutate-alt-decode-loop" || d.Template == "xor-decrypt-loop" {
			t.Errorf("xor-only template set should miss the alternate decoder, got %v", d)
		}
	}
}

func TestMatcherNeedsFolding(t *testing.T) {
	// Ablation for DESIGN.md decision 2: without constant folding the
	// key in Figure 1(b) cannot be resolved. We verify the fold is
	// what produces the key binding.
	ds := analyzeAll(t, fig1b())
	d := ds["xor-decrypt-loop"]
	if d.Bindings["B"] != "0x95" {
		t.Errorf("folded key = %v, want 0x95", d.Bindings["B"])
	}
}

func TestMatcherNeedsJumpThreading(t *testing.T) {
	// Ablation for DESIGN.md decision 3: Figure 1(c) must match in
	// threaded order (the raw order interleaves the blocks).
	ds := analyzeAll(t, fig1c())
	d, ok := ds["xor-decrypt-loop"]
	if !ok {
		t.Fatal("figure 1(c) not detected")
	}
	if d.Order != "threaded" {
		t.Errorf("figure 1(c) matched in %q order, expected threaded", d.Order)
	}
}

func TestExpandStmts(t *testing.T) {
	s := []Stmt{{Kind: SRegXform, MinRep: 2, MaxRep: 4}}
	out := expandStmts(s)
	if len(out) != 4 {
		t.Fatalf("expanded to %d statements, want 4", len(out))
	}
	if out[0].Optional || out[1].Optional {
		t.Error("first MinRep copies must be mandatory")
	}
	if !out[2].Optional || !out[3].Optional {
		t.Error("copies beyond MinRep must be optional")
	}
	// No repetition: pass-through.
	s = []Stmt{{Kind: SAdvance}}
	if out := expandStmts(s); len(out) != 1 || out[0].Optional {
		t.Error("non-repeated statement must pass through")
	}
}

func TestEmptyFrame(t *testing.T) {
	if ds := analyzeAll(t, nil); len(ds) != 0 {
		t.Errorf("empty frame produced detections: %v", ds)
	}
	if ds := analyzeAll(t, []byte{0x90}); len(ds) != 0 {
		t.Errorf("single nop produced detections: %v", ds)
	}
}
