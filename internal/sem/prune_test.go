package sem

import (
	"math/rand"
	"testing"

	"semnids/internal/exploits"
	"semnids/internal/polymorph"
	"semnids/internal/shellcode"
)

// pruneCorpora is the frame set the viability-prune differential runs
// over: junk in several sizes, protocol text, real exploit payloads,
// polymorphic samples and a packed binary — every shape the analyzer
// sees in production.
func pruneCorpora(t testing.TB) map[string][]byte {
	out := map[string][]byte{
		"junk-64":   junkFrame(11, 64),
		"junk-512":  junkFrame(12, 512),
		"junk-4096": junkFrame(13, 4096),
		"text": []byte("GET /cgi-bin/search?q=hello+world HTTP/1.1\r\n" +
			"Host: www.example.com\r\nAccept: text/html\r\n\r\n"),
		"xor-loop": {
			0x80, 0x36, 0x55, // xor byte [esi], 0x55
			0x46,       // inc esi
			0x75, 0xfa, // jnz -6
		},
		"netsky": exploits.NetskyBinary(3, 4*1024),
	}
	for i, e := range exploits.Table1Exploits() {
		if i%3 == 0 {
			out["exploit-"+e.Name] = e.Payload
		}
	}
	eng := polymorph.NewADMmutate(555)
	for i := 0; i < 3; i++ {
		s, _, err := eng.Encode(shellcode.ClassicPush().Bytes)
		if err != nil {
			t.Fatal(err)
		}
		out["admmutate-"+string(rune('a'+i))] = s
	}
	// Text with an embedded run that decodes around the gate boundary.
	mixed := append([]byte("USER "), make([]byte, 96)...)
	rand.New(rand.NewSource(99)).Read(mixed[5:])
	out["mixed"] = mixed
	return out
}

// TestSweepPruneDifferential proves the sweep-start viability pass
// changes no detection: for every corpus frame, the pruned analyzer
// reports exactly the same detections (template, order, addresses,
// bindings) as the unpruned baseline.
func TestSweepPruneDifferential(t *testing.T) {
	pruned := NewAnalyzer(BuiltinTemplates())
	baseline := NewAnalyzer(BuiltinTemplates())
	baseline.DisableSweepPrune = true

	for name, frame := range pruneCorpora(t) {
		want := baseline.AnalyzeFrame(frame)
		got := pruned.AnalyzeFrame(frame)
		if len(got) != len(want) {
			t.Fatalf("%s: %d detections pruned, %d baseline", name, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Errorf("%s detection %d: pruned %v, baseline %v", name, i, got[i], want[i])
			}
			for k, v := range want[i].Bindings {
				if got[i].Bindings[k] != v {
					t.Errorf("%s detection %d binding %s: pruned %s, baseline %s",
						name, i, k, got[i].Bindings[k], v)
				}
			}
		}
	}
}

// TestSweepPruneWideOffsets runs the differential with an exhaustive
// offset list (the fullscan shape) where pruning has the most offsets
// to skip and the most opportunities to get one wrong.
func TestSweepPruneWideOffsets(t *testing.T) {
	offsets := make([]int, 16)
	for i := range offsets {
		offsets[i] = i
	}
	pruned := NewAnalyzer(BuiltinTemplates())
	pruned.SweepOffsets = offsets
	baseline := NewAnalyzer(BuiltinTemplates())
	baseline.SweepOffsets = offsets
	baseline.DisableSweepPrune = true

	for name, frame := range pruneCorpora(t) {
		want := baseline.AnalyzeFrame(frame)
		got := pruned.AnalyzeFrame(frame)
		if len(got) != len(want) {
			t.Fatalf("%s: %d detections pruned, %d baseline", name, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Errorf("%s detection %d: pruned %v, baseline %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestBuildPruneBits checks viability-bit assignment: every builtin
// template has at least one restricted-vocabulary statement, so every
// template must end up with a viability bit and the table must exist.
func TestBuildPruneBits(t *testing.T) {
	a := NewAnalyzer(BuiltinTemplates())
	if a.pruneTable == nil {
		t.Fatal("no prune table built for the builtin set")
	}
	for i, bit := range a.tplBit {
		if bit == 0 {
			t.Errorf("template %s got no viability bit", a.Templates[i].Name)
		}
	}
}

// TestPruneSkipsHopelessFrame pins that the prune actually fires: a
// frame whose every run lacks the templates' conjunctions (text with
// no loop structure) must produce no detections, and an analyzer with
// an impossible-template-only candidate set must behave identically
// with pruning on and off.
func TestPruneSkipsHopelessFrame(t *testing.T) {
	frame := []byte{0xc3, 0xc3, 0xc3, 0xc3, 0x90, 0x90, 0x90, 0x90}
	a := NewAnalyzer(BuiltinTemplates())
	a.ReturnAddrDetect = false
	if ds := a.AnalyzeFrame(frame); len(ds) != 0 {
		t.Fatalf("ret/nop frame detected: %v", ds)
	}
	b := NewAnalyzer(BuiltinTemplates())
	b.ReturnAddrDetect = false
	b.DisableSweepPrune = true
	if ds := b.AnalyzeFrame(frame); len(ds) != 0 {
		t.Fatalf("baseline detected: %v", ds)
	}
}
