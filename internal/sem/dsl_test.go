package sem

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"semnids/internal/x86"
)

const sampleDSL = `
# The Figure 2 template in the text format.
template xor-decrypt-loop severity=high
  desc polymorphic decryption loop
  memxform [A] ops=xor,add,sub key=B size=1
  advance A delta=1..4
  backedge

template linux-shell-spawn severity=critical
  const 0x6e69622f,0x68732f2f
  syscall 0xb

template port-bind-shell severity=critical
  syscall 0x66 ebx=2
  syscall 0xb
`

func TestParseTemplates(t *testing.T) {
	tpls, err := ParseTemplates(strings.NewReader(sampleDSL))
	if err != nil {
		t.Fatal(err)
	}
	if len(tpls) != 3 {
		t.Fatalf("%d templates, want 3", len(tpls))
	}
	x := tpls[0]
	if x.Name != "xor-decrypt-loop" || x.Severity != "high" ||
		x.Description != "polymorphic decryption loop" {
		t.Errorf("header: %+v", x)
	}
	if len(x.Stmts) != 3 {
		t.Fatalf("%d statements", len(x.Stmts))
	}
	s0 := x.Stmts[0]
	if s0.Kind != SMemXform || s0.Ptr != "A" || s0.Key != "B" || s0.MemSize != 1 {
		t.Errorf("memxform: %+v", s0)
	}
	if !reflect.DeepEqual(s0.Ops, []x86.Opcode{x86.XOR, x86.ADD, x86.SUB}) {
		t.Errorf("ops: %v", s0.Ops)
	}
	if x.Stmts[1].Kind != SAdvance || x.Stmts[1].MinDelta != 1 || x.Stmts[1].MaxDelta != 4 {
		t.Errorf("advance: %+v", x.Stmts[1])
	}
	pb := tpls[2]
	if pb.Stmts[0].EBX == nil || *pb.Stmts[0].EBX != 2 {
		t.Errorf("syscall ebx: %+v", pb.Stmts[0])
	}
}

func TestParsedTemplatesActuallyMatch(t *testing.T) {
	tpls, err := ParseTemplates(strings.NewReader(sampleDSL))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(tpls)
	// The Figure 1(b) routine must match the parsed xor template.
	code := x86.NewAsm().
		Label("decode").
		MovRI(x86.EBX, 0x31).
		AddRI(x86.EBX, 0x64).
		I(x86.XOR, mem8(x86.EAX), x86.RegOp(x86.BL)).
		AddRI(x86.EAX, 1).
		Loop("decode").
		MustBytes()
	found := false
	for _, d := range a.AnalyzeFrame(code) {
		if d.Template == "xor-decrypt-loop" {
			found = true
		}
	}
	if !found {
		t.Error("parsed template did not match figure 1(b)")
	}
}

// TestDSLRoundTrip: every built-in template survives format -> parse.
func TestDSLRoundTrip(t *testing.T) {
	orig := BuiltinTemplates()
	var buf bytes.Buffer
	if err := FormatTemplates(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTemplates(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n---\n%s", err, buf.String())
	}
	if len(parsed) != len(orig) {
		t.Fatalf("parsed %d templates, want %d", len(parsed), len(orig))
	}
	for i := range orig {
		a, b := orig[i], parsed[i]
		if a.Name != b.Name || a.Severity != b.Severity || len(a.Stmts) != len(b.Stmts) {
			t.Errorf("template %d header mismatch: %+v vs %+v", i, a, b)
			continue
		}
		for j := range a.Stmts {
			sa, sb := a.Stmts[j], b.Stmts[j]
			// Pointer equality of EBX can differ; compare values.
			if (sa.EBX == nil) != (sb.EBX == nil) ||
				(sa.EBX != nil && *sa.EBX != *sb.EBX) {
				t.Errorf("template %s stmt %d EBX mismatch", a.Name, j)
			}
			sa.EBX, sb.EBX = nil, nil
			if !reflect.DeepEqual(sa, sb) {
				t.Errorf("template %s stmt %d:\n  %+v\nvs\n  %+v", a.Name, j, sa, sb)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"memxform [A] ops=xor",                          // statement before template
		"template t\n  bogus foo",                       // unknown statement
		"template t\n  memxform ops=xor",                // missing [Ptr]
		"template t\n  memxform [A] ops=frobnicate",     // unknown op
		"template t\n  syscall",                         // missing number
		"template t\n  syscall 0xzz",                    // bad number
		"template t\n  advance",                         // missing var
		"template t\n  framedata unquoted",              // missing quotes
		"template t\n  constrange R",                    // missing range
		"template t",                                    // no statements
		"template",                                      // no name
		"template t\n  memxform [A] ops=xor nonsense=1", // unknown arg
	}
	for _, c := range cases {
		if _, err := ParseTemplates(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid input %q", c)
		}
	}
}

func TestParseOptional(t *testing.T) {
	tpls, err := ParseTemplates(strings.NewReader(
		"template t\n  const 0x1 optional\n  syscall 0xb\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tpls[0].Stmts[0].Optional || tpls[0].Stmts[1].Optional {
		t.Errorf("optional parsing: %+v", tpls[0].Stmts)
	}
}
