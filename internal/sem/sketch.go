package sem

import (
	"sort"

	"semnids/internal/emu"
	"semnids/internal/x86"
)

// Sketch is the structural fingerprint of a detected frame: a compact
// semantic identity derived from the parts a polymorphic engine cannot
// cheaply randomize. Where the exact 128-bit payload fingerprint
// changes on every re-encoding (a different key, a reshuffled decoder,
// fresh junk), the sketch survives mutation:
//
//   - Template is a hash of the matched template names — the behavior
//     class the decoder exhibited, whatever its concrete bytes.
//   - Stmts is a hash of the matched decode chain's statement multiset
//     (the mnemonics behind Detection.Addrs) — the operational shape
//     of the decoder after substitution and reordering.
//   - TailA/TailB/TailN identify the canonical decoded tail: the bytes
//     the frame rewrote in itself when executed in the emulator. A
//     self-decrypting payload must reproduce its cleartext to run it,
//     so two re-encodings of the same worm converge on the same tail —
//     the mutation-invariant symbol lineage tracing keys on.
//
// The tail is hashed with the same dual-FNV construction as
// core.FingerprintOf (constants duplicated here because core imports
// sem; equality is pinned by TestSketchTailMatchesCoreFingerprint), so
// a tail identity can be carried in the same 128-bit keyspace as exact
// payload fingerprints.
type Sketch struct {
	Template uint64
	Stmts    uint64
	TailA    uint64
	TailB    uint64
	TailN    int
}

// HasTail reports whether emulation recovered a decoded tail — the
// precondition for structural lineage linking.
func (s Sketch) HasTail() bool { return s.TailN > 0 }

// IsZero reports whether the sketch is unset (lineage disabled, or no
// detections to sketch).
func (s Sketch) IsZero() bool { return s == Sketch{} }

const (
	// sketchMaxFrame bounds the frames worth emulating: decoder stubs
	// plus encoded payloads are small; emulating a bulk transfer would
	// cost memory copies for no signal.
	sketchMaxFrame = 64 << 10
	// sketchMaxSteps bounds one emulation attempt. Decoder loops run a
	// few instructions per payload byte, so this covers frames far
	// larger than sketchMaxFrame allows while keeping a crafted
	// spin-loop cheap.
	sketchMaxSteps = 1 << 16
	// sketchMaxEntries caps how many sweep offsets are tried as
	// emulation entry points.
	sketchMaxEntries = 4
)

// fnv-1a pair, identical to core.FingerprintOf.
const (
	sketchPrime  = 1099511628211
	sketchBasis1 = uint64(14695981039346656037)
	sketchBasis2 = uint64(14695981039346656037 ^ 0x9e3779b97f4a7c15)
)

func hashPair(h1, h2 uint64, data []byte) (uint64, uint64) {
	for _, c := range data {
		h1 = (h1 ^ uint64(c)) * sketchPrime
		h2 = (h2 ^ uint64(c)) * (sketchPrime + 2)
	}
	return h1, h2
}

// hashStrings folds a sorted string multiset into one 64-bit symbol.
func hashStrings(ss []string) uint64 {
	h := sketchBasis1
	for _, s := range ss {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * sketchPrime
		}
		h = (h ^ 0xff) * sketchPrime // separator outside the byte alphabet
	}
	return h
}

// Sketch computes the structural fingerprint of a detected frame. ds
// must be the detections AnalyzeFrame* produced for the same frame;
// an empty ds yields the zero sketch (benign frames have no structure
// worth sketching, and skipping them is what keeps the lineage plane
// free of false symbols).
func (a *Analyzer) Sketch(frame []byte, ds []Detection) Sketch {
	if len(ds) == 0 || len(frame) == 0 {
		return Sketch{}
	}
	var sk Sketch

	names := make([]string, 0, len(ds))
	for i := range ds {
		names = append(names, ds[i].Template)
	}
	sort.Strings(names)
	sk.Template = hashStrings(names)

	// The matched decode chain's statement multiset: re-decode each
	// matched instruction at its recorded frame offset. Junk insertion
	// and out-of-order sequencing change what surrounds the chain, not
	// the chain itself, so the multiset is stable across re-encodings
	// that preserve the decoding behavior.
	var mnems []string
	for i := range ds {
		for _, addr := range ds[i].Addrs {
			if addr < 0 || addr >= len(frame) {
				continue
			}
			if in, err := x86.Decode(frame, addr); err == nil {
				mnems = append(mnems, in.Mnemonic())
			}
		}
	}
	sort.Strings(mnems)
	sk.Stmts = hashStrings(mnems)

	sk.TailA, sk.TailB, sk.TailN = decodedTail(frame, a.SweepOffsets)
	return sk
}

// decodedTail executes the frame in the emulator and hashes the bytes
// it rewrote in itself — the decoded payload a self-decrypting frame
// must materialize. Entry points follow the analyzer's sweep offsets
// (capped); each attempt runs on a fresh machine, and the attempt that
// rewrote the most bytes wins, ties broken toward the lowest entry, so
// the tail is a pure function of the frame bytes. Emulator errors are
// not failures: a decoder that ran its loop and then hit an
// unmodeled instruction has already left the cleartext in memory.
func decodedTail(frame []byte, entries []int) (a, b uint64, n int) {
	if len(frame) > sketchMaxFrame {
		return 0, 0, 0
	}
	var best []byte
	tried := 0
	for _, entry := range entries {
		if tried >= sketchMaxEntries {
			break
		}
		if entry < 0 || entry >= len(frame) {
			continue
		}
		tried++
		m := emu.New(frame)
		m.MaxSteps = sketchMaxSteps
		m.Run(entry)
		var tail []byte
		for i := range frame {
			if m.Mem[i] != frame[i] {
				tail = append(tail, m.Mem[i])
			}
		}
		if len(tail) > len(best) {
			best = tail
		}
	}
	if len(best) == 0 {
		return 0, 0, 0
	}
	a, b = hashPair(sketchBasis1, sketchBasis2, best)
	return a, b, len(best)
}
