package sem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"semnids/internal/x86"
)

// This file implements a small text format for templates so new
// behaviors can be described without recompiling — the paper's Section
// 6 plan ("classify more exploit behaviors so that we can generate
// additional useful templates").
//
// Grammar (line oriented; '#' starts a comment):
//
//	template <name> [severity=<level>]
//	  desc <free text>
//	  memxform [<Ptr>] ops=xor,add,sub [key=<Key>] [size=<n>]
//	  memload [<Ptr>] reg=<Reg> [size=<n>]
//	  memstore [<Ptr>] [size=<n>]
//	  regxform ops=mov,or,and,not [rep=<min>..<max>]
//	  advance <Ptr> [delta=<min>..<max>]
//	  backedge
//	  syscall <num> [ebx=<num>]
//	  const <v1>,<v2>,...
//	  constrange <Reg> <lo>..<hi>
//	  indirect <Reg> [<lo>..<hi>]
//	  framedata "<bytes>"
//
// Any statement may carry a trailing `optional` keyword.

// opNames usable in ops= lists.
var dslOps = map[string]x86.Opcode{
	"xor": x86.XOR, "add": x86.ADD, "sub": x86.SUB, "mov": x86.MOV,
	"or": x86.OR, "and": x86.AND, "not": x86.NOT, "neg": x86.NEG,
	"rol": x86.ROL, "ror": x86.ROR, "shl": x86.SHL, "shr": x86.SHR,
}

var dslOpNames = func() map[x86.Opcode]string {
	m := make(map[x86.Opcode]string, len(dslOps))
	for k, v := range dslOps {
		m[v] = k
	}
	return m
}()

// ParseTemplates reads the template text format.
func ParseTemplates(r io.Reader) ([]*Template, error) {
	var out []*Template
	var cur *Template
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "template" {
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: template needs a name", lineno)
			}
			cur = &Template{Name: fields[1], Severity: "medium"}
			for _, f := range fields[2:] {
				if v, ok := strings.CutPrefix(f, "severity="); ok {
					cur.Severity = v
				}
			}
			out = append(out, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: statement before any template", lineno)
		}
		if fields[0] == "desc" {
			cur.Description = strings.TrimSpace(strings.TrimPrefix(line, "desc"))
			continue
		}
		st, err := parseStmt(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		cur.Stmts = append(cur.Stmts, st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, t := range out {
		if len(t.Stmts) == 0 {
			return nil, fmt.Errorf("template %s has no statements", t.Name)
		}
		if n := countVars(t.Stmts); n > maxTemplateVars {
			return nil, fmt.Errorf("template %s names %d variables (max %d)", t.Name, n, maxTemplateVars)
		}
	}
	return out, nil
}

// countVars returns the number of distinct variables (register and
// key) the statements name; the compiled matcher indexes bindings by a
// fixed-size variable id.
func countVars(stmts []Stmt) int {
	seen := map[string]bool{}
	for i := range stmts {
		for _, v := range varRefs(&stmts[i]) {
			seen[v] = true
		}
		if k := stmts[i].Key; k != "" {
			seen[k] = true
		}
	}
	return len(seen)
}

func parseStmt(fields []string) (Stmt, error) {
	var st Stmt
	rest := fields[1:]
	// Trailing `optional`.
	if n := len(rest); n > 0 && rest[n-1] == "optional" {
		st.Optional = true
		rest = rest[:n-1]
	}

	parseRange := func(s string) (int64, int64, error) {
		lo, hi, ok := strings.Cut(s, "..")
		if !ok {
			v, err := strconv.ParseInt(s, 0, 64)
			return v, v, err
		}
		l, err := strconv.ParseInt(lo, 0, 64)
		if err != nil {
			return 0, 0, err
		}
		h, err := strconv.ParseInt(hi, 0, 64)
		return l, h, err
	}
	parseOps := func(s string) ([]x86.Opcode, error) {
		var ops []x86.Opcode
		for _, name := range strings.Split(s, ",") {
			op, ok := dslOps[name]
			if !ok {
				return nil, fmt.Errorf("unknown op %q", name)
			}
			ops = append(ops, op)
		}
		return ops, nil
	}
	ptrArg := func(s string) (string, bool) {
		if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
			return s[1 : len(s)-1], true
		}
		return "", false
	}

	switch fields[0] {
	case "memxform", "memload", "memstore":
		switch fields[0] {
		case "memxform":
			st.Kind = SMemXform
		case "memload":
			st.Kind = SMemLoad
		case "memstore":
			st.Kind = SMemStore
		}
		for _, f := range rest {
			if p, ok := ptrArg(f); ok {
				st.Ptr = p
				continue
			}
			switch {
			case strings.HasPrefix(f, "ops="):
				ops, err := parseOps(f[4:])
				if err != nil {
					return st, err
				}
				st.Ops = ops
			case strings.HasPrefix(f, "key="):
				st.Key = f[4:]
			case strings.HasPrefix(f, "reg="):
				st.Reg = f[4:]
			case strings.HasPrefix(f, "size="):
				v, err := strconv.Atoi(f[5:])
				if err != nil {
					return st, err
				}
				st.MemSize = uint8(v)
			default:
				return st, fmt.Errorf("unknown argument %q", f)
			}
		}
		if st.Ptr == "" {
			return st, fmt.Errorf("%s needs a [Ptr] argument", fields[0])
		}
		return st, nil

	case "regxform":
		st.Kind = SRegXform
		for _, f := range rest {
			switch {
			case strings.HasPrefix(f, "ops="):
				ops, err := parseOps(f[4:])
				if err != nil {
					return st, err
				}
				st.Ops = ops
			case strings.HasPrefix(f, "rep="):
				lo, hi, err := parseRange(f[4:])
				if err != nil {
					return st, err
				}
				st.MinRep, st.MaxRep = int(lo), int(hi)
			default:
				return st, fmt.Errorf("unknown argument %q", f)
			}
		}
		return st, nil

	case "advance":
		st.Kind = SAdvance
		if len(rest) < 1 {
			return st, fmt.Errorf("advance needs a pointer variable")
		}
		st.Ptr = rest[0]
		for _, f := range rest[1:] {
			if strings.HasPrefix(f, "delta=") {
				lo, hi, err := parseRange(f[6:])
				if err != nil {
					return st, err
				}
				st.MinDelta, st.MaxDelta = lo, hi
			} else {
				return st, fmt.Errorf("unknown argument %q", f)
			}
		}
		return st, nil

	case "backedge":
		st.Kind = SBackEdge
		return st, nil

	case "syscall":
		st.Kind = SSyscall
		if len(rest) < 1 {
			return st, fmt.Errorf("syscall needs a number")
		}
		v, err := strconv.ParseUint(rest[0], 0, 32)
		if err != nil {
			return st, err
		}
		st.Num = uint32(v)
		for _, f := range rest[1:] {
			if strings.HasPrefix(f, "ebx=") {
				b, err := strconv.ParseUint(f[4:], 0, 32)
				if err != nil {
					return st, err
				}
				bv := uint32(b)
				st.EBX = &bv
			} else {
				return st, fmt.Errorf("unknown argument %q", f)
			}
		}
		return st, nil

	case "const":
		st.Kind = SConst
		if len(rest) < 1 {
			return st, fmt.Errorf("const needs values")
		}
		for _, s := range strings.Split(rest[0], ",") {
			v, err := strconv.ParseUint(s, 0, 32)
			if err != nil {
				return st, err
			}
			st.Values = append(st.Values, uint32(v))
		}
		return st, nil

	case "constrange":
		st.Kind = SConstInRange
		if len(rest) < 2 {
			return st, fmt.Errorf("constrange needs a register variable and a range")
		}
		st.Reg = rest[0]
		lo, hi, err := parseRange(rest[1])
		if err != nil {
			return st, err
		}
		st.Lo, st.Hi = uint32(lo), uint32(hi)
		return st, nil

	case "indirect":
		st.Kind = SIndirect
		if len(rest) >= 1 {
			st.Reg = rest[0]
		}
		if len(rest) >= 2 {
			lo, hi, err := parseRange(rest[1])
			if err != nil {
				return st, err
			}
			st.Lo, st.Hi = uint32(lo), uint32(hi)
		}
		return st, nil

	case "framedata":
		st.Kind = SFrameData
		raw := strings.TrimSpace(strings.Join(rest, " "))
		s, err := strconv.Unquote(raw)
		if err != nil {
			return st, fmt.Errorf("framedata needs a quoted string: %w", err)
		}
		st.FrameBytes = []byte(s)
		return st, nil
	}
	return st, fmt.Errorf("unknown statement %q", fields[0])
}

// FormatTemplates renders templates back into the text format; the
// output re-parses to equivalent templates.
func FormatTemplates(w io.Writer, tpls []*Template) error {
	for i, t := range tpls {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "template %s severity=%s\n", t.Name, t.Severity); err != nil {
			return err
		}
		if t.Description != "" {
			if _, err := fmt.Fprintf(w, "  desc %s\n", t.Description); err != nil {
				return err
			}
		}
		for i := range t.Stmts {
			if _, err := fmt.Fprintf(w, "  %s\n", formatStmt(&t.Stmts[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatStmt(st *Stmt) string {
	var b strings.Builder
	opsList := func() string {
		names := make([]string, len(st.Ops))
		for i, op := range st.Ops {
			names[i] = dslOpNames[op]
		}
		return strings.Join(names, ",")
	}
	switch st.Kind {
	case SMemXform:
		fmt.Fprintf(&b, "memxform [%s] ops=%s", st.Ptr, opsList())
		if st.Key != "" {
			fmt.Fprintf(&b, " key=%s", st.Key)
		}
		if st.MemSize != 0 {
			fmt.Fprintf(&b, " size=%d", st.MemSize)
		}
	case SMemLoad:
		fmt.Fprintf(&b, "memload [%s] reg=%s", st.Ptr, st.Reg)
		if st.MemSize != 0 {
			fmt.Fprintf(&b, " size=%d", st.MemSize)
		}
	case SMemStore:
		fmt.Fprintf(&b, "memstore [%s]", st.Ptr)
		if st.MemSize != 0 {
			fmt.Fprintf(&b, " size=%d", st.MemSize)
		}
	case SRegXform:
		fmt.Fprintf(&b, "regxform ops=%s", opsList())
		if st.MinRep != 0 || st.MaxRep != 0 {
			fmt.Fprintf(&b, " rep=%d..%d", st.MinRep, st.MaxRep)
		}
	case SAdvance:
		fmt.Fprintf(&b, "advance %s", st.Ptr)
		if st.MinDelta != 0 || st.MaxDelta != 0 {
			fmt.Fprintf(&b, " delta=%d..%d", st.MinDelta, st.MaxDelta)
		}
	case SBackEdge:
		b.WriteString("backedge")
	case SSyscall:
		fmt.Fprintf(&b, "syscall %#x", st.Num)
		if st.EBX != nil {
			fmt.Fprintf(&b, " ebx=%d", *st.EBX)
		}
	case SConst:
		vals := make([]string, len(st.Values))
		for i, v := range st.Values {
			vals[i] = fmt.Sprintf("%#x", v)
		}
		fmt.Fprintf(&b, "const %s", strings.Join(vals, ","))
	case SConstInRange:
		fmt.Fprintf(&b, "constrange %s %#x..%#x", st.Reg, st.Lo, st.Hi)
	case SIndirect:
		fmt.Fprintf(&b, "indirect %s", st.Reg)
		if st.Lo != 0 || st.Hi != 0 {
			fmt.Fprintf(&b, " %#x..%#x", st.Lo, st.Hi)
		}
	case SFrameData:
		fmt.Fprintf(&b, "framedata %q", string(st.FrameBytes))
	}
	if st.Optional {
		b.WriteString(" optional")
	}
	return b.String()
}
