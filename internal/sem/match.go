package sem

import (
	"bytes"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// matcher holds the per-sequence matching context.
type matcher struct {
	nodes []ir.Node
	frame []byte

	// defCount[fam][i] = number of defs of register family fam in
	// nodes[0:i]; lets the clobber check run in O(1) per candidate.
	defCount [8][]int32

	// flowCount[i] = number of flow-breaking nodes (undecodable bytes,
	// ret, hlt) in nodes[0:i]. A matched behavior must be control-flow
	// connected: execution cannot pass through a ret or an
	// undecodable byte between one matched statement and the next.
	flowCount []int32

	// addrIndex maps instruction frame offsets to sequence position.
	addrIndex map[int]int

	steps int // backtracking budget
}

// maxSearchSteps bounds the backtracking search so that adversarial
// frames cannot consume unbounded CPU in the analyzer.
const maxSearchSteps = 1 << 20

func newMatcher(nodes []ir.Node, frame []byte) *matcher {
	m := &matcher{nodes: nodes, frame: frame, addrIndex: make(map[int]int, len(nodes))}
	for f := 0; f < 8; f++ {
		m.defCount[f] = make([]int32, len(nodes)+1)
	}
	m.flowCount = make([]int32, len(nodes)+1)
	for i, n := range nodes {
		m.addrIndex[n.Inst.Addr] = i
		for f := 0; f < 8; f++ {
			m.defCount[f][i+1] = m.defCount[f][i]
			if n.Defs&(1<<f) != 0 {
				m.defCount[f][i+1]++
			}
		}
		m.flowCount[i+1] = m.flowCount[i]
		switch n.Inst.Op {
		case x86.BAD, x86.RET, x86.HLT:
			m.flowCount[i+1]++
		}
	}
	return m
}

// flowBroken reports whether control flow is broken strictly between
// nodes lo and hi.
func (m *matcher) flowBroken(lo, hi int) bool {
	if hi <= lo+1 {
		return false
	}
	return m.flowCount[hi]-m.flowCount[lo+1] > 0
}

// defsInRange reports whether any register family in set is defined by
// nodes strictly between lo and hi.
func (m *matcher) defsInRange(set ir.RegSet, lo, hi int) bool {
	if hi <= lo+1 {
		return false
	}
	for f := 0; f < 8; f++ {
		if set&(1<<f) != 0 && m.defCount[f][hi]-m.defCount[f][lo+1] > 0 {
			return true
		}
	}
	return false
}

// expandStmts rewrites repetition (MinRep/MaxRep) into mandatory and
// optional copies so that the search only deals with optionality.
func expandStmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		min, max := s.MinRep, s.MaxRep
		if min == 0 && max == 0 {
			out = append(out, s)
			continue
		}
		if min < 1 {
			min = 1
		}
		if max < min {
			max = min
		}
		base := s
		base.MinRep, base.MaxRep = 0, 0
		for i := 0; i < min; i++ {
			c := base
			c.Optional = false
			out = append(out, c)
		}
		for i := min; i < max; i++ {
			c := base
			c.Optional = true
			out = append(out, c)
		}
	}
	return out
}

// liveness computes, for each variable, the expanded-statement index
// range [first, last] over which its register binding must survive.
type liveRange struct{ first, last int }

func varRefs(s *Stmt) []string {
	var v []string
	if s.Ptr != "" {
		v = append(v, s.Ptr)
	}
	if s.Reg != "" {
		v = append(v, s.Reg)
	}
	return v
}

func liveRanges(stmts []Stmt) map[string]liveRange {
	lr := make(map[string]liveRange)
	for i := range stmts {
		for _, v := range varRefs(&stmts[i]) {
			if _, ok := lr[v]; !ok {
				// A bound register must survive until the whole
				// behavior completes: a decryption loop whose pointer
				// is clobbered before the back edge would transform a
				// different location on the next iteration, so the
				// liveness of every variable extends to the last
				// statement.
				lr[v] = liveRange{i, len(stmts) - 1}
			}
		}
	}
	return lr
}

// Match searches nodes (one specific order) for the template.
func (m *matcher) match(tpl *Template) (*Binding, []int, bool) {
	stmts := expandStmts(tpl.Stmts)
	lr := liveRanges(stmts)
	m.steps = 0
	b := newBinding()
	matched := make([]int, 0, len(stmts))
	if m.search(stmts, lr, 0, -1, b, &matched) {
		return b, matched, true
	}
	return nil, nil, false
}

// search assigns statement s to a node after position prev.
func (m *matcher) search(stmts []Stmt, lr map[string]liveRange,
	s, prev int, b *Binding, matched *[]int) bool {
	if s == len(stmts) {
		return true
	}
	st := &stmts[s]

	// Zero-width statements consume no node.
	if st.Kind == SFrameData {
		if m.frameHasData(st) || st.Optional {
			return m.search(stmts, lr, s+1, prev, b, matched)
		}
		return false
	}

	// live: registers bound to variables that must survive the gap
	// into this statement.
	var live ir.RegSet
	for v, r := range lr {
		if r.first < s && r.last >= s {
			if reg, ok := b.Regs[v]; ok {
				live.Add(reg)
			}
		}
	}

	for i := prev + 1; i < len(m.nodes); i++ {
		if m.steps++; m.steps > maxSearchSteps {
			return false
		}
		nb := b.clone()
		if m.matchStmt(st, i, nb, *matched) {
			// Bound live registers must not be clobbered, and control
			// flow must not break, between the previous match and
			// this one.
			if prev >= 0 && (m.defsInRange(live, prev, i) || m.flowBroken(prev, i)) {
				break
			}
			*matched = append(*matched, i)
			if m.search(stmts, lr, s+1, i, nb, matched) {
				*b = *nb
				return true
			}
			*matched = (*matched)[:len(*matched)-1]
		}
		// Whether or not node i matched, if it clobbers a live
		// register or ends control flow, no candidate beyond it can
		// be valid: the gap (prev, i'] for i' > i necessarily
		// contains the violation. This bounds the scan to the
		// clobber-free window, which is what keeps matching fast on
		// junk-heavy or random frames.
		if prev >= 0 && (m.nodes[i].Defs.Intersects(live) || m.flowCount[i+1] > m.flowCount[i]) {
			break
		}
	}
	if st.Optional {
		return m.search(stmts, lr, s+1, prev, b, matched)
	}
	return false
}

// frameHasData checks the SFrameData predicate. The byte string is
// carried in the statement's FrameBytes field.
func (m *matcher) frameHasData(st *Stmt) bool {
	return len(st.FrameBytes) > 0 && bytes.Contains(m.frame, st.FrameBytes)
}

// matchStmt tests a single statement against node i, extending the
// binding nb on success. matched holds the node indices assigned to
// earlier statements.
func (m *matcher) matchStmt(st *Stmt, i int, nb *Binding, matched []int) bool {
	n := &m.nodes[i]
	in := n.Inst

	opAllowed := func(op x86.Opcode) bool {
		if len(st.Ops) == 0 {
			return true
		}
		for _, o := range st.Ops {
			if o == op {
				return true
			}
		}
		return false
	}

	// ptrMem accepts the effective-address shapes decryption loops
	// actually use: the pointer register itself, possibly with a small
	// displacement ([esi], [eax+1]). Random data misdecodes produce
	// operands like [ecx-0x49bbc9bb], which no loop that derives its
	// pointer from the payload address would ever contain.
	ptrMem := func(m x86.MemRef) bool {
		if st.MemSize != 0 && m.Size != st.MemSize {
			return false
		}
		return m.Base != x86.RegNone && m.Index == x86.RegNone &&
			m.Disp >= -255 && m.Disp <= 255
	}

	switch st.Kind {
	case SMemXform:
		if !opAllowed(in.Op) {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if a0.Kind != x86.KindMem || !ptrMem(a0.Mem) {
			return false
		}
		if !nb.bindReg(st.Ptr, a0.Mem.Base) {
			return false
		}
		// Resolve the key.
		switch a1.Kind {
		case x86.KindImm:
			key := uint32(a1.Imm) & widthMaskFor(a0.Mem.Size)
			if key == 0 {
				return false // a zero key is not a transformation
			}
			if st.Key != "" {
				nb.Keys[st.Key] = key
			}
		case x86.KindReg:
			// The key must resolve to a concrete constant, exactly as
			// the symbolic constants of [5]'s templates must bind to a
			// value. A real decryptor's key register is loaded from
			// (possibly obscured) constants that the IR's folding
			// resolves; a random byte-soup `xor [edi], dl` has no
			// resolvable key and is rejected — the major benign-data
			// false-positive class.
			v, known := n.ConstBefore(a1.Reg)
			if !known {
				return false
			}
			key := v & widthMaskFor(a0.Mem.Size)
			if key == 0 {
				return false
			}
			if st.Key != "" {
				nb.Keys[st.Key] = key
			}
		case x86.KindNone:
			// Unary transforms (not/neg/inc/dec on memory).
			if in.Op != x86.NOT && in.Op != x86.NEG && in.Op != x86.INC && in.Op != x86.DEC {
				return false
			}
		}
		return true

	case SMemLoad:
		switch in.Op {
		case x86.MOV:
			a0, a1 := in.Args[0], in.Args[1]
			if a0.Kind != x86.KindReg || a1.Kind != x86.KindMem || !ptrMem(a1.Mem) {
				return false
			}
			return nb.bindReg(st.Ptr, a1.Mem.Base) && nb.bindReg(st.Reg, a0.Reg)
		case x86.LODSB, x86.LODSD:
			return nb.bindReg(st.Ptr, x86.ESI) && nb.bindReg(st.Reg, x86.EAX)
		}
		return false

	case SMemStore:
		switch in.Op {
		case x86.MOV:
			a0, a1 := in.Args[0], in.Args[1]
			if a0.Kind != x86.KindMem || !ptrMem(a0.Mem) || a1.Kind != x86.KindReg {
				return false
			}
			return nb.bindReg(st.Ptr, a0.Mem.Base)
		case x86.STOSB, x86.STOSD:
			return nb.bindReg(st.Ptr, x86.EDI)
		}
		return false

	case SRegXform:
		if !opAllowed(in.Op) {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if a0.Kind != x86.KindReg {
			return false
		}
		// Source must not be memory: loads are a separate statement.
		if a1.Kind == x86.KindMem {
			return false
		}
		return true

	case SAdvance:
		fam, delta, ok := n.Advance()
		if !ok {
			return false
		}
		if delta < 0 {
			delta = -delta
		}
		min, max := st.MinDelta, st.MaxDelta
		if min == 0 && max == 0 {
			min, max = 1, 8
		}
		if delta < min || delta > max {
			return false
		}
		return nb.bindReg(st.Ptr, fam)

	case SBackEdge:
		if !in.Op.IsCondBranch() || !in.HasTarget {
			return false
		}
		// The target must be a real instruction boundary in this
		// decode, already visited in sequence order. This covers both
		// plain backward loops and out-of-order code (where the
		// back-edge target can be later in address order but earlier
		// in execution order), while rejecting phantom loops in
		// misaligned decodes whose targets fall between instructions.
		j, ok := m.addrIndex[in.Target]
		if !ok || j >= i {
			return false
		}
		// The loop must actually re-execute the matched behavior: the
		// back edge re-enters at or before the first matched
		// statement (loop setup code may sit between the entry point
		// and the transform, so "at or before" is the right bound).
		if len(matched) > 0 && j > matched[0] {
			return false
		}
		// Executable loops contain no undecodable bytes and no
		// early returns: a BAD marker or a ret inside [target,
		// backedge] means this "loop" is a phantom in misdecoded
		// data, since execution could never complete an iteration.
		if m.flowCount[i+1]-m.flowCount[j] > 0 {
			return false
		}
		return true

	case SSyscall:
		if in.Op != x86.INT || in.Args[0].Kind != x86.KindImm || in.Args[0].Imm != 0x80 {
			return false
		}
		v, known := n.ConstBefore(x86.EAX)
		if !known || v != st.Num {
			return false
		}
		if st.EBX != nil {
			bv, bknown := n.ConstBefore(x86.EBX)
			if !bknown || bv != *st.EBX {
				return false
			}
		}
		return true

	case SConst:
		for _, a := range in.Args {
			switch a.Kind {
			case x86.KindImm:
				for _, v := range st.Values {
					if uint32(a.Imm) == v {
						return true
					}
				}
			case x86.KindReg:
				if cv, known := n.ConstBefore(a.Reg); known {
					for _, v := range st.Values {
						if cv == v {
							return true
						}
					}
				}
			}
		}
		return false

	case SConstInRange:
		if in.Op != x86.MOV && in.Op != x86.PUSH {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if in.Op == x86.MOV {
			if a0.Kind != x86.KindReg || a1.Kind != x86.KindImm {
				return false
			}
			v := uint32(a1.Imm)
			if v < st.Lo || v > st.Hi {
				return false
			}
			return nb.bindReg(st.Reg, a0.Reg)
		}
		// push imm in range (followed elsewhere by ret/pop)
		if a0.Kind != x86.KindImm {
			return false
		}
		v := uint32(a0.Imm)
		return v >= st.Lo && v <= st.Hi

	case SIndirect:
		if in.Op != x86.CALL && in.Op != x86.JMP {
			return false
		}
		var through x86.Reg
		switch a0 := in.Args[0]; a0.Kind {
		case x86.KindReg:
			through = a0.Reg
		case x86.KindMem:
			through = a0.Mem.Base
		}
		if through == x86.RegNone {
			return false
		}
		if st.Reg != "" && !nb.bindReg(st.Reg, through) {
			return false
		}
		if st.Lo != 0 || st.Hi != 0 {
			v, known := n.ConstBefore(through)
			if !known || v < st.Lo || v > st.Hi {
				return false
			}
		}
		return true
	}
	return false
}

func widthMaskFor(size uint8) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}
