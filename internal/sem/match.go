package sem

import (
	"bytes"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// matcher holds the per-sequence matching context. A matcher is
// reusable: reset rebinds it to a new node sequence, retaining the
// grown index buffers, so the hot path builds its per-order tables
// without allocating.
type matcher struct {
	nodes []ir.Node
	frame []byte

	// defCount[fam][i] = number of defs of register family fam in
	// nodes[0:i]; lets the clobber check run in O(1) per candidate.
	// The eight rows share one flat buffer.
	defCount [8][]int32
	defBuf   []int32

	// flowCount[i] = number of flow-breaking nodes (undecodable bytes,
	// ret, hlt) in nodes[0:i]. A matched behavior must be control-flow
	// connected: execution cannot pass through a ret or an
	// undecodable byte between one matched statement and the next.
	flowCount []int32

	// addrIndex maps instruction frame offsets to sequence position
	// (-1 = no instruction at that offset). Indexed directly by
	// offset, which the SBackEdge check hits once per candidate.
	addrIndex []int32

	// opsSeen is the set of opcodes present in nodes; compiled
	// template prefilters reject impossible templates against it
	// before any search starts.
	opsSeen opMask

	matched []int // scratch for the matched node indices

	// binds is the binding stack: binds[d] is the candidate binding at
	// search depth d. An explicit stack (rather than locals passed by
	// pointer through the recursion) keeps candidate bindings out of
	// the heap — escape analysis must otherwise assume a pointer
	// passed into a recursive call escapes.
	binds []binding

	steps int // backtracking budget
}

// maxSearchSteps bounds the backtracking search so that adversarial
// frames cannot consume unbounded CPU in the analyzer.
const maxSearchSteps = 1 << 20

// reset rebinds the matcher to a node sequence, rebuilding the
// def/flow prefix sums, the address index and the opcode presence set.
func (m *matcher) reset(nodes []ir.Node, frame []byte) {
	m.nodes, m.frame = nodes, frame
	m.opsSeen = opMask{}

	n := len(nodes)
	if cap(m.defBuf) < 8*(n+1) {
		m.defBuf = make([]int32, 8*(n+1))
	} else {
		m.defBuf = m.defBuf[:8*(n+1)]
	}
	for f := 0; f < 8; f++ {
		m.defCount[f] = m.defBuf[f*(n+1) : (f+1)*(n+1)]
		m.defCount[f][0] = 0
	}
	if cap(m.flowCount) < n+1 {
		m.flowCount = make([]int32, n+1)
	} else {
		m.flowCount = m.flowCount[:n+1]
	}
	m.flowCount[0] = 0

	maxAddr := 0
	for i := range nodes {
		if a := nodes[i].Inst.Addr; a > maxAddr {
			maxAddr = a
		}
	}
	if cap(m.addrIndex) < maxAddr+1 {
		m.addrIndex = make([]int32, maxAddr+1)
	} else {
		m.addrIndex = m.addrIndex[:maxAddr+1]
	}
	for i := range m.addrIndex {
		m.addrIndex[i] = -1
	}

	for i := range nodes {
		nd := &nodes[i]
		m.addrIndex[nd.Inst.Addr] = int32(i)
		m.opsSeen.Add(nd.Inst.Op)
		defs := nd.Defs
		for f := 0; f < 8; f++ {
			c := m.defCount[f][i]
			if defs&(1<<f) != 0 {
				c++
			}
			m.defCount[f][i+1] = c
		}
		fc := m.flowCount[i]
		switch nd.Inst.Op {
		case x86.BAD, x86.RET, x86.HLT:
			fc++
		}
		m.flowCount[i+1] = fc
	}
}

// lookupAddr returns the sequence position of the instruction at frame
// offset addr, if any.
func (m *matcher) lookupAddr(addr int) (int, bool) {
	if addr < 0 || addr >= len(m.addrIndex) {
		return 0, false
	}
	if j := m.addrIndex[addr]; j >= 0 {
		return int(j), true
	}
	return 0, false
}

// canMatch is the per-order prefilter: every mandatory restricted-
// vocabulary statement needs at least one instruction with an
// acceptable opcode somewhere in the sequence.
func (m *matcher) canMatch(ct *compiledTemplate) bool {
	for i := range ct.opNeeds {
		if !ct.opNeeds[i].Intersects(&m.opsSeen) {
			return false
		}
	}
	return true
}

// flowBroken reports whether control flow is broken strictly between
// nodes lo and hi.
func (m *matcher) flowBroken(lo, hi int) bool {
	if hi <= lo+1 {
		return false
	}
	return m.flowCount[hi]-m.flowCount[lo+1] > 0
}

// defsInRange reports whether any register family in set is defined by
// nodes strictly between lo and hi.
func (m *matcher) defsInRange(set ir.RegSet, lo, hi int) bool {
	if hi <= lo+1 {
		return false
	}
	for f := 0; f < 8; f++ {
		if set&(1<<f) != 0 && m.defCount[f][hi]-m.defCount[f][lo+1] > 0 {
			return true
		}
	}
	return false
}

// match searches nodes (one specific order) for the compiled template.
// The returned binding and index slice are the matcher's scratch,
// valid until the next match call.
func (m *matcher) match(ct *compiledTemplate) (*binding, []int, bool) {
	if !m.canMatch(ct) {
		return nil, nil, false
	}
	m.steps = 0
	if cap(m.binds) < len(ct.stmts)+1 {
		m.binds = make([]binding, len(ct.stmts)+1)
	} else {
		m.binds = m.binds[:len(ct.stmts)+1]
	}
	m.binds[0] = binding{}
	m.matched = m.matched[:0]
	if m.search(ct, 0, -1, 0, &m.matched) {
		return &m.binds[0], m.matched, true
	}
	return nil, nil, false
}

// search assigns statement s to a node after position prev. bi indexes
// the binding stack entry holding the assignment built so far; on
// success the completed binding has been copied back into binds[bi].
func (m *matcher) search(ct *compiledTemplate, s, prev, bi int, matched *[]int) bool {
	if s == len(ct.stmts) {
		return true
	}
	st := &ct.stmts[s]

	// Zero-width statements consume no node.
	if st.Kind == SFrameData {
		if m.frameHasData(&st.Stmt) || st.Optional {
			return m.search(ct, s+1, prev, bi, matched)
		}
		return false
	}

	// live: registers bound to variables that must survive the gap
	// into this statement.
	b := &m.binds[bi]
	var live ir.RegSet
	for _, id := range ct.liveVars[s] {
		if reg, ok := b.reg(id); ok {
			live.Add(reg)
		}
	}

	for i := prev + 1; i < len(m.nodes); i++ {
		if m.steps++; m.steps > maxSearchSteps {
			return false
		}
		m.binds[bi+1] = *b
		if m.matchStmt(st, i, &m.binds[bi+1]) {
			// Bound live registers must not be clobbered, and control
			// flow must not break, between the previous match and
			// this one.
			if prev >= 0 && (m.defsInRange(live, prev, i) || m.flowBroken(prev, i)) {
				break
			}
			*matched = append(*matched, i)
			if m.search(ct, s+1, i, bi+1, matched) {
				m.binds[bi] = m.binds[bi+1]
				return true
			}
			*matched = (*matched)[:len(*matched)-1]
		}
		// Whether or not node i matched, if it clobbers a live
		// register or ends control flow, no candidate beyond it can
		// be valid: the gap (prev, i'] for i' > i necessarily
		// contains the violation. This bounds the scan to the
		// clobber-free window, which is what keeps matching fast on
		// junk-heavy or random frames.
		if prev >= 0 && (m.nodes[i].Defs.Intersects(live) || m.flowCount[i+1] > m.flowCount[i]) {
			break
		}
	}
	if st.Optional {
		return m.search(ct, s+1, prev, bi, matched)
	}
	return false
}

// frameHasData checks the SFrameData predicate. The byte string is
// carried in the statement's FrameBytes field.
func (m *matcher) frameHasData(st *Stmt) bool {
	return len(st.FrameBytes) > 0 && bytes.Contains(m.frame, st.FrameBytes)
}

// matchStmt tests a single statement against node i, extending the
// binding nb on success. The matcher's matched scratch holds the node
// indices assigned to earlier statements.
func (m *matcher) matchStmt(st *cstmt, i int, nb *binding) bool {
	n := &m.nodes[i]
	in := &n.Inst

	opAllowed := func(op x86.Opcode) bool {
		if len(st.Ops) == 0 {
			return true
		}
		for _, o := range st.Ops {
			if o == op {
				return true
			}
		}
		return false
	}

	// ptrMem accepts the effective-address shapes decryption loops
	// actually use: the pointer register itself, possibly with a small
	// displacement ([esi], [eax+1]). Random data misdecodes produce
	// operands like [ecx-0x49bbc9bb], which no loop that derives its
	// pointer from the payload address would ever contain.
	ptrMem := func(m x86.MemRef) bool {
		if st.MemSize != 0 && m.Size != st.MemSize {
			return false
		}
		return m.Base != x86.RegNone && m.Index == x86.RegNone &&
			m.Disp >= -255 && m.Disp <= 255
	}

	switch st.Kind {
	case SMemXform:
		if !opAllowed(in.Op) {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if a0.Kind != x86.KindMem || !ptrMem(a0.Mem) {
			return false
		}
		if !nb.bindReg(st.ptrVar, a0.Mem.Base) {
			return false
		}
		// Resolve the key.
		switch a1.Kind {
		case x86.KindImm:
			key := uint32(a1.Imm) & widthMaskFor(a0.Mem.Size)
			if key == 0 {
				return false // a zero key is not a transformation
			}
			nb.setKey(st.keyVar, key)
		case x86.KindReg:
			// The key must resolve to a concrete constant, exactly as
			// the symbolic constants of [5]'s templates must bind to a
			// value. A real decryptor's key register is loaded from
			// (possibly obscured) constants that the IR's folding
			// resolves; a random byte-soup `xor [edi], dl` has no
			// resolvable key and is rejected — the major benign-data
			// false-positive class.
			v, known := n.ConstBefore(a1.Reg)
			if !known {
				return false
			}
			key := v & widthMaskFor(a0.Mem.Size)
			if key == 0 {
				return false
			}
			nb.setKey(st.keyVar, key)
		case x86.KindNone:
			// Unary transforms (not/neg/inc/dec on memory).
			if in.Op != x86.NOT && in.Op != x86.NEG && in.Op != x86.INC && in.Op != x86.DEC {
				return false
			}
		}
		return true

	case SMemLoad:
		switch in.Op {
		case x86.MOV:
			a0, a1 := in.Args[0], in.Args[1]
			if a0.Kind != x86.KindReg || a1.Kind != x86.KindMem || !ptrMem(a1.Mem) {
				return false
			}
			return nb.bindReg(st.ptrVar, a1.Mem.Base) && nb.bindReg(st.regVar, a0.Reg)
		case x86.LODSB, x86.LODSD:
			return nb.bindReg(st.ptrVar, x86.ESI) && nb.bindReg(st.regVar, x86.EAX)
		}
		return false

	case SMemStore:
		switch in.Op {
		case x86.MOV:
			a0, a1 := in.Args[0], in.Args[1]
			if a0.Kind != x86.KindMem || !ptrMem(a0.Mem) || a1.Kind != x86.KindReg {
				return false
			}
			return nb.bindReg(st.ptrVar, a0.Mem.Base)
		case x86.STOSB, x86.STOSD:
			return nb.bindReg(st.ptrVar, x86.EDI)
		}
		return false

	case SRegXform:
		if !opAllowed(in.Op) {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if a0.Kind != x86.KindReg {
			return false
		}
		// Source must not be memory: loads are a separate statement.
		if a1.Kind == x86.KindMem {
			return false
		}
		return true

	case SAdvance:
		fam, delta, ok := n.Advance()
		if !ok {
			return false
		}
		if delta < 0 {
			delta = -delta
		}
		min, max := st.MinDelta, st.MaxDelta
		if min == 0 && max == 0 {
			min, max = 1, 8
		}
		if delta < min || delta > max {
			return false
		}
		return nb.bindReg(st.ptrVar, fam)

	case SBackEdge:
		if !in.Op.IsCondBranch() || !in.HasTarget {
			return false
		}
		// The target must be a real instruction boundary in this
		// decode, already visited in sequence order. This covers both
		// plain backward loops and out-of-order code (where the
		// back-edge target can be later in address order but earlier
		// in execution order), while rejecting phantom loops in
		// misaligned decodes whose targets fall between instructions.
		j, ok := m.lookupAddr(in.Target)
		if !ok || j >= i {
			return false
		}
		// The loop must actually re-execute the matched behavior: the
		// back edge re-enters at or before the first matched
		// statement (loop setup code may sit between the entry point
		// and the transform, so "at or before" is the right bound).
		if matched := m.matched; len(matched) > 0 && j > matched[0] {
			return false
		}
		// Executable loops contain no undecodable bytes and no
		// early returns: a BAD marker or a ret inside [target,
		// backedge] means this "loop" is a phantom in misdecoded
		// data, since execution could never complete an iteration.
		if m.flowCount[i+1]-m.flowCount[j] > 0 {
			return false
		}
		return true

	case SSyscall:
		if in.Op != x86.INT || in.Args[0].Kind != x86.KindImm || in.Args[0].Imm != 0x80 {
			return false
		}
		v, known := n.ConstBefore(x86.EAX)
		if !known || v != st.Num {
			return false
		}
		if st.EBX != nil {
			bv, bknown := n.ConstBefore(x86.EBX)
			if !bknown || bv != *st.EBX {
				return false
			}
		}
		return true

	case SConst:
		for _, a := range in.Args {
			switch a.Kind {
			case x86.KindImm:
				for _, v := range st.Values {
					if uint32(a.Imm) == v {
						return true
					}
				}
			case x86.KindReg:
				if cv, known := n.ConstBefore(a.Reg); known {
					for _, v := range st.Values {
						if cv == v {
							return true
						}
					}
				}
			}
		}
		return false

	case SConstInRange:
		if in.Op != x86.MOV && in.Op != x86.PUSH {
			return false
		}
		a0, a1 := in.Args[0], in.Args[1]
		if in.Op == x86.MOV {
			if a0.Kind != x86.KindReg || a1.Kind != x86.KindImm {
				return false
			}
			v := uint32(a1.Imm)
			if v < st.Lo || v > st.Hi {
				return false
			}
			return nb.bindReg(st.regVar, a0.Reg)
		}
		// push imm in range (followed elsewhere by ret/pop)
		if a0.Kind != x86.KindImm {
			return false
		}
		v := uint32(a0.Imm)
		return v >= st.Lo && v <= st.Hi

	case SIndirect:
		if in.Op != x86.CALL && in.Op != x86.JMP {
			return false
		}
		var through x86.Reg
		switch a0 := in.Args[0]; a0.Kind {
		case x86.KindReg:
			through = a0.Reg
		case x86.KindMem:
			through = a0.Mem.Base
		}
		if through == x86.RegNone {
			return false
		}
		if !nb.bindReg(st.regVar, through) {
			return false
		}
		if st.Lo != 0 || st.Hi != 0 {
			v, known := n.ConstBefore(through)
			if !known || v < st.Lo || v > st.Hi {
				return false
			}
		}
		return true
	}
	return false
}

func widthMaskFor(size uint8) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}
