package sem

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// TestBuiltinTemplateArtifact keeps templates/builtin.tpl (the
// shipped, loadable form of the built-in set) in sync with the code.
func TestBuiltinTemplateArtifact(t *testing.T) {
	data, err := os.ReadFile("../../templates/builtin.tpl")
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	parsed, err := ParseTemplates(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	builtin := BuiltinTemplates()
	if len(parsed) != len(builtin) {
		t.Fatalf("artifact has %d templates, code has %d — regenerate templates/builtin.tpl",
			len(parsed), len(builtin))
	}
	for i := range builtin {
		a, b := builtin[i], parsed[i]
		if a.Name != b.Name || len(a.Stmts) != len(b.Stmts) {
			t.Errorf("template %d (%s) diverged from the artifact — regenerate templates/builtin.tpl", i, a.Name)
			continue
		}
		for j := range a.Stmts {
			sa, sb := a.Stmts[j], b.Stmts[j]
			if (sa.EBX == nil) != (sb.EBX == nil) || (sa.EBX != nil && *sa.EBX != *sb.EBX) {
				t.Errorf("template %s stmt %d EBX diverged", a.Name, j)
			}
			sa.EBX, sb.EBX = nil, nil
			if !reflect.DeepEqual(sa, sb) {
				t.Errorf("template %s stmt %d diverged:\n  code:     %+v\n  artifact: %+v",
					a.Name, j, sa, sb)
			}
		}
	}
}
