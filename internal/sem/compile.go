package sem

import (
	"fmt"

	"semnids/internal/x86"
)

// maxTemplateVars bounds the distinct variables one template may name.
// The compiled matcher keeps bindings in fixed-size arrays indexed by a
// small variable id, which is what makes extending a candidate binding
// a register copy instead of a map clone on the hot path.
const maxTemplateVars = 16

// opMask is a bitset over the full Opcode space (x86.OpSet: the type
// moved next to the decoder so the sweep-start viability pass can
// share it).
type opMask = x86.OpSet

// cstmt is one expanded template statement with its variable references
// resolved to ids.
type cstmt struct {
	Stmt
	ptrVar int8 // id of Ptr, -1 if unnamed
	regVar int8 // id of Reg, -1 if unnamed
	keyVar int8 // id of Key, -1 if unnamed
}

// compiledTemplate is the one-time-preprocessed form of a Template:
// repetitions expanded, variables interned, liveness precomputed, and
// impossibility prefilters derived. Everything here used to be rebuilt
// by the matcher for every frame × offset × order; now it is computed
// exactly once per template.
type compiledTemplate struct {
	stmts []cstmt

	// varNames[id] is the source name of variable id.
	varNames []string

	// liveVars[s] lists the variable ids whose bound register must
	// survive the gap into statement s (ids first referenced by an
	// earlier statement; a bound register stays live to the end of the
	// behavior — see liveRanges).
	liveVars [][]int8

	// frameNeeds are the byte strings of mandatory SFrameData
	// statements: if any is absent from the raw frame, the template
	// cannot match at any sweep offset or order.
	frameNeeds [][]byte

	// opNeeds holds, for each mandatory node-consuming statement whose
	// vocabulary is a restricted opcode set, that set. If any entry
	// has an empty intersection with the opcodes present in an
	// instruction order, the template cannot match in that order and
	// the backtracking search is skipped.
	opNeeds []opMask
}

// compiled returns the template's compiled form, building it on first
// use. Safe for concurrent use.
func (t *Template) compiled() *compiledTemplate {
	t.compileOnce.Do(func() { t.ct = compileTemplate(t) })
	return t.ct
}

// Compile precompiles the template's matcher form eagerly (it is
// otherwise built lazily on first match) and returns the template for
// chaining. It panics if the template names more than maxTemplateVars
// distinct variables; ParseTemplates rejects such templates earlier
// with an error.
func (t *Template) Compile() *Template {
	t.compiled()
	return t
}

func compileTemplate(t *Template) *compiledTemplate {
	expanded := expandStmts(t.Stmts)
	ct := &compiledTemplate{stmts: make([]cstmt, len(expanded))}

	intern := func(name string) int8 {
		if name == "" {
			return -1
		}
		for id, n := range ct.varNames {
			if n == name {
				return int8(id)
			}
		}
		if len(ct.varNames) >= maxTemplateVars {
			panic(fmt.Sprintf("sem: template %s names more than %d variables", t.Name, maxTemplateVars))
		}
		ct.varNames = append(ct.varNames, name)
		return int8(len(ct.varNames) - 1)
	}

	for i, s := range expanded {
		ct.stmts[i] = cstmt{
			Stmt:   s,
			ptrVar: intern(s.Ptr),
			regVar: intern(s.Reg),
			keyVar: intern(s.Key),
		}
	}

	// Liveness: a variable first referenced by statement i must keep
	// its binding from i through the last statement (liveRanges), so
	// the set live into statement s is every register variable first
	// referenced strictly before s.
	lr := liveRanges(expanded)
	ct.liveVars = make([][]int8, len(expanded))
	for s := range expanded {
		var ids []int8
		for id, name := range ct.varNames {
			if r, ok := lr[name]; ok && r.first < s && r.last >= s {
				ids = append(ids, int8(id))
			}
		}
		ct.liveVars[s] = ids
	}

	// Prefilters, from mandatory statements only: an optional statement
	// can be skipped, so it cannot make a match impossible.
	for i := range ct.stmts {
		st := &ct.stmts[i]
		if st.Optional {
			continue
		}
		if st.Kind == SFrameData {
			if len(st.FrameBytes) > 0 {
				ct.frameNeeds = append(ct.frameNeeds, st.FrameBytes)
			}
			continue
		}
		if need, ok := stmtOpMask(&st.Stmt); ok {
			ct.opNeeds = append(ct.opNeeds, need)
		}
	}
	return ct
}

// stmtOpMask returns the set of opcodes an instruction must have for
// the statement to possibly match it, and whether such a restriction
// exists. The sets mirror matchStmt's acceptance logic exactly and
// must stay a (possibly proper) superset of what matchStmt accepts.
func stmtOpMask(st *Stmt) (opMask, bool) {
	var m opMask
	switch st.Kind {
	case SMemXform, SRegXform:
		if len(st.Ops) == 0 {
			return m, false // any opcode allowed
		}
		for _, op := range st.Ops {
			m.Add(op)
		}
		return m, true
	case SMemLoad:
		m.Add(x86.MOV)
		m.Add(x86.LODSB)
		m.Add(x86.LODSD)
		return m, true
	case SMemStore:
		m.Add(x86.MOV)
		m.Add(x86.STOSB)
		m.Add(x86.STOSD)
		return m, true
	case SAdvance:
		// Node.Advance only recognizes these opcodes.
		m.Add(x86.INC)
		m.Add(x86.DEC)
		m.Add(x86.ADD)
		m.Add(x86.SUB)
		m.Add(x86.LEA)
		return m, true
	case SBackEdge:
		// Opcode.IsCondBranch.
		m.Add(x86.JCC)
		m.Add(x86.LOOP)
		m.Add(x86.LOOPE)
		m.Add(x86.LOOPNE)
		m.Add(x86.JECXZ)
		return m, true
	case SSyscall:
		m.Add(x86.INT)
		return m, true
	case SConstInRange:
		m.Add(x86.MOV)
		m.Add(x86.PUSH)
		return m, true
	case SIndirect:
		m.Add(x86.CALL)
		m.Add(x86.JMP)
		return m, true
	}
	return m, false
}

// expandStmts rewrites repetition (MinRep/MaxRep) into mandatory and
// optional copies so that the search only deals with optionality.
func expandStmts(stmts []Stmt) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		min, max := s.MinRep, s.MaxRep
		if min == 0 && max == 0 {
			out = append(out, s)
			continue
		}
		if min < 1 {
			min = 1
		}
		if max < min {
			max = min
		}
		base := s
		base.MinRep, base.MaxRep = 0, 0
		for i := 0; i < min; i++ {
			c := base
			c.Optional = false
			out = append(out, c)
		}
		for i := min; i < max; i++ {
			c := base
			c.Optional = true
			out = append(out, c)
		}
	}
	return out
}

// liveness computes, for each variable, the expanded-statement index
// range [first, last] over which its register binding must survive.
type liveRange struct{ first, last int }

func varRefs(s *Stmt) []string {
	var v []string
	if s.Ptr != "" {
		v = append(v, s.Ptr)
	}
	if s.Reg != "" {
		v = append(v, s.Reg)
	}
	return v
}

func liveRanges(stmts []Stmt) map[string]liveRange {
	lr := make(map[string]liveRange)
	for i := range stmts {
		for _, v := range varRefs(&stmts[i]) {
			if _, ok := lr[v]; !ok {
				// A bound register must survive until the whole
				// behavior completes: a decryption loop whose pointer
				// is clobbered before the back edge would transform a
				// different location on the next iteration, so the
				// liveness of every variable extends to the last
				// statement.
				lr[v] = liveRange{i, len(stmts) - 1}
			}
		}
	}
	return lr
}
