// Package classify implements the paper's traffic classification stage
// (Section 4.1): deciding which packets are "interesting" enough to be
// passed to the CPU-intensive binary extraction and semantic analysis
// stages. Two schemes are implemented, exactly as in the prototype:
//
//  1. Honeypot: a configured list of decoy addresses that exist only to
//     attract unsolicited traffic. Any host that sends anything to a
//     decoy is suspicious from then on.
//  2. Dark address space: the network's unused address ranges are
//     registered; a source that touches t distinct unused addresses is
//     considered a scanner and all its subsequent traffic is analyzed.
package classify

import (
	"net/netip"
	"sort"
	"sync"

	"semnids/internal/netpkt"
)

// Reason explains why a packet was selected for analysis.
type Reason string

const (
	ReasonNone       Reason = ""
	ReasonHoneypot   Reason = "destination is a honeypot decoy"
	ReasonScanner    Reason = "source exceeded dark-space scan threshold"
	ReasonSuspicious Reason = "source previously marked suspicious"
	ReasonAll        Reason = "classification disabled"
)

// Config parameterizes the classifier.
type Config struct {
	// Honeypots are decoy addresses registered with the NIDS.
	Honeypots []netip.Addr

	// DarkSpace lists the un-used address prefixes of the protected
	// network.
	DarkSpace []netip.Prefix

	// ScanThreshold is t: the number of distinct dark addresses a
	// source must touch to be declared a scanner. Default 3.
	ScanThreshold int

	// SuspiciousTTLUS is how long (in trace microseconds) a source
	// stays suspicious after its last triggering event. Default 10
	// minutes.
	SuspiciousTTLUS uint64

	// Disabled forwards every packet to analysis (the Section 5.4
	// false-positive experiment).
	Disabled bool
}

// Classifier tracks per-source state and renders verdicts. It is safe
// for concurrent use.
type Classifier struct {
	cfg Config

	mu         sync.Mutex
	honeypots  map[netip.Addr]bool
	suspicious map[netip.Addr]uint64 // source -> expiry timestamp
	darkSeen   map[netip.Addr]map[netip.Addr]bool

	// Counters for metrics.
	total, selected uint64
}

// New builds a classifier from cfg.
func New(cfg Config) *Classifier {
	if cfg.ScanThreshold <= 0 {
		cfg.ScanThreshold = 3
	}
	if cfg.SuspiciousTTLUS == 0 {
		cfg.SuspiciousTTLUS = 10 * 60 * 1e6
	}
	c := &Classifier{
		cfg:        cfg,
		honeypots:  make(map[netip.Addr]bool, len(cfg.Honeypots)),
		suspicious: make(map[netip.Addr]uint64),
		darkSeen:   make(map[netip.Addr]map[netip.Addr]bool),
	}
	for _, h := range cfg.Honeypots {
		c.honeypots[h] = true
	}
	return c
}

func (c *Classifier) inDarkSpace(a netip.Addr) bool {
	for _, p := range c.cfg.DarkSpace {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// Classify examines one packet and reports whether it should be
// analyzed, with the triggering reason.
func (c *Classifier) Classify(p *netpkt.Packet) (bool, Reason) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if c.cfg.Disabled {
		c.selected++
		return true, ReasonAll
	}

	now := p.TimestampUS
	src := p.SrcIP

	// Scheme 1: honeypot decoys.
	if c.honeypots[p.DstIP] {
		c.suspicious[src] = now + c.cfg.SuspiciousTTLUS
		c.selected++
		return true, ReasonHoneypot
	}

	// Scheme 2: dark address space scanning.
	if c.inDarkSpace(p.DstIP) {
		seen := c.darkSeen[src]
		if seen == nil {
			seen = make(map[netip.Addr]bool)
			c.darkSeen[src] = seen
		}
		seen[p.DstIP] = true
		if len(seen) >= c.cfg.ScanThreshold {
			c.suspicious[src] = now + c.cfg.SuspiciousTTLUS
			c.selected++
			return true, ReasonScanner
		}
	}

	// Previously marked sources stay interesting until expiry.
	if expiry, ok := c.suspicious[src]; ok {
		if now <= expiry {
			// Refresh: an active attacker stays on the list.
			c.suspicious[src] = now + c.cfg.SuspiciousTTLUS
			c.selected++
			return true, ReasonSuspicious
		}
		delete(c.suspicious, src)
		delete(c.darkSeen, src)
	}
	return false, ReasonNone
}

// MarkSuspicious force-registers a source (used when an alert fires,
// so follow-on traffic from the attacker is captured).
func (c *Classifier) MarkSuspicious(src netip.Addr, nowUS uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.suspicious[src] = nowUS + c.cfg.SuspiciousTTLUS
}

// SourceState is one source's exportable classification state: its
// suspicious-list expiry and the distinct dark-space addresses it has
// touched. The dark set is the sub-threshold scan evidence — a
// restarted sensor that re-imports it does not grant a slow scanner a
// fresh start at zero.
type SourceState struct {
	Src               netip.Addr
	SuspiciousUntilUS uint64
	Dark              []netip.Addr
}

// ExportState snapshots every source with classification state, in a
// canonical order (sources by address, dark sets sorted) so the same
// state always renders the same value.
func (c *Classifier) ExportState() []SourceState {
	c.mu.Lock()
	defer c.mu.Unlock()
	bySrc := make(map[netip.Addr]*SourceState, len(c.suspicious)+len(c.darkSeen))
	get := func(src netip.Addr) *SourceState {
		s := bySrc[src]
		if s == nil {
			s = &SourceState{Src: src}
			bySrc[src] = s
		}
		return s
	}
	for src, expiry := range c.suspicious {
		get(src).SuspiciousUntilUS = expiry
	}
	for src, seen := range c.darkSeen {
		s := get(src)
		for d := range seen {
			s.Dark = append(s.Dark, d)
		}
		sort.Slice(s.Dark, func(i, j int) bool { return s.Dark[i].Less(s.Dark[j]) })
	}
	out := make([]SourceState, 0, len(bySrc))
	for _, s := range bySrc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src.Less(out[j].Src) })
	return out
}

// ImportState folds exported classification state back in: dark sets
// union, suspicious expiries fold to the maximum — commutative and
// idempotent, like the evidence folds this state travels with. A
// union that crosses the scan threshold does not mark the source
// suspicious retroactively (there is no "now" to anchor the TTL);
// the source's next dark-space touch completes the verdict, exactly
// as one more live touch would have.
func (c *Classifier) ImportState(states []SourceState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range states {
		st := &states[i]
		if st.SuspiciousUntilUS > c.suspicious[st.Src] {
			c.suspicious[st.Src] = st.SuspiciousUntilUS
		}
		if len(st.Dark) > 0 {
			seen := c.darkSeen[st.Src]
			if seen == nil {
				seen = make(map[netip.Addr]bool, len(st.Dark))
				c.darkSeen[st.Src] = seen
			}
			for _, d := range st.Dark {
				seen[d] = true
			}
		}
	}
}

// SuspiciousCount reports the current registry size.
func (c *Classifier) SuspiciousCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.suspicious)
}

// Stats returns (total packets seen, packets selected for analysis).
func (c *Classifier) Stats() (total, selected uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, c.selected
}
