package classify

import (
	"net/netip"
	"testing"

	"semnids/internal/netpkt"
)

func pkt(src, dst string, ts uint64) *netpkt.Packet {
	return &netpkt.Packet{
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst),
		Proto: netpkt.ProtoTCP, HasTCP: true, TimestampUS: ts,
	}
}

func newTestClassifier(disabled bool) *Classifier {
	return New(Config{
		Honeypots:     []netip.Addr{netip.MustParseAddr("192.168.1.250")},
		DarkSpace:     []netip.Prefix{netip.MustParsePrefix("192.168.2.0/24")},
		ScanThreshold: 3,
		Disabled:      disabled,
	})
}

func TestHoneypotScheme(t *testing.T) {
	c := newTestClassifier(false)
	// Normal traffic from a clean host: not selected.
	if ok, _ := c.Classify(pkt("10.0.0.5", "192.168.1.10", 0)); ok {
		t.Error("clean traffic selected")
	}
	// Touching the decoy flags the source.
	ok, reason := c.Classify(pkt("10.0.0.5", "192.168.1.250", 1))
	if !ok || reason != ReasonHoneypot {
		t.Fatalf("honeypot hit: ok=%v reason=%q", ok, reason)
	}
	// All subsequent traffic from that source is analyzed.
	ok, reason = c.Classify(pkt("10.0.0.5", "192.168.1.10", 2))
	if !ok || reason != ReasonSuspicious {
		t.Errorf("follow-on traffic: ok=%v reason=%q", ok, reason)
	}
	// Other sources remain unaffected.
	if ok, _ := c.Classify(pkt("10.0.0.6", "192.168.1.10", 3)); ok {
		t.Error("unrelated source selected")
	}
}

func TestDarkSpaceScheme(t *testing.T) {
	c := newTestClassifier(false)
	// First two distinct dark addresses: below threshold t=3.
	if ok, _ := c.Classify(pkt("10.9.9.9", "192.168.2.1", 0)); ok {
		t.Error("first dark touch selected")
	}
	if ok, _ := c.Classify(pkt("10.9.9.9", "192.168.2.2", 1)); ok {
		t.Error("second dark touch selected")
	}
	// Re-touching the same address does not advance the count.
	if ok, _ := c.Classify(pkt("10.9.9.9", "192.168.2.2", 2)); ok {
		t.Error("duplicate dark address advanced the counter")
	}
	// Third distinct address crosses t.
	ok, reason := c.Classify(pkt("10.9.9.9", "192.168.2.3", 3))
	if !ok || reason != ReasonScanner {
		t.Fatalf("threshold crossing: ok=%v reason=%q", ok, reason)
	}
	// Now its traffic to real hosts is analyzed.
	ok, reason = c.Classify(pkt("10.9.9.9", "192.168.1.20", 4))
	if !ok || reason != ReasonSuspicious {
		t.Errorf("scanner follow-on: ok=%v reason=%q", ok, reason)
	}
}

func TestSuspiciousExpiry(t *testing.T) {
	c := New(Config{
		Honeypots:       []netip.Addr{netip.MustParseAddr("192.168.1.250")},
		SuspiciousTTLUS: 1000,
	})
	c.Classify(pkt("10.0.0.5", "192.168.1.250", 0))
	if c.SuspiciousCount() != 1 {
		t.Fatal("source not registered")
	}
	// Within TTL: still suspicious.
	if ok, _ := c.Classify(pkt("10.0.0.5", "192.168.1.10", 500)); !ok {
		t.Error("expired too early")
	}
	// The hit refreshed the TTL; jump far past it.
	if ok, _ := c.Classify(pkt("10.0.0.5", "192.168.1.10", 500+1001)); ok {
		t.Error("expired entry still selected")
	}
	if c.SuspiciousCount() != 0 {
		t.Error("expired entry not removed")
	}
}

func TestDisabledSelectsEverything(t *testing.T) {
	c := newTestClassifier(true)
	ok, reason := c.Classify(pkt("10.0.0.5", "192.168.1.10", 0))
	if !ok || reason != ReasonAll {
		t.Errorf("disabled classifier: ok=%v reason=%q", ok, reason)
	}
	total, selected := c.Stats()
	if total != 1 || selected != 1 {
		t.Errorf("stats: %d/%d", selected, total)
	}
}

func TestMarkSuspicious(t *testing.T) {
	c := newTestClassifier(false)
	c.MarkSuspicious(netip.MustParseAddr("10.1.1.1"), 0)
	if ok, _ := c.Classify(pkt("10.1.1.1", "192.168.1.10", 5)); !ok {
		t.Error("manually marked source not selected")
	}
}

func TestStats(t *testing.T) {
	c := newTestClassifier(false)
	for i := 0; i < 10; i++ {
		c.Classify(pkt("10.0.0.5", "192.168.1.10", uint64(i)))
	}
	c.Classify(pkt("10.0.0.5", "192.168.1.250", 11))
	total, selected := c.Stats()
	if total != 11 || selected != 1 {
		t.Errorf("stats: %d/%d", selected, total)
	}
}
