package x86

import (
	"fmt"
	"strings"
)

// OperandKind discriminates the variants of Operand.
type OperandKind uint8

const (
	KindNone OperandKind = iota
	KindReg              // a register
	KindImm              // an immediate constant
	KindMem              // a memory reference
)

// MemRef is a decoded x86 effective address: [Base + Index*Scale + Disp],
// accessing Size bytes. Base and Index may be RegNone. Seg is a textual
// segment override ("" when none).
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; meaningful only when Index != RegNone
	Disp  int32
	Size  uint8 // access width in bytes: 1, 2 or 4 (0 for LEA-style address)
	Seg   string
}

func (m MemRef) String() string {
	var b strings.Builder
	switch m.Size {
	case 1:
		b.WriteString("byte ptr ")
	case 2:
		b.WriteString("word ptr ")
	case 4:
		b.WriteString("dword ptr ")
	}
	if m.Seg != "" {
		b.WriteString(m.Seg)
		b.WriteByte(':')
	}
	b.WriteByte('[')
	wrote := false
	if m.Base != RegNone {
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.Index != RegNone {
		if wrote {
			b.WriteByte('+')
		}
		b.WriteString(m.Index.String())
		if m.Scale > 1 {
			fmt.Fprintf(&b, "*%d", m.Scale)
		}
		wrote = true
	}
	switch {
	case !wrote:
		fmt.Fprintf(&b, "0x%x", uint32(m.Disp))
	case m.Disp > 0:
		fmt.Fprintf(&b, "+0x%x", m.Disp)
	case m.Disp < 0:
		fmt.Fprintf(&b, "-0x%x", -int64(m.Disp))
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp constructs a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp constructs an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp constructs a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// IsReg reports whether the operand is the specific register r.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && o.Reg == r }

func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", -o.Imm)
		}
		return fmt.Sprintf("0x%x", o.Imm)
	case KindMem:
		return o.Mem.String()
	}
	return ""
}

// Inst is a single decoded instruction.
type Inst struct {
	Addr int // byte offset of the instruction within the decoded frame
	Len  int // encoded length in bytes

	Op   Opcode
	Cond Cond // condition for JCC / SETCC

	// Args holds up to three operands. Unused slots have Kind == KindNone.
	Args [3]Operand

	// Target is the absolute frame offset targeted by a relative
	// branch or call (Addr + Len + displacement). Valid only when
	// HasTarget is true.
	Target    int
	HasTarget bool

	// OpSize is the operand size in bytes implied by prefixes (4
	// normally, 2 under a 0x66 prefix) for size-generic opcodes.
	OpSize uint8

	// Prefix flags.
	Rep, Repne, Lock bool
}

// NArgs returns the number of operands present.
func (in Inst) NArgs() int {
	n := 0
	for _, a := range in.Args {
		if a.Kind != KindNone {
			n++
		}
	}
	return n
}

// Mnemonic returns the full mnemonic including the condition suffix for
// conditional opcodes.
func (in Inst) Mnemonic() string {
	switch in.Op {
	case JCC:
		return "j" + in.Cond.String()
	case SETCC:
		return "set" + in.Cond.String()
	case CMOVCC:
		return "cmov" + in.Cond.String()
	}
	return in.Op.String()
}

func (in Inst) String() string {
	var b strings.Builder
	if in.Lock {
		b.WriteString("lock ")
	}
	if in.Rep {
		b.WriteString("rep ")
	}
	if in.Repne {
		b.WriteString("repne ")
	}
	b.WriteString(in.Mnemonic())
	if in.HasTarget {
		fmt.Fprintf(&b, " 0x%x", in.Target)
		return b.String()
	}
	for i, a := range in.Args {
		if a.Kind == KindNone {
			break
		}
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
