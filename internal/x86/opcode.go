package x86

// Opcode is a decoded instruction mnemonic. Condition codes for Jcc and
// SETcc are carried separately in Inst.Cond.
type Opcode uint8

const (
	BAD Opcode = iota // undecodable byte; Inst.Args[0] holds the raw byte as Imm

	MOV
	MOVZX
	MOVSX
	LEA
	XCHG
	PUSH
	POP
	PUSHAD
	POPAD
	PUSHFD
	POPFD

	ADD
	ADC
	SUB
	SBB
	AND
	OR
	XOR
	CMP
	TEST
	NOT
	NEG
	INC
	DEC
	MUL
	IMUL
	DIV
	IDIV
	SHL
	SHR
	SAR
	ROL
	ROR
	RCL
	RCR
	BSWAP

	NOP
	INT
	INT3
	INTO
	JMP
	JCC
	CALL
	RET
	LEAVE
	LOOP
	LOOPE
	LOOPNE
	JECXZ

	CLD
	STD
	CLC
	STC
	CMC
	CLI
	STI
	SAHF
	LAHF
	SETCC

	CWDE
	CDQ
	XLAT
	SALC
	HLT
	WAIT
	DAA
	DAS
	AAA
	AAS
	AAM
	AAD

	MOVSB
	MOVSD
	CMPSB
	CMPSD
	STOSB
	STOSD
	LODSB
	LODSD
	SCASB
	SCASD

	CPUID
	RDTSC

	CMOVCC
	BT
	BTS
	BTR
	BTC
	SHLD
	SHRD
	CMPXCHG
	XADD

	numOpcodes
)

var opNames = [...]string{
	BAD: "(bad)",
	MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea", XCHG: "xchg",
	PUSH: "push", POP: "pop", PUSHAD: "pushad", POPAD: "popad",
	PUSHFD: "pushfd", POPFD: "popfd",
	ADD: "add", ADC: "adc", SUB: "sub", SBB: "sbb", AND: "and", OR: "or",
	XOR: "xor", CMP: "cmp", TEST: "test", NOT: "not", NEG: "neg",
	INC: "inc", DEC: "dec", MUL: "mul", IMUL: "imul", DIV: "div", IDIV: "idiv",
	SHL: "shl", SHR: "shr", SAR: "sar", ROL: "rol", ROR: "ror",
	RCL: "rcl", RCR: "rcr", BSWAP: "bswap",
	NOP: "nop", INT: "int", INT3: "int3", INTO: "into",
	JMP: "jmp", JCC: "j", CALL: "call", RET: "ret", LEAVE: "leave",
	LOOP: "loop", LOOPE: "loope", LOOPNE: "loopne", JECXZ: "jecxz",
	CLD: "cld", STD: "std", CLC: "clc", STC: "stc", CMC: "cmc",
	CLI: "cli", STI: "sti", SAHF: "sahf", LAHF: "lahf", SETCC: "set",
	CWDE: "cwde", CDQ: "cdq", XLAT: "xlat", SALC: "salc", HLT: "hlt",
	WAIT: "wait", DAA: "daa", DAS: "das", AAA: "aaa", AAS: "aas",
	AAM: "aam", AAD: "aad",
	MOVSB: "movsb", MOVSD: "movsd", CMPSB: "cmpsb", CMPSD: "cmpsd",
	STOSB: "stosb", STOSD: "stosd", LODSB: "lodsb", LODSD: "lodsd",
	SCASB: "scasb", SCASD: "scasd",
	CPUID: "cpuid", RDTSC: "rdtsc",
	CMOVCC: "cmov", BT: "bt", BTS: "bts", BTR: "btr", BTC: "btc",
	SHLD: "shld", SHRD: "shrd", CMPXCHG: "cmpxchg", XADD: "xadd",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// Cond is an x86 condition code (the low nibble of a Jcc opcode byte).
type Cond uint8

const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xa
	CondNP Cond = 0xb
	CondL  Cond = 0xc
	CondGE Cond = 0xd
	CondLE Cond = 0xe
	CondG  Cond = 0xf
)

var condNames = [...]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "?"
}

// IsBranch reports whether the opcode transfers control (conditionally
// or not), excluding CALL/RET/INT.
func (op Opcode) IsBranch() bool {
	switch op {
	case JMP, JCC, LOOP, LOOPE, LOOPNE, JECXZ:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional control
// transfer (the fall-through path also remains live).
func (op Opcode) IsCondBranch() bool {
	switch op {
	case JCC, LOOP, LOOPE, LOOPNE, JECXZ:
		return true
	}
	return false
}

// EndsFlow reports whether straight-line execution cannot continue past
// this opcode (unconditional jmp, ret, hlt).
func (op Opcode) EndsFlow() bool {
	switch op {
	case JMP, RET, HLT:
		return true
	}
	return false
}

// IsArith reports whether the opcode is a two-operand ALU operation
// whose first operand is both read and written.
func (op Opcode) IsArith() bool {
	switch op {
	case ADD, ADC, SUB, SBB, AND, OR, XOR, SHL, SHR, SAR, ROL, ROR, RCL, RCR:
		return true
	}
	return false
}
