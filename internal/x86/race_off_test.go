//go:build !race

package x86_test

const raceEnabled = false
