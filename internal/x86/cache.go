package x86

// DecodeCache memoizes linear-sweep decoding over a single frame.
//
// The semantic analyzer sweeps the same bytes from several start
// offsets (and the extraction stage estimates a code ratio over the
// same region before the analyzer sees it). x86 linear sweeps
// self-synchronize: a sweep starting at offset k converges onto the
// offset-0 instruction stream within a few bytes, after which every
// subsequent instruction is identical. The cache exploits both forms
// of redundancy:
//
//   - each byte position is decoded at most once, no matter how many
//     sweep offsets visit it;
//   - once a sweep reaches a position already on the first
//     materialized sweep's chain, its remaining instructions are
//     copied from that chain in one append instead of being re-walked
//     position by position.
//
// A DecodeCache is not safe for concurrent use. Slices returned by
// Sweep share underlying storage with the cache and with each other
// and must be treated as read-only; they remain valid until Reset.
type DecodeCache struct {
	b []byte

	// idxAt[p] is the index into store of the instruction decoded at
	// byte position p, or -1 if position p has not been decoded yet.
	idxAt []int32

	// store holds every distinct decoded instruction, append-only.
	store []Inst

	// canon is the first fully materialized sweep (the canonical
	// chain); canonAt[p] is the index within canon of the instruction
	// at position p, or -1 if p is not on the canonical chain.
	canon   []Inst
	canonAt []int32

	// sweeps memoizes the result slice per requested start offset.
	sweeps map[int][]Inst

	// used holds the divergent-prefix result slices handed out for the
	// current frame; spare recycles their storage across Resets so a
	// pooled cache sweeps successive frames without reallocating.
	used  [][]Inst
	spare [][]Inst

	// viaChain/segChain memoize the canonical chain's sweep-start
	// viability tables (see Viable); viaFor records which table built
	// them.
	viaChain []uint64
	segChain []uint64
	viaFor   *ViabilityTable
}

// NewDecodeCache returns a cache over b. No decoding happens until the
// first Sweep or CodeRatio call.
func NewDecodeCache(b []byte) *DecodeCache {
	return &DecodeCache{b: b}
}

// Bytes returns the frame the cache decodes.
func (c *DecodeCache) Bytes() []byte { return c.b }

// Reset rebinds the cache to a new frame, retaining allocated storage
// so that a pooled cache analyzes successive frames without
// reallocating its position tables.
func (c *DecodeCache) Reset(b []byte) {
	c.b = b
	c.store = c.store[:0]
	c.canon = c.canon[:0]
	c.idxAt = resetIndex(c.idxAt, len(b))
	c.canonAt = resetIndex(c.canonAt, len(b))
	clear(c.sweeps)
	c.spare = append(c.spare, c.used...)
	c.used = c.used[:0]
	c.viaFor = nil
}

// resetIndex returns idx resized to n entries, all -1.
func resetIndex(idx []int32, n int) []int32 {
	if cap(idx) < n {
		idx = make([]int32, n)
	} else {
		idx = idx[:n]
	}
	for i := range idx {
		idx[i] = -1
	}
	return idx
}

// ensureIndexed allocates the position tables on first use, so that
// constructing a cache that is never swept costs nothing.
func (c *DecodeCache) ensureIndexed() {
	if len(c.idxAt) != len(c.b) {
		c.idxAt = resetIndex(c.idxAt, len(c.b))
		c.canonAt = resetIndex(c.canonAt, len(c.b))
	}
}

// instAt decodes the instruction at byte position pos, memoized.
func (c *DecodeCache) instAt(pos int) int32 {
	if idx := c.idxAt[pos]; idx >= 0 {
		return idx
	}
	in, err := Decode(c.b, pos)
	if err != nil {
		// Same undecodable-byte representation as Sweep: a single-byte
		// BAD instruction carrying the raw byte.
		in = Inst{
			Addr: pos, Len: 1, Op: BAD,
			Args: [3]Operand{ImmOp(int64(c.b[pos]))},
		}
	}
	idx := int32(len(c.store))
	c.store = append(c.store, in)
	c.idxAt[pos] = idx
	return idx
}

// Sweep linearly disassembles the frame starting at offset start,
// byte-identical to the package-level Sweep but decoding each position
// at most once across all offsets. The returned slice is shared and
// read-only.
func (c *DecodeCache) Sweep(start int) []Inst {
	if start >= len(c.b) {
		return nil
	}
	if s, ok := c.sweeps[start]; ok {
		return s
	}
	c.ensureIndexed()

	var out []Inst
	if len(c.canon) == 0 {
		// First sweep: materialize the canonical chain and index it.
		for pos := start; pos < len(c.b); {
			in := c.store[c.instAt(pos)]
			c.canonAt[pos] = int32(len(c.canon))
			c.canon = append(c.canon, in)
			pos += in.Len
		}
		out = c.canon
	} else if i := c.canonAt[start]; i >= 0 {
		// The start itself is on the canonical chain: share its tail.
		out = c.canon[i:]
	} else {
		// Decode the divergent prefix, then bulk-copy the shared tail
		// from the point of self-synchronization.
		if n := len(c.spare); n > 0 {
			out = c.spare[n-1][:0]
			c.spare = c.spare[:n-1]
		}
		pos := start
		for pos < len(c.b) {
			if i := c.canonAt[pos]; i >= 0 {
				out = append(out, c.canon[i:]...)
				break
			}
			in := c.store[c.instAt(pos)]
			out = append(out, in)
			pos += in.Len
		}
		c.used = append(c.used, out)
	}
	if c.sweeps == nil {
		c.sweeps = make(map[int][]Inst, 8)
	}
	c.sweeps[start] = out
	return out
}

// CodeRatio estimates how much of the frame decodes as plausible
// instructions: the fraction of bytes covered by non-BAD instructions
// in a linear sweep from offset 0. The sweep is memoized, so a
// downstream analyzer sweeping the same frame reuses it.
func (c *DecodeCache) CodeRatio() float64 {
	if len(c.b) == 0 {
		return 0
	}
	good := 0
	for _, in := range c.Sweep(0) {
		if in.Op != BAD {
			good += in.Len
		}
	}
	return float64(good) / float64(len(c.b))
}
