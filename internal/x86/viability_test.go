package x86

import (
	"math/rand"
	"testing"
)

// naiveViable recomputes DecodeCache.Viable the obvious way: walk the
// chain from start, split it into flow-unbroken runs, poison runs
// reached through an in-frame jmp/call, and report whether any run
// covers a wanted template's requirements.
func naiveViable(b []byte, start int, t *ViabilityTable, want uint64) bool {
	var seg uint64
	for pos := start; pos < len(b); {
		op, l := BAD, 1
		if in, err := Decode(b, pos); err == nil {
			op, l = in.Op, in.Len
			if (op == JMP || op == CALL) && in.HasTarget &&
				in.Target >= 0 && in.Target < len(b) {
				return want != 0
			}
		}
		if op == BAD || op == RET || op == HLT {
			seg = 0
		} else {
			seg |= t.ops[op]
		}
		if t.covered(seg)&want != 0 {
			return true
		}
		pos += l
	}
	return false
}

func testViabilityTable() *ViabilityTable {
	var xorMask, advMask, branchMask, intMask OpSet
	xorMask.Add(XOR)
	xorMask.Add(ADD)
	xorMask.Add(SUB)
	advMask.Add(INC)
	advMask.Add(DEC)
	advMask.Add(ADD)
	advMask.Add(SUB)
	advMask.Add(LEA)
	branchMask.Add(JCC)
	branchMask.Add(LOOP)
	branchMask.Add(JECXZ)
	intMask.Add(INT)
	return NewViabilityTable(
		[]OpSet{xorMask, advMask, branchMask, intMask},
		// Template 0: xor ∧ advance ∧ back edge. Template 1: syscall.
		[]uint64{0b0111, 0b1000},
	)
}

func viabilityCorpora() map[string][]byte {
	junk := make([]byte, 1024)
	rand.New(rand.NewSource(7)).Read(junk)
	text := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: text/plain\r\n\r\n")
	code := []byte{
		0xb9, 0x10, 0x00, 0x00, 0x00, // mov ecx, 0x10
		0x80, 0x36, 0x55, // xor byte [esi], 0x55
		0x46,       // inc esi
		0xe2, 0xfa, // loop -6
		0xc3,       // ret (breaks the run)
		0xcd, 0x80, // int 0x80
	}
	jumpy := []byte{
		0xeb, 0x02, // jmp +2 (connector: conservatively viable)
		0xc3, 0x90, // ret; nop
		0x80, 0x36, 0x55, // xor byte [esi], 0x55
	}
	return map[string][]byte{
		"junk":  junk,
		"text":  text,
		"code":  code,
		"jumpy": jumpy,
		"tiny":  {0x90},
	}
}

// TestCacheViableDifferential proves the memoized chain-sharing form
// (DecodeCache.Viable) agrees with the same reference at every offset,
// in several sweep/viability interleavings: viability asked cold,
// after the analyzer-style offset-0 sweep, and after sweeping all
// offsets first.
func TestCacheViableDifferential(t *testing.T) {
	table := testViabilityTable()
	wants := []uint64{0b01, 0b10, 0b11}
	orders := map[string]func(c *DecodeCache, n int){
		"cold":        func(c *DecodeCache, n int) {},
		"after-sweep": func(c *DecodeCache, n int) { c.Sweep(0) },
		"after-all": func(c *DecodeCache, n int) {
			for off := 0; off < n && off < 8; off++ {
				c.Sweep(off)
			}
		},
	}
	for name, b := range viabilityCorpora() {
		for oname, prep := range orders {
			c := NewDecodeCache(b)
			prep(c, len(b))
			for start := range b {
				for _, want := range wants {
					got := c.Viable(start, table, want)
					ref := naiveViable(b, start, table, want)
					if got != ref {
						t.Errorf("%s/%s: Viable(start=%d, want=%#x) = %v, reference %v",
							name, oname, start, want, got, ref)
					}
				}
			}
			// Sweeps after viability must still be byte-identical to
			// the naive decoder (the viability pass must not corrupt
			// the memo).
			for start := 0; start < len(b) && start < 6; start++ {
				got := c.Sweep(start)
				want := Sweep(b, start)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: sweep %d length %d, want %d", name, oname, start, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: sweep %d inst %d differs", name, oname, start, i)
					}
				}
			}
		}
	}
}

// TestCacheViableReset asserts the chain memo rebuilds after Reset.
func TestCacheViableReset(t *testing.T) {
	table := testViabilityTable()
	c := NewDecodeCache([]byte{0xcd, 0x80}) // int 0x80
	if !c.Viable(0, table, 0b10) {
		t.Fatal("syscall not viable on int 0x80 frame")
	}
	c.Reset([]byte{0x90, 0x90})
	if c.Viable(0, table, 0b11) {
		t.Fatal("nop frame viable after Reset")
	}
}

// TestViableRuns pins the run semantics directly: a complete
// decrypt-loop shape is viable from its start, the syscall after a ret
// is viable for the syscall template only, and a run split by ret does
// not leak bits across.
func TestViableRuns(t *testing.T) {
	table := testViabilityTable()
	code := []byte{
		0x80, 0x36, 0x55, // xor byte [esi], 0x55
		0x46,       // inc esi
		0x75, 0xfa, // jnz -6
		0xc3,       // ret
		0x90, 0x90, // nop; nop (run with nothing in it)
	}
	c := NewDecodeCache(code)
	if !c.Viable(0, table, 0b01) {
		t.Error("decrypt loop not viable from offset 0")
	}
	if c.Viable(0, table, 0b10) {
		t.Error("syscall template viable with no int 0x80 in frame")
	}
	if c.Viable(7, table, 0b11) {
		t.Error("post-ret nop run reported viable")
	}

	c.Reset([]byte{0xc3, 0xcd, 0x80}) // ret; int 0x80
	if !c.Viable(0, table, 0b10) {
		t.Error("syscall after ret not viable (runs must restart)")
	}
	if c.Viable(0, table, 0b01) {
		t.Error("decrypt loop viable in ret; int 0x80")
	}
}

// TestViableEdges covers degenerate inputs.
func TestViableEdges(t *testing.T) {
	table := testViabilityTable()
	if NewDecodeCache(nil).Viable(0, table, ^uint64(0)) {
		t.Error("empty frame viable")
	}
	if NewDecodeCache([]byte{0x90}).Viable(5, table, ^uint64(0)) {
		t.Error("start past end viable")
	}
	if NewDecodeCache([]byte{0xcd, 0x80}).Viable(0, table, 0) {
		t.Error("empty want set viable")
	}
	if NewDecodeCache([]byte{0xcd, 0x80}).Viable(0, nil, ^uint64(0)) {
		t.Error("nil table viable")
	}
}
