package x86

// OpSet is a bitset over the Opcode space. The semantic analyzer uses
// it for opcode-vocabulary prefilters: a template statement that only
// accepts a restricted set of opcodes contributes an OpSet, and an
// instruction order that contains no acceptable opcode can be rejected
// without running the backtracking search.
type OpSet [4]uint64

// Add inserts op into the set.
func (m *OpSet) Add(op Opcode) { m[op>>6] |= 1 << (op & 63) }

// Has reports whether op is in the set.
func (m *OpSet) Has(op Opcode) bool { return m[op>>6]&(1<<(op&63)) != 0 }

// Intersects reports whether the two sets share any opcode.
func (m *OpSet) Intersects(o *OpSet) bool {
	return m[0]&o[0]|m[1]&o[1]|m[2]&o[2]|m[3]&o[3] != 0
}

// IsZero reports whether the set is empty.
func (m *OpSet) IsZero() bool { return m[0]|m[1]|m[2]|m[3] == 0 }
