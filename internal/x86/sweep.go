package x86

// Sweep linearly disassembles b starting at offset start. Undecodable
// bytes are represented as single-byte BAD instructions (with the raw
// byte in Args[0].Imm) so that the sweep always terminates and junk
// data interleaved with code does not abort analysis — the behaviour a
// disassembler needs when pointed at extracted network payload bytes.
func Sweep(b []byte, start int) []Inst {
	var out []Inst
	for pos := start; pos < len(b); {
		in, err := Decode(b, pos)
		if err != nil {
			out = append(out, Inst{
				Addr: pos, Len: 1, Op: BAD,
				Args: [3]Operand{ImmOp(int64(b[pos]))},
			})
			pos++
			continue
		}
		out = append(out, in)
		pos += in.Len
	}
	return out
}

// SweepAll disassembles the whole buffer from offset 0.
func SweepAll(b []byte) []Inst { return Sweep(b, 0) }

// CodeRatio estimates how much of b decodes as plausible instructions:
// the fraction of bytes covered by non-BAD instructions in a linear
// sweep. Used by the extraction stage to decide whether a payload
// region plausibly contains machine code.
func CodeRatio(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	insts := SweepAll(b)
	good := 0
	for _, in := range insts {
		if in.Op != BAD {
			good += in.Len
		}
	}
	return float64(good) / float64(len(b))
}

// ThreadOrder recovers the execution order of instructions that have
// been shuffled with unconditional jmp chains (the "out-of-order code"
// obfuscation of Figure 1(c) in the paper). Starting from the first
// instruction, it follows straight-line flow, threads through
// unconditional jumps with known in-frame targets, and returns the
// instructions in execution order. Conditional branches (including
// loop) continue on the fall-through path, which matches how a
// decryption loop body executes on its first iteration.
//
// Each instruction is visited at most once; cycles (the loop back-edge)
// terminate the walk.
func ThreadOrder(insts []Inst) []Inst {
	if len(insts) == 0 {
		return nil
	}
	byAddr := make(map[int]int, len(insts))
	for i, in := range insts {
		byAddr[in.Addr] = i
	}
	seen := make([]bool, len(insts))
	var out []Inst
	i := 0
	for i >= 0 && i < len(insts) && !seen[i] {
		seen[i] = true
		in := insts[i]
		if in.Op == JMP && in.HasTarget {
			// Thread through the jump without emitting it.
			j, ok := byAddr[in.Target]
			if !ok {
				break
			}
			i = j
			continue
		}
		out = append(out, in)
		if in.Op == RET || in.Op == HLT {
			break
		}
		if in.Op == CALL && in.HasTarget {
			// Follow in-frame calls: getpc idioms (jmp/call/pop) put
			// the decoder body at the call target.
			if j, ok := byAddr[in.Target]; ok {
				i = j
				continue
			}
		}
		i++
	}
	return out
}
