package x86

import "sync"

// Sweep linearly disassembles b starting at offset start. Undecodable
// bytes are represented as single-byte BAD instructions (with the raw
// byte in Args[0].Imm) so that the sweep always terminates and junk
// data interleaved with code does not abort analysis — the behaviour a
// disassembler needs when pointed at extracted network payload bytes.
//
// Callers sweeping one frame at several offsets should use a
// DecodeCache instead, which decodes each byte position at most once.
func Sweep(b []byte, start int) []Inst {
	var out []Inst
	for pos := start; pos < len(b); {
		in, err := Decode(b, pos)
		if err != nil {
			out = append(out, Inst{
				Addr: pos, Len: 1, Op: BAD,
				Args: [3]Operand{ImmOp(int64(b[pos]))},
			})
			pos++
			continue
		}
		out = append(out, in)
		pos += in.Len
	}
	return out
}

// SweepAll disassembles the whole buffer from offset 0.
func SweepAll(b []byte) []Inst { return Sweep(b, 0) }

// CodeRatio estimates how much of b decodes as plausible instructions:
// the fraction of bytes covered by non-BAD instructions in a linear
// sweep. Used by the extraction stage to decide whether a payload
// region plausibly contains machine code.
func CodeRatio(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	insts := SweepAll(b)
	good := 0
	for _, in := range insts {
		if in.Op != BAD {
			good += in.Len
		}
	}
	return float64(good) / float64(len(b))
}

// threadScratch holds the per-call tables ThreadOrder needs; pooled so
// the hot path does not reallocate them for every frame and offset.
type threadScratch struct {
	byAddr []int32 // instruction address -> index into insts; -1 = none
	seen   []bool
}

var threadPool = sync.Pool{New: func() any { return new(threadScratch) }}

// ThreadOrder recovers the execution order of instructions that have
// been shuffled with unconditional jmp chains (the "out-of-order code"
// obfuscation of Figure 1(c) in the paper). Starting from the first
// instruction, it follows straight-line flow, threads through
// unconditional jumps with known in-frame targets, and returns the
// instructions in execution order. Conditional branches (including
// loop) continue on the fall-through path, which matches how a
// decryption loop body executes on its first iteration.
//
// Each instruction is visited at most once; cycles (the loop back-edge)
// terminate the walk.
func ThreadOrder(insts []Inst) []Inst {
	return ThreadOrderAppend(nil, insts)
}

// ThreadOrderAppend appends the threaded execution order of insts to
// dst and returns the extended slice. It is ThreadOrder with
// caller-managed result storage, for hot paths that reuse buffers.
func ThreadOrderAppend(dst []Inst, insts []Inst) []Inst {
	if len(insts) == 0 {
		return dst
	}
	// Addresses are frame offsets; the largest is held by the last
	// instruction of a sweep, but insts may be any order, so scan.
	maxAddr := 0
	for i := range insts {
		if a := insts[i].Addr; a > maxAddr {
			maxAddr = a
		}
	}
	ts := threadPool.Get().(*threadScratch)
	ts.byAddr = resetIndex(ts.byAddr, maxAddr+1)
	if cap(ts.seen) < len(insts) {
		ts.seen = make([]bool, len(insts))
	} else {
		ts.seen = ts.seen[:len(insts)]
		clear(ts.seen)
	}
	for i := range insts {
		ts.byAddr[insts[i].Addr] = int32(i)
	}
	lookup := func(addr int) (int, bool) {
		if addr < 0 || addr > maxAddr {
			return 0, false
		}
		if j := ts.byAddr[addr]; j >= 0 {
			return int(j), true
		}
		return 0, false
	}

	i := 0
	for i >= 0 && i < len(insts) && !ts.seen[i] {
		ts.seen[i] = true
		in := insts[i]
		if in.Op == JMP && in.HasTarget {
			// Thread through the jump without emitting it.
			j, ok := lookup(in.Target)
			if !ok {
				break
			}
			i = j
			continue
		}
		dst = append(dst, in)
		if in.Op == RET || in.Op == HLT {
			break
		}
		if in.Op == CALL && in.HasTarget {
			// Follow in-frame calls: getpc idioms (jmp/call/pop) put
			// the decoder body at the call target.
			if j, ok := lookup(in.Target); ok {
				i = j
				continue
			}
		}
		i++
	}
	threadPool.Put(ts)
	return dst
}
