package x86

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genInst produces a random but encodable instruction. It is the
// generator for the encode/decode round-trip property.
func genInst(r *rand.Rand) Inst {
	reg32s := []Reg{EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI}
	reg8s := []Reg{AL, CL, DL, BL, AH, CH, DH, BH}

	randMem := func(size uint8) Operand {
		m := MemRef{Size: size, Scale: 1}
		switch r.Intn(4) {
		case 0: // [base]
			m.Base = reg32s[r.Intn(8)]
		case 1: // [base+disp]
			m.Base = reg32s[r.Intn(8)]
			m.Disp = int32(r.Intn(1<<16) - 1<<15)
		case 2: // [base+index*scale+disp]
			m.Base = reg32s[r.Intn(8)]
			for m.Base == ESP {
				m.Base = reg32s[r.Intn(8)]
			}
			m.Index = reg32s[r.Intn(8)]
			for m.Index == ESP {
				m.Index = reg32s[r.Intn(8)]
			}
			m.Scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
			m.Disp = int32(r.Intn(256) - 128)
		case 3: // absolute
			m.Disp = int32(r.Uint32())
		}
		return MemOp(m)
	}

	randRM := func(size int) Operand {
		if r.Intn(2) == 0 {
			if size == 1 {
				return RegOp(reg8s[r.Intn(8)])
			}
			return RegOp(reg32s[r.Intn(8)])
		}
		return randMem(uint8(size))
	}

	size := 4
	if r.Intn(4) == 0 {
		size = 1
	}

	switch r.Intn(12) {
	case 0: // ALU reg/mem, reg
		ops := []Opcode{ADD, ADC, SUB, SBB, AND, OR, XOR, CMP}
		op := ops[r.Intn(len(ops))]
		if r.Intn(2) == 0 {
			src := RegOp(reg32s[r.Intn(8)])
			if size == 1 {
				src = RegOp(reg8s[r.Intn(8)])
			}
			return inst2(op, randRM(size), src)
		}
		dst := RegOp(reg32s[r.Intn(8)])
		if size == 1 {
			dst = RegOp(reg8s[r.Intn(8)])
		}
		return inst2(op, dst, randMem(uint8(size)))
	case 1: // ALU imm
		ops := []Opcode{ADD, ADC, SUB, SBB, AND, OR, XOR, CMP}
		op := ops[r.Intn(len(ops))]
		var imm int64
		if size == 1 {
			imm = int64(int8(r.Uint32()))
		} else {
			imm = int64(int32(r.Uint32()))
		}
		return inst2(op, randRM(size), ImmOp(imm))
	case 2: // MOV forms
		switch r.Intn(4) {
		case 0:
			if size == 1 {
				return inst2(MOV, RegOp(reg8s[r.Intn(8)]), ImmOp(int64(int8(r.Uint32()))))
			}
			return inst2(MOV, RegOp(reg32s[r.Intn(8)]), ImmOp(int64(int32(r.Uint32()))))
		case 1:
			if size == 1 {
				return inst2(MOV, randMem(1), ImmOp(int64(int8(r.Uint32()))))
			}
			return inst2(MOV, randMem(4), ImmOp(int64(int32(r.Uint32()))))
		case 2:
			if size == 1 {
				return inst2(MOV, RegOp(reg8s[r.Intn(8)]), randRM(1))
			}
			return inst2(MOV, RegOp(reg32s[r.Intn(8)]), randRM(4))
		default:
			if size == 1 {
				return inst2(MOV, randMem(1), RegOp(reg8s[r.Intn(8)]))
			}
			return inst2(MOV, randMem(4), RegOp(reg32s[r.Intn(8)]))
		}
	case 3: // unary groups
		ops := []Opcode{NOT, NEG, MUL, IMUL, DIV, IDIV}
		return inst1(ops[r.Intn(len(ops))], randRM(size))
	case 4: // inc/dec
		ops := []Opcode{INC, DEC}
		return inst1(ops[r.Intn(2)], randRM(size))
	case 5: // push/pop
		if r.Intn(2) == 0 {
			switch r.Intn(3) {
			case 0:
				return inst1(PUSH, RegOp(reg32s[r.Intn(8)]))
			case 1:
				return inst1(PUSH, ImmOp(int64(int32(r.Uint32()))))
			default:
				return inst1(PUSH, randMem(4))
			}
		}
		if r.Intn(2) == 0 {
			return inst1(POP, RegOp(reg32s[r.Intn(8)]))
		}
		return inst1(POP, randMem(4))
	case 6: // shifts
		ops := []Opcode{SHL, SHR, SAR, ROL, ROR, RCL, RCR}
		op := ops[r.Intn(len(ops))]
		switch r.Intn(3) {
		case 0:
			return inst2(op, randRM(size), RegOp(CL))
		case 1:
			return inst2(op, randRM(size), ImmOp(1))
		default:
			return inst2(op, randRM(size), ImmOp(int64(r.Intn(30)+2)))
		}
	case 7: // branches
		addr := r.Intn(1 << 12)
		target := r.Intn(1 << 12)
		switch r.Intn(3) {
		case 0:
			return Inst{Op: JMP, HasTarget: true, Addr: addr, Target: target}
		case 1:
			return Inst{Op: JCC, Cond: Cond(r.Intn(16)), HasTarget: true, Addr: addr, Target: target}
		default:
			return Inst{Op: CALL, HasTarget: true, Addr: addr, Target: target}
		}
	case 8: // loop family, short range only
		addr := 200 + r.Intn(100)
		target := addr + r.Intn(200) - 100
		ops := []Opcode{LOOP, LOOPE, LOOPNE, JECXZ}
		return Inst{Op: ops[r.Intn(4)], HasTarget: true, Addr: addr, Target: target}
	case 9: // no-operand instructions
		ops := []Opcode{NOP, CDQ, CWDE, PUSHAD, POPAD, PUSHFD, POPFD,
			SAHF, LAHF, CLD, STD, CLC, STC, CMC, XLAT, SALC, LEAVE,
			DAA, DAS, AAA, AAS, STOSB, STOSD, LODSB, LODSD, SCASB,
			SCASD, MOVSB, MOVSD, CMPSB, CMPSD, RET, INT3, CPUID, RDTSC}
		return Inst{Op: ops[r.Intn(len(ops))]}
	case 10: // lea / movzx / movsx / bswap / xchg / two-byte extensions
		switch r.Intn(10) {
		case 0:
			return inst2(LEA, RegOp(reg32s[r.Intn(8)]), randMem(0))
		case 1:
			return inst2(MOVZX, RegOp(reg32s[r.Intn(8)]), randRM(1))
		case 2:
			return inst2(MOVSX, RegOp(reg32s[r.Intn(8)]), randRM(1))
		case 3:
			return inst1(BSWAP, RegOp(reg32s[r.Intn(8)]))
		case 4:
			return Inst{Op: CMOVCC, Cond: Cond(r.Intn(16)),
				Args: [3]Operand{RegOp(reg32s[r.Intn(8)]), randRM(4)}}
		case 5:
			ops := []Opcode{BT, BTS, BTR, BTC}
			if r.Intn(2) == 0 {
				return inst2(ops[r.Intn(4)], randRM(4), RegOp(reg32s[r.Intn(8)]))
			}
			return inst2(ops[r.Intn(4)], randRM(4), ImmOp(int64(r.Intn(32))))
		case 6:
			ops := []Opcode{SHLD, SHRD}
			if r.Intn(2) == 0 {
				return Inst{Op: ops[r.Intn(2)], Args: [3]Operand{
					randRM(4), RegOp(reg32s[r.Intn(8)]), ImmOp(int64(r.Intn(31) + 1))}}
			}
			return Inst{Op: ops[r.Intn(2)], Args: [3]Operand{
				randRM(4), RegOp(reg32s[r.Intn(8)]), RegOp(CL)}}
		case 7:
			if size == 1 {
				return inst2(CMPXCHG, randRM(1), RegOp(reg8s[r.Intn(8)]))
			}
			return inst2(CMPXCHG, randRM(4), RegOp(reg32s[r.Intn(8)]))
		case 8:
			if size == 1 {
				return inst2(XADD, randRM(1), RegOp(reg8s[r.Intn(8)]))
			}
			return inst2(XADD, randRM(4), RegOp(reg32s[r.Intn(8)]))
		default:
			if size == 1 {
				return inst2(XCHG, randRM(1), RegOp(reg8s[r.Intn(8)]))
			}
			return inst2(XCHG, randRM(4), RegOp(reg32s[r.Intn(8)]))
		}
	default: // test / int / setcc
		switch r.Intn(3) {
		case 0:
			return inst2(TEST, randRM(size), ImmOp(int64(r.Intn(128))))
		case 1:
			return inst1(INT, ImmOp(int64(r.Intn(256))))
		default:
			return Inst{Op: SETCC, Cond: Cond(r.Intn(16)),
				Args: [3]Operand{randRM(1)}}
		}
	}
}

// normalizeForCompare adjusts fields where multiple Inst values are
// legitimately equivalent after an encode/decode cycle.
func normalizeForCompare(in Inst) Inst {
	in.Addr, in.Len, in.OpSize = 0, 0, 0
	for i := range in.Args {
		if in.Args[i].Kind == KindMem && in.Args[i].Mem.Index == RegNone {
			in.Args[i].Mem.Scale = 1
		}
		if in.Args[i].Kind == KindMem && in.Args[i].Mem.Scale == 0 {
			in.Args[i].Mem.Scale = 1
		}
	}
	// XCHG operand order is symmetric: decoder produces (r/m, reg) for
	// 86/87 and (eax, reg) for 90+r; canonicalize reg-reg pairs.
	if in.Op == XCHG && in.Args[0].Kind == KindReg && in.Args[1].Kind == KindReg {
		if in.Args[0].Reg > in.Args[1].Reg {
			in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
		}
	}
	return in
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20060612))
	prop := func() bool {
		in := genInst(r)
		enc, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		// Decode with the instruction placed at in.Addr so relative
		// branch targets line up.
		buf := make([]byte, in.Addr+len(enc))
		copy(buf[in.Addr:], enc)
		got, err := Decode(buf, in.Addr)
		if err != nil {
			t.Logf("Decode(%v = % x): %v", in, enc, err)
			return false
		}
		if got.Len != len(enc) {
			t.Logf("%v: len %d != %d", in, got.Len, len(enc))
			return false
		}
		a, b := normalizeForCompare(got), normalizeForCompare(in)
		if a.String() != b.String() {
			t.Logf("round trip %v -> % x -> %v", b, enc, a)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics feeds random byte soup to the decoder; it must
// return an instruction or an error, never panic, and reported lengths
// must stay within bounds.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func() bool {
		n := 1 + r.Intn(32)
		b := make([]byte, n)
		r.Read(b)
		in, err := Decode(b, 0)
		if err != nil {
			return true
		}
		return in.Len > 0 && in.Len <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestSweepCoversBuffer: a linear sweep must account for every byte
// exactly once, regardless of input.
func TestSweepCoversBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	prop := func() bool {
		n := r.Intn(256)
		b := make([]byte, n)
		r.Read(b)
		insts := SweepAll(b)
		pos := 0
		for _, in := range insts {
			if in.Addr != pos || in.Len <= 0 {
				return false
			}
			pos += in.Len
		}
		return pos == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
