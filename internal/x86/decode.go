package x86

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when the byte stream ends in the middle of
// an instruction.
var ErrTruncated = errors.New("x86: truncated instruction")

// ErrBadOpcode is returned for byte sequences that this decoder does
// not recognize as an instruction.
var ErrBadOpcode = errors.New("x86: unrecognized opcode")

// Bad-opcode errors are precomputed: a linear sweep over junk-heavy
// frames hits undecodable bytes constantly and immediately converts
// the error into a BAD marker instruction, so allocating a fresh
// wrapped error per byte would put fmt.Errorf on the hottest path in
// the decoder.
var (
	badOpcodeErrs   [256]error // "unrecognized opcode: 0xNN"
	badOpcode0FErrs [256]error // "unrecognized opcode: 0x0f 0xNN"
	badOpcodeBAErrs [8]error   // "unrecognized opcode: 0x0f 0xba /N"
)

func init() {
	for i := range badOpcodeErrs {
		badOpcodeErrs[i] = fmt.Errorf("%w: 0x%02x", ErrBadOpcode, i)
		badOpcode0FErrs[i] = fmt.Errorf("%w: 0x0f 0x%02x", ErrBadOpcode, i)
	}
	for i := range badOpcodeBAErrs {
		badOpcodeBAErrs[i] = fmt.Errorf("%w: 0x0f 0xba /%d", ErrBadOpcode, i)
	}
}

type decoder struct {
	b    []byte
	pos  int
	addr int

	opSize   int // 4 or 2 (0x66 prefix)
	addrSize int // 4 or 2 (0x67 prefix)
	seg      string
	rep      bool
	repne    bool
	lock     bool
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, ErrTruncated
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.b) {
		return 0, ErrTruncated
	}
	v := uint16(d.b[d.pos]) | uint16(d.b[d.pos+1])<<8
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.b) {
		return 0, ErrTruncated
	}
	v := uint32(d.b[d.pos]) | uint32(d.b[d.pos+1])<<8 |
		uint32(d.b[d.pos+2])<<16 | uint32(d.b[d.pos+3])<<24
	d.pos += 4
	return v, nil
}

// immBySize reads an immediate of the current operand size,
// sign-extending to int64.
func (d *decoder) immBySize(size int) (int64, error) {
	switch size {
	case 1:
		v, err := d.u8()
		return int64(int8(v)), err
	case 2:
		v, err := d.u16()
		return int64(int16(v)), err
	default:
		v, err := d.u32()
		return int64(int32(v)), err
	}
}

// modRM decodes a ModRM byte (plus SIB/displacement) returning the
// `reg` field and the r/m operand with the given access size.
func (d *decoder) modRM(size int) (regField byte, rm Operand, err error) {
	m, err := d.u8()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := m >> 6
	regField = (m >> 3) & 7
	rmBits := m & 7

	if mod == 3 {
		return regField, RegOp(regBySize(rmBits, size)), nil
	}
	if d.addrSize == 2 {
		mem, err := d.modRM16(mod, rmBits, size)
		return regField, mem, err
	}

	mem := MemRef{Size: uint8(size), Seg: d.seg, Scale: 1}
	switch {
	case rmBits == 4: // SIB follows
		sib, err := d.u8()
		if err != nil {
			return 0, Operand{}, err
		}
		scale := sib >> 6
		index := (sib >> 3) & 7
		base := sib & 7
		if index != 4 {
			mem.Index = reg32(index)
			mem.Scale = 1 << scale
		}
		if base == 5 && mod == 0 {
			disp, err := d.u32()
			if err != nil {
				return 0, Operand{}, err
			}
			mem.Disp = int32(disp)
		} else {
			mem.Base = reg32(base)
		}
	case rmBits == 5 && mod == 0: // disp32 absolute
		disp, err := d.u32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int32(disp)
	default:
		mem.Base = reg32(rmBits)
	}
	switch mod {
	case 1:
		v, err := d.u8()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp += int32(int8(v))
	case 2:
		v, err := d.u32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp += int32(v)
	}
	return regField, MemOp(mem), nil
}

// modRM16 decodes the 16-bit addressing forms selected by a 0x67 prefix.
func (d *decoder) modRM16(mod, rmBits byte, size int) (Operand, error) {
	mem := MemRef{Size: uint8(size), Seg: d.seg, Scale: 1}
	pairs := [8][2]Reg{
		{BX, SI}, {BX, DI}, {BP, SI}, {BP, DI},
		{SI, RegNone}, {DI, RegNone}, {BP, RegNone}, {BX, RegNone},
	}
	if mod == 0 && rmBits == 6 {
		v, err := d.u16()
		if err != nil {
			return Operand{}, err
		}
		mem.Disp = int32(int16(v))
		return MemOp(mem), nil
	}
	mem.Base = pairs[rmBits][0]
	mem.Index = pairs[rmBits][1]
	switch mod {
	case 1:
		v, err := d.u8()
		if err != nil {
			return Operand{}, err
		}
		mem.Disp = int32(int8(v))
	case 2:
		v, err := d.u16()
		if err != nil {
			return Operand{}, err
		}
		mem.Disp = int32(int16(v))
	}
	return MemOp(mem), nil
}

// Decode decodes the single instruction at b[offset:], where offset is
// also used as the instruction address for relative branch targets.
func Decode(b []byte, offset int) (Inst, error) {
	if offset < 0 || offset >= len(b) {
		return Inst{}, ErrTruncated
	}
	d := &decoder{b: b, pos: offset, addr: offset, opSize: 4, addrSize: 4}
	in, err := d.decodeOne()
	if err != nil {
		return Inst{}, err
	}
	in.Addr = offset
	in.Len = d.pos - offset
	return in, nil
}

func (d *decoder) decodeOne() (Inst, error) {
	// Consume prefixes (bounded so a run of 0x66 bytes cannot loop forever).
	for i := 0; i < 14; i++ {
		op, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		switch op {
		case 0x66:
			d.opSize = 2
		case 0x67:
			d.addrSize = 2
		case 0xf0:
			d.lock = true
		case 0xf2:
			d.repne = true
		case 0xf3:
			d.rep = true
		case 0x26:
			d.seg = "es"
		case 0x2e:
			d.seg = "cs"
		case 0x36:
			d.seg = "ss"
		case 0x3e:
			d.seg = "ds"
		case 0x64:
			d.seg = "fs"
		case 0x65:
			d.seg = "gs"
		default:
			in, err := d.opcode(op)
			if err != nil {
				return Inst{}, err
			}
			in.OpSize = uint8(d.opSize)
			in.Rep = d.rep
			in.Repne = d.repne
			in.Lock = d.lock
			return in, nil
		}
	}
	return Inst{}, ErrBadOpcode
}

func inst1(op Opcode, a Operand) Inst { return Inst{Op: op, Args: [3]Operand{a}} }
func inst2(op Opcode, a, b Operand) Inst {
	return Inst{Op: op, Args: [3]Operand{a, b}}
}

// rel builds a relative branch instruction; target resolution needs the
// final instruction length, so we record the displacement and fix the
// target after decoding completes.
func (d *decoder) rel(op Opcode, cond Cond, size int) (Inst, error) {
	disp, err := d.immBySize(size)
	if err != nil {
		return Inst{}, err
	}
	in := Inst{Op: op, Cond: cond, HasTarget: true}
	// d.pos is already past the displacement, i.e. at the next instruction.
	in.Target = d.pos + int(disp)
	return in, nil
}

// aluOps maps the one-byte ALU opcode block base (op>>3) to mnemonics.
var aluOps = [8]Opcode{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}

// grp1 and shift group tables indexed by the ModRM reg field.
var grp1Ops = [8]Opcode{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}
var shiftOps = [8]Opcode{ROL, ROR, RCL, RCR, SHL, SHR, SHL, SAR}

func (d *decoder) opcode(op byte) (Inst, error) {
	sz := d.opSize

	// One-byte ALU block: 00-3B except the gap opcodes handled below.
	if op < 0x40 {
		switch op & 7 {
		case 0, 1, 2, 3, 4, 5:
			mn := aluOps[op>>3]
			switch op & 7 {
			case 0: // r/m8, r8
				reg, rm, err := d.modRM(1)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, rm, RegOp(reg8(reg))), nil
			case 1: // r/m32, r32
				reg, rm, err := d.modRM(sz)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, rm, RegOp(regBySize(reg, sz))), nil
			case 2: // r8, r/m8
				reg, rm, err := d.modRM(1)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, RegOp(reg8(reg)), rm), nil
			case 3: // r32, r/m32
				reg, rm, err := d.modRM(sz)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, RegOp(regBySize(reg, sz)), rm), nil
			case 4: // AL, imm8
				v, err := d.immBySize(1)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, RegOp(AL), ImmOp(v)), nil
			case 5: // eAX, imm32
				v, err := d.immBySize(sz)
				if err != nil {
					return Inst{}, err
				}
				return inst2(mn, RegOp(regBySize(0, sz)), ImmOp(v)), nil
			}
		case 6, 7:
			// 0x06/0x07 etc are push/pop segment registers, plus
			// 0x0F (two-byte escape), 0x27 DAA, 0x2F DAS, 0x37 AAA, 0x3F AAS.
			switch op {
			case 0x0f:
				return d.twoByte()
			case 0x27:
				return Inst{Op: DAA}, nil
			case 0x2f:
				return Inst{Op: DAS}, nil
			case 0x37:
				return Inst{Op: AAA}, nil
			case 0x3f:
				return Inst{Op: AAS}, nil
			case 0x06, 0x0e, 0x16, 0x1e: // push seg
				return inst1(PUSH, ImmOp(int64(op))), nil
			case 0x07, 0x17, 0x1f: // pop seg
				return inst1(POP, ImmOp(int64(op))), nil
			}
			return Inst{}, ErrBadOpcode
		}
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		return inst1(INC, RegOp(regBySize(op-0x40, sz))), nil
	case op >= 0x48 && op <= 0x4f:
		return inst1(DEC, RegOp(regBySize(op-0x48, sz))), nil
	case op >= 0x50 && op <= 0x57:
		return inst1(PUSH, RegOp(regBySize(op-0x50, sz))), nil
	case op >= 0x58 && op <= 0x5f:
		return inst1(POP, RegOp(regBySize(op-0x58, sz))), nil
	case op >= 0x70 && op <= 0x7f:
		return d.rel(JCC, Cond(op&0xf), 1)
	case op >= 0x91 && op <= 0x97:
		return inst2(XCHG, RegOp(regBySize(0, sz)), RegOp(regBySize(op-0x90, sz))), nil
	case op >= 0xb0 && op <= 0xb7:
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(reg8(op-0xb0)), ImmOp(v)), nil
	case op >= 0xb8 && op <= 0xbf:
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(regBySize(op-0xb8, sz)), ImmOp(v)), nil
	}

	switch op {
	case 0x60:
		return Inst{Op: PUSHAD}, nil
	case 0x61:
		return Inst{Op: POPAD}, nil
	case 0x68:
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst1(PUSH, ImmOp(v)), nil
	case 0x6a:
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst1(PUSH, ImmOp(v)), nil
	case 0x69: // imul r32, r/m32, imm32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Args: [3]Operand{RegOp(regBySize(reg, sz)), rm, ImmOp(v)}}, nil
	case 0x6b: // imul r32, r/m32, imm8
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Args: [3]Operand{RegOp(regBySize(reg, sz)), rm, ImmOp(v)}}, nil

	case 0x80, 0x82: // grp1 r/m8, imm8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(grp1Ops[reg], rm, ImmOp(v)), nil
	case 0x81: // grp1 r/m32, imm32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(grp1Ops[reg], rm, ImmOp(v)), nil
	case 0x83: // grp1 r/m32, imm8 (sign-extended)
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(grp1Ops[reg], rm, ImmOp(v)), nil

	case 0x84:
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(TEST, rm, RegOp(reg8(reg))), nil
	case 0x85:
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(TEST, rm, RegOp(regBySize(reg, sz))), nil
	case 0x86:
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(XCHG, rm, RegOp(reg8(reg))), nil
	case 0x87:
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(XCHG, rm, RegOp(regBySize(reg, sz))), nil

	case 0x88:
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, rm, RegOp(reg8(reg))), nil
	case 0x89:
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, rm, RegOp(regBySize(reg, sz))), nil
	case 0x8a:
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(reg8(reg)), rm), nil
	case 0x8b:
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(regBySize(reg, sz)), rm), nil
	case 0x8d:
		reg, rm, err := d.modRM(0)
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, ErrBadOpcode
		}
		return inst2(LEA, RegOp(regBySize(reg, sz)), rm), nil
	case 0x8f:
		_, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst1(POP, rm), nil

	case 0x90:
		return Inst{Op: NOP}, nil
	case 0x98:
		return Inst{Op: CWDE}, nil
	case 0x99:
		return Inst{Op: CDQ}, nil
	case 0x9b:
		return Inst{Op: WAIT}, nil
	case 0x9c:
		return Inst{Op: PUSHFD}, nil
	case 0x9d:
		return Inst{Op: POPFD}, nil
	case 0x9e:
		return Inst{Op: SAHF}, nil
	case 0x9f:
		return Inst{Op: LAHF}, nil

	case 0xa0: // mov al, moffs8
		v, err := d.u32()
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(AL), MemOp(MemRef{Disp: int32(v), Size: 1, Seg: d.seg, Scale: 1})), nil
	case 0xa1:
		v, err := d.u32()
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, RegOp(regBySize(0, sz)), MemOp(MemRef{Disp: int32(v), Size: uint8(sz), Seg: d.seg, Scale: 1})), nil
	case 0xa2:
		v, err := d.u32()
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, MemOp(MemRef{Disp: int32(v), Size: 1, Seg: d.seg, Scale: 1}), RegOp(AL)), nil
	case 0xa3:
		v, err := d.u32()
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, MemOp(MemRef{Disp: int32(v), Size: uint8(sz), Seg: d.seg, Scale: 1}), RegOp(regBySize(0, sz))), nil

	case 0xa4:
		return Inst{Op: MOVSB}, nil
	case 0xa5:
		return Inst{Op: MOVSD}, nil
	case 0xa6:
		return Inst{Op: CMPSB}, nil
	case 0xa7:
		return Inst{Op: CMPSD}, nil
	case 0xa8:
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(TEST, RegOp(AL), ImmOp(v)), nil
	case 0xa9:
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(TEST, RegOp(regBySize(0, sz)), ImmOp(v)), nil
	case 0xaa:
		return Inst{Op: STOSB}, nil
	case 0xab:
		return Inst{Op: STOSD}, nil
	case 0xac:
		return Inst{Op: LODSB}, nil
	case 0xad:
		return Inst{Op: LODSD}, nil
	case 0xae:
		return Inst{Op: SCASB}, nil
	case 0xaf:
		return Inst{Op: SCASD}, nil

	case 0xc0, 0xc1, 0xd0, 0xd1, 0xd2, 0xd3:
		size := 1
		if op == 0xc1 || op == 0xd1 || op == 0xd3 {
			size = sz
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		var amount Operand
		switch op {
		case 0xc0, 0xc1:
			v, err := d.immBySize(1)
			if err != nil {
				return Inst{}, err
			}
			amount = ImmOp(v)
		case 0xd0, 0xd1:
			amount = ImmOp(1)
		default:
			amount = RegOp(CL)
		}
		return inst2(shiftOps[reg], rm, amount), nil

	case 0xc2:
		v, err := d.u16()
		if err != nil {
			return Inst{}, err
		}
		return inst1(RET, ImmOp(int64(v))), nil
	case 0xc3:
		return Inst{Op: RET}, nil
	case 0xc6:
		_, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, rm, ImmOp(v)), nil
	case 0xc7:
		_, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOV, rm, ImmOp(v)), nil
	case 0xc9:
		return Inst{Op: LEAVE}, nil
	case 0xcc:
		return Inst{Op: INT3}, nil
	case 0xcd:
		v, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		return inst1(INT, ImmOp(int64(v))), nil
	case 0xce:
		return Inst{Op: INTO}, nil

	case 0xd4:
		v, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		return inst1(AAM, ImmOp(int64(v))), nil
	case 0xd5:
		v, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		return inst1(AAD, ImmOp(int64(v))), nil
	case 0xd6:
		return Inst{Op: SALC}, nil
	case 0xd7:
		return Inst{Op: XLAT}, nil

	case 0xe0:
		return d.rel(LOOPNE, 0, 1)
	case 0xe1:
		return d.rel(LOOPE, 0, 1)
	case 0xe2:
		return d.rel(LOOP, 0, 1)
	case 0xe3:
		return d.rel(JECXZ, 0, 1)
	case 0xe8:
		return d.rel(CALL, 0, 4)
	case 0xe9:
		return d.rel(JMP, 0, 4)
	case 0xeb:
		return d.rel(JMP, 0, 1)

	case 0xf4:
		return Inst{Op: HLT}, nil
	case 0xf5:
		return Inst{Op: CMC}, nil
	case 0xf8:
		return Inst{Op: CLC}, nil
	case 0xf9:
		return Inst{Op: STC}, nil
	case 0xfa:
		return Inst{Op: CLI}, nil
	case 0xfb:
		return Inst{Op: STI}, nil
	case 0xfc:
		return Inst{Op: CLD}, nil
	case 0xfd:
		return Inst{Op: STD}, nil

	case 0xf6, 0xf7: // grp3
		size := 1
		if op == 0xf7 {
			size = sz
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0, 1: // TEST r/m, imm
			v, err := d.immBySize(size)
			if err != nil {
				return Inst{}, err
			}
			return inst2(TEST, rm, ImmOp(v)), nil
		case 2:
			return inst1(NOT, rm), nil
		case 3:
			return inst1(NEG, rm), nil
		case 4:
			return inst1(MUL, rm), nil
		case 5:
			return inst1(IMUL, rm), nil
		case 6:
			return inst1(DIV, rm), nil
		case 7:
			return inst1(IDIV, rm), nil
		}
		return Inst{}, ErrBadOpcode

	case 0xfe: // grp4
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return inst1(INC, rm), nil
		case 1:
			return inst1(DEC, rm), nil
		}
		return Inst{}, ErrBadOpcode
	case 0xff: // grp5
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return inst1(INC, rm), nil
		case 1:
			return inst1(DEC, rm), nil
		case 2:
			return inst1(CALL, rm), nil
		case 4:
			return inst1(JMP, rm), nil
		case 6:
			return inst1(PUSH, rm), nil
		}
		return Inst{}, ErrBadOpcode
	}

	return Inst{}, badOpcodeErrs[op]
}

func (d *decoder) twoByte() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	sz := d.opSize
	switch {
	case op >= 0x40 && op <= 0x4f: // cmovcc r32, r/m32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CMOVCC, Cond: Cond(op & 0xf),
			Args: [3]Operand{RegOp(regBySize(reg, sz)), rm}}, nil
	case op >= 0x80 && op <= 0x8f:
		return d.rel(JCC, Cond(op&0xf), 4)
	case op >= 0x90 && op <= 0x9f:
		_, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: SETCC, Cond: Cond(op & 0xf), Args: [3]Operand{rm}}, nil
	case op >= 0xc8 && op <= 0xcf:
		return inst1(BSWAP, RegOp(reg32(op-0xc8))), nil
	}
	switch op {
	case 0xa2:
		return Inst{Op: CPUID}, nil
	case 0x31:
		return Inst{Op: RDTSC}, nil
	case 0xaf: // imul r32, r/m32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(IMUL, RegOp(regBySize(reg, sz)), rm), nil
	case 0xb6: // movzx r32, r/m8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOVZX, RegOp(regBySize(reg, sz)), rm), nil
	case 0xb7: // movzx r32, r/m16
		reg, rm, err := d.modRM(2)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOVZX, RegOp(regBySize(reg, sz)), rm), nil
	case 0xbe:
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOVSX, RegOp(regBySize(reg, sz)), rm), nil
	case 0xbf:
		reg, rm, err := d.modRM(2)
		if err != nil {
			return Inst{}, err
		}
		return inst2(MOVSX, RegOp(regBySize(reg, sz)), rm), nil

	case 0xa3, 0xab, 0xb3, 0xbb: // bt/bts/btr/btc r/m32, r32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		ops := map[byte]Opcode{0xa3: BT, 0xab: BTS, 0xb3: BTR, 0xbb: BTC}
		return inst2(ops[op], rm, RegOp(regBySize(reg, sz))), nil
	case 0xba: // grp8: bt/bts/btr/btc r/m32, imm8
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		if reg < 4 {
			return Inst{}, badOpcodeBAErrs[reg]
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		ops := [4]Opcode{BT, BTS, BTR, BTC}
		return inst2(ops[reg-4], rm, ImmOp(v)), nil

	case 0xa4, 0xac: // shld/shrd r/m32, r32, imm8
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.immBySize(1)
		if err != nil {
			return Inst{}, err
		}
		mn := SHLD
		if op == 0xac {
			mn = SHRD
		}
		return Inst{Op: mn, Args: [3]Operand{rm, RegOp(regBySize(reg, sz)), ImmOp(v)}}, nil
	case 0xa5, 0xad: // shld/shrd r/m32, r32, cl
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		mn := SHLD
		if op == 0xad {
			mn = SHRD
		}
		return Inst{Op: mn, Args: [3]Operand{rm, RegOp(regBySize(reg, sz)), RegOp(CL)}}, nil

	case 0xb0: // cmpxchg r/m8, r8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(CMPXCHG, rm, RegOp(reg8(reg))), nil
	case 0xb1: // cmpxchg r/m32, r32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(CMPXCHG, rm, RegOp(regBySize(reg, sz))), nil
	case 0xc0: // xadd r/m8, r8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return inst2(XADD, rm, RegOp(reg8(reg))), nil
	case 0xc1: // xadd r/m32, r32
		reg, rm, err := d.modRM(sz)
		if err != nil {
			return Inst{}, err
		}
		return inst2(XADD, rm, RegOp(regBySize(reg, sz))), nil
	}
	return Inst{}, badOpcode0FErrs[op]
}
