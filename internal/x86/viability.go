package x86

// ViabilityTable drives the sweep-start viability check: a compact
// encoding of "which templates could possibly match a sweep starting
// at byte p".
//
// Each mandatory restricted-vocabulary template statement owns one
// statement bit (ops[opcode] = the statement bits an instruction with
// that opcode can satisfy), and each template owns the set of
// statement bits it requires (reqs). The matcher only accepts a
// template when all its statements land inside one flow-unbroken run
// of the instruction order — no BAD, RET or HLT between matched
// statements — so a template is viable from p only if some single run
// on the chain from p covers all its required bits.
type ViabilityTable struct {
	ops  [256]uint64
	reqs []uint64
	all  uint64
}

// NewViabilityTable assigns statement bit i to masks[i] (at most 64
// masks) and template bit t to the requirement set reqs[t] (at most 64
// templates; reqs values are unions of statement bits).
func NewViabilityTable(masks []OpSet, reqs []uint64) *ViabilityTable {
	t := &ViabilityTable{reqs: append([]uint64(nil), reqs...)}
	for i := range masks {
		m := &masks[i]
		for op := 0; op < 256; op++ {
			if m.Has(Opcode(op)) {
				t.ops[op] |= 1 << uint(i)
			}
		}
		t.all |= 1 << uint(i)
	}
	return t
}

// covered returns the template bits whose requirements seg satisfies.
func (t *ViabilityTable) covered(seg uint64) uint64 {
	var out uint64
	for i, req := range t.reqs {
		if seg&req == req {
			out |= 1 << uint(i)
		}
	}
	return out
}

// isBreaker reports whether op ends a flow-unbroken run: the matcher
// never accepts a template whose statements span a BAD, RET or HLT.
func isBreaker(op Opcode) bool { return op == BAD || op == RET || op == HLT }

// isConnector reports whether the instruction can splice another run
// onto the current one under jump threading (ThreadOrder follows
// in-frame jmp/call targets). Viability gives up conservatively on
// such runs — anything could become reachable — rather than chase
// targets.
func (c *DecodeCache) isConnector(in *Inst) bool {
	return (in.Op == JMP || in.Op == CALL) && in.HasTarget &&
		in.Target >= 0 && in.Target < len(c.b)
}

// Viable reports whether any template in want could match a sweep
// starting at offset off, sharing every decoded byte with the cache's
// memoized sweeps:
//
//   - One backward pass over the canonical chain (built by the first
//     Sweep, forced at offset 0 if none exists yet) precomputes, per
//     chain position, the statement bits of the flow-unbroken run
//     starting there (segChain) and the union of template coverages
//     of all runs from there to the end (viaChain). The pass touches
//     only already-decoded instructions — no byte is decoded twice.
//   - An offset on the canonical chain then answers in O(1) from
//     viaChain. An off-chain offset decodes its divergent prefix
//     through the instruction memo (the same decodes a later
//     Sweep(off) would reuse) until it self-synchronizes onto the
//     chain, merging its open run with the chain's run at the join.
//
// The check is sound-conservative: it never reports false for an
// offset the matcher could match (statement bits are supersets of
// matchStmt's acceptance, run boundaries mirror the matcher's
// flow-broken rule, and threading joins poison the run), so skipping
// non-viable offsets cannot change detections.
func (c *DecodeCache) Viable(off int, t *ViabilityTable, want uint64) bool {
	if t == nil || want == 0 || off >= len(c.b) {
		return false
	}
	if t.covered(0)&want != 0 {
		// A wanted template with an empty requirement set is viable
		// anywhere.
		return true
	}
	c.ensureVia(t)
	if i := c.canonAt[off]; i >= 0 {
		return c.viaChain[i]&want != 0
	}
	// Divergent prefix: walk until the chain (or the end), tracking
	// the open run.
	var seg uint64
	pos := off
	for pos < len(c.b) {
		if i := c.canonAt[pos]; i >= 0 {
			// Joined the chain: the open run continues into the run
			// starting at chain position i; later runs are viaChain.
			if (t.covered(seg|c.segChain[i])|c.viaChain[i])&want != 0 {
				return true
			}
			return false
		}
		in := c.store[c.instAt(pos)]
		if c.isConnector(&in) {
			return true
		}
		if isBreaker(in.Op) {
			seg = 0
		} else if bits := t.ops[in.Op]; seg|bits != seg {
			seg |= bits
			if t.covered(seg)&want != 0 {
				return true
			}
		}
		pos += in.Len
	}
	return false
}

// ensureVia (re)builds the canonical-chain viability tables for t.
func (c *DecodeCache) ensureVia(t *ViabilityTable) {
	if c.viaFor == t && len(c.viaChain) == len(c.canon) && len(c.canon) > 0 {
		return
	}
	if len(c.canon) == 0 {
		c.Sweep(0)
	}
	n := len(c.canon)
	c.viaChain = growU64(c.viaChain, n)
	c.segChain = growU64(c.segChain, n)
	var seg, via uint64
	for i := n - 1; i >= 0; i-- {
		in := &c.canon[i]
		switch {
		case c.isConnector(in):
			seg = t.all
		case isBreaker(in.Op):
			seg = 0
		default:
			seg |= t.ops[in.Op]
		}
		via |= t.covered(seg)
		c.segChain[i] = seg
		c.viaChain[i] = via
	}
	c.viaFor = t
}

// growU64 resizes buf to n entries, reusing its storage.
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}
