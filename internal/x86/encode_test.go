package x86

import (
	"bytes"
	"testing"
)

func TestEncodeKnownBytes(t *testing.T) {
	cases := []struct {
		in   Inst
		want []byte
	}{
		{Inst{Op: NOP}, []byte{0x90}},
		{Inst{Op: RET}, []byte{0xc3}},
		{inst2(MOV, RegOp(EAX), ImmOp(0xb)), []byte{0xb8, 0x0b, 0, 0, 0}},
		{inst2(MOV, RegOp(AL), ImmOp(0xb)), []byte{0xb0, 0x0b}},
		{inst2(XOR, RegOp(EAX), RegOp(EAX)), []byte{0x31, 0xc0}},
		{inst1(PUSH, RegOp(EAX)), []byte{0x50}},
		{inst1(POP, RegOp(EBX)), []byte{0x5b}},
		{inst1(INC, RegOp(EAX)), []byte{0x40}},
		{inst1(INT, ImmOp(0x80)), []byte{0xcd, 0x80}},
		{inst1(PUSH, ImmOp(0x0b)), []byte{0x6a, 0x0b}},
		{inst1(PUSH, ImmOp(0x6e69622f)), []byte{0x68, 0x2f, 0x62, 0x69, 0x6e}},
		{inst2(ADD, RegOp(EAX), ImmOp(1)), []byte{0x83, 0xc0, 0x01}},
		{inst2(XOR, MemOp(MemRef{Base: EAX, Size: 1, Scale: 1}), ImmOp(-0x6b)),
			[]byte{0x80, 0x30, 0x95}},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("Encode(%v) = % x, want % x", c.in, got, c.want)
		}
	}
}

func TestEncodeBranchForms(t *testing.T) {
	// Short backward jump.
	in := Inst{Op: JMP, HasTarget: true, Addr: 10, Target: 0}
	got, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xeb, 0xf4}) {
		t.Errorf("short jmp = % x", got)
	}
	// Long forward jump.
	in = Inst{Op: JMP, HasTarget: true, Addr: 0, Target: 0x1000}
	got, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xe9 || len(got) != 5 {
		t.Errorf("long jmp = % x", got)
	}
	// Loop out of range must error.
	in = Inst{Op: LOOP, HasTarget: true, Addr: 0, Target: 0x1000}
	if _, err := Encode(in); err == nil {
		t.Error("loop out of rel8 range should not encode")
	}
	// Conditional near form.
	in = Inst{Op: JCC, Cond: CondNE, HasTarget: true, Addr: 0, Target: 0x500}
	got, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x0f || got[1] != 0x85 {
		t.Errorf("jne near = % x", got)
	}
}

func TestEncodeNotEncodable(t *testing.T) {
	bad := []Inst{
		inst1(PUSH, RegOp(AL)),                     // no 8-bit push
		inst2(MOV, ImmOp(1), RegOp(EAX)),           // imm destination
		inst2(MOV, RegOp(EAX), ImmOp(0x1ffffffff)), // imm too wide
		{Op: BAD},                          // undecodable marker
		inst2(SHL, RegOp(EAX), RegOp(EBX)), // shift amount must be CL
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) should fail", in)
		}
	}
}

func TestAsmLabels(t *testing.T) {
	b, err := NewAsm().
		Label("top").
		IncR(EAX).
		Loop("top").
		Jmp("end").
		Nop().
		Label("end").
		Bytes()
	if err != nil {
		t.Fatal(err)
	}
	insts := SweepAll(b)
	if insts[1].Target != 0 {
		t.Errorf("loop target = %d, want 0", insts[1].Target)
	}
	if insts[2].Target != len(b) {
		t.Errorf("jmp target = %d, want %d", insts[2].Target, len(b))
	}
}

func TestAsmErrors(t *testing.T) {
	if _, err := NewAsm().Jmp("nowhere").Bytes(); err == nil {
		t.Error("undefined label should fail")
	}
	if _, err := NewAsm().Label("a").Label("a").Bytes(); err == nil {
		t.Error("duplicate label should fail")
	}
	if _, err := NewAsm().I(PUSH, RegOp(AL)).Bytes(); err == nil {
		t.Error("unencodable instruction should surface from Bytes")
	}
	a := NewAsm().Label("far")
	for i := 0; i < 200; i++ {
		a.Nop()
	}
	if _, err := a.JmpShort("far").Bytes(); err == nil {
		t.Error("short jump out of range should fail")
	}
}

// TestEncodeDecodeCorpus round-trips every instruction the shellcode
// generators rely on.
func TestEncodeDecodeCorpus(t *testing.T) {
	mem := MemOp(MemRef{Base: ESI, Index: ECX, Scale: 2, Disp: -4, Size: 4})
	mem8 := MemOp(MemRef{Base: EDI, Size: 1, Scale: 1})
	corpus := []Inst{
		inst2(MOV, RegOp(EAX), RegOp(EBX)),
		inst2(MOV, RegOp(EAX), mem),
		inst2(MOV, mem, RegOp(EDX)),
		inst2(MOV, mem8, ImmOp(0x41)),
		inst2(ADD, RegOp(ESI), ImmOp(0x1234)),
		inst2(SUB, mem, RegOp(EAX)),
		inst2(AND, RegOp(ECX), ImmOp(0xff)),
		inst2(OR, RegOp(EDX), mem),
		inst2(XOR, mem8, RegOp(BL)),
		inst2(CMP, RegOp(EAX), ImmOp(-1)),
		inst2(TEST, RegOp(EAX), RegOp(EAX)),
		inst2(TEST, RegOp(EBX), ImmOp(0x10)),
		inst1(NOT, RegOp(EDX)),
		inst1(NEG, mem),
		inst1(MUL, RegOp(ECX)),
		inst1(DIV, RegOp(EBX)),
		inst2(XCHG, RegOp(ECX), RegOp(EDX)),
		inst2(XCHG, RegOp(EAX), RegOp(EDI)),
		inst2(LEA, RegOp(EAX), MemOp(MemRef{Base: ESP, Disp: 8, Scale: 1})),
		inst2(MOVZX, RegOp(EAX), RegOp(BL)),
		inst2(MOVSX, RegOp(EDX), mem8),
		inst2(SHL, RegOp(EAX), ImmOp(4)),
		inst2(SHR, mem, RegOp(CL)),
		inst2(SAR, RegOp(EBX), ImmOp(1)),
		inst2(ROL, RegOp(ECX), ImmOp(3)),
		inst1(BSWAP, RegOp(ESI)),
		inst1(PUSH, mem),
		inst1(POP, mem),
		inst2(IMUL, RegOp(EAX), RegOp(EBX)),
		{Op: IMUL, Args: [3]Operand{RegOp(EAX), RegOp(EBX), ImmOp(1000)}},
		{Op: SETCC, Cond: CondG, Args: [3]Operand{RegOp(AL)}},
		inst1(JMP, RegOp(EAX)),
		inst1(CALL, mem),
		inst1(RET, ImmOp(8)),
	}
	for _, want := range corpus {
		enc, err := Encode(want)
		if err != nil {
			t.Errorf("Encode(%v): %v", want, err)
			continue
		}
		got, err := Decode(enc, 0)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) = % x: %v", want, enc, err)
			continue
		}
		if got.Len != len(enc) {
			t.Errorf("%v: decoded len %d, encoded %d bytes", want, got.Len, len(enc))
		}
		if !sameInst(got, want) {
			t.Errorf("round trip %v -> % x -> %v", want, enc, got)
		}
	}
}

// sameInst compares the semantic fields of two instructions, ignoring
// Addr/Len/OpSize bookkeeping and normalizing memory scale.
func sameInst(a, b Inst) bool {
	if a.Op != b.Op || a.Cond != b.Cond || a.HasTarget != b.HasTarget {
		return false
	}
	if a.HasTarget && a.Target != b.Target {
		return false
	}
	for i := range a.Args {
		x, y := a.Args[i], b.Args[i]
		if x.Kind != y.Kind {
			return false
		}
		switch x.Kind {
		case KindReg:
			if x.Reg != y.Reg {
				return false
			}
		case KindImm:
			if x.Imm != y.Imm {
				return false
			}
		case KindMem:
			mx, my := x.Mem, y.Mem
			if mx.Scale == 0 {
				mx.Scale = 1
			}
			if my.Scale == 0 {
				my.Scale = 1
			}
			if mx != my {
				return false
			}
		}
	}
	return true
}
