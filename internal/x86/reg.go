// Package x86 implements an IA-32 (32-bit x86) instruction decoder,
// encoder, and instruction model sufficient for analyzing network
// shellcode, polymorphic decoder loops, and the junk/NOP-like
// instruction streams produced by engines such as ADMmutate and Clet.
//
// It is the reproduction's substitute for the commercial IDA Pro
// disassembler used in the paper: the semantic stages only need
// mnemonics, operands, and control flow, all of which this package
// provides for the instruction subset observed in network exploits.
package x86

import "fmt"

// Reg identifies an x86 register. 32-bit, 8-bit and 16-bit general
// purpose registers are distinct values; Family reports aliasing
// (e.g. AL, AH, AX and EAX share a family).
type Reg uint8

// General purpose registers. The numeric order of each size class
// matches the hardware register numbers used in ModRM encodings.
const (
	RegNone Reg = iota

	// 32-bit
	EAX
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI

	// 8-bit low/high
	AL
	CL
	DL
	BL
	AH
	CH
	DH
	BH

	// 16-bit
	AX
	CX
	DX
	BX
	SP
	BP
	SI
	DI
)

const numRegs = int(DI) + 1

// regClass returns 0 for none, 4 for 32-bit, 1 for 8-bit, 2 for 16-bit.
func (r Reg) Size() int {
	switch {
	case r == RegNone:
		return 0
	case r >= EAX && r <= EDI:
		return 4
	case r >= AL && r <= BH:
		return 1
	default:
		return 2
	}
}

// Num returns the 3-bit hardware register number used in ModRM/SIB
// encodings for this register.
func (r Reg) Num() byte {
	switch {
	case r >= EAX && r <= EDI:
		return byte(r - EAX)
	case r >= AL && r <= BH:
		return byte(r - AL)
	case r >= AX && r <= DI:
		return byte(r - AX)
	}
	return 0xff
}

// Family returns the canonical 32-bit register that this register
// aliases. AL, AH and AX all return EAX. 32-bit registers return
// themselves; RegNone returns RegNone.
func (r Reg) Family() Reg {
	switch {
	case r == RegNone:
		return RegNone
	case r >= EAX && r <= EDI:
		return r
	case r >= AL && r <= BL:
		return EAX + (r - AL)
	case r >= AH && r <= BH:
		// AH..BH alias EAX..EBX (numbers 4..7 are the high bytes of 0..3).
		return EAX + (r - AH)
	default:
		return EAX + (r - AX)
	}
}

// IsHigh8 reports whether r is one of the high-byte registers AH..BH.
func (r Reg) IsHigh8() bool { return r >= AH && r <= BH }

// reg32 returns the 32-bit register with hardware number n (0..7).
func reg32(n byte) Reg { return EAX + Reg(n&7) }

// reg8 returns the 8-bit register with hardware number n (0..7).
func reg8(n byte) Reg { return AL + Reg(n&7) }

// reg16 returns the 16-bit register with hardware number n (0..7).
func reg16(n byte) Reg { return AX + Reg(n&7) }

// regBySize returns the register with hardware number n in the size
// class size (1, 2 or 4 bytes).
func regBySize(n byte, size int) Reg {
	switch size {
	case 1:
		return reg8(n)
	case 2:
		return reg16(n)
	default:
		return reg32(n)
	}
}

var regNames = [...]string{
	RegNone: "none",
	EAX:     "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
	ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi",
	AL: "al", CL: "cl", DL: "dl", BL: "bl",
	AH: "ah", CH: "ch", DH: "dh", BH: "bh",
	AX: "ax", CX: "cx", DX: "dx", BX: "bx",
	SP: "sp", BP: "bp", SI: "si", DI: "di",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}
