package x86

import (
	"fmt"
)

// Asm is a small assembler used by the shellcode corpus and the
// polymorphic engines to construct real machine code. Instructions are
// appended sequentially; relative branches may reference labels that
// are resolved when Bytes is called.
//
// Errors are collected and reported once from Bytes, so call sites can
// chain emission without per-call error handling.
type Asm struct {
	buf    []byte
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	at    int    // offset of the displacement field
	size  int    // 1 or 4 bytes
	label string // target label
	next  int    // offset of the following instruction (rel base)
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Len returns the number of bytes emitted so far.
func (a *Asm) Len() int { return len(a.buf) }

// Label defines name at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("duplicate label %q", name))
	}
	a.labels[name] = len(a.buf)
	return a
}

// Raw appends raw bytes.
func (a *Asm) Raw(b ...byte) *Asm {
	a.buf = append(a.buf, b...)
	return a
}

// I appends one instruction built from an opcode and operands.
func (a *Asm) I(op Opcode, args ...Operand) *Asm {
	in := Inst{Op: op}
	if len(args) > 3 {
		a.errs = append(a.errs, fmt.Errorf("%s: too many operands", op))
		return a
	}
	copy(in.Args[:], args)
	return a.Inst(in)
}

// Inst encodes in at the current position.
func (a *Asm) Inst(in Inst) *Asm {
	in.Addr = len(a.buf)
	enc, err := Encode(in)
	if err != nil {
		a.errs = append(a.errs, fmt.Errorf("at 0x%x: %w", len(a.buf), err))
		return a
	}
	a.buf = append(a.buf, enc...)
	return a
}

// branchTo emits a label-relative control transfer. Short forms use a
// rel8 placeholder; long forms rel32.
func (a *Asm) branchTo(enc []byte, size int, label string) *Asm {
	a.buf = append(a.buf, enc...)
	at := len(a.buf)
	for i := 0; i < size; i++ {
		a.buf = append(a.buf, 0)
	}
	a.fixups = append(a.fixups, fixup{at: at, size: size, label: label, next: len(a.buf)})
	return a
}

// JmpShort emits a 2-byte jmp rel8 to label.
func (a *Asm) JmpShort(label string) *Asm { return a.branchTo([]byte{0xeb}, 1, label) }

// Jmp emits a 5-byte jmp rel32 to label.
func (a *Asm) Jmp(label string) *Asm { return a.branchTo([]byte{0xe9}, 4, label) }

// JccShort emits a 2-byte conditional jump to label.
func (a *Asm) JccShort(c Cond, label string) *Asm {
	return a.branchTo([]byte{0x70 + byte(c)}, 1, label)
}

// JccNear emits a 6-byte conditional jump (0F 8x rel32) to label.
func (a *Asm) JccNear(c Cond, label string) *Asm {
	return a.branchTo([]byte{0x0f, 0x80 + byte(c)}, 4, label)
}

// Loop emits a loop rel8 to label.
func (a *Asm) Loop(label string) *Asm { return a.branchTo([]byte{0xe2}, 1, label) }

// Jecxz emits a jecxz rel8 to label.
func (a *Asm) Jecxz(label string) *Asm { return a.branchTo([]byte{0xe3}, 1, label) }

// Call emits a call rel32 to label.
func (a *Asm) Call(label string) *Asm { return a.branchTo([]byte{0xe8}, 4, label) }

// Common emission helpers, named after the at&t-free Intel forms used
// in the paper's figures.

// MovRI emits mov reg, imm.
func (a *Asm) MovRI(r Reg, v int64) *Asm { return a.I(MOV, RegOp(r), ImmOp(v)) }

// MovRR emits mov dst, src.
func (a *Asm) MovRR(dst, src Reg) *Asm { return a.I(MOV, RegOp(dst), RegOp(src)) }

// XorRR emits xor dst, src.
func (a *Asm) XorRR(dst, src Reg) *Asm { return a.I(XOR, RegOp(dst), RegOp(src)) }

// AddRI emits add reg, imm.
func (a *Asm) AddRI(r Reg, v int64) *Asm { return a.I(ADD, RegOp(r), ImmOp(v)) }

// SubRI emits sub reg, imm.
func (a *Asm) SubRI(r Reg, v int64) *Asm { return a.I(SUB, RegOp(r), ImmOp(v)) }

// PushR emits push reg.
func (a *Asm) PushR(r Reg) *Asm { return a.I(PUSH, RegOp(r)) }

// PushI emits push imm.
func (a *Asm) PushI(v int64) *Asm { return a.I(PUSH, ImmOp(v)) }

// PopR emits pop reg.
func (a *Asm) PopR(r Reg) *Asm { return a.I(POP, RegOp(r)) }

// IncR emits inc reg.
func (a *Asm) IncR(r Reg) *Asm { return a.I(INC, RegOp(r)) }

// DecR emits dec reg.
func (a *Asm) DecR(r Reg) *Asm { return a.I(DEC, RegOp(r)) }

// IntN emits int imm8.
func (a *Asm) IntN(v int64) *Asm { return a.I(INT, ImmOp(v)) }

// Nop emits nop.
func (a *Asm) Nop() *Asm { return a.I(NOP) }

// Bytes resolves all label fixups and returns the machine code.
func (a *Asm) Bytes() ([]byte, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := make([]byte, len(a.buf))
	copy(out, a.buf)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		rel := target - f.next
		switch f.size {
		case 1:
			if rel < -128 || rel > 127 {
				return nil, fmt.Errorf("label %q out of rel8 range (%d)", f.label, rel)
			}
			out[f.at] = byte(int8(rel))
		case 4:
			v := uint32(int32(rel))
			out[f.at] = byte(v)
			out[f.at+1] = byte(v >> 8)
			out[f.at+2] = byte(v >> 16)
			out[f.at+3] = byte(v >> 24)
		}
	}
	return out, nil
}

// MustBytes is Bytes but panics on error; the shellcode corpus is
// static so failures are programming errors.
func (a *Asm) MustBytes() []byte {
	b, err := a.Bytes()
	if err != nil {
		panic(err)
	}
	return b
}
