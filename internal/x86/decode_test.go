package x86

import (
	"strings"
	"testing"
)

// dec decodes a single instruction from b and fails the test on error.
func dec(t *testing.T, b ...byte) Inst {
	t.Helper()
	in, err := Decode(b, 0)
	if err != nil {
		t.Fatalf("Decode(% x): %v", b, err)
	}
	return in
}

func TestDecodeSimple(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
		len   int
	}{
		{[]byte{0x90}, "nop", 1},
		{[]byte{0xc3}, "ret", 1},
		{[]byte{0xc2, 0x08, 0x00}, "ret 0x8", 3},
		{[]byte{0xcc}, "int3", 1},
		{[]byte{0xcd, 0x80}, "int 0x80", 2},
		{[]byte{0x40}, "inc eax", 1},
		{[]byte{0x4b}, "dec ebx", 1},
		{[]byte{0x50}, "push eax", 1},
		{[]byte{0x5f}, "pop edi", 1},
		{[]byte{0x60}, "pushad", 1},
		{[]byte{0x61}, "popad", 1},
		{[]byte{0x6a, 0x0b}, "push 0xb", 2},
		{[]byte{0x68, 0x2f, 0x62, 0x69, 0x6e}, "push 0x6e69622f", 5},
		{[]byte{0xf8}, "clc", 1},
		{[]byte{0xfc}, "cld", 1},
		{[]byte{0x99}, "cdq", 1},
		{[]byte{0xd6}, "salc", 1},
		{[]byte{0xd7}, "xlat", 1},
		{[]byte{0xf4}, "hlt", 1},
		{[]byte{0x27}, "daa", 1},
		{[]byte{0x37}, "aaa", 1},
		{[]byte{0xaa}, "stosb", 1},
		{[]byte{0xac}, "lodsb", 1},
		{[]byte{0x0f, 0xa2}, "cpuid", 2},
		{[]byte{0x0f, 0x31}, "rdtsc", 2},
		{[]byte{0x0f, 0xc9}, "bswap ecx", 2},
		{[]byte{0xc9}, "leave", 1},
	}
	for _, c := range cases {
		in := dec(t, c.bytes...)
		if got := in.String(); got != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.bytes, got, c.want)
		}
		if in.Len != c.len {
			t.Errorf("Decode(% x) len = %d, want %d", c.bytes, in.Len, c.len)
		}
	}
}

func TestDecodeMovForms(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0xb8, 0x0b, 0x00, 0x00, 0x00}, "mov eax, 0xb"},
		{[]byte{0xb0, 0x0b}, "mov al, 0xb"},
		{[]byte{0xb3, 0x95}, "mov bl, -0x6b"}, // sign-extended imm8
		{[]byte{0x89, 0xd8}, "mov eax, ebx"},
		{[]byte{0x8b, 0xd8}, "mov ebx, eax"},
		{[]byte{0x88, 0x18}, "mov byte ptr [eax], bl"},
		{[]byte{0x8a, 0x18}, "mov bl, byte ptr [eax]"},
		{[]byte{0xc6, 0x00, 0x41}, "mov byte ptr [eax], 0x41"},
		{[]byte{0xc7, 0x03, 0x78, 0x56, 0x34, 0x12}, "mov dword ptr [ebx], 0x12345678"},
		{[]byte{0x8b, 0x44, 0x24, 0x04}, "mov eax, dword ptr [esp+0x4]"},
		{[]byte{0x8b, 0x04, 0x8d, 0x00, 0x10, 0x00, 0x00}, "mov eax, dword ptr [ecx*4+0x1000]"},
		{[]byte{0x8d, 0x41, 0x01}, "lea eax, [ecx+0x1]"},
		{[]byte{0xa1, 0x44, 0x33, 0x22, 0x11}, "mov eax, dword ptr [0x11223344]"},
		{[]byte{0x0f, 0xb6, 0xc3}, "movzx eax, bl"},
		{[]byte{0x0f, 0xbe, 0x03}, "movsx eax, byte ptr [ebx]"},
	}
	for _, c := range cases {
		in := dec(t, c.bytes...)
		if got := in.String(); got != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestDecodeALU(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x31, 0xc0}, "xor eax, eax"},
		{[]byte{0x29, 0xd9}, "sub ecx, ebx"},
		{[]byte{0x01, 0xc8}, "add eax, ecx"},
		{[]byte{0x30, 0x18}, "xor byte ptr [eax], bl"},
		{[]byte{0x80, 0x30, 0x95}, "xor byte ptr [eax], -0x6b"},
		{[]byte{0x83, 0xc0, 0x01}, "add eax, 0x1"},
		{[]byte{0x81, 0xc3, 0x64, 0x00, 0x00, 0x00}, "add ebx, 0x64"},
		{[]byte{0x04, 0x05}, "add al, 0x5"},
		{[]byte{0x3d, 0xff, 0x00, 0x00, 0x00}, "cmp eax, 0xff"},
		{[]byte{0x85, 0xc0}, "test eax, eax"},
		{[]byte{0xf7, 0xd0}, "not eax"},
		{[]byte{0xf7, 0xd8}, "neg eax"},
		{[]byte{0xf6, 0x17}, "not byte ptr [edi]"},
		{[]byte{0xc1, 0xe0, 0x04}, "shl eax, 0x4"},
		{[]byte{0xd1, 0xe8}, "shr eax, 0x1"},
		{[]byte{0xd3, 0xf8}, "sar eax, cl"},
		{[]byte{0x0f, 0xaf, 0xc3}, "imul eax, ebx"},
		{[]byte{0x6b, 0xc0, 0x07}, "imul eax, eax, 0x7"},
	}
	for _, c := range cases {
		in := dec(t, c.bytes...)
		if got := in.String(); got != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestDecodeTwoByteExtensions(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x0f, 0x44, 0xc3}, "cmove eax, ebx"},
		{[]byte{0x0f, 0x4f, 0x03}, "cmovg eax, dword ptr [ebx]"},
		{[]byte{0x0f, 0xa3, 0xd8}, "bt eax, ebx"},
		{[]byte{0x0f, 0xab, 0xd8}, "bts eax, ebx"},
		{[]byte{0x0f, 0xba, 0xe0, 0x07}, "bt eax, 0x7"},
		{[]byte{0x0f, 0xba, 0xf8, 0x03}, "btc eax, 0x3"},
		{[]byte{0x0f, 0xa4, 0xd8, 0x04}, "shld eax, ebx, 0x4"},
		{[]byte{0x0f, 0xad, 0xd8}, "shrd eax, ebx, cl"},
		{[]byte{0x0f, 0xb1, 0x0b}, "cmpxchg dword ptr [ebx], ecx"},
		{[]byte{0x0f, 0xc1, 0x0b}, "xadd dword ptr [ebx], ecx"},
		{[]byte{0x0f, 0xb0, 0x0b}, "cmpxchg byte ptr [ebx], cl"},
	}
	for _, c := range cases {
		in := dec(t, c.bytes...)
		if got := in.String(); got != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.bytes, got, c.want)
		}
	}
	// 0f ba with a low reg field is not a defined bt-group form.
	if _, err := Decode([]byte{0x0f, 0xba, 0xc0, 0x01}, 0); err == nil {
		t.Error("0f ba /0 should not decode")
	}
}

func TestDecodeBranches(t *testing.T) {
	// Branch targets are absolute offsets within the frame.
	b := []byte{
		0x90,       // 0: nop
		0xeb, 0x02, // 1: jmp 5
		0x90, 0x90, // 3,4
		0xe2, 0xf9, // 5: loop 0  (5+2-7 = 0)
		0x74, 0x01, // 7: je 10
		0x90,                         // 9
		0xe8, 0x00, 0x00, 0x00, 0x00, // 10: call 15
	}
	in, err := Decode(b, 1)
	if err != nil || !in.HasTarget || in.Target != 5 {
		t.Fatalf("jmp decode: %+v err=%v", in, err)
	}
	in, err = Decode(b, 5)
	if err != nil || in.Op != LOOP || in.Target != 0 {
		t.Fatalf("loop decode: %+v err=%v", in, err)
	}
	in, err = Decode(b, 7)
	if err != nil || in.Op != JCC || in.Cond != CondE || in.Target != 10 {
		t.Fatalf("je decode: %+v err=%v", in, err)
	}
	in, err = Decode(b, 10)
	if err != nil || in.Op != CALL || in.Target != 15 {
		t.Fatalf("call decode: %+v err=%v", in, err)
	}
	// Near forms.
	nb := []byte{0xe9, 0x10, 0x00, 0x00, 0x00, 0x0f, 0x84, 0xfb, 0xff, 0xff, 0xff}
	in, err = Decode(nb, 0)
	if err != nil || in.Op != JMP || in.Target != 0x15 {
		t.Fatalf("jmp near: %+v err=%v", in, err)
	}
	in, err = Decode(nb, 5)
	if err != nil || in.Op != JCC || in.Cond != CondE || in.Target != 6 {
		t.Fatalf("je near: %+v err=%v", in, err)
	}
}

func TestDecodePaperFigure1a(t *testing.T) {
	// Figure 1(a): the simple xor decryption routine.
	//   decode: xor byte ptr [eax], 95h ; inc eax ; loop decode
	b := []byte{
		0x80, 0x30, 0x95, // xor byte ptr [eax], 0x95
		0x40,       // inc eax
		0xe2, 0xfa, // loop -6 -> 0
	}
	insts := SweepAll(b)
	if len(insts) != 3 {
		t.Fatalf("got %d instructions, want 3: %v", len(insts), insts)
	}
	wants := []string{"xor byte ptr [eax], -0x6b", "inc eax", "loop 0x0"}
	for i, w := range wants {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i], w)
		}
	}
	if insts[2].Target != 0 {
		t.Errorf("loop target = %d, want 0", insts[2].Target)
	}
}

func TestDecodePaperFigure1b(t *testing.T) {
	// Figure 1(b): mov ebx,31h ; add ebx,64h ; xor [eax],bl ; add eax,1 ; loop
	b := NewAsm().
		Label("decode").
		MovRI(EBX, 0x31).
		AddRI(EBX, 0x64).
		I(XOR, MemOp(MemRef{Base: EAX, Size: 1, Scale: 1}), RegOp(BL)).
		AddRI(EAX, 1).
		Loop("decode").
		MustBytes()
	insts := SweepAll(b)
	if len(insts) != 5 {
		t.Fatalf("got %d instructions, want 5: %v", len(insts), insts)
	}
	if insts[2].String() != "xor byte ptr [eax], bl" {
		t.Errorf("xor = %q", insts[2].String())
	}
	if insts[4].Op != LOOP || insts[4].Target != 0 {
		t.Errorf("loop = %+v", insts[4])
	}
}

func TestDecodePrefixes(t *testing.T) {
	in := dec(t, 0x66, 0xb8, 0x34, 0x12) // mov ax, 0x1234
	if in.String() != "mov ax, 0x1234" || in.Len != 4 {
		t.Errorf("got %q len %d", in, in.Len)
	}
	in = dec(t, 0xf3, 0xaa) // rep stosb
	if !in.Rep || in.Op != STOSB {
		t.Errorf("rep stosb: %+v", in)
	}
	in = dec(t, 0x65, 0x8b, 0x00) // mov eax, gs:[eax]
	if in.Args[1].Mem.Seg != "gs" {
		t.Errorf("segment prefix: %+v", in)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x0f}, 0); err == nil {
		t.Error("truncated two-byte opcode should fail")
	}
	if _, err := Decode([]byte{0xb8, 0x01}, 0); err == nil {
		t.Error("truncated immediate should fail")
	}
	if _, err := Decode([]byte{}, 0); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, err := Decode([]byte{0x90}, 5); err == nil {
		t.Error("offset out of range should fail")
	}
	// A privileged/unsupported opcode yields ErrBadOpcode.
	if _, err := Decode([]byte{0x0f, 0x01, 0x00}, 0); err == nil {
		t.Error("unsupported 0f 01 should fail")
	}
}

func TestSweepResync(t *testing.T) {
	// Junk byte in the middle: sweep must emit a BAD marker and continue.
	b := []byte{0x90, 0x0f, 0xff, 0x90}
	insts := SweepAll(b)
	var bad int
	for _, in := range insts {
		if in.Op == BAD {
			bad++
		}
	}
	if bad == 0 {
		t.Fatalf("expected BAD instructions in %v", insts)
	}
	last := insts[len(insts)-1]
	if last.Op != NOP {
		t.Errorf("sweep did not resync: %v", insts)
	}
	total := 0
	for _, in := range insts {
		total += in.Len
	}
	if total != len(b) {
		t.Errorf("sweep covered %d bytes, want %d", total, len(b))
	}
}

func TestThreadOrder(t *testing.T) {
	// Figure 1(c)-style shuffled code: the execution order must be
	// recovered by following jmps.
	b := NewAsm().
		MovRI(ECX, 0).
		IncR(ECX).
		IncR(ECX).
		JmpShort("one").
		Label("two").AddRI(EAX, 1).
		JmpShort("three").
		Label("one").MovRI(EBX, 0x31).
		AddRI(EBX, 0x64).
		I(XOR, MemOp(MemRef{Base: EAX, Size: 1, Scale: 1}), RegOp(BL)).
		JmpShort("two").
		Label("three").Loop("one").
		MustBytes()
	ordered := ThreadOrder(SweepAll(b))
	var mnems []string
	for _, in := range ordered {
		mnems = append(mnems, in.Mnemonic())
	}
	got := strings.Join(mnems, " ")
	want := "mov inc inc mov add xor add loop"
	if got != want {
		t.Errorf("thread order = %q, want %q", got, want)
	}
}

func TestCodeRatio(t *testing.T) {
	code := NewAsm().MovRI(EAX, 11).XorRR(EBX, EBX).IntN(0x80).MustBytes()
	if r := CodeRatio(code); r != 1.0 {
		t.Errorf("pure code ratio = %f, want 1.0", r)
	}
	if r := CodeRatio(nil); r != 0 {
		t.Errorf("empty ratio = %f, want 0", r)
	}
}
