package x86

import "testing"

// 16-bit addressing (0x67 prefix) decode coverage: junk generators and
// hand-obfuscated code occasionally emit these forms.
func TestDecode16BitAddressing(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x67, 0x8b, 0x07}, "mov eax, dword ptr [bx]"},
		{[]byte{0x67, 0x8b, 0x00}, "mov eax, dword ptr [bx+si]"},
		{[]byte{0x67, 0x8b, 0x02}, "mov eax, dword ptr [bp+si]"},
		{[]byte{0x67, 0x8b, 0x44, 0x10}, "mov eax, dword ptr [si+0x10]"},
		{[]byte{0x67, 0x8b, 0x85, 0x00, 0x10}, "mov eax, dword ptr [di+0x1000]"},
		{[]byte{0x67, 0x8b, 0x06, 0x34, 0x12}, "mov eax, dword ptr [0x1234]"},
		{[]byte{0x67, 0x8a, 0x04}, "mov al, byte ptr [si]"},
	}
	for _, c := range cases {
		in, err := Decode(c.bytes, 0)
		if err != nil {
			t.Errorf("Decode(% x): %v", c.bytes, err)
			continue
		}
		if got := in.String(); got != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.bytes, got, c.want)
		}
		if in.Len != len(c.bytes) {
			t.Errorf("Decode(% x) len = %d, want %d", c.bytes, in.Len, len(c.bytes))
		}
	}
	// Negative 8-bit displacement.
	in, err := Decode([]byte{0x67, 0x8b, 0x44, 0xf0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Args[1].Mem.Disp != -16 {
		t.Errorf("disp = %d, want -16", in.Args[1].Mem.Disp)
	}
	// Truncated 16-bit forms must error, not panic.
	for _, b := range [][]byte{
		{0x67, 0x8b},
		{0x67, 0x8b, 0x06, 0x34},
		{0x67, 0x8b, 0x44},
	} {
		if _, err := Decode(b, 0); err == nil {
			t.Errorf("truncated % x decoded", b)
		}
	}
}

// Mixed prefix combinations stay coherent.
func TestDecodePrefixCombos(t *testing.T) {
	// 66+67: 16-bit operand and address size.
	in, err := Decode([]byte{0x66, 0x67, 0x8b, 0x07}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "mov ax, word ptr [bx]" {
		t.Errorf("got %q", in)
	}
	// Redundant repeated prefixes are tolerated up to the x86 limit.
	b := []byte{0x66, 0x66, 0x66, 0xb8, 0x34, 0x12}
	in, err = Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "mov ax, 0x1234" {
		t.Errorf("got %q", in)
	}
	// A prefix-only stream must terminate with an error.
	if _, err := Decode([]byte{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
		0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66}, 0); err == nil {
		t.Error("prefix bomb decoded")
	}
}

func TestFormatterEdgeCases(t *testing.T) {
	// Negative displacement rendering.
	in, _ := Decode([]byte{0x8b, 0x45, 0xfc}, 0) // mov eax, [ebp-4]
	if in.String() != "mov eax, dword ptr [ebp-0x4]" {
		t.Errorf("got %q", in)
	}
	// SIB with scale.
	in, _ = Decode([]byte{0x8b, 0x04, 0xcd, 0x00, 0x00, 0x00, 0x00}, 0)
	if in.String() != "mov eax, dword ptr [ecx*8]" {
		t.Errorf("got %q", in)
	}
	// Negative immediate.
	in, _ = Decode([]byte{0x83, 0xc0, 0xff}, 0) // add eax, -1
	if in.String() != "add eax, -0x1" {
		t.Errorf("got %q", in)
	}
}
