package x86

import "testing"

// Native fuzz targets; `go test` runs them over the seed corpus, and
// `go test -fuzz` explores further.

func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x90})
	f.Add([]byte{0x80, 0x30, 0x95, 0x40, 0xe2, 0xfa})
	f.Add([]byte{0x0f, 0xba, 0xe0, 0x07})
	f.Add([]byte{0x66, 0x67, 0x8b, 0x07})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		in, err := Decode(b, 0)
		if err != nil {
			return
		}
		if in.Len <= 0 || in.Len > len(b) {
			t.Fatalf("decoded length %d out of range for %d input bytes", in.Len, len(b))
		}
		_ = in.String() // formatter must not panic
		// If the instruction is encodable, the encoding must decode
		// back to an equal-length or equivalent instruction.
		if enc, err := Encode(in); err == nil {
			if _, err := Decode(enc, 0); err != nil {
				t.Fatalf("re-decode of % x failed: %v", enc, err)
			}
		}
	})
}

func FuzzSweep(f *testing.F) {
	f.Add([]byte{0x90, 0x0f, 0xff, 0x90})
	f.Fuzz(func(t *testing.T, b []byte) {
		insts := SweepAll(b)
		pos := 0
		for _, in := range insts {
			if in.Addr != pos || in.Len <= 0 {
				t.Fatalf("sweep gap at %d", pos)
			}
			pos += in.Len
		}
		if pos != len(b) {
			t.Fatalf("sweep covered %d of %d bytes", pos, len(b))
		}
	})
}
