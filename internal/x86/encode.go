package x86

import (
	"errors"
	"fmt"
)

// ErrNotEncodable is returned by Encode for instruction values that have
// no encoding in the supported subset (e.g. a LOOP whose target is out
// of rel8 range).
var ErrNotEncodable = errors.New("x86: instruction not encodable")

func notEnc(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNotEncodable, fmt.Sprintf(format, args...))
}

// appendModRM encodes a ModRM byte (plus SIB and displacement as
// needed) for the given r/m operand with regField in the reg slot.
func appendModRM(b []byte, regField byte, rm Operand) ([]byte, error) {
	switch rm.Kind {
	case KindReg:
		return append(b, 0xc0|regField<<3|rm.Reg.Num()), nil
	case KindMem:
		m := rm.Mem
		if m.Seg != "" {
			return nil, notEnc("segment overrides are emitted as prefixes, not in ModRM")
		}
		// Pure displacement: mod=00 rm=101 disp32.
		if m.Base == RegNone && m.Index == RegNone {
			b = append(b, 0x00|regField<<3|5)
			return appendU32(b, uint32(m.Disp)), nil
		}
		needSIB := m.Index != RegNone || m.Base == ESP
		if m.Index == ESP {
			return nil, notEnc("esp cannot be an index register")
		}
		if m.Base != RegNone && m.Base.Size() != 4 {
			return nil, notEnc("16-bit base registers not supported by encoder")
		}
		var mod byte
		switch {
		case m.Disp == 0 && m.Base != EBP && m.Base != RegNone:
			mod = 0
		case m.Disp >= -128 && m.Disp <= 127 && m.Base != RegNone:
			mod = 1
		default:
			mod = 2
		}
		if m.Base == RegNone { // index-only: SIB with base=101, mod=00, disp32
			sibScale, err := scaleBits(m.Scale)
			if err != nil {
				return nil, err
			}
			b = append(b, 0x00|regField<<3|4, sibScale<<6|m.Index.Num()<<3|5)
			return appendU32(b, uint32(m.Disp)), nil
		}
		if needSIB {
			b = append(b, mod<<6|regField<<3|4)
			if m.Index == RegNone {
				b = append(b, 0<<6|4<<3|m.Base.Num()) // index=100 means none
			} else {
				sibScale, err := scaleBits(m.Scale)
				if err != nil {
					return nil, err
				}
				b = append(b, sibScale<<6|m.Index.Num()<<3|m.Base.Num())
			}
		} else {
			b = append(b, mod<<6|regField<<3|m.Base.Num())
		}
		switch mod {
		case 1:
			b = append(b, byte(int8(m.Disp)))
		case 2:
			b = appendU32(b, uint32(m.Disp))
		}
		return b, nil
	}
	return nil, notEnc("r/m operand must be register or memory")
}

func scaleBits(s uint8) (byte, error) {
	switch s {
	case 0, 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, notEnc("bad SIB scale %d", s)
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendImm(b []byte, v int64, size int) ([]byte, error) {
	switch size {
	case 1:
		if v < -128 || v > 255 {
			return nil, notEnc("immediate 0x%x does not fit in 8 bits", v)
		}
		return append(b, byte(v)), nil
	case 2:
		if v < -32768 || v > 65535 {
			return nil, notEnc("immediate 0x%x does not fit in 16 bits", v)
		}
		return appendU16(b, uint16(v)), nil
	default:
		if v < -1<<31 || v > 1<<32-1 {
			return nil, notEnc("immediate 0x%x does not fit in 32 bits", v)
		}
		return appendU32(b, uint32(v)), nil
	}
}

// operandSize returns the operand size in bytes implied by an
// instruction's register/memory operands, or 0 if indeterminate.
func operandSize(in *Inst) int {
	for _, a := range in.Args {
		switch a.Kind {
		case KindReg:
			if s := a.Reg.Size(); s != 0 {
				return s
			}
		case KindMem:
			if a.Mem.Size != 0 {
				return int(a.Mem.Size)
			}
		}
	}
	return 0
}

// aluIndex maps ALU opcodes to their one-byte opcode block index.
var aluIndex = map[Opcode]byte{
	ADD: 0, OR: 1, ADC: 2, SBB: 3, AND: 4, SUB: 5, XOR: 6, CMP: 7,
}

var shiftIndex = map[Opcode]byte{
	ROL: 0, ROR: 1, RCL: 2, RCR: 3, SHL: 4, SHR: 5, SAR: 7,
}

// Encode produces machine code for in, placing it at in.Addr (which
// matters only for relative branches). It chooses a canonical encoding;
// Decode(Encode(in)) yields an instruction equal to in up to Addr/Len
// bookkeeping.
func Encode(in Inst) ([]byte, error) {
	var b []byte
	size := operandSize(&in)
	// 16-bit operands need the operand-size prefix.
	if size == 2 {
		b = append(b, 0x66)
	}

	a0, a1, a2 := in.Args[0], in.Args[1], in.Args[2]

	// Relative control transfers.
	if in.HasTarget {
		return encodeBranch(b, in)
	}

	switch in.Op {
	case NOP:
		return append(b, 0x90), nil
	case RET:
		if a0.Kind == KindImm {
			b = append(b, 0xc2)
			return appendU16(b, uint16(a0.Imm)), nil
		}
		return append(b, 0xc3), nil
	case LEAVE:
		return append(b, 0xc9), nil
	case INT3:
		return append(b, 0xcc), nil
	case INTO:
		return append(b, 0xce), nil
	case INT:
		if a0.Kind != KindImm {
			return nil, notEnc("int needs immediate")
		}
		return append(b, 0xcd, byte(a0.Imm)), nil
	case PUSHAD:
		return append(b, 0x60), nil
	case POPAD:
		return append(b, 0x61), nil
	case PUSHFD:
		return append(b, 0x9c), nil
	case POPFD:
		return append(b, 0x9d), nil
	case SAHF:
		return append(b, 0x9e), nil
	case LAHF:
		return append(b, 0x9f), nil
	case CWDE:
		return append(b, 0x98), nil
	case CDQ:
		return append(b, 0x99), nil
	case WAIT:
		return append(b, 0x9b), nil
	case XLAT:
		return append(b, 0xd7), nil
	case SALC:
		return append(b, 0xd6), nil
	case HLT:
		return append(b, 0xf4), nil
	case CMC:
		return append(b, 0xf5), nil
	case CLC:
		return append(b, 0xf8), nil
	case STC:
		return append(b, 0xf9), nil
	case CLI:
		return append(b, 0xfa), nil
	case STI:
		return append(b, 0xfb), nil
	case CLD:
		return append(b, 0xfc), nil
	case STD:
		return append(b, 0xfd), nil
	case DAA:
		return append(b, 0x27), nil
	case DAS:
		return append(b, 0x2f), nil
	case AAA:
		return append(b, 0x37), nil
	case AAS:
		return append(b, 0x3f), nil
	case AAM:
		return append(b, 0xd4, byte(a0.Imm)), nil
	case AAD:
		return append(b, 0xd5, byte(a0.Imm)), nil
	case CPUID:
		return append(b, 0x0f, 0xa2), nil
	case RDTSC:
		return append(b, 0x0f, 0x31), nil
	case MOVSB:
		return append(b, 0xa4), nil
	case MOVSD:
		return append(b, 0xa5), nil
	case CMPSB:
		return append(b, 0xa6), nil
	case CMPSD:
		return append(b, 0xa7), nil
	case STOSB:
		return append(b, 0xaa), nil
	case STOSD:
		return append(b, 0xab), nil
	case LODSB:
		return append(b, 0xac), nil
	case LODSD:
		return append(b, 0xad), nil
	case SCASB:
		return append(b, 0xae), nil
	case SCASD:
		return append(b, 0xaf), nil

	case BSWAP:
		if a0.Kind != KindReg || a0.Reg.Size() != 4 {
			return nil, notEnc("bswap needs a 32-bit register")
		}
		return append(b, 0x0f, 0xc8+a0.Reg.Num()), nil

	case INC, DEC:
		base := byte(0x40)
		grp := byte(0)
		if in.Op == DEC {
			base, grp = 0x48, 1
		}
		if a0.Kind == KindReg && a0.Reg.Size() != 1 {
			return append(b, base+a0.Reg.Num()), nil
		}
		opByte := byte(0xfe)
		if sizeOf(a0) != 1 {
			opByte = 0xff
		}
		b = append(b, opByte)
		return appendModRM(b, grp, a0)

	case PUSH:
		switch a0.Kind {
		case KindReg:
			if a0.Reg.Size() == 1 {
				return nil, notEnc("push of 8-bit register")
			}
			return append(b, 0x50+a0.Reg.Num()), nil
		case KindImm:
			if a0.Imm >= -128 && a0.Imm <= 127 {
				return append(b, 0x6a, byte(a0.Imm)), nil
			}
			b = append(b, 0x68)
			return appendImm(b, a0.Imm, 4)
		case KindMem:
			b = append(b, 0xff)
			return appendModRM(b, 6, a0)
		}
	case POP:
		switch a0.Kind {
		case KindReg:
			if a0.Reg.Size() == 1 {
				return nil, notEnc("pop of 8-bit register")
			}
			return append(b, 0x58+a0.Reg.Num()), nil
		case KindMem:
			b = append(b, 0x8f)
			return appendModRM(b, 0, a0)
		}

	case MOV:
		return encodeMov(b, a0, a1)
	case LEA:
		if a0.Kind != KindReg || a1.Kind != KindMem {
			return nil, notEnc("lea needs reg, mem")
		}
		b = append(b, 0x8d)
		return appendModRM(b, a0.Reg.Num(), a1)
	case MOVZX, MOVSX:
		if a0.Kind != KindReg {
			return nil, notEnc("movzx/movsx destination must be a register")
		}
		srcSize := sizeOf(a1)
		var second byte
		switch {
		case in.Op == MOVZX && srcSize == 1:
			second = 0xb6
		case in.Op == MOVZX && srcSize == 2:
			second = 0xb7
		case in.Op == MOVSX && srcSize == 1:
			second = 0xbe
		case in.Op == MOVSX && srcSize == 2:
			second = 0xbf
		default:
			return nil, notEnc("movzx/movsx source must be 8 or 16 bits")
		}
		// The destination register's size prefix, not the source's.
		var out []byte
		if a0.Reg.Size() == 2 {
			out = append(out, 0x66)
		}
		out = append(out, 0x0f, second)
		return appendModRM(out, a0.Reg.Num(), a1)

	case XCHG:
		if a0.Kind == KindReg && a1.Kind == KindReg &&
			a0.Reg.Size() == 4 && a0.Reg == EAX && a1.Reg != EAX {
			return append(b, 0x90+a1.Reg.Num()), nil
		}
		if s0, s1 := sizeOf(a0), sizeOf(a1); s0 != s1 {
			return nil, notEnc("xchg operand size mismatch (%d vs %d)", s0, s1)
		}
		opByte := byte(0x87)
		if sizeOf(a0) == 1 {
			opByte = 0x86
		}
		// Canonical operand order: ModRM r/m is the first operand.
		rm, reg := a0, a1
		if reg.Kind != KindReg {
			rm, reg = reg, rm
		}
		if reg.Kind != KindReg {
			return nil, notEnc("xchg needs at least one register")
		}
		b = append(b, opByte)
		return appendModRM(b, reg.Reg.Num(), rm)

	case TEST:
		if a1.Kind == KindImm {
			if a0.IsReg(AL) {
				b = append(b, 0xa8)
				return appendImm(b, a1.Imm, 1)
			}
			if a0.Kind == KindReg && a0.Reg == EAX {
				b = append(b, 0xa9)
				return appendImm(b, a1.Imm, 4)
			}
			opByte := byte(0xf7)
			sz := sizeOf(a0)
			if sz == 1 {
				opByte = 0xf6
			}
			b = append(b, opByte)
			b, err := appendModRM(b, 0, a0)
			if err != nil {
				return nil, err
			}
			return appendImm(b, a1.Imm, sz)
		}
		if a1.Kind != KindReg {
			return nil, notEnc("test second operand must be reg or imm")
		}
		opByte := byte(0x85)
		if sizeOf(a0) == 1 {
			opByte = 0x84
		}
		b = append(b, opByte)
		return appendModRM(b, a1.Reg.Num(), a0)

	case NOT, NEG, MUL, IMUL, DIV, IDIV:
		if in.Op == IMUL && a1.Kind != KindNone {
			return encodeIMul(b, a0, a1, a2)
		}
		grp := map[Opcode]byte{NOT: 2, NEG: 3, MUL: 4, IMUL: 5, DIV: 6, IDIV: 7}[in.Op]
		opByte := byte(0xf7)
		if sizeOf(a0) == 1 {
			opByte = 0xf6
		}
		b = append(b, opByte)
		return appendModRM(b, grp, a0)

	case ADD, OR, ADC, SBB, AND, SUB, XOR, CMP:
		return encodeALU(b, aluIndex[in.Op], a0, a1)

	case SHL, SHR, SAR, ROL, ROR, RCL, RCR:
		grp := shiftIndex[in.Op]
		sz := sizeOf(a0)
		switch {
		case a1.IsReg(CL):
			opByte := byte(0xd3)
			if sz == 1 {
				opByte = 0xd2
			}
			b = append(b, opByte)
			return appendModRM(b, grp, a0)
		case a1.Kind == KindImm && a1.Imm == 1:
			opByte := byte(0xd1)
			if sz == 1 {
				opByte = 0xd0
			}
			b = append(b, opByte)
			return appendModRM(b, grp, a0)
		case a1.Kind == KindImm:
			opByte := byte(0xc1)
			if sz == 1 {
				opByte = 0xc0
			}
			b = append(b, opByte)
			b, err := appendModRM(b, grp, a0)
			if err != nil {
				return nil, err
			}
			return append(b, byte(a1.Imm)), nil
		}
		return nil, notEnc("shift amount must be CL or immediate")

	case SETCC:
		b = append(b, 0x0f, 0x90+byte(in.Cond))
		return appendModRM(b, 0, a0)

	case JMP:
		if a0.Kind == KindReg || a0.Kind == KindMem {
			b = append(b, 0xff)
			return appendModRM(b, 4, a0)
		}
	case CALL:
		if a0.Kind == KindReg || a0.Kind == KindMem {
			b = append(b, 0xff)
			return appendModRM(b, 2, a0)
		}

	case CMOVCC:
		if a0.Kind != KindReg || a0.Reg.Size() == 1 {
			return nil, notEnc("cmovcc needs a 16/32-bit register destination")
		}
		b = append(b, 0x0f, 0x40+byte(in.Cond))
		return appendModRM(b, a0.Reg.Num(), a1)

	case BT, BTS, BTR, BTC:
		grp := map[Opcode]byte{BT: 4, BTS: 5, BTR: 6, BTC: 7}[in.Op]
		if a1.Kind == KindImm {
			b = append(b, 0x0f, 0xba)
			b, err := appendModRM(b, grp, a0)
			if err != nil {
				return nil, err
			}
			return append(b, byte(a1.Imm)), nil
		}
		if a1.Kind != KindReg {
			return nil, notEnc("bt-family second operand must be reg or imm")
		}
		second := map[Opcode]byte{BT: 0xa3, BTS: 0xab, BTR: 0xb3, BTC: 0xbb}[in.Op]
		b = append(b, 0x0f, second)
		return appendModRM(b, a1.Reg.Num(), a0)

	case SHLD, SHRD:
		if a1.Kind != KindReg {
			return nil, notEnc("shld/shrd second operand must be a register")
		}
		base := byte(0xa4)
		if in.Op == SHRD {
			base = 0xac
		}
		switch {
		case a2.Kind == KindImm:
			b = append(b, 0x0f, base)
			b, err := appendModRM(b, a1.Reg.Num(), a0)
			if err != nil {
				return nil, err
			}
			return append(b, byte(a2.Imm)), nil
		case a2.IsReg(CL):
			b = append(b, 0x0f, base+1)
			return appendModRM(b, a1.Reg.Num(), a0)
		}
		return nil, notEnc("shld/shrd shift must be imm8 or CL")

	case CMPXCHG, XADD:
		if a1.Kind != KindReg {
			return nil, notEnc("%s second operand must be a register", in.Op)
		}
		var second byte
		switch {
		case in.Op == CMPXCHG && a1.Reg.Size() == 1:
			second = 0xb0
		case in.Op == CMPXCHG:
			second = 0xb1
		case a1.Reg.Size() == 1: // XADD
			second = 0xc0
		default:
			second = 0xc1
		}
		b = append(b, 0x0f, second)
		return appendModRM(b, a1.Reg.Num(), a0)
	}
	return nil, notEnc("%s", in.Op)
}

func sizeOf(o Operand) int {
	switch o.Kind {
	case KindReg:
		return o.Reg.Size()
	case KindMem:
		return int(o.Mem.Size)
	}
	return 0
}

func encodeBranch(b []byte, in Inst) ([]byte, error) {
	pfx := len(b)
	// relFor computes the displacement for a total instruction length of
	// pfx+n bytes (prefixes included).
	relFor := func(n int) int64 {
		return int64(in.Target - (in.Addr + pfx + n))
	}
	fitsRel8 := func(n int) bool {
		r := relFor(n)
		return r >= -128 && r <= 127
	}
	switch in.Op {
	case JMP:
		if fitsRel8(2) {
			return append(b, 0xeb, byte(relFor(2))), nil
		}
		b = append(b, 0xe9)
		return appendU32(b, uint32(relFor(5))), nil
	case CALL:
		b = append(b, 0xe8)
		return appendU32(b, uint32(relFor(5))), nil
	case JCC:
		if fitsRel8(2) {
			return append(b, 0x70+byte(in.Cond), byte(relFor(2))), nil
		}
		b = append(b, 0x0f, 0x80+byte(in.Cond))
		return appendU32(b, uint32(relFor(6))), nil
	case LOOP, LOOPE, LOOPNE, JECXZ:
		if !fitsRel8(2) {
			return nil, notEnc("%s target out of rel8 range", in.Op)
		}
		opByte := map[Opcode]byte{LOOPNE: 0xe0, LOOPE: 0xe1, LOOP: 0xe2, JECXZ: 0xe3}[in.Op]
		return append(b, opByte, byte(relFor(2))), nil
	}
	return nil, notEnc("branch %s", in.Op)
}

func encodeMov(b []byte, dst, src Operand) ([]byte, error) {
	switch {
	case dst.Kind == KindReg && src.Kind == KindImm:
		switch dst.Reg.Size() {
		case 1:
			b = append(b, 0xb0+dst.Reg.Num())
			return appendImm(b, src.Imm, 1)
		case 2:
			b = append(b, 0xb8+dst.Reg.Num())
			return appendImm(b, src.Imm, 2)
		default:
			b = append(b, 0xb8+dst.Reg.Num())
			return appendImm(b, src.Imm, 4)
		}
	case dst.Kind == KindMem && src.Kind == KindImm:
		sz := int(dst.Mem.Size)
		opByte := byte(0xc7)
		if sz == 1 {
			opByte = 0xc6
		}
		b = append(b, opByte)
		b, err := appendModRM(b, 0, dst)
		if err != nil {
			return nil, err
		}
		return appendImm(b, src.Imm, sz)
	case dst.Kind == KindReg && (src.Kind == KindReg || src.Kind == KindMem):
		opByte := byte(0x8b)
		if dst.Reg.Size() == 1 {
			opByte = 0x8a
		}
		b = append(b, opByte)
		return appendModRM(b, dst.Reg.Num(), src)
	case dst.Kind == KindMem && src.Kind == KindReg:
		opByte := byte(0x89)
		if src.Reg.Size() == 1 {
			opByte = 0x88
		}
		b = append(b, opByte)
		return appendModRM(b, src.Reg.Num(), dst)
	}
	return nil, notEnc("mov %v, %v", dst, src)
}

func encodeALU(b []byte, idx byte, dst, src Operand) ([]byte, error) {
	base := idx << 3
	switch {
	case src.Kind == KindImm:
		sz := sizeOf(dst)
		if sz == 0 {
			return nil, notEnc("ALU with untyped destination")
		}
		if sz == 1 {
			b = append(b, 0x80)
			b, err := appendModRM(b, idx, dst)
			if err != nil {
				return nil, err
			}
			return appendImm(b, src.Imm, 1)
		}
		if src.Imm >= -128 && src.Imm <= 127 {
			b = append(b, 0x83)
			b, err := appendModRM(b, idx, dst)
			if err != nil {
				return nil, err
			}
			return append(b, byte(src.Imm)), nil
		}
		b = append(b, 0x81)
		b, err := appendModRM(b, idx, dst)
		if err != nil {
			return nil, err
		}
		return appendImm(b, src.Imm, sz)
	case src.Kind == KindReg && (dst.Kind == KindReg || dst.Kind == KindMem):
		opByte := base + 1 // r/m, r
		if src.Reg.Size() == 1 {
			opByte = base
		}
		b = append(b, opByte)
		return appendModRM(b, src.Reg.Num(), dst)
	case dst.Kind == KindReg && src.Kind == KindMem:
		opByte := base + 3 // r, r/m
		if dst.Reg.Size() == 1 {
			opByte = base + 2
		}
		b = append(b, opByte)
		return appendModRM(b, dst.Reg.Num(), src)
	}
	return nil, notEnc("ALU %v, %v", dst, src)
}

func encodeIMul(b []byte, dst, src, imm Operand) ([]byte, error) {
	if dst.Kind != KindReg {
		return nil, notEnc("imul destination must be a register")
	}
	if imm.Kind == KindNone {
		b = append(b, 0x0f, 0xaf)
		return appendModRM(b, dst.Reg.Num(), src)
	}
	if imm.Imm >= -128 && imm.Imm <= 127 {
		b = append(b, 0x6b)
		b, err := appendModRM(b, dst.Reg.Num(), src)
		if err != nil {
			return nil, err
		}
		return append(b, byte(imm.Imm)), nil
	}
	b = append(b, 0x69)
	b, err := appendModRM(b, dst.Reg.Num(), src)
	if err != nil {
		return nil, err
	}
	return appendImm(b, imm.Imm, 4)
}
