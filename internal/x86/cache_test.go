package x86_test

import (
	"math/rand"
	"testing"

	"semnids/internal/exploits"
	"semnids/internal/shellcode"
	"semnids/internal/x86"
)

// corpora returns the byte sets the differential tests sweep: random
// data at several densities (junk-heavy frames are the common case on
// a sensor), plus real exploit payloads and a packed binary.
func corpora(t testing.TB) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	rng := rand.New(rand.NewSource(0x5eed))
	for _, n := range []int{1, 2, 7, 64, 512, 4096} {
		b := make([]byte, n)
		rng.Read(b)
		out["random-"+itoa(n)] = b
	}
	// Text-heavy buffer: long runs of printable bytes decode very
	// differently from uniform random bytes.
	text := make([]byte, 1024)
	for i := range text {
		text[i] = byte('A' + i%26)
	}
	out["text"] = text
	for _, e := range exploits.Table1Exploits() {
		out["exploit-"+e.Name] = e.Payload
	}
	out["netsky"] = exploits.NetskyBinary(7, 8*1024)
	out["shellcode"] = shellcode.ClassicPush().Bytes
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func instEqual(a, b x86.Inst) bool {
	return a == b
}

// TestDecodeCacheDifferential asserts that the memoized sweep is
// byte-identical to the naive decoder at every start offset, in every
// interleaving of offset requests, over random and exploit corpora.
// This is the contract the whole hot path rests on: memoization must
// be invisible to the analyzer.
func TestDecodeCacheDifferential(t *testing.T) {
	for name, data := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			maxOff := len(data)
			if maxOff > 16 {
				maxOff = 16
			}
			// Forward, reverse and interleaved request orders: the
			// cache's canonical chain is seeded by the first request,
			// so the shared-tail logic must hold whichever offset
			// comes first.
			orders := [][]int{nil, nil, {3, 1, 0, 2}}
			for off := 0; off < maxOff; off++ {
				orders[0] = append(orders[0], off)
				orders[1] = append([]int{off}, orders[1]...)
			}
			for oi, order := range orders {
				c := x86.NewDecodeCache(data)
				for _, off := range order {
					if off >= len(data) {
						continue
					}
					want := x86.Sweep(data, off)
					got := c.Sweep(off)
					if len(got) != len(want) {
						t.Fatalf("order %d offset %d: %d insts, want %d", oi, off, len(got), len(want))
					}
					for i := range want {
						if !instEqual(got[i], want[i]) {
							t.Fatalf("order %d offset %d inst %d:\n got %v (addr %#x)\nwant %v (addr %#x)",
								oi, off, i, got[i], got[i].Addr, want[i], want[i].Addr)
						}
					}
				}
			}
		})
	}
}

// TestDecodeCacheReset asserts a reused (pooled) cache decodes a new
// frame correctly after Reset, with no state leaking between frames.
func TestDecodeCacheReset(t *testing.T) {
	c := x86.NewDecodeCache(nil)
	rng := rand.New(rand.NewSource(99))
	for frame := 0; frame < 50; frame++ {
		data := make([]byte, 16+rng.Intn(600))
		rng.Read(data)
		c.Reset(data)
		for off := 0; off < 4 && off < len(data); off++ {
			want := x86.Sweep(data, off)
			got := c.Sweep(off)
			if len(got) != len(want) {
				t.Fatalf("frame %d offset %d: %d insts, want %d", frame, off, len(got), len(want))
			}
			for i := range want {
				if !instEqual(got[i], want[i]) {
					t.Fatalf("frame %d offset %d inst %d: got %v want %v", frame, off, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDecodeCacheCodeRatio asserts the cached code ratio matches the
// naive computation.
func TestDecodeCacheCodeRatio(t *testing.T) {
	for name, data := range corpora(t) {
		if got, want := x86.NewDecodeCache(data).CodeRatio(), x86.CodeRatio(data); got != want {
			t.Errorf("%s: cached CodeRatio=%v, naive=%v", name, got, want)
		}
	}
	if got := x86.NewDecodeCache(nil).CodeRatio(); got != 0 {
		t.Errorf("empty frame: CodeRatio=%v, want 0", got)
	}
}

// TestThreadOrderAppendMatchesThreadOrder pins the appendable variant
// to the original.
func TestThreadOrderAppendMatchesThreadOrder(t *testing.T) {
	for name, data := range corpora(t) {
		insts := x86.SweepAll(data)
		want := x86.ThreadOrder(insts)
		got := x86.ThreadOrderAppend(nil, insts)
		if len(got) != len(want) {
			t.Fatalf("%s: %d insts, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !instEqual(got[i], want[i]) {
				t.Fatalf("%s inst %d: got %v want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeAllocs pins the allocation behavior of single-instruction
// decode: Decode must not allocate at all.
func TestDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	code := exploits.NetskyBinary(3, 1024)
	pos := 0
	allocs := testing.AllocsPerRun(200, func() {
		in, err := x86.Decode(code, pos)
		if err != nil {
			pos++
		} else {
			pos += in.Len
		}
		if pos >= len(code)-16 {
			pos = 0
		}
	})
	if allocs > 0 {
		t.Errorf("Decode allocates %.1f objects per call, want 0", allocs)
	}
}

// TestSweepCachedAllocs pins the steady-state allocation behavior of
// the memoized sweep: after warm-up, re-sweeping a same-size frame
// through a Reset cache must not allocate.
func TestSweepCachedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	code := exploits.NetskyBinary(5, 4096)
	c := x86.NewDecodeCache(nil)
	// Warm up the internal tables.
	c.Reset(code)
	for off := 0; off < 4; off++ {
		c.Sweep(off)
	}
	allocs := testing.AllocsPerRun(20, func() {
		c.Reset(code)
		for off := 0; off < 4; off++ {
			c.Sweep(off)
		}
	})
	if allocs > 1 {
		t.Errorf("cached sweep allocates %.1f objects per frame, want <= 1", allocs)
	}
}
