package core

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

func defaultConfig() Config {
	return Config{
		Classify: classify.Config{
			Honeypots:     []netip.Addr{traffic.HoneypotAddr},
			DarkSpace:     []netip.Prefix{traffic.DarkNet},
			ScanThreshold: 3,
		},
		Workers: 2,
	}
}

func feedAll(n *NIDS, pkts []*netpkt.Packet) {
	for _, p := range pkts {
		n.ProcessPacket(p)
	}
	n.Flush()
}

func alertTemplates(alerts []Alert) map[string]int {
	out := make(map[string]int)
	for _, a := range alerts {
		out[a.Detection.Template]++
	}
	return out
}

func TestExploitAtHoneypotDetected(t *testing.T) {
	g := traffic.NewGen(1)
	n := New(defaultConfig())
	attacker := netip.MustParseAddr("10.66.66.66")
	exp := exploits.Table1Exploits()[0]
	feedAll(n, g.ExploitAtHoneypot(attacker, exp.DstPort, exp.Payload))
	got := alertTemplates(n.Alerts())
	if got["linux-shell-spawn"] == 0 {
		t.Fatalf("shell spawn not detected: %v", got)
	}
	for _, a := range n.Alerts() {
		if a.Src != attacker {
			t.Errorf("alert attributed to %v, want %v", a.Src, attacker)
		}
		if a.Reason == classify.ReasonNone {
			t.Error("alert without classification reason")
		}
	}
}

func TestCleanTrafficNotAnalyzed(t *testing.T) {
	g := traffic.NewGen(2)
	n := New(defaultConfig())
	var pkts []*netpkt.Packet
	for i := 0; i < 50; i++ {
		pkts = append(pkts, g.BenignSession()...)
	}
	feedAll(n, pkts)
	m := n.Snapshot()
	if m.Selected != 0 {
		t.Errorf("classifier selected %d benign packets", m.Selected)
	}
	if len(n.Alerts()) != 0 {
		t.Errorf("alerts on benign traffic: %v", n.Alerts())
	}
}

func TestScannerTripsDarkSpace(t *testing.T) {
	g := traffic.NewGen(3)
	n := New(defaultConfig())
	attacker := netip.MustParseAddr("10.7.7.7")
	exp := exploits.IISASPOverflow()
	feedAll(n, g.ScanThenExploit(attacker, traffic.WebServer, 80, exp.Payload, 4))
	got := alertTemplates(n.Alerts())
	if got["xor-decrypt-loop"] == 0 {
		t.Fatalf("decryption loop not detected after scan: %v", got)
	}
}

func TestExploitFromUnclassifiedSourceIgnored(t *testing.T) {
	// The same exploit sent directly at the web server from a source
	// that never scanned or touched the honeypot passes through
	// unanalyzed — that is the classifier trade-off the paper makes.
	g := traffic.NewGen(4)
	n := New(defaultConfig())
	exp := exploits.IISASPOverflow()
	feedAll(n, g.TCPSession(netip.MustParseAddr("10.8.8.8"), traffic.WebServer, 80, exp.Payload, nil))
	if len(n.Alerts()) != 0 {
		t.Errorf("unclassified exploit alerted: %v", n.Alerts())
	}
}

func TestFullScanModeCatchesUnclassified(t *testing.T) {
	cfg := defaultConfig()
	cfg.FullScan = true
	g := traffic.NewGen(5)
	n := New(cfg)
	exp := exploits.IISASPOverflow()
	feedAll(n, g.TCPSession(netip.MustParseAddr("10.8.8.8"), traffic.WebServer, 80, exp.Payload, nil))
	got := alertTemplates(n.Alerts())
	if got["xor-decrypt-loop"] == 0 {
		t.Fatalf("fullscan missed the exploit: %v", got)
	}
}

func TestSegmentedExploitReassembled(t *testing.T) {
	// The exploit arrives split across many small TCP segments; the
	// reassembler must stitch it before extraction.
	g := traffic.NewGen(6)
	n := New(defaultConfig())
	attacker := netip.MustParseAddr("10.5.5.5")
	exp := exploits.Table1Exploits()[2]
	pkts := g.ExploitAtHoneypot(attacker, exp.DstPort, exp.Payload)
	// Re-split payload packets into 64-byte segments.
	var split []*netpkt.Packet
	for _, p := range pkts {
		if len(p.Payload) <= 64 {
			split = append(split, p)
			continue
		}
		for off := 0; off < len(p.Payload); off += 64 {
			end := off + 64
			if end > len(p.Payload) {
				end = len(p.Payload)
			}
			q := *p
			q.Seq = p.Seq + uint32(off)
			q.Payload = p.Payload[off:end]
			split = append(split, &q)
		}
	}
	feedAll(n, split)
	got := alertTemplates(n.Alerts())
	if got["linux-shell-spawn"] == 0 {
		t.Fatalf("segmented exploit not detected: %v", got)
	}
}

func TestAlertDeduplication(t *testing.T) {
	// The same exploit retransmitted within one flow alerts once per
	// template.
	g := traffic.NewGen(7)
	n := New(defaultConfig())
	attacker := netip.MustParseAddr("10.4.4.4")
	exp := exploits.Table1Exploits()[0]
	pkts := g.ExploitAtHoneypot(attacker, exp.DstPort, exp.Payload)
	// Feed data packets twice (retransmission).
	var doubled []*netpkt.Packet
	for _, p := range pkts {
		doubled = append(doubled, p)
		if len(p.Payload) > 0 {
			q := *p
			doubled = append(doubled, &q)
		}
	}
	feedAll(n, doubled)
	got := alertTemplates(n.Alerts())
	for tpl, count := range got {
		if count > 1 {
			t.Errorf("template %s alerted %d times for one flow", tpl, count)
		}
	}
}

func TestTraceWithGroundTruth(t *testing.T) {
	spec := traffic.TraceSpec{
		Seed:             11,
		BenignSessions:   200,
		CodeRedInstances: 5,
	}
	n := New(defaultConfig())
	feedAll(n, traffic.Synthesize(spec))
	crii := 0
	srcs := make(map[netip.Addr]bool)
	for _, a := range n.Alerts() {
		if a.Detection.Template == "code-red-ii" {
			crii++
			srcs[a.Src] = true
		}
	}
	if crii != 5 || len(srcs) != 5 {
		t.Errorf("detected %d Code Red II instances from %d sources, want 5/5", crii, len(srcs))
	}
}

func TestPcapRoundTripThroughNIDS(t *testing.T) {
	var buf bytes.Buffer
	spec := traffic.TraceSpec{Seed: 12, BenignSessions: 40, CodeRedInstances: 2}
	count, err := traffic.WritePcap(&buf, spec)
	if err != nil || count == 0 {
		t.Fatalf("write pcap: %d, %v", count, err)
	}
	n := New(defaultConfig())
	if err := n.ProcessPcap(&buf); err != nil {
		t.Fatal(err)
	}
	if got := alertTemplates(n.Alerts())["code-red-ii"]; got != 2 {
		t.Errorf("pcap run detected %d Code Red II, want 2", got)
	}
	if n.Snapshot().Packets != uint64(count) {
		t.Errorf("processed %d packets, wrote %d", n.Snapshot().Packets, count)
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := traffic.NewGen(13)
	n := New(defaultConfig())
	attacker := netip.MustParseAddr("10.3.3.3")
	exp := exploits.Table1Exploits()[1]
	pkts := g.ExploitAtHoneypot(attacker, exp.DstPort, exp.Payload)
	feedAll(n, pkts)
	m := n.Snapshot()
	if m.Packets == 0 || m.Selected == 0 || m.Frames == 0 || m.Alerts == 0 {
		t.Errorf("metrics not accounted: %+v", m)
	}
	if m.Selected > m.Packets {
		t.Errorf("selected %d > packets %d", m.Selected, m.Packets)
	}
}

func TestOnAlertCallback(t *testing.T) {
	cfg := defaultConfig()
	var calls int
	done := make(chan struct{}, 64)
	cfg.OnAlert = func(a Alert) {
		calls++
		done <- struct{}{}
	}
	g := traffic.NewGen(14)
	n := New(cfg)
	exp := exploits.Table1Exploits()[0]
	feedAll(n, g.ExploitAtHoneypot(netip.MustParseAddr("10.2.2.2"), exp.DstPort, exp.Payload))
	if len(n.Alerts()) == 0 {
		t.Fatal("no alerts")
	}
	if calls != len(n.Alerts()) {
		t.Errorf("callback fired %d times for %d alerts", calls, len(n.Alerts()))
	}
}

func TestAnalyzeBytesHostScan(t *testing.T) {
	bin := exploits.NetskyBinary(1, 22*1024)
	ds := AnalyzeBytes(bin, nil, nil)
	found := false
	for _, d := range ds {
		if d.Template == "xor-decrypt-loop" {
			found = true
		}
	}
	if !found {
		t.Error("host scan missed the netsky decryptor")
	}
}

func TestDoubleFlushSafe(t *testing.T) {
	n := New(defaultConfig())
	n.Flush()
	n.Flush() // must not panic or deadlock
}

func TestEvidenceCapture(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.EvidenceDir = dir
	g := traffic.NewGen(41)
	n := New(cfg)
	exp := exploits.Table1Exploits()[0]
	feedAll(n, g.ExploitAtHoneypot(netip.MustParseAddr("10.6.6.6"), exp.DstPort, exp.Payload))
	if len(n.Alerts()) == 0 {
		t.Fatal("no alerts")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(n.Alerts()) {
		t.Fatalf("%d evidence files for %d alerts", len(entries), len(n.Alerts()))
	}
	// Evidence must contain analyzable content: re-running the
	// analyzer over a saved frame reproduces a detection.
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(AnalyzeBytes(data, nil, nil)) == 0 {
		t.Error("saved evidence does not re-analyze")
	}
}
