package core

import (
	"net/netip"
	"testing"

	"semnids/internal/exploits"
	"semnids/internal/netpkt"
	"semnids/internal/traffic"
)

// feedOnly pushes packets without flushing (callers flush once at the
// end so multiple sessions share one NIDS instance).
func feedOnly(n *NIDS, pkts []*netpkt.Packet) {
	for _, p := range pkts {
		n.ProcessPacket(p)
	}
}

// TestEmailWormDetected covers the paper's Section 6 future-work
// extension end to end: a mass-mailer delivers a packed (decryptor-
// carrying) executable as a base64 attachment over SMTP; the NIDS
// decodes the attachment and the decryption-loop template fires.
func TestEmailWormDetected(t *testing.T) {
	g := traffic.NewGen(31)
	cfg := defaultConfig()
	// Mass mailers do not scan dark space; the mail server operator
	// analyzes all mail submissions.
	cfg.Classify.Disabled = true
	n := New(cfg)

	// Background mail first: must stay silent.
	for i := 0; i < 10; i++ {
		feedOnly(n, g.SMTPSession(g.RandClient()))
	}
	// The infected message: a Netsky-like packed binary attachment.
	worm := exploits.NetskyBinary(3, 8*1024)
	infected := netip.MustParseAddr("10.99.99.99")
	feedOnly(n, g.InfectedMailSession(infected, worm))
	n.Flush()

	var hit bool
	for _, a := range n.Alerts() {
		if a.Detection.Template == "xor-decrypt-loop" && a.FrameSource == "smtp-attachment" {
			hit = true
			if a.Src != infected {
				t.Errorf("alert attributed to %v, want %v", a.Src, infected)
			}
		}
	}
	if !hit {
		t.Fatalf("email worm not detected: %v", n.Alerts())
	}
}

// TestBenignAttachmentNotFlagged: a clean binary attachment (functions
// but no decryptor) passes through without alerts.
func TestBenignAttachmentNotFlagged(t *testing.T) {
	g := traffic.NewGen(32)
	cfg := defaultConfig()
	cfg.Classify.Disabled = true
	n := New(cfg)
	clean := exploits.BenignBinary(5, 8*1024)
	feedOnly(n, g.InfectedMailSession(netip.MustParseAddr("10.1.1.2"), clean))
	n.Flush()
	if len(n.Alerts()) != 0 {
		t.Errorf("clean attachment alerted: %v", n.Alerts())
	}
}
