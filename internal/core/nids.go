// Package core assembles the paper's five-stage NIDS (Figure 3):
// traffic classifier → binary detection and extraction → disassembler
// → intermediate representation → semantic analyzer. Packets are fed
// from a single goroutine (a capture loop or a pcap reader); the
// CPU-intensive analysis stages run on a worker pool.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"semnids/internal/classify"
	"semnids/internal/extract"
	"semnids/internal/netpkt"
	"semnids/internal/reasm"
	"semnids/internal/sem"
)

// Alert is one detection event attributed to a flow.
type Alert struct {
	TimestampUS uint64
	Src, Dst    netip.Addr
	SrcPort     uint16
	DstPort     uint16
	Reason      classify.Reason
	FrameSource string
	Detection   sem.Detection
}

func (a Alert) String() string {
	return fmt.Sprintf("[%d.%06d] %s:%d -> %s:%d %s (%s, via %s)",
		a.TimestampUS/1e6, a.TimestampUS%1e6,
		a.Src, a.SrcPort, a.Dst, a.DstPort,
		a.Detection.Template, a.Detection.Severity, a.FrameSource)
}

// Metrics counts pipeline activity. All fields are read with Snapshot.
type Metrics struct {
	Packets         uint64
	Selected        uint64
	StreamsAnalyzed uint64
	Frames          uint64
	FrameBytes      uint64
	// CodeFrames counts analyzed frames whose code ratio (fraction of
	// bytes decoding as plausible instructions) reached codeFrameRatio.
	CodeFrames uint64
	Alerts     uint64
}

// codeFrameRatio is the code-ratio threshold above which an analyzed
// frame is counted as plausible machine code in the metrics.
const codeFrameRatio = 0.5

// Config parameterizes the NIDS.
type Config struct {
	// Classify configures the traffic classification stage.
	Classify classify.Config

	// Templates is the semantic template set (default: the paper's
	// built-in set).
	Templates []*sem.Template

	// Workers is the number of concurrent semantic-analysis workers
	// (default: GOMAXPROCS).
	Workers int

	// FullScan disables classification pruning AND binary extraction:
	// every payload byte of every packet is disassembled and matched,
	// approximating the exhaustive host-based analysis of [5]. Used
	// as the efficiency baseline.
	FullScan bool

	// SweepOffsets overrides the analyzer's disassembly start offsets.
	SweepOffsets []int

	// MinAnalyzeBytes is the stream size that triggers a first
	// analysis before the connection closes (default 256).
	MinAnalyzeBytes int

	// OnAlert, when non-nil, is invoked synchronously for each alert
	// (from worker goroutines).
	OnAlert func(Alert)

	// EvidenceDir, when non-empty, saves the binary frame that
	// triggered each alert to "<dir>/<n>_<template>.bin" for offline
	// analysis (the paper's "further action may be taken").
	EvidenceDir string
}

// NIDS is one instance of the detection pipeline.
//
// ProcessPacket must be called from a single goroutine; alerts are
// produced asynchronously by the worker pool and retrieved with
// Alerts after Flush.
type NIDS struct {
	cfg        Config
	classifier *classify.Classifier
	assembler  *reasm.Assembler
	analyzer   *sem.Analyzer

	jobs chan job
	wg   sync.WaitGroup

	mu           sync.Mutex
	alerts       []Alert
	seen         map[alertKey]bool
	lastAnalyzed map[netpkt.FlowKey]int

	flowMeta map[netpkt.FlowKey]flowInfo

	metrics struct {
		packets, selected, streams, frames, frameBytes, codeFrames, alerts atomic.Uint64
	}
	// flushOnce makes Flush idempotent and safe to call concurrently
	// (with itself and with alert reads); the unsynchronized closed
	// bool it replaces was a data race.
	flushOnce sync.Once
}

// Cached compiled builtin template set: building and compiling the
// templates costs real work, and analysis entry points used to redo it
// on every call. The set (and the default analyzer over it) is built
// once and shared; templates and analyzer are immutable after
// compilation, so concurrent use is safe.
var (
	builtinOnce     sync.Once
	builtinSet      []*sem.Template
	builtinAnalyzer *sem.Analyzer
)

func builtinTemplates() []*sem.Template {
	builtinOnce.Do(func() {
		builtinSet = sem.BuiltinTemplates()
		for _, t := range builtinSet {
			t.Compile()
		}
		builtinAnalyzer = sem.NewAnalyzer(builtinSet)
	})
	return builtinSet
}

// defaultAnalyzer returns the shared analyzer over the compiled
// builtin set.
func defaultAnalyzer() *sem.Analyzer {
	builtinTemplates()
	return builtinAnalyzer
}

type alertKey struct {
	flow     netpkt.FlowKey
	template string
}

type flowInfo struct {
	reason classify.Reason
	ts     uint64
}

type job struct {
	frame  extract.Frame
	flow   netpkt.FlowKey
	reason classify.Reason
	ts     uint64
}

// New builds and starts a NIDS instance.
func New(cfg Config) *NIDS {
	if cfg.Templates == nil {
		cfg.Templates = builtinTemplates()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MinAnalyzeBytes <= 0 {
		cfg.MinAnalyzeBytes = 256
	}
	if cfg.FullScan {
		cfg.Classify.Disabled = true
	}
	n := &NIDS{
		cfg:          cfg,
		classifier:   classify.New(cfg.Classify),
		assembler:    reasm.New(),
		analyzer:     sem.NewAnalyzer(cfg.Templates),
		jobs:         make(chan job, 4*cfg.Workers),
		seen:         make(map[alertKey]bool),
		lastAnalyzed: make(map[netpkt.FlowKey]int),
		flowMeta:     make(map[netpkt.FlowKey]flowInfo),
	}
	// When the assembler gives up on a flow (capacity overflow), the
	// unanalyzed tail is still analyzed and — the part that used to
	// leak — the per-flow side tables are released. Without this,
	// never-finished flows left lastAnalyzed/flowMeta entries behind
	// forever once their reassembly state was evicted.
	n.assembler.SetEvictHandler(func(s *reasm.Stream) {
		if len(s.Data) > n.lastAnalyzed[s.Key] {
			info := n.flowMeta[s.Key]
			n.metrics.streams.Add(1)
			n.submitPayload(s.Data, s.Key, info.reason, info.ts)
		}
		delete(n.lastAnalyzed, s.Key)
		delete(n.flowMeta, s.Key)
	})
	if cfg.SweepOffsets != nil {
		n.analyzer.SweepOffsets = cfg.SweepOffsets
	} else if cfg.FullScan {
		// The exhaustive baseline disassembles at many more offsets,
		// as a whole-binary scanner that cannot assume alignment must.
		n.analyzer.SweepOffsets = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	for i := 0; i < cfg.Workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	return n
}

// Classifier exposes the classification stage (e.g. to pre-register
// suspicious sources).
func (n *NIDS) Classifier() *classify.Classifier { return n.classifier }

func (n *NIDS) worker() {
	defer n.wg.Done()
	for j := range n.jobs {
		n.metrics.frames.Add(1)
		n.metrics.frameBytes.Add(uint64(len(j.frame.Data)))
		// The code-ratio estimate and the analyzer's offset-0 sweep
		// are the same decode, shared through the frame's cache.
		if j.frame.CodeRatio() >= codeFrameRatio {
			n.metrics.codeFrames.Add(1)
		}
		for _, d := range n.analyzer.AnalyzeFrameCached(j.frame.Data, j.frame.DecodeCache()) {
			n.emit(j, d)
		}
	}
}

func (n *NIDS) emit(j job, d sem.Detection) {
	key := alertKey{j.flow, d.Template}
	n.mu.Lock()
	if n.seen[key] {
		n.mu.Unlock()
		return
	}
	n.seen[key] = true
	a := Alert{
		TimestampUS: j.ts,
		Src:         j.flow.SrcIP, Dst: j.flow.DstIP,
		SrcPort: j.flow.SrcPort, DstPort: j.flow.DstPort,
		Reason:      j.reason,
		FrameSource: j.frame.Source,
		Detection:   d,
	}
	seq := len(n.alerts)
	n.alerts = append(n.alerts, a)
	n.mu.Unlock()
	n.metrics.alerts.Add(1)
	// Follow-on traffic from a confirmed attacker is always analyzed.
	n.classifier.MarkSuspicious(j.flow.SrcIP, j.ts)
	if n.cfg.EvidenceDir != "" {
		name := fmt.Sprintf("%04d_%s.bin", seq, d.Template)
		// Evidence is best-effort; a write failure must not stop
		// detection.
		_ = os.WriteFile(filepath.Join(n.cfg.EvidenceDir, name), j.frame.Data, 0o644)
	}
	if n.cfg.OnAlert != nil {
		n.cfg.OnAlert(a)
	}
}

// submitPayload runs extraction (or, in FullScan mode, forwards the
// whole payload) and queues the resulting frames.
func (n *NIDS) submitPayload(data []byte, flow netpkt.FlowKey, reason classify.Reason, ts uint64) {
	if len(data) == 0 {
		return
	}
	if n.cfg.FullScan {
		n.jobs <- job{
			frame: extract.Frame{Data: data, Source: "fullscan"},
			flow:  flow, reason: reason, ts: ts,
		}
		return
	}
	for _, f := range extract.Extract(data) {
		n.jobs <- job{frame: f, flow: flow, reason: reason, ts: ts}
	}
}

// ProcessPacket pushes one packet through the pipeline.
func (n *NIDS) ProcessPacket(p *netpkt.Packet) {
	n.metrics.packets.Add(1)
	ok, reason := n.classifier.Classify(p)
	if !ok {
		return
	}
	n.metrics.selected.Add(1)

	if !p.HasTCP {
		if len(p.Payload) > 0 {
			n.submitPayload(p.Payload, p.Flow(), reason, p.TimestampUS)
		}
		return
	}

	flow := p.Flow()
	n.flowMeta[flow] = flowInfo{reason: reason, ts: p.TimestampUS}
	stream := n.assembler.Feed(p)
	if stream == nil {
		return
	}
	if stream.Rewritten {
		// A LastWins retransmission changed already-analyzed bytes:
		// the analyzed-prefix watermark no longer describes the
		// stream's content, so analysis must start over.
		delete(n.lastAnalyzed, flow)
	}
	if ShouldAnalyze(stream.Finished, len(stream.Data), n.lastAnalyzed[flow], n.cfg.MinAnalyzeBytes) {
		n.lastAnalyzed[flow] = len(stream.Data)
		n.metrics.streams.Add(1)
		n.submitPayload(stream.Data, flow, reason, p.TimestampUS)
	}
	if stream.Finished {
		n.assembler.Close(flow)
		delete(n.lastAnalyzed, flow)
		delete(n.flowMeta, flow)
	}
}

// ShouldAnalyze is the stream (re)analysis gate, shared by the batch
// pipeline and the streaming engine so the two can never drift:
// analyze when a finished stream holds unanalyzed data, when an
// unanalyzed stream first reaches minBytes, or when the stream has
// doubled since its last analysis — so exploit content split across
// many segments is still caught before close.
func ShouldAnalyze(finished bool, size, lastAnalyzed, minBytes int) bool {
	switch {
	case finished && size > lastAnalyzed:
		return true
	case lastAnalyzed == 0 && size >= minBytes:
		return true
	case lastAnalyzed > 0 && size >= 2*lastAnalyzed:
		return true
	}
	return false
}

// ProcessPcap feeds an entire capture stream (classic pcap with
// microsecond or nanosecond magic, or pcapng), then flushes.
func (n *NIDS) ProcessPcap(r io.Reader) error {
	pr, err := netpkt.NewTraceReader(r)
	if err != nil {
		return err
	}
	for {
		p, err := pr.NextPacket(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n.ProcessPacket(p)
	}
	n.Flush()
	return nil
}

// Flush analyzes any unfinished streams and waits for the worker pool
// to drain. The NIDS cannot be fed after Flush; Flush itself is
// idempotent and safe to call from multiple goroutines (late callers
// block until the first flush completes).
func (n *NIDS) Flush() { n.flushOnce.Do(n.flush) }

func (n *NIDS) flush() {
	for _, s := range n.assembler.Drain() {
		if len(s.Data) > n.lastAnalyzed[s.Key] {
			info := n.flowMeta[s.Key]
			n.metrics.streams.Add(1)
			n.submitPayload(s.Data, s.Key, info.reason, info.ts)
		}
	}
	close(n.jobs)
	n.wg.Wait()
}

// Alerts returns all alerts recorded so far (stable order of arrival).
// Call after Flush for the complete set.
func (n *NIDS) Alerts() []Alert {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Alert, len(n.alerts))
	copy(out, n.alerts)
	return out
}

// Snapshot returns the current metric counters.
func (n *NIDS) Snapshot() Metrics {
	return Metrics{
		Packets:         n.metrics.packets.Load(),
		Selected:        n.metrics.selected.Load(),
		StreamsAnalyzed: n.metrics.streams.Load(),
		Frames:          n.metrics.frames.Load(),
		FrameBytes:      n.metrics.frameBytes.Load(),
		CodeFrames:      n.metrics.codeFrames.Load(),
		Alerts:          n.metrics.alerts.Load(),
	}
}

// AnalyzePayload runs extraction and the semantic stages over one
// application payload, outside any pipeline instance. It reuses the
// shared compiled builtin analyzer instead of rebuilding the template
// set per call, and shares each frame's decode cache between
// extraction and analysis.
func AnalyzePayload(payload []byte) []sem.Detection {
	a := defaultAnalyzer()
	var out []sem.Detection
	seen := make(map[string]bool)
	for _, f := range extract.Extract(payload) {
		for _, d := range a.AnalyzeFrameCached(f.Data, f.DecodeCache()) {
			if !seen[d.Template] {
				seen[d.Template] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// AnalyzeBytes is the host-scan entry point: it runs the semantic
// stages directly over a binary (no network stages), as done for the
// Netsky efficiency comparison.
func AnalyzeBytes(data []byte, tpls []*sem.Template, offsets []int) []sem.Detection {
	if tpls == nil && offsets == nil {
		return defaultAnalyzer().AnalyzeFrame(data)
	}
	if tpls == nil {
		tpls = builtinTemplates()
	}
	a := sem.NewAnalyzer(tpls)
	if offsets != nil {
		a.SweepOffsets = offsets
	}
	return a.AnalyzeFrame(data)
}
