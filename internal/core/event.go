package core

import (
	"net/netip"

	"semnids/internal/sem"
)

// Fingerprint is a 128-bit payload identity: two independent FNV-1a
// style hashes plus the length folded in. It is shared by the engine's
// verdict cache (memoizing semantic analysis per distinct payload) and
// the incident correlator (recognizing a victim re-emitting the exact
// payload it was attacked with). 128 bits makes an accidental
// collision — a wrong cached verdict, or a false propagation link —
// vanishingly unlikely without storing the payload itself.
type Fingerprint struct {
	A, B uint64
	N    int
}

// IsZero reports whether the fingerprint is unset (no payload was
// fingerprinted — e.g. an event produced on a path with no frame).
func (f Fingerprint) IsZero() bool { return f.A == 0 && f.B == 0 && f.N == 0 }

// FingerprintOf hashes a payload.
func FingerprintOf(data []byte) Fingerprint {
	const prime = 1099511628211
	h1 := uint64(14695981039346656037) // FNV-1a offset basis
	h2 := uint64(14695981039346656037 ^ 0x9e3779b97f4a7c15)
	for _, c := range data {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c)) * (prime + 2)
	}
	return Fingerprint{A: h1, B: h2, N: len(data)}
}

// SeverityRank orders detection severities for escalation and
// sorting, shared by the batch report and the incident correlator so
// the two can never rank a severity differently.
var SeverityRank = map[string]int{"": 0, "low": 1, "medium": 2, "high": 3, "critical": 4}

// EventKind discriminates pipeline events published to an attached
// correlator.
type EventKind uint8

const (
	// EventFlowOpen: a selected flow was first observed (TCP: first
	// packet of a tracked stream; UDP: the first payload-bearing
	// datagram of a conversation direction, re-emitted after the idle
	// window expires the flow — never once per datagram).
	EventFlowOpen EventKind = iota
	// EventAlert: a detection was emitted. Fingerprint identifies the
	// frame that matched, linking the alert to later re-emissions of
	// the same payload by the victim.
	EventAlert
	// EventFingerprint: an extracted frame was resolved through the
	// verdict path (cache hit or miss alike, so the event stream does
	// not depend on cache state). Fingerprint identifies the frame.
	EventFingerprint
	// EventFlowEvict: the engine gave up on a flow (idle or LRU
	// eviction) after analyzing its unfinished tail. Bookkeeping only:
	// eviction timing varies with shard count and budget, so
	// correlators must not derive incident content from it.
	EventFlowEvict
)

// String names the kind for logs and serialized incidents.
func (k EventKind) String() string {
	switch k {
	case EventFlowOpen:
		return "flow-open"
	case EventAlert:
		return "alert"
	case EventFingerprint:
		return "fingerprint"
	case EventFlowEvict:
		return "flow-evict"
	}
	return "unknown"
}

// Event is one typed observation published by the engine's shard hot
// path to the incident correlator. It is a plain value — publishing
// one allocates nothing — and carries trace time, so correlation
// windows behave identically in replay and live capture.
type Event struct {
	Kind        EventKind
	TimestampUS uint64

	// Flow attribution.
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16

	// Fingerprint of the frame behind EventAlert/EventFingerprint.
	Fingerprint Fingerprint

	// Sketch is the frame's structural fingerprint (zero unless the
	// engine runs with lineage enabled and the frame produced
	// detections). Where Fingerprint identifies exact bytes, the
	// sketch identifies what survives polymorphic re-encoding — the
	// lineage plane's symbol.
	Sketch sem.Sketch

	// Template and Severity describe an EventAlert's detection.
	Template string
	Severity string
}
