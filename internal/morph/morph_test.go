package morph

import (
	"bytes"
	"testing"

	"semnids/internal/ir"
	"semnids/internal/sem"
	"semnids/internal/shellcode"
	"semnids/internal/sigmatch"
	"semnids/internal/x86"
)

func TestMutatePreservesDetection(t *testing.T) {
	// Every mutated shellcode variant must still match the semantic
	// templates: metamorphism does not change behavior.
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	mutatable := 0
	for _, sc := range shellcode.Corpus() {
		m := New(42)
		// Payloads carrying literal string data (jmp/call/pop style)
		// are outside Mutate's pure-code contract.
		if _, err := m.Mutate(sc.Bytes); err != nil {
			continue
		}
		mutatable++
		for round := 0; round < 10; round++ {
			mutated, err := m.Mutate(sc.Bytes)
			if err != nil {
				t.Fatalf("%s round %d: %v", sc.Name, round, err)
			}
			found := false
			for _, d := range a.AnalyzeFrame(mutated) {
				if d.Template == "linux-shell-spawn" {
					found = true
				}
			}
			if !found {
				t.Errorf("%s round %d: mutated variant not detected", sc.Name, round)
			}
		}
	}
	if mutatable < 5 {
		t.Errorf("only %d/8 corpus payloads are mutatable pure code", mutatable)
	}
}

func TestMutateBreaksStaticSignatures(t *testing.T) {
	// The motivating contrast: enough mutation rounds defeat every
	// payload-specific byte signature.
	static := sigmatch.NewMatcher(sigmatch.DefaultSignatures())
	payload := shellcode.ClassicPush().Bytes
	if len(static.Match(payload)) == 0 {
		t.Fatal("baseline must match cleartext")
	}
	m := New(7)
	m.SubstProb = 1.0 // substitute aggressively
	m.JunkProb = 1.0  // junk in every gap splits adjacent-instruction signatures
	evaded := 0
	for i := 0; i < 50; i++ {
		mutated, err := m.Mutate(payload)
		if err != nil {
			t.Fatal(err)
		}
		specific := 0
		for _, name := range static.Match(mutated) {
			if name != "nop-sled" && name != "binsh-string" {
				// The /bin/sh *stack push* signatures are the
				// byte-level ones mutation destroys; the jmp-call-pop
				// literal string would legitimately survive, but
				// classic-push has none.
				specific++
			}
		}
		if specific == 0 {
			evaded++
		}
	}
	if evaded < 25 {
		t.Errorf("only %d/50 mutated variants evaded static signatures", evaded)
	}
}

func TestMutateChangesBytes(t *testing.T) {
	m := New(1)
	code := shellcode.ClassicPush().Bytes
	mutated, err := m.Mutate(code)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mutated, code) {
		t.Error("mutation produced identical bytes")
	}
	// Mutations of mutations keep working (idempotent interface).
	again, err := m.Mutate(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(again, mutated) {
		t.Error("second-generation mutation identical")
	}
}

func TestMutatePreservesStraightLineSemantics(t *testing.T) {
	// Property: for straight-line constant-register code, the abstract
	// evaluator computes the same final register values before and
	// after mutation.
	build := func() []byte {
		return x86.NewAsm().
			MovRI(x86.EAX, 0x1111).
			MovRI(x86.EBX, 0x31).
			AddRI(x86.EBX, 0x64).
			MovRR(x86.ECX, x86.EBX).
			XorRR(x86.EDX, x86.EDX).
			I(x86.NOT, x86.RegOp(x86.EDX)).
			SubRI(x86.EAX, 0x11).
			Nop().
			MustBytes()
	}
	code := build()
	want := finalConsts(code)
	m := New(3)
	for round := 0; round < 20; round++ {
		mutated, err := m.Mutate(code)
		if err != nil {
			t.Fatal(err)
		}
		got := finalConsts(mutated)
		for _, r := range []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX} {
			if got[r] != want[r] {
				t.Fatalf("round %d: %v = %#x, want %#x", round, r, got[r], want[r])
			}
		}
	}
}

// finalConsts runs the IR evaluator and reports the known register
// values after the last instruction.
func finalConsts(code []byte) map[x86.Reg]uint32 {
	// Append a nop so the post-state of the last real instruction is
	// observable as the pre-state of the nop.
	code = append(append([]byte{}, code...), 0x90)
	p := ir.Lift(x86.SweepAll(code))
	last := &p.Nodes[len(p.Nodes)-1]
	out := make(map[x86.Reg]uint32)
	for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI} {
		if v, ok := last.ConstBefore(r); ok {
			out[r] = v
		}
	}
	return out
}

func TestMutateBranchFixup(t *testing.T) {
	// A loop over mutation rounds: branch targets must stay correct
	// (the loop still targets the xor) even as junk grows the body.
	code := x86.NewAsm().
		Label("decode").
		I(x86.XOR, x86.MemOp(x86.MemRef{Base: x86.EAX, Size: 1, Scale: 1}), x86.ImmOp(0x42)).
		IncR(x86.EAX).
		Loop("decode").
		I(x86.RET).
		MustBytes()
	m := New(11)
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	for round := 0; round < 30; round++ {
		mutated, err := m.Mutate(code)
		if err != nil {
			t.Fatal(err)
		}
		// The loop must still decode to a backward branch landing on
		// an instruction boundary, and the template must still match.
		found := false
		for _, d := range a.AnalyzeFrame(mutated) {
			if d.Template == "xor-decrypt-loop" {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: mutated loop not detected\n% x", round, mutated)
		}
	}
}

func TestMutateRelaxation(t *testing.T) {
	// A short forward jmp over a region that junk will inflate past
	// 127 bytes must be relaxed to the near form.
	// 24 movs = 120 bytes: the original short jmp is in range, but
	// junk insertion inflates the region past 127 bytes.
	a := x86.NewAsm()
	a.JmpShort("end")
	for i := 0; i < 24; i++ {
		a.MovRI(x86.EAX, int64(i)) // 5 bytes each, plenty of junk slots
	}
	a.Label("end").I(x86.RET)
	code := a.MustBytes()

	m := New(13)
	m.JunkProb = 0.9
	mutated, err := m.Mutate(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(mutated) <= len(code) {
		t.Fatal("junk insertion did not grow the code")
	}
	// Find the (possibly junk-preceded) jmp; its target must reach the
	// ret through neutral junk only.
	var jmp *x86.Inst
	for _, in := range x86.SweepAll(mutated) {
		if in.Op == x86.JMP {
			cp := in
			jmp = &cp
			break
		}
	}
	if jmp == nil {
		t.Fatal("no jmp in mutated code")
	}
	if jmp.Target <= jmp.Addr+127 {
		t.Errorf("jmp not relaxed: target %d from %d", jmp.Target, jmp.Addr)
	}
	// Walk from the target: only junk until the ret.
	pos := jmp.Target
	for {
		in, err := x86.Decode(mutated, pos)
		if err != nil {
			t.Fatalf("target walk at %d: %v", pos, err)
		}
		if in.Op == x86.RET {
			break
		}
		switch in.Op {
		case x86.NOP, x86.MOV, x86.LEA, x86.PUSH, x86.POP:
			pos += in.Len
		default:
			t.Fatalf("unexpected %v between jmp target and ret", in)
		}
	}
}

func TestMutateErrors(t *testing.T) {
	m := New(1)
	// Undecodable input.
	if _, err := m.Mutate([]byte{0x0f, 0xff, 0x90}); err == nil {
		t.Error("bad input accepted")
	}
	// Branch into the middle of an instruction.
	bad := []byte{0xeb, 0x01, 0xb8, 0x01, 0x02, 0x03, 0x04, 0xc3} // jmp into mov's imm
	if _, err := m.Mutate(bad); err == nil {
		t.Error("mid-instruction target accepted")
	}
}

func TestMutateLoopOutOfRange(t *testing.T) {
	// A loop spanning ~120 bytes: heavy junk pushes it past rel8 and
	// LOOP cannot be relaxed; Mutate must report it rather than emit
	// broken code.
	a := x86.NewAsm()
	a.Label("top")
	for i := 0; i < 24; i++ {
		a.MovRI(x86.EAX, int64(i)) // 120 bytes: in range before mutation
	}
	a.Loop("top")
	code := a.MustBytes()
	m := New(5)
	m.JunkProb = 1.0
	if _, err := m.Mutate(code); err == nil {
		t.Skip("junk happened to stay small") // rare with JunkProb 1.0
	}
}
