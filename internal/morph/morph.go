// Package morph is a metamorphic mutation engine for position-
// independent IA-32 code: it decodes a code segment, applies
// semantics-preserving rewrites — equivalent instruction substitution
// and flag-and-register-neutral junk insertion — and re-lays the code
// out, re-fixing every relative branch (with short/near relaxation).
//
// It generalizes the obfuscations of the paper's Section 3 (Figure
// 1(b)/(c)) from hand-written decoder variants to a transformer that
// can mutate any payload in the corpus, and is used by the test suite
// to demonstrate that the semantic templates survive metamorphism that
// destroys every static byte signature.
package morph

import (
	"errors"
	"fmt"
	"math/rand"

	"semnids/internal/x86"
)

// Errors reported by Mutate.
var (
	ErrBadInput   = errors.New("morph: input contains undecodable bytes")
	ErrMidTarget  = errors.New("morph: branch targets mid-instruction")
	ErrRangeStuck = errors.New("morph: rel8-only branch out of range after mutation")
	ErrNoConverge = errors.New("morph: branch relaxation did not converge")
)

// Mutator applies metamorphic rewrites. Zero value is not usable; use
// New.
type Mutator struct {
	rng *rand.Rand

	// SubstProb is the probability of substituting an eligible
	// instruction with an equivalent sequence (default 0.5).
	SubstProb float64

	// JunkProb is the probability of inserting a junk instruction
	// before any given instruction (default 0.3).
	JunkProb float64
}

// New returns a seeded mutator.
func New(seed int64) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed)), SubstProb: 0.5, JunkProb: 0.3}
}

// branch captures a relocated control transfer during relayout.
type branch struct {
	op     x86.Opcode
	cond   x86.Cond
	target int  // item index the branch jumps to (len(items) = end)
	near   bool // relaxed to the 4-byte-displacement form
}

// item is one output slot: either pre-encoded bytes or a branch.
type item struct {
	bytes []byte
	br    *branch
	addr  int // assigned during layout
}

// Mutate rewrites code, preserving its behavior. The input must
// decode cleanly (no data bytes interleaved) and every branch must
// target an instruction boundary (or one past the end).
func (m *Mutator) Mutate(code []byte) ([]byte, error) {
	insts := x86.SweepAll(code)
	addrToIdx := make(map[int]int, len(insts))
	for i, in := range insts {
		if in.Op == x86.BAD {
			return nil, fmt.Errorf("%w (offset %d)", ErrBadInput, in.Addr)
		}
		addrToIdx[in.Addr] = i
	}
	addrToIdx[len(code)] = len(insts)

	// Registers the code uses at all; junk prefers registers the code
	// already touches (stylistic) but must preserve everything, so
	// any register is actually safe for the neutral junk forms.
	var items []item
	// origin[i] = index into items of the first item emitted for
	// instruction i (branch targets resolve here).
	origin := make([]int, len(insts)+1)

	for i, in := range insts {
		origin[i] = len(items)
		// Junk before the instruction.
		if m.rng.Float64() < m.JunkProb {
			items = append(items, item{bytes: m.junk()})
		}
		if in.HasTarget {
			j, ok := addrToIdx[in.Target]
			if !ok {
				return nil, fmt.Errorf("%w (at %d -> %d)", ErrMidTarget, in.Addr, in.Target)
			}
			// CALL has no 2-byte form; it is always "near".
			items = append(items, item{br: &branch{
				op: in.Op, cond: in.Cond, target: j, near: in.Op == x86.CALL,
			}})
			continue
		}
		items = append(items, m.rewrite(in)...)
	}
	origin[len(insts)] = len(items)

	// Relaxation fixpoint: branches start short and only grow.
	for pass := 0; ; pass++ {
		if pass > len(items)+8 {
			return nil, ErrNoConverge
		}
		addr := 0
		for k := range items {
			items[k].addr = addr
			addr += m.itemSize(&items[k])
		}
		grown := false
		for k := range items {
			br := items[k].br
			if br == nil || br.near {
				continue
			}
			rel := items[origin[br.target]].addr
			if br.target == len(insts) {
				rel = addr
			}
			disp := rel - (items[k].addr + 2) // all short forms are 2 bytes
			if disp < -128 || disp > 127 {
				switch br.op {
				case x86.LOOP, x86.LOOPE, x86.LOOPNE, x86.JECXZ:
					return nil, ErrRangeStuck
				}
				br.near = true
				grown = true
			}
		}
		if !grown {
			break
		}
	}

	// Final emission.
	var out []byte
	end := items[len(items)-1].addr + m.itemSize(&items[len(items)-1])
	for k := range items {
		it := &items[k]
		if it.br == nil {
			out = append(out, it.bytes...)
			continue
		}
		targetAddr := end
		if it.br.target < len(insts) {
			targetAddr = items[origin[it.br.target]].addr
		}
		enc, err := x86.Encode(x86.Inst{
			Op: it.br.op, Cond: it.br.cond,
			HasTarget: true, Addr: it.addr, Target: targetAddr,
		})
		if err != nil {
			return nil, err
		}
		// Encode picks the form by range; pad if it chose short where
		// we reserved near (cannot happen: near displacement computed
		// from near-form layout keeps the distance) — but a branch
		// that fits short after others grew must be padded to keep
		// the layout stable.
		want := m.itemSize(it)
		for len(enc) < want {
			enc = append(enc, 0x90)
		}
		if len(enc) != want {
			return nil, fmt.Errorf("morph: branch size drift (%d != %d)", len(enc), want)
		}
		out = append(out, enc...)
	}
	return out, nil
}

func (m *Mutator) itemSize(it *item) int {
	if it.br == nil {
		return len(it.bytes)
	}
	if !it.br.near {
		return 2
	}
	if it.br.op == x86.JCC {
		return 6
	}
	return 5 // jmp/call near
}

// rewrite returns an equivalent encoding of in, sometimes substituted.
func (m *Mutator) rewrite(in x86.Inst) []item {
	emit := func(insts ...x86.Inst) []item {
		var its []item
		for _, x := range insts {
			b, err := x86.Encode(x)
			if err != nil {
				// Not encodable after substitution: fall back to the
				// original bytes.
				return nil
			}
			its = append(its, item{bytes: b})
		}
		return its
	}
	orig := func() []item {
		its := emit(in)
		if its == nil {
			// Should not happen for decodable input, but keep a
			// defensive raw fallback of a nop (never reached in tests).
			return []item{{bytes: []byte{0x90}}}
		}
		return its
	}

	if m.rng.Float64() >= m.SubstProb {
		return orig()
	}
	a0, a1 := in.Args[0], in.Args[1]
	switch in.Op {
	case x86.MOV:
		// mov r32, imm  ->  push imm / pop r32   (flag-neutral)
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 && a1.Kind == x86.KindImm {
			if its := emit(
				x86.Inst{Op: x86.PUSH, Args: [3]x86.Operand{a1}},
				x86.Inst{Op: x86.POP, Args: [3]x86.Operand{a0}},
			); its != nil {
				return its
			}
		}
		// mov r32, r32  ->  push r2 / pop r1     (flag-neutral)
		if a0.Kind == x86.KindReg && a1.Kind == x86.KindReg &&
			a0.Reg.Size() == 4 && a1.Reg.Size() == 4 {
			if its := emit(
				x86.Inst{Op: x86.PUSH, Args: [3]x86.Operand{a1}},
				x86.Inst{Op: x86.POP, Args: [3]x86.Operand{a0}},
			); its != nil {
				return its
			}
		}
	case x86.PUSH:
		// push imm8-range values can widen: the encoder already picks
		// forms; substitute push imm -> mov onto stack? Requires esp
		// math; skip.
	}
	return orig()
}

// junk returns one flag-and-register-neutral filler instruction.
func (m *Mutator) junk() []byte {
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI, x86.EBP}
	r := regs[m.rng.Intn(len(regs))]
	switch m.rng.Intn(4) {
	case 0: // nop
		return []byte{0x90}
	case 1: // mov r, r
		b, _ := x86.Encode(x86.Inst{Op: x86.MOV,
			Args: [3]x86.Operand{x86.RegOp(r), x86.RegOp(r)}})
		return b
	case 2: // lea r, [r+0]  (flag-neutral identity)
		b, _ := x86.Encode(x86.Inst{Op: x86.LEA,
			Args: [3]x86.Operand{x86.RegOp(r), x86.MemOp(x86.MemRef{Base: r, Scale: 1})}})
		return b
	default: // push r / pop r emitted as one unit
		b1, _ := x86.Encode(x86.Inst{Op: x86.PUSH, Args: [3]x86.Operand{x86.RegOp(r)}})
		b2, _ := x86.Encode(x86.Inst{Op: x86.POP, Args: [3]x86.Operand{x86.RegOp(r)}})
		return append(b1, b2...)
	}
}
