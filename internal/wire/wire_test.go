package wire

import (
	"net/netip"
	"sync"
	"testing"

	nids "semnids"
	"semnids/internal/exploits"
	"semnids/internal/traffic"
)

func TestBroadcast(t *testing.T) {
	b := NewBus()
	t1 := b.Tap(8)
	t2 := b.Tap(8)
	if err := b.Inject([]byte{1, 2, 3}, 42); err != nil {
		t.Fatal(err)
	}
	b.Close()
	for i, tap := range []<-chan Frame{t1, t2} {
		f, ok := <-tap
		if !ok || f.TS != 42 || len(f.Data) != 3 {
			t.Errorf("tap %d: %+v ok=%v", i, f, ok)
		}
		if _, ok := <-tap; ok {
			t.Errorf("tap %d: extra frame", i)
		}
	}
}

func TestInjectCopies(t *testing.T) {
	b := NewBus()
	tap := b.Tap(1)
	buf := []byte{9, 9}
	_ = b.Inject(buf, 0)
	buf[0] = 0 // caller reuses its buffer
	f := <-tap
	if f.Data[0] != 9 {
		t.Error("frame shares the caller's buffer")
	}
}

func TestSlowTapDrops(t *testing.T) {
	b := NewBus()
	_ = b.Tap(1) // never drained
	_ = b.Inject([]byte{1}, 0)
	_ = b.Inject([]byte{2}, 0)
	if _, dropped := b.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestClosedBus(t *testing.T) {
	b := NewBus()
	b.Close()
	b.Close() // idempotent
	if err := b.Inject([]byte{1}, 0); err != ErrClosed {
		t.Errorf("inject after close: %v", err)
	}
	tap := b.Tap(1)
	if _, ok := <-tap; ok {
		t.Error("tap on closed bus delivered a frame")
	}
}

// TestLiveDetection runs the detector as a live tap while an attacker
// goroutine injects traffic — the paper's deployment model end to end.
func TestLiveDetection(t *testing.T) {
	bus := NewBus()
	tap := bus.Tap(1 << 12)

	detector, err := nids.New(nids.Config{
		Honeypots: []string{traffic.HoneypotAddr.String()},
		DarkSpace: []string{traffic.DarkNet.String()},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the detector host
		defer wg.Done()
		for f := range tap {
			_ = detector.ProcessFrame(f.Data, f.TS)
		}
		detector.Flush()
	}()

	// Background clients and one attacker share the segment.
	g := traffic.NewGen(77)
	for i := 0; i < 20; i++ {
		for _, p := range g.BenignSession() {
			if err := bus.Inject(p.Serialize(), p.TimestampUS); err != nil {
				t.Fatal(err)
			}
		}
	}
	exp := exploits.Table1Exploits()[0]
	for _, p := range g.ExploitAtHoneypot(netip.MustParseAddr("10.9.9.1"), exp.DstPort, exp.Payload) {
		if err := bus.Inject(p.Serialize(), p.TimestampUS); err != nil {
			t.Fatal(err)
		}
	}
	bus.Close()
	wg.Wait()

	injected, dropped := bus.Stats()
	if dropped != 0 {
		t.Errorf("tap dropped %d of %d frames", dropped, injected)
	}
	found := false
	for _, a := range detector.Alerts() {
		if a.Detection.Template == "linux-shell-spawn" && a.Src == netip.MustParseAddr("10.9.9.1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("live exploit not detected: %v", detector.Alerts())
	}
}
