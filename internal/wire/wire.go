// Package wire is the live-capture substitute: a software broadcast
// segment. Endpoints inject raw Ethernet frames; every tap receives
// every frame, like a NIDS host plugged into a mirrored switch port —
// the paper's deployment ("a standalone machine connected to the
// network"). Generators and the detector can then run as concurrent
// goroutines against the same segment.
package wire

import (
	"errors"
	"sync"
)

// Frame is one captured unit.
type Frame struct {
	Data []byte
	TS   uint64 // microseconds
}

// ErrClosed is returned when injecting into a closed bus.
var ErrClosed = errors.New("wire: bus closed")

// Bus is a broadcast segment. Taps added after frames were injected
// only see subsequent frames (like a real capture).
type Bus struct {
	mu     sync.Mutex
	taps   []chan Frame
	closed bool

	injected uint64
	dropped  uint64
}

// NewBus returns an empty segment.
func NewBus() *Bus { return &Bus{} }

// Tap attaches a listener with the given channel buffer. A slow tap
// whose buffer fills drops frames (counted), as a real capture
// interface would.
func (b *Bus) Tap(buffer int) <-chan Frame {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Frame, buffer)
	if b.closed {
		close(ch)
		return ch
	}
	b.taps = append(b.taps, ch)
	return ch
}

// Inject broadcasts one frame to all taps. The data is copied so the
// caller may reuse its buffer.
func (b *Bus) Inject(frame []byte, ts uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.injected++
	cp := append([]byte(nil), frame...)
	for _, ch := range b.taps {
		select {
		case ch <- Frame{Data: cp, TS: ts}:
		default:
			b.dropped++
		}
	}
	return nil
}

// Close ends the segment; taps' channels are closed after pending
// frames drain.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.taps {
		close(ch)
	}
	b.taps = nil
}

// Stats reports (frames injected, tap deliveries dropped).
func (b *Bus) Stats() (injected, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.injected, b.dropped
}
