package fed

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semnids/internal/incident"
	"semnids/internal/telemetry"
)

// segPrefix/segSuffix name sink segments: evidence-NNNNNN.seg,
// ordered by index.
const (
	segPrefix = "evidence-"
	segSuffix = ".seg"
)

// SinkConfig parameterizes a durable evidence sink.
type SinkConfig struct {
	// Dir is the segment directory (created if missing).
	Dir string

	// Export snapshots the correlator's evidence; called from the sink
	// goroutine only. A nil return skips the checkpoint.
	Export func() *incident.EvidenceExport

	// RotateBytes rotates to a new segment once the current one grows
	// past this size (default 1 MiB).
	RotateBytes int64

	// RotateEvery rotates on segment age, wall clock, so a quiet sensor
	// still converges on a fresh compact segment (default 1 minute).
	RotateEvery time.Duration

	// CheckpointEvery writes a checkpoint even without notifications —
	// the safety net that persists evidence accumulating *below* a
	// stage transition, like a victim's targeted-by record (default
	// 10s).
	CheckpointEvery time.Duration

	// KeepSegments bounds retained rotated segments; older ones are
	// deleted (default 4, floored at 2 so the previous segment — the
	// newest one guaranteed to hold a committed checkpoint — always
	// survives a rotation).
	KeepSegments int

	// Telemetry receives the sink's metric series: counters bridged at
	// scrape time plus the checkpoint fsync-latency histogram (the
	// floor under every durable ack). Nil creates a private registry.
	Telemetry *telemetry.Registry

	// openSeg opens a new segment file; a seam so tests can inject
	// write failures (ENOSPC) without a real full disk. Nil uses the
	// filesystem. Must preserve O_CREATE|O_EXCL semantics: an
	// existing-name collision must satisfy os.IsExist.
	openSeg func(path string) (segmentFile, error)
}

// segmentFile is the write surface of an open segment.
type segmentFile interface {
	io.Writer
	Sync() error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

func openSegFile(path string) (segmentFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (cfg SinkConfig) withDefaults() SinkConfig {
	if cfg.RotateBytes <= 0 {
		cfg.RotateBytes = 1 << 20
	}
	if cfg.RotateEvery <= 0 {
		cfg.RotateEvery = time.Minute
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10 * time.Second
	}
	if cfg.KeepSegments <= 0 {
		cfg.KeepSegments = 4
	} else if cfg.KeepSegments == 1 {
		cfg.KeepSegments = 2
	}
	if cfg.openSeg == nil {
		cfg.openSeg = openSegFile
	}
	return cfg
}

// SinkMetrics is a snapshot of sink counters.
type SinkMetrics struct {
	// Checkpoints counts committed evidence snapshots; Rotations
	// counts segment rollovers.
	Checkpoints, Rotations uint64

	// Dropped counts notifications that found the trigger queue full.
	// Nothing is lost — checkpoints are full snapshots, so a dropped
	// trigger coalesces into the one already pending — but a climbing
	// count means the sink is writing slower than stages are rising.
	Dropped uint64

	// Errors counts failed checkpoint writes (the sink keeps running
	// and retries on the next trigger).
	Errors uint64

	// WriteErrors counts segment write and rotate failures at the I/O
	// layer (ENOSPC, quota, a yanked volume). Each one degrades
	// gracefully: the sink sheds the oldest shed-eligible segment to
	// free space and retries on the next trigger, so a full spool disk
	// slows federation instead of wedging the engine.
	WriteErrors uint64

	// Shed counts segments deleted by disk-exhaustion shedding (not
	// by normal retention pruning). Shedding never touches the newest
	// committed segment or the one being written.
	Shed uint64
}

// Sink persists correlator evidence to size/age-rotated segment
// files. Notify is non-blocking and drop-counted, so the correlator's
// notify path never stalls on disk I/O; Close writes a final
// checkpoint. Recovery after a crash is Recover's job.
type Sink struct {
	cfg SinkConfig

	trigger chan struct{}
	syncReq chan chan error
	closing chan struct{}
	done    chan struct{}
	once    sync.Once
	killed  atomic.Bool

	m struct {
		checkpoints, rotations, dropped, errors atomic.Uint64
		writeErrors, shed                       atomic.Uint64
	}

	// fsyncNS times one checkpoint's frame+flush+fsync — the sink
	// goroutine's write cost and the latency floor of a durable ack.
	fsyncNS *telemetry.Histogram

	// Writer state, sink goroutine only.
	f        segmentFile
	bw       *bufio.Writer
	size     int64
	openedAt time.Time
	seq      uint64
	segIndex int

	// committedSeg is the newest segment index known to hold a
	// committed checkpoint: pruning spares it, so rotation can never
	// delete the only recoverable state while the fresh segment holds
	// just a header. Initialized to the newest surviving segment from
	// a previous process (best effort: that is what Recover would try
	// first).
	committedSeg int
}

// OpenSink creates (or reuses) the segment directory and starts the
// sink goroutine. New segments never clobber survivors from an
// earlier process: numbering resumes after the newest existing
// segment, which is exactly what Recover will read.
func OpenSink(cfg SinkConfig) (*Sink, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fed: sink needs a directory")
	}
	if cfg.Export == nil {
		return nil, fmt.Errorf("fed: sink needs an Export snapshot function")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Sink{
		cfg:          cfg,
		trigger:      make(chan struct{}, 1),
		syncReq:      make(chan chan error),
		closing:      make(chan struct{}),
		done:         make(chan struct{}),
		committedSeg: -1,
	}
	if len(segs) > 0 {
		s.segIndex = segs[len(segs)-1].index + 1
		s.committedSeg = segs[len(segs)-1].index
	}
	s.registerTelemetry()
	go s.run()
	return s, nil
}

// registerTelemetry installs the sink's metric series.
func (s *Sink) registerTelemetry() {
	if s.cfg.Telemetry == nil {
		s.cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := s.cfg.Telemetry
	reg.CounterFunc("semnids_sink_checkpoints_total", "Committed evidence checkpoints.", s.m.checkpoints.Load)
	reg.CounterFunc("semnids_sink_rotations_total", "Segment rollovers.", s.m.rotations.Load)
	reg.CounterFunc("semnids_sink_dropped_total", "Checkpoint triggers coalesced into a pending one.", s.m.dropped.Load)
	reg.CounterFunc("semnids_sink_errors_total", "Failed checkpoint writes (retried on the next trigger).", s.m.errors.Load)
	reg.CounterFunc("semnids_sink_write_errors_total", "Segment write/rotate failures at the I/O layer (ENOSPC); the sink sheds old segments and keeps running.", s.m.writeErrors.Load)
	reg.CounterFunc("semnids_sink_shed_total", "Segments deleted by disk-exhaustion shedding.", s.m.shed.Load)
	s.fsyncNS = reg.Histogram("semnids_sink_checkpoint_fsync_ns",
		"One checkpoint written durably: frame, flush and fsync.")
}

// Notify requests a checkpoint. Never blocks: a request arriving
// while one is already pending coalesces (counted in
// Metrics().Dropped). Safe from any goroutine, including the
// correlator's notify path.
func (s *Sink) Notify() {
	select {
	case s.trigger <- struct{}{}:
	default:
		s.m.dropped.Add(1)
	}
}

// Close writes a final checkpoint and closes the current segment.
// Idempotent.
func (s *Sink) Close() {
	s.once.Do(func() {
		close(s.closing)
		<-s.done
	})
}

// Kill stops the sink goroutine without the final checkpoint or
// flush — the crash `Recover` is specified against, as an API so
// fault drills and tests exercise the same abandonment a real kill
// produces. Durable state after Kill is exactly the checkpoints that
// were committed before it. Idempotent; Close after Kill is a no-op.
func (s *Sink) Kill() {
	s.killed.Store(true)
	s.once.Do(func() {
		close(s.closing)
		<-s.done
	})
}

// Checkpoint writes one evidence checkpoint synchronously: it returns
// after the snapshot is framed, flushed and fsynced (or with the
// write error). This is the durable-ack primitive — an aggregator
// responds 2xx only after Checkpoint returns nil, so an acked push
// can never be lost to a crash. Returns an error on a closed sink.
func (s *Sink) Checkpoint() error {
	reply := make(chan error, 1)
	select {
	case s.syncReq <- reply:
		select {
		case err := <-reply:
			return err
		case <-s.done:
			return fmt.Errorf("fed: sink closed")
		}
	case <-s.done:
		return fmt.Errorf("fed: sink closed")
	case <-s.closing:
		return fmt.Errorf("fed: sink closing")
	}
}

// Metrics returns current sink counters.
func (s *Sink) Metrics() SinkMetrics {
	return SinkMetrics{
		Checkpoints: s.m.checkpoints.Load(),
		Rotations:   s.m.rotations.Load(),
		Dropped:     s.m.dropped.Load(),
		Errors:      s.m.errors.Load(),
		WriteErrors: s.m.writeErrors.Load(),
		Shed:        s.m.shed.Load(),
	}
}

func (s *Sink) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.closing:
			if s.killed.Load() {
				// Crash semantics: abandon the descriptor without flush
				// or final checkpoint — the tail stays whatever the last
				// committed write left behind.
				if s.f != nil {
					s.f.Close()
					s.f, s.bw = nil, nil
				}
				return
			}
			s.checkpoint()
			s.closeSegment()
			return
		case reply := <-s.syncReq:
			reply <- s.checkpoint()
			continue
		case <-s.trigger:
		case <-tick.C:
		}
		s.checkpoint()
	}
}

// checkpoint snapshots the evidence and appends one committed group,
// rotating first when the current segment is over size or age.
func (s *Sink) checkpoint() error {
	ex := s.cfg.Export()
	if ex == nil {
		return nil
	}
	if s.f == nil || s.size >= s.cfg.RotateBytes || time.Since(s.openedAt) >= s.cfg.RotateEvery {
		if err := s.rotate(ex); err != nil {
			s.m.errors.Add(1)
			s.degrade()
			return err
		}
	}
	s.seq++
	if err := s.append(ex); err != nil {
		s.m.errors.Add(1)
		// The segment tail is now suspect: force a fresh segment on the
		// next checkpoint rather than appending after a partial group.
		s.closeSegment()
		s.degrade()
		return err
	}
	s.committedSeg = s.segIndex - 1
	s.m.checkpoints.Add(1)
	return nil
}

// rotate closes the current segment, opens the next, writes its
// header, and prunes old segments.
func (s *Sink) rotate(ex *incident.EvidenceExport) error {
	s.closeSegment()
	var f segmentFile
	for {
		var err error
		f, err = s.cfg.openSeg(filepath.Join(s.cfg.Dir, segName(s.segIndex)))
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			return err
		}
		// Someone else owns this name (a concurrent process, a
		// survivor the startup scan raced). Never reuse it — advance
		// and retry, or the sink would wedge on the same name forever.
		s.segIndex++
	}
	s.f = f
	s.bw = bufio.NewWriter(f)
	s.size = 0
	s.openedAt = time.Now()
	s.segIndex++
	s.m.rotations.Add(1)
	if err := s.writeFrames(func(bw *bufio.Writer) error {
		return writeRecord(bw, &wireRecord{Kind: kindHeader, Hdr: headerFor(ex)})
	}); err != nil {
		s.closeSegment()
		return err
	}
	s.prune()
	return nil
}

// append writes one committed checkpoint group and syncs it to disk.
func (s *Sink) append(ex *incident.EvidenceExport) error {
	t0 := time.Now()
	err := s.writeFrames(func(bw *bufio.Writer) error {
		return writeCheckpoint(bw, s.seq, ex)
	})
	if err == nil {
		s.fsyncNS.Observe(time.Since(t0).Nanoseconds())
	}
	return err
}

// writeFrames runs one framed write against the current segment,
// flushing, syncing and accounting its size.
func (s *Sink) writeFrames(write func(*bufio.Writer) error) error {
	if s.f == nil {
		return fmt.Errorf("fed: no open segment")
	}
	if err := write(s.bw); err != nil {
		return err
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	size, err := s.f.Seek(0, 2)
	if err != nil {
		return err
	}
	s.size = size
	return nil
}

func (s *Sink) closeSegment() {
	if s.f == nil {
		return
	}
	s.bw.Flush()
	s.f.Sync()
	s.f.Close()
	s.f, s.bw = nil, nil
}

// degrade is the disk-exhaustion path: count the I/O failure and free
// space by shedding the oldest shed-eligible segment, so a full spool
// disk converges on "newest evidence retained, oldest shed" instead of
// wedging every subsequent checkpoint. Checkpoints are full snapshots,
// so shed history is re-covered by the next successful write; what is
// lost is only spool depth for a disconnected upstream.
func (s *Sink) degrade() {
	s.m.writeErrors.Add(1)
	s.shedOldest()
}

// shedOldest deletes the oldest segment that is neither the newest
// committed checkpoint nor the segment currently being written.
// Reports whether anything was shed.
func (s *Sink) shedOldest() bool {
	segs, err := listSegments(s.cfg.Dir)
	if err != nil {
		return false
	}
	open := -1
	if s.f != nil {
		open = s.segIndex - 1
	}
	for _, seg := range segs {
		if seg.index == s.committedSeg || seg.index == open {
			continue
		}
		if os.Remove(filepath.Join(s.cfg.Dir, seg.name)) == nil {
			s.m.shed.Add(1)
			return true
		}
	}
	return false
}

// prune deletes segments beyond the retention budget, oldest first —
// but never the newest segment known to hold a committed checkpoint:
// until the freshly-rotated segment commits its first checkpoint, the
// previous one is the only recoverable state, and deleting it would
// turn a crash in that window into total evidence loss.
func (s *Sink) prune() {
	segs, err := listSegments(s.cfg.Dir)
	if err != nil {
		return
	}
	excess := len(segs) - s.cfg.KeepSegments
	for _, seg := range segs {
		if excess <= 0 {
			return
		}
		if seg.index == s.committedSeg {
			continue
		}
		os.Remove(filepath.Join(s.cfg.Dir, seg.name))
		excess--
	}
}

type segment struct {
	name  string
	index int
}

func segName(index int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, index, segSuffix)
}

// listSegments returns the directory's segments sorted oldest first.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &idx); err != nil {
			continue
		}
		segs = append(segs, segment{name: name, index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// SegmentInfo describes one on-disk sink segment.
type SegmentInfo struct {
	// Name is the file name within the sink directory.
	Name string
	// Index is the segment's rotation sequence number; higher is newer.
	Index int
	// Size is the current file size in bytes. For the newest segment —
	// the one still being appended to — it grows with each checkpoint.
	Size int64
}

// Segments lists a sink directory's segments oldest first, with
// sizes — the push transport's view of the spool. A missing directory
// is an empty spool, not an error (the sensor may not have produced
// evidence yet). Segments that disappear between listing and use were
// pruned; callers must treat that as a normal outcome.
func Segments(dir string) ([]SegmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		fi, err := os.Stat(filepath.Join(dir, seg.name))
		if err != nil {
			continue // pruned mid-listing
		}
		out = append(out, SegmentInfo{Name: seg.name, Index: seg.index, Size: fi.Size()})
	}
	return out, nil
}

// Recover loads the newest recoverable evidence state from a sink
// directory: segments are tried newest first, and within a segment
// the newest committed checkpoint wins — so a crash mid-rotation or
// mid-checkpoint (a partial final segment) falls back to the last
// state that was durably committed. Returns (nil, nil) when there is
// nothing to recover (no directory, no segments, or no segment with a
// committed checkpoint — a sensor that never completed a write starts
// fresh rather than failing to start).
func Recover(dir string) (*incident.EvidenceExport, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	for i := len(segs) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(dir, segs[i].name))
		if err != nil {
			continue
		}
		ex, err := ReadExport(f)
		f.Close()
		if err == nil {
			return ex, nil
		}
	}
	return nil, nil
}
