// Package compress implements the tiny-window LZSS stream framing used
// for federation push bodies (Content-Encoding: semnids-lzss).
//
// Evidence JSONL is highly repetitive — long runs of identical keys,
// addresses and class names — so even a 2 KiB sliding window recovers
// most of the redundancy while keeping encoder and decoder state small
// enough to live on every push path without pooling heroics.
//
// The format is deliberately minimal, in the spirit of heatshrink-style
// embedded coders:
//
//	header:  'S' 'Z' <param>        param = windowBits<<4 | lookaheadBits
//	stream:  a sequence of tokens, MSB-first bit packing
//	  1 <8-bit literal>                              one byte verbatim
//	  0 <L-bit lenField> <W-bit distField>           backreference
//	  0 <L-bit zero>                                 end of stream
//
// lenField 0 is reserved for the end-of-stream marker; otherwise the
// match length is lenField+1 (2 .. 1<<L) and the distance is
// distField+1 (1 .. 1<<W). After the end-of-stream marker the final
// byte is zero-padded.
//
// The decoder is an incremental state machine: every byte of output it
// produces is final, so a stream cut at ANY byte offset decodes to a
// strict prefix of the original and then fails with ErrTruncated. That
// composes with the evidence wire format's committed-checkpoint
// semantics — a truncated compressed push body decodes to a truncated
// JSONL body, which fed.ReadExport already handles (newest committed
// checkpoint wins, partial tail dropped).
package compress

import (
	"errors"
	"fmt"
	"io"
)

// ContentEncoding is the HTTP Content-Encoding token for this framing.
const ContentEncoding = "semnids-lzss"

// Sentinel errors. Callers branch on these to distinguish a cleanly
// detected mid-body fault from garbage input.
var (
	// ErrTruncated reports that the input ended before the encoder's
	// end-of-stream marker: everything decoded so far is a strict
	// prefix of the original, and the rest is missing.
	ErrTruncated = errors.New("compress: input truncated before end of stream")

	// ErrBadStateOnClose reports Close on a stream that had not
	// reached a clean end of stream (reader: EOS not seen; writer: a
	// downstream write failed and the tail was never emitted).
	ErrBadStateOnClose = errors.New("compress: close in bad state")

	// ErrCorrupt reports input that can never have been produced by
	// the encoder (bad magic, out-of-range parameters, or a
	// backreference past the start of the stream).
	ErrCorrupt = errors.New("compress: corrupt input")
)

// Default and legal parameter ranges. The defaults (2 KiB window,
// 32-byte lookahead) are tuned for evidence JSONL; see the compression
// benchmarks.
const (
	DefaultWindowBits    = 11
	DefaultLookaheadBits = 5

	minWindowBits    = 4
	maxWindowBits    = 13
	minLookaheadBits = 2
	maxLookaheadBits = 7
)

const (
	magic0 = 'S'
	magic1 = 'Z'

	minMatch = 2

	// Encoder hash-chain shape: 15-bit multiplicative hash over the
	// next two bytes, bounded chain walks. Collisions are harmless —
	// candidates are byte-verified before use.
	hashBits  = 15
	hashSize  = 1 << hashBits
	maxChain  = 32
	compactAt = 1 << 15 // slide the encode buffer once this much is consumed
	chunkMax  = 1 << 14 // largest slice appended to the buffer per step
)

func hash2(a, b byte) uint32 {
	return ((uint32(a)<<8 | uint32(b)) * 2654435761) >> (32 - hashBits)
}

func validParams(windowBits, lookaheadBits int) error {
	if windowBits < minWindowBits || windowBits > maxWindowBits {
		return fmt.Errorf("%w: window bits %d out of range [%d,%d]", ErrCorrupt, windowBits, minWindowBits, maxWindowBits)
	}
	if lookaheadBits < minLookaheadBits || lookaheadBits > maxLookaheadBits {
		return fmt.Errorf("%w: lookahead bits %d out of range [%d,%d]", ErrCorrupt, lookaheadBits, minLookaheadBits, maxLookaheadBits)
	}
	if lookaheadBits >= windowBits {
		return fmt.Errorf("%w: lookahead bits %d must be smaller than window bits %d", ErrCorrupt, lookaheadBits, windowBits)
	}
	return nil
}

// Writer is a streaming LZSS encoder. Close flushes the end-of-stream
// marker; until then the output is a resumable prefix.
type Writer struct {
	w     io.Writer
	wBits int
	lBits int

	winSize  int
	maxMatch int

	buf []byte // window history + pending input
	pos int    // buf[:pos] is encoded history, buf[pos:] pending

	head []int32 // hash -> newest buf position + 1 (0 = empty)
	prev []int32 // buf position -> previous position with same hash + 1

	bitBuf uint64
	bitN   uint
	out    []byte

	wroteHeader bool
	closed      bool
	err         error
}

// NewWriter returns a Writer with the default window and lookahead.
func NewWriter(w io.Writer) *Writer {
	wr, err := NewWriterSize(w, DefaultWindowBits, DefaultLookaheadBits)
	if err != nil {
		// Defaults are always legal.
		panic(err)
	}
	return wr
}

// NewWriterSize returns a Writer with an explicit window (1<<windowBits
// bytes) and lookahead (max match 1<<lookaheadBits bytes).
func NewWriterSize(w io.Writer, windowBits, lookaheadBits int) (*Writer, error) {
	if err := validParams(windowBits, lookaheadBits); err != nil {
		return nil, err
	}
	return &Writer{
		w:        w,
		wBits:    windowBits,
		lBits:    lookaheadBits,
		winSize:  1 << windowBits,
		maxMatch: 1 << lookaheadBits,
		head:     make([]int32, hashSize),
		prev:     make([]int32, compactAt+(1<<maxWindowBits)+chunkMax+(1<<maxLookaheadBits)),
		out:      make([]byte, 0, 4096),
	}, nil
}

func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		w.err = errors.New("compress: write after close")
		return 0, w.err
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > chunkMax {
			n = chunkMax
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		w.encode(false)
		if w.err != nil {
			return total, w.err
		}
	}
	return total, nil
}

// Close encodes any buffered input, emits the end-of-stream marker and
// flushes. It does not close the underlying writer. If an earlier
// write failed, Close reports ErrBadStateOnClose: the stream on the
// wire is an unterminated prefix.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.err = fmt.Errorf("%w: %v", ErrBadStateOnClose, w.err)
		return w.err
	}
	w.encode(true)
	if w.err == nil {
		// End of stream: backref tag with lenField 0, then pad.
		w.putBits(0, 1)
		w.putBits(0, uint(w.lBits))
		if w.bitN > 0 {
			w.bitBuf <<= 8 - w.bitN
			w.out = append(w.out, byte(w.bitBuf))
			w.bitBuf, w.bitN = 0, 0
		}
		w.flush()
	}
	if w.err != nil {
		w.err = fmt.Errorf("%w: %v", ErrBadStateOnClose, w.err)
	}
	return w.err
}

func (w *Writer) putBits(v uint64, n uint) {
	w.bitBuf = w.bitBuf<<n | (v & (1<<n - 1))
	w.bitN += n
	for w.bitN >= 8 {
		w.bitN -= 8
		w.out = append(w.out, byte(w.bitBuf>>w.bitN))
	}
	if len(w.out) >= 4096 {
		w.flush()
	}
}

func (w *Writer) flush() {
	if w.err != nil || len(w.out) == 0 {
		return
	}
	if _, err := w.w.Write(w.out); err != nil {
		w.err = err
	}
	w.out = w.out[:0]
}

func (w *Writer) encode(final bool) {
	if w.err != nil {
		return
	}
	if !w.wroteHeader {
		w.wroteHeader = true
		w.out = append(w.out, magic0, magic1, byte(w.wBits<<4|w.lBits))
	}
	for {
		avail := len(w.buf) - w.pos
		if avail == 0 {
			break
		}
		// Hold back until a full lookahead is buffered so the greedy
		// choice at pos never improves with more input.
		if !final && avail < w.maxMatch {
			break
		}
		bestLen, bestDist := w.findMatch(avail)
		if bestLen >= minMatch {
			w.putBits(0, 1)
			w.putBits(uint64(bestLen-1), uint(w.lBits))
			w.putBits(uint64(bestDist-1), uint(w.wBits))
			end := w.pos + bestLen
			for ; w.pos < end; w.pos++ {
				w.insert(w.pos)
			}
		} else {
			w.putBits(1, 1)
			w.putBits(uint64(w.buf[w.pos]), 8)
			w.insert(w.pos)
			w.pos++
		}
		if w.err != nil {
			return
		}
		if w.pos >= compactAt {
			w.compact()
		}
	}
}

func (w *Writer) findMatch(avail int) (length, dist int) {
	if avail < minMatch {
		return 0, 0
	}
	maxLen := avail
	if maxLen > w.maxMatch {
		maxLen = w.maxMatch
	}
	pos := w.pos
	cand := int(w.head[hash2(w.buf[pos], w.buf[pos+1])]) - 1
	best := 0
	for chain := maxChain; cand >= 0 && chain > 0; chain-- {
		if pos-cand > w.winSize {
			break
		}
		// Cheap rejection: the byte that would extend the best match.
		if best == 0 || w.buf[cand+best] == w.buf[pos+best] {
			n := 0
			for n < maxLen && w.buf[cand+n] == w.buf[pos+n] {
				n++
			}
			if n > best {
				best, dist = n, pos-cand
				if best == maxLen {
					break
				}
			}
		}
		cand = int(w.prev[cand]) - 1
	}
	return best, dist
}

func (w *Writer) insert(i int) {
	if i+1 >= len(w.buf) {
		return
	}
	h := hash2(w.buf[i], w.buf[i+1])
	w.prev[i] = w.head[h]
	w.head[h] = int32(i + 1)
}

// compact slides the buffer so only the live window plus pending input
// remain, then rebuilds the hash chains for the retained window. This
// bounds both the buffer and the prev table for unbounded streams.
func (w *Writer) compact() {
	keep := w.pos - w.winSize
	if keep <= 0 {
		return
	}
	n := copy(w.buf, w.buf[keep:])
	w.buf = w.buf[:n]
	w.pos -= keep
	for i := range w.head {
		w.head[i] = 0
	}
	for i := 0; i < w.pos; i++ {
		w.insert(i)
	}
}

// Reader is a streaming LZSS decoder. It produces output incrementally:
// any byte returned by Read is final, so a truncated input yields a
// strict prefix of the original followed by ErrTruncated.
type Reader struct {
	r io.Reader

	wBits int
	lBits int

	win   []byte // ring buffer of decoded history
	wMask int
	wPos  int
	total int64 // bytes decoded so far (backref validation)

	in    [512]byte
	inPos int
	inLen int

	bitBuf uint32
	bitN   uint

	state    rdState
	copyLen  int
	copyDist int

	err error
}

type rdState uint8

const (
	rdHeader rdState = iota
	rdTag
	rdLiteral
	rdLen
	rdDist
	rdCopy
	rdDone
)

// NewReader returns a Reader decoding the stream from r. Parameters
// are taken from the stream header.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

func (d *Reader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		switch d.state {
		case rdDone:
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		case rdHeader:
			if err := d.readHeader(); err != nil {
				return n, d.fail(err)
			}
			d.state = rdTag
		case rdTag:
			b, err := d.getBits(1)
			if err != nil {
				return n, d.fail(err)
			}
			if b == 1 {
				d.state = rdLiteral
			} else {
				d.state = rdLen
			}
		case rdLiteral:
			b, err := d.getBits(8)
			if err != nil {
				return n, d.fail(err)
			}
			p[n] = byte(b)
			d.emit(byte(b))
			n++
			d.state = rdTag
		case rdLen:
			v, err := d.getBits(uint(d.lBits))
			if err != nil {
				return n, d.fail(err)
			}
			if v == 0 {
				d.state = rdDone
				continue
			}
			d.copyLen = int(v) + 1
			d.state = rdDist
		case rdDist:
			v, err := d.getBits(uint(d.wBits))
			if err != nil {
				return n, d.fail(err)
			}
			d.copyDist = int(v) + 1
			if int64(d.copyDist) > d.total {
				return n, d.fail(fmt.Errorf("%w: backreference distance %d exceeds %d decoded bytes", ErrCorrupt, d.copyDist, d.total))
			}
			d.state = rdCopy
		case rdCopy:
			// Byte-at-a-time via the ring: distances may be shorter
			// than the match (run-length encoding of repeats).
			for d.copyLen > 0 && n < len(p) {
				b := d.win[(d.wPos-d.copyDist)&d.wMask]
				p[n] = b
				d.emit(b)
				n++
				d.copyLen--
			}
			if d.copyLen == 0 {
				d.state = rdTag
			}
		}
	}
	return n, nil
}

func (d *Reader) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

func (d *Reader) emit(b byte) {
	d.win[d.wPos&d.wMask] = b
	d.wPos++
	d.total++
}

func (d *Reader) readHeader() error {
	var hdr [3]byte
	for i := 0; i < len(hdr); {
		b, err := d.nextByte()
		if err != nil {
			return err
		}
		hdr[i] = b
		i++
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:2])
	}
	wBits, lBits := int(hdr[2]>>4), int(hdr[2]&0xf)
	if err := validParams(wBits, lBits); err != nil {
		return err
	}
	d.wBits, d.lBits = wBits, lBits
	d.win = make([]byte, 1<<wBits)
	d.wMask = 1<<wBits - 1
	return nil
}

func (d *Reader) nextByte() (byte, error) {
	for d.inPos >= d.inLen {
		n, err := d.r.Read(d.in[:])
		if n > 0 {
			d.inPos, d.inLen = 0, n
			break
		}
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Out of input before the end-of-stream marker:
				// clean strict-prefix truncation.
				return 0, ErrTruncated
			}
			return 0, err
		}
	}
	b := d.in[d.inPos]
	d.inPos++
	return b, nil
}

func (d *Reader) getBits(n uint) (uint32, error) {
	for d.bitN < n {
		b, err := d.nextByte()
		if err != nil {
			return 0, err
		}
		d.bitBuf = d.bitBuf<<8 | uint32(b)
		d.bitN += 8
	}
	d.bitN -= n
	return (d.bitBuf >> d.bitN) & (1<<n - 1), nil
}

// Close reports whether the stream terminated cleanly. A Reader that
// never saw the end-of-stream marker (truncated or abandoned input)
// returns ErrBadStateOnClose. It does not close the underlying reader.
func (d *Reader) Close() error {
	if d.state == rdDone {
		return nil
	}
	if d.err != nil && d.err != ErrTruncated {
		return fmt.Errorf("%w: %v", ErrBadStateOnClose, d.err)
	}
	return ErrBadStateOnClose
}
