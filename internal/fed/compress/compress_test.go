package compress

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// encode compresses b with the default parameters and returns the wire
// bytes, failing the test on any writer error.
func encode(t testing.TB, b []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	w := NewWriter(&out)
	if _, err := w.Write(b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out.Bytes()
}

func decode(t testing.TB, b []byte) []byte {
	t.Helper()
	r := NewReader(bytes.NewReader(b))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Reader.Close: %v", err)
	}
	return got
}

// corpus builds inputs that exercise literals, short and long matches,
// overlapping runs and window-crossing repetition.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 50000)
	rng.Read(random)

	jsonish := func(n int) []byte {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, `{"kind":"evd","src":"10.9.%d.%d","class":"code-red-ii","bytes":%d,"sig":"return-address-region"}`+"\n",
				i%256, (i*7)%256, 1000+i%512)
		}
		return []byte(sb.String())
	}

	return map[string][]byte{
		"empty":       nil,
		"one":         {0x42},
		"two":         {0x42, 0x42},
		"run":         bytes.Repeat([]byte{'a'}, 10000),
		"run-pair":    bytes.Repeat([]byte("ab"), 7000),
		"ascii":       []byte("the quick brown fox jumps over the lazy dog"),
		"random":      random,
		"jsonish":     jsonish(400),
		"big-jsonish": jsonish(4000), // crosses the compaction threshold
		"binary-rep":  bytes.Repeat([]byte{0, 1, 2, 3, 0xff, 0xfe}, 9000),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, in := range corpus() {
		t.Run(name, func(t *testing.T) {
			wire := encode(t, in)
			got := decode(t, wire)
			if !bytes.Equal(got, in) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(in))
			}
		})
	}
}

func TestRoundTripChunked(t *testing.T) {
	in := corpus()["jsonish"]
	var out bytes.Buffer
	w := NewWriter(&out)
	for i := 0; i < len(in); i += 3 {
		end := i + 3
		if end > len(in) {
			end = len(in)
		}
		if _, err := w.Write(in[i:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tiny destination buffers on the read side.
	r := NewReader(bytes.NewReader(out.Bytes()))
	var got []byte
	buf := make([]byte, 7)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if !bytes.Equal(got, in) {
		t.Fatalf("chunked round trip mismatch")
	}
}

func TestRoundTripAllParams(t *testing.T) {
	in := corpus()["jsonish"]
	for wb := minWindowBits; wb <= maxWindowBits; wb++ {
		for lb := minLookaheadBits; lb <= maxLookaheadBits && lb < wb; lb++ {
			var out bytes.Buffer
			w, err := NewWriterSize(&out, wb, lb)
			if err != nil {
				t.Fatalf("NewWriterSize(%d,%d): %v", wb, lb, err)
			}
			if _, err := w.Write(in); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := decode(t, out.Bytes()); !bytes.Equal(got, in) {
				t.Fatalf("W=%d L=%d round trip mismatch", wb, lb)
			}
		}
	}
}

// TestTruncationEveryOffset is the strict-prefix guarantee: a stream
// cut at ANY byte offset must decode to a prefix of the original and
// fail with ErrTruncated, and Close must report ErrBadStateOnClose.
func TestTruncationEveryOffset(t *testing.T) {
	in := corpus()["jsonish"][:4000]
	wire := encode(t, in)
	if len(wire) < 64 {
		t.Fatalf("wire too small to be interesting: %d bytes", len(wire))
	}
	for cut := 0; cut < len(wire); cut++ {
		r := NewReader(bytes.NewReader(wire[:cut]))
		got, err := io.ReadAll(r)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
		if !bytes.HasPrefix(in, got) {
			t.Fatalf("cut=%d: decoded %d bytes are not a prefix of the original", cut, len(got))
		}
		// Only a cut inside the trailing end-of-stream marker (at
		// most the final two bytes) may still recover every payload
		// byte; anywhere earlier, output must be missing.
		if len(got) == len(in) && cut < len(wire)-2 {
			t.Fatalf("cut=%d/%d: full output recovered from truncated input", cut, len(wire))
		}
		if err := r.Close(); !errors.Is(err, ErrBadStateOnClose) {
			t.Fatalf("cut=%d: Close = %v, want ErrBadStateOnClose", cut, err)
		}
	}
}

func TestCorruptInput(t *testing.T) {
	valid := encode(t, []byte("hello hello hello"))

	t.Run("bad-magic", func(t *testing.T) {
		wire := append([]byte{}, valid...)
		wire[0] = 'X'
		_, err := io.ReadAll(NewReader(bytes.NewReader(wire)))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-params", func(t *testing.T) {
		wire := append([]byte{}, valid...)
		wire[2] = 0xff // windowBits 15 out of range
		_, err := io.ReadAll(NewReader(bytes.NewReader(wire)))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("backref-before-start", func(t *testing.T) {
		// Header then a backreference with nothing decoded yet:
		// tag=0, lenField=1, dist bits... craft by hand: after the
		// 3-byte header, bits 0 00001 00000000001 → invalid distance.
		wire := []byte{magic0, magic1, DefaultWindowBits<<4 | DefaultLookaheadBits, 0b00000100, 0b00000001, 0x00}
		_, err := io.ReadAll(NewReader(bytes.NewReader(wire)))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestWriterCloseAfterWriteError(t *testing.T) {
	w := NewWriter(failWriter{})
	// Enough input to force a flush through the failing writer.
	big := bytes.Repeat([]byte("abcdefgh"), 4096)
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = w.Write(big)
	}
	if werr == nil {
		t.Fatalf("Write never surfaced the downstream failure")
	}
	if err := w.Close(); !errors.Is(err, ErrBadStateOnClose) {
		t.Fatalf("Close = %v, want ErrBadStateOnClose", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestReaderCloseCleanAndEmpty(t *testing.T) {
	wire := encode(t, nil)
	r := NewReader(bytes.NewReader(wire))
	got, err := io.ReadAll(r)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: got %d bytes, err %v", len(got), err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close after clean EOS: %v", err)
	}
}

func TestCompressionRatioJSONL(t *testing.T) {
	in := corpus()["big-jsonish"]
	wire := encode(t, in)
	ratio := float64(len(in)) / float64(len(wire))
	t.Logf("jsonish: %d -> %d bytes (%.2fx)", len(in), len(wire), ratio)
	if ratio < 3.0 {
		t.Fatalf("compression ratio %.2fx below 3x floor on repetitive JSONL", ratio)
	}
	// Incompressible input must not blow up badly: worst case is
	// 9 bits per literal plus header and EOS.
	rnd := corpus()["random"]
	rw := encode(t, rnd)
	if float64(len(rw)) > float64(len(rnd))*9.0/8.0+16 {
		t.Fatalf("incompressible expansion too large: %d -> %d", len(rnd), len(rw))
	}
}

// FuzzDecompress drives the decoder over arbitrary input: it must never
// panic, never return more than the bounded output, and on valid
// prefixes must fail with the sentinel errors only.
func FuzzDecompress(f *testing.F) {
	seeds := [][]byte{
		nil,
		{magic0},
		{magic0, magic1},
		{magic0, magic1, DefaultWindowBits<<4 | DefaultLookaheadBits},
		{0xff, 0xff, 0xff, 0xff},
	}
	for _, in := range corpus() {
		wire := encodeFuzzSeed(in)
		seeds = append(seeds, wire)
		if len(wire) > 4 {
			seeds = append(seeds, wire[:len(wire)/2], wire[:len(wire)-1])
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOut = 1 << 22
		r := NewReader(bytes.NewReader(data))
		n, err := io.Copy(io.Discard, io.LimitReader(r, maxOut))
		if n > maxOut {
			t.Fatalf("decoder exceeded output bound")
		}
		if err == nil {
			// Either clean EOS or the output bound was hit
			// mid-stream; Close distinguishes.
			_ = r.Close()
			return
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if cerr := r.Close(); cerr == nil {
			t.Fatalf("Close succeeded after decode error %v", err)
		}
	})
}

func encodeFuzzSeed(b []byte) []byte {
	var out bytes.Buffer
	w := NewWriter(&out)
	w.Write(b)
	w.Close()
	return out.Bytes()
}

func BenchmarkCompressJSONL(b *testing.B) {
	in := corpus()["big-jsonish"]
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	var wireLen int
	for i := 0; i < b.N; i++ {
		var out bytes.Buffer
		w := NewWriter(&out)
		w.Write(in)
		w.Close()
		wireLen = out.Len()
	}
	b.ReportMetric(float64(len(in))/float64(wireLen), "ratio")
}

func BenchmarkDecompressJSONL(b *testing.B) {
	in := corpus()["big-jsonish"]
	wire := encode(b, in)
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(wire))
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}
