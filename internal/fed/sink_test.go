package fed

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/incident"
)

// stagedExports returns successive evidence snapshots of a growing
// correlator — the shape a live sensor's Export produces over time.
func stagedExports(t *testing.T, n int) []*incident.EvidenceExport {
	t.Helper()
	evs := synthEvents(42, 200*n)
	var out []*incident.EvidenceExport
	c := incident.New(incident.Config{WindowUS: 30e6, FanoutThreshold: 3})
	defer c.Stop()
	per := len(evs) / n
	for i := 0; i < n; i++ {
		for _, ev := range evs[i*per : (i+1)*per] {
			c.Publish(ev)
		}
		c.Flush()
		out = append(out, c.Export("sensor-a"))
	}
	return out
}

// checkpointAll opens a sink whose Export pops the next staged
// snapshot (sticking at the last), then drives one checkpoint per
// snapshot through the notify path.
func checkpointAll(t *testing.T, dir string, exports []*incident.EvidenceExport, rotateBytes int64) *Sink {
	t.Helper()
	var calls atomic.Int64
	s, err := OpenSink(SinkConfig{
		Dir:             dir,
		RotateBytes:     rotateBytes,
		CheckpointEvery: time.Hour, // notify-driven only, deterministic
		Export: func() *incident.EvidenceExport {
			i := int(calls.Add(1)) - 1
			if i >= len(exports) {
				i = len(exports) - 1
			}
			return exports[i]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(exports); k++ {
		s.Notify()
		// Wait out each checkpoint so notifications never coalesce and
		// every staged snapshot lands.
		want := uint64(k)
		waitFor(t, func() bool { return s.Metrics().Checkpoints == want })
	}
	return s
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSinkRecoverLatest checks the happy path: a sink that wrote
// several checkpoints across several rotated segments recovers its
// newest state.
func TestSinkRecoverLatest(t *testing.T) {
	dir := t.TempDir()
	exports := stagedExports(t, 4)
	// Tiny rotation budget: every checkpoint lands in a fresh segment.
	s := checkpointAll(t, dir, exports, 1)
	s.Close()

	if m := s.Metrics(); m.Checkpoints != 5 || m.Errors != 0 {
		// 4 notify-driven plus Close's final checkpoint.
		t.Fatalf("sink metrics = %+v, want 5 checkpoints, 0 errors", m)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("nothing recovered")
	}
	want := exports[len(exports)-1]
	if !reflect.DeepEqual(got.Sources, want.Sources) {
		t.Fatalf("recovered sources diverged from the newest checkpoint")
	}

	// Retention: old segments pruned to the budget.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 4 {
		t.Fatalf("%d segments retained, budget 4", len(segs))
	}
}

// TestSinkCrashRecovery simulates the crash the satellite names: the
// process dies mid-rotation, leaving a partial final segment (its
// last checkpoint group has no commit mark). Recovery must fall back
// to the newest complete state — first the earlier committed
// checkpoint in the same segment, then, once the segment holds
// nothing committed, the previous segment.
func TestSinkCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	exports := stagedExports(t, 3)
	s := checkpointAll(t, dir, exports, 1<<30) // one segment, three groups
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1].name)
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}

	// Find the final commit mark and cut inside the group it commits:
	// the tail checkpoint is now partial, exactly as a mid-write crash
	// leaves it.
	idx := bytes.LastIndex(data, []byte(`{"k":"end"`))
	if idx < 0 {
		t.Fatal("no commit mark in segment")
	}
	if err := os.WriteFile(last, data[:idx-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("nothing recovered from a segment with earlier committed checkpoints")
	}
	// The final checkpoint (Close's copy of exports[2]) is lost with
	// the commit mark; the one before it must be what recovery sees.
	if !reflect.DeepEqual(got.Sources, exports[2].Sources) {
		t.Fatal("recovery did not return the newest committed checkpoint")
	}

	// Now destroy every commit mark in the final segment: recovery
	// must fall back to... nothing here (single segment) → fresh start.
	if err := os.WriteFile(last, bytes.ReplaceAll(data, []byte(`{"k":"end"`), []byte(`{"k":"xxx"`)), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("recovered state from a segment with no committed checkpoint")
	}
}

// TestSinkCrashFallsBackOneSegment is the cross-segment half: the
// newest segment is entirely uncommitted (crash right after
// rotation), so recovery reads the one before it.
func TestSinkCrashFallsBackOneSegment(t *testing.T) {
	dir := t.TempDir()
	exports := stagedExports(t, 2)
	s := checkpointAll(t, dir, exports, 1) // segment per checkpoint
	s.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v (%v)", segs, err)
	}
	// Truncate the newest segment just after its header record: a
	// crash between rotation and the first commit.
	last := filepath.Join(dir, segs[len(segs)-1].name)
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	if err := os.WriteFile(last, data[:nl+1], 0o644); err != nil {
		t.Fatal(err)
	}

	prev, err := os.ReadFile(filepath.Join(dir, segs[len(segs)-2].name))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadExport(bytes.NewReader(prev))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !reflect.DeepEqual(got.Sources, want.Sources) {
		t.Fatal("recovery did not fall back to the previous complete segment")
	}
}

// TestSinkSegmentNameCollision plants a file on the sink's next
// rotation name (what a concurrent process racing the startup scan
// leaves behind): rotation must skip past it and keep checkpointing,
// never wedge retrying the same name.
func TestSinkSegmentNameCollision(t *testing.T) {
	dir := t.TempDir()
	exports := stagedExports(t, 3)

	// The sink will start at index 0; occupy indexes 1 and 2 so the
	// second and third rotations collide.
	for _, idx := range []int{1, 2} {
		if err := os.WriteFile(filepath.Join(dir, segName(idx)), []byte("squatter"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := checkpointAll(t, dir, exports, 1) // rotate on every checkpoint
	s.Close()
	if m := s.Metrics(); m.Errors != 0 || m.Checkpoints != 4 {
		t.Fatalf("sink metrics after collisions = %+v, want 4 checkpoints, 0 errors", m)
	}
	got, err := Recover(dir)
	if err != nil || got == nil {
		t.Fatalf("recovery after collisions: %v, %v", got, err)
	}
	if !reflect.DeepEqual(got.Sources, exports[len(exports)-1].Sources) {
		t.Fatal("recovered state is not the newest checkpoint")
	}
}

// TestSinkPruneSparesCommitted drives prune directly: the newest
// segment known to hold a committed checkpoint must survive any
// retention pressure, or a crash between rotation and the next commit
// would lose all recoverable state.
func TestSinkPruneSparesCommitted(t *testing.T) {
	dir := t.TempDir()
	for idx := 0; idx < 6; idx++ {
		if err := os.WriteFile(filepath.Join(dir, segName(idx)), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := &Sink{cfg: SinkConfig{Dir: dir, KeepSegments: 2}.withDefaults(), committedSeg: 0}
	s.prune()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, seg := range segs {
		if seg.index == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("prune deleted the committed segment; remaining %v", segs)
	}
	if len(segs) > 3 { // budget 2 + the spared committed one
		t.Fatalf("prune retained %d segments, want at most 3", len(segs))
	}

	// KeepSegments=1 is floored to 2: the previous (committed) segment
	// always survives a rotation.
	if got := (SinkConfig{KeepSegments: 1}.withDefaults()).KeepSegments; got != 2 {
		t.Fatalf("KeepSegments floor = %d, want 2", got)
	}
}

// TestSinkNotifyNeverBlocks floods Notify far beyond the trigger
// queue: every call must return immediately, with the excess counted
// as coalesced drops.
func TestSinkNotifyNeverBlocks(t *testing.T) {
	dir := t.TempDir()
	ex := synthExport(t, "sensor-a", 7, 100)
	block := make(chan struct{})
	s, err := OpenSink(SinkConfig{
		Dir:             dir,
		CheckpointEvery: time.Hour,
		Export: func() *incident.EvidenceExport {
			<-block // wedge the sink goroutine mid-checkpoint
			return ex
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			s.Notify()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Notify blocked on a wedged sink")
	}
	if s.Metrics().Dropped == 0 {
		t.Error("flooded sink counted no dropped (coalesced) notifications")
	}
	close(block)
	s.Close()
}
