// Package fed federates incident evidence across sensors: a
// versioned, length-prefixed JSONL wire format for the correlator's
// evidence exports, a durable size/age-rotated sink with crash
// recovery (so a long-running sensor survives restarts with its
// attacker state intact), and a commutative, idempotent merge that
// folds N sensors' exports into one deterministic incident report.
//
// Wire format. A segment is a stream of framed records:
//
//	<len> <json>\n
//
// where <len> is the decimal byte length of the JSON document (ASCII,
// at most 7 digits, bounded by MaxRecordBytes so a corrupt prefix can
// never drive an over-allocation) and the JSON document is a
// wireRecord envelope. The first record of a segment is a header
// ("hdr": format name, version, sensor provenance, correlation
// parameters). Evidence follows in checkpoint groups — a "ckpt" mark,
// the per-source "src" records, then an "end" commit mark echoing the
// checkpoint sequence and count. A group missing its commit mark (a
// crash mid-write, a truncated copy) is ignored by the decoder, which
// returns the newest *committed* checkpoint; the framing makes
// truncation detectable at every byte.
package fed

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"semnids/internal/incident"
	"semnids/internal/lineage"
)

const (
	// FormatName identifies evidence segments.
	FormatName = "semnids-evidence"
	// Version is the wire version this build reads and writes. A
	// decoder rejects any other major version (version skew must be an
	// error, never a misparse).
	Version = 1
	// MaxRecordBytes bounds one framed record: the decoder refuses
	// larger claims before allocating.
	MaxRecordBytes = 1 << 20

	maxLenDigits = 7
)

// Record kinds.
const (
	kindHeader     = "hdr"
	kindCheckpoint = "ckpt"
	kindSource     = "src"
	kindClassifier = "cls"
	kindLineage    = "lin"
	kindCommit     = "end"
)

// header is the first record of every segment.
type header struct {
	Format          string                  `json:"format"`
	Version         int                     `json:"version"`
	Sensors         []string                `json:"sensors"`
	WindowUS        uint64                  `json:"window_us"`
	FanoutThreshold int                     `json:"fanout_threshold"`
	Limits          incident.EvidenceLimits `json:"limits"`
}

// checkpointMark opens ("ckpt") and commits ("end") one evidence
// snapshot of Count source records plus Cls classifier records. The
// opening mark also carries the snapshot's sensor provenance: unlike
// the correlation parameters, the sensor set can grow between
// checkpoints of one segment (an aggregator folding new sensors, an
// engine importing foreign evidence), so it belongs to the snapshot,
// not the segment. Absent (older segments), the header's list stands.
type checkpointMark struct {
	Seq     uint64   `json:"seq"`
	Count   int      `json:"count"`
	Cls     int      `json:"cls,omitempty"`
	Lin     int      `json:"lin,omitempty"`
	Sensors []string `json:"sensors,omitempty"`
}

// wireRecord is the JSON envelope behind every frame.
type wireRecord struct {
	Kind string                       `json:"k"`
	Hdr  *header                      `json:"hdr,omitempty"`
	Ckpt *checkpointMark              `json:"ckpt,omitempty"`
	Src  *incident.SourceEvidence     `json:"src,omitempty"`
	Cls  *incident.ClassifierEvidence `json:"cls,omitempty"`
	Lin  *lineage.Observation         `json:"lin,omitempty"`
	End  *checkpointMark              `json:"end,omitempty"`
}

// ErrNoCheckpoint reports a segment with a valid header but no
// committed checkpoint — a sensor that crashed before its first
// complete write.
var ErrNoCheckpoint = errors.New("fed: segment has no committed checkpoint")

// writeRecord frames one record.
func writeRecord(w *bufio.Writer, rec *wireRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(data) > MaxRecordBytes {
		return fmt.Errorf("fed: record of %d bytes exceeds the %d-byte wire bound", len(data), MaxRecordBytes)
	}
	if _, err := fmt.Fprintf(w, "%d ", len(data)); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// readRecord decodes one frame. io.EOF means a clean end between
// records; any other error means the stream is corrupt or truncated
// at this record.
func readRecord(br *bufio.Reader) (*wireRecord, error) {
	n := 0
	digits := 0
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && digits == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("fed: truncated length prefix: %w", err)
		}
		if b == ' ' {
			if digits == 0 {
				return nil, errors.New("fed: empty length prefix")
			}
			break
		}
		if b < '0' || b > '9' {
			return nil, fmt.Errorf("fed: bad length prefix byte %q", b)
		}
		digits++
		if digits > maxLenDigits {
			return nil, errors.New("fed: oversized length prefix")
		}
		n = n*10 + int(b-'0')
	}
	if n == 0 || n > MaxRecordBytes {
		return nil, fmt.Errorf("fed: record length %d outside (0, %d]", n, MaxRecordBytes)
	}
	buf := make([]byte, n+1)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("fed: truncated record: %w", err)
	}
	if buf[n] != '\n' {
		return nil, errors.New("fed: record missing terminator")
	}
	rec := &wireRecord{}
	if err := json.Unmarshal(buf[:n], rec); err != nil {
		return nil, fmt.Errorf("fed: bad record JSON: %w", err)
	}
	return rec, nil
}

// headerFor renders an export's parameters as a segment header.
func headerFor(ex *incident.EvidenceExport) *header {
	return &header{
		Format:          FormatName,
		Version:         Version,
		Sensors:         ex.Sensors,
		WindowUS:        ex.WindowUS,
		FanoutThreshold: ex.FanoutThreshold,
		Limits:          ex.Limits,
	}
}

// writeCheckpoint appends one committed evidence snapshot. The commit
// mark echoes the opening mark's counts but not the sensors — the
// decoder validates the group on seq and counts alone. Lineage ("lin")
// records are a minor-format addition within Version 1: the opening
// mark declares their count and older decoders skip unknown kinds, so
// segments with lineage remain readable by pre-lineage builds (which
// simply drop the ancestry plane).
func writeCheckpoint(w *bufio.Writer, seq uint64, ex *incident.EvidenceExport) error {
	open := &checkpointMark{Seq: seq, Count: len(ex.Sources), Cls: len(ex.Classifier), Lin: len(ex.Lineage), Sensors: ex.Sensors}
	if err := writeRecord(w, &wireRecord{Kind: kindCheckpoint, Ckpt: open}); err != nil {
		return err
	}
	for i := range ex.Sources {
		if err := writeRecord(w, &wireRecord{Kind: kindSource, Src: &ex.Sources[i]}); err != nil {
			return err
		}
	}
	for i := range ex.Classifier {
		if err := writeRecord(w, &wireRecord{Kind: kindClassifier, Cls: &ex.Classifier[i]}); err != nil {
			return err
		}
	}
	for i := range ex.Lineage {
		if err := writeRecord(w, &wireRecord{Kind: kindLineage, Lin: &ex.Lineage[i]}); err != nil {
			return err
		}
	}
	end := &checkpointMark{Seq: seq, Count: open.Count, Cls: open.Cls, Lin: open.Lin}
	return writeRecord(w, &wireRecord{Kind: kindCommit, End: end})
}

// WriteExport serializes an evidence export as one complete segment:
// header plus a single committed checkpoint.
func WriteExport(w io.Writer, ex *incident.EvidenceExport) error {
	bw := bufio.NewWriter(w)
	if err := writeRecord(bw, &wireRecord{Kind: kindHeader, Hdr: headerFor(ex)}); err != nil {
		return err
	}
	if err := writeCheckpoint(bw, 1, ex); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadExport decodes a segment, returning the newest committed
// checkpoint as an evidence export. Corruption or truncation after a
// committed checkpoint is tolerated (the committed state is
// returned); a segment with no committed checkpoint, a bad header, or
// a version this build does not speak is an error.
func ReadExport(r io.Reader) (*incident.EvidenceExport, error) {
	br := bufio.NewReader(r)
	rec, err := readRecord(br)
	if err != nil {
		if err == io.EOF {
			return nil, errors.New("fed: empty segment")
		}
		return nil, err
	}
	if rec.Kind != kindHeader || rec.Hdr == nil {
		return nil, fmt.Errorf("fed: segment does not start with a header (got %q)", rec.Kind)
	}
	hdr := rec.Hdr
	if hdr.Format != FormatName {
		return nil, fmt.Errorf("fed: unknown format %q", hdr.Format)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("fed: wire version %d not supported (this build speaks %d)", hdr.Version, Version)
	}
	// Correlation parameters are part of the evidence semantics: a
	// zero window, threshold or cap describes no correlator this
	// build can run, so a crafted or hand-edited header fails here,
	// not deeper in derivation.
	if hdr.WindowUS == 0 || hdr.FanoutThreshold <= 0 ||
		hdr.Limits.MaxDestinations <= 0 || hdr.Limits.MaxAlerts <= 0 ||
		hdr.Limits.MaxFingerprints <= 0 || hdr.Limits.MaxVictims <= 0 {
		return nil, fmt.Errorf("fed: header carries invalid correlation parameters (window=%d fanout=%d limits=%+v)",
			hdr.WindowUS, hdr.FanoutThreshold, hdr.Limits)
	}

	ex := &incident.EvidenceExport{
		Sensors:         hdr.Sensors,
		WindowUS:        hdr.WindowUS,
		FanoutThreshold: hdr.FanoutThreshold,
		Limits:          hdr.Limits,
	}
	var committed []incident.SourceEvidence
	var committedCls []incident.ClassifierEvidence
	var committedLin []lineage.Observation
	committedSensors := hdr.Sensors
	haveCommit := false

	var pending []incident.SourceEvidence
	var pendingCls []incident.ClassifierEvidence
	var pendingLin []lineage.Observation
	var open *checkpointMark
	drop := func() {
		open, pending, pendingCls, pendingLin = nil, nil, nil, nil
	}
	for {
		rec, err := readRecord(br)
		if err != nil {
			// Clean EOF between records ends the segment; anything else
			// is a truncated tail — either way the newest committed
			// checkpoint stands.
			break
		}
		switch rec.Kind {
		case kindCheckpoint:
			if rec.Ckpt == nil || rec.Ckpt.Count < 0 || rec.Ckpt.Cls < 0 || rec.Ckpt.Lin < 0 {
				drop()
				continue
			}
			open = rec.Ckpt
			pending = pending[:0]
			pendingCls = pendingCls[:0]
			pendingLin = pendingLin[:0]
		case kindSource:
			if open == nil || rec.Src == nil || len(pending) >= open.Count {
				drop()
				continue
			}
			pending = append(pending, *rec.Src)
		case kindClassifier:
			if open == nil || rec.Cls == nil || len(pendingCls) >= open.Cls {
				drop()
				continue
			}
			pendingCls = append(pendingCls, *rec.Cls)
		case kindLineage:
			if open == nil || rec.Lin == nil || len(pendingLin) >= open.Lin {
				drop()
				continue
			}
			pendingLin = append(pendingLin, *rec.Lin)
		case kindCommit:
			if open == nil || rec.End == nil || rec.End.Seq != open.Seq || rec.End.Count != open.Count ||
				rec.End.Cls != open.Cls || rec.End.Lin != open.Lin ||
				len(pending) != open.Count || len(pendingCls) != open.Cls || len(pendingLin) != open.Lin {
				drop()
				continue
			}
			committed = append(committed[:0], pending...)
			committedCls = append(committedCls[:0], pendingCls...)
			committedLin = append(committedLin[:0], pendingLin...)
			if open.Sensors != nil {
				committedSensors = open.Sensors
			}
			haveCommit = true
			drop()
		default:
			// Unknown minor-format record: skip (framing still holds).
		}
	}
	if !haveCommit {
		return nil, ErrNoCheckpoint
	}
	ex.Sensors = committedSensors
	ex.Sources = committed
	ex.Classifier = committedCls
	ex.Lineage = committedLin
	return ex, nil
}

// Merge federates two evidence exports — the union of their evidence
// under shared caps, propagation re-derived across sensors,
// provenance preserved per record. Commutative and idempotent; see
// incident.MergeExports for the semantics.
func Merge(a, b *incident.EvidenceExport) (*incident.EvidenceExport, error) {
	return incident.MergeExports(a, b)
}
