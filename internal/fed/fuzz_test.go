package fed

import (
	"bytes"
	"testing"
)

// FuzzDecodeEvidence hammers the evidence wire decoder with arbitrary
// bytes: truncated records, corrupt length prefixes, version skew,
// garbage JSON. The decoder must fail cleanly — no panic, no
// over-allocation from a hostile length claim (the prefix is bounded
// before any buffer is sized) — and anything it does accept must
// re-encode and decode to the same evidence.
func FuzzDecodeEvidence(f *testing.F) {
	// Golden exports: small, large, empty.
	for _, seed := range []struct {
		seed   int64
		events int
	}{{1, 50}, {2, 400}, {3, 0}} {
		ex := synthExport(f, "sensor-a", seed.seed, seed.events)
		data := encode(f, ex)
		f.Add(data)
		// Truncations of a valid segment.
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-1])
		// The same export with lineage records: lin framing, its count
		// marks, and truncations landing mid-lin.
		withLin := encode(f, synthLineage(ex, "sensor-a", seed.seed, 20))
		f.Add(withLin)
		f.Add(withLin[:len(withLin)/2])
		f.Add(withLin[:len(withLin)-1])
	}
	// Corrupt length prefixes and version skew.
	f.Add([]byte("9999999 {}\n"))
	f.Add([]byte("99999999 {}\n"))
	f.Add([]byte("0 \n"))
	f.Add([]byte("x7 {}\n"))
	f.Add([]byte(`96 {"k":"hdr","hdr":{"format":"semnids-evidence","version":99,"window_us":1,"fanout_threshold":1}}` + "\n"))
	f.Add([]byte(`14 {"k":"ckpt"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ex, err := ReadExport(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: the decode must be re-encodable, and the
		// canonical encoding must decode to the same evidence.
		var buf bytes.Buffer
		if err := WriteExport(&buf, ex); err != nil {
			t.Fatalf("accepted evidence failed to re-encode: %v", err)
		}
		again, err := ReadExport(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if len(again.Sources) != len(ex.Sources) {
			t.Fatalf("round trip changed source count: %d != %d", len(again.Sources), len(ex.Sources))
		}
	})
}
