package fed

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"semnids/internal/core"
	"semnids/internal/incident"
	"semnids/internal/lineage"
)

// synthLineage attaches a deterministic canonical lineage set to an
// export, as a sensor running with lineage enabled would.
func synthLineage(ex *incident.EvidenceExport, sensor string, seed int64, n int) *incident.EvidenceExport {
	rng := rand.New(rand.NewSource(seed))
	tails := []core.Fingerprint{
		core.FingerprintOf([]byte("worm-a")),
		core.FingerprintOf([]byte("worm-b")),
	}
	var obs []lineage.Observation
	for i := 0; i < n; i++ {
		id := rng.Intn(n)
		obs = append(obs, lineage.Observation{
			Exact:       core.FingerprintOf([]byte(fmt.Sprintf("%s-variant-%d", sensor, id))),
			Tail:        tails[id%len(tails)],
			TemplateSym: uint64(id%4) + 1,
			StmtsSym:    uint64(id%6) + 1,
			FirstUS:     uint64(1000 + rng.Intn(100000)),
			Src:         netip.AddrFrom4([4]byte{10, 0, byte(rng.Intn(3)), byte(rng.Intn(9) + 1)}),
			Dst:         netip.AddrFrom4([4]byte{172, 16, 0, byte(rng.Intn(9) + 1)}),
			Sensors:     []string{sensor},
		})
	}
	ex.Lineage = lineage.Merge(obs, nil) // canonical form
	return ex
}

// TestWireLineageRoundTrip checks lin records survive encode → decode
// losslessly and the encoding stays canonical.
func TestWireLineageRoundTrip(t *testing.T) {
	ex := synthLineage(synthExport(t, "sensor-a", 1, 300), "sensor-a", 11, 40)
	if len(ex.Lineage) == 0 {
		t.Fatal("synthetic lineage is empty")
	}
	data := encode(t, ex)
	got, err := ReadExport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Lineage, ex.Lineage) {
		t.Fatalf("lineage round trip diverged:\n got: %+v\nwant: %+v", got.Lineage, ex.Lineage)
	}
	if again := encode(t, got); !bytes.Equal(again, data) {
		t.Fatal("re-encoding a decoded lineage export changed the bytes")
	}
}

// TestWireLineageOffByteIdentical pins the compatibility contract: an
// export with no lineage records encodes to bytes containing no trace
// of the lin extension — a sensor running without -lineage emits
// exactly what it emitted before the format learned about lineage.
func TestWireLineageOffByteIdentical(t *testing.T) {
	data := encode(t, synthExport(t, "sensor-a", 3, 300))
	if bytes.Contains(data, []byte(`"lin"`)) || bytes.Contains(data, []byte(`"lin":`)) {
		t.Fatal("lineage-free export mentions the lin extension on the wire")
	}
}

// TestWireLineageTruncationFallsBack truncates inside the lin records
// of a second checkpoint at every byte offset: the reader must either
// recover the first committed checkpoint (with its lineage) or fail
// cleanly — never return the half-written second state.
func TestWireLineageTruncationFallsBack(t *testing.T) {
	first := synthLineage(synthExport(t, "sensor-a", 4, 30), "sensor-a", 21, 8)
	second := synthLineage(synthExport(t, "sensor-a", 4, 30), "sensor-a", 22, 16)

	var buf bytes.Buffer
	if err := WriteExport(&buf, first); err != nil {
		t.Fatal(err)
	}
	committed := buf.Len()
	wantLineage := first.Lineage
	if err := WriteExport(&buf, second); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for cut := committed; cut < len(data); cut++ {
		got, err := ReadExport(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: committed first checkpoint not recovered: %v", cut, err)
		}
		if !reflect.DeepEqual(got.Lineage, wantLineage) {
			t.Fatalf("cut %d: recovered lineage is not the committed checkpoint's", cut)
		}
	}
	// The complete stream recovers the second checkpoint.
	got, err := ReadExport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Lineage, second.Lineage) {
		t.Fatal("complete stream did not recover the newest checkpoint's lineage")
	}
}

// TestWireLineageCountMismatchRejected checks the end-mark validation:
// a checkpoint whose end mark declares a different lin count than was
// streamed must not commit.
func TestWireLineageCountMismatchRejected(t *testing.T) {
	ex := synthLineage(synthExport(t, "sensor-a", 5, 100), "sensor-a", 31, 5)
	data := string(encode(t, ex))
	n := len(ex.Lineage)
	if n == 0 || n > 9 {
		t.Fatalf("want 1-9 lineage records for a same-width digit swap, got %d", n)
	}
	// The open and end marks both carry the lin count; corrupt only the
	// last occurrence (the end mark). Record framing carries a length
	// prefix, so the swap must preserve byte length: one digit for one.
	mark := fmt.Sprintf(`"lin":%d`, n)
	swap := fmt.Sprintf(`"lin":%d`, (n+1)%10)
	i := strings.LastIndex(data, mark)
	if i < 0 {
		t.Fatal("no lin count found in encoded export")
	}
	corrupt := data[:i] + swap + data[i+len(mark):]
	if _, err := ReadExport(strings.NewReader(corrupt)); err == nil {
		t.Fatal("checkpoint with mismatched lin count committed")
	}
}

// TestMergeExportsLineage extends the merge property suite to lineage:
// commutative, idempotent and associative on canonical wire bytes, with
// the merged lineage equal to the lineage-level Merge.
func TestMergeExportsLineage(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a := synthLineage(synthExport(t, "sensor-a", seed, 200), "sensor-a", seed+40, 25)
		b := synthLineage(synthExport(t, "sensor-b", seed+100, 200), "sensor-b", seed+50, 25)
		c := synthLineage(synthExport(t, "sensor-c", seed+200, 200), "sensor-c", seed+60, 25)

		ab, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Merge(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, ab), encode(t, ba)) {
			t.Fatalf("seed %d: lineage merge not commutative", seed)
		}
		aa, err := Merge(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, aa), encode(t, a)) {
			t.Fatalf("seed %d: lineage merge not idempotent", seed)
		}
		abc1, err := Merge(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Merge(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := Merge(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, abc1), encode(t, abc2)) {
			t.Fatalf("seed %d: lineage merge not associative", seed)
		}
		if !reflect.DeepEqual(ab.Lineage, lineage.Merge(a.Lineage, b.Lineage)) {
			t.Fatalf("seed %d: export merge diverged from lineage.Merge", seed)
		}
	}
}
