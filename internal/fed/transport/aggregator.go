// Package transport moves incident evidence from sensors to an
// aggregator over HTTP, engineered so every failure mode degrades
// gracefully instead of losing or duplicating evidence.
//
// The delivery contract is at-least-once transport composed with an
// idempotent, commutative fold (fed.Merge): a sensor pushes each
// committed evidence segment until the aggregator acknowledges it,
// and the aggregator folds whatever arrives — duplicates, resends
// after lost acks, segments replayed across an aggregator restart —
// into the same deterministic state. At-least-once delivery plus
// idempotent merge yields exactly-once *effect* without any
// distributed bookkeeping: no sequence negotiation, no dedup window,
// no sensor registry.
//
// Failure modes and their outcomes:
//
//   - Aggregator unreachable: the sensor's rotated segment directory
//     *is* the spool. Pushes back off exponentially (with jitter);
//     ingest continues at full rate; the cost is lag bounded by the
//     sink's prune policy, and a Dropped counter says when prune
//     outran push.
//   - Connection drop / mid-body truncation: the pusher sees a
//     request error and retries; the aggregator either saw nothing,
//     or decoded a committed prefix it can safely fold (the framing
//     makes truncation detectable at every byte, and the resend
//     supersedes the prefix idempotently).
//   - Lost ack / duplicate delivery: the segment is pushed again;
//     fed.Merge(state, X) twice equals once.
//   - Aggregator crash: acks are durable — a 2xx is written only
//     after the merged state is committed to the aggregator's own
//     crash-recoverable sink — so restart recovers everything acked,
//     and everything unacked is retried by its sensor.
//   - Corrupt or oversized segment: rejected with a clean 4xx before
//     any allocation the body's length prefixes could demand; the
//     pusher counts it and moves on rather than wedging the spool.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semnids/internal/fed"
	"semnids/internal/fed/compress"
	"semnids/internal/incident"
	"semnids/internal/telemetry"
)

// AggregatorConfig parameterizes an evidence aggregator.
type AggregatorConfig struct {
	// Dir is the aggregator's own durable sink directory (required):
	// merged state is checkpointed here and recovered on restart.
	Dir string

	// MaxBodyBytes bounds one pushed segment body (default 32 MiB). A
	// body at or over the bound is rejected with 413 — including one
	// whose committed prefix decoded cleanly, because an ack must
	// cover the whole segment the sensor will mark delivered.
	MaxBodyBytes int64

	// RotateBytes / RotateEvery / CheckpointEvery / KeepSegments tune
	// the aggregator's sink (see fed.SinkConfig).
	RotateBytes     int64
	RotateEvery     time.Duration
	CheckpointEvery time.Duration
	KeepSegments    int

	// AsyncAck acknowledges pushes before the merged state is durably
	// checkpointed. The default (false) holds the 2xx until the sink
	// reports the fold fsynced — the property the restart tests pin:
	// an acked push can never be lost to a crash. Async trades that
	// for latency; an aggregator crash may then lose acked evidence
	// until the sensor's next full-snapshot checkpoint re-delivers it.
	AsyncAck bool

	// Telemetry receives the aggregator's metric series (and is shared
	// with its sink, so one scrape covers both). Nil creates a private
	// registry.
	Telemetry *telemetry.Registry

	// NodeID names this aggregator in the federation topology
	// (default "agg"). It is stamped into the Via set of upstream
	// pushes and matched against incoming Via sets to refuse cycles,
	// so every aggregator in a tree needs a distinct ID.
	NodeID string

	// MaxHops bounds how many federation tiers evidence may traverse
	// (default 16). A push whose hop count exceeds it is refused with
	// 409 — the backstop against topologies that dodge the Via set
	// (e.g. a cycle wider than the bounded set).
	MaxHops int

	// Upstreams makes this aggregator an interior tree node: its own
	// sink directory doubles as the spool of a Pusher delivering the
	// folded state up the tree, in priority order with failover. Empty
	// means a root (or standalone) aggregator.
	Upstreams []string

	// UpstreamClient / PushInterval / PushTimeout / PushBackoffMin /
	// PushBackoffMax / PushProbeInterval / PushSeed / Compression tune
	// the upstream pusher (see PusherConfig; zero values take its
	// defaults). Ignored without Upstreams.
	UpstreamClient    *http.Client
	PushInterval      time.Duration
	PushTimeout       time.Duration
	PushBackoffMin    time.Duration
	PushBackoffMax    time.Duration
	PushProbeInterval time.Duration
	PushSeed          int64
	Compression       Compression
}

func (cfg AggregatorConfig) withDefaults() AggregatorConfig {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "agg"
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 16
	}
	return cfg
}

// AggregatorMetrics is a snapshot of aggregator counters and gauges.
type AggregatorMetrics struct {
	// Received counts push requests; Merged counts those whose
	// evidence was folded into the state (including duplicates —
	// idempotence makes them indistinguishable from first deliveries,
	// which is the point).
	Received, Merged uint64

	// Rejected counts bodies refused as corrupt or checkpoint-less
	// (400), TooLarge those over MaxBodyBytes (413), Skew those
	// carrying incompatible correlation parameters (409).
	Rejected, TooLarge, Skew uint64

	// Errors counts folds that merged but failed to commit durably
	// (500 — the pusher retries, the merge is idempotent).
	Errors uint64

	// Cycles counts pushes refused by the topology guards (409): the
	// Via set named this aggregator, or the hop count exceeded
	// MaxHops. Any nonzero value means a misconfigured tree.
	Cycles uint64

	// Unsupported counts pushes refused for an unknown
	// Content-Encoding (415).
	Unsupported uint64

	// Sensors and Sources describe the current merged state.
	Sensors, Sources int
}

// Aggregator folds pushed evidence segments into one deterministic
// federated state, durably checkpointed to its own crash-recoverable
// sink. It is an http.Handler (POST = push); restart recovery happens
// in NewAggregator via fed.Recover.
type Aggregator struct {
	cfg AggregatorConfig

	mu    sync.Mutex
	state *incident.EvidenceExport // nil until the first fold

	sink   *fed.Sink
	closed atomic.Bool

	// push delivers the folded state up the tree (nil for a root).
	push *Pusher

	// Topology observed from incoming pushes: the deepest hop count
	// seen and the union of Via sets (bounded). An interior node's own
	// upstream pushes stamp hops = maxSeenHops+1 and via = {NodeID} ∪
	// seenVia, so depth and provenance accumulate tier over tier.
	topoMu      sync.Mutex
	maxSeenHops int
	seenVia     map[string]bool

	m struct {
		received, merged, rejected, tooLarge, skew, errors atomic.Uint64
		cycles, unsupported                                atomic.Uint64
	}

	// foldNS times one accepted push end to end on the aggregator:
	// decode, fold, durable commit.
	foldNS *telemetry.Histogram

	// ackedAt records, per source address, the wall clock (Unix µs) of
	// the first durable fold whose evidence covered that source — the
	// aggregator-side endpoint of the packet→…→acked timeline.
	// Wall-clock and arrival-dependent, so it is exposed only through
	// AnnotateTimelines (report annotations), never folded into the
	// evidence wire format, which must stay deterministic. Bounded by
	// maxAckedSources; overflow is dropped (annotation is best-effort
	// observability, the evidence itself is not affected).
	ackMu   sync.Mutex
	ackedAt map[netip.Addr]uint64
}

// maxAckedSources bounds the ack-time annotation table; maxVia bounds
// the accumulated seen-via set (MaxHops bounds depth even when the set
// overflows).
const (
	maxAckedSources = 65536
	maxVia          = 256
)

// NewAggregator recovers the newest committed state from the sink
// directory (if any) and starts the durable sink.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("transport: aggregator needs a sink directory")
	}
	a := &Aggregator{cfg: cfg, ackedAt: make(map[netip.Addr]uint64), seenVia: make(map[string]bool)}
	if a.cfg.Telemetry == nil {
		a.cfg.Telemetry = telemetry.NewRegistry()
	}
	rec, err := fed.Recover(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("transport: aggregator recovery: %w", err)
	}
	a.state = rec
	sink, err := fed.OpenSink(fed.SinkConfig{
		Dir:             cfg.Dir,
		RotateBytes:     cfg.RotateBytes,
		RotateEvery:     cfg.RotateEvery,
		CheckpointEvery: cfg.CheckpointEvery,
		KeepSegments:    cfg.KeepSegments,
		Export:          a.Export,
		Telemetry:       a.cfg.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("transport: aggregator sink: %w", err)
	}
	a.sink = sink
	if len(cfg.Upstreams) > 0 {
		// The aggregator's own sink directory is the upstream spool:
		// every durable fold grows a segment the pusher will deliver,
		// and fold associativity makes any tree bracketing converge.
		push, err := NewPusher(PusherConfig{
			Dir:            cfg.Dir,
			URLs:           cfg.Upstreams,
			Client:         cfg.UpstreamClient,
			ScanInterval:   cfg.PushInterval,
			RequestTimeout: cfg.PushTimeout,
			BackoffMin:     cfg.PushBackoffMin,
			BackoffMax:     cfg.PushBackoffMax,
			ProbeInterval:  cfg.PushProbeInterval,
			Seed:           cfg.PushSeed,
			Compression:    cfg.Compression,
			Route:          a.route,
			Telemetry:      a.cfg.Telemetry,
		})
		if err != nil {
			sink.Close()
			return nil, fmt.Errorf("transport: aggregator upstream pusher: %w", err)
		}
		a.push = push
	}
	a.registerTelemetry()
	return a, nil
}

// route is the topology stamp for this node's upstream pushes: one
// tier deeper than the deepest push folded here, via this node plus
// everything already seen.
func (a *Aggregator) route() (int, []string) {
	a.topoMu.Lock()
	defer a.topoMu.Unlock()
	via := make([]string, 0, len(a.seenVia)+1)
	via = append(via, a.cfg.NodeID)
	for id := range a.seenVia {
		via = append(via, id)
	}
	sort.Strings(via[1:])
	return a.maxSeenHops + 1, via
}

// registerTelemetry installs the aggregator's metric series (its sink
// registered on the same registry in NewAggregator).
func (a *Aggregator) registerTelemetry() {
	reg := a.cfg.Telemetry
	reg.CounterFunc("semnids_agg_received_total", "Push requests received.", a.m.received.Load)
	reg.CounterFunc("semnids_agg_merged_total", "Pushes folded into the merged state.", a.m.merged.Load)
	reg.CounterFunc("semnids_agg_rejected_total", "Bodies refused as corrupt or checkpoint-less (400).", a.m.rejected.Load)
	reg.CounterFunc("semnids_agg_too_large_total", "Bodies over MaxBodyBytes (413).", a.m.tooLarge.Load)
	reg.CounterFunc("semnids_agg_skew_total", "Pushes with incompatible correlation parameters (409).", a.m.skew.Load)
	reg.CounterFunc("semnids_agg_errors_total", "Folds that merged but failed the durable commit (500).", a.m.errors.Load)
	reg.CounterFunc("semnids_agg_cycles_total", "Pushes refused by the topology guards: Via-set cycle or hop budget (409).", a.m.cycles.Load)
	reg.CounterFunc("semnids_agg_unsupported_total", "Pushes refused for an unknown Content-Encoding (415).", a.m.unsupported.Load)
	reg.GaugeFunc("semnids_agg_sensors", "Distinct sensors in the merged state.", func() int64 {
		st := a.Export()
		if st == nil {
			return 0
		}
		return int64(len(st.Sensors))
	})
	reg.GaugeFunc("semnids_agg_sources", "Distinct sources in the merged state.", func() int64 {
		st := a.Export()
		if st == nil {
			return 0
		}
		return int64(len(st.Sources))
	})
	reg.GaugeFunc("semnids_agg_acked_sources", "Sources with a recorded first durable-ack time.", func() int64 {
		a.ackMu.Lock()
		defer a.ackMu.Unlock()
		return int64(len(a.ackedAt))
	})
	a.foldNS = reg.Histogram("semnids_agg_push_fold_ns",
		"One accepted push: decode, fold, durable commit.")
}

// Telemetry returns the aggregator's metric registry (configured or
// private), shared with its durable sink.
func (a *Aggregator) Telemetry() *telemetry.Registry { return a.cfg.Telemetry }

// recordAcks stamps the first durable-ack wall time for every source
// covered by a committed fold. Called after the push's evidence is
// durable (or queued durable under AsyncAck).
func (a *Aggregator) recordAcks(ex *incident.EvidenceExport) {
	now := uint64(time.Now().UnixMicro())
	a.ackMu.Lock()
	defer a.ackMu.Unlock()
	for i := range ex.Sources {
		src := ex.Sources[i].Src
		if _, ok := a.ackedAt[src]; !ok && len(a.ackedAt) < maxAckedSources {
			a.ackedAt[src] = now
		}
	}
}

// AnnotateTimelines appends an "acked" wall-clock timeline event to
// every incident whose source has a recorded first durable ack. It
// annotates copies derived downstream of the evidence — the evidence
// itself, and therefore federation determinism, is untouched. The
// input slice is modified in place and returned.
func (a *Aggregator) AnnotateTimelines(incs []incident.Incident) []incident.Incident {
	a.ackMu.Lock()
	defer a.ackMu.Unlock()
	for i := range incs {
		if at, ok := a.ackedAt[incs[i].Src]; ok {
			incs[i].AppendTimeline(incident.TimelineEvent{Kind: "acked", AtUS: at, Wall: true})
		}
	}
	return incs
}

// Export returns the current merged evidence state (nil before the
// first fold). The returned export is immutable — folds replace the
// state wholesale — so callers may read it without synchronization
// but must not modify it.
func (a *Aggregator) Export() *incident.EvidenceExport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Metrics returns current aggregator counters and gauges.
func (a *Aggregator) Metrics() AggregatorMetrics {
	m := AggregatorMetrics{
		Received:    a.m.received.Load(),
		Merged:      a.m.merged.Load(),
		Rejected:    a.m.rejected.Load(),
		TooLarge:    a.m.tooLarge.Load(),
		Skew:        a.m.skew.Load(),
		Errors:      a.m.errors.Load(),
		Cycles:      a.m.cycles.Load(),
		Unsupported: a.m.unsupported.Load(),
	}
	if st := a.Export(); st != nil {
		m.Sensors = len(st.Sensors)
		m.Sources = len(st.Sources)
	}
	return m
}

// SinkStats returns the aggregator's durable-sink counters.
func (a *Aggregator) SinkStats() fed.SinkMetrics { return a.sink.Metrics() }

// PushStats returns the upstream pusher's metrics and whether this
// aggregator has one (interior tree nodes only).
func (a *Aggregator) PushStats() (PushMetrics, bool) {
	if a.push == nil {
		return PushMetrics{}, false
	}
	return a.push.Metrics(), true
}

// NotifyUpstream nudges the upstream pusher's spool scan (no-op on a
// root). Tests use it to tighten convergence; production relies on the
// per-fold nudge in ServeHTTP.
func (a *Aggregator) NotifyUpstream() {
	if a.push != nil {
		a.push.Notify()
	}
}

// Close writes a final durable checkpoint, stops the sink, and then
// lets the upstream pusher (if any) make its final sweep — so the
// closing node's last folds still reach its upstream.
func (a *Aggregator) Close() {
	a.closed.Store(true)
	a.sink.Close()
	if a.push != nil {
		a.push.Close()
	}
}

// Kill crash-stops the aggregator: no final checkpoint, no flush, no
// farewell push — durable state is exactly the checkpoints committed
// before the kill. The restart tests (and operator fault drills) use
// this to prove recovery; production shutdown is Close.
func (a *Aggregator) Kill() {
	a.closed.Store(true)
	a.sink.Kill()
	if a.push != nil {
		a.push.Kill()
	}
}

// ServeHTTP accepts one pushed evidence segment per POST request and
// folds it into the merged state. GET/HEAD is the liveness/capability
// probe: 204 with this node's ID and accepted encodings in the
// headers (stamped on every response, so pushers learn capabilities
// from acks too). Responses:
//
//	200 — folded and (unless AsyncAck) durably committed
//	204 — probe (GET/HEAD)
//	400 — corrupt, truncated-before-first-checkpoint, or empty body
//	405 — not a POST/GET/HEAD
//	409 — correlation-parameter skew, or a topology-guard refusal
//	      (Via-set cycle / hop budget) — retrying cannot help
//	413 — body (wire or decoded) at or over MaxBodyBytes
//	415 — unknown Content-Encoding
//	500 — folded but not durably committed (retry is safe)
//	503 — aggregator closed
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set(HeaderNode, a.cfg.NodeID)
	h.Set(HeaderAcceptEncoding, compress.ContentEncoding)
	if a.closed.Load() {
		http.Error(w, "transport: aggregator closed", http.StatusServiceUnavailable)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		w.WriteHeader(http.StatusNoContent)
		return
	case http.MethodPost:
	default:
		http.Error(w, "transport: push is POST only", http.StatusMethodNotAllowed)
		return
	}
	a.m.received.Add(1)
	t0 := time.Now()

	// Topology guards before any body work: refuse evidence that has
	// already been folded here (cycle) or traveled too deep.
	hops := 1
	if v := r.Header.Get(HeaderHops); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			hops = n
		}
	}
	var via []string
	if v := r.Header.Get(HeaderVia); v != "" {
		for _, id := range strings.Split(v, ",") {
			if id = strings.TrimSpace(id); id != "" {
				via = append(via, id)
			}
		}
	}
	for _, id := range via {
		if id == a.cfg.NodeID {
			a.m.cycles.Add(1)
			http.Error(w, fmt.Sprintf("transport: topology cycle: evidence already folded by %q (via %s)", a.cfg.NodeID, strings.Join(via, ",")), http.StatusConflict)
			return
		}
	}
	if hops > a.cfg.MaxHops {
		a.m.cycles.Add(1)
		http.Error(w, fmt.Sprintf("transport: hop count %d exceeds the %d-tier budget", hops, a.cfg.MaxHops), http.StatusConflict)
		return
	}
	a.topoMu.Lock()
	if hops > a.maxSeenHops {
		a.maxSeenHops = hops
	}
	for _, id := range via {
		if len(a.seenVia) >= maxVia {
			break
		}
		a.seenVia[id] = true
	}
	a.topoMu.Unlock()

	// Bound the body before the decoder sees it. The decoder's own
	// MaxRecordBytes bound refuses oversized per-record claims before
	// allocating; this bound caps the whole segment — on both sides of
	// the content decoding, so a small compressed body cannot expand
	// past the budget. One extra byte of budget distinguishes "fits
	// exactly" from "was cut off".
	wireLR := &io.LimitedReader{R: r.Body, N: a.cfg.MaxBodyBytes + 1}
	var body io.Reader = wireLR
	var decLR *io.LimitedReader
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "", "identity":
	case compress.ContentEncoding:
		decLR = &io.LimitedReader{R: compress.NewReader(wireLR), N: a.cfg.MaxBodyBytes + 1}
		body = decLR
	default:
		a.m.unsupported.Add(1)
		http.Error(w, fmt.Sprintf("transport: unsupported content encoding %q", enc), http.StatusUnsupportedMediaType)
		return
	}
	ex, err := fed.ReadExport(body)
	if wireLR.N <= 0 || (decLR != nil && decLR.N <= 0) {
		a.m.tooLarge.Add(1)
		http.Error(w, fmt.Sprintf("transport: segment body exceeds the %d-byte bound", a.cfg.MaxBodyBytes), http.StatusRequestEntityTooLarge)
		return
	}
	if err != nil {
		a.m.rejected.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, fed.ErrNoCheckpoint) {
			// A committed-checkpoint-less segment carries no evidence:
			// still a 400 (nothing was folded), but a distinct message —
			// the pusher pre-filters these, so seeing one here usually
			// means a truncated copy.
			http.Error(w, "transport: segment has no committed checkpoint", status)
			return
		}
		http.Error(w, fmt.Sprintf("transport: bad segment: %v", err), status)
		return
	}

	a.mu.Lock()
	if a.state == nil {
		a.state = ex
	} else {
		merged, err := fed.Merge(a.state, ex)
		if err != nil {
			a.mu.Unlock()
			a.m.skew.Add(1)
			http.Error(w, fmt.Sprintf("transport: %v", err), http.StatusConflict)
			return
		}
		a.state = merged
	}
	a.mu.Unlock()
	a.m.merged.Add(1)

	if a.cfg.AsyncAck {
		a.sink.Notify()
	} else if err := a.sink.Checkpoint(); err != nil {
		// The fold is applied but not durable: refuse the ack so the
		// sensor retries — the duplicate fold is free.
		a.m.errors.Add(1)
		http.Error(w, fmt.Sprintf("transport: durable commit failed: %v", err), http.StatusInternalServerError)
		return
	}
	a.recordAcks(ex)
	a.foldNS.Observe(time.Since(t0).Nanoseconds())
	if a.push != nil {
		// The fold just grew this node's own sink segment: nudge the
		// upstream pusher so the tree converges at fold cadence, not
		// scan cadence.
		a.push.Notify()
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}
