package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"semnids/internal/fed"
	"semnids/internal/telemetry"
)

// PusherConfig parameterizes a segment pusher.
type PusherConfig struct {
	// Dir is the fed.Sink segment directory to watch (required). The
	// directory is also the spool: an unreachable aggregator costs
	// nothing but lag, bounded by the sink's prune policy.
	Dir string

	// URL is the aggregator push endpoint (required), e.g.
	// "http://agg:9444/push".
	URL string

	// Client issues the push requests (default: a plain http.Client).
	// Per-request timeouts come from RequestTimeout, not the client;
	// replacing the client's Transport is the fault-injection hook.
	Client *http.Client

	// RequestTimeout bounds one upload end to end (default 10s).
	RequestTimeout time.Duration

	// ScanInterval is the idle re-scan cadence (default 2s); Notify
	// nudges a scan sooner.
	ScanInterval time.Duration

	// BackoffMin / BackoffMax bound the exponential backoff applied
	// after a failed push (defaults 250ms / 30s). The actual delay is
	// jittered to 50–100% of the current backoff so a fleet of
	// sensors does not retry in lockstep.
	BackoffMin, BackoffMax time.Duration

	// Seed seeds the backoff jitter (default 1). Fixed seeds make
	// fault-injection runs deterministic.
	Seed int64

	// Telemetry receives the pusher's metric series: counters and
	// health gauges bridged at scrape time, push round-trip and
	// written→acked latency histograms, and the spool-age gauge. Nil
	// creates a private registry.
	Telemetry *telemetry.Registry
}

func (cfg PusherConfig) withDefaults() PusherConfig {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 2 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// PushMetrics is a snapshot of pusher counters and health gauges — a
// wedged pipeline must be visible, not silent.
type PushMetrics struct {
	// Scans counts completed spool scans; Pushed counts upload
	// attempts; Acked counts aggregator acknowledgments (a segment
	// that grows is re-pushed and re-acked); Retried counts failed
	// attempts that stay spooled for retry; Rejected counts uploads
	// the aggregator permanently refused (4xx — retrying cannot
	// help, the segment is skipped and the counter is the alarm).
	Scans, Pushed, Acked, Retried, Rejected uint64

	// Dropped counts committed segments pruned from the spool before
	// their evidence was ever acked — prune outran push. Evidence is
	// usually still covered by later full-snapshot checkpoints, but a
	// climbing count means the retention budget is too small for the
	// current outage.
	Dropped uint64

	// Spooled is the number of on-disk segments holding bytes not yet
	// acked (as of the latest scan).
	Spooled int

	// Backoff is the current retry backoff (0 when the last push
	// succeeded); LastError is the most recent failure ("" when
	// healthy).
	Backoff   time.Duration
	LastError string
}

// segState is the pusher's per-segment bookkeeping.
type segState struct {
	seenSize  int64 // newest observed size
	ackedSize int64 // bytes acked by the aggregator
	doneSize  int64 // bytes handled without an ack (no committed checkpoint, or rejected)

	// unackedSince is the wall clock when unacked bytes were first
	// observed in this segment (zero when fully handled): the start
	// point of the written→acked latency observation and the basis of
	// the spool-age gauge. Scan-granular on the "written" side — the
	// pusher discovers writes by scanning, it is not on the sink's
	// write path.
	unackedSince time.Time
}

// handled reports the byte count already resolved (acked, skipped or
// rejected); a segment needs a push while seenSize exceeds it.
func (s *segState) handled() int64 {
	if s.ackedSize > s.doneSize {
		return s.ackedSize
	}
	return s.doneSize
}

// Pusher watches a fed.Sink segment directory and uploads committed
// segments to an aggregator, oldest first, one at a time (in-flight
// is bounded at one: ordering keeps the aggregator folding oldest
// evidence first, and the spool — the disk — is the backlog, so
// concurrency would buy nothing against a serially-folding peer).
// Every failure backs off exponentially with jitter and leaves the
// spool intact; every success is recorded so a segment is re-pushed
// only when it grows.
type Pusher struct {
	cfg    PusherConfig
	client *http.Client

	trigger chan struct{}
	closing chan struct{}
	done    chan struct{}
	once    sync.Once

	// run-goroutine state.
	rng     *rand.Rand
	segs    map[int]*segState
	backoff time.Duration

	// rttNS times one push round trip (request out to status back);
	// ackLatNS spans unacked bytes first observed to their durable
	// ack — the sensor-side half of the evidence-written→acked
	// end-to-end latency. spoolAgeMS gauges the oldest unacked bytes'
	// age, updated each scan (0 = fully synced).
	rttNS      *telemetry.Histogram
	ackLatNS   *telemetry.Histogram
	spoolAgeMS *telemetry.Gauge

	mu sync.Mutex
	m  PushMetrics
	// notifyGen counts Notify calls; scanGen is the notifyGen value
	// observed at the start of the latest completed scan. Synced
	// compares them so a caller who just committed new evidence (and
	// Notified) cannot read a stale all-clear from a scan that ran
	// before the commit.
	notifyGen, scanGen uint64
}

// NewPusher validates the configuration and starts the push loop.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("transport: pusher needs a segment directory")
	}
	if cfg.URL == "" {
		return nil, fmt.Errorf("transport: pusher needs an aggregator URL")
	}
	p := &Pusher{
		cfg:     cfg,
		client:  cfg.Client,
		trigger: make(chan struct{}, 1),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		segs:    make(map[int]*segState),
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	p.registerTelemetry()
	go p.run()
	return p, nil
}

// registerTelemetry installs the pusher's metric series. Counters are
// bridged from the Metrics snapshot under its mutex — scrape-time
// cost only.
func (p *Pusher) registerTelemetry() {
	if p.cfg.Telemetry == nil {
		p.cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := p.cfg.Telemetry
	cf := func(name, help string, get func(PushMetrics) uint64) {
		reg.CounterFunc(name, help, func() uint64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return get(p.m)
		})
	}
	cf("semnids_push_scans_total", "Completed spool scans.", func(m PushMetrics) uint64 { return m.Scans })
	cf("semnids_push_pushed_total", "Segment upload attempts.", func(m PushMetrics) uint64 { return m.Pushed })
	cf("semnids_push_acked_total", "Uploads acknowledged durably by the aggregator.", func(m PushMetrics) uint64 { return m.Acked })
	cf("semnids_push_retried_total", "Failed uploads left spooled for retry.", func(m PushMetrics) uint64 { return m.Retried })
	cf("semnids_push_rejected_total", "Uploads permanently refused (4xx) and skipped.", func(m PushMetrics) uint64 { return m.Rejected })
	cf("semnids_push_dropped_total", "Segments pruned before their evidence was acked.", func(m PushMetrics) uint64 { return m.Dropped })
	reg.GaugeFunc("semnids_push_spooled_segments", "Segments holding unacked bytes as of the latest scan.", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(p.m.Spooled)
	})
	reg.GaugeFunc("semnids_push_backoff_ms", "Current retry backoff (0 = healthy).", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.m.Backoff.Milliseconds()
	})
	p.rttNS = reg.Histogram("semnids_push_rtt_ns", "One push round trip to the aggregator.")
	p.ackLatNS = reg.Histogram("semnids_push_ack_latency_ns",
		"Unacked evidence bytes first observed to their durable aggregator ack.")
	p.spoolAgeMS = reg.Gauge("semnids_push_spool_age_ms",
		"Age of the oldest unacked spool bytes (0 = synced).")
}

// Notify nudges a spool scan without waiting for the next interval.
// Never blocks; a nudge arriving while one is pending coalesces.
func (p *Pusher) Notify() {
	p.mu.Lock()
	p.notifyGen++
	p.mu.Unlock()
	select {
	case p.trigger <- struct{}{}:
	default:
	}
}

// Metrics returns current pusher counters and health gauges.
func (p *Pusher) Metrics() PushMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m
}

// Synced reports whether the latest completed scan left nothing
// spooled — every committed byte on disk acked by the aggregator.
// False until the first scan completes, and false after a Notify
// until a scan that *started after it* completes, so
// commit-Notify-Synced sequences can never read a stale all-clear.
// (Evidence written without a Notify — the sink's periodic tick — is
// only guaranteed visible after the next scan interval.)
func (p *Pusher) Synced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m.Scans > 0 && p.m.Spooled == 0 && p.m.Backoff == 0 && p.scanGen >= p.notifyGen
}

// Close makes one final best-effort pass over the spool (bounded: a
// single sweep, each request under RequestTimeout, stopping at the
// first failure) and stops the loop. The spool itself persists — a
// restarted pusher re-pushes anything unacked, and the aggregator's
// idempotent fold makes the overlap harmless.
func (p *Pusher) Close() {
	p.once.Do(func() {
		close(p.closing)
		<-p.done
	})
}

func (p *Pusher) run() {
	defer close(p.done)
	for {
		p.syncPass()
		delay := p.cfg.ScanInterval
		if p.backoff > 0 {
			// 50–100% jitter on the exponential backoff.
			delay = p.backoff/2 + time.Duration(p.rng.Int63n(int64(p.backoff/2)+1))
		}
		timer := time.NewTimer(delay)
		select {
		case <-p.closing:
			timer.Stop()
			p.syncPass() // final sweep: push whatever the last checkpoint left
			return
		case <-p.trigger:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// syncPass scans the spool once and pushes every segment with unacked
// bytes, oldest first, stopping at the first retryable failure (order
// preserved; the failed segment leads the next pass).
func (p *Pusher) syncPass() {
	p.mu.Lock()
	gen := p.notifyGen
	p.mu.Unlock()
	segs, err := fed.Segments(p.cfg.Dir)
	if err != nil {
		p.fail(fmt.Sprintf("scan: %v", err))
		return
	}
	current := make(map[int]bool, len(segs))
	for _, seg := range segs {
		current[seg.Index] = true
	}
	// Segments that vanished were pruned; unacked committed bytes in
	// them are dropped evidence.
	for idx, st := range p.segs {
		if !current[idx] {
			if st.seenSize > st.handled() {
				p.mu.Lock()
				p.m.Dropped++
				p.mu.Unlock()
			}
			delete(p.segs, idx)
		}
	}

	ok := true
	for _, seg := range segs {
		st := p.segs[seg.Index]
		if st == nil {
			st = &segState{}
			p.segs[seg.Index] = st
		}
		if seg.Size > st.seenSize {
			st.seenSize = seg.Size
		}
		if st.seenSize > st.handled() && st.unackedSince.IsZero() {
			st.unackedSince = time.Now()
		}
		if ok && st.seenSize > st.handled() {
			if !p.pushSegment(seg.Name, st) {
				ok = false // keep scanning for spool accounting, stop pushing
			}
		}
	}

	spooled := 0
	var oldest time.Time
	for _, st := range p.segs {
		if st.seenSize > st.handled() {
			spooled++
			if oldest.IsZero() || st.unackedSince.Before(oldest) {
				oldest = st.unackedSince
			}
		} else {
			st.unackedSince = time.Time{}
		}
	}
	var ageMS int64
	if !oldest.IsZero() {
		ageMS = time.Since(oldest).Milliseconds()
	}
	p.spoolAgeMS.Set(ageMS)
	p.mu.Lock()
	p.m.Scans++
	p.m.Spooled = spooled
	p.scanGen = gen
	if ok {
		p.backoff = 0
		p.m.Backoff = 0
		p.m.LastError = ""
	}
	p.mu.Unlock()
}

// pushSegment uploads one segment snapshot. Returns false only for
// retryable failures (network errors, 5xx) — those raise the backoff;
// local corruption and aggregator 4xx rejections resolve the segment
// at its current size and push on.
func (p *Pusher) pushSegment(name string, st *segState) bool {
	data, err := os.ReadFile(filepath.Join(p.cfg.Dir, name))
	if err != nil {
		// Pruned between scan and read: the disappearance is accounted
		// on the next pass.
		return true
	}
	if int64(len(data)) > st.seenSize {
		st.seenSize = int64(len(data))
	}
	size := int64(len(data))

	// Pre-filter locally: a segment with no committed checkpoint yet
	// (a freshly rotated header) has nothing to deliver, and a locally
	// corrupt one never will — neither is worth a round trip.
	if _, err := fed.ReadExport(bytes.NewReader(data)); err != nil {
		if !errors.Is(err, fed.ErrNoCheckpoint) {
			p.reject(fmt.Sprintf("%s: local segment corrupt: %v", name, err))
		}
		st.doneSize = size
		return true
	}

	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.cfg.URL, bytes.NewReader(data))
	if err != nil {
		p.reject(fmt.Sprintf("%s: %v", name, err))
		st.doneSize = size
		return true
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Fed-Segment", name)

	p.mu.Lock()
	p.m.Pushed++
	p.mu.Unlock()
	t0 := time.Now()
	resp, err := p.client.Do(req)
	p.rttNS.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		p.fail(fmt.Sprintf("%s: %v", name, err))
		return false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.ackedSize = size
		if !st.unackedSince.IsZero() {
			p.ackLatNS.Observe(time.Since(st.unackedSince).Nanoseconds())
			st.unackedSince = time.Time{}
		}
		p.mu.Lock()
		p.m.Acked++
		p.mu.Unlock()
		return true
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// Permanent for this content: the aggregator will refuse it
		// tomorrow too. Skip (re-push only if the segment grows) and
		// make the rejection visible.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		p.reject(fmt.Sprintf("%s: aggregator rejected (%s): %s", name, resp.Status, bytes.TrimSpace(body)))
		st.doneSize = size
		return true
	default:
		p.fail(fmt.Sprintf("%s: aggregator %s", name, resp.Status))
		return false
	}
}

// fail records a retryable failure and raises the backoff.
func (p *Pusher) fail(msg string) {
	if p.backoff == 0 {
		p.backoff = p.cfg.BackoffMin
	} else {
		p.backoff *= 2
		if p.backoff > p.cfg.BackoffMax {
			p.backoff = p.cfg.BackoffMax
		}
	}
	p.mu.Lock()
	p.m.Retried++
	p.m.Backoff = p.backoff
	p.m.LastError = msg
	p.mu.Unlock()
}

// reject records a permanent rejection (no backoff — the pipeline is
// healthy, the content was refused).
func (p *Pusher) reject(msg string) {
	p.mu.Lock()
	p.m.Rejected++
	p.m.LastError = msg
	p.mu.Unlock()
}
