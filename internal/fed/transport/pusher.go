package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semnids/internal/fed"
	"semnids/internal/fed/compress"
	"semnids/internal/telemetry"
)

// Push-protocol headers. Hops and Via are the tree topology guards: a
// pusher stamps how deep its evidence has already traveled and through
// which aggregator nodes, and an aggregator 409s pushes that revisit
// it or exceed the hop budget — a misconfigured cycle fails loudly at
// the first revisit instead of folding evidence in circles.
const (
	// HeaderSegment carries the spool segment name (diagnostics only).
	HeaderSegment = "X-Fed-Segment"
	// HeaderHops is the number of federation tiers this push's
	// evidence has traversed (1 = straight from a sensor).
	HeaderHops = "X-Fed-Hops"
	// HeaderVia is the comma-separated set of aggregator node IDs the
	// evidence has already been folded by.
	HeaderVia = "X-Fed-Via"
	// HeaderAcceptEncoding advertises the segment content encodings an
	// aggregator accepts; pushers in auto mode learn compression
	// support from it (absent on pre-compression aggregators).
	HeaderAcceptEncoding = "X-Fed-Accept-Encoding"
	// HeaderNode is the responding aggregator's node ID.
	HeaderNode = "X-Fed-Node"
)

// Compression selects the push body encoding.
type Compression int

const (
	// CompressionAuto compresses once the upstream has advertised
	// support (via HeaderAcceptEncoding on any response), so new
	// sensors interoperate with old aggregators: the first push goes
	// identity, and the ack teaches the pusher what the peer speaks.
	CompressionAuto Compression = iota

	// CompressionOn always compresses (with a one-shot identity
	// fallback if the upstream rejects a compressed body).
	CompressionOn

	// CompressionOff never compresses.
	CompressionOff
)

// ParseCompression maps the CLI/config spelling to a Compression mode.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "", "auto":
		return CompressionAuto, nil
	case "on", "always":
		return CompressionOn, nil
	case "off", "never":
		return CompressionOff, nil
	}
	return CompressionAuto, fmt.Errorf("transport: unknown compression mode %q (want auto, on or off)", s)
}

// PusherConfig parameterizes a segment pusher.
type PusherConfig struct {
	// Dir is the fed.Sink segment directory to watch (required). The
	// directory is also the spool: an unreachable aggregator costs
	// nothing but lag, bounded by the sink's prune policy.
	Dir string

	// URL is the aggregator push endpoint, e.g.
	// "http://agg:9444/push". Shorthand for a one-element URLs.
	URL string

	// URLs is the ordered upstream list: the pusher delivers to the
	// first reachable upstream, fails over down the list when the
	// active one stops acking, and probes earlier (higher-priority)
	// upstreams to promote back. One of URL/URLs is required; URLs
	// wins when both are set.
	URLs []string

	// ProbeInterval is how often a pusher that has failed away from
	// the primary probes higher-priority upstreams for promotion
	// (default 5s).
	ProbeInterval time.Duration

	// Compression selects the push body encoding (default
	// CompressionAuto: learn per upstream from response headers).
	Compression Compression

	// Route supplies the topology stamp for each push: how many tiers
	// the spooled evidence has already traversed and through which
	// aggregator node IDs. Nil means a leaf sensor (hops 1, no via).
	Route func() (hops int, via []string)

	// Client issues the push requests (default: a plain http.Client).
	// Per-request timeouts come from RequestTimeout, not the client;
	// replacing the client's Transport is the fault-injection hook.
	Client *http.Client

	// RequestTimeout bounds one upload end to end (default 10s).
	RequestTimeout time.Duration

	// ScanInterval is the idle re-scan cadence (default 2s); Notify
	// nudges a scan sooner.
	ScanInterval time.Duration

	// BackoffMin / BackoffMax bound the exponential backoff applied
	// after a failed push (defaults 250ms / 30s). The actual delay is
	// jittered to 50–100% of the current backoff so a fleet of
	// sensors does not retry in lockstep.
	BackoffMin, BackoffMax time.Duration

	// Seed seeds the backoff jitter (default 1). Fixed seeds make
	// fault-injection runs deterministic.
	Seed int64

	// Telemetry receives the pusher's metric series: counters and
	// health gauges bridged at scrape time, push round-trip and
	// written→acked latency histograms, and the spool-age gauge. Nil
	// creates a private registry.
	Telemetry *telemetry.Registry
}

func (cfg PusherConfig) withDefaults() PusherConfig {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 2 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.URLs) == 0 && cfg.URL != "" {
		cfg.URLs = []string{cfg.URL}
	}
	return cfg
}

// PushMetrics is a snapshot of pusher counters and health gauges — a
// wedged pipeline must be visible, not silent.
type PushMetrics struct {
	// Scans counts completed spool scans; Pushed counts upload
	// attempts; Acked counts aggregator acknowledgments (a segment
	// that grows is re-pushed and re-acked); Retried counts failed
	// attempts that stay spooled for retry; Rejected counts uploads
	// the aggregator permanently refused (4xx — retrying cannot
	// help, the segment is skipped and the counter is the alarm).
	Scans, Pushed, Acked, Retried, Rejected uint64

	// Dropped counts committed segments pruned from the spool before
	// their evidence was ever acked — prune outran push. Evidence is
	// usually still covered by later full-snapshot checkpoints, but a
	// climbing count means the retention budget is too small for the
	// current outage.
	Dropped uint64

	// Spooled is the number of on-disk segments holding bytes not yet
	// acked (as of the latest scan).
	Spooled int

	// Backoff is the current retry backoff (0 when the last push
	// succeeded); LastError is the most recent failure ("" when
	// healthy).
	Backoff   time.Duration
	LastError string

	// Failovers counts active-upstream switches (demotions after the
	// active upstream stopped acking plus probe-driven promotions).
	Failovers uint64

	// Compressed counts pushes delivered with a compressed body;
	// RawBytes/WireBytes total the body bytes of acked pushes before
	// and after content encoding — WireBytes/RawBytes is the live
	// bytes-on-wire ratio.
	Compressed          uint64
	RawBytes, WireBytes uint64

	// ActiveUpstream is the URL currently receiving pushes; Upstreams
	// snapshots every configured upstream in priority order.
	ActiveUpstream string
	Upstreams      []UpstreamStatus
}

// UpstreamStatus is one upstream's slice of the push counters.
type UpstreamStatus struct {
	URL                               string
	Pushed, Acked, Retried, Failovers uint64
	// Compress is the negotiated body encoding: true once the
	// upstream advertised (or was configured for) compressed pushes.
	Compress bool
	// Active marks the upstream currently receiving pushes.
	Active bool
}

// upstream is the pusher's per-upstream state: negotiated encoding
// plus its telemetry series, labeled by URL.
type upstream struct {
	url string

	// compressOK is the learned encoding support in auto mode:
	// 0 unknown (push identity), 1 advertised, -1 refused/absent.
	// Atomic: written by the run goroutine, read by Metrics.
	compressOK atomic.Int32

	pushed, acked, retried, failovers *telemetry.Counter
	rtt                               *telemetry.Histogram
}

func (u *upstream) compressSupported() bool { return u.compressOK.Load() == 1 }

// segState is the pusher's per-segment bookkeeping.
type segState struct {
	seenSize  int64 // newest observed size
	ackedSize int64 // bytes acked by the aggregator
	doneSize  int64 // bytes handled without an ack (no committed checkpoint, or rejected)

	// unackedSince is the wall clock when unacked bytes were first
	// observed in this segment (zero when fully handled): the start
	// point of the written→acked latency observation and the basis of
	// the spool-age gauge. Scan-granular on the "written" side — the
	// pusher discovers writes by scanning, it is not on the sink's
	// write path.
	unackedSince time.Time
}

// handled reports the byte count already resolved (acked, skipped or
// rejected); a segment needs a push while seenSize exceeds it.
func (s *segState) handled() int64 {
	if s.ackedSize > s.doneSize {
		return s.ackedSize
	}
	return s.doneSize
}

// Pusher watches a fed.Sink segment directory and uploads committed
// segments to an aggregator, oldest first, one at a time (in-flight
// is bounded at one: ordering keeps the aggregator folding oldest
// evidence first, and the spool — the disk — is the backlog, so
// concurrency would buy nothing against a serially-folding peer).
// Every failure backs off exponentially with jitter and leaves the
// spool intact; every success is recorded so a segment is re-pushed
// only when it grows.
type Pusher struct {
	cfg    PusherConfig
	client *http.Client

	trigger chan struct{}
	closing chan struct{}
	done    chan struct{}
	once    sync.Once
	killed  atomic.Bool

	// run-goroutine state.
	rng       *rand.Rand
	segs      map[int]*segState
	backoff   time.Duration
	ups       []*upstream
	active    int // index into ups currently receiving pushes
	lastProbe time.Time

	// rttNS times one push round trip (request out to status back);
	// ackLatNS spans unacked bytes first observed to their durable
	// ack — the sensor-side half of the evidence-written→acked
	// end-to-end latency. spoolAgeMS gauges the oldest unacked bytes'
	// age, updated each scan (0 = fully synced).
	rttNS      *telemetry.Histogram
	ackLatNS   *telemetry.Histogram
	spoolAgeMS *telemetry.Gauge

	mu sync.Mutex
	m  PushMetrics
	// notifyGen counts Notify calls; scanGen is the notifyGen value
	// observed at the start of the latest completed scan. Synced
	// compares them so a caller who just committed new evidence (and
	// Notified) cannot read a stale all-clear from a scan that ran
	// before the commit.
	notifyGen, scanGen uint64
}

// NewPusher validates the configuration and starts the push loop.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("transport: pusher needs a segment directory")
	}
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("transport: pusher needs at least one aggregator URL")
	}
	p := &Pusher{
		cfg:     cfg,
		client:  cfg.Client,
		trigger: make(chan struct{}, 1),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		segs:    make(map[int]*segState),
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	for _, u := range cfg.URLs {
		p.ups = append(p.ups, &upstream{url: u})
	}
	p.m.ActiveUpstream = p.ups[0].url
	p.registerTelemetry()
	go p.run()
	return p, nil
}

// registerTelemetry installs the pusher's metric series. Counters are
// bridged from the Metrics snapshot under its mutex — scrape-time
// cost only.
func (p *Pusher) registerTelemetry() {
	if p.cfg.Telemetry == nil {
		p.cfg.Telemetry = telemetry.NewRegistry()
	}
	reg := p.cfg.Telemetry
	cf := func(name, help string, get func(PushMetrics) uint64) {
		reg.CounterFunc(name, help, func() uint64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return get(p.m)
		})
	}
	cf("semnids_push_scans_total", "Completed spool scans.", func(m PushMetrics) uint64 { return m.Scans })
	cf("semnids_push_pushed_total", "Segment upload attempts.", func(m PushMetrics) uint64 { return m.Pushed })
	cf("semnids_push_acked_total", "Uploads acknowledged durably by the aggregator.", func(m PushMetrics) uint64 { return m.Acked })
	cf("semnids_push_retried_total", "Failed uploads left spooled for retry.", func(m PushMetrics) uint64 { return m.Retried })
	cf("semnids_push_rejected_total", "Uploads permanently refused (4xx) and skipped.", func(m PushMetrics) uint64 { return m.Rejected })
	cf("semnids_push_dropped_total", "Segments pruned before their evidence was acked.", func(m PushMetrics) uint64 { return m.Dropped })
	cf("semnids_push_failovers_total", "Active-upstream switches (demotions plus promotions).", func(m PushMetrics) uint64 { return m.Failovers })
	cf("semnids_push_compressed_total", "Pushes delivered with a compressed body.", func(m PushMetrics) uint64 { return m.Compressed })
	cf("semnids_push_raw_bytes_total", "Acked push body bytes before content encoding.", func(m PushMetrics) uint64 { return m.RawBytes })
	cf("semnids_push_wire_bytes_total", "Acked push body bytes on the wire after content encoding.", func(m PushMetrics) uint64 { return m.WireBytes })
	// Per-upstream series, labeled by URL: the failover story is only
	// debuggable when each upstream's share of the traffic is visible.
	for _, u := range p.ups {
		label := fmt.Sprintf("{upstream=%q}", u.url)
		u.pushed = reg.Counter("semnids_push_upstream_pushed_total"+label, "Upload attempts to this upstream.")
		u.acked = reg.Counter("semnids_push_upstream_acked_total"+label, "Uploads this upstream acked durably.")
		u.retried = reg.Counter("semnids_push_upstream_retried_total"+label, "Failed uploads against this upstream.")
		u.failovers = reg.Counter("semnids_push_upstream_failovers_total"+label, "Times this upstream became the active one.")
		u.rtt = reg.Histogram("semnids_push_upstream_rtt_ns"+label, "One push round trip to this upstream.")
	}
	reg.GaugeFunc("semnids_push_spooled_segments", "Segments holding unacked bytes as of the latest scan.", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(p.m.Spooled)
	})
	reg.GaugeFunc("semnids_push_backoff_ms", "Current retry backoff (0 = healthy).", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.m.Backoff.Milliseconds()
	})
	p.rttNS = reg.Histogram("semnids_push_rtt_ns", "One push round trip to the aggregator.")
	p.ackLatNS = reg.Histogram("semnids_push_ack_latency_ns",
		"Unacked evidence bytes first observed to their durable aggregator ack.")
	p.spoolAgeMS = reg.Gauge("semnids_push_spool_age_ms",
		"Age of the oldest unacked spool bytes (0 = synced).")
}

// Notify nudges a spool scan without waiting for the next interval.
// Never blocks; a nudge arriving while one is pending coalesces.
func (p *Pusher) Notify() {
	p.mu.Lock()
	p.notifyGen++
	p.mu.Unlock()
	select {
	case p.trigger <- struct{}{}:
	default:
	}
}

// Metrics returns current pusher counters and health gauges.
func (p *Pusher) Metrics() PushMetrics {
	p.mu.Lock()
	m := p.m
	p.mu.Unlock()
	m.Upstreams = make([]UpstreamStatus, len(p.ups))
	for i, u := range p.ups {
		m.Upstreams[i] = UpstreamStatus{
			URL:       u.url,
			Pushed:    u.pushed.Value(),
			Acked:     u.acked.Value(),
			Retried:   u.retried.Value(),
			Failovers: u.failovers.Value(),
			Compress:  p.cfg.Compression == CompressionOn || u.compressSupported(),
			Active:    u.url == m.ActiveUpstream,
		}
	}
	return m
}

// Synced reports whether the latest completed scan left nothing
// spooled — every committed byte on disk acked by the aggregator.
// False until the first scan completes, and false after a Notify
// until a scan that *started after it* completes, so
// commit-Notify-Synced sequences can never read a stale all-clear.
// (Evidence written without a Notify — the sink's periodic tick — is
// only guaranteed visible after the next scan interval.)
func (p *Pusher) Synced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m.Scans > 0 && p.m.Spooled == 0 && p.m.Backoff == 0 && p.scanGen >= p.notifyGen
}

// Close makes one final best-effort pass over the spool (bounded: a
// single sweep, each request under RequestTimeout, stopping at the
// first failure) and stops the loop. The spool itself persists — a
// restarted pusher re-pushes anything unacked, and the aggregator's
// idempotent fold makes the overlap harmless.
func (p *Pusher) Close() {
	p.once.Do(func() {
		close(p.closing)
		<-p.done
	})
}

// Kill stops the push loop without Close's final sweep — crash
// semantics for fault drills: nothing further is pushed after Kill
// returns. The spool persists; a restarted pusher resumes from it.
func (p *Pusher) Kill() {
	p.killed.Store(true)
	p.once.Do(func() {
		close(p.closing)
		<-p.done
	})
}

func (p *Pusher) run() {
	defer close(p.done)
	for {
		p.syncPass()
		delay := p.cfg.ScanInterval
		if p.backoff > 0 {
			// 50–100% jitter on the exponential backoff.
			delay = p.backoff/2 + time.Duration(p.rng.Int63n(int64(p.backoff/2)+1))
		}
		timer := time.NewTimer(delay)
		select {
		case <-p.closing:
			timer.Stop()
			if !p.killed.Load() {
				p.syncPass() // final sweep: push whatever the last checkpoint left
			}
			return
		case <-p.trigger:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// syncPass scans the spool once and pushes every segment with unacked
// bytes, oldest first, stopping at the first retryable failure (order
// preserved; the failed segment leads the next pass).
func (p *Pusher) syncPass() {
	p.mu.Lock()
	gen := p.notifyGen
	p.mu.Unlock()
	p.maybePromote()
	segs, err := fed.Segments(p.cfg.Dir)
	if err != nil {
		p.fail(fmt.Sprintf("scan: %v", err))
		return
	}
	current := make(map[int]bool, len(segs))
	for _, seg := range segs {
		current[seg.Index] = true
	}
	// Segments that vanished were pruned; unacked committed bytes in
	// them are dropped evidence.
	for idx, st := range p.segs {
		if !current[idx] {
			if st.seenSize > st.handled() {
				p.mu.Lock()
				p.m.Dropped++
				p.mu.Unlock()
			}
			delete(p.segs, idx)
		}
	}

	ok := true
	for _, seg := range segs {
		st := p.segs[seg.Index]
		if st == nil {
			st = &segState{}
			p.segs[seg.Index] = st
		}
		if seg.Size > st.seenSize {
			st.seenSize = seg.Size
		}
		if st.seenSize > st.handled() && st.unackedSince.IsZero() {
			st.unackedSince = time.Now()
		}
		if ok && st.seenSize > st.handled() {
			if !p.pushSegment(seg.Name, st) {
				ok = false // keep scanning for spool accounting, stop pushing
			}
		}
	}

	spooled := 0
	var oldest time.Time
	for _, st := range p.segs {
		if st.seenSize > st.handled() {
			spooled++
			if oldest.IsZero() || st.unackedSince.Before(oldest) {
				oldest = st.unackedSince
			}
		} else {
			st.unackedSince = time.Time{}
		}
	}
	var ageMS int64
	if !oldest.IsZero() {
		ageMS = time.Since(oldest).Milliseconds()
	}
	p.spoolAgeMS.Set(ageMS)
	p.mu.Lock()
	p.m.Scans++
	p.m.Spooled = spooled
	p.scanGen = gen
	if ok {
		p.backoff = 0
		p.m.Backoff = 0
		p.m.LastError = ""
	}
	p.mu.Unlock()
}

// pushOutcome classifies one upload attempt.
type pushOutcome int

const (
	pushAcked    pushOutcome = iota // 2xx after a durable fold
	pushRejected                    // 4xx: permanent for this content
	pushRetry                       // network error or 5xx: delivery unknown
)

// pushSegment uploads one segment snapshot, trying upstreams in
// priority order starting at the active one. Returns false only when
// every upstream failed retryably (network errors, 5xx) — that raises
// the backoff once and leaves the spool intact; local corruption and
// aggregator 4xx rejections resolve the segment at its current size
// and push on.
func (p *Pusher) pushSegment(name string, st *segState) bool {
	data, err := os.ReadFile(filepath.Join(p.cfg.Dir, name))
	if err != nil {
		// Pruned between scan and read: the disappearance is accounted
		// on the next pass.
		return true
	}
	if int64(len(data)) > st.seenSize {
		st.seenSize = int64(len(data))
	}
	size := int64(len(data))

	// Pre-filter locally: a segment with no committed checkpoint yet
	// (a freshly rotated header) has nothing to deliver, and a locally
	// corrupt one never will — neither is worth a round trip.
	if _, err := fed.ReadExport(bytes.NewReader(data)); err != nil {
		if !errors.Is(err, fed.ErrNoCheckpoint) {
			p.reject(fmt.Sprintf("%s: local segment corrupt: %v", name, err))
		}
		st.doneSize = size
		return true
	}

	var lastMsg string
	for i := range p.ups {
		idx := (p.active + i) % len(p.ups)
		u := p.ups[idx]
		outcome, wire, compressed, msg := p.pushTo(u, name, data)
		switch outcome {
		case pushAcked:
			st.ackedSize = size
			if !st.unackedSince.IsZero() {
				p.ackLatNS.Observe(time.Since(st.unackedSince).Nanoseconds())
				st.unackedSince = time.Time{}
			}
			if idx != p.active {
				p.failoverTo(idx)
			}
			// Any successful push means the path is healthy again: the
			// next failure backs off from BackoffMin, never from a
			// previous outage's lingering ceiling.
			p.backoff = 0
			p.mu.Lock()
			p.m.Acked++
			p.m.RawBytes += uint64(size)
			p.m.WireBytes += uint64(wire)
			if compressed {
				p.m.Compressed++
			}
			p.mu.Unlock()
			return true
		case pushRejected:
			// Permanent for this content on a healthy upstream: the
			// others would refuse it too. Skip (re-push only if the
			// segment grows) and make the rejection visible.
			p.reject(msg)
			st.doneSize = size
			return true
		default:
			u.retried.Inc()
			p.mu.Lock()
			p.m.Retried++
			p.m.LastError = msg
			p.mu.Unlock()
			lastMsg = msg
		}
	}
	// Every upstream failed: spool-and-forward. One backoff raise per
	// pass regardless of fan-out width.
	p.raiseBackoff(lastMsg)
	return false
}

// pushTo delivers one segment body to one upstream, compressing per
// the configured mode and the upstream's learned capability. A 4xx on
// a compressed body earns one identity retry (a stale capability or a
// downgraded aggregator must not turn into a permanent skip) before
// the rejection stands.
func (p *Pusher) pushTo(u *upstream, name string, data []byte) (pushOutcome, int, bool, string) {
	useComp := p.cfg.Compression == CompressionOn ||
		(p.cfg.Compression == CompressionAuto && u.compressSupported())
	for {
		body := data
		if useComp {
			if c := compressBytes(data); c != nil {
				body = c
			} else {
				useComp = false
			}
		}
		outcome, msg := p.attempt(u, name, body, useComp)
		if outcome == pushRejected && useComp {
			u.compressOK.Store(-1)
			useComp = false
			continue
		}
		return outcome, len(body), useComp, msg
	}
}

// attempt is one HTTP exchange against one upstream.
func (p *Pusher) attempt(u *upstream, name string, body []byte, compressed bool) (pushOutcome, string) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.url, bytes.NewReader(body))
	if err != nil {
		return pushRejected, fmt.Sprintf("%s: %v", name, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderSegment, name)
	if compressed {
		req.Header.Set("Content-Encoding", compress.ContentEncoding)
	}
	hops, via := 1, []string(nil)
	if p.cfg.Route != nil {
		hops, via = p.cfg.Route()
	}
	req.Header.Set(HeaderHops, strconv.Itoa(hops))
	if len(via) > 0 {
		req.Header.Set(HeaderVia, strings.Join(via, ","))
	}

	u.pushed.Inc()
	p.mu.Lock()
	p.m.Pushed++
	p.mu.Unlock()
	t0 := time.Now()
	resp, err := p.client.Do(req)
	rtt := time.Since(t0).Nanoseconds()
	p.rttNS.Observe(rtt)
	u.rtt.Observe(rtt)
	if err != nil {
		return pushRetry, fmt.Sprintf("%s: %s: %v", name, u.url, err)
	}
	defer resp.Body.Close()
	u.learn(resp)
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		u.acked.Inc()
		return pushAcked, ""
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		excerpt, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return pushRejected, fmt.Sprintf("%s: %s rejected (%s): %s", name, u.url, resp.Status, bytes.TrimSpace(excerpt))
	default:
		return pushRetry, fmt.Sprintf("%s: %s: aggregator %s", name, u.url, resp.Status)
	}
}

// learn updates the upstream's advertised-encoding capability from a
// response. Only responses that prove what the aggregator speaks are
// trusted: a header names the supported encodings; a 2xx without one
// is a pre-compression aggregator. Errors and 5xx (possibly synthetic,
// from an LB or fault harness) teach nothing.
func (u *upstream) learn(resp *http.Response) {
	if hdr := resp.Header.Get(HeaderAcceptEncoding); hdr != "" {
		for _, tok := range strings.Split(hdr, ",") {
			if strings.TrimSpace(tok) == compress.ContentEncoding {
				u.compressOK.Store(1)
				return
			}
		}
		u.compressOK.Store(-1)
	} else if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		u.compressOK.Store(-1)
	}
}

// compressBytes encodes data as one compressed push body (nil on the
// never-expected encoder failure, which falls back to identity).
func compressBytes(data []byte) []byte {
	var buf bytes.Buffer
	w := compress.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		return nil
	}
	if err := w.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// maybePromote probes higher-priority upstreams when the pusher has
// failed away from the head of the list, promoting back to the first
// one that answers. Probes are plain GETs against the push URL: new
// aggregators answer 204 (and advertise their encodings), old ones
// 405 — any sub-5xx response proves liveness.
func (p *Pusher) maybePromote() {
	if len(p.ups) <= 1 || p.active == 0 || time.Since(p.lastProbe) < p.cfg.ProbeInterval {
		return
	}
	p.lastProbe = time.Now()
	for i := 0; i < p.active; i++ {
		if p.probe(p.ups[i]) {
			p.failoverTo(i)
			return
		}
	}
}

func (p *Pusher) probe(u *upstream) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.url, nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	u.learn(resp)
	return resp.StatusCode < 500
}

// failoverTo switches the active upstream (both demotion after a
// failed push and probe-driven promotion land here).
func (p *Pusher) failoverTo(idx int) {
	if idx == p.active {
		return
	}
	p.active = idx
	u := p.ups[idx]
	u.failovers.Inc()
	p.mu.Lock()
	p.m.Failovers++
	p.m.ActiveUpstream = u.url
	p.mu.Unlock()
}

// fail records a retryable failure and raises the backoff.
func (p *Pusher) fail(msg string) {
	p.mu.Lock()
	p.m.Retried++
	p.mu.Unlock()
	p.raiseBackoff(msg)
}

// raiseBackoff doubles the retry backoff toward the ceiling.
func (p *Pusher) raiseBackoff(msg string) {
	if p.backoff == 0 {
		p.backoff = p.cfg.BackoffMin
	} else {
		p.backoff *= 2
		if p.backoff > p.cfg.BackoffMax {
			p.backoff = p.cfg.BackoffMax
		}
	}
	p.mu.Lock()
	p.m.Backoff = p.backoff
	p.m.LastError = msg
	p.mu.Unlock()
}

// reject records a permanent rejection (no backoff — the pipeline is
// healthy, the content was refused).
func (p *Pusher) reject(msg string) {
	p.mu.Lock()
	p.m.Rejected++
	p.m.LastError = msg
	p.mu.Unlock()
}
