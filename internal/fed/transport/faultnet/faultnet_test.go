package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// record keeps what the server saw of each delivery.
type record struct {
	n   int
	err error
}

func countingServer() (*httptest.Server, func() []record) {
	var mu sync.Mutex
	var seen []record
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		mu.Lock()
		seen = append(seen, record{n: len(body), err: err})
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	return srv, func() []record {
		mu.Lock()
		defer mu.Unlock()
		return append([]record(nil), seen...)
	}
}

func push(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

// TestDropNeverReachesServer: an injected drop fails client-side
// before any byte is sent.
func TestDropNeverReachesServer(t *testing.T) {
	srv, seen := countingServer()
	defer srv.Close()
	client := &http.Client{Transport: New(nil, Plan{Drop: 1})}
	if _, err := push(t, client, srv.URL, []byte("payload")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want injected drop", err)
	}
	if got := seen(); len(got) != 0 {
		t.Fatalf("server saw %d deliveries of a dropped request", len(got))
	}
	if c := New(nil, Plan{Drop: 1}).Counts(); c.Requests != 0 {
		t.Fatalf("fresh transport counts = %+v", c)
	}
}

// TestTruncateDeliversStrictPrefix: the server sees fewer bytes than
// were sent and a read error; the client sees the injected error.
func TestTruncateDeliversStrictPrefix(t *testing.T) {
	srv, seen := countingServer()
	defer srv.Close()
	ft := New(nil, Plan{Truncate: 1})
	client := &http.Client{Transport: ft}
	// Big enough that the delivered prefix overflows the HTTP
	// transport's write buffer and actually reaches the wire — a
	// truncated prefix smaller than one buffer dies client-side, which
	// is the connection-drop case, not the mid-body one.
	body := bytes.Repeat([]byte("x"), 512<<10)
	if _, err := push(t, client, srv.URL, body); !errors.Is(err, ErrInjectedTruncate) {
		t.Fatalf("err = %v, want injected truncation", err)
	}
	// The client's error races the server handler's return: poll until
	// the delivery is recorded.
	var got []record
	for deadline := time.Now().Add(5 * time.Second); len(got) == 0 && time.Now().Before(deadline); {
		got = seen()
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("server saw %d deliveries, want the one truncated upload", len(got))
	}
	if got[0].n >= len(body) || got[0].err == nil {
		t.Fatalf("server read %d bytes err=%v, want a strict prefix with a read error", got[0].n, got[0].err)
	}
	if c := ft.Counts(); c.Truncations != 1 {
		t.Fatalf("counts = %+v, want one truncation", c)
	}
}

// TestErr503IsSynthetic: the 503 comes from the harness, not the
// server.
func TestErr503IsSynthetic(t *testing.T) {
	srv, seen := countingServer()
	defer srv.Close()
	client := &http.Client{Transport: New(nil, Plan{Err: 1})}
	resp, err := push(t, client, srv.URL, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := seen(); len(got) != 0 {
		t.Fatalf("server saw %d deliveries of an injected 503", len(got))
	}
}

// TestDuplicateDeliversTwice: the server sees the full body twice;
// the client sees one (the second) response.
func TestDuplicateDeliversTwice(t *testing.T) {
	srv, seen := countingServer()
	defer srv.Close()
	client := &http.Client{Transport: New(nil, Plan{Duplicate: 1})}
	body := []byte("payload")
	resp, err := push(t, client, srv.URL, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := seen()
	if len(got) != 2 {
		t.Fatalf("server saw %d deliveries, want 2", len(got))
	}
	for i, r := range got {
		if r.n != len(body) || r.err != nil {
			t.Fatalf("delivery %d: n=%d err=%v, want the full body", i, r.n, r.err)
		}
	}
}

// TestOutageWindow: a partition window swallows exactly its span of
// the request sequence, leaves the surrounding draws untouched, and is
// counted separately from probability drops.
func TestOutageWindow(t *testing.T) {
	srv, seen := countingServer()
	defer srv.Close()
	ft := New(nil, Plan{Seed: 3, Outages: []Outage{{After: 2, Requests: 3}}})
	client := &http.Client{Transport: ft}
	var errs []error
	for i := 0; i < 8; i++ {
		resp, err := push(t, client, srv.URL, []byte("payload"))
		if err == nil {
			resp.Body.Close()
		}
		errs = append(errs, err)
	}
	for i, err := range errs {
		inWindow := i >= 2 && i < 5
		if inWindow && !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("request %d: err = %v, want partition drop", i, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("request %d: err = %v, want delivery outside the window", i, err)
		}
	}
	if got := seen(); len(got) != 5 {
		t.Fatalf("server saw %d deliveries, want 5", len(got))
	}
	c := ft.Counts()
	if c.Outaged != 3 || c.Drops != 0 || c.Delivered != 5 {
		t.Fatalf("counts = %+v, want 3 outaged / 0 drops / 5 delivered", c)
	}
}

// TestScheduleDeterminism: the same seed over the same request
// sequence draws the same faults; a different seed draws a different
// schedule.
func TestScheduleDeterminism(t *testing.T) {
	srv, _ := countingServer()
	defer srv.Close()
	plan := Plan{Seed: 7, Drop: 0.3, Truncate: 0.2, Err: 0.2, Duplicate: 0.2, MaxLatency: time.Millisecond}
	run := func(seed int64) Counts {
		p := plan
		p.Seed = seed
		ft := New(nil, p)
		client := &http.Client{Transport: ft}
		for i := 0; i < 60; i++ {
			if resp, err := push(t, client, srv.URL, []byte("payload")); err == nil {
				resp.Body.Close()
			}
		}
		return ft.Counts()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Drops == 0 || a.Truncations == 0 || a.Errs == 0 || a.Duplicates == 0 || a.Delivered == 0 {
		t.Fatalf("schedule did not exercise every outcome: %+v", a)
	}
	if c := run(8); c == a {
		t.Fatalf("different seeds drew identical schedules: %+v", c)
	}
}
