// Package faultnet is a deterministic fault-injection harness for the
// federation push transport: an http.RoundTripper wrapper that
// injects connection drops, mid-body truncation, latency spikes,
// synthetic 5xx bursts and duplicate deliveries on a seeded schedule.
//
// Determinism is the point. All randomness comes from one seeded
// source drawn in a fixed per-request order under a lock, so a given
// (seed, request sequence) always produces the same fault schedule —
// a failing fault-injection run reproduces exactly. The faults are
// injected at the client edge, which is where the transport's
// contract lives: a pusher must treat "my request errored" as
// "delivery unknown" and retry, whatever actually reached the wire.
//
//   - Drop: the request fails before any byte is sent — the server
//     never saw it.
//   - Truncate: the body dies partway through upload — the server
//     sees a prefix and an unexpected EOF, the client sees an error;
//     both sides' truncation handling is exercised at once.
//   - Err: a synthetic 503 — the "ack lost / server overloaded" case.
//   - Duplicate: the request is delivered twice back to back — the
//     retransmit-after-lost-ack case, compressed into one call.
//   - Latency: a uniform random delay up to MaxLatency before the
//     request proceeds.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedDrop is the error surfaced for injected connection
// drops; ErrInjectedTruncate for injected mid-body truncations.
// Sentinels so tests can tell injected faults from real ones.
var (
	ErrInjectedDrop     = errors.New("faultnet: injected connection drop")
	ErrInjectedTruncate = errors.New("faultnet: injected mid-body truncation")
)

// Plan schedules the faults a Transport injects. Probabilities are
// per request, drawn in the order Drop, Truncate, Err, Duplicate
// (first match wins), after the latency draw.
type Plan struct {
	// Seed fixes the fault schedule (default 1).
	Seed int64

	// Drop is P(fail before any byte is sent).
	Drop float64

	// Truncate is P(the body is cut mid-stream and the connection
	// dies). Only applies to requests with a non-empty body.
	Truncate float64

	// Err is P(synthetic 503 response; the request is not delivered).
	Err float64

	// Duplicate is P(the request is delivered twice; the second
	// response is returned).
	Duplicate float64

	// MaxLatency adds a uniform random delay in [0, MaxLatency) to
	// every request (0 disables).
	MaxLatency time.Duration

	// Outages schedules deterministic full-partition windows by
	// request index: every request inside a window fails as a drop,
	// regardless of the probability draws. Windows let multi-tier
	// tests partition one subtree for an exact span of traffic.
	Outages []Outage
}

// Outage is a full-partition window over the request sequence: the
// Requests consecutive requests starting after the first After
// requests all fail with ErrInjectedDrop.
type Outage struct {
	// After is how many requests pass before the outage begins
	// (0 = partitioned from the first request).
	After int

	// Requests is how many consecutive requests the outage swallows.
	Requests int
}

// Counts reports how many requests saw each injected fault. Outaged
// counts requests swallowed by partition windows (not included in
// Drops, which counts only probability-drawn drops).
type Counts struct {
	Requests, Drops, Truncations, Errs, Duplicates, Outaged, Delivered uint64
}

// Transport wraps an http.RoundTripper with the fault plan. Safe for
// concurrent use; concurrent requests serialize their schedule draws
// (determinism then depends on the caller's request ordering — the
// push transport is sequential per pusher, which is what makes
// end-to-end runs reproducible).
type Transport struct {
	base http.RoundTripper
	plan Plan

	mu  sync.Mutex
	rng *rand.Rand
	c   Counts
}

// New wraps base (nil = http.DefaultTransport) with plan.
func New(base http.RoundTripper, plan Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	return &Transport{base: base, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Counts returns the injected-fault tally so far.
func (t *Transport) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.c
}

// verdict is one request's drawn fault schedule.
type verdict struct {
	delay     time.Duration
	drop      bool
	truncate  bool
	truncAt   float64 // fraction of the body delivered before the cut
	err503    bool
	duplicate bool
}

func (t *Transport) decide(hasBody bool) verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.c.Requests++
	var v verdict
	if t.plan.MaxLatency > 0 {
		v.delay = time.Duration(t.rng.Int63n(int64(t.plan.MaxLatency)))
	}
	// Draw every probability in fixed order whether or not an earlier
	// one already matched: the schedule consumes the same number of
	// randoms per request regardless of outcome, so one plan knob can
	// change without reshuffling the rest of the run.
	drop := t.rng.Float64() < t.plan.Drop
	trunc := t.rng.Float64() < t.plan.Truncate
	truncAt := t.rng.Float64()
	err503 := t.rng.Float64() < t.plan.Err
	dup := t.rng.Float64() < t.plan.Duplicate
	// Partition windows override the draws (which were still consumed,
	// keeping the rest of the schedule stable when a window is added).
	idx := int(t.c.Requests) - 1
	for _, o := range t.plan.Outages {
		if idx >= o.After && idx < o.After+o.Requests {
			v.drop = true
			t.c.Outaged++
			return v
		}
	}
	switch {
	case drop:
		v.drop = true
		t.c.Drops++
	case trunc && hasBody:
		v.truncate = true
		v.truncAt = truncAt
		t.c.Truncations++
	case err503:
		v.err503 = true
		t.c.Errs++
	case dup:
		v.duplicate = true
		t.c.Duplicates++
	default:
		t.c.Delivered++
	}
	return v
}

// truncatingReader yields n bytes of r then fails, killing the
// request mid-body.
type truncatingReader struct {
	r io.Reader
	n int64
}

func (tr *truncatingReader) Read(p []byte) (int, error) {
	if tr.n <= 0 {
		return 0, ErrInjectedTruncate
	}
	if int64(len(p)) > tr.n {
		p = p[:tr.n]
	}
	n, err := tr.r.Read(p)
	tr.n -= int64(n)
	if err == nil && tr.n <= 0 {
		err = ErrInjectedTruncate
	}
	return n, err
}

// RoundTrip applies the drawn fault schedule to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body: duplication and truncation both need replay.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	v := t.decide(len(body) > 0)
	if v.delay > 0 {
		select {
		case <-time.After(v.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if v.drop {
		return nil, ErrInjectedDrop
	}
	if v.truncate {
		// Deliver a strict prefix — at least 0, at most len-1 bytes —
		// then kill the connection. The server sees a short body; the
		// client sees this error.
		n := int64(float64(len(body)) * v.truncAt)
		if n >= int64(len(body)) {
			n = int64(len(body)) - 1
		}
		sub := t.clone(req, body)
		sub.Body = io.NopCloser(&truncatingReader{r: bytes.NewReader(body), n: n})
		sub.GetBody = nil
		resp, err := t.base.RoundTrip(sub)
		if err == nil {
			// The server answered despite the cut body (it may have
			// rejected the truncation with a 4xx). The *connection*
			// still died from the client's point of view: surface the
			// injected error so the pusher treats delivery as unknown.
			resp.Body.Close()
		}
		return nil, ErrInjectedTruncate
	}
	if v.err503 {
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(bytes.NewReader([]byte(fmt.Sprintf("faultnet: injected 503 for %s\n", req.URL.Path)))),
			Request:    req,
		}, nil
	}
	if v.duplicate {
		first, err := t.base.RoundTrip(t.clone(req, body))
		if err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return t.base.RoundTrip(t.clone(req, body))
	}
	return t.base.RoundTrip(t.clone(req, body))
}

// clone rebuilds the request with a fresh replayable body.
func (t *Transport) clone(req *http.Request, body []byte) *http.Request {
	sub := req.Clone(req.Context())
	if body != nil {
		sub.Body = io.NopCloser(bytes.NewReader(body))
		sub.ContentLength = int64(len(body))
		sub.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	return sub
}
