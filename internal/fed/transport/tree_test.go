package transport

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/fed/compress"
)

// flakyServer serves an aggregator behind an on/off switch: while
// down, every request gets a 503 without reaching the aggregator (the
// load-balancer-drops-the-backend failure shape).
func flakyServer(agg http.Handler) (*httptest.Server, *atomic.Bool) {
	var up atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
			return
		}
		agg.ServeHTTP(w, r)
	}))
	return srv, &up
}

// TestPusherBackoffResetsAfterSuccess pins the backoff contract: a
// successful push resets the retry backoff to zero, so the first
// failure of the *next* outage starts from BackoffMin — never from
// the previous outage's lingering ceiling.
func TestPusherBackoffResetsAfterSuccess(t *testing.T) {
	const backoffMin, backoffMax = 50 * time.Millisecond, 400 * time.Millisecond
	spool := t.TempDir()
	writeSegment(t, spool, 0, synthExport(t, "sensor-a", 11, 300))

	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	srv, up := flakyServer(agg)
	defer srv.Close()

	p, err := NewPusher(PusherConfig{
		Dir:            spool,
		URL:            srv.URL,
		RequestTimeout: 2 * time.Second,
		ScanInterval:   10 * time.Millisecond,
		BackoffMin:     backoffMin,
		BackoffMax:     backoffMax,
		Seed:           1,
		Compression:    testCompression(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First outage: drive the backoff well past BackoffMin.
	waitFor(t, "backoff to climb past 4x the floor", func() bool {
		return p.Metrics().Backoff >= 4*backoffMin
	})

	up.Store(true)
	waitFor(t, "ack and reset", func() bool { return p.Synced() })
	if m := p.Metrics(); m.Backoff != 0 {
		t.Fatalf("backoff = %v after a successful push, want 0", m.Backoff)
	}

	// Second outage: the first failure must back off from the floor.
	// The condition captures the metrics snapshot the moment the first
	// new retry is visible, before further doublings can blur it.
	before := p.Metrics()
	up.Store(false)
	writeSegment(t, spool, 1, synthExport(t, "sensor-a", 12, 600))
	p.Notify()
	var after PushMetrics
	waitFor(t, "first retry of the second outage", func() bool {
		m := p.Metrics()
		if m.Retried > before.Retried {
			after = m
			return true
		}
		return false
	})
	if after.Backoff > 2*backoffMin {
		t.Fatalf("first post-ack failure backed off %v, want <= %v (reset to the floor, not the old ceiling)",
			after.Backoff, 2*backoffMin)
	}
}

// TestPusherFailoverAndPromotion drives the multi-upstream contract:
// with the primary down, pushes fail over to the secondary and ack
// there; when the primary returns, a health probe promotes it back and
// subsequent pushes land on it.
func TestPusherFailoverAndPromotion(t *testing.T) {
	spool := t.TempDir()
	e1 := synthExport(t, "sensor-a", 21, 300)
	writeSegment(t, spool, 0, e1)

	primary := newAggregator(t, t.TempDir(), func(c *AggregatorConfig) { c.NodeID = "agg-primary" })
	defer primary.Close()
	secondary := newAggregator(t, t.TempDir(), func(c *AggregatorConfig) { c.NodeID = "agg-secondary" })
	defer secondary.Close()
	priSrv, priUp := flakyServer(primary)
	defer priSrv.Close()
	secSrv := httptest.NewServer(secondary)
	defer secSrv.Close()

	p, err := NewPusher(PusherConfig{
		Dir:            spool,
		URLs:           []string{priSrv.URL, secSrv.URL},
		RequestTimeout: 2 * time.Second,
		ScanInterval:   10 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
		ProbeInterval:  20 * time.Millisecond,
		Seed:           1,
		Compression:    testCompression(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Primary down: the segment must land on the secondary.
	want1 := encode(t, e1)
	waitFor(t, "failover delivery to the secondary", func() bool {
		return secondary.Export() != nil && bytes.Equal(encode(t, secondary.Export()), want1)
	})
	// The ack lands server-side before the pusher's own accounting, so
	// the switch is polled, not read once.
	waitFor(t, "failover recorded", func() bool {
		m := p.Metrics()
		return m.Failovers >= 1 && m.ActiveUpstream == secSrv.URL
	})
	m := p.Metrics()
	if len(m.Upstreams) != 2 || m.Upstreams[1].Acked == 0 || !m.Upstreams[1].Active || m.Upstreams[0].Active {
		t.Fatalf("per-upstream status = %+v, want the secondary active with an ack", m.Upstreams)
	}
	if m.Upstreams[0].Retried == 0 {
		t.Fatalf("per-upstream status = %+v, want retries recorded against the dead primary", m.Upstreams)
	}

	// Primary back: the probe must promote it, and new evidence must
	// land there.
	priUp.Store(true)
	waitFor(t, "probe-driven promotion back to the primary", func() bool {
		return p.Metrics().ActiveUpstream == priSrv.URL
	})
	e2 := foldAll(t, e1, synthExport(t, "sensor-b", 22, 300))
	writeSegment(t, spool, 1, e2)
	p.Notify()
	want2 := encode(t, e2)
	waitFor(t, "post-promotion delivery to the primary", func() bool {
		return primary.Export() != nil && bytes.Equal(encode(t, primary.Export()), want2)
	})
	waitFor(t, "ack recorded on the promoted primary", func() bool {
		return p.Metrics().Upstreams[0].Acked >= 1
	})
}

// TestPusherSpoolsWhenAllUpstreamsDown: with every upstream dead the
// pusher degrades to spool-and-forward — one backoff raise per pass
// (not per upstream), evidence intact — and drains when any upstream
// returns.
func TestPusherSpoolsWhenAllUpstreamsDown(t *testing.T) {
	const backoffMin = 5 * time.Millisecond
	spool := t.TempDir()
	ex := synthExport(t, "sensor-a", 31, 300)
	writeSegment(t, spool, 0, ex)

	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	srvA, upA := flakyServer(agg)
	defer srvA.Close()
	srvB, _ := flakyServer(http.NotFoundHandler()) // stays down for good
	defer srvB.Close()

	p, err := NewPusher(PusherConfig{
		Dir:            spool,
		URLs:           []string{srvA.URL, srvB.URL},
		RequestTimeout: 2 * time.Second,
		ScanInterval:   10 * time.Millisecond,
		BackoffMin:     backoffMin,
		BackoffMax:     40 * time.Millisecond,
		Seed:           1,
		Compression:    testCompression(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var outage PushMetrics
	waitFor(t, "retries against both dead upstreams", func() bool {
		outage = p.Metrics()
		return outage.Retried >= 4 && outage.Spooled == 1
	})
	// Each pass tries both upstreams but raises the backoff once: the
	// retry count must run ahead of what per-retry doubling from the
	// floor would produce. With >= 4 retries in >= 2 passes the backoff
	// is at most min<<(passes-1), far under min<<(retries-1).
	if outage.Backoff > backoffMin<<(outage.Retried/2) {
		t.Fatalf("backoff %v after %d retries over 2 upstreams: raised per upstream, want once per pass",
			outage.Backoff, outage.Retried)
	}

	upA.Store(true)
	waitFor(t, "spool drain after one upstream returns", func() bool { return p.Synced() })
	if !bytes.Equal(encode(t, agg.Export()), encode(t, ex)) {
		t.Fatal("drained state diverged from the spooled export")
	}
}

// TestPusherCompressionNegotiation proves the encoding handshake end
// to end: an auto-mode pusher sends its first push identity, learns
// support from the response headers, compresses from then on, and the
// folded state is byte-identical to the identity fold.
func TestPusherCompressionNegotiation(t *testing.T) {
	spool := t.TempDir()
	e1 := synthExport(t, "sensor-a", 41, 400)
	writeSegment(t, spool, 0, e1)

	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	p, err := NewPusher(PusherConfig{
		Dir:            spool,
		URL:            srv.URL,
		RequestTimeout: 2 * time.Second,
		ScanInterval:   10 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
		Seed:           1,
		Compression:    CompressionAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	waitFor(t, "first (identity) ack", func() bool { return p.Synced() })
	first := p.Metrics()
	if first.Compressed != 0 {
		t.Fatalf("auto mode compressed before learning support: %+v", first)
	}
	if !first.Upstreams[0].Compress {
		t.Fatal("the ack's headers did not teach the pusher compression support")
	}

	// Everything after the handshake goes compressed.
	e2 := foldAll(t, e1, synthExport(t, "sensor-b", 42, 400))
	writeSegment(t, spool, 1, e2)
	p.Notify()
	waitFor(t, "compressed follow-up ack", func() bool {
		m := p.Metrics()
		return m.Compressed >= 1 && p.Synced()
	})
	m := p.Metrics()
	if m.WireBytes >= m.RawBytes {
		t.Fatalf("wire bytes %d >= raw bytes %d: compression never engaged", m.WireBytes, m.RawBytes)
	}
	if !bytes.Equal(encode(t, agg.Export()), encode(t, e2)) {
		t.Fatal("compressed fold diverged from the identity fold")
	}
}

// oldAggregator mimics a pre-compression deployment: no capability
// headers, plain 200 for identity pushes, 400 for any declared
// content encoding (it would have failed to decode the body).
func oldAggregator(acks *atomic.Uint64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "push is POST only", http.StatusMethodNotAllowed)
			return
		}
		if enc := r.Header.Get("Content-Encoding"); enc != "" && enc != "identity" {
			http.Error(w, "bad segment", http.StatusBadRequest)
			return
		}
		acks.Add(1)
		w.WriteHeader(http.StatusOK)
	})
}

// TestPusherInteropWithOldAggregator pins the downgrade paths: auto
// mode never compresses against an aggregator that advertises nothing,
// and forced-on mode falls back to identity after one rejected
// compressed attempt instead of wedging the segment.
func TestPusherInteropWithOldAggregator(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Compression
	}{{"auto", CompressionAuto}, {"forced-on", CompressionOn}} {
		t.Run(tc.name, func(t *testing.T) {
			spool := t.TempDir()
			writeSegment(t, spool, 0, synthExport(t, "sensor-a", 51, 300))
			var acks atomic.Uint64
			srv := httptest.NewServer(oldAggregator(&acks))
			defer srv.Close()

			p, err := NewPusher(PusherConfig{
				Dir:            spool,
				URL:            srv.URL,
				RequestTimeout: 2 * time.Second,
				ScanInterval:   10 * time.Millisecond,
				BackoffMin:     5 * time.Millisecond,
				BackoffMax:     40 * time.Millisecond,
				Seed:           1,
				Compression:    tc.mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			waitFor(t, "ack from the old aggregator", func() bool { return p.Synced() })
			m := p.Metrics()
			if acks.Load() == 0 || m.Acked == 0 {
				t.Fatalf("old aggregator never acked: %+v", m)
			}
			if m.Rejected != 0 {
				t.Fatalf("interop counted a permanent rejection: %+v (the identity fallback must absorb it)", m)
			}
			if m.Compressed != 0 {
				t.Fatalf("a compressed body was acked by an aggregator that cannot decode one: %+v", m)
			}
		})
	}
}

// TestAggregatorLoopGuards pins the topology refusals: a Via set
// naming this node is a cycle, a hop count over budget is refused, and
// both are counted — while legitimate deep pushes fold and feed the
// node's own route stamp.
func TestAggregatorLoopGuards(t *testing.T) {
	agg := newAggregator(t, t.TempDir(), func(c *AggregatorConfig) {
		c.NodeID = "mid1"
		c.MaxHops = 3
	})
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()
	data := encode(t, synthExport(t, "sensor-a", 61, 300))

	postWith := func(hops, via string) int {
		req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if hops != "" {
			req.Header.Set(HeaderHops, hops)
		}
		if via != "" {
			req.Header.Set(HeaderVia, via)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if got := postWith("2", "root,mid1"); got != http.StatusConflict {
		t.Fatalf("cycle push = %d, want 409", got)
	}
	if got := postWith("4", "leafside"); got != http.StatusConflict {
		t.Fatalf("over-budget push = %d, want 409", got)
	}
	if m := agg.Metrics(); m.Cycles != 2 || m.Merged != 0 {
		t.Fatalf("metrics = %+v, want 2 topology refusals and no fold", m)
	}
	if got := postWith("3", "mid9"); got != http.StatusOK {
		t.Fatalf("legitimate deep push = %d, want 200", got)
	}
	// The node's own upstream route must now be one tier deeper than
	// the deepest accepted push, via itself plus everything seen.
	hops, via := agg.route()
	if hops != 4 || len(via) != 2 || via[0] != "mid1" || via[1] != "mid9" {
		t.Fatalf("route = (%d, %v), want (4, [mid1 mid9])", hops, via)
	}
}

// fastTreeNode builds a mid-tier aggregator: folds local pushes and
// relays them to the upstream list at test cadence.
func fastTreeNode(t testing.TB, dir, nodeID string, upstreams []string, client *http.Client) *Aggregator {
	t.Helper()
	return newAggregator(t, dir, func(c *AggregatorConfig) {
		c.NodeID = nodeID
		c.Upstreams = upstreams
		c.UpstreamClient = client
		c.PushInterval = 10 * time.Millisecond
		c.PushTimeout = 2 * time.Second
		c.PushBackoffMin = 5 * time.Millisecond
		c.PushBackoffMax = 40 * time.Millisecond
		c.PushProbeInterval = 20 * time.Millisecond
		c.Compression = testCompression(t)
	})
}

// TestAggregatorRelaysUpstream is the transport-level tree property:
// a mid-tier aggregator's folds flow up to the root — including
// re-pushes of its sink segment as it grows — and a crash-kill plus
// restart of the mid tier loses nothing that was acked, duplicating
// harmlessly instead.
func TestAggregatorRelaysUpstream(t *testing.T) {
	root := newAggregator(t, t.TempDir(), func(c *AggregatorConfig) { c.NodeID = "root" })
	defer root.Close()
	rootSrv := httptest.NewServer(root)
	defer rootSrv.Close()

	midDir := t.TempDir()
	mid := fastTreeNode(t, midDir, "mid1", []string{rootSrv.URL}, nil)
	midSrv := httptest.NewServer(mid)
	defer midSrv.Close()

	// First sensor push folds at the mid tier and must relay to the
	// root.
	e1 := synthExport(t, "sensor-a", 71, 300)
	if got := post(t, midSrv.URL, encode(t, e1)); got != http.StatusOK {
		t.Fatalf("push 1 = %d", got)
	}
	want1 := encode(t, e1)
	waitFor(t, "first fold to reach the root", func() bool {
		return root.Export() != nil && bytes.Equal(encode(t, root.Export()), want1)
	})

	// Second push grows the mid tier's sink segment in place; the
	// grown segment must be re-pushed and the root must converge on
	// the two-export fold.
	e2 := synthExport(t, "sensor-b", 72, 300)
	if got := post(t, midSrv.URL, encode(t, e2)); got != http.StatusOK {
		t.Fatalf("push 2 = %d", got)
	}
	want12 := encode(t, foldAll(t, e1, e2))
	waitFor(t, "grown segment re-push to reach the root", func() bool {
		return bytes.Equal(encode(t, root.Export()), want12)
	})
	waitFor(t, "both relays acked in the mid tier's accounting", func() bool {
		pm, ok := mid.PushStats()
		return ok && pm.Acked >= 2
	})
	// The root saw relayed evidence: hops 2, via the mid node.
	if hops, via := root.route(); hops != 3 || len(via) != 2 || via[1] != "mid1" {
		t.Fatalf("root route = (%d, %v), want (3, [root mid1])", hops, via)
	}

	// Crash-kill the mid tier (no farewell checkpoint, no final
	// sweep), restart it on the same directory, and keep pushing: the
	// tree must converge on the full fold, with the restart's
	// re-pushed duplicates folding idempotently at the root.
	mid.Kill()
	midSrv.Close()
	mid2 := fastTreeNode(t, midDir, "mid1", []string{rootSrv.URL}, nil)
	defer mid2.Close()
	midSrv2 := httptest.NewServer(mid2)
	defer midSrv2.Close()
	if got := encode(t, mid2.Export()); !bytes.Equal(got, want12) {
		t.Fatal("mid-tier restart did not recover the acked fold")
	}

	e3 := synthExport(t, "sensor-c", 73, 300)
	if got := post(t, midSrv2.URL, encode(t, e3)); got != http.StatusOK {
		t.Fatalf("post-restart push = %d", got)
	}
	want123 := encode(t, foldAll(t, e1, e2, e3))
	waitFor(t, "post-restart fold to reach the root", func() bool {
		return bytes.Equal(encode(t, root.Export()), want123)
	})
}

// TestAggregatorRefusesDirectCycle wires two aggregators into a 2-loop
// (each the other's upstream) and proves the Via guard breaks it: the
// second hop is refused with 409, counted, and the states still
// converge on the pushed evidence instead of folding in circles.
func TestAggregatorRefusesDirectCycle(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	// Bring up B first as a plain node to learn its URL, then wire A
	// and B into the cycle via placeholder servers whose handlers can
	// be swapped after both exist.
	var aggA, aggB atomic.Pointer[Aggregator]
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a := aggA.Load(); a != nil {
			a.ServeHTTP(w, r)
			return
		}
		http.Error(w, "not up yet", http.StatusServiceUnavailable)
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b := aggB.Load(); b != nil {
			b.ServeHTTP(w, r)
			return
		}
		http.Error(w, "not up yet", http.StatusServiceUnavailable)
	}))
	defer srvB.Close()

	a := fastTreeNode(t, dirA, "agg-a", []string{srvB.URL}, nil)
	defer a.Close()
	b := fastTreeNode(t, dirB, "agg-b", []string{srvA.URL}, nil)
	defer b.Close()
	aggA.Store(a)
	aggB.Store(b)

	ex := synthExport(t, "sensor-a", 81, 300)
	if got := post(t, srvA.URL, encode(t, ex)); got != http.StatusOK {
		t.Fatalf("push = %d", got)
	}
	// A folds and relays to B; B folds and tries to relay back to A,
	// whose Via guard must refuse the revisit.
	want := encode(t, ex)
	waitFor(t, "evidence to reach B", func() bool {
		return b.Export() != nil && bytes.Equal(encode(t, b.Export()), want)
	})
	waitFor(t, "A to refuse the cycled push", func() bool {
		return a.Metrics().Cycles >= 1
	})
	if !bytes.Equal(encode(t, a.Export()), want) {
		t.Fatal("cycle refusal corrupted A's state")
	}
}

// TestCompressionRatioEvidence pins the acceptance floor: the push
// encoding must cut a worm-outbreak evidence workload (many sources
// flooding alerts that share a few templates and fingerprints) to at
// most a third of its identity size.
func TestCompressionRatioEvidence(t *testing.T) {
	ex := foldAll(t,
		synthExport(t, "sensor-a", 91, 4000),
		synthExport(t, "sensor-b", 92, 4000),
		synthExport(t, "sensor-c", 93, 4000),
	)
	raw := encode(t, ex)
	wire := compressBytes(raw)
	if wire == nil {
		t.Fatal("compressBytes failed")
	}
	ratio := float64(len(raw)) / float64(len(wire))
	t.Logf("evidence workload: raw=%d wire=%d ratio=%.2fx", len(raw), len(wire), ratio)
	if ratio < 3.0 {
		t.Fatalf("compression ratio %.2fx on the evidence workload, want >= 3x", ratio)
	}
	// And the wire bytes decode back to the identical export.
	rd := compress.NewReader(bytes.NewReader(wire))
	var out bytes.Buffer
	if _, err := out.ReadFrom(rd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatal("round trip diverged")
	}
}

// BenchmarkCompressEvidence measures the push encoder over the same
// worm-outbreak evidence workload the ratio floor is pinned on.
func BenchmarkCompressEvidence(b *testing.B) {
	ex := foldAll(b,
		synthExport(b, "sensor-a", 91, 4000),
		synthExport(b, "sensor-b", 92, 4000),
		synthExport(b, "sensor-c", 93, 4000),
	)
	raw := encode(b, ex)
	var wire []byte
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = compressBytes(raw)
	}
	b.StopTimer()
	if wire == nil {
		b.Fatal("compressBytes failed")
	}
	b.ReportMetric(float64(len(raw))/float64(len(wire)), "ratio")
	_ = fmt.Sprintf("%d", len(wire))
}
