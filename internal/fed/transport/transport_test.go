package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/core"
	"semnids/internal/fed"
	"semnids/internal/fed/compress"
	"semnids/internal/fed/transport/faultnet"
	"semnids/internal/incident"
)

// synthExport builds a deterministic evidence export by driving a
// real correlator with seeded random events (the same generator shape
// the fed wire-format tests use).
func synthExport(t testing.TB, sensor string, seed int64, events int) *incident.EvidenceExport {
	t.Helper()
	return synthExportWindow(t, sensor, seed, events, 30e6)
}

func synthExportWindow(t testing.TB, sensor string, seed int64, events int, windowUS uint64) *incident.EvidenceExport {
	t.Helper()
	c := incident.New(incident.Config{WindowUS: windowUS, FanoutThreshold: 3})
	defer c.Stop()
	rng := rand.New(rand.NewSource(seed))
	host := func(i int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
	}
	fps := make([]core.Fingerprint, 16)
	for i := range fps {
		fps[i] = core.FingerprintOf([]byte(fmt.Sprintf("payload-%d", i)))
	}
	sev := []string{"low", "medium", "high"}
	for i := 0; i < events; i++ {
		src, dst := host(rng.Intn(12)), host(20+rng.Intn(12))
		ts := uint64(1000 + rng.Intn(2_000_000))
		switch rng.Intn(4) {
		case 0, 1:
			c.Publish(core.Event{Kind: core.EventFlowOpen, TimestampUS: ts, Src: src, Dst: dst, SrcPort: 1234, DstPort: 80})
		case 2:
			c.Publish(core.Event{
				Kind: core.EventAlert, TimestampUS: ts, Src: src, Dst: dst, SrcPort: 1234, DstPort: 80,
				Fingerprint: fps[rng.Intn(len(fps))], Template: "code-red-ii", Severity: sev[rng.Intn(len(sev))],
			})
		case 3:
			c.Publish(core.Event{
				Kind: core.EventFingerprint, TimestampUS: ts, Src: dst, Dst: host(40 + rng.Intn(8)),
				SrcPort: 4321, DstPort: 80, Fingerprint: fps[rng.Intn(len(fps))],
			})
		}
	}
	c.Flush()
	return c.Export(sensor)
}

// encode renders an export to wire bytes.
func encode(t testing.TB, ex *incident.EvidenceExport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fed.WriteExport(&buf, ex); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// foldAll merges exports left to right.
func foldAll(t testing.TB, exs ...*incident.EvidenceExport) *incident.EvidenceExport {
	t.Helper()
	merged := exs[0]
	for _, ex := range exs[1:] {
		var err error
		if merged, err = fed.Merge(merged, ex); err != nil {
			t.Fatal(err)
		}
	}
	return merged
}

// writeSegment drops one encoded export into dir under the sink's
// segment naming convention.
func writeSegment(t testing.TB, dir string, index int, ex *incident.EvidenceExport) string {
	t.Helper()
	name := fmt.Sprintf("evidence-%06d.seg", index)
	if err := os.WriteFile(filepath.Join(dir, name), encode(t, ex), 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

func newAggregator(t testing.TB, dir string, mut func(*AggregatorConfig)) *Aggregator {
	t.Helper()
	cfg := AggregatorConfig{Dir: dir}
	if mut != nil {
		mut(&cfg)
	}
	agg, err := NewAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// post pushes raw bytes at an aggregator server, returning the status.
func post(t testing.TB, url string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// testCompression is the suite-wide push encoding: CI reruns the whole
// transport fault suite with SEMNIDS_PUSH_COMPRESSION=on so every
// convergence property is proven over compressed bodies too.
func testCompression(t testing.TB) Compression {
	t.Helper()
	comp, err := ParseCompression(os.Getenv("SEMNIDS_PUSH_COMPRESSION"))
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// fastPusher starts a pusher tuned for test cadence.
func fastPusher(t testing.TB, dir, url string, client *http.Client) *Pusher {
	t.Helper()
	p, err := NewPusher(PusherConfig{
		Dir:            dir,
		URL:            url,
		Client:         client,
		RequestTimeout: 2 * time.Second,
		ScanInterval:   10 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
		Seed:           1,
		Compression:    testCompression(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAggregatorStatuses locks the push endpoint's status-code
// contract: every malformed input is refused cleanly before any fold,
// valid pushes ack durably, and duplicates are harmless.
func TestAggregatorStatuses(t *testing.T) {
	agg := newAggregator(t, t.TempDir(), func(c *AggregatorConfig) { c.MaxBodyBytes = 64 << 10 })
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	ex := synthExport(t, "sensor-a", 1, 300)
	data := encode(t, ex)

	// GET is the health probe: 204, stamped with the aggregator's
	// identity and the encodings it accepts.
	if resp, err := http.Get(srv.URL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Errorf("GET = %d, want 204", resp.StatusCode)
		}
		if got := resp.Header.Get(HeaderAcceptEncoding); got != compress.ContentEncoding {
			t.Errorf("probe %s = %q, want %q", HeaderAcceptEncoding, got, compress.ContentEncoding)
		}
		if got := resp.Header.Get(HeaderNode); got == "" {
			t.Errorf("probe response missing %s", HeaderNode)
		}
	}
	if got := post(t, srv.URL, []byte("not a segment")); got != http.StatusBadRequest {
		t.Errorf("garbage body = %d, want 400", got)
	}
	// A header-only stream (first framed record, nothing committed).
	header := data[:bytes.IndexByte(data, '\n')+1]
	if got := post(t, srv.URL, header); got != http.StatusBadRequest {
		t.Errorf("checkpoint-less body = %d, want 400", got)
	}
	// Mid-checkpoint truncation.
	if got := post(t, srv.URL, data[:len(data)-3]); got != http.StatusBadRequest {
		t.Errorf("truncated body = %d, want 400", got)
	}
	if m := agg.Metrics(); m.Merged != 0 {
		t.Fatalf("rejected pushes folded evidence: %+v", m)
	}

	if got := post(t, srv.URL, data); got != http.StatusOK {
		t.Fatalf("valid push = %d, want 200", got)
	}
	if !reflect.DeepEqual(agg.Export(), ex) {
		t.Fatal("aggregator state diverged from the pushed export")
	}
	// Duplicate delivery: state must be byte-identical before and after.
	before := encode(t, agg.Export())
	if got := post(t, srv.URL, data); got != http.StatusOK {
		t.Fatalf("duplicate push = %d, want 200", got)
	}
	if !bytes.Equal(encode(t, agg.Export()), before) {
		t.Fatal("duplicate push changed the aggregator state")
	}

	// Oversized: a body over MaxBodyBytes is refused even though its
	// committed prefix would decode.
	big := synthExport(t, "sensor-big", 2, 20000)
	if data := encode(t, big); int64(len(data)) > 64<<10 {
		if got := post(t, srv.URL, data); got != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body = %d, want 413", got)
		}
	} else {
		t.Fatalf("oversized fixture only %d bytes", len(data))
	}

	// Correlation-parameter skew: same wire format, incompatible fold.
	skew := synthExportWindow(t, "sensor-skew", 3, 300, 60e6)
	if got := post(t, srv.URL, encode(t, skew)); got != http.StatusConflict {
		t.Errorf("skewed parameters = %d, want 409", got)
	}

	m := agg.Metrics()
	if m.Rejected < 3 || m.TooLarge != 1 || m.Skew != 1 || m.Merged != 2 {
		t.Errorf("metrics = %+v, want rejected>=3 tooLarge=1 skew=1 merged=2", m)
	}
}

// TestPusherDeliversSpool is the basic happy path: segments on disk
// before and after the pusher starts all reach the aggregator, and
// the folded state equals a direct merge of the same exports.
func TestPusherDeliversSpool(t *testing.T) {
	spool, aggDir := t.TempDir(), t.TempDir()
	e1 := synthExport(t, "sensor-a", 1, 300)
	e2 := synthExport(t, "sensor-a", 2, 300)
	e3 := synthExport(t, "sensor-b", 3, 300)
	writeSegment(t, spool, 0, e1)

	agg := newAggregator(t, aggDir, nil)
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	p := fastPusher(t, spool, srv.URL, nil)
	defer p.Close()
	waitFor(t, "first segment ack", func() bool { return p.Synced() })

	// New segments appear while the pusher runs — including one that
	// grows in place (same index, more bytes), which must be re-pushed.
	// Synced() reflects the latest completed scan, so convergence is
	// judged on the aggregator's state, not the pusher's gauge.
	writeSegment(t, spool, 1, e2)
	writeSegment(t, spool, 1, foldAll(t, e2, e3))
	p.Notify()
	want := encode(t, foldAll(t, e1, e2, e3))
	waitFor(t, "aggregator to converge on the direct merge", func() bool {
		return bytes.Equal(encode(t, agg.Export()), want)
	})
	waitFor(t, "acks recorded and spool drained", func() bool {
		m := p.Metrics()
		return m.Acked >= 2 && p.Synced()
	})
	if m := p.Metrics(); m.Rejected != 0 || m.Dropped != 0 {
		t.Errorf("pusher metrics = %+v, want no rejects/drops", m)
	}
}

// TestPusherBackoffAndRecovery pins the degradation contract: while
// the aggregator is down the pusher backs off exponentially and the
// spool holds everything; when it returns, the spool drains and the
// backoff resets.
func TestPusherBackoffAndRecovery(t *testing.T) {
	spool := t.TempDir()
	ex := synthExport(t, "sensor-a", 4, 300)
	writeSegment(t, spool, 0, ex)

	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	var up atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
			return
		}
		agg.ServeHTTP(w, r)
	}))
	defer srv.Close()

	p := fastPusher(t, spool, srv.URL, nil)
	defer p.Close()
	waitFor(t, "retries against the dead aggregator", func() bool {
		m := p.Metrics()
		return m.Retried >= 3 && m.Backoff > 0 && m.Spooled == 1 && m.LastError != ""
	})
	if p.Synced() {
		t.Fatal("pusher claims synced while the aggregator rejects everything")
	}

	up.Store(true)
	waitFor(t, "catch-up after recovery", func() bool { return p.Synced() })
	if m := p.Metrics(); m.Backoff != 0 || m.LastError != "" || m.Acked == 0 {
		t.Errorf("post-recovery metrics = %+v, want reset backoff and an ack", m)
	}
	if !bytes.Equal(encode(t, agg.Export()), encode(t, ex)) {
		t.Fatal("recovered aggregator state diverged from the spooled export")
	}
}

// TestPusherCountsPrunedSegments: a committed segment deleted before
// any ack is dropped evidence and must be counted, not silently
// forgotten.
func TestPusherCountsPrunedSegments(t *testing.T) {
	spool := t.TempDir()
	name := writeSegment(t, spool, 0, synthExport(t, "sensor-a", 5, 300))

	// No server at all: every push fails, nothing gets acked.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	p := fastPusher(t, spool, url, nil)
	defer p.Close()
	waitFor(t, "segment observed and spooled", func() bool {
		m := p.Metrics()
		return m.Spooled == 1 && m.Retried > 0
	})
	if err := os.Remove(filepath.Join(spool, name)); err != nil {
		t.Fatal(err)
	}
	p.Notify()
	waitFor(t, "prune accounted as dropped", func() bool {
		m := p.Metrics()
		return m.Dropped == 1 && m.Spooled == 0
	})
}

// TestPusherSkipsRejectedSegment: a segment the aggregator permanently
// refuses (parameter skew) must not wedge the spool — later segments
// still flow, the rejection is counted.
func TestPusherSkipsRejectedSegment(t *testing.T) {
	spool := t.TempDir()
	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	// Segment 0 fixes the aggregator's parameters; segment 1 skews;
	// segment 2 must still get through.
	writeSegment(t, spool, 0, synthExport(t, "sensor-a", 6, 300))
	writeSegment(t, spool, 1, synthExportWindow(t, "sensor-a", 7, 300, 60e6))
	writeSegment(t, spool, 2, synthExport(t, "sensor-b", 8, 300))

	p := fastPusher(t, spool, srv.URL, nil)
	defer p.Close()
	waitFor(t, "spool resolved around the rejected segment", func() bool {
		m := p.Metrics()
		return m.Rejected == 1 && m.Acked >= 2 && m.Spooled == 0
	})
	st := agg.Export()
	if len(st.Sensors) != 2 {
		t.Fatalf("aggregator sensors = %v, want the two compatible segments folded", st.Sensors)
	}
	if m := p.Metrics(); !strings.Contains(m.LastError, "409") && m.Backoff != 0 {
		t.Errorf("rejection raised backoff: %+v", m)
	}
}

// TestAggregatorRestartRecovery is the kill-mid-stream property test:
// at several seeds, an aggregator is crash-killed (no final
// checkpoint) partway through a push sequence, restarted on the same
// directory, and fed the rest plus re-deliveries of everything before
// the kill. The resumed fold must be byte-identical to an
// uninterrupted fold of the same exports — acked evidence survives
// the crash, duplicates change nothing.
func TestAggregatorRestartRecovery(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dir := t.TempDir()
		exports := make([]*incident.EvidenceExport, 4)
		for i := range exports {
			exports[i] = synthExport(t, fmt.Sprintf("sensor-%c", 'a'+i%2), seed*10+int64(i), 250)
		}
		want := encode(t, foldAll(t, exports...))

		agg := newAggregator(t, dir, nil)
		srv := httptest.NewServer(agg)
		for _, ex := range exports[:2] {
			if got := post(t, srv.URL, encode(t, ex)); got != http.StatusOK {
				t.Fatalf("seed %d: pre-kill push = %d", seed, got)
			}
		}
		ackedState := encode(t, agg.Export())
		agg.Kill()
		srv.Close()

		agg2 := newAggregator(t, dir, nil)
		if got := encode(t, agg2.Export()); !bytes.Equal(got, ackedState) {
			t.Fatalf("seed %d: restart did not recover the acked state", seed)
		}
		srv2 := httptest.NewServer(agg2)
		// Re-deliver everything acked before the kill, then the rest —
		// the retransmit storm a real sensor fleet produces after an
		// aggregator outage.
		for _, ex := range append(append([]*incident.EvidenceExport{}, exports[:2]...), exports[2:]...) {
			if got := post(t, srv2.URL, encode(t, ex)); got != http.StatusOK {
				t.Fatalf("seed %d: post-restart push = %d", seed, got)
			}
		}
		if got := encode(t, agg2.Export()); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: resumed fold diverged from the uninterrupted fold", seed)
		}
		agg2.Close()
		srv2.Close()

		// And the final state itself recovers once more.
		agg3 := newAggregator(t, dir, nil)
		if got := encode(t, agg3.Export()); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: clean-close state did not recover", seed)
		}
		agg3.Close()
	}
}

// TestPushConvergesUnderFaults runs the whole transport under the
// fault harness: drops, truncations, 5xx bursts, duplicates and
// latency on a fixed seed, with multiple sensors pushing real sink
// segments. Despite every injected fault the aggregator must converge
// to exactly the clean fold of the sensors' final exports.
func TestPushConvergesUnderFaults(t *testing.T) {
	agg := newAggregator(t, t.TempDir(), nil)
	defer agg.Close()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	ft := faultnet.New(nil, faultnet.Plan{
		Seed:       42,
		Drop:       0.25,
		Truncate:   0.2,
		Err:        0.2,
		Duplicate:  0.2,
		MaxLatency: 2 * time.Millisecond,
	})
	client := &http.Client{Transport: ft}

	var finals []*incident.EvidenceExport
	var pushers []*Pusher
	for s := 0; s < 3; s++ {
		spool := t.TempDir()
		// Each sensor's evidence grows across three checkpoints into
		// rotated segments, like a live sink.
		for i := 0; i < 3; i++ {
			cum := foldAll(t, synthExport(t, fmt.Sprintf("sensor-%d", s), int64(s*100+1), 100*(i+1)))
			writeSegment(t, spool, i, cum)
			if i == 2 {
				finals = append(finals, cum)
			}
		}
		pushers = append(pushers, fastPusher(t, spool, srv.URL, client))
	}
	defer func() {
		for _, p := range pushers {
			p.Close()
		}
	}()

	waitFor(t, "all sensors synced through the fault harness", func() bool {
		for _, p := range pushers {
			if !p.Synced() {
				return false
			}
		}
		return true
	})

	want := encode(t, foldAll(t, finals...))
	if got := encode(t, agg.Export()); !bytes.Equal(got, want) {
		t.Fatal("fold under faults diverged from the clean fold")
	}
	c := ft.Counts()
	if c.Drops == 0 || c.Truncations == 0 || c.Errs == 0 || c.Duplicates == 0 {
		t.Fatalf("fault plan did not exercise every fault kind: %+v", c)
	}
	if m := agg.Metrics(); m.Rejected == 0 {
		// Truncated uploads that reach the server must have been
		// refused (400), never folded.
		t.Logf("note: no server-side rejections (truncations may have died client-side): %+v", m)
	}
}
