package fed

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"semnids/internal/incident"
)

// exportAt returns the call-th staged export, sticking at the last.
func exportAt(call int64, exports []*incident.EvidenceExport) *incident.EvidenceExport {
	i := int(call) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(exports) {
		i = len(exports) - 1
	}
	return exports[i]
}

// enospcFile passes writes through to a real segment file until its
// switch flips, then fails them the way a full disk does.
type enospcFile struct {
	segmentFile
	fail *atomic.Bool
}

func (f enospcFile) Write(p []byte) (int, error) {
	if f.fail.Load() {
		return 0, errors.New("write evidence segment: no space left on device")
	}
	return f.segmentFile.Write(p)
}

// TestSinkDiskExhaustionDegrades drives the ENOSPC satellite: when the
// spool disk fills, checkpoints must fail visibly (WriteErrors), shed
// the oldest segments to free space, leave the newest committed state
// recoverable throughout, and resume cleanly once space returns —
// never wedging the sink goroutine.
func TestSinkDiskExhaustionDegrades(t *testing.T) {
	dir := t.TempDir()
	exports := stagedExports(t, 8)
	var calls atomic.Int64
	var diskFull atomic.Bool
	s, err := OpenSink(SinkConfig{
		Dir:             dir,
		RotateBytes:     1, // every checkpoint rotates into a fresh segment
		CheckpointEvery: time.Hour,
		KeepSegments:    16, // retention out of the way: shedding is under test
		Export: func() *incident.EvidenceExport {
			return exportAt(calls.Add(1), exports)
		},
		openSeg: func(path string) (segmentFile, error) {
			f, err := openSegFile(path)
			if err != nil {
				return nil, err
			}
			return enospcFile{segmentFile: f, fail: &diskFull}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Healthy phase: four checkpoints across four segments.
	for i := 0; i < 4; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("healthy checkpoint %d: %v", i, err)
		}
	}
	healthySegs, _ := listSegments(dir)
	if len(healthySegs) < 4 {
		t.Fatalf("%d segments after healthy phase, want >= 4", len(healthySegs))
	}
	lastHealthy := exportAt(calls.Load(), exports)

	// Disk full: checkpoints fail but must return (no wedge), count
	// write errors, and shed the oldest segments.
	diskFull.Store(true)
	for i := 0; i < 3; i++ {
		if err := s.Checkpoint(); err == nil {
			t.Fatalf("checkpoint %d on a full disk reported success", i)
		}
	}
	m := s.Metrics()
	if m.WriteErrors < 3 || m.Shed == 0 {
		t.Fatalf("metrics = %+v, want >=3 write errors with shedding", m)
	}
	// The newest committed checkpoint must have survived the shedding.
	got, err := Recover(dir)
	if err != nil || got == nil {
		t.Fatalf("recovery during exhaustion: export=%v err=%v", got, err)
	}
	if !reflect.DeepEqual(got.Sources, lastHealthy.Sources) {
		t.Fatalf("exhaustion shed the newest committed checkpoint")
	}

	// Space returns: the next checkpoint succeeds and recovery tracks
	// the new state.
	diskFull.Store(false)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after space returned: %v", err)
	}
	want := exportAt(calls.Load(), exports)
	got, err = Recover(dir)
	if err != nil || got == nil {
		t.Fatalf("recovery after healing: export=%v err=%v", got, err)
	}
	if !reflect.DeepEqual(got.Sources, want.Sources) {
		t.Fatalf("post-healing recovery diverged from the newest checkpoint")
	}
}
