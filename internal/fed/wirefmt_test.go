package fed

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"semnids/internal/core"
	"semnids/internal/incident"
)

// synthExport builds a deterministic evidence export by driving a
// real correlator with seeded random events — the generator property
// tests and fuzz seeds share.
func synthExport(t testing.TB, sensor string, seed int64, events int) *incident.EvidenceExport {
	t.Helper()
	c := correlatorFromEvents(t, synthEvents(seed, events))
	defer c.Stop()
	return c.Export(sensor)
}

func synthEvents(seed int64, n int) []core.Event {
	rng := rand.New(rand.NewSource(seed))
	host := func(i int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
	}
	// Enough distinct payloads that per-(victim, fingerprint) attacker
	// fan-in stays within maxAttackersPerFingerprint: the determinism
	// contract is scoped to evidence within the configured caps, and
	// that is what the properties assert.
	fps := make([]core.Fingerprint, 16)
	for i := range fps {
		fps[i] = core.FingerprintOf([]byte(fmt.Sprintf("payload-%d", i)))
	}
	sev := []string{"low", "medium", "high"}
	var evs []core.Event
	for i := 0; i < n; i++ {
		src, dst := host(rng.Intn(12)), host(20+rng.Intn(12))
		ts := uint64(1000 + rng.Intn(2_000_000))
		switch rng.Intn(4) {
		case 0, 1:
			evs = append(evs, core.Event{Kind: core.EventFlowOpen, TimestampUS: ts, Src: src, Dst: dst, SrcPort: 1234, DstPort: 80})
		case 2:
			evs = append(evs, core.Event{
				Kind: core.EventAlert, TimestampUS: ts, Src: src, Dst: dst, SrcPort: 1234, DstPort: 80,
				Fingerprint: fps[rng.Intn(len(fps))], Template: "code-red-ii", Severity: sev[rng.Intn(len(sev))],
			})
		case 3:
			evs = append(evs, core.Event{
				Kind: core.EventFingerprint, TimestampUS: ts, Src: dst, Dst: host(40 + rng.Intn(8)),
				SrcPort: 4321, DstPort: 80, Fingerprint: fps[rng.Intn(len(fps))],
			})
		}
	}
	return evs
}

func correlatorFromEvents(t testing.TB, evs []core.Event) *incident.Correlator {
	t.Helper()
	c := incident.New(incident.Config{WindowUS: 30e6, FanoutThreshold: 3})
	for _, ev := range evs {
		c.Publish(ev)
	}
	c.Flush()
	return c
}

// encode renders an export to wire bytes.
func encode(t testing.TB, ex *incident.EvidenceExport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteExport(&buf, ex); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWireRoundTrip checks encode → decode is lossless and the
// encoding is canonical (same evidence, same bytes).
func TestWireRoundTrip(t *testing.T) {
	ex := synthExport(t, "sensor-a", 1, 400)
	if len(ex.Sources) == 0 {
		t.Fatal("synthetic export is empty")
	}
	data := encode(t, ex)
	got, err := ReadExport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ex) {
		t.Fatalf("round trip diverged:\n got: %+v\nwant: %+v", got, ex)
	}
	if again := encode(t, got); !bytes.Equal(again, data) {
		t.Fatal("re-encoding a decoded export changed the bytes")
	}
}

// TestWireRejects locks the decoder's failure modes: truncation at
// every prefix must error (or still yield the committed state), and
// version skew, bad prefixes and oversized claims must error cleanly.
func TestWireRejects(t *testing.T) {
	ex := synthExport(t, "sensor-a", 2, 200)
	data := encode(t, ex)

	// Truncations strictly inside the single checkpoint: no committed
	// state must survive.
	for _, cut := range []int{0, 1, 5, len(data) / 2, len(data) - 1} {
		if _, err := ReadExport(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}

	// A truncated *second* checkpoint after a committed first must fall
	// back to the committed one.
	var two bytes.Buffer
	two.Write(data)
	two.Write(data[100 : len(data)-7]) // garbage tail resembling more records
	got, err := ReadExport(bytes.NewReader(two.Bytes()))
	if err != nil {
		t.Fatalf("committed checkpoint not recovered past a corrupt tail: %v", err)
	}
	if !reflect.DeepEqual(got.Sources, ex.Sources) {
		t.Fatal("corrupt tail changed the recovered evidence")
	}

	for name, in := range map[string]string{
		"bad-prefix":      "x7 {}\n",
		"huge-claim":      "9999999 {}\n",
		"oversized-claim": "99999999 {}\n",
		"zero-claim":      "0 \n",
		"not-json":        "3 {{{\n",
		"no-header":       `14 {"k":"ckpt"}` + "\n",
	} {
		if _, err := ReadExport(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}

	var skew bytes.Buffer
	bw := bufio.NewWriter(&skew)
	if err := writeRecord(bw, &wireRecord{Kind: kindHeader, Hdr: &header{Format: FormatName, Version: 99}}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if _, err := ReadExport(bytes.NewReader(skew.Bytes())); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew error = %v, want version complaint", err)
	}

	// A well-framed header carrying correlation parameters no
	// correlator could run (zeros) must be rejected at the decoder —
	// letting it through would crash or silently default downstream
	// derivation.
	var zeroed bytes.Buffer
	bw = bufio.NewWriter(&zeroed)
	if err := writeRecord(bw, &wireRecord{Kind: kindHeader, Hdr: &header{Format: FormatName, Version: Version}}); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if _, err := ReadExport(bytes.NewReader(zeroed.Bytes())); err == nil || !strings.Contains(err.Error(), "correlation parameters") {
		t.Errorf("zeroed-parameter header error = %v, want parameter complaint", err)
	}
}

// TestMergeProperties is the satellite property suite:
// Merge(A,B)==Merge(B,A), Merge(A,A)==A, and associativity across
// three sensors — all compared on canonical wire bytes, the strongest
// equality the system defines.
func TestMergeProperties(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := synthExport(t, "sensor-a", seed, 300)
		b := synthExport(t, "sensor-b", seed+100, 300)
		c := synthExport(t, "sensor-c", seed+200, 300)

		ab, err := Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Merge(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, ab), encode(t, ba)) {
			t.Fatalf("seed %d: Merge(A,B) != Merge(B,A)", seed)
		}

		aa, err := Merge(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, aa), encode(t, a)) {
			t.Fatalf("seed %d: Merge(A,A) != A", seed)
		}

		abc1, err := Merge(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Merge(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := Merge(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, abc1), encode(t, abc2)) {
			t.Fatalf("seed %d: Merge not associative", seed)
		}
		if got, want := fmt.Sprint(abc1.Sensors), "[sensor-a sensor-b sensor-c]"; got != want {
			t.Fatalf("seed %d: merged sensors = %s, want %s", seed, got, want)
		}
	}
}

// TestMergeSplitEvents is the event-level splits property: one event
// stream through a single correlator vs. the same stream partitioned
// across two sensor correlators then merged — identical derived
// incidents, byte-compared on the canonical wire encoding of the
// evidence and on the rendered incident list.
func TestMergeSplitEvents(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		evs := synthEvents(seed, 600)

		solo := correlatorFromEvents(t, evs)
		want := fmt.Sprint(solo.Incidents())
		soloEx := solo.Export("solo")
		solo.Stop()

		// Alternate events between the two sensors — the harshest
		// split: every source's evidence, and both halves of every
		// propagation link, end up scattered across both.
		var aEvs, bEvs []core.Event
		for i, ev := range evs {
			if i%2 == 0 {
				aEvs = append(aEvs, ev)
			} else {
				bEvs = append(bEvs, ev)
			}
		}
		ca := correlatorFromEvents(t, aEvs)
		cb := correlatorFromEvents(t, bEvs)
		exA, exB := ca.Export("sensor-a"), cb.Export("sensor-b")
		ca.Stop()
		cb.Stop()

		merged, err := Merge(exA, exB)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := incident.DeriveIncidents(merged)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(derived); got != want {
			t.Fatalf("seed %d: split-then-merged incidents diverged:\n got: %s\nwant: %s", seed, got, want)
		}
		// The merged evidence itself must match the single sensor's
		// (ignoring provenance, which legitimately differs).
		stripSensors := func(ex *incident.EvidenceExport) *incident.EvidenceExport {
			cp := *ex
			cp.Sensors = nil
			cp.Sources = append([]incident.SourceEvidence(nil), ex.Sources...)
			for i := range cp.Sources {
				cp.Sources[i].Sensors = nil
			}
			return &cp
		}
		if !bytes.Equal(encode(t, stripSensors(merged)), encode(t, stripSensors(soloEx))) {
			t.Fatalf("seed %d: merged evidence diverged from the single-correlator evidence", seed)
		}
	}
}
