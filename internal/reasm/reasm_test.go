package reasm

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"semnids/internal/netpkt"
)

func seg(seq uint32, flags uint8, payload string) *netpkt.Packet {
	return &netpkt.Packet{
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2"),
		Proto: netpkt.ProtoTCP, HasTCP: true,
		SrcPort: 1234, DstPort: 80,
		Seq: seq, Flags: flags, Payload: []byte(payload),
	}
}

func TestInOrder(t *testing.T) {
	a := New()
	a.Feed(seg(100, netpkt.FlagSYN, "")) // SYN, seq consumed
	s := a.Feed(seg(101, netpkt.FlagACK, "hello "))
	if s == nil || string(s.Data) != "hello " {
		t.Fatalf("first segment: %+v", s)
	}
	s = a.Feed(seg(107, netpkt.FlagACK, "world"))
	if s == nil || string(s.Data) != "hello world" {
		t.Fatalf("second segment: %+v", s)
	}
	if s.Finished {
		t.Error("stream finished prematurely")
	}
}

func TestOutOfOrder(t *testing.T) {
	a := New()
	a.Feed(seg(100, netpkt.FlagSYN, ""))
	if s := a.Feed(seg(107, netpkt.FlagACK, "world")); s != nil {
		t.Fatalf("gap segment produced stream: %+v", s)
	}
	s := a.Feed(seg(101, netpkt.FlagACK, "hello "))
	if s == nil || string(s.Data) != "hello world" {
		t.Fatalf("after filling gap: %+v", s)
	}
}

func TestRetransmissionOverlap(t *testing.T) {
	a := New()
	a.Feed(seg(0, 0, "abcdef"))
	// Retransmit bytes 2..8 ("cdefGH"): only "GH" is new.
	s := a.Feed(seg(2, 0, "cdefGH"))
	if s == nil || string(s.Data) != "abcdefGH" {
		t.Fatalf("overlap merge: %+v", s)
	}
	// Pure duplicate produces no growth.
	if s := a.Feed(seg(0, 0, "abc")); s != nil {
		t.Errorf("duplicate produced stream: %+v", s)
	}
}

func TestFinMarksFinished(t *testing.T) {
	a := New()
	a.Feed(seg(0, 0, "payload"))
	s := a.Feed(seg(7, netpkt.FlagFIN, ""))
	if s == nil || !s.Finished {
		t.Fatalf("FIN: %+v", s)
	}
	if string(s.Data) != "payload" {
		t.Errorf("data after FIN: %q", s.Data)
	}
}

func TestRSTMarksFinished(t *testing.T) {
	a := New()
	a.Feed(seg(0, 0, "x"))
	s := a.Feed(seg(1, netpkt.FlagRST, ""))
	if s == nil || !s.Finished {
		t.Fatalf("RST: %+v", s)
	}
}

func TestSequenceWraparound(t *testing.T) {
	a := New()
	start := uint32(0xfffffffe)
	a.Feed(seg(start, 0, "ab")) // crosses the 2^32 boundary
	s := a.Feed(seg(0, 0, "cd"))
	if s == nil || string(s.Data) != "abcd" {
		t.Fatalf("wraparound: %+v", s)
	}
}

func TestNonTCPIgnored(t *testing.T) {
	a := New()
	p := &netpkt.Packet{Proto: netpkt.ProtoUDP, HasUDP: true, Payload: []byte("x")}
	if s := a.Feed(p); s != nil {
		t.Error("UDP fed into TCP reassembler produced a stream")
	}
}

func TestStreamCap(t *testing.T) {
	a := New()
	big := make([]byte, MaxStreamBytes/2+1000)
	a.Feed(seg(0, 0, string(big)))
	s := a.Feed(seg(uint32(len(big)), 0, string(big)))
	if s == nil {
		t.Fatal("no stream")
	}
	if len(s.Data) > MaxStreamBytes {
		t.Errorf("stream grew past cap: %d", len(s.Data))
	}
}

func TestClose(t *testing.T) {
	a := New()
	a.Feed(seg(0, 0, "data"))
	key := seg(0, 0, "").Flow()
	s := a.Close(key)
	if s == nil || string(s.Data) != "data" || !s.Finished {
		t.Fatalf("close: %+v", s)
	}
	if a.FlowCount() != 0 {
		t.Errorf("flow not removed")
	}
	if s := a.Close(key); s != nil {
		t.Error("double close returned a stream")
	}
}

func TestEviction(t *testing.T) {
	a := New()
	for i := 0; i < MaxFlows+10; i++ {
		p := seg(0, 0, "x")
		p.SrcPort = uint16(i)
		p.SrcIP = netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		p.TimestampUS = uint64(i)
		a.Feed(p)
	}
	if a.FlowCount() > MaxFlows {
		t.Errorf("flow table exceeded cap: %d", a.FlowCount())
	}
}

// Property: feeding the segments of a message in any order reassembles
// the original message.
func TestReassemblyPermutationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	prop := func() bool {
		msg := make([]byte, 20+r.Intn(400))
		r.Read(msg)
		// Split into random segments.
		type piece struct {
			off, end int
		}
		var pieces []piece
		for off := 0; off < len(msg); {
			n := 1 + r.Intn(60)
			end := off + n
			if end > len(msg) {
				end = len(msg)
			}
			pieces = append(pieces, piece{off, end})
			off = end
		}
		r.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })

		if len(pieces) > MaxGapSegments {
			return true // out of modeled range
		}
		a := New()
		// SYN at seq 2^32-1 establishes stream base 0 regardless of
		// which data segment arrives first.
		a.Feed(seg(0xffffffff, netpkt.FlagSYN, ""))
		var last *Stream
		for _, pc := range pieces {
			s := a.Feed(seg(uint32(pc.off), 0, string(msg[pc.off:pc.end])))
			if s != nil {
				last = s
			}
		}
		return last != nil && bytes.Equal(last.Data, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- Ptacek-Newsham inconsistent retransmission ---
//
// The evasion: send a byte range twice with different content, betting
// the NIDS and the end host pick different copies. These tests lock in
// the assembler's resolution under both policies — and that FirstWins
// is the default.

func TestInconsistentRetransmissionFirstWins(t *testing.T) {
	a := New() // default policy: first write wins
	a.Feed(seg(0, 0, "GET /index.html"))
	// Full inconsistent retransmission of the same range.
	if s := a.Feed(seg(0, 0, "EVIL-INJECTED!!")); s != nil {
		t.Fatalf("pure rewrite reported growth: %+v", s)
	}
	s := a.Feed(seg(15, netpkt.FlagFIN, " HTTP/1.0"))
	if s == nil || string(s.Data) != "GET /index.html HTTP/1.0" {
		t.Fatalf("first-wins stream = %q, want original bytes", s.Data)
	}
}

func TestInconsistentRetransmissionLastWins(t *testing.T) {
	a := New()
	a.SetOverlapPolicy(LastWins)
	a.Feed(seg(0, 0, "GET /index.html"))
	// The rewrite grows nothing but changes content: it must be
	// reported with Rewritten set, or a consumer that already
	// analyzed the original bytes would never look at the evil copy.
	s := a.Feed(seg(0, 0, "EVIL-INJECTED!!"))
	if s == nil || !s.Rewritten {
		t.Fatalf("content-changing rewrite not reported: %+v", s)
	}
	if string(s.Data) != "EVIL-INJECTED!!" {
		t.Fatalf("rewritten data = %q", s.Data)
	}
	// A second identical retransmission changes nothing: no report.
	if s := a.Feed(seg(0, 0, "EVIL-INJECTED!!")); s != nil {
		t.Fatalf("no-op rewrite reported: %+v", s)
	}
	s = a.Feed(seg(15, netpkt.FlagFIN, " HTTP/1.0"))
	if s == nil || string(s.Data) != "EVIL-INJECTED!! HTTP/1.0" {
		t.Fatalf("last-wins stream = %q, want retransmitted bytes", s.Data)
	}
}

func TestPartialOverlapRewrite(t *testing.T) {
	// A retransmission that overlaps the tail and extends past it:
	// the overlapped middle is policy-dependent, the extension always
	// lands.
	run := func(p OverlapPolicy) string {
		a := New()
		a.SetOverlapPolicy(p)
		a.Feed(seg(0, 0, "abcdef"))
		s := a.Feed(seg(4, 0, "EFGH"))
		if s == nil {
			t.Fatalf("policy %d: extension produced no stream", p)
		}
		return string(s.Data)
	}
	if got := run(FirstWins); got != "abcdefGH" {
		t.Errorf("FirstWins = %q, want abcdefGH", got)
	}
	if got := run(LastWins); got != "abcdEFGH" {
		t.Errorf("LastWins = %q, want abcdEFGH", got)
	}
}

func TestOverlapThroughGapSegments(t *testing.T) {
	// The inconsistent copy arrives out of order (buffered as a gap
	// segment) and is resolved when the hole fills.
	run := func(p OverlapPolicy) string {
		a := New()
		a.SetOverlapPolicy(p)
		a.Feed(seg(0, 0, "abc"))
		// Gap segment covering 6..12, plus an inconsistent copy of
		// 3..9 also pending.
		a.Feed(seg(6, 0, "ghijkl"))
		a.Feed(seg(3, 0, "DEFGHI"))
		s := a.Feed(seg(12, netpkt.FlagFIN, "mno"))
		if s == nil {
			t.Fatalf("policy %d: close produced no stream", p)
		}
		return string(s.Data)
	}
	// Pending segments drain in sequence order: DEFGHI lands first
	// (extending 3..9), then ghijkl's overlap of 6..9 is resolved by
	// policy and its tail 9..12 appended.
	if got := run(FirstWins); got != "abcDEFGHIjklmno" {
		t.Errorf("FirstWins = %q, want abcDEFGHIjklmno", got)
	}
	if got := run(LastWins); got != "abcDEFghijklmno" {
		t.Errorf("LastWins = %q, want abcDEFghijklmno", got)
	}
}

func TestOverwriteBeforeBase(t *testing.T) {
	// A LastWins retransmission reaching before the stream base must
	// only rewrite bytes the stream actually holds.
	a := New()
	a.SetOverlapPolicy(LastWins)
	a.Feed(seg(100, netpkt.FlagSYN, ""))
	a.Feed(seg(101, 0, "hello"))
	// seq 99 predates the base (101): the first two bytes fall
	// outside the stream and must be dropped, the rest rewrite.
	if s := a.Feed(seg(99, 0, "XXYYY")); s == nil || !s.Rewritten {
		t.Fatalf("content-changing rewrite not reported: %+v", s)
	}
	s := a.Feed(seg(106, netpkt.FlagFIN, "!"))
	if s == nil || string(s.Data) != "YYYlo!" {
		t.Fatalf("stream = %q, want YYYlo!", s.Data)
	}
}
