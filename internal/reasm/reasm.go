// Package reasm implements per-flow TCP stream reassembly: it merges
// in-order and out-of-order segments into contiguous stream payloads
// so that exploit content split across packets is analyzed whole.
package reasm

import (
	"bytes"
	"sort"

	"semnids/internal/netpkt"
)

// Limits protecting the reassembler from state-exhaustion.
const (
	// MaxStreamBytes caps how much payload is buffered per flow; a
	// remote exploit's interesting content arrives in the first few
	// kilobytes.
	MaxStreamBytes = 1 << 20
	// MaxFlows caps tracked flows; oldest-idle flows are evicted.
	MaxFlows = 1 << 14
	// MaxGapSegments caps buffered out-of-order segments per flow.
	MaxGapSegments = 256
	// MaxDgramBounds caps recorded datagram boundaries per flow; a
	// flow spraying more datagrams than this keeps buffering payload
	// (up to MaxStreamBytes) but further boundaries merge into the
	// last one, bounding boundary memory the way MaxGapSegments
	// bounds gap memory.
	MaxDgramBounds = 4096
)

// OverlapPolicy selects which copy of a byte wins when segments
// overlap — the knob behind Ptacek-Newsham inconsistent-retransmission
// evasion. An attacker can send a byte range twice with different
// content, betting the NIDS and the end host resolve the conflict
// differently; the policy makes the NIDS's resolution explicit and
// testable.
type OverlapPolicy uint8

const (
	// FirstWins keeps the first copy of every byte (the default, and
	// the historical behavior): later retransmissions cannot rewrite
	// data already buffered.
	FirstWins OverlapPolicy = iota
	// LastWins lets a retransmission overwrite previously buffered
	// bytes, matching stacks that favor the newest segment.
	LastWins
)

type segment struct {
	seq  uint32
	data []byte
}

// stream is one direction of a TCP connection, or — when dgram is set —
// the ordered concatenation of one direction of a datagram
// conversation, with per-datagram start offsets preserved in bounds.
type stream struct {
	key       netpkt.FlowKey
	baseSeq   uint32 // sequence number of the first byte of Data
	haveBase  bool
	data      []byte
	pending   []segment // out-of-order segments, sorted by seq
	pendBytes int       // total payload bytes buffered in pending
	lastSeen  uint64    // timestamp of last activity
	finished  bool
	rewritten bool  // LastWins changed already-buffered bytes since last report
	dgram     bool  // datagram flow (FeedDatagram) rather than TCP
	bounds    []int // start offset in data of each buffered datagram
}

// footprint is the stream's buffered-memory cost, used for the
// assembler's byte accounting.
func (st *stream) footprint() int { return len(st.data) + st.pendBytes }

// Stream is the reassembled view handed to the next pipeline stage.
type Stream struct {
	Key      netpkt.FlowKey
	Data     []byte
	Finished bool

	// Rewritten reports that a LastWins retransmission changed bytes
	// that were already buffered (and possibly already analyzed):
	// consumers tracking an analyzed-prefix watermark must reset it,
	// or an inconsistent retransmission that swaps content without
	// growing the stream would never be re-analyzed.
	Rewritten bool

	// Dgram marks a datagram flow (built by FeedDatagram): Data is
	// the in-order concatenation of the flow's datagram payloads and
	// Bounds holds each datagram's start offset within Data, so
	// boundary-sensitive extractors (CoAP has no length framing below
	// the datagram) can walk the individual messages. Bounds is a
	// reused buffer with the same lifetime as the view itself.
	Dgram  bool
	Bounds []int
}

// Pool limits: how many stream-data buffers the assembler retains for
// reuse, and the largest buffer capacity worth keeping (oversized
// buffers are dropped so one huge flow cannot pin its worth of memory
// forever).
const (
	maxFreeBufs     = 64
	maxRecycledBuf  = 1 << 18
	maxFreeStreams  = 256
	maxFreePendSegs = 16
	maxFreeBounds   = 256
)

// Assembler reassembles many flows concurrently-fed from one goroutine.
type Assembler struct {
	flows      map[netpkt.FlowKey]*stream
	bytes      int // sum of per-flow footprints
	dgramFlows int // tracked datagram flows (subset of flows)
	dgramBytes int // bytes buffered by datagram flows (subset of bytes)
	policy     OverlapPolicy

	// onEvict, when set, is invoked for every flow the assembler drops
	// on its own (capacity overflow, EvictIdle, EvictLRUUntil) — NOT
	// for Close or Drain, whose streams are returned to the caller.
	// The stream's Finished field is false: the flow did not end, the
	// assembler gave up on it. The handler must not call back into the
	// assembler, with one exception: Recycle, so a handler that
	// finishes with the evicted data synchronously can return its
	// buffer.
	onEvict func(*Stream)

	// res is the reused Feed result: one Stream view handed out per
	// Feed call instead of one allocation per packet. It is valid
	// until the next Feed/Close/Drain call.
	res Stream

	// freeBufs and freeStreams recycle stream-data buffers (returned
	// by the owner via Recycle) and flow-state structs (recycled
	// internally when a flow is closed, drained or evicted), so
	// steady-state flow churn does not allocate.
	freeBufs    [][]byte
	freeStreams []*stream
}

// New returns an empty assembler.
func New() *Assembler {
	return &Assembler{flows: make(map[netpkt.FlowKey]*stream)}
}

// SetEvictHandler registers a callback receiving the final reassembled
// view of every flow the assembler evicts, so callers can analyze the
// tail and release per-flow side state instead of silently losing it.
func (a *Assembler) SetEvictHandler(h func(*Stream)) { a.onEvict = h }

// SetOverlapPolicy selects the segment-overlap resolution. Call before
// feeding; changing the policy mid-flow only affects future segments.
func (a *Assembler) SetOverlapPolicy(p OverlapPolicy) { a.policy = p }

// Recycle returns a stream-data buffer (the Data of a stream obtained
// from Close, Drain or the evict handler) to the assembler's free
// list, to back a future flow without allocating. The caller asserts
// no live reference to the buffer remains — typically right after
// synchronously analyzing an evicted or closed stream. Unsuitable
// buffers are simply dropped.
func (a *Assembler) Recycle(data []byte) {
	if data == nil || cap(data) > maxRecycledBuf || len(a.freeBufs) >= maxFreeBufs {
		return
	}
	a.freeBufs = append(a.freeBufs, data[:0])
}

// getBuf pops a recycled data buffer, or returns nil (append grows
// from scratch, exactly as an unpooled assembler would).
func (a *Assembler) getBuf() []byte {
	if n := len(a.freeBufs); n > 0 {
		b := a.freeBufs[n-1]
		a.freeBufs = a.freeBufs[:n-1]
		return b
	}
	return nil
}

// getStream pops a recycled flow-state struct (fully reset) or
// allocates one.
func (a *Assembler) getStream(key netpkt.FlowKey) *stream {
	if n := len(a.freeStreams); n > 0 {
		st := a.freeStreams[n-1]
		a.freeStreams = a.freeStreams[:n-1]
		pending := st.pending[:0]
		bounds := st.bounds[:0]
		*st = stream{key: key, pending: pending, bounds: bounds}
		st.data = a.getBuf()
		return st
	}
	return &stream{key: key, data: a.getBuf()}
}

// putStream recycles a flow-state struct after its removal from the
// flow table. The data buffer is NOT recycled here — its ownership
// moved to whoever received the final Stream view; they hand it back
// through Recycle when done.
func (a *Assembler) putStream(st *stream) {
	if len(a.freeStreams) >= maxFreeStreams || cap(st.pending) > maxFreePendSegs || cap(st.bounds) > maxFreeBounds {
		return
	}
	st.data = nil
	for i := range st.pending {
		st.pending[i] = segment{}
	}
	st.pending = st.pending[:0]
	st.bounds = st.bounds[:0]
	a.freeStreams = append(a.freeStreams, st)
}

// TotalBytes reports the bytes currently buffered across all flows
// (contiguous data plus out-of-order segments).
func (a *Assembler) TotalBytes() int { return a.bytes }

// seqLess compares TCP sequence numbers with wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// Feed adds a packet to its flow, returning the flow's reassembled
// stream when this packet completed new contiguous data (nil
// otherwise). A FIN or RST marks the stream finished. The returned
// Stream is a reused view, valid until the next Feed, Close or Drain
// call on this assembler; callers that need it longer must copy it.
func (a *Assembler) Feed(p *netpkt.Packet) *Stream {
	if !p.HasTCP {
		return nil
	}
	key := p.Flow()
	st := a.flows[key]
	if st == nil {
		if len(a.flows) >= MaxFlows {
			a.evictIdle()
		}
		st = a.getStream(key)
		a.flows[key] = st
	}
	st.lastSeen = p.TimestampUS

	if p.Flags&(netpkt.FlagFIN|netpkt.FlagRST) != 0 {
		st.finished = true
	}

	seq := p.Seq
	if p.Flags&netpkt.FlagSYN != 0 {
		// SYN consumes one sequence number; data begins at seq+1.
		st.baseSeq = seq + 1
		st.haveBase = true
		if len(p.Payload) == 0 {
			return a.result(st, false)
		}
		seq++
	}
	if len(p.Payload) == 0 {
		return a.result(st, false)
	}
	if !st.haveBase {
		st.baseSeq = seq
		st.haveBase = true
	}

	before := st.footprint()
	grew := st.insert(seq, p.Payload, a.policy)
	a.bytes += st.footprint() - before
	return a.result(st, grew)
}

func (a *Assembler) result(st *stream, grew bool) *Stream {
	if !grew && !st.finished && !st.rewritten {
		return nil
	}
	if len(st.data) == 0 {
		return nil
	}
	a.res = Stream{Key: st.key, Data: st.data, Finished: st.finished, Rewritten: st.rewritten, Dgram: st.dgram, Bounds: st.bounds}
	st.rewritten = false // reported; the consumer owns the reset now
	return &a.res
}

// FeedDatagram appends one datagram's payload to its flow's buffer,
// creating the flow on first sight and recording the datagram's start
// offset so message boundaries survive concatenation. It returns the
// flow's accumulated stream when the buffer grew (nil otherwise) —
// the same reused-view contract as Feed. Datagram flows share the
// assembler's flow table, byte accounting and eviction machinery with
// TCP streams; their keys never collide (the Proto field differs).
func (a *Assembler) FeedDatagram(key netpkt.FlowKey, payload []byte, tsUS uint64) *Stream {
	st := a.flows[key]
	if st == nil {
		if len(a.flows) >= MaxFlows {
			a.evictIdle()
		}
		st = a.getStream(key)
		st.dgram = true
		a.flows[key] = st
		a.dgramFlows++
	}
	st.lastSeen = tsUS
	if len(payload) == 0 {
		return a.result(st, false)
	}
	before := len(st.data)
	st.data = appendCapped(st.data, payload)
	added := len(st.data) - before
	if added == 0 {
		return a.result(st, false)
	}
	if len(st.bounds) < MaxDgramBounds {
		st.bounds = append(st.bounds, before)
	}
	a.bytes += added
	a.dgramBytes += added
	return a.result(st, true)
}

// insert merges a segment, returning true if contiguous data grew.
// Under LastWins an overlapping retransmission also rewrites the
// already-buffered bytes it covers; a content-changing rewrite flags
// the stream (Stream.Rewritten) so consumers re-analyze even though
// nothing grew.
func (st *stream) insert(seq uint32, data []byte, policy OverlapPolicy) bool {
	end := st.baseSeq + uint32(len(st.data))
	switch {
	case seq == end:
		// In-order append.
		st.data = appendCapped(st.data, data)
	case seqLess(seq, end):
		// Overlap/retransmission: FirstWins keeps existing bytes;
		// LastWins rewrites them with the retransmitted copy. Either
		// way any new tail is appended.
		if policy == LastWins {
			st.overwrite(seq, data)
		}
		skip := end - seq
		if uint32(len(data)) <= skip {
			return false
		}
		st.data = appendCapped(st.data, data[skip:])
	default:
		// Gap: buffer out of order.
		if len(st.pending) < MaxGapSegments {
			st.pending = append(st.pending, segment{seq: seq, data: append([]byte(nil), data...)})
			st.pendBytes += len(data)
			sort.Slice(st.pending, func(i, j int) bool {
				return seqLess(st.pending[i].seq, st.pending[j].seq)
			})
		}
		return false
	}
	// Drain any pending segments now contiguous.
	progressed := true
	for progressed {
		progressed = false
		end = st.baseSeq + uint32(len(st.data))
		rest := st.pending[:0]
		for _, sg := range st.pending {
			switch {
			case seqLess(sg.seq, end) || sg.seq == end:
				st.pendBytes -= len(sg.data)
				if policy == LastWins {
					st.overwrite(sg.seq, sg.data)
				}
				skip := end - sg.seq
				if uint32(len(sg.data)) > skip {
					st.data = appendCapped(st.data, sg.data[skip:])
					progressed = true
					end = st.baseSeq + uint32(len(st.data))
				}
			default:
				rest = append(rest, sg)
			}
		}
		st.pending = rest
	}
	return true
}

// overwrite rewrites the already-buffered bytes covered by
// [seq, seq+len(data)) with the new copy — the LastWins resolution —
// and flags the stream when content actually changed. Bytes before
// the stream base or past the buffered end are ignored (the
// tail-append path handles growth).
func (st *stream) overwrite(seq uint32, data []byte) {
	start := uint32(0)
	if seqLess(seq, st.baseSeq) {
		start = st.baseSeq - seq
		if uint32(len(data)) <= start {
			return
		}
	}
	idx := int(seq + start - st.baseSeq)
	if idx >= len(st.data) {
		return
	}
	src := data[start:]
	if n := len(st.data) - idx; len(src) > n {
		src = src[:n]
	}
	if !bytes.Equal(st.data[idx:idx+len(src)], src) {
		st.rewritten = true
		copy(st.data[idx:], src)
	}
}

func appendCapped(dst, src []byte) []byte {
	room := MaxStreamBytes - len(dst)
	if room <= 0 {
		return dst
	}
	if len(src) > room {
		src = src[:room]
	}
	return append(dst, src...)
}

// evict removes one flow, updates the byte accounting, and notifies
// the evict handler. With no handler attached nobody ever sees the
// flow's data, so its buffer is recycled directly; with a handler, the
// handler decides (by calling Recycle when it is done synchronously).
func (a *Assembler) evict(st *stream) {
	a.noteRemove(st)
	delete(a.flows, st.key)
	if a.onEvict != nil {
		ev := Stream{Key: st.key, Data: st.data, Finished: false, Dgram: st.dgram, Bounds: st.bounds}
		a.onEvict(&ev)
	} else {
		a.Recycle(st.data)
	}
	a.putStream(st)
}

// noteRemove updates the byte and datagram accounting for a stream
// leaving the flow table (evict, Close, Drain).
func (a *Assembler) noteRemove(st *stream) {
	a.bytes -= st.footprint()
	if st.dgram {
		a.dgramFlows--
		a.dgramBytes -= len(st.data)
	}
}

// lruOrder returns all streams sorted by last activity, oldest first.
func (a *Assembler) lruOrder() []*stream {
	entries := make([]*stream, 0, len(a.flows))
	for _, s := range a.flows {
		entries = append(entries, s)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].lastSeen < entries[j].lastSeen })
	return entries
}

// evictIdle drops the least recently active half of the flow table.
func (a *Assembler) evictIdle() {
	entries := a.lruOrder()
	for _, st := range entries[:len(entries)/2] {
		a.evict(st)
	}
}

// EvictIdle drops every flow whose last activity predates olderThanUS,
// reporting how many were evicted. Each evicted flow is handed to the
// evict handler first, so its unanalyzed tail can still be inspected.
func (a *Assembler) EvictIdle(olderThanUS uint64) int {
	n := 0
	for _, st := range a.flows {
		if st.lastSeen < olderThanUS {
			a.evict(st)
			n++
		}
	}
	return n
}

// EvictDgramIdle drops datagram flows whose last activity predates
// olderThanUS, leaving TCP streams alone — the tighter idle window
// datagram conversations get when configured separately from the
// flow-wide timeout. Each evicted flow is handed to the evict handler
// first.
func (a *Assembler) EvictDgramIdle(olderThanUS uint64) int {
	n := 0
	for _, st := range a.flows {
		if st.dgram && st.lastSeen < olderThanUS {
			a.evict(st)
			n++
		}
	}
	return n
}

// EvictLRUUntil drops least-recently-active flows until the buffered
// byte total is at or below budget, reporting how many were evicted.
func (a *Assembler) EvictLRUUntil(budget int) int {
	if a.bytes <= budget {
		return 0
	}
	n := 0
	for _, st := range a.lruOrder() {
		if a.bytes <= budget {
			break
		}
		a.evict(st)
		n++
	}
	return n
}

// Close removes a finished flow's state and returns its final stream
// (a reused view, valid until the next Feed/Close/Drain call). The
// data buffer's ownership moves to the caller; hand it back with
// Recycle when done with it.
func (a *Assembler) Close(key netpkt.FlowKey) *Stream {
	st := a.flows[key]
	if st == nil {
		return nil
	}
	a.noteRemove(st)
	delete(a.flows, key)
	data, bounds, dg := st.data, st.bounds, st.dgram
	a.putStream(st)
	if len(data) == 0 {
		a.Recycle(data)
		return nil
	}
	a.res = Stream{Key: key, Data: data, Finished: true, Dgram: dg, Bounds: bounds}
	return &a.res
}

// FlowCount reports the number of tracked flows (for metrics).
func (a *Assembler) FlowCount() int { return len(a.flows) }

// DgramFlowCount reports the number of tracked datagram flows.
func (a *Assembler) DgramFlowCount() int { return a.dgramFlows }

// DgramBytes reports the bytes buffered by datagram flows.
func (a *Assembler) DgramBytes() int { return a.dgramBytes }

// Drain removes and returns every tracked flow's stream (used when a
// trace ends without FINs on all connections). Each returned stream's
// data buffer belongs to the caller; Recycle returns it when done.
func (a *Assembler) Drain() []*Stream {
	var out []*Stream
	for k, st := range a.flows {
		if len(st.data) > 0 {
			out = append(out, &Stream{Key: k, Data: st.data, Finished: true, Dgram: st.dgram, Bounds: st.bounds})
		} else {
			a.Recycle(st.data)
		}
		a.noteRemove(st)
		delete(a.flows, k)
		a.putStream(st)
	}
	return out
}
