package reasm

import (
	"net/netip"
	"testing"

	"semnids/internal/netpkt"
)

func tcpSeg(src byte, seq uint32, payload []byte, flags uint8) *netpkt.Packet {
	return &netpkt.Packet{
		SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, src}), DstIP: netip.AddrFrom4([4]byte{10, 0, 1, 1}),
		SrcPort: 1000 + uint16(src), DstPort: 80,
		Proto: netpkt.ProtoTCP, HasTCP: true,
		Seq: seq, Flags: flags, Payload: payload,
	}
}

// TestRecycleReusesBuffer proves the explicit buffer hand-back path: a
// closed flow's data buffer, returned through Recycle, backs the next
// flow instead of a fresh allocation.
func TestRecycleReusesBuffer(t *testing.T) {
	a := New()
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}

	if s := a.Feed(tcpSeg(1, 100, payload, netpkt.FlagACK)); s == nil {
		t.Fatal("no stream from first flow")
	}
	s := a.Feed(tcpSeg(1, 100+uint32(len(payload)), nil, netpkt.FlagFIN))
	if s == nil || !s.Finished {
		t.Fatal("first flow did not finish")
	}
	closed := a.Close(s.Key)
	if closed == nil || len(closed.Data) != len(payload) {
		t.Fatalf("close returned %v", closed)
	}
	first := &closed.Data[:1][0]
	a.Recycle(closed.Data)

	s2 := a.Feed(tcpSeg(2, 500, payload, netpkt.FlagACK))
	if s2 == nil || len(s2.Data) != len(payload) {
		t.Fatalf("no stream from second flow: %v", s2)
	}
	if &s2.Data[:1][0] != first {
		t.Error("recycled buffer was not reused for the next flow")
	}
}

// TestRecycleLimits pins the pool's safety valves: nil and oversized
// buffers are dropped, and the free list is bounded.
func TestRecycleLimits(t *testing.T) {
	a := New()
	a.Recycle(nil)
	if got := len(a.freeBufs); got != 0 {
		t.Errorf("nil recycled: free list %d", got)
	}
	a.Recycle(make([]byte, 0, maxRecycledBuf+1))
	if got := len(a.freeBufs); got != 0 {
		t.Errorf("oversized buffer recycled: free list %d", got)
	}
	for i := 0; i < maxFreeBufs+10; i++ {
		a.Recycle(make([]byte, 16))
	}
	if got := len(a.freeBufs); got != maxFreeBufs {
		t.Errorf("free list grew to %d, cap %d", got, maxFreeBufs)
	}
}

// TestFeedSteadyStateAllocs pins the allocation behavior of warm flow
// churn: with buffers recycled after Close, repeatedly opening,
// filling and closing a flow must not allocate per cycle.
func TestFeedSteadyStateAllocs(t *testing.T) {
	a := New()
	payload := make([]byte, 1024)
	cycle := func(src byte) {
		a.Feed(tcpSeg(src, 10, payload, netpkt.FlagACK))
		s := a.Feed(tcpSeg(src, 10+uint32(len(payload)), nil, netpkt.FlagFIN))
		if s == nil {
			t.Fatal("flow did not report")
		}
		if closed := a.Close(s.Key); closed != nil {
			a.Recycle(closed.Data)
		}
	}
	// Warm the pools.
	for i := 0; i < 4; i++ {
		cycle(byte(i))
	}
	allocs := testing.AllocsPerRun(100, func() { cycle(9) })
	// Map churn costs a little; per-packet stream/buffer allocations
	// would push this over 2.
	if allocs > 2 {
		t.Errorf("flow cycle allocates %.1f objects, want <= 2", allocs)
	}
}
