package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semnids/internal/ir"
	"semnids/internal/x86"
)

// TestDifferentialIRvsEmu cross-validates the two independent
// semantics implementations: wherever the IR's abstract evaluator
// claims a register holds a constant, concretely executing the same
// code in the emulator must produce that exact value.
func TestDifferentialIRvsEmu(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI}
	regs8 := []x86.Reg{x86.AL, x86.CL, x86.DL, x86.BL, x86.AH, x86.CH, x86.DH, x86.BH}

	prop := func() bool {
		a := x86.NewAsm()
		// Initialize every register so the emulator's zero state and
		// the IR's unknown state line up on known values.
		for _, reg := range regs {
			a.MovRI(reg, int64(int32(r.Uint32())))
		}
		n := 5 + r.Intn(20)
		for i := 0; i < n; i++ {
			dst := regs[r.Intn(len(regs))]
			src := regs[r.Intn(len(regs))]
			imm := int64(int32(r.Uint32()))
			switch r.Intn(14) {
			case 0:
				a.MovRI(dst, imm)
			case 1:
				a.MovRR(dst, src)
			case 2:
				a.AddRI(dst, imm)
			case 3:
				a.SubRI(dst, imm)
			case 4:
				a.I(x86.XOR, x86.RegOp(dst), x86.RegOp(src))
			case 5:
				a.I(x86.AND, x86.RegOp(dst), x86.ImmOp(imm))
			case 6:
				a.I(x86.OR, x86.RegOp(dst), x86.ImmOp(imm))
			case 7:
				a.I(x86.NOT, x86.RegOp(dst))
			case 8:
				a.I(x86.NEG, x86.RegOp(dst))
			case 9:
				a.IncR(dst)
			case 10:
				a.I(x86.SHL, x86.RegOp(dst), x86.ImmOp(int64(r.Intn(31)+1)))
			case 11:
				a.I(x86.MOV, x86.RegOp(regs8[r.Intn(len(regs8))]),
					x86.ImmOp(int64(r.Intn(256))))
			case 12:
				a.PushR(src)
				a.PopR(dst)
			case 13:
				a.I(x86.XCHG, x86.RegOp(dst), x86.RegOp(src))
			}
		}
		a.IntN(0x80) // observation point
		code, err := a.Bytes()
		if err != nil {
			t.Logf("asm: %v", err)
			return false
		}

		m := New(code)
		stop, err := m.Run(0)
		if err != nil || stop.Kind != StopSyscall {
			t.Logf("emu: stop=%+v err=%v", stop, err)
			return false
		}

		prog := ir.Lift(x86.SweepAll(code))
		final := &prog.Nodes[len(prog.Nodes)-1] // the int 0x80 node
		if final.Inst.Op != x86.INT {
			t.Logf("last node is %v", final.Inst)
			return false
		}
		for _, reg := range regs {
			claimed, known := final.ConstBefore(reg)
			if !known {
				continue // the abstract domain may lose precision; fine
			}
			if got := m.Reg(reg); got != claimed {
				t.Logf("%v: ir claims %#x, emulator computed %#x\ncode: % x",
					reg, claimed, got, code)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialDecodeLoops: the IR folds decryption keys; the
// emulator actually decrypts. For generated decoder loops, the byte
// the emulator writes must equal cipher-byte XOR folded-key.
func TestDifferentialDecodeLoops(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		key := byte(r.Intn(255) + 1)
		plain := make([]byte, 8+r.Intn(24))
		r.Read(plain)

		a := x86.NewAsm()
		a.Jmp("getpc").
			Label("decoder").
			PopR(x86.ESI).
			MovRI(x86.ECX, int64(len(plain)))
		// Obscured key construction (exercises folding).
		mask := int64(int32(r.Uint32()))
		a.MovRI(x86.EBX, int64(key)^mask).
			I(x86.XOR, x86.RegOp(x86.EBX), x86.ImmOp(mask)).
			Label("loop").
			I(x86.XOR, x86.MemOp(x86.MemRef{Base: x86.ESI, Size: 1, Scale: 1}), x86.RegOp(x86.BL)).
			IncR(x86.ESI).
			Loop("loop").
			// Stop here: the decoded bytes are random data, not a
			// payload; executing them would self-modify the region
			// under test.
			I(x86.INT3).
			Label("getpc").
			Call("decoder")
		code := a.MustBytes()
		payloadOff := len(code)
		for _, b := range plain {
			code = append(code, b^key)
		}

		m := New(code)
		stop, err := m.Run(0)
		if err != nil || stop.Kind != StopRet {
			t.Fatalf("trial %d: stop=%+v err=%v", trial, stop, err)
		}
		for i, want := range plain {
			if m.Mem[payloadOff+i] != want {
				t.Fatalf("trial %d: byte %d = %#x, want %#x",
					trial, i, m.Mem[payloadOff+i], want)
			}
		}
	}
}
