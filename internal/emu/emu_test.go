package emu

import (
	"bytes"
	"testing"

	"semnids/internal/morph"
	"semnids/internal/polymorph"
	"semnids/internal/shellcode"
	"semnids/internal/x86"
)

// runToExecve executes an image and drives faked syscalls until
// execve (eax=0xb), returning the machine and the syscall trace.
func runToExecve(t *testing.T, image []byte) (*Machine, []uint32) {
	t.Helper()
	m := New(image)
	var sysnums []uint32
	stop, err := m.Run(0)
	for {
		if err != nil {
			t.Fatalf("run: %v (trace %v)", err, sysnums)
		}
		if stop.Kind != StopSyscall {
			t.Fatalf("stopped without execve: %+v (trace %v)", stop, sysnums)
		}
		sysnums = append(sysnums, stop.Sysnum)
		if stop.Sysnum == 0xb {
			return m, sysnums
		}
		// Fake kernel: sockets get fd 5, everything else succeeds.
		ret := uint32(0)
		if stop.Sysnum == 0x66 && m.Reg(x86.EBX) == 1 {
			ret = 5
		}
		if stop.Sysnum == 0x66 && m.Reg(x86.EBX) == 5 {
			ret = 6 // accepted connection
		}
		stop, err = m.ResumeAfterSyscall(ret)
	}
}

func TestExecuteClassicPush(t *testing.T) {
	m, trace := runToExecve(t, shellcode.ClassicPush().Bytes)
	if len(trace) != 1 {
		t.Fatalf("syscall trace %v, want just execve", trace)
	}
	// The stack must hold "/bin" and "//sh" pushed for execve.
	var sawBin, sawSh bool
	for i := 0; ; i++ {
		v, ok := m.StackTop(i)
		if !ok {
			break
		}
		if v == 0x6e69622f {
			sawBin = true
		}
		if v == 0x68732f2f {
			sawSh = true
		}
	}
	if !sawBin || !sawSh {
		t.Error("execve argument string not on the stack")
	}
}

func TestExecuteWholeCorpus(t *testing.T) {
	for _, sc := range shellcode.Corpus() {
		m, trace := runToExecve(t, sc.Bytes)
		_ = m
		if sc.BindsPort {
			// Bind shells must issue socketcalls before the spawn.
			socketcalls := 0
			for _, s := range trace {
				if s == 0x66 {
					socketcalls++
				}
			}
			if socketcalls < 3 {
				t.Errorf("%s: only %d socketcalls before execve (trace %v)",
					sc.Name, socketcalls, trace)
			}
		}
		if trace[len(trace)-1] != 0xb {
			t.Errorf("%s: no execve", sc.Name)
		}
	}
}

// TestExecuteADMmutateSamples is the dynamic validation of the
// polymorphic engine: the generated sled + obfuscated decoder must
// actually run, decode the payload in memory, and spawn the shell.
func TestExecuteADMmutateSamples(t *testing.T) {
	payload := shellcode.ClassicPush().Bytes
	eng := polymorph.NewADMmutate(606)
	for i := 0; i < 60; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		m := New(sample)
		stop, err := m.Run(0)
		if err != nil {
			t.Fatalf("sample %d (%s/%s): %v", i, meta.Scheme, meta.Transform, err)
		}
		if stop.Kind != StopSyscall || stop.Sysnum != 0xb {
			t.Fatalf("sample %d (%s/%s): stopped %+v, want execve",
				i, meta.Scheme, meta.Transform, stop)
		}
		// The decoder must have reconstructed the payload in place.
		got := m.Mem[meta.PayloadOff : meta.PayloadOff+meta.PayloadLen]
		if !bytes.Equal(got, payload) {
			t.Fatalf("sample %d (%s/%s): decoded payload differs",
				i, meta.Scheme, meta.Transform)
		}
	}
}

func TestExecuteCletSamples(t *testing.T) {
	payload := shellcode.ClassicPush().Bytes
	eng := polymorph.NewClet(707)
	for i := 0; i < 60; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		m := New(sample)
		stop, err := m.Run(0)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if stop.Kind != StopSyscall || stop.Sysnum != 0xb {
			t.Fatalf("sample %d: stopped %+v", i, stop)
		}
		got := m.Mem[meta.PayloadOff : meta.PayloadOff+meta.PayloadLen]
		if !bytes.Equal(got, payload) {
			t.Fatalf("sample %d: decoded payload differs", i)
		}
	}
}

// TestExecuteMorphedSamples: metamorphic variants still execute to the
// same system call with the same stack-built argument.
func TestExecuteMorphedSamples(t *testing.T) {
	mut := morph.New(808)
	payload := shellcode.ClassicPush().Bytes
	for i := 0; i < 30; i++ {
		variant, err := mut.Mutate(payload)
		if err != nil {
			t.Fatal(err)
		}
		m := New(variant)
		stop, err := m.Run(0)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if stop.Kind != StopSyscall || stop.Sysnum != 0xb {
			t.Fatalf("variant %d: stopped %+v", i, stop)
		}
	}
}

func TestFlagSemantics(t *testing.T) {
	// dec to zero sets ZF; jnz falls through; loop repeats n times.
	code := x86.NewAsm().
		MovRI(x86.ECX, 5).
		MovRI(x86.EAX, 0).
		Label("top").
		I(x86.ADD, x86.RegOp(x86.EAX), x86.ImmOp(3)).
		Loop("top").
		IntN(0x80).
		MustBytes()
	m := New(code)
	stop, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Sysnum != 15 {
		t.Errorf("eax = %d, want 15", stop.Sysnum)
	}

	// Signed comparisons: 2 < 3 via jl.
	code = x86.NewAsm().
		MovRI(x86.EAX, 2).
		I(x86.CMP, x86.RegOp(x86.EAX), x86.ImmOp(3)).
		JccShort(x86.CondL, "less").
		MovRI(x86.EAX, 100).
		IntN(0x80).
		Label("less").
		MovRI(x86.EAX, 200).
		IntN(0x80).
		MustBytes()
	m = New(code)
	stop, err = m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Sysnum != 200 {
		t.Errorf("jl path: eax = %d, want 200", stop.Sysnum)
	}

	// Unsigned: 0xFFFFFFFF > 1 via ja.
	code = x86.NewAsm().
		MovRI(x86.EAX, -1).
		I(x86.CMP, x86.RegOp(x86.EAX), x86.ImmOp(1)).
		JccShort(x86.CondA, "above").
		MovRI(x86.EBX, 0).
		IntN(0x80).
		Label("above").
		MovRI(x86.EBX, 1).
		IntN(0x80).
		MustBytes()
	m = New(code)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(x86.EBX) != 1 {
		t.Errorf("ja path not taken")
	}
}

func TestSubregisterWrites(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EAX, 0x11223344).
		I(x86.MOV, x86.RegOp(x86.AH), x86.ImmOp(0x55)).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x66)).
		IntN(0x80).
		MustBytes()
	m := New(code)
	stop, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Sysnum != 0x11225566 {
		t.Errorf("eax = %#x, want 0x11225566", stop.Sysnum)
	}
}

func TestMemoryFaults(t *testing.T) {
	// A write far outside the image faults rather than corrupting.
	code := x86.NewAsm().
		MovRI(x86.EAX, 0x40000000).
		I(x86.MOV, x86.MemOp(x86.MemRef{Base: x86.EAX, Size: 1, Scale: 1}), x86.ImmOp(1)).
		MustBytes()
	m := New(code)
	if _, err := m.Run(0); err == nil {
		t.Error("out-of-image write did not fault")
	}
}

func TestStepLimit(t *testing.T) {
	code := x86.NewAsm().
		Label("spin").
		JmpShort("spin").
		MustBytes()
	m := New(code)
	m.MaxSteps = 1000
	if _, err := m.Run(0); err != ErrStepLimit {
		t.Errorf("infinite loop: %v, want step limit", err)
	}
}

func TestRunOffEnd(t *testing.T) {
	m := New([]byte{0x90, 0x90})
	stop, err := m.Run(0)
	if err != nil || stop.Kind != StopEnd {
		t.Errorf("stop=%+v err=%v", stop, err)
	}
}

func TestStackUnderflow(t *testing.T) {
	m := New([]byte{0x58}) // pop eax with empty stack
	if _, err := m.Run(0); err == nil {
		t.Error("stack underflow not reported")
	}
}
