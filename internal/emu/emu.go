// Package emu is a concrete IA-32 emulator for self-contained code
// frames: registers, arithmetic flags, a flat memory image, and a
// stack. It executes the instruction subset our shellcode corpus and
// polymorphic engines emit, and stops at system calls.
//
// Its role in the reproduction is dynamic validation: the test suite
// *executes* generated exploit samples — the sled, the getpc idiom,
// the obfuscated decoder loop — and verifies that the decoded payload
// bytes materialize in memory and that execution reaches
// execve("/bin/sh") with the right register state. This proves the
// workloads are real attacks, not byte soup that happens to match the
// templates.
package emu

import (
	"errors"
	"fmt"

	"semnids/internal/x86"
)

// Errors reported by Run.
var (
	ErrStepLimit   = errors.New("emu: step limit exceeded")
	ErrBadFetch    = errors.New("emu: execution left the code image")
	ErrDecode      = errors.New("emu: undecodable instruction")
	ErrUnsupported = errors.New("emu: unsupported instruction")
	ErrMemFault    = errors.New("emu: memory access out of range")
	ErrStack       = errors.New("emu: stack fault")
)

// StopKind says why execution stopped.
type StopKind int

const (
	StopSyscall StopKind = iota // int 0x80 reached
	StopRet                     // ret with an empty call stack... (ret to sentinel)
	StopEnd                     // execution ran past the end of the image
)

// Machine is one emulator instance. The code/data image occupies
// addresses [0, len(Mem)); the stack is a separate region growing down
// from StackBase.
type Machine struct {
	Mem   []byte
	Regs  [8]uint32 // indexed by register family number
	ZF    bool
	SF    bool
	CF    bool
	OF    bool
	DF    bool
	EIP   int
	Steps int

	// MaxSteps bounds execution (default 1 << 20).
	MaxSteps int

	stack []uint32 // modeled separately from Mem; esp mirrors len
}

// stackBase is the virtual ESP start; only relative motion matters.
const stackBase = 0x7fff0000

// New builds a machine over a copy of image.
func New(image []byte) *Machine {
	m := &Machine{
		Mem:      append([]byte(nil), image...),
		MaxSteps: 1 << 20,
	}
	m.Regs[x86.ESP.Num()] = stackBase
	return m
}

// Reg returns a register value (any width).
func (m *Machine) Reg(r x86.Reg) uint32 {
	v := m.Regs[r.Family().Num()]
	switch {
	case r.Size() == 4:
		return v
	case r.Size() == 2:
		return v & 0xffff
	case r.IsHigh8():
		return (v >> 8) & 0xff
	default:
		return v & 0xff
	}
}

// SetReg writes a register at its width.
func (m *Machine) SetReg(r x86.Reg, v uint32) {
	fam := r.Family().Num()
	cur := m.Regs[fam]
	switch {
	case r.Size() == 4:
		m.Regs[fam] = v
	case r.Size() == 2:
		m.Regs[fam] = cur&0xffff0000 | v&0xffff
	case r.IsHigh8():
		m.Regs[fam] = cur&0xffff00ff | (v&0xff)<<8
	default:
		m.Regs[fam] = cur&0xffffff00 | v&0xff
	}
}

// ea computes the effective address of a memory operand.
func (m *Machine) ea(ref x86.MemRef) uint32 {
	addr := uint32(ref.Disp)
	if ref.Base != x86.RegNone {
		addr += m.Reg(ref.Base)
	}
	if ref.Index != x86.RegNone {
		addr += m.Reg(ref.Index) * uint32(ref.Scale)
	}
	return addr
}

// load reads size bytes from the image.
func (m *Machine) load(addr uint32, size int) (uint32, error) {
	if int64(addr)+int64(size) > int64(len(m.Mem)) || int64(addr) < 0 {
		return 0, fmt.Errorf("%w: read %d@%#x", ErrMemFault, size, addr)
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(m.Mem[int(addr)+i])
	}
	return v, nil
}

// store writes size bytes to the image.
func (m *Machine) store(addr uint32, size int, v uint32) error {
	if int64(addr)+int64(size) > int64(len(m.Mem)) || int64(addr) < 0 {
		return fmt.Errorf("%w: write %d@%#x", ErrMemFault, size, addr)
	}
	for i := 0; i < size; i++ {
		m.Mem[int(addr)+i] = byte(v >> (8 * i))
	}
	return nil
}

// push/pop model the stack region.
func (m *Machine) push(v uint32) {
	m.stack = append(m.stack, v)
	m.Regs[x86.ESP.Num()] -= 4
}

func (m *Machine) pop() (uint32, error) {
	if len(m.stack) == 0 {
		return 0, ErrStack
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	m.Regs[x86.ESP.Num()] += 4
	return v, nil
}

// StackTop returns the i-th dword from the top of the stack (0 = top).
func (m *Machine) StackTop(i int) (uint32, bool) {
	if i >= len(m.stack) {
		return 0, false
	}
	return m.stack[len(m.stack)-1-i], true
}

// Stop describes why Run returned.
type Stop struct {
	Kind   StopKind
	Sysnum uint32 // EAX at the syscall for StopSyscall
	EIP    int
}

// widthOf returns operand width in bytes.
func widthOf(o x86.Operand) int {
	switch o.Kind {
	case x86.KindReg:
		return o.Reg.Size()
	case x86.KindMem:
		if o.Mem.Size == 0 {
			return 4
		}
		return int(o.Mem.Size)
	}
	return 4
}

// getOp reads an operand value.
func (m *Machine) getOp(o x86.Operand) (uint32, error) {
	switch o.Kind {
	case x86.KindReg:
		return m.Reg(o.Reg), nil
	case x86.KindImm:
		return uint32(o.Imm), nil
	case x86.KindMem:
		return m.load(m.ea(o.Mem), widthOf(o))
	}
	return 0, ErrUnsupported
}

// setOp writes an operand.
func (m *Machine) setOp(o x86.Operand, v uint32) error {
	switch o.Kind {
	case x86.KindReg:
		m.SetReg(o.Reg, v)
		return nil
	case x86.KindMem:
		return m.store(m.ea(o.Mem), widthOf(o), v)
	}
	return ErrUnsupported
}

// setFlagsLogic updates ZF/SF and clears CF/OF after a logic op.
func (m *Machine) setFlagsLogic(v uint32, width int) {
	mask, sign := widthMask(width)
	v &= mask
	m.ZF = v == 0
	m.SF = v&sign != 0
	m.CF = false
	m.OF = false
}

func widthMask(width int) (mask, sign uint32) {
	switch width {
	case 1:
		return 0xff, 0x80
	case 2:
		return 0xffff, 0x8000
	default:
		return 0xffffffff, 0x80000000
	}
}

// addFlags computes a+b and the resulting flags.
func (m *Machine) addFlags(a, b uint32, width int) uint32 {
	mask, sign := widthMask(width)
	a, b = a&mask, b&mask
	r := (a + b) & mask
	m.ZF = r == 0
	m.SF = r&sign != 0
	m.CF = uint64(a)+uint64(b) > uint64(mask)
	m.OF = (a&sign == b&sign) && (r&sign != a&sign)
	return r
}

// subFlags computes a-b and the resulting flags.
func (m *Machine) subFlags(a, b uint32, width int) uint32 {
	mask, sign := widthMask(width)
	a, b = a&mask, b&mask
	r := (a - b) & mask
	m.ZF = r == 0
	m.SF = r&sign != 0
	m.CF = a < b
	m.OF = (a&sign != b&sign) && (r&sign != a&sign)
	return r
}

// cond evaluates a condition code against the flags.
func (m *Machine) cond(c x86.Cond) bool {
	switch c {
	case x86.CondO:
		return m.OF
	case x86.CondNO:
		return !m.OF
	case x86.CondB:
		return m.CF
	case x86.CondAE:
		return !m.CF
	case x86.CondE:
		return m.ZF
	case x86.CondNE:
		return !m.ZF
	case x86.CondBE:
		return m.CF || m.ZF
	case x86.CondA:
		return !m.CF && !m.ZF
	case x86.CondS:
		return m.SF
	case x86.CondNS:
		return !m.SF
	case x86.CondL:
		return m.SF != m.OF
	case x86.CondGE:
		return m.SF == m.OF
	case x86.CondLE:
		return m.ZF || m.SF != m.OF
	case x86.CondG:
		return !m.ZF && m.SF == m.OF
	}
	return false // P/NP unsupported by the flag model
}

// Run executes from entry until a syscall, a terminal ret, the end of
// the image, or an error.
func (m *Machine) Run(entry int) (Stop, error) {
	return m.runFrom(entry)
}

// ResumeAfterSyscall continues past an int 0x80 stop, installing ret
// as the syscall's return value in EAX. This lets tests drive
// multi-syscall payloads (bind shells) with a faked kernel.
func (m *Machine) ResumeAfterSyscall(ret uint32) (Stop, error) {
	m.SetReg(x86.EAX, ret)
	return m.runFrom(m.EIP + 2) // int 0x80 is two bytes
}

func (m *Machine) runFrom(entry int) (Stop, error) {
	m.EIP = entry
	for {
		if m.Steps++; m.Steps > m.MaxSteps {
			return Stop{}, ErrStepLimit
		}
		if m.EIP == len(m.Mem) {
			return Stop{Kind: StopEnd, EIP: m.EIP}, nil
		}
		if m.EIP < 0 || m.EIP > len(m.Mem) {
			return Stop{}, fmt.Errorf("%w: eip=%#x", ErrBadFetch, m.EIP)
		}
		in, err := x86.Decode(m.Mem, m.EIP)
		if err != nil {
			return Stop{}, fmt.Errorf("%w at %#x: %v", ErrDecode, m.EIP, err)
		}
		next := m.EIP + in.Len
		stop, jump, err := m.exec(&in, next)
		if err != nil {
			return Stop{}, fmt.Errorf("at %#x (%v): %w", m.EIP, in, err)
		}
		if stop != nil {
			stop.EIP = m.EIP
			return *stop, nil
		}
		if jump >= 0 {
			m.EIP = jump
		} else {
			m.EIP = next
		}
	}
}

// exec performs one instruction. jump < 0 means fall through.
func (m *Machine) exec(in *x86.Inst, next int) (stop *Stop, jump int, err error) {
	jump = -1
	a0, a1, a2 := in.Args[0], in.Args[1], in.Args[2]

	switch in.Op {
	case x86.NOP, x86.WAIT, x86.CPUID, x86.RDTSC, x86.SAHF, x86.LAHF:
		// No-ops for our purposes (cpuid/rdtsc clobber handled below
		// would matter only for junk; keep registers stable).
	case x86.CLD:
		m.DF = false
	case x86.STD:
		m.DF = true
	case x86.CLC:
		m.CF = false
	case x86.STC:
		m.CF = true
	case x86.CMC:
		m.CF = !m.CF
	case x86.CLI, x86.STI:
		// Interrupt flag not modeled.
	case x86.SALC:
		if m.CF {
			m.SetReg(x86.AL, 0xff)
		} else {
			m.SetReg(x86.AL, 0)
		}
	case x86.DAA, x86.DAS, x86.AAA, x86.AAS:
		// BCD adjusts appear only in sleds; their exact result is
		// irrelevant to decoder correctness. Model as AL-preserving.
	case x86.CWDE:
		v := m.Reg(x86.AX)
		m.SetReg(x86.EAX, uint32(int32(int16(v))))
	case x86.CDQ:
		if int32(m.Reg(x86.EAX)) < 0 {
			m.SetReg(x86.EDX, 0xffffffff)
		} else {
			m.SetReg(x86.EDX, 0)
		}
	case x86.XLAT:
		v, lerr := m.load(m.Reg(x86.EBX)+m.Reg(x86.AL), 1)
		if lerr != nil {
			return nil, -1, lerr
		}
		m.SetReg(x86.AL, v)

	case x86.MOV:
		v, gerr := m.getOp(a1)
		if gerr != nil {
			return nil, -1, gerr
		}
		return nil, -1, m.setOp(a0, v)
	case x86.LEA:
		m.SetReg(a0.Reg, m.ea(a1.Mem))
	case x86.MOVZX:
		v, gerr := m.getOp(a1)
		if gerr != nil {
			return nil, -1, gerr
		}
		mask, _ := widthMask(widthOf(a1))
		m.SetReg(a0.Reg, v&mask)
	case x86.MOVSX:
		v, gerr := m.getOp(a1)
		if gerr != nil {
			return nil, -1, gerr
		}
		if widthOf(a1) == 1 {
			m.SetReg(a0.Reg, uint32(int32(int8(v))))
		} else {
			m.SetReg(a0.Reg, uint32(int32(int16(v))))
		}
	case x86.XCHG:
		v0, e0 := m.getOp(a0)
		if e0 != nil {
			return nil, -1, e0
		}
		v1, e1 := m.getOp(a1)
		if e1 != nil {
			return nil, -1, e1
		}
		if err := m.setOp(a0, v1); err != nil {
			return nil, -1, err
		}
		return nil, -1, m.setOp(a1, v0)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST:
		va, e0 := m.getOp(a0)
		if e0 != nil {
			return nil, -1, e0
		}
		vb, e1 := m.getOp(a1)
		if e1 != nil {
			return nil, -1, e1
		}
		w := widthOf(a0)
		var r uint32
		writeBack := true
		switch in.Op {
		case x86.ADD:
			r = m.addFlags(va, vb, w)
		case x86.ADC:
			c := uint32(0)
			if m.CF {
				c = 1
			}
			r = m.addFlags(va, vb+c, w)
		case x86.SUB:
			r = m.subFlags(va, vb, w)
		case x86.SBB:
			c := uint32(0)
			if m.CF {
				c = 1
			}
			r = m.subFlags(va, vb+c, w)
		case x86.AND:
			r = va & vb
			m.setFlagsLogic(r, w)
		case x86.OR:
			r = va | vb
			m.setFlagsLogic(r, w)
		case x86.XOR:
			r = va ^ vb
			m.setFlagsLogic(r, w)
		case x86.CMP:
			m.subFlags(va, vb, w)
			writeBack = false
		case x86.TEST:
			m.setFlagsLogic(va&vb, w)
			writeBack = false
		}
		if writeBack {
			return nil, -1, m.setOp(a0, r)
		}
	case x86.NOT:
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		return nil, -1, m.setOp(a0, ^v)
	case x86.NEG:
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		r := m.subFlags(0, v, widthOf(a0))
		return nil, -1, m.setOp(a0, r)
	case x86.INC, x86.DEC:
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		// INC/DEC preserve CF.
		cf := m.CF
		var r uint32
		if in.Op == x86.INC {
			r = m.addFlags(v, 1, widthOf(a0))
		} else {
			r = m.subFlags(v, 1, widthOf(a0))
		}
		m.CF = cf
		return nil, -1, m.setOp(a0, r)
	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		v, e0 := m.getOp(a0)
		if e0 != nil {
			return nil, -1, e0
		}
		amt, e1 := m.getOp(a1)
		if e1 != nil {
			return nil, -1, e1
		}
		w := widthOf(a0)
		mask, _ := widthMask(w)
		bits := uint32(w * 8)
		amt &= 31
		var r uint32
		switch in.Op {
		case x86.SHL:
			r = v << amt
		case x86.SHR:
			r = (v & mask) >> amt
		case x86.SAR:
			switch w {
			case 1:
				r = uint32(int32(int8(v)) >> amt)
			case 2:
				r = uint32(int32(int16(v)) >> amt)
			default:
				r = uint32(int32(v) >> amt)
			}
		case x86.ROL:
			s := amt % bits
			r = v<<s | (v&mask)>>(bits-s)
		case x86.ROR:
			s := amt % bits
			r = (v&mask)>>s | v<<(bits-s)
		}
		if amt != 0 {
			m.setFlagsLogic(r, w)
		}
		return nil, -1, m.setOp(a0, r&mask)

	case x86.MUL:
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		prod := uint64(m.Reg(x86.EAX)) * uint64(v)
		m.SetReg(x86.EAX, uint32(prod))
		m.SetReg(x86.EDX, uint32(prod>>32))
	case x86.IMUL:
		switch in.NArgs() {
		case 1:
			v, gerr := m.getOp(a0)
			if gerr != nil {
				return nil, -1, gerr
			}
			prod := int64(int32(m.Reg(x86.EAX))) * int64(int32(v))
			m.SetReg(x86.EAX, uint32(prod))
			m.SetReg(x86.EDX, uint32(uint64(prod)>>32))
		case 2:
			v, gerr := m.getOp(a1)
			if gerr != nil {
				return nil, -1, gerr
			}
			m.SetReg(a0.Reg, uint32(int32(m.Reg(a0.Reg))*int32(v)))
		default:
			v, gerr := m.getOp(a1)
			if gerr != nil {
				return nil, -1, gerr
			}
			m.SetReg(a0.Reg, uint32(int32(v)*int32(a2.Imm)))
		}

	case x86.PUSH:
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		m.push(v)
	case x86.POP:
		v, perr := m.pop()
		if perr != nil {
			return nil, -1, perr
		}
		return nil, -1, m.setOp(a0, v)
	case x86.PUSHAD:
		sp := m.Regs[x86.ESP.Num()]
		for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX} {
			m.push(m.Reg(r))
		}
		m.push(sp)
		for _, r := range []x86.Reg{x86.EBP, x86.ESI, x86.EDI} {
			m.push(m.Reg(r))
		}
	case x86.POPAD:
		for _, r := range []x86.Reg{x86.EDI, x86.ESI, x86.EBP} {
			v, perr := m.pop()
			if perr != nil {
				return nil, -1, perr
			}
			m.SetReg(r, v)
		}
		if _, perr := m.pop(); perr != nil { // discarded esp image
			return nil, -1, perr
		}
		for _, r := range []x86.Reg{x86.EBX, x86.EDX, x86.ECX, x86.EAX} {
			v, perr := m.pop()
			if perr != nil {
				return nil, -1, perr
			}
			m.SetReg(r, v)
		}
	case x86.PUSHFD:
		m.push(0) // flags image not needed by our workloads
	case x86.POPFD:
		if _, perr := m.pop(); perr != nil {
			return nil, -1, perr
		}

	case x86.JMP:
		if in.HasTarget {
			return nil, in.Target, nil
		}
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		return nil, int(v), nil
	case x86.JCC:
		if m.cond(in.Cond) {
			return nil, in.Target, nil
		}
	case x86.LOOP:
		c := m.Reg(x86.ECX) - 1
		m.SetReg(x86.ECX, c)
		if c != 0 {
			return nil, in.Target, nil
		}
	case x86.LOOPE:
		c := m.Reg(x86.ECX) - 1
		m.SetReg(x86.ECX, c)
		if c != 0 && m.ZF {
			return nil, in.Target, nil
		}
	case x86.LOOPNE:
		c := m.Reg(x86.ECX) - 1
		m.SetReg(x86.ECX, c)
		if c != 0 && !m.ZF {
			return nil, in.Target, nil
		}
	case x86.JECXZ:
		if m.Reg(x86.ECX) == 0 {
			return nil, in.Target, nil
		}
	case x86.CALL:
		m.push(uint32(next))
		if in.HasTarget {
			return nil, in.Target, nil
		}
		v, gerr := m.getOp(a0)
		if gerr != nil {
			return nil, -1, gerr
		}
		return nil, int(v), nil
	case x86.RET:
		v, perr := m.pop()
		if perr != nil {
			return &Stop{Kind: StopRet}, -1, nil
		}
		return nil, int(v), nil

	case x86.INT:
		if a0.Imm == 0x80 {
			return &Stop{Kind: StopSyscall, Sysnum: m.Reg(x86.EAX)}, -1, nil
		}
		return nil, -1, fmt.Errorf("%w: int %#x", ErrUnsupported, a0.Imm)
	case x86.INT3, x86.INTO, x86.HLT:
		return &Stop{Kind: StopRet}, -1, nil

	case x86.SETCC:
		v := uint32(0)
		if m.cond(in.Cond) {
			v = 1
		}
		return nil, -1, m.setOp(a0, v)
	case x86.CMOVCC:
		if m.cond(in.Cond) {
			v, gerr := m.getOp(a1)
			if gerr != nil {
				return nil, -1, gerr
			}
			m.SetReg(a0.Reg, v)
		}
	case x86.BSWAP:
		v := m.Reg(a0.Reg)
		m.SetReg(a0.Reg, v<<24|v>>24|(v&0xff00)<<8|(v>>8)&0xff00)

	case x86.STOSB:
		if err := m.store(m.Reg(x86.EDI), 1, m.Reg(x86.AL)); err != nil {
			return nil, -1, err
		}
		m.stringStep(x86.EDI, 1)
	case x86.STOSD:
		if err := m.store(m.Reg(x86.EDI), 4, m.Reg(x86.EAX)); err != nil {
			return nil, -1, err
		}
		m.stringStep(x86.EDI, 4)
	case x86.LODSB:
		v, lerr := m.load(m.Reg(x86.ESI), 1)
		if lerr != nil {
			return nil, -1, lerr
		}
		m.SetReg(x86.AL, v)
		m.stringStep(x86.ESI, 1)
	case x86.LODSD:
		v, lerr := m.load(m.Reg(x86.ESI), 4)
		if lerr != nil {
			return nil, -1, lerr
		}
		m.SetReg(x86.EAX, v)
		m.stringStep(x86.ESI, 4)
	case x86.MOVSB:
		v, lerr := m.load(m.Reg(x86.ESI), 1)
		if lerr != nil {
			return nil, -1, lerr
		}
		if err := m.store(m.Reg(x86.EDI), 1, v); err != nil {
			return nil, -1, err
		}
		m.stringStep(x86.ESI, 1)
		m.stringStep(x86.EDI, 1)

	default:
		return nil, -1, fmt.Errorf("%w: %v", ErrUnsupported, in)
	}
	return nil, jump, nil
}

// stringStep advances a string-op register according to DF.
func (m *Machine) stringStep(r x86.Reg, n uint32) {
	if m.DF {
		m.SetReg(r, m.Reg(r)-n)
	} else {
		m.SetReg(r, m.Reg(r)+n)
	}
}
