package emu

import (
	"testing"

	"semnids/internal/x86"
)

// runSink executes code and returns the machine at its first stop.
func runSink(t *testing.T, code []byte) *Machine {
	t.Helper()
	m := New(code)
	if _, err := m.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestSinkDataMovement(t *testing.T) {
	// movzx/movsx through memory, bswap, cmov both ways, setcc.
	code := x86.NewAsm().
		// A byte in the image to load through memory operands: place
		// data at a known label reachable via getpc.
		JmpShort("start").
		Label("data").Raw(0x80, 0x01, 0x02, 0x03).
		Label("start").
		// getpc for the data: call pushes the address of "after".
		Call("after").
		Label("after").
		PopR(x86.ESI).
		SubRI(x86.ESI, 9). // back to "data" (call imm32 is 5 + pop 1 + sub 3)
		I(x86.MOVZX, x86.RegOp(x86.EAX), x86.MemOp(x86.MemRef{Base: x86.ESI, Size: 1, Scale: 1})).
		I(x86.MOVSX, x86.RegOp(x86.EBX), x86.MemOp(x86.MemRef{Base: x86.ESI, Size: 1, Scale: 1})).
		I(x86.BSWAP, x86.RegOp(x86.EAX)).
		I(x86.CMP, x86.RegOp(x86.EAX), x86.RegOp(x86.EAX)).
		Inst(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondE,
			Args: [3]x86.Operand{x86.RegOp(x86.ECX), x86.RegOp(x86.EBX)}}). // taken: equal
		Inst(x86.Inst{Op: x86.SETCC, Cond: x86.CondNE,
			Args: [3]x86.Operand{x86.RegOp(x86.DL)}}). // 0: not-equal is false
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	if got := m.Reg(x86.EAX); got != 0x80000000 {
		t.Errorf("movzx+bswap: eax=%#x, want 0x80000000", got)
	}
	if got := m.Reg(x86.EBX); got != 0xffffff80 {
		t.Errorf("movsx: ebx=%#x, want 0xffffff80", got)
	}
	if m.Reg(x86.ECX) != m.Reg(x86.EBX) {
		t.Errorf("cmove not taken: ecx=%#x", m.Reg(x86.ECX))
	}
	if m.Reg(x86.DL) != 0 {
		t.Errorf("setne: dl=%#x, want 0", m.Reg(x86.DL))
	}
}

func TestSinkRotatesAndShifts(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EAX, 0x80000001).
		I(x86.ROL, x86.RegOp(x86.EAX), x86.ImmOp(1)). // 3
		MovRI(x86.EBX, 0x2).
		I(x86.ROR, x86.RegOp(x86.EBX), x86.ImmOp(2)). // 0x80000000
		MovRI(x86.ECX, -8).
		I(x86.SAR, x86.RegOp(x86.ECX), x86.ImmOp(1)). // -4
		MovRI(x86.EDX, 0x10).
		I(x86.SHR, x86.RegOp(x86.EDX), x86.ImmOp(4)). // 1
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	for _, c := range []struct {
		r    x86.Reg
		want uint32
	}{
		{x86.EAX, 3}, {x86.EBX, 0x80000000},
		{x86.ECX, 0xfffffffc}, {x86.EDX, 1},
	} {
		if got := m.Reg(c.r); got != c.want {
			t.Errorf("%v = %#x, want %#x", c.r, got, c.want)
		}
	}
}

func TestSinkPushadPopad(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EAX, 0x11).
		MovRI(x86.EBX, 0x22).
		I(x86.PUSHAD).
		MovRI(x86.EAX, 0x99).
		MovRI(x86.EBX, 0x99).
		I(x86.POPAD).
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	if m.Reg(x86.EAX) != 0x11 || m.Reg(x86.EBX) != 0x22 {
		t.Errorf("popad restore: eax=%#x ebx=%#x", m.Reg(x86.EAX), m.Reg(x86.EBX))
	}
}

func TestSinkStringOps(t *testing.T) {
	// stosb forward then backward (DF), lodsb, movsb: copy a byte
	// within the image. Build a small writable scratch area inline.
	code := x86.NewAsm().
		JmpShort("go").
		Label("buf").Raw(0xaa, 0xbb, 0xcc, 0xdd).
		Label("go").
		Call("here").
		Label("here").
		PopR(x86.EDI).
		SubRI(x86.EDI, 9). // &buf
		MovRR(x86.ESI, x86.EDI).
		I(x86.CLD).
		MovRI(x86.EAX, 0x41).
		I(x86.STOSB). // buf[0]=0x41, edi++
		I(x86.LODSB). // al = buf[0] = 0x41, esi++
		I(x86.MOVSB). // buf[1] -> buf[1]?? esi=buf+1 -> edi=buf+1
		I(x86.STD).
		I(x86.STOSB). // buf[2]=al (edi was buf+2), edi--
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	// Locate buf: it is at offset 2 (after the 2-byte jmp).
	if m.Mem[2] != 0x41 {
		t.Errorf("stosb: buf[0]=%#x", m.Mem[2])
	}
	if m.Reg(x86.AL) != 0x41 {
		t.Errorf("lodsb: al=%#x", m.Reg(x86.AL))
	}
	if m.Mem[4] != 0x41 {
		t.Errorf("std stosb: buf[2]=%#x", m.Mem[4])
	}
}

func TestSinkMulIMul(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EAX, 0x10000).
		MovRI(x86.ECX, 0x10000).
		I(x86.MUL, x86.RegOp(x86.ECX)). // edx:eax = 2^32
		MovRR(x86.EBX, x86.EDX).
		MovRI(x86.ESI, -3).
		I(x86.IMUL, x86.RegOp(x86.ESI), x86.RegOp(x86.ESI)). // 9
		Inst(x86.Inst{Op: x86.IMUL, Args: [3]x86.Operand{
			x86.RegOp(x86.EDI), x86.RegOp(x86.ESI), x86.ImmOp(-2)}}). // -18
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	if m.Reg(x86.EBX) != 1 {
		t.Errorf("mul high dword: %#x", m.Reg(x86.EBX))
	}
	if m.Reg(x86.ESI) != 9 {
		t.Errorf("imul 2-op: %#x", m.Reg(x86.ESI))
	}
	if int32(m.Reg(x86.EDI)) != -18 {
		t.Errorf("imul 3-op: %d", int32(m.Reg(x86.EDI)))
	}
}

func TestSinkXlatAndSalc(t *testing.T) {
	code := x86.NewAsm().
		JmpShort("go").
		Label("table").Raw(0x10, 0x20, 0x30, 0x40).
		Label("go").
		Call("here").
		Label("here").
		PopR(x86.EBX).
		SubRI(x86.EBX, 9). // &table
		MovRI(x86.EAX, 2).
		I(x86.XLAT). // al = table[2] = 0x30
		I(x86.STC).
		I(x86.SALC). // al = 0xff
		MovRR(x86.ECX, x86.EAX).
		I(x86.CLC).
		I(x86.SALC). // al = 0
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	if m.Reg(x86.CL) != 0xff {
		t.Errorf("salc with CF: cl=%#x", m.Reg(x86.CL))
	}
	if m.Reg(x86.AL) != 0 {
		t.Errorf("salc without CF: al=%#x", m.Reg(x86.AL))
	}
}

func TestSinkAdcSbb(t *testing.T) {
	code := x86.NewAsm().
		MovRI(x86.EAX, 0xffffffff).
		AddRI(x86.EAX, 1). // CF=1, eax=0
		MovRI(x86.EBX, 5).
		I(x86.ADC, x86.RegOp(x86.EBX), x86.ImmOp(0)). // 6
		I(x86.CMP, x86.RegOp(x86.EAX), x86.ImmOp(1)). // 0-1: CF=1
		MovRI(x86.ECX, 10).
		I(x86.SBB, x86.RegOp(x86.ECX), x86.ImmOp(0)). // 9
		IntN(0x80).
		MustBytes()
	m := runSink(t, code)
	if m.Reg(x86.EBX) != 6 {
		t.Errorf("adc: ebx=%d, want 6", m.Reg(x86.EBX))
	}
	if m.Reg(x86.ECX) != 9 {
		t.Errorf("sbb: ecx=%d, want 9", m.Reg(x86.ECX))
	}
}
