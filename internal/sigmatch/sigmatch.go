// Package sigmatch is the syntactic baseline the paper argues against:
// a Snort/Bro-style static byte-signature matcher, implemented as an
// Aho-Corasick automaton over multiple patterns. It detects known
// cleartext exploits efficiently but is blind to polymorphic variants,
// which is the motivating comparison for the semantic approach.
package sigmatch

import "container/list"

// Signature is one named byte pattern.
type Signature struct {
	Name    string
	Pattern []byte
}

// node is one Aho-Corasick trie state.
type node struct {
	next [256]*node
	fail *node
	out  []string
}

// Matcher is an immutable compiled signature set, safe for concurrent
// use.
type Matcher struct {
	root *node
	n    int
}

// NewMatcher compiles the signatures into an automaton.
func NewMatcher(sigs []Signature) *Matcher {
	root := &node{}
	count := 0
	for _, s := range sigs {
		if len(s.Pattern) == 0 {
			continue
		}
		cur := root
		for _, b := range s.Pattern {
			if cur.next[b] == nil {
				cur.next[b] = &node{}
			}
			cur = cur.next[b]
		}
		cur.out = append(cur.out, s.Name)
		count++
	}
	// BFS to build failure links.
	root.fail = root
	queue := list.New()
	for b := 0; b < 256; b++ {
		if c := root.next[b]; c != nil {
			c.fail = root
			queue.PushBack(c)
		} else {
			root.next[b] = root
		}
	}
	for queue.Len() > 0 {
		cur := queue.Remove(queue.Front()).(*node)
		for b := 0; b < 256; b++ {
			c := cur.next[b]
			if c == nil {
				cur.next[b] = cur.fail.next[b]
				continue
			}
			c.fail = cur.fail.next[b]
			c.out = append(c.out, c.fail.out...)
			queue.PushBack(c)
		}
	}
	return &Matcher{root: root, n: count}
}

// Len reports the number of compiled signatures.
func (m *Matcher) Len() int { return m.n }

// Match scans data and returns the names of all matching signatures
// (deduplicated, in first-match order).
func (m *Matcher) Match(data []byte) []string {
	var out []string
	seen := map[string]bool{}
	cur := m.root
	for _, b := range data {
		cur = cur.next[b]
		for _, name := range cur.out {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

// DefaultSignatures is a plausible 2006-era signature set for the
// attacks in our corpus — static byte sequences from the cleartext
// payloads.
func DefaultSignatures() []Signature {
	return []Signature{
		// The canonical execve trigger bytes: mov al,0xb ; int 0x80.
		{Name: "shellcode-execve", Pattern: []byte{0xb0, 0x0b, 0xcd, 0x80}},
		// push "//sh" ; push "/bin" stack string construction.
		{Name: "shellcode-binsh-push", Pattern: []byte{0x68, 0x2f, 0x2f, 0x73, 0x68, 0x68, 0x2f, 0x62, 0x69, 0x6e}},
		// Literal /bin/sh string.
		{Name: "binsh-string", Pattern: []byte("/bin/sh")},
		// Classic x86 NOP sled.
		{Name: "nop-sled", Pattern: []byte{0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90}},
		// Code Red II URL prefix.
		{Name: "code-red-ida", Pattern: []byte("/default.ida?XXXXXXXXXXXXXXXX")},
	}
}
