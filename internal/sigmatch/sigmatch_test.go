package sigmatch

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"semnids/internal/exploits"
	"semnids/internal/polymorph"
	"semnids/internal/shellcode"
)

func TestBasicMatching(t *testing.T) {
	m := NewMatcher([]Signature{
		{Name: "a", Pattern: []byte("abc")},
		{Name: "b", Pattern: []byte("bcd")},
		{Name: "c", Pattern: []byte{0x00, 0x01}},
	})
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	got := m.Match([]byte("xxabcdyy"))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("overlapping match = %v", got)
	}
	if got := m.Match([]byte("nothing here")); len(got) != 0 {
		t.Errorf("spurious match: %v", got)
	}
	if got := m.Match([]byte{0xff, 0x00, 0x01, 0xff}); len(got) != 1 || got[0] != "c" {
		t.Errorf("binary match = %v", got)
	}
}

func TestMatchDeduplicates(t *testing.T) {
	m := NewMatcher([]Signature{{Name: "x", Pattern: []byte("ab")}})
	if got := m.Match([]byte("ababab")); len(got) != 1 {
		t.Errorf("duplicated matches: %v", got)
	}
}

func TestEmptyPatternIgnored(t *testing.T) {
	m := NewMatcher([]Signature{{Name: "e", Pattern: nil}, {Name: "x", Pattern: []byte("q")}})
	if m.Len() != 1 {
		t.Errorf("empty pattern counted: %d", m.Len())
	}
}

func TestDetectsCleartextExploits(t *testing.T) {
	m := NewMatcher(DefaultSignatures())
	for _, e := range exploits.Table1Exploits() {
		if len(m.Match(e.Payload)) == 0 {
			t.Errorf("%s: cleartext exploit not matched by static signatures", e.Name)
		}
	}
	if len(m.Match(exploits.CodeRedIIRequest())) == 0 {
		t.Error("Code Red II request not matched")
	}
}

// TestSyntacticBaselineMissesPolymorphs is the paper's core argument:
// static signatures fail on polymorphic variants that the semantic
// templates catch.
func TestSyntacticBaselineMissesPolymorphs(t *testing.T) {
	m := NewMatcher(DefaultSignatures())
	payload := shellcode.ClassicPush().Bytes
	if len(m.Match(payload)) == 0 {
		t.Fatal("baseline must match the cleartext payload")
	}
	eng := polymorph.NewADMmutate(42)
	missed := 0
	for i := 0; i < 100; i++ {
		sample, _, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Exclude incidental hits on the generic NOP-sled signature:
		// ADMmutate's whole point is a *variant* sled, so a 0x90-run
		// signature should not fire either; verify and count misses
		// of the shellcode-specific signatures.
		hits := m.Match(sample)
		specific := false
		for _, h := range hits {
			if h != "nop-sled" {
				specific = true
			}
		}
		if !specific {
			missed++
		}
	}
	if missed < 95 {
		t.Errorf("static signatures matched %d/100 polymorphic samples; they should miss nearly all", 100-missed)
	}
}

func TestBenignTextNoMatches(t *testing.T) {
	m := NewMatcher(DefaultSignatures())
	text := strings.Repeat("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n", 50)
	if got := m.Match([]byte(text)); len(got) != 0 {
		t.Errorf("benign matched: %v", got)
	}
}

// Property: the automaton agrees with naive bytes.Contains search.
func TestMatchesAgreeWithNaiveSearch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sigs := []Signature{
		{Name: "s1", Pattern: []byte{1, 2, 3}},
		{Name: "s2", Pattern: []byte{2, 3}},
		{Name: "s3", Pattern: []byte{3, 2, 1, 0}},
		{Name: "s4", Pattern: []byte("ab")},
	}
	m := NewMatcher(sigs)
	prop := func() bool {
		n := r.Intn(300)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(6)) // small alphabet for collisions
		}
		got := map[string]bool{}
		for _, name := range m.Match(b) {
			got[name] = true
		}
		for _, s := range sigs {
			want := bytes.Contains(b, s.Pattern)
			if got[s.Name] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
