package extract

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLongestRun(t *testing.T) {
	cases := []struct {
		in          string
		start, long int
	}{
		{"", 0, 0},
		{"a", 0, 1},
		{"aabbbcc", 2, 3},
		{"xxxxy", 0, 4},
		{"abc", 0, 1},
	}
	for _, c := range cases {
		s, l := LongestRun([]byte(c.in))
		if s != c.start || l != c.long {
			t.Errorf("LongestRun(%q) = (%d,%d), want (%d,%d)", c.in, s, l, c.start, c.long)
		}
	}
}

func TestDecodePercentU(t *testing.T) {
	got := DecodePercentU([]byte("%u9090%ucbd3%u7801"))
	want := []byte{0x90, 0x90, 0xd3, 0xcb, 0x01, 0x78}
	if !bytes.Equal(got, want) {
		t.Errorf("decode = % x, want % x", got, want)
	}
	// Plain %xx escapes.
	got = DecodePercentU([]byte("%41%42%43"))
	if string(got) != "ABC" {
		t.Errorf("percent decode = %q", got)
	}
	// Invalid escapes pass through.
	got = DecodePercentU([]byte("%zz%u12g4x"))
	if string(got) != "%zz%u12g4x" {
		t.Errorf("passthrough = %q", got)
	}
	// Truncated escape at the end of input.
	got = DecodePercentU([]byte("ab%u12"))
	if string(got) != "ab%u12" {
		t.Errorf("truncated = %q", got)
	}
}

func TestBenignHTTPNoFrames(t *testing.T) {
	reqs := []string{
		"GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: test\r\n\r\n",
		"POST /cgi-bin/form HTTP/1.0\r\nContent-Length: 11\r\n\r\nname=value1",
		"GET /a/very/long/but/normal/path/with/segments/image.png?x=1&y=2 HTTP/1.1\r\n\r\n",
		"HEAD / HTTP/1.0\r\n\r\n",
	}
	for _, r := range reqs {
		if frames := Extract([]byte(r)); len(frames) != 0 {
			t.Errorf("benign request produced %d frames: %q", len(frames), r[:30])
		}
	}
}

func TestCodeRedStyleExtraction(t *testing.T) {
	// A Code Red II-like request: filler Xs then %u-encoded binary.
	req := "GET /default.ida?" + strings.Repeat("X", 224) +
		"%u9090%u6858%ucbd3%u7801%u9090%u6858%ucbd3%u7801" +
		"%u9090%u9090%u8190%u00c3=a HTTP/1.0\r\n\r\n"
	frames := Extract([]byte(req))
	if len(frames) == 0 {
		t.Fatal("no frames extracted from Code Red style request")
	}
	f := frames[0]
	if f.Source != "http-unicode" {
		t.Errorf("source = %q, want http-unicode", f.Source)
	}
	if !bytes.Contains(f.Data, []byte{0xd3, 0xcb, 0x01, 0x78}) {
		t.Errorf("decoded frame lacks the msvcrt address: % x", f.Data[:16])
	}
	// The HTTP/1.0 tag must have been stripped before decoding.
	if bytes.Contains(f.Data, []byte("HTTP/")) {
		t.Error("protocol tag leaked into the binary frame")
	}
}

func TestGenericOverflowURLExtraction(t *testing.T) {
	code := []byte{0x31, 0xc0, 0x50, 0x68, 0x2f, 0x2f, 0x73, 0x68,
		0x68, 0x2f, 0x62, 0x69, 0x6e, 0x89, 0xe3, 0xcd, 0x80}
	req := append([]byte("GET /vuln.cgi?arg="+strings.Repeat("A", 64)), code...)
	req = append(req, []byte(" HTTP/1.0\r\n\r\n")...)
	frames := Extract(req)
	if len(frames) == 0 {
		t.Fatal("no frames from overflow URL")
	}
	if !bytes.Contains(frames[0].Data, []byte{0xcd, 0x80}) {
		t.Errorf("injected code not in frame: % x", frames[0].Data)
	}
}

func TestHTTPBodyBinaryExtraction(t *testing.T) {
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(0x80 + i%0x70)
	}
	req := append([]byte("POST /upload HTTP/1.1\r\nContent-Length: 256\r\n\r\n"), body...)
	frames := Extract(req)
	found := false
	for _, f := range frames {
		if f.Source == "http-body" && bytes.Contains(f.Data, body[:32]) {
			found = true
		}
	}
	if !found {
		t.Errorf("binary POST body not extracted (frames: %d)", len(frames))
	}
}

func TestRawBinaryExtraction(t *testing.T) {
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames := Extract(payload)
	if len(frames) != 1 || frames[0].Source != "raw-binary" {
		t.Fatalf("raw binary: %+v", frames)
	}
}

func TestTextProtocolWithFillerExtraction(t *testing.T) {
	// FTP-style overflow: textual command, long filler, then code.
	code := bytes.Repeat([]byte{0x90}, 16)
	code = append(code, 0x31, 0xc0, 0xcd, 0x80, 0xe8, 0x00, 0x00, 0x00, 0x00,
		0x5b, 0x89, 0xd8, 0xcd, 0x80, 0xc3, 0x90, 0x90, 0x90, 0x90, 0x90,
		0x90, 0x90, 0x90, 0x90, 0x90)
	payload := append([]byte("USER "+strings.Repeat("A", 120)), code...)
	frames := Extract(payload)
	if len(frames) == 0 {
		t.Fatal("no frames from text protocol overflow")
	}
}

func TestTextProtocolRecognition(t *testing.T) {
	// FTP/IMAP/POP3 command streams are recognized; their frames are
	// labeled text-proto rather than generic raw-binary.
	code := bytes.Repeat([]byte{0x90}, 32)
	code = append(code, 0x31, 0xc0, 0xcd, 0x80)
	cases := [][]byte{
		append([]byte("USER "+strings.Repeat("A", 60)), code...),
		append([]byte("a001 LOGIN "+strings.Repeat("B", 60)+" "), code...),
		append([]byte("PASS "+strings.Repeat("C", 60)), code...),
		append([]byte("APOP user "+strings.Repeat("D", 60)), code...),
	}
	for i, payload := range cases {
		frames := Extract(payload)
		if len(frames) != 1 || frames[i%1].Source != "text-proto" {
			t.Errorf("case %d: frames=%v", i, frames)
			continue
		}
		if !bytes.Contains(frames[0].Data, []byte{0xcd, 0x80}) {
			t.Errorf("case %d: code not in frame", i)
		}
	}
}

func TestTextProtocolBenignCommands(t *testing.T) {
	benign := []string{
		"USER anonymous\r\n",
		"PASS guest@example.org\r\n",
		"RETR pub/file.txt\r\n",
		"a001 LOGIN alice secretpassword\r\n",
		"a002 SELECT INBOX\r\n",
		"APOP alice c4c9334bac560ecc979e58001b3e22fb\r\n",
		"SITE CHMOD 644 file\r\n",
	}
	for _, s := range benign {
		if frames := Extract([]byte(s)); len(frames) != 0 {
			t.Errorf("benign command extracted: %q -> %v", s, frames)
		}
	}
}

func TestHTTPResponseBodySkipped(t *testing.T) {
	// Declared binary response bodies are protocol-conformant: no
	// frames even for high-entropy content.
	body := make([]byte, 2048)
	for i := range body {
		body[i] = byte(i*7 + i>>3)
	}
	resp := append([]byte("HTTP/1.1 200 OK\r\nContent-Type: image/jpeg\r\nContent-Length: 2048\r\n\r\n"), body...)
	if frames := Extract(resp); len(frames) != 0 {
		t.Errorf("response body extracted: %v", frames)
	}
}

func TestHTTPResponseHeaderAnomaly(t *testing.T) {
	// An overflow in a header value (server-side exploit response) is
	// still extracted.
	code := bytes.Repeat([]byte{0x90}, 48)
	resp := append([]byte("HTTP/1.1 200 OK\r\nServer: "+strings.Repeat("Z", 64)), code...)
	resp = append(resp, []byte("\r\n\r\nbody")...)
	frames := Extract(resp)
	if len(frames) != 1 || frames[0].Source != "http-resp-header" {
		t.Fatalf("header anomaly: %v", frames)
	}
}

func TestBenignTextNoFrames(t *testing.T) {
	texts := []string{
		"USER anonymous\r\nPASS guest@example.com\r\nLIST\r\n",
		"EHLO mail.example.com\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<d@e.f>\r\n",
		strings.Repeat("Normal sentence with words. ", 40),
	}
	for _, s := range texts {
		if frames := Extract([]byte(s)); len(frames) != 0 {
			t.Errorf("benign text produced frames: %q...", s[:20])
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if Extract(nil) != nil {
		t.Error("nil payload produced frames")
	}
	if Extract([]byte("hi")) != nil {
		t.Error("tiny payload produced frames")
	}
}

func TestFrameCap(t *testing.T) {
	huge := make([]byte, MaxFrameBytes*2)
	for i := range huge {
		huge[i] = 0x90
	}
	frames := Extract(huge)
	for _, f := range frames {
		if len(f.Data) > MaxFrameBytes {
			t.Errorf("frame exceeds cap: %d", len(f.Data))
		}
	}
}

// Property: DecodePercentU never panics and never grows the input.
func TestDecodeNeverGrows(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	prop := func() bool {
		n := r.Intn(300)
		b := make([]byte, n)
		for i := range b {
			// Bias toward '%' and hex digits to hit escape paths.
			switch r.Intn(4) {
			case 0:
				b[i] = '%'
			case 1:
				b[i] = "0123456789abcdefu"[r.Intn(17)]
			default:
				b[i] = byte(r.Intn(256))
			}
		}
		return len(DecodePercentU(b)) <= len(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Extract never panics on arbitrary payloads and respects
// the frame cap.
func TestExtractRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	prop := func() bool {
		n := r.Intn(2048)
		b := make([]byte, n)
		r.Read(b)
		if r.Intn(3) == 0 {
			copy(b, "GET /")
		}
		for _, f := range Extract(b) {
			if len(f.Data) > MaxFrameBytes || f.Offset < 0 || f.Offset > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
