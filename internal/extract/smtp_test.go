package extract

import (
	"bytes"
	"encoding/base64"
	"strings"
	"testing"
)

func mimeMail(attachment []byte) []byte {
	enc := base64.StdEncoding.EncodeToString(attachment)
	var b strings.Builder
	b.WriteString("MAIL FROM:<a@b.c>\r\nRCPT TO:<d@e.f>\r\nDATA\r\n" +
		"Subject: hello\r\nMIME-Version: 1.0\r\n" +
		"Content-Type: multipart/mixed; boundary=\"xx\"\r\n\r\n" +
		"--xx\r\nContent-Type: text/plain\r\n\r\nsee attachment\r\n" +
		"--xx\r\nContent-Type: application/octet-stream\r\n" +
		"Content-Transfer-Encoding: base64\r\n\r\n")
	for off := 0; off < len(enc); off += 76 {
		end := off + 76
		if end > len(enc) {
			end = len(enc)
		}
		b.WriteString(enc[off:end])
		b.WriteString("\r\n")
	}
	b.WriteString("--xx--\r\n.\r\nQUIT\r\n")
	return []byte(b.String())
}

func TestSMTPAttachmentExtracted(t *testing.T) {
	// An MZ-headed binary blob must be decoded and forwarded.
	payload := append([]byte("MZ\x90\x00"), bytes.Repeat([]byte{0xcc, 0x31, 0xc0, 0x40}, 64)...)
	frames := Extract(mimeMail(payload))
	if len(frames) != 1 {
		t.Fatalf("%d frames, want 1", len(frames))
	}
	f := frames[0]
	if f.Source != "smtp-attachment" {
		t.Errorf("source = %q", f.Source)
	}
	if !bytes.Equal(f.Data, payload) {
		t.Errorf("decoded attachment mismatch: got %d bytes, want %d", len(f.Data), len(payload))
	}
}

func TestSMTPTextAttachmentIgnored(t *testing.T) {
	// A base64 attachment that decodes to plain text is not code.
	text := bytes.Repeat([]byte("just a plain text document, nothing else. "), 20)
	frames := Extract(mimeMail(text))
	if len(frames) != 0 {
		t.Errorf("text attachment extracted: %d frames", len(frames))
	}
}

func TestSMTPNoAttachment(t *testing.T) {
	mail := []byte("EHLO x\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<d@e.f>\r\nDATA\r\n" +
		"Subject: plain\r\n\r\nhello world\r\n.\r\nQUIT\r\n")
	if frames := Extract(mail); len(frames) != 0 {
		t.Errorf("plain mail extracted: %d frames", len(frames))
	}
}

func TestSMTPMultipleAttachments(t *testing.T) {
	bin := append([]byte{0x7f}, []byte("ELF")...)
	bin = append(bin, bytes.Repeat([]byte{0x90, 0x31, 0xdb}, 32)...)
	one := mimeMail(bin)
	// Concatenate two messages in one stream.
	both := append(append([]byte{}, one...), one...)
	frames := Extract(both)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2", len(frames))
	}
	if frames[0].Offset == frames[1].Offset {
		t.Error("frames share an offset")
	}
}

func TestSMTPCorruptBase64(t *testing.T) {
	mail := []byte("MAIL FROM:<a@b.c>\r\nDATA\r\n" +
		"Content-Transfer-Encoding: base64\r\n\r\n" +
		"!!!not base64 at all!!!\r\n.\r\n")
	if frames := Extract(mail); len(frames) != 0 {
		t.Errorf("corrupt base64 extracted: %d frames", len(frames))
	}
}

func TestSMTPTruncatedHeader(t *testing.T) {
	mail := []byte("MAIL FROM:<a@b.c>\r\nDATA\r\nContent-Transfer-Encoding: base64")
	if frames := Extract(mail); len(frames) != 0 {
		t.Errorf("truncated mail extracted: %d frames", len(frames))
	}
}

func TestBase64Run(t *testing.T) {
	clean, raw := base64Run([]byte("QUJD\r\nREVG\r\n--boundary"))
	if string(clean) != "QUJDREVG" {
		t.Errorf("clean = %q", clean)
	}
	if raw != 12 {
		t.Errorf("rawLen = %d, want 12", raw)
	}
	// Non-multiple-of-4 trailing content is trimmed.
	clean, _ = base64Run([]byte("QUJDA"))
	if len(clean)%4 != 0 {
		t.Errorf("untrimmed run: %q", clean)
	}
}

func TestLooksExecutable(t *testing.T) {
	if !looksExecutable(append([]byte("MZ"), make([]byte, 64)...)) {
		t.Error("MZ header not recognized")
	}
	if !looksExecutable(append([]byte("\x7fELF"), make([]byte, 64)...)) {
		t.Error("ELF header not recognized")
	}
	if looksExecutable([]byte("short")) {
		t.Error("short buffer accepted")
	}
	if looksExecutable(bytes.Repeat([]byte("plain ascii text here "), 10)) {
		t.Error("text accepted as executable")
	}
}
