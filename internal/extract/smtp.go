package extract

import (
	"bytes"
	"encoding/base64"
)

// Email-worm extraction (the paper's stated future work, Section 6:
// "additional useful templates ... to detect additional families of
// malicious traffic (i.e. email worms)"). Mass-mailing worms of the
// era (Netsky, MyDoom, Bagle) propagate as base64-encoded executable
// attachments inside SMTP DATA sections. This extractor locates MIME
// attachments in SMTP payloads, decodes them, and forwards executable
// content to the semantic stages, where the same decryption-loop
// templates that catch packed viruses on disk catch them in flight.

// smtpAttachmentMarkers indicate an encoded attachment follows.
var smtpAttachmentMarkers = [][]byte{
	[]byte("Content-Transfer-Encoding: base64"),
	[]byte("Content-Transfer-Encoding:base64"),
}

// IsSMTP reports whether the payload looks like an SMTP client
// dialogue (commands or a DATA section).
func IsSMTP(data []byte) bool {
	for _, prefix := range [][]byte{
		[]byte("EHLO "), []byte("HELO "), []byte("MAIL FROM:"),
	} {
		if bytes.HasPrefix(data, prefix) {
			return true
		}
	}
	return false
}

// MaxAttachmentBytes caps one decoded attachment.
const MaxAttachmentBytes = 1 << 20

// extractSMTP pulls base64 attachments out of an SMTP dialogue and
// decodes them. Only content that plausibly contains executable code
// (an MZ/PE header or sufficient binary density) is forwarded.
func extractSMTP(payload []byte) []Frame {
	var frames []Frame
	rest := payload
	base := 0
	for {
		idx := -1
		for _, m := range smtpAttachmentMarkers {
			if j := bytes.Index(rest, m); j >= 0 && (idx < 0 || j < idx) {
				idx = j
			}
		}
		if idx < 0 {
			return frames
		}
		// The encoded body starts after the header block's blank line.
		bodyStart := bytes.Index(rest[idx:], []byte("\r\n\r\n"))
		if bodyStart < 0 {
			return frames
		}
		body := rest[idx+bodyStart+4:]
		enc, encLen := base64Run(body)
		if len(enc) >= 64 {
			decoded := make([]byte, base64.StdEncoding.DecodedLen(len(enc)))
			n, err := base64.StdEncoding.Decode(decoded, enc)
			if err == nil || n > 0 {
				decoded = decoded[:n]
				if len(decoded) > MaxAttachmentBytes {
					decoded = decoded[:MaxAttachmentBytes]
				}
				if looksExecutable(decoded) {
					frames = append(frames, Frame{
						Data:   decoded,
						Source: "smtp-attachment",
						Offset: base + idx + bodyStart + 4,
					})
				}
			}
		}
		advance := idx + bodyStart + 4 + encLen
		base += advance
		rest = rest[advance:]
	}
}

// base64Run returns the leading run of base64 alphabet content in
// body (line breaks included in the count but stripped from the
// returned bytes), stopping at the first non-base64 line.
func base64Run(body []byte) (clean []byte, rawLen int) {
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z',
			c >= '0' && c <= '9', c == '+', c == '/', c == '=':
			clean = append(clean, c)
			i++
		case c == '\r' || c == '\n':
			i++
		default:
			// End of the encoded region.
			rawLen = i
			// Trim to a multiple of 4 so the decoder accepts it.
			clean = clean[:len(clean)-len(clean)%4]
			return clean, rawLen
		}
	}
	clean = clean[:len(clean)-len(clean)%4]
	return clean, len(body)
}

// looksExecutable reports whether decoded attachment content plausibly
// contains machine code: a DOS/PE header or a high binary density.
func looksExecutable(b []byte) bool {
	if len(b) < MinBinaryWindow {
		return false
	}
	if b[0] == 'M' && b[1] == 'Z' {
		return true
	}
	if bytes.HasPrefix(b, []byte("\x7fELF")) {
		return true
	}
	s, _ := binaryRegion(b)
	return s >= 0
}
