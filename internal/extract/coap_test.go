package extract

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"

	"semnids/internal/exploits"
	"semnids/internal/traffic"
)

// requestPayloads renders a Block1 transfer with the traffic generator
// and returns the request-direction datagram payloads in wire order —
// the independent encoder cross-validating this package's parser.
func requestPayloads(t *testing.T, body []byte) [][]byte {
	t.Helper()
	g := traffic.NewGen(7)
	src := netip.MustParseAddr("172.17.0.1")
	dst := netip.MustParseAddr("172.17.0.2")
	var out [][]byte
	for _, p := range g.CoAPBlockPut(src, dst, "firmware", body) {
		if p.DstPort == traffic.CoAPPort && p.SrcIP == src {
			out = append(out, p.Payload)
		}
	}
	if len(out) == 0 {
		t.Fatal("generator produced no request datagrams")
	}
	return out
}

// concat flattens datagram payloads into the flow view ExtractDatagrams
// consumes: the concatenation plus each datagram's start offset.
func concat(parts [][]byte) (data []byte, bounds []int) {
	for _, p := range parts {
		bounds = append(bounds, len(data))
		data = append(data, p...)
	}
	return data, bounds
}

// Every message the traffic generator emits must parse: encoder and
// parser are written independently and validate each other here.
func TestGeneratorMessagesParse(t *testing.T) {
	g := traffic.NewGen(3)
	dev := netip.MustParseAddr("172.18.0.5")
	var pkts = g.CoAPSensorReading(dev)
	pkts = append(pkts, g.CoAPDiscovery(dev)...)
	pkts = append(pkts, g.CoAPScan(dev, 3)...)
	pkts = append(pkts, g.CoAPBlockPut(dev, netip.MustParseAddr("172.17.0.9"), "fw", bytes.Repeat([]byte{0x90}, 50))...)
	for i, p := range pkts {
		if !IsCoAP(p.Payload) {
			t.Errorf("generator datagram %d does not parse as CoAP: % x", i, p.Payload)
		}
	}
}

func TestParseCoAPRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":                  {},
		"short header":           {0x40, 0x01, 0x00},
		"version 0":              {0x00, 0x01, 0x00, 0x01},
		"version 2":              {0x80, 0x01, 0x00, 0x01},
		"token longer than 8":    {0x49, 0x01, 0x00, 0x01, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		"token past end":         {0x44, 0x01, 0x00, 0x01, 1, 2},
		"reserved code class 1":  {0x40, 0x20, 0x00, 0x01},
		"reserved code class 7":  {0x40, 0xe1, 0x00, 0x01},
		"empty msg with token":   {0x41, 0x00, 0x00, 0x01, 0xaa},
		"empty msg with options": {0x40, 0x00, 0x00, 0x01, 0xb1, 0x61},
		"marker no payload":      {0x40, 0x01, 0x00, 0x01, 0xff},
		"option past end":        {0x40, 0x01, 0x00, 0x01, 0xb5, 0x61},
		"option nibble 15":       {0x40, 0x01, 0x00, 0x01, 0xf1, 0x61},
		"dns response":           {0x12, 0x34, 0x81, 0x80, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00},
	}
	for name, d := range cases {
		if IsCoAP(d) {
			t.Errorf("%s accepted as CoAP", name)
		}
	}
}

// A single-datagram flow must behave byte-identically to the plain
// per-packet path, whatever the content.
func TestExtractDatagramsSingleIsExtract(t *testing.T) {
	for _, data := range [][]byte{
		exploits.CoAPFirmware(),
		[]byte("plain text, nothing binary at all"),
		{},
	} {
		want := Extract(data)
		for _, bounds := range [][]int{nil, {0}} {
			got := ExtractDatagrams(data, bounds)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("bounds %v: ExtractDatagrams diverged from Extract", bounds)
			}
		}
	}
}

func TestCoAPBlockReassembly(t *testing.T) {
	body := exploits.CoAPFirmware()
	data, bounds := concat(requestPayloads(t, body))
	var got []Frame
	for _, f := range ExtractDatagrams(data, bounds) {
		if f.Source == "coap-block" {
			got = append(got, f)
		}
	}
	if len(got) != 1 {
		t.Fatalf("coap-block frames: %d, want 1", len(got))
	}
	if !bytes.Equal(got[0].Data, body) {
		t.Fatalf("reassembled %d bytes, want %d", len(got[0].Data), len(body))
	}

	// Per-datagram extraction sees at most one 16-byte slice of the
	// body at a time — no single datagram can yield a frame holding
	// enough contiguous body for the decoder loop (the root-level
	// detection test pins the semantic consequence).
	parts := requestPayloads(t, body)
	for i, p := range parts {
		for _, f := range Extract(p) {
			if bytes.Contains(f.Data, body[:48]) {
				t.Errorf("block %d alone exposed a contiguous body prefix", i)
			}
		}
	}
}

// Retransmitted and reordered blocks reassemble to the same body:
// ordering is by block number, duplicates keep the first copy.
func TestCoAPBlockReassemblyReorderedDuplicates(t *testing.T) {
	body := exploits.CoAPFirmware()
	parts := requestPayloads(t, body)
	if len(parts) < 4 {
		t.Fatalf("need several blocks, got %d", len(parts))
	}
	shuffled := make([][]byte, 0, len(parts)+2)
	// Swap adjacent pairs and retransmit two blocks.
	for i := 0; i+1 < len(parts); i += 2 {
		shuffled = append(shuffled, parts[i+1], parts[i])
	}
	if len(parts)%2 == 1 {
		shuffled = append(shuffled, parts[len(parts)-1])
	}
	shuffled = append(shuffled, parts[0], parts[len(parts)/2])
	data, bounds := concat(shuffled)
	var bodies [][]byte
	for _, f := range ExtractDatagrams(data, bounds) {
		if f.Source == "coap-block" {
			bodies = append(bodies, f.Data)
		}
	}
	if len(bodies) != 1 || !bytes.Equal(bodies[0], body) {
		t.Fatalf("reordered transfer did not reassemble: %d frames", len(bodies))
	}
}

// A multi-datagram flow that does not open with CoAP gets the stream
// treatment: Extract over the concatenation.
func TestExtractDatagramsNonCoAPFallsBack(t *testing.T) {
	a := []byte("SMTP-ish text datagram one ")
	b := exploits.CoAPFirmware()
	data, bounds := concat([][]byte{a, b})
	want := Extract(data)
	got := ExtractDatagrams(data, bounds)
	if !reflect.DeepEqual(got, want) {
		t.Error("non-CoAP flow diverged from Extract over the concatenation")
	}
}

// Malformed bounds (out of range, unordered, not starting at 0) must
// never panic and fall back to stream treatment.
func TestExtractDatagramsBadBounds(t *testing.T) {
	data := exploits.CoAPFirmware()
	want := Extract(data)
	for _, bounds := range [][]int{
		{5, 10},
		{0, 10, 10},
		{0, len(data) + 3},
		{0, 10, 5},
	} {
		got := ExtractDatagrams(data, bounds)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("bounds %v: did not fall back to Extract", bounds)
		}
	}
}

// A mid-flow datagram that is not CoAP (protocol confusion, injected
// raw exploit) still gets the raw-binary scan at its flow offset.
func TestCoAPFlowRawInjection(t *testing.T) {
	g := traffic.NewGen(9)
	dev := netip.MustParseAddr("172.18.0.7")
	var parts [][]byte
	for _, p := range g.CoAPSensorReading(dev) {
		parts = append(parts, p.Payload)
	}
	raw := exploits.CoAPFirmware()
	parts = append(parts, raw)
	data, bounds := concat(parts)
	found := false
	for _, f := range ExtractDatagrams(data, bounds) {
		if f.Offset >= bounds[len(bounds)-1] && len(f.Data) >= MinBinaryWindow {
			found = true
		}
	}
	if !found {
		t.Error("injected raw payload escaped the binary scan")
	}
}
