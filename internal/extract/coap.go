package extract

import "encoding/binary"

// CoAP extraction (RFC 7252): the constrained-device protocol IoT
// deployments run over UDP. CoAP has no length framing of its own —
// one message is exactly one datagram — so this extractor works on the
// datagram-flow view (concatenated payloads plus per-datagram
// boundaries) rather than a byte stream. Its job mirrors the SMTP
// extractor's: recognize conformant protocol usage, reassemble the
// one place the protocol legitimately splits content across messages
// (block-wise transfer, RFC 7959), and forward only plausible
// executable content to the semantic stages. Shellcode sprayed across
// Block1/Block2 transfers in 16-byte slices is invisible to
// per-packet analysis — every slice is below MinBinaryWindow — and
// only becomes detectable on the reassembled body.

// CoAP option numbers the extractor interprets.
const (
	coapOptBlock2 = 23 // RFC 7959 Block2 (response payload blocks)
	coapOptBlock1 = 27 // RFC 7959 Block1 (request payload blocks)
)

// coapMsg is one parsed CoAP message.
type coapMsg struct {
	typ          byte // CON/NON/ACK/RST (2 bits)
	code         byte // class.detail request/response code
	msgID        uint16
	token        []byte
	hasB1, hasB2 bool
	block1       uint32 // raw block option value: NUM<<4 | M<<3 | SZX
	block2       uint32
	payload      []byte
	payloadOff   int // payload start offset within the datagram
}

// blockNum extracts the block sequence number from a raw block value.
func blockNum(v uint32) uint32 { return v >> 4 }

// blockMore reports the block value's M (more blocks follow) bit.
func blockMore(v uint32) bool { return v>>3&1 == 1 }

// coapUint decodes a 0-3 byte big-endian option value.
func coapUint(b []byte) uint32 {
	var v uint32
	for _, c := range b {
		v = v<<8 | uint32(c)
	}
	return v
}

// coapExt resolves an option-header nibble with its RFC 7252 extended
// forms: 13 adds one extension byte (+13), 14 adds two (+269), 15 is
// reserved (invalid outside the payload marker).
func coapExt(d []byte, i, nib int) (val, next int, ok bool) {
	switch nib {
	case 13:
		if i >= len(d) {
			return 0, 0, false
		}
		return int(d[i]) + 13, i + 1, true
	case 14:
		if i+1 >= len(d) {
			return 0, 0, false
		}
		return int(binary.BigEndian.Uint16(d[i:i+2])) + 269, i + 2, true
	case 15:
		return 0, 0, false
	}
	return nib, i, true
}

// parseCoAP decodes one datagram as a CoAP message, walking the full
// option chain. It is strict — version must be 1, the token length
// and every option must fit, reserved code classes are rejected — so
// that random binary (DNS responses, raw exploit payloads) does not
// masquerade as CoAP.
func parseCoAP(d []byte) (coapMsg, bool) {
	var m coapMsg
	if len(d) < 4 || d[0]>>6 != 1 {
		return m, false
	}
	tkl := int(d[0] & 0x0f)
	if tkl > 8 || len(d) < 4+tkl {
		return m, false
	}
	m.typ = d[0] >> 4 & 3
	m.code = d[1]
	switch m.code >> 5 {
	case 1, 6, 7: // reserved code classes
		return m, false
	}
	if m.code == 0 && (tkl != 0 || len(d) != 4) {
		// An Empty message is exactly the 4-byte header.
		return m, false
	}
	m.msgID = binary.BigEndian.Uint16(d[2:4])
	m.token = d[4 : 4+tkl]

	i := 4 + tkl
	opt := 0
	for i < len(d) {
		if d[i] == 0xff {
			if i+1 >= len(d) {
				return m, false // payload marker with empty payload
			}
			m.payloadOff = i + 1
			m.payload = d[i+1:]
			return m, true
		}
		deltaNib := int(d[i] >> 4)
		lenNib := int(d[i] & 0x0f)
		i++
		delta, ni, ok := coapExt(d, i, deltaNib)
		if !ok {
			return m, false
		}
		olen, ni2, ok := coapExt(d, ni, lenNib)
		if !ok || ni2+olen > len(d) {
			return m, false
		}
		opt += delta
		val := d[ni2 : ni2+olen]
		switch opt {
		case coapOptBlock1:
			if olen > 3 {
				return m, false
			}
			m.hasB1, m.block1 = true, coapUint(val)
		case coapOptBlock2:
			if olen > 3 {
				return m, false
			}
			m.hasB2, m.block2 = true, coapUint(val)
		}
		i = ni2 + olen
	}
	return m, true
}

// IsCoAP reports whether the datagram parses as a complete CoAP
// message.
func IsCoAP(data []byte) bool {
	_, ok := parseCoAP(data)
	return ok
}

// blockXfer accumulates one block-wise transfer (keyed by token).
type blockXfer struct {
	nums   []uint32
	parts  [][]byte
	offset int // absolute offset of the first-seen block's payload
}

// ExtractDatagrams is the extraction entry point for datagram flows:
// data is the in-order concatenation of a flow's datagram payloads and
// bounds holds each datagram's start offset. A single-datagram flow is
// handed to Extract unchanged — byte-identical behavior with the plain
// per-packet path. A multi-datagram CoAP conversation is walked
// message by message with block-wise transfers reassembled; anything
// else falls back to Extract over the concatenation (the streaming
// treatment multi-datagram text carriers get).
func ExtractDatagrams(data []byte, bounds []int) []Frame {
	if len(bounds) <= 1 {
		return Extract(data)
	}
	// Defensive: bounds must be strictly increasing offsets into data
	// starting at 0; anything else gets stream treatment.
	for i, b := range bounds {
		if b >= len(data) || (i == 0 && b != 0) || (i > 0 && b <= bounds[i-1]) {
			return Extract(data)
		}
	}
	if !IsCoAP(data[bounds[0]:bounds[1]]) {
		return Extract(data)
	}
	return extractCoAPFlow(data, bounds)
}

// extractCoAPFlow walks each datagram of a CoAP conversation:
// block-wise transfers are grouped by token, reordered by block
// number, and the reassembled body forwarded when it looks
// executable; immediate (non-block) payloads are forwarded under the
// same gate. Datagrams that fail the CoAP parse mid-flow (protocol
// confusion, injected raw payloads) still get the raw-binary scan.
func extractCoAPFlow(data []byte, bounds []int) []Frame {
	var frames []Frame
	xfers := make(map[string]*blockXfer)
	var order []string // first-appearance order, for deterministic output

	for i, start := range bounds {
		end := len(data)
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		msg := data[start:end]
		m, ok := parseCoAP(msg)
		if !ok {
			for _, f := range extractRaw(msg) {
				f.Offset += start
				frames = append(frames, f)
			}
			continue
		}
		if len(m.payload) == 0 {
			continue
		}
		if m.hasB1 || m.hasB2 {
			blk := m.block1
			if !m.hasB1 {
				blk = m.block2
			}
			k := string(m.token)
			x := xfers[k]
			if x == nil {
				x = &blockXfer{offset: start + m.payloadOff}
				xfers[k] = x
				order = append(order, k)
			}
			x.nums = append(x.nums, blockNum(blk))
			x.parts = append(x.parts, m.payload)
			continue
		}
		if looksExecutable(m.payload) {
			frames = append(frames, Frame{
				Data:   capFrame(m.payload),
				Source: "coap-payload",
				Offset: start + m.payloadOff,
			})
		}
	}

	for _, k := range order {
		x := xfers[k]
		body := x.reassemble()
		if looksExecutable(body) {
			frames = append(frames, Frame{
				Data:   capFrame(body),
				Source: "coap-block",
				Offset: x.offset,
			})
		}
	}
	return frames
}

// reassemble orders the transfer's blocks by block number
// (retransmitted numbers keep the first copy) and concatenates them.
func (x *blockXfer) reassemble() []byte {
	// Insertion sort by block number, stable, preserving first-arrival
	// on duplicates; transfers are small (bounded by MaxDgramBounds
	// datagrams upstream).
	idx := make([]int, len(x.nums))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && x.nums[idx[j]] < x.nums[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var body []byte
	seen := uint32(0xffffffff)
	for _, i := range idx {
		if n := x.nums[i]; n != seen {
			seen = n
			body = append(body, x.parts[i]...)
		}
	}
	return body
}
