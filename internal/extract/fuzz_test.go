package extract

import "testing"

func FuzzExtract(f *testing.F) {
	f.Add([]byte("GET /default.ida?XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX%u9090%ucbd3%u7801 HTTP/1.0\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Type: image/jpeg\r\n\r\n\xff\xd8\xff\xe0"))
	f.Add([]byte("MAIL FROM:<a@b>\r\nDATA\r\nContent-Transfer-Encoding: base64\r\n\r\nTVqQAAAA\r\n.\r\n"))
	f.Add([]byte("USER AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\x90\x90\x31\xc0\xcd\x80"))
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, fr := range Extract(b) {
			if len(fr.Data) > MaxFrameBytes {
				t.Fatalf("frame exceeds cap: %d", len(fr.Data))
			}
			if fr.Offset < 0 || fr.Offset > len(b) {
				t.Fatalf("offset %d out of range %d", fr.Offset, len(b))
			}
			if fr.Source == "" {
				t.Fatal("frame without source label")
			}
		}
	})
}

func FuzzDecodePercentU(f *testing.F) {
	f.Add([]byte("%u9090%ucbd3"))
	f.Add([]byte("%41%42"))
	f.Add([]byte("%%%%uu"))
	f.Fuzz(func(t *testing.T, b []byte) {
		out := DecodePercentU(b)
		if len(out) > len(b) {
			t.Fatalf("decode grew input: %d > %d", len(out), len(b))
		}
	})
}

func FuzzParseCoAP(f *testing.F) {
	f.Add([]byte{0x44, 0x01, 0x30, 0x39, 1, 2, 3, 4, 0xbb, '.', 'w', 'e', 'l', 'l', '-', 'k', 'n', 'o', 'w', 'n'})
	f.Add([]byte{0x44, 0x03, 0x00, 0x07, 9, 8, 7, 6, 0xd1, 0x0e, 0x08, 0xff, 0x90, 0x90})
	f.Add([]byte{0x40, 0x00, 0x12, 0x34})
	f.Add([]byte{0x7f, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, ok := parseCoAP(b)
		if !ok {
			return
		}
		if len(m.token) > 8 {
			t.Fatalf("token of %d bytes accepted", len(m.token))
		}
		if len(m.payload) > 0 {
			if m.payloadOff <= 0 || m.payloadOff+len(m.payload) != len(b) {
				t.Fatalf("payload bounds: off=%d len=%d of %d", m.payloadOff, len(m.payload), len(b))
			}
		}
	})
}

func FuzzExtractDatagrams(f *testing.F) {
	f.Add([]byte{0x44, 0x03, 0x00, 0x07, 9, 8, 7, 6, 0xff, 0x90, 0x90, 0x44, 0x03, 0x00, 0x08, 9, 8, 7, 6, 0xff, 0x31, 0xc0}, 11)
	f.Add([]byte("not coap at all, just text split in two"), 9)
	f.Fuzz(func(t *testing.T, b []byte, split int) {
		bounds := []int{0}
		if split > 0 && split < len(b) {
			bounds = append(bounds, split)
		}
		for _, fr := range ExtractDatagrams(b, bounds) {
			if len(fr.Data) > MaxFrameBytes {
				t.Fatalf("frame exceeds cap: %d", len(fr.Data))
			}
			if fr.Source == "" {
				t.Fatal("frame without source label")
			}
		}
	})
}
