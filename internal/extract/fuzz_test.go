package extract

import "testing"

func FuzzExtract(f *testing.F) {
	f.Add([]byte("GET /default.ida?XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX%u9090%ucbd3%u7801 HTTP/1.0\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Type: image/jpeg\r\n\r\n\xff\xd8\xff\xe0"))
	f.Add([]byte("MAIL FROM:<a@b>\r\nDATA\r\nContent-Transfer-Encoding: base64\r\n\r\nTVqQAAAA\r\n.\r\n"))
	f.Add([]byte("USER AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\x90\x90\x31\xc0\xcd\x80"))
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, b []byte) {
		for _, fr := range Extract(b) {
			if len(fr.Data) > MaxFrameBytes {
				t.Fatalf("frame exceeds cap: %d", len(fr.Data))
			}
			if fr.Offset < 0 || fr.Offset > len(b) {
				t.Fatalf("offset %d out of range %d", fr.Offset, len(b))
			}
			if fr.Source == "" {
				t.Fatal("frame without source label")
			}
		}
	})
}

func FuzzDecodePercentU(f *testing.F) {
	f.Add([]byte("%u9090%ucbd3"))
	f.Add([]byte("%41%42"))
	f.Add([]byte("%%%%uu"))
	f.Fuzz(func(t *testing.T, b []byte) {
		out := DecodePercentU(b)
		if len(out) > len(b) {
			t.Fatalf("decode grew input: %d > %d", len(out), len(b))
		}
	})
}
