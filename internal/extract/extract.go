// Package extract implements the paper's binary data identification and
// extraction stage (Section 4.2). Given a reassembled application
// payload, it distinguishes acceptable protocol usage from suspicious
// repetition and binary content, locates the region likely to hold
// injected code, translates encoded forms (the %uXXXX Unicode encoding
// of Code Red II, %xx percent-encoding) into raw bytes, and emits
// binary frames for the disassembler.
//
// The point of this stage is efficiency: the disassembler and semantic
// analyzer are the slowest stages, so only plausible binary regions —
// not every payload byte — are forwarded.
package extract

import (
	"bytes"

	"semnids/internal/x86"
)

// Tunables (exposed for tests and ablation benchmarks).
const (
	// RunThreshold is the repetition length within a protocol field
	// considered "suspicious repetition" (the XXXX... filler that
	// overflows the victim buffer).
	RunThreshold = 24

	// MinBinaryWindow and BinaryDensity control raw binary-region
	// detection: a window of at least MinBinaryWindow bytes in which
	// the fraction of non-text bytes exceeds BinaryDensity.
	MinBinaryWindow = 24
	BinaryDensity   = 0.30

	// MaxFrameBytes caps one extracted frame.
	MaxFrameBytes = 1 << 16
)

// Frame is one extracted binary region.
type Frame struct {
	Data []byte
	// Source labels the extraction path for alerts and metrics:
	// "http-url", "http-unicode", "http-body", "raw-binary".
	Source string
	// Offset is where in the original payload the region began.
	Offset int

	// Code memoizes instruction decoding over Data. The extraction
	// stage's code-ratio estimate and the downstream semantic analyzer
	// sweep the same bytes; sharing one cache means every byte
	// position is decoded at most once across both stages. Built
	// lazily by DecodeCache.
	Code *x86.DecodeCache
}

// DecodeCache returns the frame's shared decode cache, creating it on
// first use.
func (f *Frame) DecodeCache() *x86.DecodeCache {
	if f.Code == nil {
		f.Code = x86.NewDecodeCache(f.Data)
	}
	return f.Code
}

// CodeRatio estimates how much of the frame decodes as plausible
// instructions, memoized in the shared decode cache so the analyzer
// reuses the same sweep instead of re-decoding the frame.
func (f *Frame) CodeRatio() float64 {
	return f.DecodeCache().CodeRatio()
}

// isTextByte reports whether b is plausible protocol text.
func isTextByte(b byte) bool {
	return b == '\r' || b == '\n' || b == '\t' || (b >= 0x20 && b < 0x7f)
}

// LongestRun finds the longest run of a single repeated byte in data,
// returning its start and length.
func LongestRun(data []byte) (start, length int) {
	bestStart, bestLen := 0, 0
	i := 0
	for i < len(data) {
		j := i + 1
		for j < len(data) && data[j] == data[i] {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i = j
	}
	return bestStart, bestLen
}

// DecodePercentU translates the IIS %uXXXX Unicode encoding (and
// ordinary %xx percent-encoding) into raw bytes. %uXXXX becomes the
// two bytes of the UTF-16 code unit in little-endian order, which is
// how Code Red II smuggled x86 code and addresses through a URL.
// Bytes that are not part of a valid escape pass through unchanged.
func DecodePercentU(data []byte) []byte {
	out := make([]byte, 0, len(data))
	for i := 0; i < len(data); {
		if data[i] == '%' && i+5 < len(data) && (data[i+1] == 'u' || data[i+1] == 'U') {
			if v, ok := hex4(data[i+2 : i+6]); ok {
				out = append(out, byte(v), byte(v>>8))
				i += 6
				continue
			}
		}
		if data[i] == '%' && i+2 < len(data) {
			if v, ok := hex2(data[i+1 : i+3]); ok {
				out = append(out, byte(v))
				i += 3
				continue
			}
		}
		out = append(out, data[i])
		i++
	}
	return out
}

func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

func hex2(b []byte) (uint16, bool) {
	h, ok1 := hexVal(b[0])
	l, ok2 := hexVal(b[1])
	if !ok1 || !ok2 {
		return 0, false
	}
	return uint16(h)<<4 | uint16(l), true
}

func hex4(b []byte) (uint16, bool) {
	var v uint16
	for _, c := range b[:4] {
		h, ok := hexVal(c)
		if !ok {
			return 0, false
		}
		v = v<<4 | uint16(h)
	}
	return v, true
}

// binaryRegion finds the first window where non-text density exceeds
// BinaryDensity, extending it to the end of contiguous binary-ish
// content. Returns (-1, -1) if none.
func binaryRegion(data []byte) (start, end int) {
	n := len(data)
	if n < MinBinaryWindow {
		return -1, -1
	}
	// Sliding window count of non-text bytes.
	w := MinBinaryWindow
	count := 0
	for i := 0; i < w; i++ {
		if !isTextByte(data[i]) {
			count++
		}
	}
	for i := 0; ; i++ {
		if float64(count)/float64(w) >= BinaryDensity {
			// Found a dense window at i; walk start back to the
			// first non-text byte and extend to the end of payload
			// (injected code is followed by its own data).
			s := i
			for s > 0 && !isTextByte(data[s-1]) {
				s--
			}
			return s, n
		}
		if i+w >= n {
			break
		}
		if !isTextByte(data[i]) {
			count--
		}
		if !isTextByte(data[i+w]) {
			count++
		}
	}
	return -1, -1
}

// looksPercentEncoded reports whether data is dominated by percent
// escapes (as %u-smuggled binary is) rather than containing a stray
// '%' inside raw bytes.
func looksPercentEncoded(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	n := bytes.Count(data, []byte{'%'})
	return n >= 4 && n*8 >= len(data) // escapes cover a large share
}

// cap trims a frame to MaxFrameBytes.
func capFrame(b []byte) []byte {
	if len(b) > MaxFrameBytes {
		return b[:MaxFrameBytes]
	}
	return b
}

// httpMethods recognized by the request parser.
var httpMethods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("TRACE "), []byte("SEARCH "),
	[]byte("PROPFIND "),
}

// IsHTTPRequest reports whether the payload begins like an HTTP
// request.
func IsHTTPRequest(data []byte) bool {
	for _, m := range httpMethods {
		if bytes.HasPrefix(data, m) {
			return true
		}
	}
	return false
}

// IsHTTPResponse reports whether the payload begins like an HTTP
// response.
func IsHTTPResponse(data []byte) bool {
	return bytes.HasPrefix(data, []byte("HTTP/1.")) || bytes.HasPrefix(data, []byte("HTTP/0.9"))
}

// Extract is the stage entry point: it examines one reassembled
// payload and returns the binary frames worth disassembling. A benign
// well-formed request yields no frames at all — that is the pruning
// that makes the pipeline efficient.
//
// Protocol awareness is the core of this stage ("by noting what is
// expected in a protocol request, and what is abnormal"): binary
// content where the protocol declares binary content is expected — an
// HTTP response body carrying an image is conformant traffic, not an
// injected exploit — whereas binary content inside a protocol
// *request* line or an otherwise-textual command stream is abnormal
// and extracted.
func Extract(payload []byte) []Frame {
	if len(payload) == 0 {
		return nil
	}
	if IsHTTPRequest(payload) {
		return extractHTTP(payload)
	}
	if IsHTTPResponse(payload) {
		return extractHTTPResponse(payload)
	}
	if IsSMTP(payload) {
		return extractSMTP(payload)
	}
	if verb, rest, ok := textProtocolCommand(payload); ok {
		return extractTextCommand(payload, verb, rest)
	}
	return extractRaw(payload)
}

// textProtocolVerbs are command words of the line-oriented text
// protocols whose overflow exploits the paper's corpus targets.
var textProtocolVerbs = [][]byte{
	// FTP
	[]byte("USER"), []byte("PASS"), []byte("CWD"), []byte("RETR"),
	[]byte("STOR"), []byte("LIST"), []byte("SITE"), []byte("MKD"),
	// POP3
	[]byte("APOP"), []byte("RETR"), []byte("UIDL"),
	// IMAP (tagged commands: the tag precedes the verb)
	[]byte("LOGIN"), []byte("SELECT"), []byte("FETCH"), []byte("APPEND"),
}

// textProtocolCommand reports whether the payload starts with a known
// text-protocol command (optionally preceded by an IMAP tag), and
// returns the verb and argument region.
func textProtocolCommand(payload []byte) (verb, rest []byte, ok bool) {
	line := payload
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, nil, false
	}
	match := func(f []byte) bool {
		for _, v := range textProtocolVerbs {
			if bytes.EqualFold(f, v) {
				return true
			}
		}
		return false
	}
	switch {
	case match(fields[0]):
		return fields[0], payload[len(fields[0]):], true
	case len(fields) >= 2 && match(fields[1]):
		// IMAP tag: "a001 LOGIN ..."
		off := bytes.Index(payload, fields[1])
		return fields[1], payload[off+len(fields[1]):], true
	}
	return nil, nil, false
}

// extractTextCommand applies protocol knowledge to a command stream:
// a conformant command has modest textual arguments; overlong filler
// or embedded binary in the argument is the overflow shape.
func extractTextCommand(payload, verb, rest []byte) []Frame {
	_ = verb
	// Binary anywhere in a text command stream is abnormal.
	if s, e := binaryRegion(rest); s >= 0 {
		off := len(payload) - len(rest) + s
		return []Frame{{Data: capFrame(rest[s:e]), Source: "text-proto", Offset: off}}
	}
	// Long repetition filler followed by content (even if the content
	// is mostly printable: alphanumeric shellcode exists).
	if start, length := LongestRun(rest); length >= RunThreshold {
		after := rest[start+length:]
		if len(after) >= MinBinaryWindow {
			off := len(payload) - len(rest) + start + length
			return []Frame{{Data: capFrame(after), Source: "text-proto", Offset: off}}
		}
	}
	return nil
}

// extractHTTPResponse scans only the status line and header block of a
// response: the declared body legitimately carries arbitrary binary
// (images, archives, executables), which the remote-exploit threat
// model does not target. Header anomalies (overlong repeated filler in
// a header value — server-side overflow responses) are still
// extracted.
func extractHTTPResponse(payload []byte) []Frame {
	headerEnd := bytes.Index(payload, []byte("\r\n\r\n"))
	if headerEnd < 0 {
		// No complete header block: scan what we have as headers.
		headerEnd = len(payload)
	}
	headers := payload[:headerEnd]
	if start, length := LongestRun(headers); length >= RunThreshold*2 {
		after := headers[start+length:]
		if len(after) >= MinBinaryWindow {
			return []Frame{{Data: capFrame(after), Source: "http-resp-header", Offset: start + length}}
		}
	}
	return nil
}

// extractHTTP knows what a protocol request should look like and
// flags what is abnormal: overlong repeated filler in the request
// line, %u-encoded binary, or raw binary in the body.
func extractHTTP(payload []byte) []Frame {
	var frames []Frame

	lineEnd := bytes.IndexByte(payload, '\n')
	if lineEnd < 0 {
		lineEnd = len(payload)
	}
	reqLine := payload[:lineEnd]

	// Suspicious repetition in the request line (Code Red's XXXX...,
	// generic AAAA... overflows).
	if start, length := LongestRun(reqLine); length >= RunThreshold {
		// The injected content follows the filler run.
		after := reqLine[start+length:]
		// Strip a trailing " HTTP/1.x" protocol tag if present.
		if idx := bytes.LastIndex(after, []byte(" HTTP/")); idx >= 0 {
			after = after[:idx]
		}
		// Translate encoded forms only when the region actually looks
		// percent-encoded; otherwise raw binary containing accidental
		// "%41"-style sequences would be corrupted.
		decoded := after
		src := "http-url"
		if looksPercentEncoded(after) {
			decoded = DecodePercentU(after)
			if bytes.Contains(after, []byte("%u")) {
				src = "http-unicode"
			}
		}
		if len(decoded) > 0 {
			frames = append(frames, Frame{
				Data:   capFrame(decoded),
				Source: src,
				Offset: start + length,
			})
		}
	}

	// Binary content in the remainder (headers/body): overflows in
	// header values, POST bodies carrying exploit code.
	rest := payload[lineEnd:]
	if s, e := binaryRegion(rest); s >= 0 {
		frames = append(frames, Frame{
			Data:   capFrame(rest[s:e]),
			Source: "http-body",
			Offset: lineEnd + s,
		})
	}
	return frames
}

// extractRaw handles non-HTTP payloads: text protocols with injected
// binary (FTP/IMAP/POP3 overflows) and fully binary payloads.
func extractRaw(payload []byte) []Frame {
	s, e := binaryRegion(payload)
	if s < 0 {
		// No dense binary region. One more protocol-anomaly check:
		// a huge single-byte run in an otherwise textual command
		// (brute filler) with content after it.
		start, length := LongestRun(payload)
		if length >= RunThreshold*2 {
			after := payload[start+length:]
			if len(after) >= MinBinaryWindow {
				return []Frame{{Data: capFrame(after), Source: "raw-binary", Offset: start + length}}
			}
		}
		return nil
	}
	return []Frame{{Data: capFrame(payload[s:e]), Source: "raw-binary", Offset: s}}
}
