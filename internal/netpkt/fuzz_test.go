package netpkt

import (
	"bytes"
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func FuzzParse(f *testing.F) {
	p := &Packet{
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		Proto: ProtoTCP, HasTCP: true, SrcPort: 1, DstPort: 2,
		Payload: []byte("x"),
	}
	f.Add(p.Serialize())
	u := &Packet{
		SrcIP: mustAddr("10.0.0.3"), DstIP: mustAddr("10.0.0.4"),
		Proto: ProtoUDP, HasUDP: true, SrcPort: 5683, DstPort: 5683,
		Payload: []byte("block transfer payload bytes"),
	}
	uf := u.Serialize()
	f.Add(uf)
	f.Add(uf[:len(uf)-9]) // snaplen-clipped datagram: truncated-prefix path
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		pkt, err := Parse(b)
		if err != nil {
			return
		}
		// A parsed packet must re-serialize and re-parse to the same
		// addressing (payload may be normalized by length fields).
		again, err := Parse(pkt.Serialize())
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if again.SrcIP != pkt.SrcIP || again.DstIP != pkt.DstIP ||
			again.SrcPort != pkt.SrcPort || again.DstPort != pkt.DstPort {
			t.Fatal("re-parse changed addressing")
		}
		if !bytes.Equal(again.Payload, pkt.Payload) {
			t.Fatal("re-parse changed payload")
		}
	})
}

func FuzzPcapNGReader(f *testing.F) {
	var b ngBuf
	b.shb()
	b.idb(linkTypeEthernet, 9)
	b.epb(0, 1700000000_000000000, testFrame("seed"))
	f.Add(b.Bytes())
	f.Add([]byte{0x0a, 0x0d, 0x0d, 0x0a})
	f.Add([]byte{0x0a, 0x0d, 0x0d, 0x0a, 28, 0, 0, 0, 0x4d, 0x3c, 0x2b, 0x1a})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			frame, _, err := r.NextFrame()
			if err != nil {
				return
			}
			if len(frame) > maxSnapLen {
				t.Fatalf("frame of %d bytes exceeds snap length", len(frame))
			}
		}
	})
}

func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	p := &Packet{
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		Proto: ProtoUDP, HasUDP: true, Payload: []byte("abc"),
	}
	_ = w.WritePacket(p)
	f.Add(buf.Bytes())
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewPcapReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			if _, _, err := r.NextFrame(); err != nil {
				return
			}
		}
	})
}
