package netpkt

import (
	"bytes"
	"testing"
)

func udpFrame(payload []byte) []byte {
	p := &Packet{
		SrcIP: mustAddr("10.0.0.2"), DstIP: mustAddr("10.0.0.3"),
		Proto: ProtoUDP, HasUDP: true, SrcPort: 5683, DstPort: 5683,
		Payload: payload,
	}
	return p.Serialize()
}

// A snaplen-clipped UDP datagram must deliver its captured prefix
// flagged Truncated, not reject the whole packet (the old behavior
// dropped every clipped datagram on the floor).
func TestUDPSnaplenClipDeliversPrefix(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab, 0xcd}, 32)
	frame := udpFrame(payload)

	full, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Error("full capture flagged truncated")
	}
	if !bytes.Equal(full.Payload, payload) {
		t.Errorf("full payload: %d bytes", len(full.Payload))
	}

	const cut = 24
	clipped, err := Parse(frame[:len(frame)-cut])
	if err != nil {
		t.Fatalf("clipped UDP frame rejected: %v", err)
	}
	if !clipped.Truncated {
		t.Error("clipped capture not flagged truncated")
	}
	if !clipped.HasUDP || clipped.SrcPort != 5683 || clipped.DstPort != 5683 {
		t.Errorf("clipped addressing: %+v", clipped)
	}
	if !bytes.Equal(clipped.Payload, payload[:len(payload)-cut]) {
		t.Errorf("clipped payload: got %d bytes, want %d", len(clipped.Payload), len(payload)-cut)
	}

	// The captured prefix must re-serialize into a consistent packet:
	// length fields describe the bytes actually present.
	again, err := Parse(clipped.Serialize())
	if err != nil {
		t.Fatalf("re-parse of truncated packet: %v", err)
	}
	if again.Truncated {
		t.Error("re-serialized packet still truncated")
	}
	if !bytes.Equal(again.Payload, clipped.Payload) {
		t.Error("re-serialize changed payload")
	}
}

// A UDP length field promising more than the capture holds (inflated
// by the sender, or clipped below the IP layer) clamps to the captured
// bytes and flags the packet.
func TestUDPLengthFieldBeyondCapture(t *testing.T) {
	payload := []byte("coap block transfer bytes")
	frame := udpFrame(payload)
	// Inflate the UDP length field (ether 14 + IP 20 + ports 4).
	frame[14+20+4] = 0xff
	frame[14+20+5] = 0xff
	got, err := Parse(frame)
	if err != nil {
		t.Fatalf("inflated UDP length rejected: %v", err)
	}
	if !got.Truncated {
		t.Error("inflated length not flagged truncated")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload: %q", got.Payload)
	}
}

// Truncation leniency is UDP-only: a snaplen-clipped TCP segment would
// corrupt stream reassembly, so the hard reject stays.
func TestTCPSnaplenClipStillRejected(t *testing.T) {
	p := tcpPacket("10.0.0.1", "10.0.0.2", 1234, 80, bytes.Repeat([]byte{0x90}, 64))
	frame := p.Serialize()
	if _, err := Parse(frame[:len(frame)-16]); err == nil {
		t.Error("clipped TCP frame parsed without error")
	}
}

// Truncated must never leak across pooled-packet reuse: a clipped
// parse followed by a clean one on the same storage reports clean.
func TestTruncatedResetsOnReuse(t *testing.T) {
	pl := NewPacketPool()
	frame := udpFrame(bytes.Repeat([]byte{0x11}, 40))
	clipped := pl.Get()
	if err := parseInto(clipped, frame[:len(frame)-10]); err != nil {
		t.Fatal(err)
	}
	if !clipped.Truncated {
		t.Fatal("clipped parse not flagged")
	}
	clipped.Release()
	clean := pl.Get()
	defer clean.Release()
	if err := parseInto(clean, frame); err != nil {
		t.Fatal(err)
	}
	if clean.Truncated {
		t.Error("Truncated leaked across pooled reuse")
	}
}

func TestFlowKeyCanonical(t *testing.T) {
	k := FlowKey{
		SrcIP: mustAddr("10.0.0.9"), DstIP: mustAddr("10.0.0.1"),
		SrcPort: 40000, DstPort: 5683, Proto: ProtoUDP,
	}
	if k.Canonical() != k.Reverse().Canonical() {
		t.Error("canonical differs across directions")
	}
	if k.Canonical() != k.Reverse() {
		t.Error("canonical did not order by address")
	}
	// Equal addresses order by port.
	same := FlowKey{
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.1"),
		SrcPort: 9, DstPort: 5, Proto: ProtoUDP,
	}
	if got := same.Canonical(); got.SrcPort != 5 || got.DstPort != 9 {
		t.Errorf("equal-address canonical: %+v", got)
	}
	if same.Canonical() != same.Reverse().Canonical() {
		t.Error("equal-address canonical differs across directions")
	}
}
