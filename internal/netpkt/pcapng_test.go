package netpkt

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// ngBuf builds pcapng test captures block by block (little-endian).
type ngBuf struct{ bytes.Buffer }

func (b *ngBuf) u16(v uint16) { binary.Write(&b.Buffer, binary.LittleEndian, v) }
func (b *ngBuf) u32(v uint32) { binary.Write(&b.Buffer, binary.LittleEndian, v) }

func (b *ngBuf) block(typ uint32, body []byte) {
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	total := uint32(len(body) + 12)
	b.u32(typ)
	b.u32(total)
	b.Write(body)
	b.u32(total)
}

func (b *ngBuf) shb() {
	var body bytes.Buffer
	binary.Write(&body, binary.LittleEndian, uint32(ngByteOrderMagic))
	binary.Write(&body, binary.LittleEndian, uint16(1)) // major
	binary.Write(&body, binary.LittleEndian, uint16(0)) // minor
	binary.Write(&body, binary.LittleEndian, uint64(0xffffffffffffffff))
	b.block(ngBlockSHB, body.Bytes())
}

// idb appends an interface block; tsresol 0 means "no option" (µs).
func (b *ngBuf) idb(link uint16, tsresol byte) {
	var body bytes.Buffer
	binary.Write(&body, binary.LittleEndian, link)
	binary.Write(&body, binary.LittleEndian, uint16(0))          // reserved
	binary.Write(&body, binary.LittleEndian, uint32(maxSnapLen)) // snaplen
	if tsresol != 0 {
		binary.Write(&body, binary.LittleEndian, uint16(ngOptIfTsresol))
		binary.Write(&body, binary.LittleEndian, uint16(1))
		body.Write([]byte{tsresol, 0, 0, 0}) // value + pad
		binary.Write(&body, binary.LittleEndian, uint32(0))
	}
	b.block(ngBlockIDB, body.Bytes())
}

func (b *ngBuf) epb(ifID uint32, ts uint64, frame []byte) {
	var body bytes.Buffer
	binary.Write(&body, binary.LittleEndian, ifID)
	binary.Write(&body, binary.LittleEndian, uint32(ts>>32))
	binary.Write(&body, binary.LittleEndian, uint32(ts))
	binary.Write(&body, binary.LittleEndian, uint32(len(frame)))
	binary.Write(&body, binary.LittleEndian, uint32(len(frame)))
	body.Write(frame)
	b.block(ngBlockEPB, body.Bytes())
}

func testFrame(payload string) []byte {
	p := &Packet{
		SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2"),
		Proto: ProtoUDP, HasUDP: true, SrcPort: 7, DstPort: 9,
		Payload: []byte(payload),
	}
	return p.Serialize()
}

func TestPcapNGReadBack(t *testing.T) {
	var b ngBuf
	b.shb()
	b.idb(linkTypeEthernet, 0)
	b.epb(0, 1234567, testFrame("hello"))
	b.epb(0, 1234999, testFrame("world"))

	pr, err := NewPcapNGReader(&b)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Payload) != "hello" || string(p2.Payload) != "world" {
		t.Fatalf("payloads %q %q", p1.Payload, p2.Payload)
	}
	if p1.TimestampUS != 1234567 || p2.TimestampUS != 1234999 {
		t.Fatalf("timestamps %d %d", p1.TimestampUS, p2.TimestampUS)
	}
	if _, err := pr.NextPacket(nil); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPcapNGNanosecondResolution(t *testing.T) {
	var b ngBuf
	b.shb()
	b.idb(linkTypeEthernet, 9) // 10^-9: nanosecond ticks
	b.epb(0, 5_000_001_500, testFrame("x"))
	pr, err := NewPcapNGReader(&b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.TimestampUS != 5_000_001 {
		t.Fatalf("ns timestamp converted to %d µs, want 5000001", p.TimestampUS)
	}
}

func TestPcapNGSkipsUnknownBlocksAndInterfaces(t *testing.T) {
	var b ngBuf
	b.shb()
	b.idb(101, 0) // non-Ethernet (raw IP) interface
	b.idb(linkTypeEthernet, 0)
	b.block(0x0bad, []byte{1, 2, 3, 4}) // unknown block type
	b.epb(0, 1, testFrame("skip-me"))   // wrong link type
	b.epb(1, 2, testFrame("ethernet"))  // the one we want
	pr, err := NewPcapNGReader(&b)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "ethernet" {
		t.Fatalf("got %q", p.Payload)
	}
}

func TestPcapNanosecondMagic(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	buf.Write(hdr)
	frame := testFrame("nano")
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 7)           // sec
	binary.LittleEndian.PutUint32(rec[4:8], 123_456_789) // nsec
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	buf.Write(rec)
	buf.Write(frame)

	pr, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	const want = 7*1_000_000 + 123_456
	if p.TimestampUS != want {
		t.Fatalf("got %d µs, want %d", p.TimestampUS, uint64(want))
	}
}

func TestTraceReaderSniffsFormat(t *testing.T) {
	// Classic pcap.
	var classic bytes.Buffer
	w, err := NewPcapWriter(&classic)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(testFrame("classic"), 42); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&classic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.NextPacket(nil)
	if err != nil || string(p.Payload) != "classic" {
		t.Fatalf("classic: %v %q", err, p.Payload)
	}

	// pcapng.
	var ng ngBuf
	ng.shb()
	ng.idb(linkTypeEthernet, 0)
	ng.epb(0, 42, testFrame("ng"))
	tr, err = NewTraceReader(&ng)
	if err != nil {
		t.Fatal(err)
	}
	p, err = tr.NextPacket(nil)
	if err != nil || string(p.Payload) != "ng" {
		t.Fatalf("pcapng: %v %q", err, p.Payload)
	}
}

// TestPcapReaderBufferReuse pins the satellite fix: reading a whole
// trace must not allocate per-packet record/frame buffers.
func TestPcapReaderBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := w.WriteFrame(testFrame("reuse-test-payload"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(20, func() {
		pr, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, _, err := pr.NextFrame(); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatal(err)
			}
		}
	})
	// Reader setup allocates a handful of objects; 64 packets used to
	// add two slices each.
	if allocs > 10 {
		t.Fatalf("reading 64 frames allocated %v objects", allocs)
	}
}

func TestPcapNGRejectsOversizedCapture(t *testing.T) {
	// An EPB whose capture length exceeds the snap limit must be
	// rejected as corruption, matching the classic reader's
	// invariant (the block-length bound alone allows ~4KB more).
	var b ngBuf
	b.shb()
	b.idb(linkTypeEthernet, 6)
	b.epb(0, 0, make([]byte, maxSnapLen+1000))
	r, err := NewPcapNGReader(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if frame, _, err := r.NextFrame(); err == nil {
		t.Fatalf("oversized capture accepted: %d-byte frame", len(frame))
	}
}
