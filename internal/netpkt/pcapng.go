package netpkt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// pcapng block types (per the IETF pcapng draft).
const (
	ngBlockSHB = 0x0a0d0d0a // Section Header Block
	ngBlockIDB = 0x00000001 // Interface Description Block
	ngBlockSPB = 0x00000003 // Simple Packet Block
	ngBlockEPB = 0x00000006 // Enhanced Packet Block

	ngByteOrderMagic = 0x1a2b3c4d
	ngOptEnd         = 0
	ngOptIfTsresol   = 9

	// ngMaxBlockLen bounds any block we are willing to buffer: a
	// max-snaplen packet plus generous option overhead. Anything
	// larger is treated as corruption, not an allocation request.
	ngMaxBlockLen = maxSnapLen + 1<<12
)

// ErrBadPcapNG is returned for malformed pcapng input.
var ErrBadPcapNG = errors.New("netpkt: malformed pcapng")

// ngIface is one Interface Description Block's decoded state.
type ngIface struct {
	link    uint32
	tsScale uint64 // ticks per second (power-of-ten resolutions)
	tsPow2  uint8  // if nonzero, resolution is 2^-tsPow2 instead
}

// toMicros converts a raw interface timestamp to microseconds.
func (ifc *ngIface) toMicros(ts uint64) uint64 {
	if ifc.tsPow2 != 0 {
		v := uint64(ifc.tsPow2)
		// Split to avoid overflowing ts*1e6 for large tick counts.
		return (ts>>v)*1e6 + ((ts&(1<<v-1))*1e6)>>v
	}
	switch {
	case ifc.tsScale == 1e6:
		return ts
	case ifc.tsScale > 1e6:
		return ts / (ifc.tsScale / 1e6)
	default:
		return ts * (1e6 / ifc.tsScale)
	}
}

// PcapNGReader streams Ethernet frames out of a pcapng capture:
// Section Header, Interface Description, Enhanced Packet and Simple
// Packet blocks, either endianness (switching at section boundaries),
// and per-interface timestamp resolution (if_tsresol). Unknown block
// types and non-Ethernet interfaces are skipped.
type PcapNGReader struct {
	r      io.Reader
	bo     binary.ByteOrder
	ifaces []ngIface

	hdr   [8]byte
	block []byte // reused body buffer

	// pool, when set, recycles packets and payload buffers through
	// NextPacket (see SetPool).
	pool *PacketPool
}

// NewPcapNGReader validates the leading Section Header Block.
func NewPcapNGReader(r io.Reader) (*PcapNGReader, error) {
	pr := &PcapNGReader{r: r}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPcapNG, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != ngBlockSHB {
		return nil, fmt.Errorf("%w: not a section header", ErrBadPcapNG)
	}
	if err := pr.readSection(hdr[4:8]); err != nil {
		return nil, err
	}
	return pr, nil
}

// readSection consumes a Section Header Block body given the raw
// (endianness-unknown) total-length field, establishing the section's
// byte order and resetting the interface table.
func (pr *PcapNGReader) readSection(rawLen []byte) error {
	var bom [4]byte
	if _, err := io.ReadFull(pr.r, bom[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPcapNG, err)
	}
	switch binary.LittleEndian.Uint32(bom[:]) {
	case ngByteOrderMagic:
		pr.bo = binary.LittleEndian
	case 0x4d3c2b1a:
		pr.bo = binary.BigEndian
	default:
		return fmt.Errorf("%w: bad byte-order magic", ErrBadPcapNG)
	}
	total := pr.bo.Uint32(rawLen)
	// 12 bytes header already read plus the 4-byte byte-order magic;
	// the body holds version, section length, options, trailing length.
	if total < 28 || total > ngMaxBlockLen || total%4 != 0 {
		return fmt.Errorf("%w: section header length %d", ErrBadPcapNG, total)
	}
	if _, err := pr.body(int(total) - 12); err != nil {
		return err
	}
	pr.ifaces = pr.ifaces[:0]
	return nil
}

// body reads n bytes into the reused block buffer.
func (pr *PcapNGReader) body(n int) ([]byte, error) {
	if cap(pr.block) < n {
		pr.block = make([]byte, n)
	}
	b := pr.block[:n]
	if _, err := io.ReadFull(pr.r, b); err != nil {
		return nil, fmt.Errorf("%w: truncated block", ErrBadPcapNG)
	}
	return b, nil
}

// addIface decodes an Interface Description Block.
func (pr *PcapNGReader) addIface(b []byte) error {
	if len(b) < 12 {
		return fmt.Errorf("%w: short interface block", ErrBadPcapNG)
	}
	ifc := ngIface{link: uint32(pr.bo.Uint16(b[0:2])), tsScale: 1e6}
	// Options start after linktype/reserved/snaplen.
	opts := b[8 : len(b)-4]
	for len(opts) >= 4 {
		code := pr.bo.Uint16(opts[0:2])
		olen := int(pr.bo.Uint16(opts[2:4]))
		opts = opts[4:]
		if code == ngOptEnd {
			break
		}
		if olen > len(opts) {
			break // malformed option; keep defaults
		}
		if code == ngOptIfTsresol && olen >= 1 {
			v := opts[0]
			if v&0x80 != 0 {
				ifc.tsPow2 = v & 0x7f
			} else if v <= 18 {
				scale := uint64(1)
				for i := byte(0); i < v; i++ {
					scale *= 10
				}
				ifc.tsScale = scale
			}
		}
		opts = opts[(olen+3)&^3:]
	}
	pr.ifaces = append(pr.ifaces, ifc)
	return nil
}

// NextFrame returns the next captured Ethernet frame and its timestamp
// (microseconds), or io.EOF. Like PcapReader.NextFrame, the returned
// slice aliases a reused buffer valid only until the next call.
func (pr *PcapNGReader) NextFrame() ([]byte, uint64, error) {
	for {
		if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, 0, fmt.Errorf("%w: truncated block header", ErrBadPcapNG)
			}
			return nil, 0, err
		}
		typ := pr.bo.Uint32(pr.hdr[0:4])
		if typ == ngBlockSHB {
			// A new section may flip endianness; its length field is
			// in the new section's byte order.
			if err := pr.readSection(pr.hdr[4:8]); err != nil {
				return nil, 0, err
			}
			continue
		}
		total := pr.bo.Uint32(pr.hdr[4:8])
		if total < 12 || total > ngMaxBlockLen || total%4 != 0 {
			return nil, 0, fmt.Errorf("%w: block length %d", ErrBadPcapNG, total)
		}
		b, err := pr.body(int(total) - 8)
		if err != nil {
			return nil, 0, err
		}
		if trailer := pr.bo.Uint32(b[len(b)-4:]); trailer != total {
			return nil, 0, fmt.Errorf("%w: trailing length mismatch", ErrBadPcapNG)
		}
		switch typ {
		case ngBlockIDB:
			if err := pr.addIface(b); err != nil {
				return nil, 0, err
			}
		case ngBlockEPB:
			if len(b) < 24 {
				return nil, 0, fmt.Errorf("%w: short packet block", ErrBadPcapNG)
			}
			ifID := pr.bo.Uint32(b[0:4])
			if int(ifID) >= len(pr.ifaces) {
				return nil, 0, fmt.Errorf("%w: undefined interface %d", ErrBadPcapNG, ifID)
			}
			ifc := &pr.ifaces[ifID]
			ts := uint64(pr.bo.Uint32(b[4:8]))<<32 | uint64(pr.bo.Uint32(b[8:12]))
			capLen := int(pr.bo.Uint32(b[12:16]))
			if capLen < 0 || capLen > len(b)-24 || capLen > maxSnapLen {
				return nil, 0, fmt.Errorf("%w: capture length %d", ErrBadPcapNG, capLen)
			}
			if ifc.link != linkTypeEthernet {
				continue
			}
			return b[20 : 20+capLen], ifc.toMicros(ts), nil
		case ngBlockSPB:
			if len(pr.ifaces) == 0 || len(b) < 8 {
				return nil, 0, fmt.Errorf("%w: simple packet before interface", ErrBadPcapNG)
			}
			origLen := int(pr.bo.Uint32(b[0:4]))
			capLen := len(b) - 8
			if origLen >= 0 && origLen < capLen {
				capLen = origLen
			}
			if capLen > maxSnapLen {
				return nil, 0, fmt.Errorf("%w: capture length %d", ErrBadPcapNG, capLen)
			}
			if pr.ifaces[0].link != linkTypeEthernet {
				continue
			}
			return b[4 : 4+capLen], 0, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

// SetPool attaches a packet pool: subsequent NextPacket calls draw
// their packet structs and payload buffers from it, and the consumer
// returns them with Packet.Release once done.
func (pr *PcapNGReader) SetPool(pl *PacketPool) { pr.pool = pl }

// NextPacket parses the next frame, skipping unparseable ones; the
// returned packet owns its payload (until released, when pooled).
func (pr *PcapNGReader) NextPacket(skipped *int) (*Packet, error) {
	return nextPacket(pr, skipped, pr.pool)
}

// TraceReader is a capture stream of either supported trace format.
type TraceReader interface {
	// NextFrame returns the next raw Ethernet frame and its timestamp
	// in microseconds; the slice aliases a reused internal buffer.
	NextFrame() ([]byte, uint64, error)
	// NextPacket parses the next frame, skipping unparseable ones.
	NextPacket(skipped *int) (*Packet, error)
	// SetPool recycles packets and payload buffers through a pool;
	// the consumer releases each packet when done with it.
	SetPool(*PacketPool)
}

// NewTraceReader sniffs the capture format from its magic number and
// returns the matching reader: classic pcap (microsecond or nanosecond
// magic, either endianness) or pcapng.
func NewTraceReader(r io.Reader) (TraceReader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPcap, err)
	}
	full := io.MultiReader(bytes.NewReader(magic[:]), r)
	if binary.LittleEndian.Uint32(magic[:]) == ngBlockSHB {
		return NewPcapNGReader(full)
	}
	return NewPcapReader(full)
}
