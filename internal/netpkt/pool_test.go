package netpkt

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

// tracePayloadPackets builds an in-memory classic pcap with n UDP
// packets carrying distinct payloads.
func poolTestTrace(t testing.TB, n int) []byte {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 400)
	for i := 0; i < n; i++ {
		for j := range payload {
			payload[j] = byte(i + j)
		}
		p := &Packet{
			SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}), DstIP: netip.AddrFrom4([4]byte{10, 0, 1, 1}),
			SrcPort: uint16(1024 + i), DstPort: 80,
			Proto: ProtoUDP, HasUDP: true,
			Payload: payload, TimestampUS: uint64(i) * 100,
		}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestPooledReadEquivalence proves pooled reading parses exactly the
// packets unpooled reading does.
func TestPooledReadEquivalence(t *testing.T) {
	trace := poolTestTrace(t, 32)

	plain, err := ReadAll(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}

	pr, err := NewPcapReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	pr.SetPool(NewPacketPool())
	i := 0
	for {
		p, err := pr.NextPacket(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(plain) {
			t.Fatal("pooled read returned extra packets")
		}
		want := plain[i]
		if p.Flow() != want.Flow() || p.TimestampUS != want.TimestampUS ||
			!bytes.Equal(p.Payload, want.Payload) {
			t.Fatalf("packet %d differs: %v vs %v", i, p.Flow(), want.Flow())
		}
		p.Release()
		i++
	}
	if i != len(plain) {
		t.Fatalf("pooled read returned %d packets, want %d", i, len(plain))
	}
}

// TestPooledReadRecycles asserts release actually recycles: two
// sequential packets reuse the same struct once the first is released.
func TestPooledReadRecycles(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime randomizes sync.Pool reuse")
	}
	trace := poolTestTrace(t, 2)
	pr, err := NewPcapReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	pr.SetPool(NewPacketPool())
	p1, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	p1.Release()
	p2, err := pr.NextPacket(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("released packet struct was not reused")
	}
}

// TestRetainRelease pins the refcount semantics: a retained packet
// survives one release and recycles on the second; hand-built packets
// ignore both.
func TestRetainRelease(t *testing.T) {
	pl := NewPacketPool()
	p := pl.Get()
	pl.attachPayload(p, []byte("abc"))
	p.Retain()
	p.Release()
	if p.pool == nil || string(p.Payload) != "abc" {
		t.Fatal("retained packet was recycled early")
	}
	p.Release()
	if p.pool != nil {
		t.Fatal("final release did not recycle")
	}

	manual := &Packet{Payload: []byte("x")}
	manual.Retain()
	manual.Release()
	manual.Release() // must stay a no-op
	if string(manual.Payload) != "x" {
		t.Fatal("release touched a hand-built packet")
	}
}

// TestPooledReadAllocs pins the point of the pool: reading a warm
// trace stream allocates ~nothing per packet.
func TestPooledReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation pin not meaningful")
	}
	trace := poolTestTrace(t, 64)
	pool := NewPacketPool()
	read := func() {
		pr, err := NewPcapReader(bytes.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		pr.SetPool(pool)
		for {
			p, err := pr.NextPacket(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			p.Release()
		}
	}
	read() // warm the pool
	allocs := testing.AllocsPerRun(20, read)
	// Reader construction allocates a handful of objects per run; the
	// 64 packets themselves must add nothing.
	if allocs > 8 {
		t.Errorf("pooled trace read allocates %.1f objects per pass over 64 packets", allocs)
	}
}
