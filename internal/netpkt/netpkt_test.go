package netpkt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func tcpPacket(src, dst string, sport, dport uint16, payload []byte) *Packet {
	return &Packet{
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst),
		Proto: ProtoTCP, HasTCP: true,
		SrcPort: sport, DstPort: dport,
		Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH,
		Payload: payload,
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	p := tcpPacket("10.0.0.1", "192.168.1.5", 31337, 80, []byte("GET / HTTP/1.0\r\n\r\n"))
	p.TTL = 57
	p.IPID = 0x1234
	frame := p.Serialize()
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != p.SrcIP || got.DstIP != p.DstIP {
		t.Errorf("IPs: %v->%v", got.SrcIP, got.DstIP)
	}
	if got.SrcPort != 31337 || got.DstPort != 80 {
		t.Errorf("ports: %d->%d", got.SrcPort, got.DstPort)
	}
	if got.Seq != 1000 || got.Ack != 2000 {
		t.Errorf("seq/ack: %d/%d", got.Seq, got.Ack)
	}
	if got.Flags != FlagACK|FlagPSH {
		t.Errorf("flags: %#x", got.Flags)
	}
	if got.TTL != 57 || got.IPID != 0x1234 {
		t.Errorf("ttl/ipid: %d/%#x", got.TTL, got.IPID)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload: %q", got.Payload)
	}
	if err := VerifyChecksums(frame); err != nil {
		t.Errorf("checksums: %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := &Packet{
		SrcIP: netip.MustParseAddr("10.0.0.2"), DstIP: netip.MustParseAddr("10.0.0.3"),
		Proto: ProtoUDP, HasUDP: true, SrcPort: 5353, DstPort: 53,
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got, err := Parse(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasUDP || got.DstPort != 53 || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("udp round trip: %+v", got)
	}
	if err := VerifyChecksums(p.Serialize()); err != nil {
		t.Errorf("checksums: %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	p := tcpPacket("10.0.0.1", "10.0.0.2", 1, 2, []byte("hello"))
	frame := p.Serialize()
	frame[len(frame)-1] ^= 0xff // flip a payload byte
	if err := VerifyChecksums(frame); err == nil {
		t.Error("corrupted payload passed checksum verification")
	}
	frame = p.Serialize()
	frame[14+8] ^= 0x01 // flip TTL in the IP header
	if err := VerifyChecksums(frame); err == nil {
		t.Error("corrupted IP header passed checksum verification")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil frame must fail")
	}
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short frame must fail")
	}
	// Non-IPv4 ethertype.
	f := make([]byte, 60)
	f[12], f[13] = 0x08, 0x06 // ARP
	if _, err := Parse(f); err != ErrBadVersion {
		t.Errorf("ARP frame: %v", err)
	}
	// IPv6 version nibble.
	p := tcpPacket("1.2.3.4", "5.6.7.8", 1, 2, nil)
	frame := p.Serialize()
	frame[14] = 0x65
	if _, err := Parse(frame); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// Truncated TCP header.
	frame = p.Serialize()
	frame2 := frame[:14+20+10]
	// Fix total length to claim more than present.
	if _, err := Parse(frame2); err == nil {
		t.Error("truncated TCP header must fail")
	}
}

func TestFlowKey(t *testing.T) {
	p := tcpPacket("10.0.0.1", "10.0.0.2", 1234, 80, nil)
	k := p.Flow()
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.SrcPort != k.DstPort || r.Reverse() != k {
		t.Errorf("reverse: %v vs %v", k, r)
	}
	if k.String() == "" {
		t.Error("empty flow string")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []*Packet
	for i := 0; i < 10; i++ {
		p := tcpPacket("10.0.0.1", "10.0.0.2", uint16(1000+i), 80,
			[]byte{byte(i), byte(i + 1)})
		p.TimestampUS = uint64(i) * 1500
		want = append(want, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Errorf("count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range got {
		if got[i].SrcPort != want[i].SrcPort ||
			got[i].TimestampUS != want[i].TimestampUS ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("packet %d mismatch: %+v", i, got[i])
		}
	}
}

func TestPcapBadMagic(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero magic accepted")
	}
	if _, err := NewPcapReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestPcapTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	p := tcpPacket("10.0.0.1", "10.0.0.2", 1, 2, []byte("x"))
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r, err := NewPcapReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.NextFrame(); err == nil {
		t.Error("truncated frame read succeeded")
	}
}

func TestPcapSkipsUnparseable(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewPcapWriter(&buf)
	if err := w.WriteFrame([]byte{1, 2, 3}, 0); err != nil { // junk frame
		t.Fatal(err)
	}
	if err := w.WritePacket(tcpPacket("1.1.1.1", "2.2.2.2", 3, 4, []byte("ok"))); err != nil {
		t.Fatal(err)
	}
	r, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	p, err := r.NextPacket(&skipped)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || string(p.Payload) != "ok" {
		t.Errorf("skipped=%d payload=%q", skipped, p.Payload)
	}
	if _, err := r.NextPacket(&skipped); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

// Property: serialize/parse is the identity on the modeled fields, and
// checksums always verify, for arbitrary payloads and addresses.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	prop := func() bool {
		var a4, b4 [4]byte
		r.Read(a4[:])
		r.Read(b4[:])
		payload := make([]byte, r.Intn(512))
		r.Read(payload)
		p := &Packet{
			SrcIP: netip.AddrFrom4(a4), DstIP: netip.AddrFrom4(b4),
			SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32()),
			Seq: r.Uint32(), Ack: r.Uint32(),
			Flags: uint8(r.Uint32()) & 0x3f, TTL: uint8(r.Intn(255) + 1),
			Payload: payload,
		}
		if r.Intn(2) == 0 {
			p.Proto, p.HasTCP = ProtoTCP, true
		} else {
			p.Proto, p.HasUDP = ProtoUDP, true
		}
		frame := p.Serialize()
		if VerifyChecksums(frame) != nil {
			return false
		}
		got, err := Parse(frame)
		if err != nil {
			return false
		}
		return got.SrcIP == p.SrcIP && got.DstIP == p.DstIP &&
			got.SrcPort == p.SrcPort && got.DstPort == p.DstPort &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the parser never panics on random bytes.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prop := func() bool {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		// Make many of them look like IPv4 to exercise deep paths.
		if len(b) > 14 && r.Intn(2) == 0 {
			b[12], b[13] = 0x08, 0x00
			if len(b) > 20 {
				b[14] = 0x45
			}
		}
		_, _ = Parse(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
