//go:build race

package netpkt

// raceEnabled reports whether the race detector is active; the
// allocation-regression pins are skipped under -race because the race
// runtime itself allocates and defeats sync.Pool caching.
const raceEnabled = true
