package netpkt

import (
	"sync"
	"sync/atomic"
)

// PacketPool recycles Packet structs and their payload buffers across
// a capture loop. Reading a trace (or a live capture) through a pooled
// reader allocates nothing per packet in steady state: the reader
// draws a packet and a payload buffer from the pool, the pipeline
// takes ownership, and whoever finishes with the packet calls
// Packet.Release to hand both back.
//
// Packets are reference-counted (starting at 1) so a consumer that
// must hold a packet past its own scope can Retain it; the buffers
// return to the pool when the last reference releases. Packets not
// drawn from a pool ignore Retain/Release entirely, so producers that
// build packets by hand (generators, tests) interoperate with
// release-discipline consumers at zero cost.
//
// A PacketPool is safe for concurrent use.
type PacketPool struct {
	pkts sync.Pool // *Packet
	bufs sync.Pool // *[]byte
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a reset packet owned by the pool with reference count 1.
func (pl *PacketPool) Get() *Packet {
	p, _ := pl.pkts.Get().(*Packet)
	if p == nil {
		p = new(Packet)
	}
	*p = Packet{pool: pl, refs: 1}
	return p
}

// attachPayload copies src into a pooled buffer and points the
// packet's Payload at it.
func (pl *PacketPool) attachPayload(p *Packet, src []byte) {
	bp, _ := pl.bufs.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	if cap(*bp) < len(src) {
		*bp = make([]byte, len(src))
	}
	b := (*bp)[:len(src)]
	copy(b, src)
	p.buf = bp
	p.Payload = b
}

// Retain adds a reference to a pooled packet (no-op otherwise): the
// packet and its payload stay valid until a matching Release.
func (p *Packet) Retain() {
	if p.pool != nil {
		atomic.AddInt32(&p.refs, 1)
	}
}

// Release drops one reference; the last release returns the packet and
// its payload buffer to their pool for reuse. No-op for packets that
// did not come from a pool, so consumers can release unconditionally.
// The packet must not be touched after its final Release.
func (p *Packet) Release() {
	if p == nil || p.pool == nil {
		return
	}
	if atomic.AddInt32(&p.refs, -1) != 0 {
		return
	}
	pl := p.pool
	buf := p.buf
	*p = Packet{}
	if buf != nil {
		pl.bufs.Put(buf)
	}
	pl.pkts.Put(p)
}
